package mpf

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExportedIdentifiersDocumented walks every non-test source file in
// the module and fails if an exported type, function, method, or
// package-level var/const group lacks a doc comment — the deliverable (e)
// guarantee that the public surface is fully documented.
func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("suspiciously few source files found: %d", len(files))
	}
	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				// Methods on unexported receivers are not part of the
				// documented surface (they satisfy interfaces whose own
				// methods carry the contract docs).
				if d.Recv != nil && len(d.Recv.List) == 1 && !exportedReceiver(d.Recv.List[0].Type) {
					continue
				}
				if d.Doc == nil || strings.TrimSpace(d.Doc.Text()) == "" {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDocumented := d.Doc != nil && strings.TrimSpace(d.Doc.Text()) != ""
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if !groupDocumented && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") &&
							(s.Comment == nil || strings.TrimSpace(s.Comment.Text()) == "") {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							if !groupDocumented && (s.Doc == nil || strings.TrimSpace(s.Doc.Text()) == "") &&
								(s.Comment == nil || strings.TrimSpace(s.Comment.Text()) == "") {
								missing = append(missing, pos(fset, n.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n%s",
			len(missing), strings.Join(missing, "\n"))
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return exportedReceiver(e.X)
	case *ast.Ident:
		return e.IsExported()
	case *ast.IndexExpr: // generic receiver
		return exportedReceiver(e.X)
	default:
		return true
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
