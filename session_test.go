package mpf

import (
	"context"
	"errors"
	"testing"
	"time"
)

// openCostsDB builds a small database with a single-table view "v".
func openCostsDB(t *testing.T) *Database {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	r, err := FromRows("costs",
		[]Attr{{Name: "a", Domain: 4}, {Name: "b", Domain: 4}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 3}, {3, 2}},
		[]float64{1, 2, 3, 4, 5, 6},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", []string{"costs"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSessionDefaults asserts a session stamps its default budget onto
// queries and that an explicit per-call budget wins over the default.
func TestSessionDefaults(t *testing.T) {
	db := openCostsDB(t)
	spec := &QuerySpec{View: "v", GroupVars: []string{"a"}}

	// A default budget too small for the result fails the query...
	tight := NewSession(db, SessionOptions{Budget: Budget{MaxRows: 1}})
	if _, err := tight.Query(context.Background(), spec); !errors.Is(err, ErrBudget) {
		t.Fatalf("session default budget not applied: err=%v", err)
	}
	// ...unless the call carries its own, which takes precedence.
	ctx := WithBudget(context.Background(), Budget{MaxRows: 1 << 20})
	res, err := tight.Query(ctx, spec)
	if err != nil {
		t.Fatalf("explicit budget should override session default: %v", err)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("empty result")
	}

	// A session with no options behaves like the plain API.
	plain := NewSession(db, SessionOptions{})
	if _, err := plain.Query(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Explain(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
}

// TestSessionTimeout asserts the default deadline is applied (an
// already-expired timeout cancels queries) without leaking into
// contexts that carry their own deadline.
func TestSessionTimeout(t *testing.T) {
	db := openCostsDB(t)
	spec := &QuerySpec{View: "v", GroupVars: []string{"a"}}

	s := NewSession(db, SessionOptions{Timeout: time.Nanosecond})
	time.Sleep(time.Microsecond)
	if _, err := s.Query(context.Background(), spec); !errors.Is(err, ErrCanceled) {
		t.Fatalf("nanosecond session timeout should cancel, got %v", err)
	}

	// An explicit generous deadline on the call wins.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := s.Query(ctx, spec); err != nil {
		t.Fatalf("explicit deadline should override session timeout: %v", err)
	}
}

// TestSessionWrites asserts the write passthroughs hit the database.
func TestSessionWrites(t *testing.T) {
	db := openCostsDB(t)
	s := NewSession(db, SessionOptions{})
	if err := s.Insert("costs", []int32{3, 3}, 7); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Delete("costs", []int32{3, 3})
	if err != nil || !ok {
		t.Fatalf("delete inserted row: ok=%v err=%v", ok, err)
	}
	if _, err := s.Materialize(context.Background(), "va", &QuerySpec{View: "v", GroupVars: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relation("va"); err != nil {
		t.Fatalf("materialized table missing: %v", err)
	}
}
