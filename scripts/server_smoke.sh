#!/bin/sh
# server_smoke.sh — end-to-end smoke test of cmd/mpfserver over the wire.
#
# Builds the server, starts it on an ephemeral port with the supply-chain
# dataset, exercises the health, session, query, explain, catalog, and
# metrics endpoints with curl, then sends SIGTERM and asserts a clean
# drain (exit 0, "drained" on stdout). Any unexpected status or payload
# fails the script.
set -eu

workdir=$(mktemp -d)
bin="$workdir/mpfserver"
portfile="$workdir/port"
log="$workdir/server.log"
trap 'kill "$srvpid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$bin" ./cmd/mpfserver

"$bin" -addr 127.0.0.1:0 -port-file "$portfile" -load supplychain -scale 0.005 \
    -admit-rate 500 -admit-burst 32 >"$log" 2>&1 &
srvpid=$!

# Wait for the listener.
for i in $(seq 1 100); do
    [ -s "$portfile" ] && break
    kill -0 "$srvpid" 2>/dev/null || { echo "FAIL: server died during startup"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -s "$portfile" ] || { echo "FAIL: port file never appeared"; cat "$log"; exit 1; }
base="http://$(cat "$portfile")"

get() { curl -sS -o "$workdir/body" -w '%{http_code}' "$base$1"; }
post() { curl -sS -o "$workdir/body" -w '%{http_code}' -X POST -d "$2" "$base$1"; }

expect() { # expect <got_status> <want_status> <grep_pattern> <label>
    if [ "$1" != "$2" ] || ! grep -q "$3" "$workdir/body"; then
        echo "FAIL: $4 (status $1, want $2, pattern '$3')"
        cat "$workdir/body"; echo; cat "$log"
        exit 1
    fi
    echo "ok: $4"
}

expect "$(get /v1/health)" 200 '"status":"ok"' "health"
expect "$(post /v1/sessions '{"timeout_ms":10000}')" 200 '"session":"s1"' "open session"
expect "$(post /v1/query '{"session":"s1","query":{"view":"invest","group_vars":["wid"]}}')" \
    200 '"rows"' "query via session"
expect "$(post /v1/explain '{"query":{"view":"invest","group_vars":["wid"]}}')" \
    200 '"plan"' "explain"
expect "$(get /v1/catalog)" 200 '"views"' "catalog"
expect "$(get /v1/metrics)" 200 '"server"' "metrics"
expect "$(post /v1/query '{"query":{"view":"nope"}}')" 404 '"code":"unknown_view"' "typed error envelope"
expect "$(curl -sS -o "$workdir/body" -w '%{http_code}' -X DELETE "$base/v1/sessions/s1")" \
    200 '{}' "close session"

# Graceful drain: SIGTERM must finish with exit 0 and report "drained".
kill -TERM "$srvpid"
if ! wait "$srvpid"; then
    echo "FAIL: server exited non-zero on SIGTERM"; cat "$log"; exit 1
fi
grep -q "drained" "$log" || { echo "FAIL: no drain confirmation in log"; cat "$log"; exit 1; }
echo "ok: SIGTERM drain"
echo "server smoke: PASS"
