package mpf

import "errors"

// errorCodes maps every exported sentinel to its stable wire code, in
// match order. Order matters where sentinels can co-occur on one error
// chain: corruption is detected inside the IO path, so ErrCorrupt must
// be probed before ErrIO to keep the more specific code.
var errorCodes = []struct {
	err  error
	code string
}{
	{ErrUnknownTable, "unknown_table"},
	{ErrUnknownView, "unknown_view"},
	{ErrDuplicateTable, "duplicate_table"},
	{ErrNotFunctional, "not_functional"},
	{ErrUnknownExecMode, "unknown_exec_mode"},
	{ErrBudget, "budget_exceeded"},
	{ErrCanceled, "canceled"},
	{ErrCorrupt, "corrupt"},
	{ErrIO, "io"},
}

// ErrorCode classifies an error from the Database API as a stable,
// machine-readable code: one code per exported sentinel (matched with
// errors.Is, so wrapped errors classify correctly), "" for nil, and
// "internal" for anything unrecognized. The serving layer's error
// envelopes and mpfcli's error output both speak these codes; the
// mapping is total over the package's sentinels by construction
// (asserted by TestErrorCodeTotal against the declarations in mpf.go).
func ErrorCode(err error) string {
	if err == nil {
		return ""
	}
	for _, ec := range errorCodes {
		if errors.Is(err, ec.err) {
			return ec.code
		}
	}
	return "internal"
}
