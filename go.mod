module mpf

go 1.23
