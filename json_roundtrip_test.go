package mpf

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"
)

// wireSpecs returns a spread of QuerySpecs covering every wire field:
// bare, predicated, having-filtered, hypothetical, optimizer-pinned,
// and memory-mode.
func wireSpecs(t *testing.T) []*QuerySpec {
	t.Helper()
	hypo, err := FromRows("price",
		[]Attr{{Name: "pid", Domain: 3}},
		[][]int32{{0}, {1}, {2}},
		[]float64{9.5, 1.25, 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := OptimizerByName("ve(deg)")
	if err != nil {
		t.Fatal(err)
	}
	return []*QuerySpec{
		{View: "invest"},
		{View: "invest", GroupVars: []string{"wid", "tid"}},
		{View: "invest", GroupVars: []string{"wid"}, Where: Predicate{"tid": 2}},
		{View: "invest", GroupVars: []string{"wid"}, Having: &Having{Op: HavingGE, Value: 10.5}},
		{View: "invest", GroupVars: []string{"wid"}, Hypothetical: map[string]*Relation{"price": hypo}},
		{View: "invest", GroupVars: []string{"wid"}, Optimizer: ve},
		{View: "invest", GroupVars: []string{"wid"}, Exec: MemoryExec},
	}
}

// TestQuerySpecJSONRoundTrip asserts the wire encoding round-trips:
// decoding a marshaled spec reproduces every field (the optimizer up to
// report name — it travels by name), and re-marshaling is a byte-level
// fixpoint.
func TestQuerySpecJSONRoundTrip(t *testing.T) {
	for _, spec := range wireSpecs(t) {
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal %+v: %v", spec, err)
		}
		var back QuerySpec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.View != spec.View || !reflect.DeepEqual(back.GroupVars, spec.GroupVars) ||
			!reflect.DeepEqual(back.Where, spec.Where) || !reflect.DeepEqual(back.Having, spec.Having) ||
			back.Exec != spec.Exec {
			t.Fatalf("round trip changed spec: %s -> %+v", data, back)
		}
		switch {
		case spec.Optimizer == nil:
			if back.Optimizer != nil {
				t.Fatalf("round trip invented optimizer %q", back.Optimizer.Name())
			}
		case back.Optimizer == nil || back.Optimizer.Name() != spec.Optimizer.Name():
			t.Fatalf("optimizer lost in round trip: %s", data)
		}
		if len(spec.Hypothetical) != len(back.Hypothetical) {
			t.Fatalf("hypothetical lost in round trip: %s", data)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("marshal not a fixpoint:\n first %s\nsecond %s", data, again)
		}
	}

	// Unknown optimizer names, exec modes, and having operators must be
	// rejected, not silently defaulted.
	for _, bad := range []string{
		`{"view":"v","optimizer":"nope"}`,
		`{"view":"v","exec":"gpu"}`,
		`{"view":"v","having":{"op":"!=","value":1}}`,
	} {
		var q QuerySpec
		if err := json.Unmarshal([]byte(bad), &q); err == nil {
			t.Fatalf("decoded invalid spec %s", bad)
		}
	}
}

// TestRelationJSONRoundTrip asserts relations survive the wire intact
// (schema, row order, measures) and that schema violations are rejected
// on decode.
func TestRelationJSONRoundTrip(t *testing.T) {
	r, err := FromRows("price",
		[]Attr{{Name: "pid", Domain: 3}, {Name: "tid", Domain: 2}},
		[][]int32{{2, 0}, {0, 1}, {1, 1}},
		[]float64{4.5, 0, math.MaxFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []*Relation{r, MustNewRelation(t, "empty", []Attr{{Name: "x", Domain: 1}})} {
		data, err := json.Marshal(rel)
		if err != nil {
			t.Fatal(err)
		}
		var back Relation
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Name() != rel.Name() || !reflect.DeepEqual(back.Attrs(), rel.Attrs()) || back.Len() != rel.Len() {
			t.Fatalf("round trip changed relation: %s", data)
		}
		for i := 0; i < rel.Len(); i++ {
			if !reflect.DeepEqual(back.Row(i), rel.Row(i)) || back.Measure(i) != rel.Measure(i) {
				t.Fatalf("row %d changed in round trip: %s", i, data)
			}
		}
	}

	for _, bad := range []string{
		`{"name":"r","attrs":[{"name":"x","domain":2}],"rows":[[5]],"measures":[1]}`,   // out of domain
		`{"name":"r","attrs":[{"name":"x","domain":2}],"rows":[[1]],"measures":[1,2]}`, // rows/measures mismatch
		`{"name":"r","attrs":[{"name":"x","domain":0}],"rows":[],"measures":[]}`,       // bad domain
	} {
		var rel Relation
		if err := json.Unmarshal([]byte(bad), &rel); err == nil {
			t.Fatalf("decoded invalid relation %s", bad)
		}
	}
}

// MustNewRelation is a test helper building an empty relation.
func MustNewRelation(t *testing.T, name string, attrs []Attr) *Relation {
	t.Helper()
	r, err := NewRelation(name, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestResultJSONRoundTrip asserts a query Result survives the wire:
// relation rows, optimize time, and RunStats counters. The plan travels
// as rendered text only, so decoding leaves Plan nil by contract.
func TestResultJSONRoundTrip(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r, err := FromRows("costs",
		[]Attr{{Name: "a", Domain: 2}, {Name: "b", Domain: 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		[]float64{1, 2, 3, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", []string{"costs"}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(&QuerySpec{View: "v", GroupVars: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Plan != nil {
		t.Fatal("Plan must stay nil after decode: the wire carries only its rendering")
	}
	if back.Optimize != res.Optimize || back.Exec.RowsOut != res.Exec.RowsOut ||
		back.Exec.Wall != res.Exec.Wall || back.Exec.Operators != res.Exec.Operators ||
		back.Exec.Planner != res.Exec.Planner {
		t.Fatalf("round trip changed result stats: %s", data)
	}
	if back.Relation == nil || back.Relation.Len() != res.Relation.Len() {
		t.Fatalf("round trip changed result relation: %s", data)
	}
	if len(back.Trace) != len(res.Trace) {
		t.Fatalf("round trip changed trace: %d spans, want %d", len(back.Trace), len(res.Trace))
	}
}

// TestRunStatsJSONRoundTrip asserts RunStats — including nested IO
// stats, per-operator actuals, and trace spans — survives the wire.
func TestRunStatsJSONRoundTrip(t *testing.T) {
	st := RunStats{
		Wall:            123 * time.Microsecond,
		RowsOut:         7,
		Operators:       3,
		TempTuples:      42,
		HotKeyFallbacks: 1,
		CacheHits:       2,
		CacheMisses:     3,
		Batches:         4,
		Planner:         "cs+linear",
		PlanCacheHit:    true,
		Ops:             []OpStat{{Desc: "Scan(costs)", Rows: 4, Wall: time.Millisecond}},
		Trace: []Span{{
			Desc: "Scan(costs)", Kind: "Scan", Depth: 1, Rows: 4,
			Start: time.Microsecond, Stop: 2 * time.Microsecond, Wall: time.Microsecond,
		}},
		Morsels: []MorselStat{{Kind: "GroupBy", Count: 16, Busy: 3 * time.Millisecond}},
	}
	st.IO.Reads = 10
	st.IO.Hits = 20
	st.Trace[0].IO.Reads = 10
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back RunStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("round trip changed stats:\n%+v\n%+v", st, back)
	}
}

// FuzzQuerySpecJSON fuzzes the decoder with arbitrary bytes: any input
// the decoder accepts must re-marshal to a fixpoint (the canonical wire
// form), and neither direction may panic.
func FuzzQuerySpecJSON(f *testing.F) {
	f.Add([]byte(`{"view":"invest"}`))
	f.Add([]byte(`{"view":"invest","group_vars":["wid","tid"],"where":{"tid":2}}`))
	f.Add([]byte(`{"view":"v","having":{"op":"<=","value":3.5},"exec":"memory","optimizer":"cs"}`))
	f.Add([]byte(`{"view":"v","hypothetical":{"price":{"name":"price","attrs":[{"name":"p","domain":2}],"rows":[[1]],"measures":[2.5]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var q QuerySpec
		if err := json.Unmarshal(data, &q); err != nil {
			return
		}
		out, err := json.Marshal(&q)
		if err != nil {
			// Accepted inputs must be encodable unless they smuggled in
			// values JSON itself cannot carry (NaN/Inf measures).
			var q2 QuerySpec
			if json.Unmarshal(data, &q2) == nil && !hasUnencodable(&q2) {
				t.Fatalf("decoded spec does not re-encode: %s: %v", data, err)
			}
			return
		}
		var back QuerySpec
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("canonical form does not decode: %s: %v", out, err)
		}
		again, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, again) {
			t.Fatalf("marshal not a fixpoint:\n first %s\nsecond %s", out, again)
		}
	})
}

// hasUnencodable reports whether a decoded spec holds float values that
// encoding/json refuses to emit (±Inf — NaN cannot decode from JSON).
func hasUnencodable(q *QuerySpec) bool {
	if q.Having != nil && (math.IsInf(q.Having.Value, 0) || math.IsNaN(q.Having.Value)) {
		return true
	}
	for _, r := range q.Hypothetical {
		if r == nil {
			continue
		}
		for i := 0; i < r.Len(); i++ {
			if m := r.Measure(i); math.IsInf(m, 0) || math.IsNaN(m) {
				return true
			}
		}
	}
	return false
}
