# Developer entry points. The module is stdlib-only; plain `go build`,
# `go test`, and `go run` work everywhere — these targets just name the
# common flows.

GO ?= go

.PHONY: all check build test test-race race bench bench-json bench-compare chaos columnar columnar-fuse experiments examples fmt vet clean docs-check loadgen mvcc server-smoke

all: check

# Full gate: compile, vet, plain tests, the race-enabled suite (which
# exercises the parallel executor with Parallelism > 1), the two
# serving-layer smokes (a curl-driven endpoint walk of cmd/mpfserver and
# a reduced concurrent load generation run over the wire), the quick
# columnar-layout and columnar-fuse identity checks, and the MVCC
# snapshot-isolation chaos run under the race detector.
check: build vet test test-race server-smoke loadgen columnar columnar-fuse mvcc

# Documentation gate: vet, the exported-identifier doc-comment check,
# and markdown link verification (README/DESIGN/EXPERIMENTS/ARCHITECTURE).
docs-check:
	$(GO) vet ./...
	$(GO) test -run 'TestAllExportedIdentifiersDocumented|TestDocLinksResolve|TestArchitectureDocLinked' -count=1 .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

race: test-race

bench:
	$(GO) test -bench=. -benchmem ./...

# Snapshot the vectorized-executor microbenchmarks (tuple vs batch mode:
# scan, Grace join, group-by) as machine-readable JSON in BENCH_PR4.json,
# the planning-latency microbenchmarks (CS+ search vs greedy vs a warmed
# plan-cache probe) as BENCH_PR6.json, and the columnar-vs-row-major
# layout microbenchmarks (scan, join, sort, fused join+aggregate,
# group-by) as BENCH_PR9.json.
bench-json:
	$(GO) test -run=NONE -bench=Batch -benchtime=10x -benchmem ./internal/exec/ | $(GO) run ./cmd/benchjson > BENCH_PR4.json
	$(GO) test -run=NONE -bench=Planning -benchtime=100x -benchmem ./internal/core/ | $(GO) run ./cmd/benchjson > BENCH_PR6.json
	$(GO) test -run=NONE -bench=Columnar -benchtime=50x -benchmem -count=5 ./internal/exec/ | $(GO) run ./cmd/benchjson > BENCH_PR9.json

# Regression gate: rerun the columnar microbenchmarks (best of 5 against
# scheduler noise, matching how the snapshot is taken) and compare ns/op
# against the most recent BENCH_PR*.json snapshot, failing on any
# benchmark present in both runs that slowed by more than 10%.
bench-compare:
	$(GO) test -run=NONE -bench=Columnar -benchtime=50x -benchmem -count=5 ./internal/exec/ | \
		$(GO) run ./cmd/benchjson -compare $$(ls BENCH_PR*.json | sort -V | tail -1)

# Deterministic-seed chaos run: replay the optimizer/executor matrix
# over fault-injecting disks and check the resilience contract (see
# EXPERIMENTS.md, `chaos`). The fixed seed makes failures reproducible.
chaos:
	$(GO) run ./cmd/mpfbench -exp chaos -quick -seed 1

# Quick columnar-layout check: the columnar experiment errors unless the
# encoded kernels return byte-identical results with identical physical
# IO (see EXPERIMENTS.md, `columnar`); the speedup column is informative.
columnar:
	$(GO) run ./cmd/mpfbench -exp columnar -quick -seed 1

# Quick end-to-end columnar check: the columnar-fuse experiment errors
# unless the columnar sort and fused join+aggregate paths return
# byte-identical results with identical physical IO versus row-major
# (see EXPERIMENTS.md, `columnar-fuse`); the speedup column is
# informative.
columnar-fuse:
	$(GO) run ./cmd/mpfbench -exp columnar-fuse -quick -seed 1

# Snapshot-isolation chaos run under the race detector: analytical
# readers concurrent with a sustained ingest stream on fault-injecting
# disks, every answer checked byte-identical against a serial replay at
# its pinned catalog version, plus a permanent write fault armed against
# a mid-run commit (see EXPERIMENTS.md, `mvcc`). Drop -quick for the
# full 64-commit acceptance run.
mvcc:
	$(GO) run -race ./cmd/mpfbench -exp mvcc -quick -seed 1

# Concurrent serving smoke: mixed read/write sessions over HTTP against
# internal/server with tight admission control. Fails on any answer that
# differs from serial replay or any untyped rejection (see EXPERIMENTS.md,
# `loadgen`). Drop -quick for the full 240-session acceptance run.
loadgen:
	$(GO) run ./cmd/mpfbench -exp loadgen -quick -seed 1

# End-to-end smoke of cmd/mpfserver: start on an ephemeral port, walk
# the wire endpoints with curl, then assert a clean SIGTERM drain.
server-smoke:
	sh scripts/server_smoke.sh

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/mpfbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/supplychain
	$(GO) run ./examples/bayesnet
	$(GO) run ./examples/workload
	$(GO) run ./examples/sqlshell

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
