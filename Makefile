# Developer entry points. The module is stdlib-only; plain `go build`,
# `go test`, and `go run` work everywhere — these targets just name the
# common flows.

GO ?= go

.PHONY: all build test race bench experiments examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/mpfbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/supplychain
	$(GO) run ./examples/bayesnet
	$(GO) run ./examples/workload
	$(GO) run ./examples/sqlshell

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
