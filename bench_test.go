// Benchmarks regenerating the paper's evaluation (§7): one benchmark per
// table and figure, each sub-benchmark measuring the distinctive
// operation of that experiment (plan optimization for the cost tables,
// engine execution for the timing figures). cmd/mpfbench prints the full
// sweeps; these benches track the same quantities under `go test -bench`.
package mpf_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/core"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/experiments"
	"mpf/internal/gen"
	"mpf/internal/infer"
	"mpf/internal/opt"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// benchScale keeps engine executions in the milliseconds range so the
// full bench suite completes quickly; mpfbench runs the larger sweeps.
const benchScale = 0.01

func openSupply(b *testing.B, density float64, frames int) *core.Database {
	b.Helper()
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: benchScale, CtdealsDensity: density, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(core.Config{PoolFrames: frames})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		b.Fatal(err)
	}
	return db
}

func openSynth(b *testing.B, kind gen.SyntheticKind, tables int) *core.Database {
	b.Helper()
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: kind, Tables: tables, Domain: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	db, err := core.Open(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		b.Fatal(err)
	}
	return db
}

func runQuery(b *testing.B, db *core.Database, view string, o opt.Optimizer, groupVar string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(&core.QuerySpec{View: view, GroupVars: []string{groupVar}, Optimizer: o})
		if err != nil {
			b.Fatal(err)
		}
		if res.Relation.Len() == 0 {
			b.Fatal("empty result")
		}
	}
}

func explainQuery(b *testing.B, db *core.Database, view string, o opt.Optimizer, groupVar string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p, _, err := db.Explain(&core.QuerySpec{View: view, GroupVars: []string{groupVar}, Optimizer: o})
		if err != nil {
			b.Fatal(err)
		}
		if p == nil {
			b.Fatal("nil plan")
		}
	}
}

// BenchmarkTable1 measures generating the Table 1 supply-chain instance.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: benchScale, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Relations) != 5 {
			b.Fatal("bad dataset")
		}
	}
}

// BenchmarkFig7 measures the plan-linearity experiment's four curves:
// Q1 (cid, Eq. 1 fails → nonlinear wins) and Q2 (tid, Eq. 1 holds) under
// linear and nonlinear CS+ at high CTdeals density.
func BenchmarkFig7(b *testing.B) {
	db := openSupply(b, 1.0, 256)
	for _, tc := range []struct {
		name string
		o    opt.Optimizer
		v    string
	}{
		{"q1cid/linear", opt.CSPlus{Linear: true}, "cid"},
		{"q1cid/nonlinear", opt.CSPlus{}, "cid"},
		{"q2tid/linear", opt.CSPlus{Linear: true}, "tid"},
		{"q2tid/nonlinear", opt.CSPlus{}, "tid"},
	} {
		b.Run(tc.name, func(b *testing.B) { runQuery(b, db, "invest", tc.o, tc.v) })
	}
}

// BenchmarkFig8 measures the extended-VE-space experiment: Q1/Q2/Q3 under
// nonlinear CS+, VE(deg) and VE(deg)+ext.
func BenchmarkFig8(b *testing.B) {
	db := openSupply(b, 0.5, 256)
	algos := []opt.Optimizer{
		opt.CSPlus{},
		opt.VE{Heuristic: opt.Degree},
		opt.VE{Heuristic: opt.Degree, Extended: true},
	}
	for _, v := range []string{"cid", "sid", "wid"} {
		for _, o := range algos {
			b.Run(fmt.Sprintf("%s/%s", v, o.Name()), func(b *testing.B) {
				runQuery(b, db, "invest", o, v)
			})
		}
	}
}

// BenchmarkFig9 measures the ordering-heuristics experiment: Q1 (cid) and
// Q2 (pid) under degree, width and elimination-cost.
func BenchmarkFig9(b *testing.B) {
	db := openSupply(b, 0.5, 256)
	for _, v := range []string{"cid", "pid"} {
		for _, h := range []opt.Heuristic{opt.Degree, opt.Width, opt.ElimCost} {
			o := opt.VE{Heuristic: h}
			b.Run(fmt.Sprintf("%s/%s", v, h), func(b *testing.B) {
				runQuery(b, db, "invest", o, v)
			})
		}
	}
}

// BenchmarkTable2 measures plan optimization for every Table 2 row on the
// star view (the schema where the heuristics differ most).
func BenchmarkTable2(b *testing.B) {
	db := openSynth(b, gen.Star, 5)
	for _, o := range []opt.Optimizer{
		opt.CSPlus{},
		opt.VE{Heuristic: opt.Degree},
		opt.VE{Heuristic: opt.Degree, Extended: true},
		opt.VE{Heuristic: opt.Width},
		opt.VE{Heuristic: opt.Width, Extended: true},
		opt.VE{Heuristic: opt.ElimCost},
		opt.VE{Heuristic: opt.ElimCost, Extended: true},
		opt.VE{Heuristic: opt.DegreeWidth},
		opt.VE{Heuristic: opt.DegreeElimCost},
	} {
		b.Run(o.Name(), func(b *testing.B) { explainQuery(b, db, "star", o, "x1") })
	}
}

// BenchmarkTable3 measures random-order VE planning, with and without the
// extended space.
func BenchmarkTable3(b *testing.B) {
	db := openSynth(b, gen.Star, 5)
	for _, ext := range []bool{false, true} {
		name := "ve(random)"
		if ext {
			name += "+ext"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			o := opt.VE{Heuristic: opt.RandomOrder, Extended: ext, Rng: rng}
			explainQuery(b, db, "star", o, "x1")
		})
	}
}

// BenchmarkFig10 measures the optimization-time side of the trade-off at
// N=7 for each algorithm family on each schema topology.
func BenchmarkFig10(b *testing.B) {
	for _, kind := range []gen.SyntheticKind{gen.Star, gen.MultiStar, gen.Linear} {
		db := openSynth(b, kind, 7)
		for _, o := range []opt.Optimizer{
			opt.CS{},
			opt.CSPlus{Linear: true},
			opt.CSPlus{},
			opt.VE{Heuristic: opt.Degree},
			opt.VE{Heuristic: opt.Degree, Extended: true},
			opt.VE{Heuristic: opt.Width, Extended: true},
		} {
			b.Run(fmt.Sprintf("%s/%s", kind, o.Name()), func(b *testing.B) {
				explainQuery(b, db, kind.String(), o, "x1")
			})
		}
	}
}

// BenchmarkAblationPushdown measures execution with and without GroupBy
// pushdown (design-choice ablation from DESIGN.md).
func BenchmarkAblationPushdown(b *testing.B) {
	db := openSupply(b, 0.5, 256)
	for _, o := range []opt.Optimizer{opt.CS{}, opt.CSPlus{Linear: true}, opt.CSPlus{}} {
		b.Run(o.Name(), func(b *testing.B) { runQuery(b, db, "invest", o, "wid") })
	}
}

// BenchmarkAblationPhysicalOps measures hash vs sort operator choices.
func BenchmarkAblationPhysicalOps(b *testing.B) {
	db := openSupply(b, 0.5, 256)
	for _, mode := range []struct {
		name                string
		sortJoin, sortGroup bool
	}{
		{"hash-join/hash-agg", false, false},
		{"sort-join/hash-agg", true, false},
		{"hash-join/sort-agg", false, true},
		{"sort-join/sort-agg", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			db.Engine().SortJoin = mode.sortJoin
			db.Engine().SortGroupBy = mode.sortGroup
			defer func() {
				db.Engine().SortJoin = false
				db.Engine().SortGroupBy = false
			}()
			runQuery(b, db, "invest", opt.CSPlus{}, "wid")
		})
	}
}

// BenchmarkAblationBufferPool measures the disk-resident regime: the same
// query against shrinking buffer pools.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, frames := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("frames-%d", frames), func(b *testing.B) {
			db := openSupply(b, 0.5, frames)
			runQuery(b, db, "invest", opt.CSPlus{}, "wid")
		})
	}
}

// BenchmarkVECacheBuild measures Algorithm 3 (workload cache
// materialization) on the supply chain.
func BenchmarkVECacheBuild(b *testing.B) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: benchScale, CtdealsDensity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache, err := infer.BuildVECache(semiring.SumProduct, ds.Relations, nil)
		if err != nil {
			b.Fatal(err)
		}
		if cache.Size() == 0 {
			b.Fatal("empty cache")
		}
	}
}

// BenchmarkVECacheAnswer measures answering single-variable workload
// queries from the cache (the §6 fast path).
func BenchmarkVECacheAnswer(b *testing.B) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: benchScale, CtdealsDensity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cache, err := infer.BuildVECache(semiring.SumProduct, ds.Relations, nil)
	if err != nil {
		b.Fatal(err)
	}
	vars := ds.QueryVars
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Answer(vars[i%len(vars)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeliefPropagation measures one full BP pass over the
// supply-chain schema.
func BenchmarkBeliefPropagation(b *testing.B) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.BeliefPropagation(semiring.SumProduct, ds.Relations); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProductJoin measures the core algebra operation.
func BenchmarkProductJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	l, _ := relation.Random(rng, "l",
		[]relation.Attr{{Name: "a", Domain: 200}, {Name: "b", Domain: 50}}, 0.5,
		relation.UniformMeasure(0, 1))
	r, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "b", Domain: 50}, {Name: "c", Domain: 200}}, 0.5,
		relation.UniformMeasure(0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := relation.ProductJoin(semiring.SumProduct, l, r)
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() == 0 {
			b.Fatal("empty join")
		}
	}
}

// BenchmarkExperimentHarness runs the quick version of each registered
// experiment once per iteration, guarding against harness regressions.
func BenchmarkExperimentHarness(b *testing.B) {
	for _, id := range []string{"table2", "fig10"} {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Run(id, experiments.Config{Quick: true, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMarginalize measures the core aggregation operation of the
// extended algebra.
func BenchmarkMarginalize(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	r, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "a", Domain: 100}, {Name: "b", Domain: 100}, {Name: "c", Domain: 10}},
		0.3, relation.UniformMeasure(0, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := relation.Marginalize(semiring.SumProduct, r, []string{"a"})
		if err != nil {
			b.Fatal(err)
		}
		if out.Len() == 0 {
			b.Fatal("empty marginal")
		}
	}
}

// BenchmarkUpdateSemijoin measures the BP backward-pass operator.
func BenchmarkUpdateSemijoin(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	t1, _ := relation.Random(rng, "t",
		[]relation.Attr{{Name: "a", Domain: 200}, {Name: "b", Domain: 50}}, 0.5,
		relation.UniformMeasure(0.5, 2))
	s1, _ := relation.Random(rng, "s",
		[]relation.Attr{{Name: "b", Domain: 50}, {Name: "c", Domain: 200}}, 0.5,
		relation.UniformMeasure(0.5, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := relation.UpdateSemijoin(semiring.SumProduct, t1, s1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExternalSort measures the engine's sort substrate under forced
// multi-run merges.
func BenchmarkExternalSort(b *testing.B) {
	db := openSupply(b, 0.5, 64)
	db.Engine().SortGroupBy = true
	db.Engine().SortRunTuples = 1 << 12
	defer func() {
		db.Engine().SortGroupBy = false
		db.Engine().SortRunTuples = 0
	}()
	runQuery(b, db, "invest", opt.CSPlus{}, "wid")
}

// BenchmarkParallelGraceJoin measures intra-query parallelism on a large
// Grace join in the IO-bound regime: a 64-frame pool over a disk with
// 1ms page-read latency, so the join is dominated by read stalls that
// Engine.Parallelism workers overlap (this speeds up even on one core).
// Expect ≥1.5× at workers-4 vs workers-1; physical reads stay ~equal.
func BenchmarkParallelGraceJoin(b *testing.B) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.02, CtdealsDensity: 0.5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	loc := ds.RelationMap()["location"]
	demand := relation.MustNew("demand", loc.Attrs())
	rng := rand.New(rand.NewSource(991))
	for i := 0; i < loc.Len(); i++ {
		demand.MustAppend(loc.Row(i), 0.1+rng.Float64())
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				factory := storage.LatencyMemDiskFactory(time.Millisecond, 0)
				pool := storage.NewPool(64)
				eng := exec.NewEngine(pool, factory, semiring.SumProduct)
				eng.Parallelism = workers
				// Grace (inputs exceed the cap) without recursive
				// repartitioning (each ~1/16 partition fits the build).
				eng.HashJoinMaxBuild = 4096
				cat := catalog.New()
				tables := make(map[string]*exec.Table, 2)
				for _, r := range []*relation.Relation{loc, demand} {
					t, err := exec.LoadRelation(pool, factory, r)
					if err != nil {
						b.Fatal(err)
					}
					tables[r.Name()] = t
					if err := cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
						b.Fatal(err)
					}
				}
				pb := plan.NewBuilder(cat, cost.Simple{})
				sl, err := pb.Scan("location")
				if err != nil {
					b.Fatal(err)
				}
				sd, err := pb.Scan("demand")
				if err != nil {
					b.Fatal(err)
				}
				_, st, err := eng.Run(pb.Join(sl, sd), exec.MapResolver(tables))
				if err != nil {
					b.Fatal(err)
				}
				if st.RowsOut == 0 {
					b.Fatal("empty join")
				}
				for _, t := range tables {
					t.Heap.Drop()
				}
			}
		})
	}
}

// BenchmarkJunctionTreeSchema measures the Algorithm 5 transform on the
// cyclic supply-chain schema.
func BenchmarkJunctionTreeSchema(b *testing.B) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.004, CtdealsDensity: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sidAttr, _ := ds.Relations[0].Attr("sid")
	tidAttr, _ := ds.Relations[4].Attr("tid")
	st, err := relation.Random(rng, "stdeals",
		[]relation.Attr{sidAttr, tidAttr}, 0.4, relation.UniformMeasure(0.5, 1))
	if err != nil {
		b.Fatal(err)
	}
	cyclic := append(append([]*relation.Relation{}, ds.Relations...), st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := infer.JunctionTreeSchema(semiring.SumProduct, cyclic, nil); err != nil {
			b.Fatal(err)
		}
	}
}
