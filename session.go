package mpf

import (
	"context"
	"time"

	"mpf/internal/core"
	"mpf/internal/exec"
	"mpf/internal/relation"
)

// Budget bounds a single query's resource use: intermediate tuples
// written by the engine and result cardinality. Attach one to a context
// with WithBudget, or set a per-client default via SessionOptions.
// Exceeding a bound fails the query with ErrBudget (a *BudgetError).
type Budget = exec.Budget

// BudgetError reports which budget resource a failed query exceeded; it
// matches ErrBudget via errors.Is.
type BudgetError = exec.BudgetError

// WithBudget returns a context carrying a per-query resource budget,
// honored by Database.QueryContext and MaterializeContext.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return exec.WithBudget(ctx, b)
}

// WithSnapshot returns a context that pins every query run through it to
// the snapshot's catalog version — the snapshot-isolation analogue of
// WithBudget. Without it, each query implicitly pins the version current
// at its admission. The caller keeps ownership of the snapshot and must
// Release it when done.
func WithSnapshot(ctx context.Context, s *Snapshot) context.Context {
	return core.WithSnapshot(ctx, s)
}

// SnapshotFromContext returns the snapshot carried by ctx, if any.
func SnapshotFromContext(ctx context.Context) (*Snapshot, bool) {
	return core.SnapshotFromContext(ctx)
}

// SessionOptions are the per-client defaults a Session applies to every
// query that does not carry its own.
type SessionOptions struct {
	// Timeout bounds each call's wall time; applied only when the call's
	// context has no deadline of its own. Zero means no default timeout.
	Timeout time.Duration
	// Budget bounds each query's resource use; applied only when the
	// call's context carries no budget of its own (WithBudget). The zero
	// Budget means no default bounds.
	Budget Budget
}

// Session is a per-client handle on a Database: a thin wrapper that
// stamps every call with the client's default deadline and resource
// budget. Sessions are cheap (no server-side state beyond the options),
// safe for concurrent use, and many sessions may share one Database —
// the network layer (internal/server) creates one per wire session.
//
// Explicit context values win: a deadline already on ctx suppresses the
// session timeout, and a budget already on ctx (WithBudget) suppresses
// the session budget.
type Session struct {
	db   *Database
	opts SessionOptions
}

// NewSession wraps db with per-client defaults.
func NewSession(db *Database, opts SessionOptions) *Session {
	return &Session{db: db, opts: opts}
}

// DB returns the underlying database.
func (s *Session) DB() *Database { return s.db }

// Options returns the session's defaults.
func (s *Session) Options() SessionOptions { return s.opts }

// apply stamps ctx with the session defaults, returning the derived
// context and a cancel that must be called when the query finishes.
func (s *Session) apply(ctx context.Context) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if s.opts.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		}
	}
	if b := s.opts.Budget; (b != Budget{}) {
		if _, has := exec.BudgetFromContext(ctx); !has {
			ctx = WithBudget(ctx, b)
		}
	}
	return ctx, cancel
}

// Query runs an MPF query with the session defaults applied.
func (s *Session) Query(ctx context.Context, q *QuerySpec) (*Result, error) {
	ctx, cancel := s.apply(ctx)
	defer cancel()
	return s.db.QueryContext(ctx, q)
}

// Explain optimizes a query without executing it, with the session
// defaults applied.
func (s *Session) Explain(ctx context.Context, q *QuerySpec) (*Result, error) {
	ctx, cancel := s.apply(ctx)
	defer cancel()
	p, d, err := s.db.ExplainContext(ctx, q)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: p, Optimize: d}, nil
}

// Materialize runs a query and registers its answer as a new table,
// with the session defaults applied.
func (s *Session) Materialize(ctx context.Context, name string, q *QuerySpec) (*relation.Relation, error) {
	ctx, cancel := s.apply(ctx)
	defer cancel()
	return s.db.MaterializeContext(ctx, name, q)
}

// Insert adds one row to a base table. Write calls are not budgeted;
// the engine serializes them against each other (one copy-on-write
// commit at a time) while concurrent queries keep reading their pinned
// snapshots.
func (s *Session) Insert(table string, vals []int32, measure float64) error {
	return s.db.Insert(table, vals, measure)
}

// Delete removes one row from a base table, reporting whether it
// existed.
func (s *Session) Delete(table string, vals []int32) (bool, error) {
	return s.db.Delete(table, vals)
}
