package mpf

import (
	"math/rand"
	"testing"
)

// TestPublicAPIRoundTrip exercises the package-level facade end to end:
// relation construction, table/view DDL, query forms, plan access, and
// optimizer/semiring lookups.
func TestPublicAPIRoundTrip(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	price, err := FromRows("price",
		[]Attr{{Name: "part", Domain: 3}, {Name: "supplier", Domain: 2}},
		[][]int32{{0, 0}, {1, 0}, {2, 1}},
		[]float64{10, 7, 30})
	if err != nil {
		t.Fatal(err)
	}
	qty, err := CompleteRelation("qty",
		[]Attr{{Name: "part", Domain: 3}, {Name: "warehouse", Domain: 2}},
		func(v []int32) float64 { return float64(v[0] + v[1] + 1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(price); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(qty); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("spend", []string{"price", "qty"}); err != nil {
		t.Fatal(err)
	}

	res, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"warehouse"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 || res.Plan == nil {
		t.Fatalf("unexpected result: %v", res.Relation)
	}
	// Expected: Σ_part price(part)·qty(part, w).
	res.Relation.Sort()
	want := []float64{10*1 + 7*2 + 30*3, 10*2 + 7*3 + 30*4}
	for i, w := range want {
		if res.Relation.Measure(i) != w {
			t.Fatalf("warehouse %d: %v, want %v", i, res.Relation.Measure(i), w)
		}
	}

	// Memory execution agrees.
	mem, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"warehouse"}, Exec: MemoryExec})
	if err != nil {
		t.Fatal(err)
	}
	mem.Relation.Sort()
	for i := range want {
		if mem.Relation.Measure(i) != want[i] {
			t.Fatal("memory execution disagrees")
		}
	}

	// Predicate form.
	sel, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"warehouse"}, Where: Predicate{"part": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel.Relation.Sort()
	if sel.Relation.Measure(0) != 30*3 || sel.Relation.Measure(1) != 30*4 {
		t.Fatalf("predicate query wrong: %v", sel.Relation)
	}
}

func TestPublicOptimizerRegistry(t *testing.T) {
	names := Optimizers()
	if len(names) == 0 {
		t.Fatal("no optimizers")
	}
	for _, n := range names {
		o, err := OptimizerByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != n {
			t.Fatalf("%q resolved to %q", n, o.Name())
		}
	}
	if _, err := OptimizerByName("nope"); err == nil {
		t.Fatal("unknown optimizer should error")
	}
	all := AllOptimizers(rand.New(rand.NewSource(1)))
	if len(all) != len(names) {
		t.Fatal("AllOptimizers out of sync with Optimizers")
	}
}

func TestPublicSemirings(t *testing.T) {
	for _, sr := range []Semiring{SumProduct, MinProduct, MaxProduct, MinSum, MaxSum, LogSumExp, BoolOrAnd} {
		got, err := SemiringByName(sr.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != sr.Name() {
			t.Fatal("semiring lookup mismatch")
		}
	}
}

func TestPublicMinProductQuery(t *testing.T) {
	db, err := Open(Config{Semiring: MinProduct})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r, _ := FromRows("costs",
		[]Attr{{Name: "part", Domain: 2}, {Name: "route", Domain: 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}}, []float64{5, 3, 8})
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", []string{"costs"}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(&QuerySpec{View: "v", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.Sort()
	if res.Relation.Measure(0) != 3 || res.Relation.Measure(1) != 8 {
		t.Fatalf("min query wrong: %v", res.Relation)
	}
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("x", []Attr{{Name: "", Domain: 1}}); err == nil {
		t.Fatal("invalid attr should error")
	}
	r, err := NewRelation("x", []Attr{{Name: "a", Domain: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 1 {
		t.Fatal("arity")
	}
}
