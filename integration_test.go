package mpf

import (
	"testing"

	"mpf/internal/core"
	"mpf/internal/gen"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// TestFullLifecycle exercises the whole system in one flow: generate a
// dataset, load it, index it, query it under several strategies, mutate
// it, cache it, constrain the cache, snapshot it, reload the snapshot,
// and confirm every answer against the algebra oracle.
func TestFullLifecycle(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.004, CtdealsDensity: 0.9, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{PoolFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("location", "pid"); err != nil {
		t.Fatal(err)
	}

	oracle := func() *relation.Relation {
		rels := make([]*relation.Relation, len(ds.ViewTables))
		for i, name := range ds.ViewTables {
			r, err := db.Relation(name)
			if err != nil {
				t.Fatal(err)
			}
			rels[i] = r
		}
		j, err := relation.ProductJoinAll(semiring.SumProduct, rels...)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}

	check := func(stage, groupVar string, pred Predicate) {
		t.Helper()
		for _, optName := range []string{"cs+nonlinear", "ve(width)+ext", "ve(deg)"} {
			o, err := OptimizerByName(optName)
			if err != nil {
				t.Fatal(err)
			}
			res, err := db.Query(&QuerySpec{
				View: "invest", GroupVars: []string{groupVar}, Where: pred, Optimizer: o,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", stage, optName, err)
			}
			j := oracle()
			if len(pred) > 0 {
				j, err = relation.Select(j, pred)
				if err != nil {
					t.Fatal(err)
				}
			}
			want, err := relation.Marginalize(semiring.SumProduct, j, []string{groupVar})
			if err != nil {
				t.Fatal(err)
			}
			if !relation.Equal(res.Relation, want, 0, 1e-6) {
				t.Fatalf("%s/%s: wrong answer for %s", stage, optName, groupVar)
			}
		}
	}

	check("initial", "wid", nil)
	check("initial-pred", "cid", Predicate{"tid": 1})

	// Mutate: insert a contract and delete a deal; answers must track.
	contracts, _ := db.Relation("contracts")
	pidAttr, _ := contracts.Attr("pid")
	sidAttr, _ := contracts.Attr("sid")
	var free []int32
	// Find an unused (pid, sid) pair.
findLoop:
	for p := int32(0); p < int32(pidAttr.Domain); p++ {
		for s := int32(0); s < int32(sidAttr.Domain); s++ {
			used := false
			for i := 0; i < contracts.Len(); i++ {
				if contracts.Value(i, 0) == p && contracts.Value(i, 1) == s {
					used = true
					break
				}
			}
			if !used {
				free = []int32{p, s}
				break findLoop
			}
		}
	}
	if free == nil {
		t.Skip("no free contract slot at this scale")
	}
	if err := db.Insert("contracts", free, 42.5); err != nil {
		t.Fatal(err)
	}
	ctdeals, _ := db.Relation("ctdeals")
	victim := append([]int32(nil), ctdeals.Row(0)...)
	if removed, err := db.Delete("ctdeals", victim); err != nil || !removed {
		t.Fatalf("delete: %v removed=%v", err, removed)
	}
	check("after-writes", "wid", nil)
	check("after-writes-pred", "sid", Predicate{"wid": 2})

	// Cache and constrained-domain protocol.
	cache, err := db.BuildCache("invest", nil)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := cache.Answer("cid")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.Marginalize(semiring.SumProduct, oracle(), []string{"cid"})
	if !relation.Equal(ans, want, 0, 1e-6) {
		t.Fatal("cache answer wrong after writes")
	}
	constrained, err := cache.ConstrainDomain(Predicate{"tid": 0})
	if err != nil {
		t.Fatal(err)
	}
	consAns, err := constrained.Answer("wid")
	if err != nil {
		t.Fatal(err)
	}
	selJ, _ := relation.Select(oracle(), Predicate{"tid": 0})
	consWant, _ := relation.Marginalize(semiring.SumProduct, selJ, []string{"wid"})
	if !relation.Equal(consAns, consWant, 0, 1e-6) {
		t.Fatal("constrained cache answer wrong")
	}

	// Snapshot round trip preserves everything.
	dir := t.TempDir()
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := core.Load(dir, core.Config{PoolFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res2, err := db2.Query(&core.QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	wantWid, _ := relation.Marginalize(semiring.SumProduct, oracle(), []string{"wid"})
	if !relation.Equal(res2.Relation, wantWid, 0, 1e-6) {
		t.Fatal("snapshot reload changed answers")
	}
}
