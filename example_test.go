package mpf_test

import (
	"fmt"

	"mpf"
)

// ExampleDatabase_Query builds a two-relation MPF view and runs a basic
// aggregate query over the product join.
func ExampleDatabase_Query() {
	db, _ := mpf.Open(mpf.Config{})
	defer db.Close()

	price, _ := mpf.FromRows("price",
		[]mpf.Attr{{Name: "part", Domain: 2}, {Name: "supplier", Domain: 2}},
		[][]int32{{0, 0}, {1, 1}}, []float64{10, 20})
	qty, _ := mpf.FromRows("qty",
		[]mpf.Attr{{Name: "part", Domain: 2}, {Name: "warehouse", Domain: 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}}, []float64{5, 3, 2})
	db.CreateTable(price)
	db.CreateTable(qty)
	db.CreateView("spend", []string{"price", "qty"})

	res, _ := db.Query(&mpf.QuerySpec{View: "spend", GroupVars: []string{"warehouse"}})
	res.Relation.Sort()
	for i := 0; i < res.Relation.Len(); i++ {
		fmt.Printf("warehouse %d: %.0f\n", res.Relation.Value(i, 0), res.Relation.Measure(i))
	}
	// Output:
	// warehouse 0: 90
	// warehouse 1: 30
}

// ExampleOptimizerByName selects an evaluation strategy by its report
// name, as the SQL `using` clause does.
func ExampleOptimizerByName() {
	o, err := mpf.OptimizerByName("ve(deg)+ext")
	if err != nil {
		panic(err)
	}
	fmt.Println(o.Name())
	// Output: ve(deg)+ext
}

// ExampleDatabase_Query_constrainedDomain shows the §3.1 constrained
// domain form: aggregate under an equality predicate on a non-query
// variable.
func ExampleDatabase_Query_constrainedDomain() {
	db, _ := mpf.Open(mpf.Config{})
	defer db.Close()
	r, _ := mpf.CompleteRelation("costs",
		[]mpf.Attr{{Name: "route", Domain: 2}, {Name: "carrier", Domain: 2}},
		func(v []int32) float64 { return float64(1 + v[0] + 10*v[1]) })
	db.CreateTable(r)
	db.CreateView("v", []string{"costs"})
	res, _ := db.Query(&mpf.QuerySpec{
		View:      "v",
		GroupVars: []string{"route"},
		Where:     mpf.Predicate{"carrier": 1},
	})
	res.Relation.Sort()
	for i := 0; i < res.Relation.Len(); i++ {
		fmt.Printf("route %d: %.0f\n", res.Relation.Value(i, 0), res.Relation.Measure(i))
	}
	// Output:
	// route 0: 11
	// route 1: 12
}
