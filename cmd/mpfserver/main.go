// Command mpfserver serves an MPF database over the HTTP/JSON wire
// protocol of internal/server: sessions, queries, explains,
// materializations, base-table writes, catalog, metrics, and health,
// with token-bucket admission control and graceful drain on SIGTERM.
//
// Usage:
//
//	mpfserver -load supplychain -scale 0.01 -addr :8080
//	curl -s localhost:8080/v1/health
//	curl -s -X POST localhost:8080/v1/query \
//	  -d '{"query":{"view":"invest","group_vars":["wid"]}}'
//	curl -s localhost:8080/v1/metrics
//
// The server drains on SIGTERM/SIGINT: in-flight queries finish (up to
// -drain-timeout, then they are canceled), new requests are rejected
// with the typed 503 "draining" envelope, and the process exits 0 once
// idle.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpf"
	"mpf/internal/gen"
	"mpf/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening (for scripts)")
	load := flag.String("load", "", "preload dataset: supplychain, star, linear, multistar")
	scale := flag.Float64("scale", 0.01, "supply-chain scale for -load supplychain")
	density := flag.Float64("density", 0.5, "ctdeals density for -load supplychain")
	tables := flag.Int("tables", 5, "table count for synthetic -load views")
	seed := flag.Int64("seed", 1, "random seed for -load")
	srName := flag.String("semiring", "sum-product", "measure semiring")
	frames := flag.Int("frames", 256, "buffer pool frames")
	parallel := flag.Int("parallel", 0, "intra-query worker bound (0 or 1 = serial)")
	rcache := flag.Int64("result-cache", 0, "shared subplan result cache byte budget (0 = disabled)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries (0 = disabled)")
	batch := flag.Int("batch", 0, "executor batch width (0 = page-sized, 1 = tuple-at-a-time)")
	rate := flag.Float64("admit-rate", 0, "admission rate in requests/sec (0 = unlimited)")
	burst := flag.Int("admit-burst", 16, "admission token-bucket burst")
	queueDepth := flag.Int("admit-queue", 64, "admission queue depth")
	queueWait := flag.Duration("admit-wait", 250*time.Millisecond, "max queueable admission wait")
	defTimeout := flag.Duration("default-timeout", 0, "default per-query timeout for sessionless requests (0 = none)")
	maxTemp := flag.Int64("max-temp-tuples", 0, "default per-query intermediate-tuple budget (0 = unlimited)")
	maxRows := flag.Int64("max-rows", 0, "default per-query result-row budget (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "in-flight grace on SIGTERM before queries are canceled")
	flag.Parse()

	if err := run(*addr, *portFile, *load, *scale, *density, *tables, *seed, *srName,
		*frames, *parallel, *rcache, *planCache, *batch,
		server.AdmissionConfig{RatePerSec: *rate, Burst: *burst, QueueDepth: *queueDepth, QueueWait: *queueWait},
		*defTimeout, mpf.Budget{MaxTempTuples: *maxTemp, MaxRows: *maxRows}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "mpfserver:", err)
		os.Exit(1)
	}
}

func run(addr, portFile, load string, scale, density float64, tables int, seed int64, srName string,
	frames, parallel int, rcache int64, planCache, batch int,
	admission server.AdmissionConfig, defTimeout time.Duration, defBudget mpf.Budget,
	drainTimeout time.Duration) error {
	sr, err := mpf.SemiringByName(srName)
	if err != nil {
		return err
	}
	db, err := mpf.Open(mpf.Config{
		Semiring:         sr,
		PoolFrames:       frames,
		Parallelism:      parallel,
		ResultCacheBytes: rcache,
		PlanCacheEntries: planCache,
		BatchSize:        batch,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	if load != "" {
		if err := loadDataset(db, load, scale, density, tables, seed); err != nil {
			return err
		}
	}

	srv := server.New(db, server.Config{
		Admission:      admission,
		DefaultTimeout: defTimeout,
		DefaultBudget:  defBudget,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if portFile != "" {
		if err := os.WriteFile(portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	hs := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("mpfserver: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mpfserver: %v: draining (timeout %v)\n", s, drainTimeout)
	}

	// Drain the application layer first (in-flight queries finish or are
	// canceled at the deadline), then close the HTTP side.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		hs.Close()
		return err
	}
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer httpCancel()
	if err := hs.Shutdown(httpCtx); err != nil {
		return err
	}
	fmt.Println("mpfserver: drained")
	return nil
}

// loadDataset generates and registers one of the paper's datasets.
func loadDataset(db *mpf.Database, name string, scale, density float64, tables int, seed int64) error {
	var ds *gen.Dataset
	var err error
	switch name {
	case "supplychain":
		ds, err = gen.SupplyChain(gen.SupplyChainConfig{Scale: scale, CtdealsDensity: density, Seed: seed})
	case "star":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Star, Tables: tables, Seed: seed})
	case "linear":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: tables, Seed: seed})
	case "multistar":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.MultiStar, Tables: tables, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q (supplychain, star, linear, multistar)", name)
	}
	if err != nil {
		return err
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			return err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		return err
	}
	fmt.Printf("mpfserver: loaded %s: view %s over %s\n", name, ds.Name, strings.Join(ds.ViewTables, ", "))
	return nil
}
