// Command benchjson converts `go test -bench` output on stdin into a
// JSON array, one object per benchmark result, keyed by the short
// benchmark name. Metrics are taken from the standard columns (ns/op,
// B/op, allocs/op) plus any custom ReportMetric columns (e.g. the batch
// benchmarks' pages-read/op), so `make bench-json` can snapshot the
// executor's microbenchmark numbers into a machine-readable file.
//
// Usage:
//
//	go test -run=NONE -bench=Batch -benchmem ./internal/exec/ | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	// Op is the benchmark name without the Benchmark prefix, e.g.
	// "BatchScan/tuple".
	Op string `json:"op"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, pages-read/op, ...) to
	// its per-op value.
	Metrics map[string]float64 `json:"metrics"`
}

// parseLine parses one "BenchmarkName N v1 unit1 v2 unit2 ..." line,
// returning ok=false for non-benchmark output (headers, PASS, ok).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Op:         strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The name column carries a -cpus suffix (BenchmarkX-8) on parallel
	// machines; strip it so snapshots diff cleanly across hosts.
	if i := strings.LastIndex(r.Op, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Op[i+1:]); err == nil {
			r.Op = r.Op[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
