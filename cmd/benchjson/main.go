// Command benchjson converts `go test -bench` output on stdin into a
// JSON array, one object per benchmark result, keyed by the short
// benchmark name. Metrics are taken from the standard columns (ns/op,
// B/op, allocs/op) plus any custom ReportMetric columns (e.g. the batch
// benchmarks' pages-read/op), so `make bench-json` can snapshot the
// executor's microbenchmark numbers into a machine-readable file.
//
// With -compare old.json the tool instead reads fresh bench text from
// stdin, matches each benchmark against the snapshot, and exits nonzero
// if any benchmark present in both runs regressed by more than the
// tolerance (default 10% ns/op). Benchmarks only in the new run are
// reported as "new" and never fail the gate; benchmarks only in the
// snapshot are reported as "gone".
//
// Usage:
//
//	go test -run=NONE -bench=Batch -benchmem ./internal/exec/ | benchjson
//	go test -run=NONE -bench=Columnar -benchtime=10x ./internal/exec/ | benchjson -compare BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	// Op is the benchmark name without the Benchmark prefix, e.g.
	// "BatchScan/tuple".
	Op string `json:"op"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, pages-read/op, ...) to
	// its per-op value.
	Metrics map[string]float64 `json:"metrics"`
}

// parseLine parses one "BenchmarkName N v1 unit1 v2 unit2 ..." line,
// returning ok=false for non-benchmark output (headers, PASS, ok).
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{
		Op:         strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The name column carries a -cpus suffix (BenchmarkX-8) on parallel
	// machines; strip it so snapshots diff cleanly across hosts.
	if i := strings.LastIndex(r.Op, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Op[i+1:]); err == nil {
			r.Op = r.Op[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parseBench reads bench text from rd and returns one result per
// benchmark. When the same benchmark appears multiple times (go test
// -count=N), the repetition with the smallest ns/op wins — best-of-N is
// the standard defense against scheduler noise on shared machines, and
// applying it to both the snapshot and the compare run keeps the
// regression gate symmetric.
func parseBench(rd io.Reader) ([]result, error) {
	var results []result
	idx := make(map[string]int)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if i, seen := idx[r.Op]; seen {
			if r.Metrics["ns/op"] < results[i].Metrics["ns/op"] {
				results[i] = r
			}
			continue
		}
		idx[r.Op] = len(results)
		results = append(results, r)
	}
	return results, sc.Err()
}

// compare checks the fresh results against a snapshot and writes a
// per-benchmark verdict line to w. It returns the names of benchmarks
// whose ns/op regressed beyond tol (e.g. 0.10 for +10%).
func compare(w io.Writer, old, fresh []result, tol float64) []string {
	base := make(map[string]result, len(old))
	for _, r := range old {
		base[r.Op] = r
	}
	seen := make(map[string]bool, len(fresh))
	var regressed []string
	for _, r := range fresh {
		seen[r.Op] = true
		b, ok := base[r.Op]
		if !ok {
			fmt.Fprintf(w, "new       %-45s %12.0f ns/op\n", r.Op, r.Metrics["ns/op"])
			continue
		}
		on, nn := b.Metrics["ns/op"], r.Metrics["ns/op"]
		if on <= 0 {
			continue
		}
		delta := (nn - on) / on
		verdict := "ok"
		if delta > tol {
			verdict = "REGRESSED"
			regressed = append(regressed, r.Op)
		}
		fmt.Fprintf(w, "%-9s %-45s %12.0f -> %12.0f ns/op (%+.1f%%)\n", verdict, r.Op, on, nn, 100*delta)
	}
	for _, r := range old {
		if !seen[r.Op] {
			fmt.Fprintf(w, "gone      %-45s\n", r.Op)
		}
	}
	return regressed
}

func main() {
	compareFile := flag.String("compare", "", "snapshot JSON to compare against; exit nonzero on ns/op regressions beyond -tol")
	tol := flag.Float64("tol", 0.10, "allowed fractional ns/op regression in -compare mode")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compareFile != "" {
		data, err := os.ReadFile(*compareFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var old []result
		if err := json.Unmarshal(data, &old); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compareFile, err)
			os.Exit(1)
		}
		regressed := compare(os.Stdout, old, results, *tol)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed >%.0f%% vs %s: %s\n",
				len(regressed), 100**tol, *compareFile, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stdout, "benchjson: no ns/op regressions beyond %.0f%% vs %s\n", 100**tol, *compareFile)
		return
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
