// Command mpfbench regenerates the paper's evaluation tables and figures
// (§7) from the reproduction's engine, printing one text table per
// experiment.
//
// Usage:
//
//	mpfbench -exp all                 # every experiment, paper order
//	mpfbench -exp fig7 -scale 0.05    # one experiment at a chosen scale
//	mpfbench -list                    # list experiment ids
//
// Absolute numbers depend on hardware; the shapes (who wins, by what
// factor, where crossovers fall) are the reproduction target recorded in
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"mpf/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	scale := flag.Float64("scale", 0, "supply-chain scale factor (0 = default 0.05)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	frames := flag.Int("frames", 0, "buffer pool frames (0 = default 256)")
	parallel := flag.Int("parallel", 0, "intra-query worker bound (0 or 1 = serial)")
	rcache := flag.Int64("result-cache", 0, "result cache byte budget for cache-aware experiments (0 = experiment default)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick, PoolFrames: *frames, Parallelism: *parallel, ResultCacheBytes: *rcache}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tbl, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
	}
}
