// Command mpfbench regenerates the paper's evaluation tables and figures
// (§7) from the reproduction's engine, printing one text table per
// experiment.
//
// Usage:
//
//	mpfbench -exp all                 # every experiment, paper order
//	mpfbench -exp fig7 -scale 0.05    # one experiment at a chosen scale
//	mpfbench -list                    # list experiment ids
//	mpfbench -exp batch-exec -cpuprofile cpu.out -memprofile mem.out
//
// Absolute numbers depend on hardware; the shapes (who wins, by what
// factor, where crossovers fall) are the reproduction target recorded in
// EXPERIMENTS.md. The -cpuprofile/-memprofile flags write pprof profiles
// covering the experiment runs, for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mpf/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	scale := flag.Float64("scale", 0, "supply-chain scale factor (0 = default 0.05)")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "reduced sweeps for a fast pass")
	frames := flag.Int("frames", 0, "buffer pool frames (0 = default 256)")
	parallel := flag.Int("parallel", 0, "intra-query worker bound (0 or 1 = serial)")
	workers := flag.Int("workers", 0, "morsel-scheduler worker bound (alias of -parallel; takes precedence when both are set)")
	columnar := flag.Bool("columnar", false, "enable columnar page encoding for experiment sessions")
	fuse := flag.Bool("fuse", false, "fuse GroupBy-over-Join pairs into a single non-materializing operator for experiment sessions")
	rcache := flag.Int64("result-cache", 0, "result cache byte budget for cache-aware experiments (0 = experiment default)")
	batch := flag.Int("batch", 0, "executor batch width in tuples (0 = page-sized batches, 1 = tuple-at-a-time)")
	readahead := flag.Int("readahead", 0, "buffer-pool read-ahead distance in pages for sequential scans (0 = off)")
	faults := flag.Int64("faults", 0, "run under seeded transient fault injection with this seed (0 = off)")
	planner := flag.String("planner", "", "override the planning strategy for experiment sessions (empty = experiment default)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries for experiment sessions (0 = experiment default)")
	planBudget := flag.Duration("plan-budget", 0, "planning-time budget before greedy fallback (0 = unlimited)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpfbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpfbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *workers != 0 {
		*parallel = *workers
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *quick, PoolFrames: *frames, Parallelism: *parallel, ResultCacheBytes: *rcache, BatchSize: *batch, ReadAhead: *readahead, Columnar: *columnar, Fuse: *fuse, FaultSeed: *faults, Planner: *planner, PlanCacheEntries: *planCache, PlanBudget: *planBudget}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tbl, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpfbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Render(os.Stdout)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpfbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpfbench:", err)
			os.Exit(1)
		}
	}
}
