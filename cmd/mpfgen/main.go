// Command mpfgen emits a generated dataset as a SQL script (CREATE
// TABLE / INSERT / CREATE MPFVIEW) consumable by mpfcli -script, or as
// CSV (one file per table on stdout with headers).
//
// Usage:
//
//	mpfgen -dataset supplychain -scale 0.01 > supply.sql
//	mpfgen -dataset star -tables 5 -format csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpf/internal/gen"
	"mpf/internal/relation"
)

func main() {
	dataset := flag.String("dataset", "supplychain", "supplychain, star, linear, multistar")
	scale := flag.Float64("scale", 0.01, "supply-chain scale")
	density := flag.Float64("density", 0.5, "ctdeals density")
	tables := flag.Int("tables", 5, "synthetic view table count")
	domain := flag.Int("domain", 10, "synthetic view domain size")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "sql", "sql or csv")
	flag.Parse()

	var ds *gen.Dataset
	var err error
	switch *dataset {
	case "supplychain":
		ds, err = gen.SupplyChain(gen.SupplyChainConfig{Scale: *scale, CtdealsDensity: *density, Seed: *seed})
	case "star":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Star, Tables: *tables, Domain: *domain, Seed: *seed})
	case "linear":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: *tables, Domain: *domain, Seed: *seed})
	case "multistar":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.MultiStar, Tables: *tables, Domain: *domain, Seed: *seed})
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpfgen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *format {
	case "sql":
		writeSQL(w, ds)
	case "csv":
		writeCSV(w, ds)
	default:
		fmt.Fprintf(os.Stderr, "mpfgen: unknown format %q\n", *format)
		os.Exit(1)
	}
}

func writeSQL(w *bufio.Writer, ds *gen.Dataset) {
	for _, r := range ds.Relations {
		var cols []string
		for _, a := range r.Attrs() {
			cols = append(cols, fmt.Sprintf("%s domain %d", a.Name, a.Domain))
		}
		fmt.Fprintf(w, "create table %s (%s);\n", r.Name(), strings.Join(cols, ", "))
		for i := 0; i < r.Len(); i++ {
			var vals []string
			for _, v := range r.Row(i) {
				vals = append(vals, fmt.Sprintf("%d", v))
			}
			vals = append(vals, fmt.Sprintf("%g", r.Measure(i)))
			fmt.Fprintf(w, "insert into %s values (%s);\n", r.Name(), strings.Join(vals, ", "))
		}
	}
	fmt.Fprintf(w, "create mpfview %s as select * from %s;\n", ds.Name, strings.Join(ds.ViewTables, ", "))
}

func writeCSV(w *bufio.Writer, ds *gen.Dataset) {
	for _, r := range ds.Relations {
		fmt.Fprintf(w, "# table %s\n", r.Name())
		writeCSVRelation(w, r)
	}
}

func writeCSVRelation(w *bufio.Writer, r *relation.Relation) {
	var header []string
	for _, a := range r.Attrs() {
		header = append(header, a.Name)
	}
	header = append(header, "f")
	fmt.Fprintln(w, strings.Join(header, ","))
	for i := 0; i < r.Len(); i++ {
		var vals []string
		for _, v := range r.Row(i) {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
		vals = append(vals, fmt.Sprintf("%g", r.Measure(i)))
		fmt.Fprintln(w, strings.Join(vals, ","))
	}
}
