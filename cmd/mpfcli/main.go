// Command mpfcli is an interactive shell (and script runner) for the MPF
// engine. It speaks the SQL subset of internal/sqlx, including the
// paper's `create mpfview` extension and the `using <strategy>` clause
// that selects the evaluation algorithm.
//
// Usage:
//
//	mpfcli                                   # REPL on stdin
//	mpfcli -load supplychain -scale 0.01     # preload a generated dataset
//	mpfcli -script setup.sql                 # run a script, then exit
//	mpfcli -c "select wid, sum(f) from invest group by wid"
//
// REPL meta-commands: \tables, \views, \strategies, \stats, \metrics,
// \quit. The -metrics flag prints the engine-wide metrics snapshot on
// exit; `explain analyze select ...` reports per-operator actuals.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpf"
	"mpf/internal/core"
	"mpf/internal/gen"
	"mpf/internal/opt"
	"mpf/internal/semiring"
	"mpf/internal/sqlx"
)

func main() {
	load := flag.String("load", "", "preload dataset: supplychain, star, linear, multistar")
	scale := flag.Float64("scale", 0.01, "supply-chain scale for -load supplychain")
	density := flag.Float64("density", 0.5, "ctdeals density for -load supplychain")
	tables := flag.Int("tables", 5, "table count for synthetic -load views")
	seed := flag.Int64("seed", 1, "random seed for -load")
	srName := flag.String("semiring", "sum-product", "measure semiring")
	strategy := flag.String("strategy", "", "default evaluation strategy (see \\strategies)")
	script := flag.String("script", "", "execute a SQL script file and exit")
	command := flag.String("c", "", "execute one statement and exit")
	frames := flag.Int("frames", 256, "buffer pool frames")
	parallel := flag.Int("parallel", 0, "intra-query worker bound (0 or 1 = serial)")
	workers := flag.Int("workers", 0, "morsel-scheduler worker bound (alias of -parallel; takes precedence when both are set)")
	columnar := flag.Bool("columnar", false, "encode full heap pages columnar (dictionary/RLE segments) and run the encoded-value kernels")
	fuse := flag.Bool("fuse", false, "fuse GroupBy-over-Join pairs into a single non-materializing operator")
	rcache := flag.Int64("result-cache", 0, "shared subplan result cache byte budget (0 = disabled)")
	batch := flag.Int("batch", 0, "executor batch width in tuples (0 = page-sized batches, 1 = tuple-at-a-time)")
	readahead := flag.Int("readahead", 0, "buffer-pool read-ahead distance in pages for sequential scans (0 = off)")
	ioRetries := flag.Int("io-retries", 0, "transient-fault IO retry bound (0 = default 3, negative = off)")
	planner := flag.String("planner", "", "default planner (alias of -strategy; takes precedence when both are set)")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries (0 = disabled)")
	planBudget := flag.Duration("plan-budget", 0, "planning-time budget before falling back to the greedy planner (0 = unlimited)")
	flag.BoolVar(&analyze, "analyze", false, "print per-operator actuals after each query")
	flag.BoolVar(&showMetrics, "metrics", false, "print the engine metrics snapshot before exiting")
	flag.Parse()

	if *planner != "" {
		*strategy = *planner
	}
	if *workers != 0 {
		*parallel = *workers
	}
	if err := run(*load, *scale, *density, *tables, *seed, *srName, *strategy, *script, *command, *frames, *parallel, *rcache, *batch, *readahead, *ioRetries, *planCache, *planBudget, *columnar, *fuse); err != nil {
		fmt.Fprintf(os.Stderr, "mpfcli: %v [%s]\n", err, mpf.ErrorCode(err))
		os.Exit(1)
	}
}

// showMetrics controls the exit-time engine metrics report (-metrics).
var showMetrics bool

func run(load string, scale, density float64, tables int, seed int64, srName, strategy, script, command string, frames, parallel int, rcache int64, batch, readahead, ioRetries, planCache int, planBudget time.Duration, columnar, fuse bool) error {
	sr, err := semiring.ByName(srName)
	if err != nil {
		return err
	}
	cfg := core.Config{Semiring: sr, PoolFrames: frames, Parallelism: parallel, ResultCacheBytes: rcache, BatchSize: batch, ReadAhead: readahead, IORetries: ioRetries, PlanCacheEntries: planCache, PlanBudget: planBudget, Columnar: columnar, FuseJoinGroupBy: fuse}
	if strategy != "" {
		o, err := opt.ByName(strategy)
		if err != nil {
			return err
		}
		cfg.Optimizer = o
	}
	db, err := core.Open(cfg)
	if err != nil {
		return err
	}
	defer db.Close()
	if showMetrics {
		defer func() { fmt.Print(db.Metrics().String()) }()
	}

	if load != "" {
		if err := loadDataset(db, load, scale, density, tables, seed); err != nil {
			return err
		}
	}
	sess := sqlx.NewSession(db)

	switch {
	case command != "":
		return execute(sess, command)
	case script != "":
		data, err := os.ReadFile(script)
		if err != nil {
			return err
		}
		stmts, err := sqlx.ParseScript(string(data))
		if err != nil {
			return err
		}
		for _, st := range stmts {
			out, err := sess.Run(st)
			if err != nil {
				return err
			}
			printOutput(out)
		}
		return nil
	default:
		return repl(db, sess)
	}
}

func loadDataset(db *core.Database, name string, scale, density float64, tables int, seed int64) error {
	var ds *gen.Dataset
	var err error
	switch name {
	case "supplychain":
		ds, err = gen.SupplyChain(gen.SupplyChainConfig{Scale: scale, CtdealsDensity: density, Seed: seed})
	case "star":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Star, Tables: tables, Seed: seed})
	case "linear":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: tables, Seed: seed})
	case "multistar":
		ds, err = gen.Synthetic(gen.SyntheticConfig{Kind: gen.MultiStar, Tables: tables, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q (supplychain, star, linear, multistar)", name)
	}
	if err != nil {
		return err
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			return err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		return err
	}
	fmt.Printf("loaded %s: view %s over %s\n", name, ds.Name, strings.Join(ds.ViewTables, ", "))
	return nil
}

func execute(sess *sqlx.Session, stmt string) error {
	out, err := sess.Exec(stmt)
	if err != nil {
		return err
	}
	printOutput(out)
	return nil
}

// analyze controls per-operator actuals in query output (-analyze flag).
var analyze bool

func printOutput(out *sqlx.Output) {
	if out.Relation != nil {
		fmt.Print(out.Relation.String())
		planned := ""
		if out.Exec.Planner != "" {
			planned = "; planner " + out.Exec.Planner
			if out.Exec.PlanCacheHit {
				planned += " (plan cache hit)"
			}
		}
		fmt.Printf("(%s; optimize %v, execute %v, %d page IOs%s)\n",
			out.Message, out.Optimize, out.Exec.Wall, out.Exec.IO.IO(), planned)
		if analyze && len(out.Exec.Ops) > 0 {
			fmt.Println("operator actuals (bottom-up, self time):")
			for _, op := range out.Exec.Ops {
				fmt.Printf("  %-24s %8d rows  %v self\n", op.Desc, op.Rows, op.Wall)
			}
			if out.Exec.HotKeyFallbacks > 0 {
				fmt.Printf("  grace hot-key fallbacks: %d\n", out.Exec.HotKeyFallbacks)
			}
		}
		return
	}
	if out.Message != "" {
		fmt.Println(out.Message)
	}
}

func repl(db *core.Database, sess *sqlx.Session) error {
	fmt.Println("mpf shell — SQL statements end with ';', meta-commands start with '\\' (\\quit to exit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("mpf> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if done := meta(db, trimmed); done {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		if strings.Contains(line, ";") {
			stmt := pending.String()
			pending.Reset()
			if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), ";")) != "" {
				if err := execute(sess, stmt); err != nil {
					fmt.Printf("error [%s]: %v\n", mpf.ErrorCode(err), err)
				}
			}
		}
		prompt()
	}
	return scanner.Err()
}

func meta(db *core.Database, cmd string) (quit bool) {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		return true
	case "\\tables":
		for _, t := range db.Catalog().Tables() {
			st, _ := db.Catalog().Table(t)
			fmt.Printf("%s (%d rows)\n", t, st.Card)
		}
	case "\\views":
		for _, v := range db.Catalog().Views() {
			def, _ := db.Catalog().View(v)
			fmt.Printf("%s = %s\n", v, strings.Join(def.Tables, " ⋈* "))
		}
	case "\\strategies":
		for _, n := range opt.Names() {
			fmt.Println(n)
		}
	case "\\stats":
		st := db.Pool().Stats()
		fmt.Printf("buffer pool: %d reads, %d writes, %d hits, %d prefetched\n", st.Reads, st.Writes, st.Hits, st.Prefetches)
		fmt.Printf("faults: %d retries, %d transient, %d permanent, %d checksum failures\n",
			st.Retries, st.TransientFaults, st.PermanentFaults, st.ChecksumFailures)
	case "\\metrics":
		fmt.Print(db.Metrics().String())
	case "\\profile":
		fmt.Println("profiling lives in mpfbench: run `mpfbench -exp <name> -cpuprofile cpu.out -memprofile mem.out`")
		fmt.Println("and inspect with `go tool pprof cpu.out`")
	case "\\cache":
		fields := strings.Fields(cmd)
		if len(fields) < 3 {
			fmt.Println("usage: \\cache build <view> | \\cache answer <view> <variable>")
			break
		}
		switch fields[1] {
		case "build":
			cache, err := db.BuildCache(fields[2], nil)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("cached %d tables (%d tuples) for view %s\n",
				len(cache.Tables), cache.Size(), fields[2])
			for _, t := range cache.Tables {
				fmt.Printf("  %s(%s): %d rows\n", t.Name(), strings.Join(t.Vars().Sorted(), ","), t.Len())
			}
		case "answer":
			if len(fields) < 4 {
				fmt.Println("usage: \\cache answer <view> <variable>")
				break
			}
			m, err := db.QueryCached(fields[2], fields[3])
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			m.Sort()
			fmt.Print(m.String())
		default:
			fmt.Println("usage: \\cache build <view> | \\cache answer <view> <variable>")
		}
	default:
		fmt.Println("meta-commands: \\tables \\views \\strategies \\stats \\metrics \\cache \\profile \\quit")
	}
	return false
}
