package mpf

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown documents whose links docs-check verifies.
var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"docs/ARCHITECTURE.md",
	"docs/PAGE_FORMAT.md",
}

// mdLink matches inline markdown links; group 1 is the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve checks every relative link in the tracked markdown
// documents points at a file that exists (the `make docs-check` gate):
// external URLs and pure anchors are skipped, in-document anchors are
// stripped before resolving relative to the linking file's directory.
func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", doc, m[1], err)
			}
		}
	}
}

// TestArchitectureDocLinked pins the documentation contract: the
// architecture overview exists and both entry-point documents link to
// it.
func TestArchitectureDocLinked(t *testing.T) {
	if _, err := os.Stat("docs/ARCHITECTURE.md"); err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "docs/ARCHITECTURE.md") {
			t.Errorf("%s does not link to docs/ARCHITECTURE.md", doc)
		}
	}
}
