// Package mpf is a query engine for MPF (Marginalize-a-Product-Function)
// queries, reproducing "Optimizing MPF Queries: Decision Support and
// Probabilistic Inference" (Corrada Bravo & Ramakrishnan, SIGMOD 2007).
//
// MPF queries are aggregate queries over functional relations — relations
// whose non-measure attributes functionally determine a real-valued
// measure. A view r = s₁ ⋈* s₂ ⋈* … ⋈* sₙ combines local functions with a
// semiring product join, and a query
//
//	select X, AGG(r.f) from r group by X
//
// marginalizes the joint function onto the query variables X. This covers
// decision-support aggregates (total/min/max investment per entity) and
// exact probabilistic inference on Bayesian networks (the view is a
// factored joint distribution; the query is a posterior marginal).
//
// The package offers:
//
//   - functional relations and the extended algebra (product join,
//     marginalizing GroupBy, product/update semijoins) over pluggable
//     commutative semirings;
//   - a disk-resident execution engine (paged heap files, buffer pool
//     with IO accounting, hash and sort physical operators);
//   - the paper's single-query optimizers: CS, linear and nonlinear CS+,
//     and Variable Elimination (VE/VE+) with degree, width,
//     elimination-cost, random and combined ordering heuristics;
//   - the workload optimizer: Belief Propagation, Junction Trees, and the
//     VE-cache materialized-view scheme with the Definition 5 correctness
//     invariant;
//   - Bayesian-network utilities (construction, sampling, parameter
//     estimation, conversion to MPF views);
//   - a SQL subset with the paper's `create mpfview` extension.
//
// # Quick start
//
//	db, _ := mpf.Open(mpf.Config{})
//	db.CreateTable(contracts) // *mpf.Relation values
//	db.CreateTable(location)
//	db.CreateView("invest", []string{"contracts", "location"})
//	res, _ := db.Query(&mpf.QuerySpec{
//		View:      "invest",
//		GroupVars: []string{"wid"},
//	})
//	fmt.Println(res.Relation)
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package mpf

import (
	"math/rand"

	"mpf/internal/core"
	"mpf/internal/exec"
	"mpf/internal/metrics"
	"mpf/internal/opt"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// Core data types, aliased from the implementation packages so the public
// surface is a single import.
type (
	// Relation is an in-memory functional relation.
	Relation = relation.Relation
	// Attr is a variable attribute: name plus categorical domain size.
	Attr = relation.Attr
	// Predicate is a conjunction of equality constraints.
	Predicate = relation.Predicate
	// VarSet is a set of variable names.
	VarSet = relation.VarSet
	// Semiring supplies the measure operations (Add/Mul and identities).
	Semiring = semiring.Semiring
	// Optimizer plans MPF queries.
	Optimizer = opt.Optimizer
	// Config parameterizes Open.
	Config = core.Config
	// Database is the engine facade.
	Database = core.Database
	// QuerySpec describes an MPF query against a view.
	QuerySpec = core.QuerySpec
	// Having is a post-aggregation filter on the result measure (the
	// constrained-range query form).
	Having = core.Having
	// HavingOp is the comparison operator of a Having clause.
	HavingOp = core.HavingOp
	// Result is a query answer with plan and measurements.
	Result = core.Result
	// OpStat records one executed operator's actuals in RunStats.Ops.
	OpStat = exec.OpStat
	// RunStats describes one plan execution (wall, IO, per-operator
	// actuals, trace spans).
	RunStats = exec.RunStats
	// Span is one operator's execution window within a query trace.
	Span = exec.Span
	// MorselStat is one operator kind's morsel-scheduler work in
	// RunStats.Morsels (parallel runs only).
	MorselStat = exec.MorselStat
	// MetricsSnapshot is a point-in-time copy of the engine-wide metrics,
	// returned by Database.Metrics.
	MetricsSnapshot = metrics.Snapshot
	// OpKindStats aggregates executed operators of one kind in a
	// MetricsSnapshot.
	OpKindStats = metrics.OpKindStats
	// ResultCacheStats reports the inter-query result cache
	// (Config.ResultCacheBytes) in a MetricsSnapshot.
	ResultCacheStats = metrics.ResultCacheStats
	// Snapshot pins one immutable catalog version for snapshot-isolation
	// reads: acquire with Database.AcquireSnapshot, thread through
	// contexts with WithSnapshot, release exactly once when done.
	Snapshot = core.Snapshot
	// MVCCStats reports the multi-version catalog (versions live and
	// reclaimed, commit outcomes, snapshot pins, writer stall) in a
	// MetricsSnapshot.
	MVCCStats = metrics.MVCCStats
	// CancelError wraps the context error that ended a query; it matches
	// both ErrCanceled and the wrapped context error via errors.Is.
	CancelError = core.CancelError
)

// Typed sentinel errors returned from the Database API; match them with
// errors.Is.
var (
	// ErrUnknownTable reports a reference to a table the database does not
	// have.
	ErrUnknownTable = core.ErrUnknownTable
	// ErrUnknownView reports a reference to an unregistered MPF view.
	ErrUnknownView = core.ErrUnknownView
	// ErrDuplicateTable reports CreateTable of an existing name.
	ErrDuplicateTable = core.ErrDuplicateTable
	// ErrNotFunctional reports a relation that is not a functional
	// relation (its variables do not determine the measure).
	ErrNotFunctional = core.ErrNotFunctional
	// ErrUnknownExecMode reports an invalid QuerySpec.Exec value.
	ErrUnknownExecMode = core.ErrUnknownExecMode
	// ErrCanceled reports a query ended by its context; the error also
	// matches context.Canceled or context.DeadlineExceeded.
	ErrCanceled = core.ErrCanceled
	// ErrIO reports a query ended by a storage fault that escaped the
	// pool's retry policy (Config.IORetries). The query fails cleanly and
	// the database keeps serving.
	ErrIO = core.ErrIO
	// ErrCorrupt reports a query that hit a page whose checksum failed
	// verification; corrupt bytes never reach query answers.
	ErrCorrupt = core.ErrCorrupt
	// ErrBudget reports a query stopped by its per-query resource budget
	// (WithBudget / SessionOptions.Budget); errors.As against
	// *BudgetError tells which bound tripped.
	ErrBudget = core.ErrBudget
)

// Execution modes for QuerySpec.Exec.
const (
	// EngineExec runs plans on the paged, IO-accounted engine.
	EngineExec = core.EngineExec
	// MemoryExec interprets plans over in-memory relations.
	MemoryExec = core.MemoryExec
)

// Comparison operators for Having clauses.
const (
	HavingLT = core.HavingLT
	HavingLE = core.HavingLE
	HavingGT = core.HavingGT
	HavingGE = core.HavingGE
	HavingEQ = core.HavingEQ
)

// Predefined semirings.
var (
	// SumProduct is (ℝ, +, ×): totals and probability marginals.
	SumProduct = semiring.SumProduct
	// MinProduct aggregates with min over products.
	MinProduct = semiring.MinProduct
	// MaxProduct aggregates with max over products (Viterbi).
	MaxProduct = semiring.MaxProduct
	// MinSum is the tropical semiring (min, +).
	MinSum = semiring.MinSum
	// MaxSum is (max, +).
	MaxSum = semiring.MaxSum
	// LogSumExp is sum-product in log space (numerically stable
	// marginalization of tiny probabilities).
	LogSumExp = semiring.LogSumExp
	// BoolOrAnd is ({0,1}, ∨, ∧).
	BoolOrAnd = semiring.BoolOrAnd
)

// Open creates a database.
func Open(cfg Config) (*Database, error) { return core.Open(cfg) }

// NewRelation creates an empty functional relation with the given
// attributes.
func NewRelation(name string, attrs []Attr) (*Relation, error) {
	return relation.New(name, attrs)
}

// FromRows builds a functional relation from explicit rows and measures.
func FromRows(name string, attrs []Attr, rows [][]int32, measures []float64) (*Relation, error) {
	return relation.FromRows(name, attrs, rows, measures)
}

// CompleteRelation builds a relation containing every domain combination
// with measures from fn.
func CompleteRelation(name string, attrs []Attr, fn func(vals []int32) float64) (*Relation, error) {
	return relation.Complete(name, attrs, fn)
}

// SemiringByName resolves a semiring by its report name, e.g.
// "sum-product" or "min-product".
func SemiringByName(name string) (Semiring, error) { return semiring.ByName(name) }

// OptimizerByName resolves an optimizer by its report name, e.g. "cs",
// "cs+linear", "cs+nonlinear", "ve(deg)", "ve(width)+ext".
func OptimizerByName(name string) (Optimizer, error) { return opt.ByName(name) }

// Optimizers lists the report names of all optimizer variants.
func Optimizers() []string { return opt.Names() }

// AllOptimizers returns every registered optimizer variant — the paper's
// fifteen plus the engine extras (the statistics-free greedy planner);
// rng seeds the random elimination heuristic (nil for a fixed seed).
func AllOptimizers(rng *rand.Rand) []Optimizer { return append(opt.All(rng), opt.Extras()...) }
