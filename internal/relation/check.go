package relation

import (
	"fmt"
	"math"
	"math/rand"
)

// CheckFD verifies the defining functional dependency A₁…Aₘ → f of a
// functional relation: no two rows share the same variable assignment.
// It returns an error naming the first violating assignment found.
func (r *Relation) CheckFD() error {
	cols := make([]int, r.Arity())
	for i := range cols {
		cols[i] = i
	}
	seen := make(map[string]int, r.Len())
	for i := 0; i < r.Len(); i++ {
		k := key(r.Row(i), cols)
		if j, dup := seen[k]; dup {
			return fmt.Errorf("relation %s: rows %d and %d share variable assignment %v",
				r.name, j, i, r.Row(i))
		}
		seen[k] = i
	}
	return nil
}

// IsComplete reports whether the relation contains every combination of
// its attribute domains exactly once (the paper's "complete" relations;
// probability functions are complete in principle).
func (r *Relation) IsComplete() bool {
	total := 1
	for _, a := range r.attrs {
		if total > math.MaxInt/a.Domain {
			return false // domain product overflows; cannot be materialized anyway
		}
		total *= a.Domain
	}
	if r.Len() != total {
		return false
	}
	return r.CheckFD() == nil
}

// DomainProduct returns the size of the cross product of attribute
// domains, saturating at MaxInt on overflow.
func (r *Relation) DomainProduct() int {
	total := 1
	for _, a := range r.attrs {
		if total > math.MaxInt/a.Domain {
			return math.MaxInt
		}
		total *= a.Domain
	}
	return total
}

// Equal reports whether a and b denote the same function: identical
// variable sets and, for every variable assignment, measures equal within
// tol. Attribute order may differ. Rows missing from one relation compare
// against the other's measure only if that measure is within tol of the
// provided absent value; callers comparing incomplete relations should
// pass the semiring's Zero as absent.
func Equal(a, b *Relation, absent, tol float64) bool {
	if !a.Vars().Equal(b.Vars()) {
		return false
	}
	order := a.Vars().Sorted()
	aCols := make([]int, len(order))
	bCols := make([]int, len(order))
	for i, v := range order {
		aCols[i], bCols[i] = a.ColIndex(v), b.ColIndex(v)
	}
	am := make(map[string]float64, a.Len())
	for i := 0; i < a.Len(); i++ {
		k := key(a.Row(i), aCols)
		if _, dup := am[k]; dup {
			return false // not a function
		}
		am[k] = a.Measure(i)
	}
	matched := 0
	for i := 0; i < b.Len(); i++ {
		k := key(b.Row(i), bCols)
		av, ok := am[k]
		if !ok {
			if !close2(b.Measure(i), absent, tol) {
				return false
			}
			continue
		}
		matched++
		if !close2(av, b.Measure(i), tol) {
			return false
		}
		delete(am, k)
	}
	_ = matched
	for _, av := range am {
		if !close2(av, absent, tol) {
			return false
		}
	}
	return true
}

func close2(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// FromRows builds a functional relation from explicit rows; convenient for
// tests and examples. Each row is the variable values followed implicitly
// by the matching measure in measures.
func FromRows(name string, attrs []Attr, rows [][]int32, measures []float64) (*Relation, error) {
	if len(rows) != len(measures) {
		return nil, fmt.Errorf("FromRows %s: %d rows but %d measures", name, len(rows), len(measures))
	}
	r, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	for i, row := range rows {
		if err := r.Append(row, measures[i]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Complete builds a complete functional relation over the given attributes
// whose measure for each variable assignment is produced by fn (called in
// lexicographic assignment order).
func Complete(name string, attrs []Attr, fn func(vals []int32) float64) (*Relation, error) {
	r, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	vals := make([]int32, len(attrs))
	for {
		r.appendRaw(vals, fn(vals))
		// Advance odometer.
		i := len(attrs) - 1
		for ; i >= 0; i-- {
			vals[i]++
			if int(vals[i]) < attrs[i].Domain {
				break
			}
			vals[i] = 0
		}
		if i < 0 {
			break
		}
	}
	if len(attrs) == 0 {
		// A zero-arity relation has exactly one (empty) row; the loop above
		// already appended it and terminated.
		_ = r
	}
	return r, nil
}

// Random builds a random functional relation: each combination of domain
// values is included independently with probability density, with a
// measure drawn from fn. density 1 yields a complete relation. At least
// one row is always produced so the relation is never empty.
func Random(rng *rand.Rand, name string, attrs []Attr, density float64, fn func(*rand.Rand) float64) (*Relation, error) {
	r, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	vals := make([]int32, len(attrs))
	for {
		if rng.Float64() < density {
			r.appendRaw(vals, fn(rng))
		}
		i := len(attrs) - 1
		for ; i >= 0; i-- {
			vals[i]++
			if int(vals[i]) < attrs[i].Domain {
				break
			}
			vals[i] = 0
		}
		if i < 0 {
			break
		}
	}
	if r.Len() == 0 {
		for i := range vals {
			vals[i] = int32(rng.Intn(attrs[i].Domain))
		}
		r.appendRaw(vals, fn(rng))
	}
	return r, nil
}

// UniformMeasure returns a measure generator drawing uniformly from
// [lo, hi); for use with Random.
func UniformMeasure(lo, hi float64) func(*rand.Rand) float64 {
	return func(r *rand.Rand) float64 { return lo + r.Float64()*(hi-lo) }
}

// Normalize scales the measures in place so they sum to one, turning an
// unnormalized sum-product marginal into a probability distribution
// (e.g. Pr(C, A=0) into Pr(C | A=0), §4). It errors when the total is
// zero or negative.
func (r *Relation) Normalize() error {
	total := 0.0
	for _, m := range r.measures {
		total += m
	}
	if total <= 0 {
		return fmt.Errorf("relation %s: cannot normalize, total measure %v", r.name, total)
	}
	for i := range r.measures {
		r.measures[i] /= total
	}
	return nil
}
