package relation

import (
	"math/rand"
	"testing"

	"mpf/internal/semiring"
)

// randFR draws a random functional relation over the given attributes.
func randFR(rng *rand.Rand, name string, attrs []Attr) *Relation {
	r, err := Random(rng, name, attrs, 0.5+rng.Float64()*0.5, UniformMeasure(0.1, 4))
	if err != nil {
		panic(err)
	}
	return r
}

// TestMarginalizeAllVarsIsIdentity: grouping an FR on all of its
// variables changes nothing (each group has one row).
func TestMarginalizeAllVarsIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		r := randFR(rng, "r", []Attr{{Name: "a", Domain: 3}, {Name: "b", Domain: 4}})
		for _, sr := range semiring.All() {
			m, err := Marginalize(sr, r, r.VarNames())
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(m, r, sr.Zero(), 1e-12) {
				t.Fatalf("trial %d %s: γ over all vars changed the relation", trial, sr.Name())
			}
		}
	}
}

// TestJoinWithUnitRelationExtendsDomain: joining with a complete all-ones
// relation over a fresh variable replicates each row per new value
// without changing measures.
func TestJoinWithUnitRelationExtendsDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, sr := range []semiring.Semiring{semiring.SumProduct, semiring.MinSum, semiring.MaxProduct} {
		r := randFR(rng, "r", []Attr{{Name: "a", Domain: 3}})
		ones, err := Complete("u", []Attr{{Name: "z", Domain: 4}}, func([]int32) float64 { return sr.One() })
		if err != nil {
			t.Fatal(err)
		}
		j, err := ProductJoin(sr, r, ones)
		if err != nil {
			t.Fatal(err)
		}
		if j.Len() != r.Len()*4 {
			t.Fatalf("%s: extension produced %d rows, want %d", sr.Name(), j.Len(), r.Len()*4)
		}
		// Marginalizing z back out: each measure is the Add-fold of its 4
		// identical copies (Mul with One leaves measures unchanged) — a
		// no-op for min/max semirings, a ×4 for sum-product.
		back, err := MarginalizeOut(sr, j, "z")
		if err != nil {
			t.Fatal(err)
		}
		want, err := New("w", r.Attrs())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < r.Len(); i++ {
			acc := sr.Zero()
			for k := 0; k < 4; k++ {
				acc = sr.Add(acc, r.Measure(i))
			}
			want.MustAppend(append([]int32(nil), r.Row(i)...), acc)
		}
		if !Equal(back, want, sr.Zero(), 1e-9) {
			t.Fatalf("%s: marginalizing the unit extension is not a 4-fold Add", sr.Name())
		}
	}
}

// TestSelectCommutesWithMarginalize: selecting on a kept variable before
// or after marginalization gives the same result.
func TestSelectCommutesWithMarginalize(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		r := randFR(rng, "r", []Attr{{Name: "a", Domain: 3}, {Name: "b", Domain: 3}, {Name: "c", Domain: 3}})
		val := int32(rng.Intn(3))
		// σ_{a=v}(γ_{a}(r)) == γ_{a}(σ_{a=v}(r)).
		m1, err := Marginalize(semiring.SumProduct, r, []string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Select(m1, Predicate{"a": val})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Select(r, Predicate{"a": val})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := Marginalize(semiring.SumProduct, s2, []string{"a"})
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(s1, m2, 0, 1e-9) {
			t.Fatalf("trial %d: select does not commute with marginalize", trial)
		}
	}
}

// TestSelectDistributesOverJoin: σ applies to either side of a product
// join when the variable belongs to that side.
func TestSelectDistributesOverJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 30; trial++ {
		a := randFR(rng, "a", []Attr{{Name: "x", Domain: 3}, {Name: "y", Domain: 3}})
		b := randFR(rng, "b", []Attr{{Name: "y", Domain: 3}, {Name: "z", Domain: 3}})
		val := int32(rng.Intn(3))
		j, err := ProductJoin(semiring.SumProduct, a, b)
		if err != nil {
			t.Fatal(err)
		}
		after, err := Select(j, Predicate{"y": val})
		if err != nil {
			t.Fatal(err)
		}
		sa, _ := Select(a, Predicate{"y": val})
		sb, _ := Select(b, Predicate{"y": val})
		pushed, err := ProductJoin(semiring.SumProduct, sa, sb)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(after, pushed, 0, 1e-9) {
			t.Fatalf("trial %d: selection pushdown changed the join", trial)
		}
	}
}

func TestNormalize(t *testing.T) {
	r, _ := FromRows("r", []Attr{{Name: "a", Domain: 2}},
		[][]int32{{0}, {1}}, []float64{3, 1})
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Measure(0) != 0.75 || r.Measure(1) != 0.25 {
		t.Fatalf("normalized to %v, %v", r.Measure(0), r.Measure(1))
	}
	zero, _ := FromRows("z", []Attr{{Name: "a", Domain: 2}}, [][]int32{{0}}, []float64{0})
	if err := zero.Normalize(); err == nil {
		t.Fatal("zero total should error")
	}
}

// TestProductSemijoinReducesNeverGrows: t ⋉* s has exactly the rows of t
// whose shared values appear in s.
func TestProductSemijoinReducesNeverGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		a := randFR(rng, "a", []Attr{{Name: "x", Domain: 4}, {Name: "y", Domain: 3}})
		b := randFR(rng, "b", []Attr{{Name: "y", Domain: 3}, {Name: "z", Domain: 4}})
		sj, err := ProductSemijoin(semiring.SumProduct, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if sj.Len() > a.Len() {
			t.Fatalf("trial %d: semijoin grew %d -> %d", trial, a.Len(), sj.Len())
		}
		// Each surviving row's y must appear in b.
		yVals := map[int32]bool{}
		for i := 0; i < b.Len(); i++ {
			yVals[b.Value(i, b.ColIndex("y"))] = true
		}
		for i := 0; i < sj.Len(); i++ {
			if !yVals[sj.Value(i, sj.ColIndex("y"))] {
				t.Fatalf("trial %d: semijoin kept a dangling row", trial)
			}
		}
	}
}
