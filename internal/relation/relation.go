// Package relation implements functional relations and the extended
// relational algebra of the MPF setting.
//
// A functional relation (FR) is a relation whose schema is a set of
// variable attributes A₁…Aₘ plus one real-valued measure attribute f, with
// the functional dependency A₁A₂⋯Aₘ → f (paper, Definition 1). Variables
// take values from finite categorical domains encoded as integers
// [0, Domain). The algebra over FRs consists of:
//
//   - the product join  s₁ ⋈* s₂  (Definition 2): a natural join on the
//     shared variables whose result measure is the semiring product of the
//     operand measures;
//   - the marginalizing GroupBy  γ_X(s): group on X and fold the measure
//     with the semiring's additive operation;
//   - selections on variable attributes;
//   - the product semijoin  t ⋉* s  and update semijoin  t ⋉ s
//     (Definition 6) used by Belief Propagation.
//
// All operations are pure: they return new relations and never mutate
// their operands.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr describes one variable attribute: its name and the size of its
// categorical domain. Values of the attribute are integers in [0, Domain).
// The JSON encoding is the obvious object form, e.g.
// {"name":"wid","domain":50}; it is part of the wire protocol
// (internal/server) and must stay stable.
type Attr struct {
	Name   string `json:"name"`
	Domain int    `json:"domain"`
}

// Relation is an in-memory functional relation. Rows are stored row-major
// in vals (arity int32s per row) with a parallel measure slice.
//
// The zero value is not usable; construct relations with New.
type Relation struct {
	name     string
	attrs    []Attr
	colIndex map[string]int
	vals     []int32
	measures []float64
}

// New returns an empty functional relation with the given name and
// variable attributes. Attribute names must be unique and domains positive.
func New(name string, attrs []Attr) (*Relation, error) {
	idx := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation %s: attribute %d has empty name", name, i)
		}
		if a.Domain <= 0 {
			return nil, fmt.Errorf("relation %s: attribute %s has non-positive domain %d", name, a.Name, a.Domain)
		}
		if _, dup := idx[a.Name]; dup {
			return nil, fmt.Errorf("relation %s: duplicate attribute %s", name, a.Name)
		}
		idx[a.Name] = i
	}
	return &Relation{
		name:     name,
		attrs:    append([]Attr(nil), attrs...),
		colIndex: idx,
	}, nil
}

// MustNew is New that panics on error; intended for tests and literals.
func MustNew(name string, attrs []Attr) *Relation {
	r, err := New(name, attrs)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// SetName renames the relation (names are diagnostic only).
func (r *Relation) SetName(name string) { r.name = name }

// Attrs returns the variable attributes in schema order. The caller must
// not modify the returned slice.
func (r *Relation) Attrs() []Attr { return r.attrs }

// VarNames returns the variable attribute names in schema order.
func (r *Relation) VarNames() []string {
	names := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		names[i] = a.Name
	}
	return names
}

// Arity returns the number of variable attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.measures) }

// HasVar reports whether the relation has a variable attribute named v.
func (r *Relation) HasVar(v string) bool {
	_, ok := r.colIndex[v]
	return ok
}

// ColIndex returns the schema position of variable v, or -1.
func (r *Relation) ColIndex(v string) int {
	if i, ok := r.colIndex[v]; ok {
		return i
	}
	return -1
}

// Attr returns the attribute named v.
func (r *Relation) Attr(v string) (Attr, bool) {
	i, ok := r.colIndex[v]
	if !ok {
		return Attr{}, false
	}
	return r.attrs[i], true
}

// Value returns the value of column col in the given row.
func (r *Relation) Value(row, col int) int32 {
	return r.vals[row*len(r.attrs)+col]
}

// Row returns the variable values of one row. The returned slice aliases
// internal storage and must not be modified.
func (r *Relation) Row(row int) []int32 {
	a := len(r.attrs)
	return r.vals[row*a : row*a+a]
}

// Measure returns the measure of the given row.
func (r *Relation) Measure(row int) float64 { return r.measures[row] }

// SetMeasure overwrites the measure of the given row. It is used by
// in-place measure transformations such as normalization.
func (r *Relation) SetMeasure(row int, m float64) { r.measures[row] = m }

// Append adds a row. The number of values must equal the arity and each
// value must lie within its attribute's domain.
func (r *Relation) Append(vals []int32, measure float64) error {
	if len(vals) != len(r.attrs) {
		return fmt.Errorf("relation %s: Append got %d values, want %d", r.name, len(vals), len(r.attrs))
	}
	for i, v := range vals {
		if v < 0 || int(v) >= r.attrs[i].Domain {
			return fmt.Errorf("relation %s: value %d out of domain [0,%d) for %s",
				r.name, v, r.attrs[i].Domain, r.attrs[i].Name)
		}
	}
	r.vals = append(r.vals, vals...)
	r.measures = append(r.measures, measure)
	return nil
}

// MustAppend is Append that panics on error.
func (r *Relation) MustAppend(vals []int32, measure float64) {
	if err := r.Append(vals, measure); err != nil {
		panic(err)
	}
}

// appendRaw adds a row without validation; internal fast path for
// operators that construct rows from already-validated inputs.
func (r *Relation) appendRaw(vals []int32, measure float64) {
	r.vals = append(r.vals, vals...)
	r.measures = append(r.measures, measure)
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		name:     r.name,
		attrs:    append([]Attr(nil), r.attrs...),
		colIndex: make(map[string]int, len(r.colIndex)),
		vals:     append([]int32(nil), r.vals...),
		measures: append([]float64(nil), r.measures...),
	}
	for k, v := range r.colIndex {
		c.colIndex[k] = v
	}
	return c
}

// Sort orders rows lexicographically by variable values. Sorting is stable
// with respect to equal keys and is used to produce deterministic output.
func (r *Relation) Sort() {
	n := r.Len()
	a := len(r.attrs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		rx := r.vals[idx[x]*a : idx[x]*a+a]
		ry := r.vals[idx[y]*a : idx[y]*a+a]
		for i := 0; i < a; i++ {
			if rx[i] != ry[i] {
				return rx[i] < ry[i]
			}
		}
		return false
	})
	nv := make([]int32, len(r.vals))
	nm := make([]float64, len(r.measures))
	for to, from := range idx {
		copy(nv[to*a:to*a+a], r.vals[from*a:from*a+a])
		nm[to] = r.measures[from]
	}
	r.vals, r.measures = nv, nm
}

// String renders the relation as a small table; intended for debugging and
// examples, not for large relations.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.name)
	for i, a := range r.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
	}
	fmt.Fprintf(&b, ", f) [%d rows]\n", r.Len())
	n := r.Len()
	const maxRows = 50
	for i := 0; i < n && i < maxRows; i++ {
		row := r.Row(i)
		for j, v := range row {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d", v)
		}
		fmt.Fprintf(&b, " | %g\n", r.measures[i])
	}
	if n > maxRows {
		fmt.Fprintf(&b, "... (%d more rows)\n", n-maxRows)
	}
	return b.String()
}

// VarSet is a set of variable names.
type VarSet map[string]bool

// NewVarSet builds a VarSet from names.
func NewVarSet(names ...string) VarSet {
	s := make(VarSet, len(names))
	for _, n := range names {
		s[n] = true
	}
	return s
}

// Vars returns the set of variable names of r (paper's Var(s)).
func (r *Relation) Vars() VarSet {
	s := make(VarSet, len(r.attrs))
	for _, a := range r.attrs {
		s[a.Name] = true
	}
	return s
}

// Union returns a ∪ b.
func (a VarSet) Union(b VarSet) VarSet {
	u := make(VarSet, len(a)+len(b))
	for k := range a {
		u[k] = true
	}
	for k := range b {
		u[k] = true
	}
	return u
}

// Intersect returns a ∩ b.
func (a VarSet) Intersect(b VarSet) VarSet {
	u := make(VarSet)
	for k := range a {
		if b[k] {
			u[k] = true
		}
	}
	return u
}

// Minus returns a \ b.
func (a VarSet) Minus(b VarSet) VarSet {
	u := make(VarSet)
	for k := range a {
		if !b[k] {
			u[k] = true
		}
	}
	return u
}

// Contains reports whether every element of b is in a.
func (a VarSet) Contains(b VarSet) bool {
	for k := range b {
		if !a[k] {
			return false
		}
	}
	return true
}

// Sorted returns the elements in lexicographic order.
func (a VarSet) Sorted() []string {
	out := make([]string, 0, len(a))
	for k := range a {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether the two sets have identical elements.
func (a VarSet) Equal(b VarSet) bool {
	return len(a) == len(b) && a.Contains(b)
}
