package relation

import (
	"encoding/json"
	"fmt"
)

// relationJSON is the wire form of a Relation: schema plus row-major
// values and a parallel measure column. The encoding is the canonical
// one shared by the HTTP wire protocol (internal/server) and any client
// that round-trips relations as JSON.
type relationJSON struct {
	Name     string    `json:"name"`
	Attrs    []Attr    `json:"attrs"`
	Rows     [][]int32 `json:"rows"`
	Measures []float64 `json:"measures"`
}

// MarshalJSON encodes the relation as
// {"name":...,"attrs":[...],"rows":[[...]...],"measures":[...]}.
// Row order is preserved; callers needing a canonical byte encoding
// should Sort first.
func (r *Relation) MarshalJSON() ([]byte, error) {
	w := relationJSON{
		Name:     r.name,
		Attrs:    r.attrs,
		Rows:     make([][]int32, r.Len()),
		Measures: append([]float64(nil), r.measures...),
	}
	for i := 0; i < r.Len(); i++ {
		w.Rows[i] = append([]int32(nil), r.Row(i)...)
	}
	if w.Rows == nil {
		w.Rows = [][]int32{}
	}
	if w.Measures == nil {
		w.Measures = []float64{}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, validating the schema (unique
// attribute names, positive domains) and every value against its
// attribute domain. The functional-dependency check is not performed
// here — CreateTable and hypothetical validation do that where it
// matters — so decoding stays linear in the payload.
func (r *Relation) UnmarshalJSON(data []byte) error {
	var w relationJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Rows) != len(w.Measures) {
		return fmt.Errorf("relation %s: %d rows but %d measures", w.Name, len(w.Rows), len(w.Measures))
	}
	fresh, err := New(w.Name, w.Attrs)
	if err != nil {
		return err
	}
	for i, row := range w.Rows {
		if err := fresh.Append(row, w.Measures[i]); err != nil {
			return err
		}
	}
	*r = *fresh
	return nil
}
