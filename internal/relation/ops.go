package relation

import (
	"encoding/binary"
	"fmt"

	"mpf/internal/semiring"
)

// key encodes the values of the given columns of a row as a compact string
// suitable for use as a hash-map key.
func key(row []int32, cols []int) string {
	buf := make([]byte, 4*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(row[c]))
	}
	return string(buf)
}

// ProductJoin computes s₁ ⋈* s₂ (Definition 2): the natural join on the
// shared variable attributes, with the result measure being the semiring
// product of the operand measures. The output schema is Var(s₁) ∪ Var(s₂)
// in the order: all of a's attributes, then b's attributes not in a.
// If the operands share no variables the result is their cross product,
// which is the correct semantics for combining independent factors.
func ProductJoin(sr semiring.Semiring, a, b *Relation) (*Relation, error) {
	shared := a.Vars().Intersect(b.Vars()).Sorted()
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		ai, bi := a.ColIndex(v), b.ColIndex(v)
		da, _ := a.Attr(v)
		db, _ := b.Attr(v)
		if da.Domain != db.Domain {
			return nil, fmt.Errorf("product join %s ⋈* %s: variable %s has domain %d vs %d",
				a.Name(), b.Name(), v, da.Domain, db.Domain)
		}
		aCols[i], bCols[i] = ai, bi
	}

	// Output schema: a's attrs, then b's attrs not shared.
	outAttrs := append([]Attr(nil), a.attrs...)
	var bExtraCols []int
	for i, attr := range b.attrs {
		if !a.HasVar(attr.Name) {
			outAttrs = append(outAttrs, attr)
			bExtraCols = append(bExtraCols, i)
		}
	}
	out, err := New(fmt.Sprintf("(%s⋈*%s)", a.Name(), b.Name()), outAttrs)
	if err != nil {
		return nil, err
	}

	// Build hash table on the smaller operand.
	build, probe := a, b
	buildCols, probeCols := aCols, bCols
	swapped := false
	if b.Len() < a.Len() {
		build, probe = b, a
		buildCols, probeCols = bCols, aCols
		swapped = true
	}
	ht := make(map[string][]int, build.Len())
	for i := 0; i < build.Len(); i++ {
		k := key(build.Row(i), buildCols)
		ht[k] = append(ht[k], i)
	}

	row := make([]int32, len(outAttrs))
	emit := func(ra, rb int) {
		copy(row, a.Row(ra))
		rbRow := b.Row(rb)
		for i, c := range bExtraCols {
			row[len(a.attrs)+i] = rbRow[c]
		}
		out.appendRaw(row, sr.Mul(a.Measure(ra), b.Measure(rb)))
	}
	for i := 0; i < probe.Len(); i++ {
		k := key(probe.Row(i), probeCols)
		for _, j := range ht[k] {
			if swapped {
				emit(i, j) // probe is a, build is b
			} else {
				emit(j, i)
			}
		}
	}
	return out, nil
}

// ProductJoinAll folds ProductJoin over all relations left to right.
// An empty input is invalid.
func ProductJoinAll(sr semiring.Semiring, rels ...*Relation) (*Relation, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("ProductJoinAll: no relations")
	}
	acc := rels[0]
	var err error
	for _, r := range rels[1:] {
		acc, err = ProductJoin(sr, acc, r)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// Marginalize computes γ_keep(r): group on the attributes named in keep
// (which must all exist in r) and fold the measure with the semiring's
// additive operation. The output attribute order follows r's schema order
// restricted to keep. Marginalizing onto all of r's variables collapses
// duplicate variable assignments, restoring the FR functional dependency.
func Marginalize(sr semiring.Semiring, r *Relation, keep []string) (*Relation, error) {
	cols := make([]int, 0, len(keep))
	seen := make(map[string]bool, len(keep))
	for _, v := range keep {
		if seen[v] {
			continue
		}
		seen[v] = true
		c := r.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("marginalize %s: no variable %s", r.Name(), v)
		}
		cols = append(cols, c)
	}
	// Preserve schema order.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j-1] > cols[j]; j-- {
			cols[j-1], cols[j] = cols[j], cols[j-1]
		}
	}

	outAttrs := make([]Attr, len(cols))
	for i, c := range cols {
		outAttrs[i] = r.attrs[c]
	}
	out, err := New(fmt.Sprintf("γ(%s)", r.Name()), outAttrs)
	if err != nil {
		return nil, err
	}

	type group struct {
		row int // output row index
	}
	groups := make(map[string]group, r.Len())
	rowBuf := make([]int32, len(cols))
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		k := key(row, cols)
		if g, ok := groups[k]; ok {
			out.measures[g.row] = sr.Add(out.measures[g.row], r.Measure(i))
			continue
		}
		for j, c := range cols {
			rowBuf[j] = row[c]
		}
		out.appendRaw(rowBuf, r.Measure(i))
		groups[k] = group{row: out.Len() - 1}
	}
	return out, nil
}

// MarginalizeOut removes the given variables: γ_{Var(r) \ drop}(r).
func MarginalizeOut(sr semiring.Semiring, r *Relation, drop ...string) (*Relation, error) {
	dropSet := NewVarSet(drop...)
	keep := make([]string, 0, r.Arity())
	for _, a := range r.attrs {
		if !dropSet[a.Name] {
			keep = append(keep, a.Name)
		}
	}
	return Marginalize(sr, r, keep)
}

// Predicate is a conjunction of equality constraints variable = value.
type Predicate map[string]int32

// Select returns the rows of r satisfying all equality constraints in p.
// Constraint variables must exist in r.
func Select(r *Relation, p Predicate) (*Relation, error) {
	cols := make([]int, 0, len(p))
	want := make([]int32, 0, len(p))
	for v, val := range p {
		c := r.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("select on %s: no variable %s", r.Name(), v)
		}
		cols = append(cols, c)
		want = append(want, val)
	}
	out, err := New(fmt.Sprintf("σ(%s)", r.Name()), r.attrs)
	if err != nil {
		return nil, err
	}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		match := true
		for j, c := range cols {
			if row[c] != want[j] {
				match = false
				break
			}
		}
		if match {
			out.appendRaw(row, r.Measure(i))
		}
	}
	return out, nil
}

// ProductSemijoin computes t ⋉* s (Definition 6):
//
//	t ⋉* s = t ⋈* γ_{U, AGG(s[f])}(s),  U = Var(t) ∩ Var(s).
//
// The result has t's schema; each t measure is multiplied by the marginal
// of s over the shared variables.
func ProductSemijoin(sr semiring.Semiring, t, s *Relation) (*Relation, error) {
	u := t.Vars().Intersect(s.Vars())
	if len(u) == 0 {
		return nil, fmt.Errorf("product semijoin %s ⋉* %s: no shared variables", t.Name(), s.Name())
	}
	sm, err := Marginalize(sr, s, u.Sorted())
	if err != nil {
		return nil, err
	}
	out, err := ProductJoin(sr, t, sm)
	if err != nil {
		return nil, err
	}
	out.SetName(fmt.Sprintf("(%s⋉*%s)", t.Name(), s.Name()))
	return out, nil
}

// divisionJoin is the ⋈: operator: defined exactly like product join but
// combining measures with semiring division instead of multiplication.
func divisionJoin(sr semiring.Semiring, a, b *Relation) (*Relation, error) {
	div, ok := sr.(semiring.Divider)
	if !ok {
		return nil, fmt.Errorf("division join: semiring %s does not support division", sr.Name())
	}
	shared := a.Vars().Intersect(b.Vars()).Sorted()
	if len(shared) == 0 {
		return nil, fmt.Errorf("division join %s ⋈: %s: no shared variables", a.Name(), b.Name())
	}
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		aCols[i], bCols[i] = a.ColIndex(v), b.ColIndex(v)
	}
	outAttrs := append([]Attr(nil), a.attrs...)
	var bExtraCols []int
	for i, attr := range b.attrs {
		if !a.HasVar(attr.Name) {
			outAttrs = append(outAttrs, attr)
			bExtraCols = append(bExtraCols, i)
		}
	}
	out, err := New(fmt.Sprintf("(%s⋈:%s)", a.Name(), b.Name()), outAttrs)
	if err != nil {
		return nil, err
	}
	ht := make(map[string][]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		ht[key(b.Row(i), bCols)] = append(ht[key(b.Row(i), bCols)], i)
	}
	row := make([]int32, len(outAttrs))
	for i := 0; i < a.Len(); i++ {
		k := key(a.Row(i), aCols)
		for _, j := range ht[k] {
			copy(row, a.Row(i))
			rbRow := b.Row(j)
			for x, c := range bExtraCols {
				row[len(a.attrs)+x] = rbRow[c]
			}
			out.appendRaw(row, div.Div(a.Measure(i), b.Measure(j)))
		}
	}
	return out, nil
}

// UpdateSemijoin computes t ⋉ s (Definition 6):
//
//	t ⋉ s = t ⋈* ( γ_U(s) ⋈: γ_U(t) )
//
// i.e. t's measure is multiplied by the marginal of s over the shared
// variables U divided by t's own marginal over U. Belief Propagation's
// backward pass uses this so that the information t itself propagated
// forward into s (and which is therefore contained in γ_U(s)) is not
// counted twice when t absorbs s's marginal.
//
// The paper's Definition 6 displays the division operands in the order
// γ_U(t) ⋈: γ_U(s); its worked example (t ⋉ ct in Appendix A) divides
// s's marginal by t's, which is the form implemented here and the one
// under which Theorem 6 (BP correctness) holds.
func UpdateSemijoin(sr semiring.Semiring, t, s *Relation) (*Relation, error) {
	u := t.Vars().Intersect(s.Vars())
	if len(u) == 0 {
		return nil, fmt.Errorf("update semijoin %s ⋉ %s: no shared variables", t.Name(), s.Name())
	}
	us := u.Sorted()
	sm, err := Marginalize(sr, s, us)
	if err != nil {
		return nil, err
	}
	tm, err := Marginalize(sr, t, us)
	if err != nil {
		return nil, err
	}
	ratio, err := divisionJoin(sr, sm, tm)
	if err != nil {
		return nil, err
	}
	out, err := ProductJoin(sr, t, ratio)
	if err != nil {
		return nil, err
	}
	out.SetName(fmt.Sprintf("(%s⋉%s)", t.Name(), s.Name()))
	return out, nil
}

// Project returns r restricted to the named attributes WITHOUT aggregating
// duplicate rows (classical projection with bag-to-set collapse on
// identical (vars, measure) pairs is not performed; duplicates are kept).
// Use Marginalize for the MPF semantics. Project exists to express
// Proposition 1, where projection and marginalization coincide.
func Project(r *Relation, keep []string) (*Relation, error) {
	cols := make([]int, len(keep))
	attrs := make([]Attr, len(keep))
	for i, v := range keep {
		c := r.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("project %s: no variable %s", r.Name(), v)
		}
		cols[i] = c
		attrs[i] = r.attrs[c]
	}
	out, err := New(fmt.Sprintf("π(%s)", r.Name()), attrs)
	if err != nil {
		return nil, err
	}
	row := make([]int32, len(cols))
	seen := make(map[string]bool, r.Len())
	for i := 0; i < r.Len(); i++ {
		src := r.Row(i)
		for j, c := range cols {
			row[j] = src[c]
		}
		k := key(src, cols)
		if seen[k] {
			continue
		}
		seen[k] = true
		out.appendRaw(row, r.Measure(i))
	}
	return out, nil
}
