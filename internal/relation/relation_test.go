package relation

import (
	"math/rand"
	"testing"

	"mpf/internal/semiring"
)

func attrsABC() []Attr {
	return []Attr{{"A", 2}, {"B", 3}, {"C", 2}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("r", []Attr{{"", 2}}); err == nil {
		t.Fatal("empty attribute name should error")
	}
	if _, err := New("r", []Attr{{"A", 0}}); err == nil {
		t.Fatal("zero domain should error")
	}
	if _, err := New("r", []Attr{{"A", 2}, {"A", 2}}); err == nil {
		t.Fatal("duplicate attribute should error")
	}
	r, err := New("r", attrsABC())
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 3 || r.Len() != 0 {
		t.Fatalf("unexpected shape: arity %d len %d", r.Arity(), r.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	r := MustNew("r", attrsABC())
	if err := r.Append([]int32{0, 1}, 1); err == nil {
		t.Fatal("wrong arity should error")
	}
	if err := r.Append([]int32{0, 3, 0}, 1); err == nil {
		t.Fatal("out-of-domain value should error")
	}
	if err := r.Append([]int32{-1, 0, 0}, 1); err == nil {
		t.Fatal("negative value should error")
	}
	if err := r.Append([]int32{1, 2, 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Measure(0) != 0.5 || r.Value(0, 1) != 2 {
		t.Fatal("row not stored correctly")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := MustNew("r", attrsABC())
	r.MustAppend([]int32{0, 0, 0}, 1)
	c := r.Clone()
	c.SetMeasure(0, 99)
	c.MustAppend([]int32{1, 1, 1}, 2)
	if r.Measure(0) != 1 || r.Len() != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSortDeterministic(t *testing.T) {
	r := MustNew("r", []Attr{{"A", 3}, {"B", 3}})
	r.MustAppend([]int32{2, 0}, 1)
	r.MustAppend([]int32{0, 1}, 2)
	r.MustAppend([]int32{0, 0}, 3)
	r.MustAppend([]int32{1, 2}, 4)
	r.Sort()
	want := [][]int32{{0, 0}, {0, 1}, {1, 2}, {2, 0}}
	wantM := []float64{3, 2, 4, 1}
	for i := range want {
		if r.Value(i, 0) != want[i][0] || r.Value(i, 1) != want[i][1] || r.Measure(i) != wantM[i] {
			t.Fatalf("row %d = %v|%v, want %v|%v", i, r.Row(i), r.Measure(i), want[i], wantM[i])
		}
	}
}

func TestProductJoinBasic(t *testing.T) {
	// s1(A,B), s2(B,C); join on B, measures multiply.
	s1, _ := FromRows("s1", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 1}}, []float64{2, 3, 5})
	s2, _ := FromRows("s2", []Attr{{"B", 2}, {"C", 2}},
		[][]int32{{0, 0}, {1, 0}, {1, 1}}, []float64{7, 11, 13})
	j, err := ProductJoin(semiring.SumProduct, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows("want", []Attr{{"A", 2}, {"B", 2}, {"C", 2}},
		[][]int32{{0, 0, 0}, {0, 1, 0}, {0, 1, 1}, {1, 1, 0}, {1, 1, 1}},
		[]float64{14, 33, 39, 55, 65})
	if !Equal(j, want, 0, 1e-12) {
		t.Fatalf("join mismatch:\n%v\nwant\n%v", j, want)
	}
	if err := j.CheckFD(); err != nil {
		t.Fatal(err)
	}
}

func TestProductJoinNoSharedVarsIsCrossProduct(t *testing.T) {
	s1, _ := FromRows("s1", []Attr{{"A", 2}}, [][]int32{{0}, {1}}, []float64{2, 3})
	s2, _ := FromRows("s2", []Attr{{"B", 2}}, [][]int32{{0}, {1}}, []float64{5, 7})
	j, err := ProductJoin(semiring.SumProduct, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("cross product has %d rows, want 4", j.Len())
	}
	want, _ := FromRows("w", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}, []float64{10, 14, 15, 21})
	if !Equal(j, want, 0, 1e-12) {
		t.Fatal("cross product measures wrong")
	}
}

func TestProductJoinDomainMismatch(t *testing.T) {
	s1 := MustNew("s1", []Attr{{"A", 2}})
	s2 := MustNew("s2", []Attr{{"A", 3}})
	if _, err := ProductJoin(semiring.SumProduct, s1, s2); err == nil {
		t.Fatal("domain mismatch should error")
	}
}

func TestProductJoinCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		a, _ := Random(rng, "a", []Attr{{"X", 3}, {"Y", 2}}, 0.7, UniformMeasure(0, 5))
		b, _ := Random(rng, "b", []Attr{{"Y", 2}, {"Z", 3}}, 0.7, UniformMeasure(0, 5))
		ab, err := ProductJoin(semiring.SumProduct, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := ProductJoin(semiring.SumProduct, b, a)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ab, ba, 0, 1e-9) {
			t.Fatalf("trial %d: a⋈*b != b⋈*a", trial)
		}
	}
}

func TestProductJoinAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		a, _ := Random(rng, "a", []Attr{{"X", 2}, {"Y", 2}}, 0.8, UniformMeasure(0, 3))
		b, _ := Random(rng, "b", []Attr{{"Y", 2}, {"Z", 2}}, 0.8, UniformMeasure(0, 3))
		c, _ := Random(rng, "c", []Attr{{"Z", 2}, {"W", 2}}, 0.8, UniformMeasure(0, 3))
		left, err := ProductJoinAll(semiring.SumProduct, a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := ProductJoin(semiring.SumProduct, b, c)
		if err != nil {
			t.Fatal(err)
		}
		right, err := ProductJoin(semiring.SumProduct, a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(left, right, 0, 1e-9) {
			t.Fatalf("trial %d: (a⋈*b)⋈*c != a⋈*(b⋈*c)", trial)
		}
	}
}

func TestMarginalizeBasic(t *testing.T) {
	r, _ := FromRows("r", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}, {1, 1}}, []float64{1, 2, 3, 4})
	m, err := Marginalize(semiring.SumProduct, r, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows("w", []Attr{{"A", 2}}, [][]int32{{0}, {1}}, []float64{3, 7})
	if !Equal(m, want, 0, 1e-12) {
		t.Fatalf("marginal mismatch:\n%v", m)
	}
	// Min-aggregation.
	mm, err := Marginalize(semiring.MinProduct, r, []string{"B"})
	if err != nil {
		t.Fatal(err)
	}
	wantMin, _ := FromRows("w", []Attr{{"B", 2}}, [][]int32{{0}, {1}}, []float64{1, 2})
	if !Equal(mm, wantMin, semiring.MinProduct.Zero(), 1e-12) {
		t.Fatalf("min marginal mismatch:\n%v", mm)
	}
}

func TestMarginalizeUnknownVar(t *testing.T) {
	r := MustNew("r", attrsABC())
	if _, err := Marginalize(semiring.SumProduct, r, []string{"Q"}); err == nil {
		t.Fatal("unknown variable should error")
	}
}

func TestMarginalizePreservesSchemaOrder(t *testing.T) {
	r, _ := Complete("r", attrsABC(), func(v []int32) float64 { return 1 })
	m, err := Marginalize(semiring.SumProduct, r, []string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	names := m.VarNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "C" {
		t.Fatalf("schema order not preserved: %v", names)
	}
}

func TestMarginalizeOut(t *testing.T) {
	r, _ := Complete("r", attrsABC(), func(v []int32) float64 { return 1 })
	m, err := MarginalizeOut(semiring.SumProduct, r, "B")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Vars().Sorted(); len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Fatalf("MarginalizeOut kept %v", got)
	}
	// Each (A,C) group sums 3 ones.
	for i := 0; i < m.Len(); i++ {
		if m.Measure(i) != 3 {
			t.Fatalf("measure %v, want 3", m.Measure(i))
		}
	}
}

// TestGroupByDistributesOverProductJoin verifies the Generalized
// Distributive Law identity the whole optimizer relies on:
// γ_X(a ⋈* b) == γ_X(γ_{X∪shared}(a) ⋈* b) when the variables dropped
// early appear only in a.
func TestGroupByDistributesOverProductJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sr := range semiring.All() {
		meas := UniformMeasure(0.1, 4)
		if sr.Name() == "bool-or-and" {
			meas = func(r *rand.Rand) float64 { return float64(r.Intn(2)) }
		}
		for trial := 0; trial < 20; trial++ {
			// a(P,Q,S), b(S,T): P,Q private to a; S shared.
			a, _ := Random(rng, "a", []Attr{{"P", 3}, {"Q", 2}, {"S", 2}}, 0.8, meas)
			b, _ := Random(rng, "b", []Attr{{"S", 2}, {"T", 3}}, 0.8, meas)
			// Late aggregation.
			j, err := ProductJoin(sr, a, b)
			if err != nil {
				t.Fatal(err)
			}
			late, err := Marginalize(sr, j, []string{"T"})
			if err != nil {
				t.Fatal(err)
			}
			// Early aggregation: push γ into a, keeping shared var S.
			aEarly, err := Marginalize(sr, a, []string{"S"})
			if err != nil {
				t.Fatal(err)
			}
			j2, err := ProductJoin(sr, aEarly, b)
			if err != nil {
				t.Fatal(err)
			}
			early, err := Marginalize(sr, j2, []string{"T"})
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(late, early, sr.Zero(), 1e-9) {
				t.Fatalf("%s trial %d: GroupBy pushdown changed the result", sr.Name(), trial)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	r, _ := Complete("r", attrsABC(), func(v []int32) float64 {
		return float64(v[0]*100 + v[1]*10 + v[2])
	})
	s, err := Select(r, Predicate{"B": 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("selected %d rows, want 4", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.Value(i, 1) != 2 {
			t.Fatal("selection kept a non-matching row")
		}
	}
	if _, err := Select(r, Predicate{"Q": 1}); err == nil {
		t.Fatal("unknown selection variable should error")
	}
}

func TestProductSemijoin(t *testing.T) {
	// t(A,B), s(B,C): t ⋉* s multiplies each t row by γ_B(s).
	tt, _ := FromRows("t", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {1, 1}}, []float64{2, 3})
	ss, _ := FromRows("s", []Attr{{"B", 2}, {"C", 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}}, []float64{5, 7, 11})
	got, err := ProductSemijoin(semiring.SumProduct, tt, ss)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows("w", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {1, 1}}, []float64{2 * 12, 3 * 11})
	if !Equal(got, want, 0, 1e-12) {
		t.Fatalf("product semijoin mismatch:\n%v", got)
	}
	// Schema unchanged.
	if !got.Vars().Equal(tt.Vars()) {
		t.Fatal("product semijoin changed schema")
	}
}

func TestProductSemijoinRequiresSharedVars(t *testing.T) {
	a := MustNew("a", []Attr{{"A", 2}})
	b := MustNew("b", []Attr{{"B", 2}})
	if _, err := ProductSemijoin(semiring.SumProduct, a, b); err == nil {
		t.Fatal("no shared variables should error")
	}
	if _, err := UpdateSemijoin(semiring.SumProduct, a, b); err == nil {
		t.Fatal("no shared variables should error")
	}
}

// TestTwoNodeBeliefPropagation verifies the defining use of the two
// semijoins: for relations t and s sharing variables U, the forward pass
// s' = s ⋉* t followed by the backward pass t' = t ⋉ s' leaves both
// relations equal to the joint function marginalized onto their own
// variables (Definition 5's workload correctness invariant on a two-node
// schema).
func TestTwoNodeBeliefPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		tt, _ := Random(rng, "t", []Attr{{"A", 3}, {"B", 2}}, 1, UniformMeasure(0.5, 2))
		ss, _ := Random(rng, "s", []Attr{{"B", 2}, {"C", 3}}, 1, UniformMeasure(0.5, 2))
		joint, err := ProductJoin(semiring.SumProduct, tt, ss)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := ProductSemijoin(semiring.SumProduct, ss, tt)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := UpdateSemijoin(semiring.SumProduct, tt, s1)
		if err != nil {
			t.Fatal(err)
		}
		wantS, err := Marginalize(semiring.SumProduct, joint, ss.VarNames())
		if err != nil {
			t.Fatal(err)
		}
		wantT, err := Marginalize(semiring.SumProduct, joint, tt.VarNames())
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(s1, wantS, 0, 1e-9) {
			t.Fatalf("trial %d: forward pass did not produce the joint marginal on s", trial)
		}
		if !Equal(t1, wantT, 0, 1e-9) {
			t.Fatalf("trial %d: backward pass did not produce the joint marginal on t", trial)
		}
	}
}

// TestUpdateSemijoinIdentityWhenMarginalsAgree: when γ_U(s) == γ_U(t) the
// correction ratio is identically one and t ⋉ s == t.
func TestUpdateSemijoinIdentityWhenMarginalsAgree(t *testing.T) {
	tt, _ := Complete("t", []Attr{{"A", 2}, {"B", 2}}, func(v []int32) float64 { return 1 })
	ss, _ := Complete("s", []Attr{{"B", 2}, {"C", 2}}, func(v []int32) float64 { return 1 })
	// γ_B(t) = 2 for each B value; γ_B(s) = 2 as well.
	got, err := UpdateSemijoin(semiring.SumProduct, tt, ss)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, tt, 0, 1e-12) {
		t.Fatalf("update semijoin with equal marginals should be identity:\n%v", got)
	}
}

func TestUpdateSemijoinRequiresDivider(t *testing.T) {
	tt := MustNew("t", []Attr{{"A", 2}})
	tt.MustAppend([]int32{0}, 1)
	ss := MustNew("s", []Attr{{"A", 2}})
	ss.MustAppend([]int32{0}, 1)
	if _, err := UpdateSemijoin(semiring.BoolOrAnd, tt, ss); err == nil {
		t.Fatal("bool semiring has no division; UpdateSemijoin should error")
	}
}

func TestCheckFD(t *testing.T) {
	r := MustNew("r", []Attr{{"A", 2}})
	r.MustAppend([]int32{0}, 1)
	r.MustAppend([]int32{1}, 2)
	if err := r.CheckFD(); err != nil {
		t.Fatal(err)
	}
	r.MustAppend([]int32{0}, 3)
	if err := r.CheckFD(); err == nil {
		t.Fatal("duplicate assignment should violate FD")
	}
}

func TestIsCompleteAndDomainProduct(t *testing.T) {
	r, _ := Complete("r", attrsABC(), func(v []int32) float64 { return 1 })
	if !r.IsComplete() {
		t.Fatal("Complete should build a complete relation")
	}
	if r.DomainProduct() != 12 {
		t.Fatalf("DomainProduct = %d, want 12", r.DomainProduct())
	}
	inc := MustNew("inc", attrsABC())
	inc.MustAppend([]int32{0, 0, 0}, 1)
	if inc.IsComplete() {
		t.Fatal("single-row relation is not complete")
	}
}

func TestEqualSemantics(t *testing.T) {
	a, _ := FromRows("a", []Attr{{"X", 2}, {"Y", 2}},
		[][]int32{{0, 0}, {1, 1}}, []float64{1, 2})
	// Same function, different attribute order and row order.
	b, _ := FromRows("b", []Attr{{"Y", 2}, {"X", 2}},
		[][]int32{{1, 1}, {0, 0}}, []float64{2, 1})
	if !Equal(a, b, 0, 1e-12) {
		t.Fatal("Equal should ignore attribute and row order")
	}
	// Missing row equals absent value.
	c, _ := FromRows("c", []Attr{{"X", 2}, {"Y", 2}},
		[][]int32{{0, 0}, {1, 1}, {0, 1}}, []float64{1, 2, 0})
	if !Equal(a, c, 0, 1e-12) {
		t.Fatal("explicit zero row should equal absent row")
	}
	d, _ := FromRows("d", []Attr{{"X", 2}, {"Y", 2}},
		[][]int32{{0, 0}}, []float64{1})
	if Equal(a, d, 0, 1e-12) {
		t.Fatal("missing non-zero row should not be equal")
	}
	e := MustNew("e", []Attr{{"X", 2}})
	if Equal(a, e, 0, 1e-12) {
		t.Fatal("different schemas should not be equal")
	}
}

func TestProjectKeepsFirstMeasure(t *testing.T) {
	r, _ := FromRows("r", []Attr{{"A", 2}, {"B", 2}},
		[][]int32{{0, 0}, {0, 1}}, []float64{5, 9})
	p, err := Project(r, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 || p.Measure(0) != 5 {
		t.Fatalf("project result %v", p)
	}
	if _, err := Project(r, []string{"Z"}); err == nil {
		t.Fatal("unknown variable should error")
	}
}

// TestProposition1 verifies that when a variable Y is not needed to
// determine the measure (FD X→f with Y∉X), marginalizing Y out equals
// projecting it away. Construct r(X,Y) with measure depending only on X
// and exactly one row per (X,Y) — per the proposition's one-row-per-X'
// argument, with min-aggregation marginalization == projection.
func TestProposition1(t *testing.T) {
	attrs := []Attr{{"X", 3}, {"Y", 1}} // Y has a single value: one row per X
	r, _ := Complete("r", attrs, func(v []int32) float64 { return float64(v[0] * 2) })
	m, err := MarginalizeOut(semiring.MinProduct, r, "Y")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Project(r, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, p, semiring.MinProduct.Zero(), 1e-12) {
		t.Fatal("Proposition 1: marginalization should equal projection")
	}
}

func TestVarSetOps(t *testing.T) {
	a := NewVarSet("x", "y")
	b := NewVarSet("y", "z")
	if got := a.Union(b).Sorted(); len(got) != 3 {
		t.Fatalf("union = %v", got)
	}
	if got := a.Intersect(b).Sorted(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("intersect = %v", got)
	}
	if got := a.Minus(b).Sorted(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("minus = %v", got)
	}
	if !a.Contains(NewVarSet("x")) || a.Contains(b) {
		t.Fatal("contains misbehaves")
	}
	if !a.Equal(NewVarSet("y", "x")) || a.Equal(b) {
		t.Fatal("equal misbehaves")
	}
}

func TestRandomNeverEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r, err := Random(rng, "r", []Attr{{"A", 4}}, 0, UniformMeasure(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("Random with density 0 must still emit one row")
	}
}

func TestCompleteZeroArity(t *testing.T) {
	r, err := Complete("unit", nil, func(v []int32) float64 { return 42 })
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Measure(0) != 42 {
		t.Fatalf("zero-arity complete relation: %v", r)
	}
}

func TestStringRendering(t *testing.T) {
	r, _ := FromRows("r", []Attr{{"A", 2}}, [][]int32{{0}, {1}}, []float64{1, 2})
	s := r.String()
	if s == "" {
		t.Fatal("String should render something")
	}
}
