package experiments

import (
	"fmt"
	"math"

	"mpf/internal/core"
	"mpf/internal/cost"
	"mpf/internal/gen"
	"mpf/internal/opt"
)

// AblationCostModel validates the PageIO cost model against the engine:
// for a grid of queries × optimizers it compares the model's estimated
// cost with the measured page IO and reports the rank correlation. The
// optimizers only need cost *orderings* to pick good plans, so Spearman
// correlation — not absolute agreement — is the relevant fidelity metric.
func AblationCostModel(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// A small buffer pool keeps the engine in the disk-resident regime
	// the model describes.
	db, err := core.Open(core.Config{PoolFrames: 16, CostModel: cost.DefaultPageIO()})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			return nil, err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ablation-costmodel",
		Title:  "PageIO cost model vs measured page IO (16-frame pool)",
		Header: []string{"query", "optimizer", "estimated cost", "measured IO", "measured ms"},
		Notes:  "the optimizers need cost ORDERINGS, not absolute IO counts; see the rank correlation appended below",
	}
	queries := []string{"wid", "cid", "tid", "pid"}
	optimizers := []opt.Optimizer{
		opt.CS{},
		opt.CSPlus{Linear: true},
		opt.CSPlus{},
		opt.VE{Heuristic: opt.Width},
	}
	if cfg.Quick {
		queries = queries[:2]
		optimizers = optimizers[:3]
	}
	var est, meas []float64
	for _, qv := range queries {
		for _, o := range optimizers {
			res, err := db.Query(&core.QuerySpec{
				View: ds.Name, GroupVars: []string{qv}, Optimizer: o,
			})
			if err != nil {
				return nil, err
			}
			e := res.Plan.TotalCost
			m := float64(res.Exec.IO.IO())
			est = append(est, e)
			meas = append(meas, m)
			t.Rows = append(t.Rows, []string{
				qv, o.Name(), f2(e), f2(m), ms(res.Exec.Wall),
			})
		}
	}
	rho := spearman(est, meas)
	t.Notes += fmt.Sprintf("; Spearman ρ(estimated, measured IO) = %.3f over %d plans", rho, len(est))
	return t, nil
}

// spearman computes the Spearman rank correlation of two equal-length
// samples (average ranks for ties).
func spearman(a, b []float64) float64 {
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is tiny
		for j := i; j > 0 && xs[idx[j-1]] > xs[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
