package experiments

import (
	"fmt"
	"math/rand"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// columnarRel builds the small-domain workload relation the columnar
// layout targets: every attribute fits a byte, one advances in long runs
// (RLE), one cycles in short runs, one jitters per row (byte/dictionary
// segment). Keys decompose the row index, so the relation is functional
// by construction.
func columnarRel(rows int) *relation.Relation {
	r := relation.MustNew("sensor", []relation.Attr{
		{Name: "region", Domain: rows/256 + 1},
		{Name: "kind", Domain: 16},
		{Name: "state", Domain: 8},
	})
	rng := rand.New(rand.NewSource(477))
	for i := 0; i < rows; i++ {
		r.MustAppend([]int32{int32(i / 256), int32(i / 8 % 16), int32(i % 8)}, 0.1+rng.Float64())
	}
	return r
}

// columnarRun executes GroupBy_kind,state(sensor) — the MPF
// marginalization primitive: a full scan feeding hash aggregation on
// encoded keys — on a fresh pool/engine with the given page layout,
// returning the result, actuals, and the pool's encoding counters. Each
// call starts cold.
func columnarRun(rel *relation.Relation, frames int, columnar bool) (*relation.Relation, exec.RunStats, storage.EncodingStats, error) {
	pool := storage.NewPool(frames)
	factory := storage.MemDiskFactory()
	eng := exec.NewEngine(pool, factory, semiring.SumProduct)
	eng.Columnar = columnar

	t, err := exec.LoadRelationColumnar(pool, factory, rel, columnar)
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	defer t.Heap.Drop()
	cat := catalog.New()
	if err := cat.AddTable(catalog.AnalyzeRelation(rel)); err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	s, err := b.Scan(rel.Name())
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	gb, err := b.GroupBy(s, []string{"state"})
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	// The base-table load already encoded its pages; snapshot before the
	// reset so the reported counters cover load + run.
	loadEs := pool.EncodingStats()
	pool.ResetStats()
	out, st, err := eng.Run(gb, exec.MapResolver(map[string]*exec.Table{rel.Name(): t}))
	es := pool.EncodingStats()
	es.PagesEncoded += loadEs.PagesEncoded
	es.PagesFallback += loadEs.PagesFallback
	es.SegPlain += loadEs.SegPlain
	es.SegByte += loadEs.SegByte
	es.SegRLE += loadEs.SegRLE
	es.SegDict += loadEs.SegDict
	es.BytesSaved += loadEs.BytesSaved
	return out, st, es, err
}

// columnarRunBest repeats columnarRun and keeps the fastest wall time,
// erroring if any repetition changes the result (the layouts are
// deterministic, so anything short of byte identity is a bug).
func columnarRunBest(rel *relation.Relation, frames int, columnar bool, reps int) (*relation.Relation, exec.RunStats, storage.EncodingStats, error) {
	out, best, es, err := columnarRun(rel, frames, columnar)
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	for i := 1; i < reps; i++ {
		out2, st, _, err := columnarRun(rel, frames, columnar)
		if err != nil {
			return nil, exec.RunStats{}, storage.EncodingStats{}, err
		}
		if !sameRows(out, out2) {
			return nil, exec.RunStats{}, storage.EncodingStats{}, fmt.Errorf("columnar: nondeterministic result across repetitions")
		}
		if st.Wall < best.Wall {
			best = st
		}
	}
	return out, best, es, nil
}

// ColumnarExec measures the columnar page layout against row-major on a
// warm small-domain marginalization — GroupBy_state(sensor), the MPF
// primitive — where every attribute run-length- or dictionary-encodes.
// The encoded aggregation does one group lookup per distinct byte code
// per batch instead of one per row, so the comparison isolates the
// layout's CPU win; both layouts hold identical page counts, so physical
// IO must match exactly and results must be byte-identical — the run
// errors on either deviation rather than reporting it as a performance
// number.
func ColumnarExec(cfg Config) (*Table, error) {
	rows := 200000
	reps := 3
	if cfg.Quick {
		rows = 50000
		reps = 1
	}
	rel := columnarRel(rows)
	t := &Table{
		ID:     "columnar",
		Title:  "columnar page encoding on GroupBy_state(sensor)",
		Header: []string{"layout", "exec ms", "speedup", "page reads", "page writes", "pages encoded", "bytes saved"},
		Notes:  "expected: columnar ≥1.5× over row-major warm on the small-domain workload, byte-identical results, identical physical IO (encoding compresses within pages, never across)",
	}
	rowRel, rowSt, rowEs, err := columnarRunBest(rel, 4096, false, reps)
	if err != nil {
		return nil, err
	}
	colRel, colSt, colEs, err := columnarRunBest(rel, 4096, true, reps)
	if err != nil {
		return nil, err
	}
	if !sameRows(rowRel, colRel) {
		return nil, fmt.Errorf("columnar: encoded execution changed the result")
	}
	if rowSt.IO.Reads != colSt.IO.Reads || rowSt.IO.Writes != colSt.IO.Writes {
		return nil, fmt.Errorf("columnar: encoding changed physical IO: %dr/%dw vs %dr/%dw",
			rowSt.IO.Reads, rowSt.IO.Writes, colSt.IO.Reads, colSt.IO.Writes)
	}
	if rowEs.PagesEncoded != 0 {
		return nil, fmt.Errorf("columnar: row-major run encoded %d pages", rowEs.PagesEncoded)
	}
	if colEs.PagesEncoded == 0 {
		return nil, fmt.Errorf("columnar: columnar run encoded no pages — the workload never exercised the layout")
	}
	t.Rows = append(t.Rows,
		[]string{"row-major", ms(rowSt.Wall), "1.00",
			itoa(rowSt.IO.Reads), itoa(rowSt.IO.Writes), "0", "0"},
		[]string{"columnar", ms(colSt.Wall),
			f2(float64(rowSt.Wall) / float64(colSt.Wall)),
			itoa(colSt.IO.Reads), itoa(colSt.IO.Writes),
			itoa(colEs.PagesEncoded), itoa(colEs.BytesSaved)})
	return t, nil
}
