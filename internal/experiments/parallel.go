package experiments

import (
	"time"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/gen"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// parallelJoinRun executes the large l ⋈* r Grace join on a fresh
// pool/engine with the given worker count, returning its actuals. Each
// call starts cold so worker counts compete on equal footing.
func parallelJoinRun(l, r *relation.Relation, factory storage.DiskFactory, frames, workers int) (exec.RunStats, error) {
	pool := storage.NewPool(frames)
	eng := exec.NewEngine(pool, factory, semiring.SumProduct)
	eng.Parallelism = workers
	// Force the Grace partitioned path (inputs are ~50k tuples) while
	// letting each ~3k-tuple partition pair join in memory directly: pairs
	// then stream their partitions with a tiny per-pair working set, so
	// concurrent workers don't fight over frames in the small-pool regime.
	eng.HashJoinMaxBuild = 4096

	cat := catalog.New()
	tables := make(map[string]*exec.Table, 2)
	for _, rel := range []*relation.Relation{l, r} {
		t, err := exec.LoadRelation(pool, factory, rel)
		if err != nil {
			return exec.RunStats{}, err
		}
		defer t.Heap.Drop()
		tables[rel.Name()] = t
		if err := cat.AddTable(catalog.AnalyzeRelation(rel)); err != nil {
			return exec.RunStats{}, err
		}
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	sl, err := b.Scan(l.Name())
	if err != nil {
		return exec.RunStats{}, err
	}
	sr, err := b.Scan(r.Name())
	if err != nil {
		return exec.RunStats{}, err
	}
	pool.ResetStats()
	_, st, err := eng.Run(b.Join(sl, sr), exec.MapResolver(tables))
	return st, err
}

// ParallelExec measures intra-query parallelism on a large Grace join in
// two regimes: memory-resident (CPU-bound; speedup needs multiple cores)
// and a small pool over a 1ms-read latency disk (IO-bound, the paper's
// regime; workers overlap page-read stalls, so it speeds up even on one
// core). The join is location ⋈* demand where demand mirrors location's
// tuples with independent measures — two equally large inputs, so the
// concurrent partition passes and the partition-pair fan-out both carry
// real work. Reads/writes columns show physical IO staying put as
// workers grow.
func ParallelExec(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	loc := ds.RelationMap()["location"]
	demand := relation.MustNew("demand", loc.Attrs())
	rng := cfg.rng(991)
	for i := 0; i < loc.Len(); i++ {
		demand.MustAppend(loc.Row(i), 0.1+rng.Float64())
	}
	workerSweep := []int{1, 2, 4, 8}
	if cfg.Quick {
		workerSweep = []int{1, 4}
	}
	t := &Table{
		ID:     "parallel-exec",
		Title:  "intra-query parallelism on the Grace join location⋈*demand",
		Header: []string{"regime", "workers", "exec ms", "speedup", "page reads", "page writes", "hits"},
		Notes:  "expected: IO-bound regime speeds up with workers even on one core (overlapped read stalls); physical reads/writes stay ~equal across worker counts",
	}
	for _, mode := range []struct {
		name    string
		factory storage.DiskFactory
		frames  int
	}{
		{"memory", storage.MemDiskFactory(), 4096},
		{"io-bound (1ms reads)", storage.LatencyMemDiskFactory(time.Millisecond, 0), 64},
	} {
		var base time.Duration
		for _, w := range workerSweep {
			st, err := parallelJoinRun(loc, demand, mode.factory, mode.frames, w)
			if err != nil {
				return nil, err
			}
			if w == workerSweep[0] {
				base = st.Wall
			}
			t.Rows = append(t.Rows, []string{
				mode.name, itoa(int64(w)), ms(st.Wall),
				f2(float64(base) / float64(st.Wall)),
				itoa(st.IO.Reads), itoa(st.IO.Writes), itoa(st.IO.Hits),
			})
		}
	}
	return t, nil
}
