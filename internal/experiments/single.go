package experiments

import (
	"fmt"
	"math"

	"mpf/internal/gen"
	"mpf/internal/opt"
)

// Table1 prints the generated supply-chain instance's cardinalities and
// domain sizes next to the paper's Table 1 targets.
func Table1(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	paperCards := map[string]int{
		"contracts": 100_000, "warehouses": 5_000, "transporters": 500,
		"location": 1_000_000, "ctdeals": 500_000,
	}
	paperDomains := map[string]int{
		"pid": 100_000, "sid": 10_000, "wid": 5_000, "cid": 1_000, "tid": 500,
	}
	t := &Table{
		ID:     "table1",
		Title:  fmt.Sprintf("supply-chain instance at scale %.3f (paper Table 1 = scale 1)", cfg.scale()),
		Header: []string{"object", "generated", "paper(scale 1)"},
		Notes:  "cardinalities and domain sizes follow Table 1 scaled linearly",
	}
	for _, r := range ds.Relations {
		t.Rows = append(t.Rows, []string{
			"table " + r.Name(), itoa(int64(r.Len())), itoa(int64(paperCards[r.Name()])),
		})
	}
	cat, err := ds.Catalog()
	if err != nil {
		return nil, err
	}
	for _, v := range ds.QueryVars {
		dom, _, _ := cat.DomainSize(v)
		t.Rows = append(t.Rows, []string{
			"domain " + v, itoa(dom), itoa(int64(paperDomains[v])),
		})
	}
	return t, nil
}

// Fig7 reproduces the plan-linearity experiment (Figure 7): evaluation
// time of Q1 (group by cid) and Q2 (group by tid) under linear vs
// nonlinear CS+ as CTdeals density grows, plus the Eq. 1 prediction.
func Fig7(cfg Config) (*Table, error) {
	densities := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if cfg.Quick {
		densities = []float64{0.4, 1.0}
	}
	t := &Table{
		ID:    "fig7",
		Title: "plan linearity: CS+ linear vs nonlinear as CTdeals density grows",
		Header: []string{"density",
			"q1(cid) linear ms", "q1 nonlinear ms",
			"q2(tid) linear ms", "q2 nonlinear ms"},
		Notes: "expected: Q1 nonlinear wins and the gap grows with density (Eq. 1 fails for cid); Q2 curves coincide (Eq. 1 holds for tid)",
	}
	notedEq1 := false
	for _, d := range densities {
		// Domains scale with √Scale so CTdeals keeps the paper's relative
		// weight (density·|cid|·|tid| ≈ half of Location at density 1).
		ds, err := gen.SupplyChain(gen.SupplyChainConfig{
			Scale: cfg.scale(), DomainScale: math.Sqrt(cfg.scale()),
			CtdealsDensity: d, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		s, err := openDataset(ds, cfg, cfg.frames())
		if err != nil {
			return nil, err
		}
		lin := opt.CSPlus{Linear: true}
		non := opt.CSPlus{}
		q1lin, err := s.run(lin, []string{"cid"}, nil)
		if err != nil {
			s.close()
			return nil, err
		}
		q1non, err := s.run(non, []string{"cid"}, nil)
		if err != nil {
			s.close()
			return nil, err
		}
		q2lin, err := s.run(lin, []string{"tid"}, nil)
		if err != nil {
			s.close()
			return nil, err
		}
		q2non, err := s.run(non, []string{"tid"}, nil)
		if err != nil {
			s.close()
			return nil, err
		}
		if !notedEq1 {
			notedEq1 = true
			for _, v := range []string{"cid", "tid"} {
				adm, sigma, sigmaHat, err := opt.LinearityTest(s.db.Catalog(), v)
				if err != nil {
					s.close()
					return nil, err
				}
				t.Notes += fmt.Sprintf("; Eq.1 %s: σ=%.0f σ̂=%.0f linear-admissible=%v", v, sigma, sigmaHat, adm)
			}
		}
		s.close()
		t.Rows = append(t.Rows, []string{
			f2(d), ms(q1lin.Wall), ms(q1non.Wall), ms(q2lin.Wall), ms(q2non.Wall),
		})
	}
	return t, nil
}

// Fig8 reproduces the extended-VE-space experiment (Figure 8): running
// time of Q1 (cid), Q2 (sid), Q3 (wid) under nonlinear CS+, VE(deg), and
// VE(deg) extended, as database scale grows.
func Fig8(cfg Config) (*Table, error) {
	scales := []float64{0.01, 0.02, 0.04, 0.08}
	if cfg.Quick {
		scales = []float64{0.004, 0.008}
	}
	t := &Table{
		ID:     "fig8",
		Title:  "extended VE space: CS+ vs VE(deg) vs VE(deg)+ext across DB scale",
		Header: []string{"scale", "query", "cs+ ms", "ve(deg) ms", "ve(deg)+ext ms"},
		Notes:  "expected: ext never worse than plain VE(deg); for some queries ext reaches the CS+ plan where plain VE(deg) is suboptimal",
	}
	for _, sc := range scales {
		ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: sc, CtdealsDensity: 0.5, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		s, err := openDataset(ds, cfg, cfg.frames())
		if err != nil {
			return nil, err
		}
		for _, qv := range []string{"cid", "sid", "wid"} {
			csp, err := s.run(opt.CSPlus{}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			ve, err := s.run(opt.VE{Heuristic: opt.Degree}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			vex, err := s.run(opt.VE{Heuristic: opt.Degree, Extended: true}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.3f", sc), qv, ms(csp.Wall), ms(ve.Wall), ms(vex.Wall),
			})
		}
		s.close()
	}
	return t, nil
}

// Fig9 reproduces the ordering-heuristics experiment (Figure 9): running
// time of Q1 (cid) and Q2 (pid) under the degree, width and
// elimination-cost heuristics across database scale.
func Fig9(cfg Config) (*Table, error) {
	scales := []float64{0.01, 0.02, 0.04, 0.08}
	if cfg.Quick {
		scales = []float64{0.004, 0.008}
	}
	t := &Table{
		ID:     "fig9",
		Title:  "ordering heuristics: degree vs width vs elim-cost across DB scale",
		Header: []string{"scale", "query", "deg ms", "width ms", "elim_cost ms"},
		Notes:  "expected: heuristics may disagree on Q1 (width worse); identical plans for Q2",
	}
	for _, sc := range scales {
		ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: sc, CtdealsDensity: 0.5, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		s, err := openDataset(ds, cfg, cfg.frames())
		if err != nil {
			return nil, err
		}
		for _, qv := range []string{"cid", "pid"} {
			deg, err := s.run(opt.VE{Heuristic: opt.Degree}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			wid, err := s.run(opt.VE{Heuristic: opt.Width}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			ec, err := s.run(opt.VE{Heuristic: opt.ElimCost}, []string{qv}, nil)
			if err != nil {
				s.close()
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.3f", sc), qv, ms(deg.Wall), ms(wid.Wall), ms(ec.Wall),
			})
		}
		s.close()
	}
	return t, nil
}

// table2Optimizers lists the Table 2 rows in paper order.
func table2Optimizers() []opt.Optimizer {
	return []opt.Optimizer{
		opt.CSPlus{},
		opt.VE{Heuristic: opt.Degree},
		opt.VE{Heuristic: opt.Degree, Extended: true},
		opt.VE{Heuristic: opt.Width},
		opt.VE{Heuristic: opt.Width, Extended: true},
		opt.VE{Heuristic: opt.ElimCost},
		opt.VE{Heuristic: opt.ElimCost, Extended: true},
		opt.VE{Heuristic: opt.DegreeWidth},
		opt.VE{Heuristic: opt.DegreeWidth, Extended: true},
		opt.VE{Heuristic: opt.DegreeElimCost},
		opt.VE{Heuristic: opt.DegreeElimCost, Extended: true},
	}
}

// synthSessions opens the three §7.3 views with the given table count.
func synthSessions(cfg Config, tables int) (map[string]*session, error) {
	out := make(map[string]*session, 3)
	for _, kind := range []gen.SyntheticKind{gen.Star, gen.MultiStar, gen.Linear} {
		ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: kind, Tables: tables, Domain: 10, Seed: cfg.Seed})
		if err != nil {
			closeAll(out)
			return nil, err
		}
		s, err := openDataset(ds, cfg, cfg.frames())
		if err != nil {
			closeAll(out)
			return nil, err
		}
		out[kind.String()] = s
	}
	return out, nil
}

func closeAll(m map[string]*session) {
	for _, s := range m {
		s.close()
	}
}

// Table2 reproduces the ordering-heuristics plan-cost comparison
// (Table 2): estimated plan cost of each heuristic, with and without the
// extended space, on the star, multistar and linear views (N=5, domain
// 10, complete relations), querying the first linear variable.
func Table2(cfg Config) (*Table, error) {
	sessions, err := synthSessions(cfg, 5)
	if err != nil {
		return nil, err
	}
	defer closeAll(sessions)
	t := &Table{
		ID:     "table2",
		Title:  "heuristic plan costs on star/multistar/linear (N=5, domain 10), query x1",
		Header: []string{"ordering", "star", "multistar", "linear"},
		Notes:  "expected: VE(deg) catastrophic on star; width best among plain heuristics there; every extended variant matches nonlinear CS+",
	}
	for _, o := range table2Optimizers() {
		row := []string{o.Name()}
		for _, schema := range []string{"star", "multistar", "linear"} {
			b, _, err := sessions[schema].explain(o, []string{"x1"})
			if err != nil {
				return nil, err
			}
			row = append(row, f2(b.PlanCost))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3 reproduces the random-heuristic experiment (Table 3): mean plan
// cost ± 95% confidence interval over 10 random elimination orders, with
// and without the extended space.
func Table3(cfg Config) (*Table, error) {
	sessions, err := synthSessions(cfg, 5)
	if err != nil {
		return nil, err
	}
	defer closeAll(sessions)
	runs := 10
	t := &Table{
		ID:     "table3",
		Title:  fmt.Sprintf("random elimination orders (%d runs): mean cost ± 95%% CI", runs),
		Header: []string{"ordering", "star", "multistar", "linear"},
		Notes:  "expected: extension improves the mean but the CS+ optimum stays outside the CI — ordering still matters in the extended space",
	}
	for _, ext := range []bool{false, true} {
		name := "ve(random)"
		if ext {
			name += "+ext"
		}
		row := []string{name}
		for _, schema := range []string{"star", "multistar", "linear"} {
			var costs []float64
			for r := 0; r < runs; r++ {
				o := opt.VE{Heuristic: opt.RandomOrder, Extended: ext, Rng: cfg.rng(int64(r) + 7)}
				b, _, err := sessions[schema].explain(o, []string{"x1"})
				if err != nil {
					return nil, err
				}
				costs = append(costs, b.PlanCost)
			}
			mean, ci := meanCI95(costs)
			row = append(row, fmt.Sprintf("%.2f ± %.2f", mean, ci))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// meanCI95 returns the sample mean and the 95% confidence half-width
// using the t distribution with n-1 degrees of freedom (t₉ = 2.262 for
// the paper's 10 runs).
func meanCI95(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	if len(xs) < 2 {
		return mean, 0
	}
	sd := math.Sqrt(ss / (n - 1))
	tcrit := 2.262 // t_{0.975, 9}
	if len(xs) != 10 {
		tcrit = 1.96
	}
	return mean, tcrit * sd / math.Sqrt(n)
}

// Fig10 reproduces the optimization-cost trade-off (Figure 10): for the
// N=7 views, query every variable in the linear section and report each
// algorithm's average estimated plan cost against its average
// optimization time. Points closer to the origin are better.
func Fig10(cfg Config) (*Table, error) {
	tables := 7
	if cfg.Quick {
		tables = 5
	}
	sessions, err := synthSessions(cfg, tables)
	if err != nil {
		return nil, err
	}
	defer closeAll(sessions)
	algos := []opt.Optimizer{
		opt.CS{},
		opt.CSPlus{Linear: true},
		opt.CSPlus{},
		opt.VE{Heuristic: opt.Degree},
		opt.VE{Heuristic: opt.Degree, Extended: true},
		opt.VE{Heuristic: opt.Width},
		opt.VE{Heuristic: opt.Width, Extended: true},
		opt.VE{Heuristic: opt.ElimCost},
		opt.VE{Heuristic: opt.ElimCost, Extended: true},
	}
	t := &Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("optimization trade-off (N=%d): avg plan cost vs avg optimization time", tables),
		Header: []string{"schema", "algorithm", "avg plan cost", "avg opt ms"},
		Notes:  "expected: CS far from origin (poor plans); nonlinear plans ~an order cheaper than linear; VE variants optimize faster than nonlinear CS+ at comparable plan quality",
	}
	var queryVars []string
	for i := 1; i <= tables+1; i++ {
		queryVars = append(queryVars, fmt.Sprintf("x%d", i))
	}
	for _, schema := range []string{"star", "multistar", "linear"} {
		for _, o := range algos {
			var sumCost float64
			var sumOpt float64
			for _, qv := range queryVars {
				b, _, err := sessions[schema].explain(o, []string{qv})
				if err != nil {
					return nil, err
				}
				sumCost += b.PlanCost
				sumOpt += float64(b.Optimize.Microseconds()) / 1000
			}
			n := float64(len(queryVars))
			t.Rows = append(t.Rows, []string{
				schema, o.Name(), f2(sumCost / n), f2(sumOpt / n),
			})
		}
	}
	return t, nil
}
