package experiments

import (
	"fmt"
	"time"

	"mpf/internal/gen"
	"mpf/internal/opt"
)

// PlanCacheExp measures the plan cache and the budgeted greedy planner on
// the two workload regimes they target.
//
// The cache section runs the repeated decision-support workload (the five
// single-variable marginals over the supply-chain view) twice, with the
// plan cache off and on: the second pass with the cache on answers every
// planning request from the cache, so its planning latency must be at
// least 2× lower than its first pass while executed-plan quality
// (physical IO) is unchanged against the cache-off run.
//
// The planner section compares CS+ nonlinear against the statistics-free
// greedy planner on the supply-chain view (small N — planning is cheap,
// CS+'s search pays for itself) and on a longer synthetic chain view
// (larger N — the bushy dynamic program's exponential subset enumeration
// dominates total latency and greedy wins on plan+execute) — the paper's
// Figure 10 trade-off with greedy as the low-latency endpoint. Greedy
// must stay within 1.5× of CS+ plan cost everywhere.
func PlanCacheExp(cfg Config) (*Table, error) {
	sc, err := gen.SupplyChain(gen.SupplyChainConfig{
		Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	chainTables := 10
	if cfg.Quick {
		chainTables = 7
	}
	chain, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: chainTables, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:     "plan-cache",
		Title:  "plan cache and greedy planner: planning vs total latency",
		Header: []string{"section", "regime", "planner", "pass", "plan ms", "exec ms", "total ms", "IO", "plan cost", "plan speedup"},
		Notes: "cache pass 2 must plan >=2x faster than pass 1 with IO unchanged vs cache-off; " +
			"greedy must beat cs+nonlinear on total latency on the long chain while staying within 1.5x of its plan cost",
	}

	// Cache section: two identical passes, plan cache off vs on.
	for _, entries := range []int{0, 64} {
		ccfg := sessionConfig(cfg, cfg.frames())
		ccfg.PlanCacheEntries = entries
		sess, err := openSession(sc, cfg, ccfg)
		if err != nil {
			return nil, err
		}
		label := "off"
		if entries > 0 {
			label = fmt.Sprintf("%d entries", entries)
		}
		var pass1Plan time.Duration
		for pass := 1; pass <= 2; pass++ {
			var plan, exec time.Duration
			var io int64
			var cost float64
			before := sess.db.Pool().Stats()
			for _, v := range sc.QueryVars {
				b, err := sess.run(nil, []string{v}, nil)
				if err != nil {
					sess.close()
					return nil, err
				}
				plan += b.Optimize
				exec += b.Wall
				cost += b.PlanCost
			}
			io = sess.db.Pool().Stats().Sub(before).IO()
			speedup := "1.00x"
			if pass == 1 {
				pass1Plan = plan
			} else if plan > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(pass1Plan)/float64(plan))
			} else {
				speedup = "inf"
			}
			tbl.Rows = append(tbl.Rows, []string{
				"cache", "supplychain", "cache:" + label, itoa(int64(pass)),
				ms(plan), ms(exec), ms(plan + exec), itoa(io), f2(cost), speedup,
			})
		}
		sess.close()
	}

	// Planner section: CS+ nonlinear vs greedy, cold plans every query.
	regimes := []struct {
		name string
		ds   *gen.Dataset
		vars []string
	}{
		{"supplychain", sc, sc.QueryVars},
		{fmt.Sprintf("chain%d", chainTables), chain, chain.QueryVars[:3]},
	}
	for _, rg := range regimes {
		var csPlan time.Duration
		for _, o := range []opt.Optimizer{opt.CSPlus{}, opt.Greedy{}} {
			sess, err := openDataset(rg.ds, cfg, cfg.frames())
			if err != nil {
				return nil, err
			}
			var plan, exec time.Duration
			var cost float64
			before := sess.db.Pool().Stats()
			for _, v := range rg.vars {
				b, err := sess.run(o, []string{v}, nil)
				if err != nil {
					sess.close()
					return nil, err
				}
				plan += b.Optimize
				exec += b.Wall
				cost += b.PlanCost
			}
			io := sess.db.Pool().Stats().Sub(before).IO()
			speedup := "1.00x"
			if o.Name() == (opt.CSPlus{}).Name() {
				csPlan = plan
			} else if plan > 0 {
				speedup = fmt.Sprintf("%.2fx", float64(csPlan)/float64(plan))
			}
			tbl.Rows = append(tbl.Rows, []string{
				"planner", rg.name, o.Name(), "1",
				ms(plan), ms(exec), ms(plan + exec), itoa(io), f2(cost), speedup,
			})
			sess.close()
		}
	}
	return tbl, nil
}
