package experiments

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mpf/internal/core"
	"mpf/internal/gen"
	"mpf/internal/opt"
	"mpf/internal/relation"
	"mpf/internal/storage"
)

// chaosMode is one engine configuration the chaos matrix replays: the
// serial tuple-at-a-time baseline and the full modern path (parallel
// workers, vectorized batches, read-ahead, result cache). tol is the
// answer-comparison tolerance against the fault-free reference: serial
// execution is bit-deterministic, so any deviation at all is a failure;
// parallel partition pairs append join output in completion order, so
// injected latency reorders downstream float summation — answers then
// agree only up to associativity rounding, never beyond tol.
type chaosMode struct {
	name string
	cfg  core.Config
	tol  float64
}

// The pool is kept small so even the quick dataset spills: chaos only
// exercises the fault paths if queries perform real page reads.
func chaosModes() []chaosMode {
	return []chaosMode{
		{"serial", core.Config{PoolFrames: 32, BatchSize: 1}, 0},
		{"par+batch+cache", core.Config{PoolFrames: 32, Parallelism: 4, ReadAhead: 8, ResultCacheBytes: 4 << 20}, 1e-6},
	}
}

// chaosFleet records every FaultDisk a factory produces so a run can
// heal them all mid-flight (SetPlan of an empty plan) and verify the
// engine recovers.
type chaosFleet struct {
	mu    sync.Mutex
	disks []*storage.FaultDisk
}

func (f *chaosFleet) factory(plan storage.FaultPlan) storage.DiskFactory {
	inner := storage.FaultDiskFactory(storage.MemDiskFactory(), plan)
	return func() (storage.Disk, error) {
		d, err := inner()
		if err != nil {
			return nil, err
		}
		fd := d.(*storage.FaultDisk)
		f.mu.Lock()
		f.disks = append(f.disks, fd)
		f.mu.Unlock()
		return fd, nil
	}
}

func (f *chaosFleet) heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range f.disks {
		d.SetPlan(storage.FaultPlan{})
	}
}

// sameResult reports matching answers: same cardinality and every row's
// measure within tol (0 = bit-identical; the serial requirement).
func sameResult(a, b *relation.Relation, tol float64) bool {
	return a != nil && b != nil && a.Len() == b.Len() && relation.Equal(a, b, math.Inf(1), tol)
}

// Chaos replays a query matrix (CS+ and VE plans, serial tuple-at-a-time
// and parallel/batched/cached sessions) under seeded fault injection.
// The fault-free pass records reference answers; the transient regime
// must reproduce every one of them byte-identically (the pool's retry
// machinery absorbs every injected fault); the permanent+corrupt regime
// may fail queries, but only with typed errors — never a wrong answer —
// and after healing every disk the engine must answer a final query
// correctly with zero pinned frames.
func Chaos(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	queryVars := []string{"cid", "sid", "wid"}
	optimizers := []struct {
		name string
		o    opt.Optimizer
	}{
		{"cs+", opt.CSPlus{}},
		{"ve(deg)", opt.VE{Heuristic: opt.Degree}},
	}
	regimes := []struct {
		name string
		plan storage.FaultPlan
	}{
		{"fault-free", storage.FaultPlan{}},
		{"transient p=0.02", storage.FaultPlan{Seed: cfg.Seed, ReadErr: 0.02, WriteErr: 0.02, AllocErr: 0.02}},
		{"permanent+corrupt", storage.FaultPlan{Seed: cfg.Seed, PermReadErr: 0.01, Corrupt: 0.01, Torn: 0.005}},
	}

	t := &Table{
		ID:     "chaos",
		Title:  "fault injection over the optimizer/executor matrix",
		Header: []string{"regime", "mode", "queries", "ok", "identical", "io errs", "corrupt errs", "retries", "transient", "permanent", "checksum"},
		Notes:  "expected: transient regime answers every query identically (bit-exact serial, up to float associativity under parallelism) with retries > 0; permanent+corrupt regime fails only with typed errors (never a wrong answer), leaves zero pinned frames, and recovers after healing",
	}
	baseline := make(map[string]*relation.Relation)
	for _, reg := range regimes {
		for _, mode := range chaosModes() {
			fleet := &chaosFleet{}
			ccfg := mode.cfg
			if reg.plan != (storage.FaultPlan{}) {
				ccfg.DiskFactory = fleet.factory(reg.plan)
			}
			db, err := core.Open(ccfg)
			if err != nil {
				return nil, err
			}
			loadErr := func() error {
				for _, r := range ds.Relations {
					if err := db.CreateTable(r); err != nil {
						return err
					}
				}
				return db.CreateView(ds.Name, ds.ViewTables)
			}()
			if loadErr != nil {
				db.Close()
				return nil, fmt.Errorf("chaos: %s/%s load: %w", reg.name, mode.name, loadErr)
			}
			var queries, ok, identical, ioErrs, corruptErrs int64
			runOne := func(oname string, o opt.Optimizer, qv string) error {
				queries++
				res, qerr := db.Query(&core.QuerySpec{View: ds.Name, GroupVars: []string{qv}, Optimizer: o})
				if pinned := db.Pool().Pinned(); pinned != 0 {
					return fmt.Errorf("chaos: %s/%s %s/%s: %d frames left pinned", reg.name, mode.name, oname, qv, pinned)
				}
				// Reference answers are per optimizer as well as per query:
				// different plans sum in different orders, so answers agree
				// only up to float rounding across optimizers — but must be
				// bit-identical for the same plan across fault regimes.
				key := mode.name + "/" + oname + "/" + qv
				switch {
				case qerr == nil:
					ok++
					if reg.name == "fault-free" {
						if _, have := baseline[key]; !have {
							baseline[key] = res.Relation
						}
					}
					if sameResult(res.Relation, baseline[key], mode.tol) {
						identical++
					} else {
						return fmt.Errorf("chaos: %s/%s %s/%s: answer differs from the reference run", reg.name, mode.name, oname, qv)
					}
				case errors.Is(qerr, core.ErrCorrupt):
					corruptErrs++
				case errors.Is(qerr, core.ErrIO):
					ioErrs++
				default:
					return fmt.Errorf("chaos: %s/%s %s: untyped failure: %w", reg.name, mode.name, qv, qerr)
				}
				return nil
			}
			for _, o := range optimizers {
				for _, qv := range queryVars {
					// Cached sessions run each query twice so the replay also
					// covers result-cache hits under injection.
					passes := 1
					if ccfg.ResultCacheBytes > 0 {
						passes = 2
					}
					for pass := 0; pass < passes; pass++ {
						if err := runOne(o.name, o.o, qv); err != nil {
							db.Close()
							return nil, err
						}
					}
				}
			}
			if reg.name == "permanent+corrupt" {
				// Heal every disk and prove the engine recovered: the next
				// fault-free query must answer correctly.
				fleet.heal()
				if err := runOne(optimizers[0].name, optimizers[0].o, queryVars[0]); err != nil {
					db.Close()
					return nil, err
				}
			}
			st := db.Pool().Stats()
			if reg.name == "transient p=0.02" {
				if ok != queries {
					db.Close()
					return nil, fmt.Errorf("chaos: %s/%s: %d/%d queries failed under transient-only faults", reg.name, mode.name, queries-ok, queries)
				}
				if st.Retries == 0 {
					db.Close()
					return nil, fmt.Errorf("chaos: %s/%s: retry path never exercised", reg.name, mode.name)
				}
			}
			db.Close()
			t.Rows = append(t.Rows, []string{
				reg.name, mode.name, itoa(queries), itoa(ok), itoa(identical),
				itoa(ioErrs), itoa(corruptErrs),
				itoa(st.Retries), itoa(st.TransientFaults), itoa(st.PermanentFaults), itoa(st.ChecksumFailures),
			})
		}
	}
	return t, nil
}
