package experiments

import (
	"fmt"

	"mpf/internal/gen"
)

// ResultCacheExp measures the inter-query result cache on a repeated
// decision-support workload: the five single-variable marginals over the
// supply-chain view (the paper's §6 query workload), run as two identical
// passes. With the cache disabled the second pass repeats every page IO
// of the first; with it enabled the second pass splices in the cached
// aggregated-join materializations (VE intermediates) and its physical
// IO drops by at least 2× — the acceptance shape recorded in
// EXPERIMENTS.md.
func ResultCacheExp(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{
		Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	budget := cfg.ResultCacheBytes
	if budget == 0 {
		budget = 64 << 20
	}
	// The cache trades buffer-pool IO for cached-page scans, so the
	// experiment must run disk-resident: default to a pool far smaller
	// than the working set (the paper's regime) unless overridden.
	frames := cfg.PoolFrames
	if frames == 0 {
		frames = 32
	}
	tbl := &Table{
		ID:     "result-cache",
		Title:  "repeated workload IO with the inter-query result cache",
		Header: []string{"cache", "pass", "reads", "writes", "IO", "hits", "misses", "IO vs pass 1"},
		Notes: "pass 2 with the cache enabled must do at most half the physical IO of pass 1 " +
			"(cached aggregated joins are scanned instead of recomputed); disabled passes repeat identically",
	}
	for _, budgetBytes := range []int64{0, budget} {
		sess, err := openCachedDataset(ds, cfg, frames, budgetBytes)
		if err != nil {
			return nil, err
		}
		label := "off"
		if budgetBytes > 0 {
			label = fmt.Sprintf("%dMiB", budgetBytes>>20)
		}
		var pass1 int64
		for pass := 1; pass <= 2; pass++ {
			before := sess.db.Pool().Stats()
			hitsBefore := sess.db.Metrics().ResultCache.Hits
			missBefore := sess.db.Metrics().ResultCache.Misses
			for _, v := range ds.QueryVars {
				if _, err := sess.run(nil, []string{v}, nil); err != nil {
					sess.close()
					return nil, err
				}
			}
			d := sess.db.Pool().Stats().Sub(before)
			m := sess.db.Metrics().ResultCache
			ratio := "1.00x"
			if pass == 1 {
				pass1 = d.IO()
			} else if d.IO() > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(pass1)/float64(d.IO()))
			} else {
				ratio = "inf"
			}
			tbl.Rows = append(tbl.Rows, []string{
				label, itoa(int64(pass)), itoa(d.Reads), itoa(d.Writes), itoa(d.IO()),
				itoa(m.Hits - hitsBefore), itoa(m.Misses - missBefore), ratio,
			})
		}
		sess.close()
	}
	return tbl, nil
}

// openCachedDataset is openDataset with a result-cache budget.
func openCachedDataset(ds *gen.Dataset, cfg Config, frames int, cacheBytes int64) (*session, error) {
	ccfg := sessionConfig(cfg, frames)
	ccfg.ResultCacheBytes = cacheBytes
	return openSession(ds, cfg, ccfg)
}
