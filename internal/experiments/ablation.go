package experiments

import (
	"fmt"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/core"
	"mpf/internal/gen"
	"mpf/internal/infer"
	"mpf/internal/opt"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// AblationPushdown isolates the value of GroupBy pushdown: the same
// supply-chain query evaluated with CS (no pushdown), linear CS+, and
// nonlinear CS+.
func AblationPushdown(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	s, err := openDataset(ds, cfg, cfg.frames())
	if err != nil {
		return nil, err
	}
	defer s.close()
	t := &Table{
		ID:     "ablation-pushdown",
		Title:  "GroupBy pushdown ablation on Q1 (group by wid)",
		Header: []string{"algorithm", "exec ms", "page IO", "plan cost", "opt ms"},
		Notes:  "expected: CS pays the full join; each pushdown level reduces IO and time",
	}
	for _, o := range []opt.Optimizer{opt.CS{}, opt.CSPlus{Linear: true}, opt.CSPlus{}} {
		b, err := s.run(o, []string{"wid"}, nil)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{o.Name(), ms(b.Wall), itoa(b.IO), f2(b.PlanCost), ms(b.Optimize)})
	}
	return t, nil
}

// AblationPhysicalOps compares hash against sort-based physical operators
// for the same plan.
func AblationPhysicalOps(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	s, err := openDataset(ds, cfg, cfg.frames())
	if err != nil {
		return nil, err
	}
	defer s.close()
	t := &Table{
		ID:     "ablation-physical",
		Title:  "hash vs sort operators on Q1 (group by wid, nonlinear CS+)",
		Header: []string{"join", "groupby", "exec ms", "page IO"},
		Notes:  "expected: hash operators avoid the external sort's extra read/write passes",
	}
	for _, mode := range []struct {
		name      string
		sortJoin  bool
		sortGroup bool
	}{
		{"hash/hash", false, false},
		{"sort/hash", true, false},
		{"hash/sort", false, true},
		{"sort/sort", true, true},
	} {
		s.db.Engine().SortJoin = mode.sortJoin
		s.db.Engine().SortGroupBy = mode.sortGroup
		b, err := s.run(opt.CSPlus{}, []string{"wid"}, nil)
		if err != nil {
			return nil, err
		}
		j, g := "hash", "hash"
		if mode.sortJoin {
			j = "sort"
		}
		if mode.sortGroup {
			g = "sort"
		}
		t.Rows = append(t.Rows, []string{j, g, ms(b.Wall), itoa(b.IO)})
	}
	s.db.Engine().SortJoin = false
	s.db.Engine().SortGroupBy = false
	return t, nil
}

// AblationBufferPool measures how the disk-resident regime emerges as the
// buffer pool shrinks relative to the working set.
func AblationBufferPool(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	frames := []int{8, 32, 128, 512, 2048}
	if cfg.Quick {
		frames = []int{8, 128}
	}
	t := &Table{
		ID:     "ablation-bufferpool",
		Title:  "buffer-pool sensitivity on Q1 (group by wid, nonlinear CS+)",
		Header: []string{"frames", "exec ms", "page reads", "page writes", "hits"},
		Notes:  "expected: physical reads fall as the pool grows; above the working set only cold misses remain",
	}
	for _, fr := range frames {
		s, err := openDataset(ds, cfg, fr)
		if err != nil {
			return nil, err
		}
		res, err := s.db.Query(&core.QuerySpec{
			View: ds.Name, GroupVars: []string{"wid"}, Optimizer: opt.CSPlus{},
		})
		if err != nil {
			s.close()
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(fr)), ms(res.Exec.Wall),
			itoa(res.Exec.IO.Reads), itoa(res.Exec.IO.Writes), itoa(res.Exec.IO.Hits),
		})
		s.close()
	}
	return t, nil
}

// AblationFusion measures pipelining GroupBy-over-Join pairs through the
// fused operator versus the default materializing operators.
func AblationFusion(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	s, err := openDataset(ds, cfg, cfg.frames())
	if err != nil {
		return nil, err
	}
	defer s.close()
	t := &Table{
		ID:     "ablation-fusion",
		Title:  "fused join+group-by pipeline vs materializing operators",
		Header: []string{"query", "mode", "exec ms", "temp tuples", "page IO"},
		Notes:  "expected: fusion skips the join materialization, cutting intermediate tuples and time on aggregation-heavy plans",
	}
	for _, qv := range []string{"wid", "cid"} {
		for _, fuse := range []bool{false, true} {
			s.db.Engine().FuseJoinGroupBy = fuse
			res, err := s.db.Query(&core.QuerySpec{
				View: ds.Name, GroupVars: []string{qv}, Optimizer: opt.CSPlus{},
			})
			if err != nil {
				return nil, err
			}
			mode := "materialize"
			if fuse {
				mode = "fused"
			}
			t.Rows = append(t.Rows, []string{
				qv, mode, ms(res.Exec.Wall), itoa(res.Exec.TempTuples), itoa(res.Exec.IO.IO()),
			})
		}
	}
	s.db.Engine().FuseJoinGroupBy = false
	return t, nil
}

// AblationWorkload evaluates the §6 workload optimizer: a probabilistic
// workload of single-variable queries answered from the VE-cache versus
// re-evaluated from scratch, reporting build cost, the C(S)+E[cost]
// objective, and wall-clock for both strategies.
func AblationWorkload(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.6, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	s, err := openDataset(ds, cfg, cfg.frames())
	if err != nil {
		return nil, err
	}
	defer s.close()

	workload := []infer.WorkloadQuery{
		{Var: "wid", Prob: 0.4},
		{Var: "cid", Prob: 0.3},
		{Var: "tid", Prob: 0.15},
		{Var: "pid", Prob: 0.1},
		{Var: "sid", Prob: 0.05},
	}
	n := 100
	if cfg.Quick {
		n = 20
	}
	rng := cfg.rng(77)
	draw := func() string {
		u := rng.Float64()
		acc := 0.0
		for _, q := range workload {
			acc += q.Prob
			if u < acc {
				return q.Var
			}
		}
		return workload[len(workload)-1].Var
	}
	vars := make([]string, n)
	for i := range vars {
		vars[i] = draw()
	}

	buildStart := time.Now()
	cache, err := infer.BuildVECache(semiring.SumProduct, ds.Relations, nil)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(buildStart)
	objective, err := cache.WorkloadCost(workload)
	if err != nil {
		return nil, err
	}

	cacheStart := time.Now()
	for _, v := range vars {
		if _, err := cache.Answer(v); err != nil {
			return nil, err
		}
	}
	cacheTime := time.Since(cacheStart)

	scratchStart := time.Now()
	for _, v := range vars {
		if _, err := s.run(opt.CSPlus{}, []string{v}, nil); err != nil {
			return nil, err
		}
	}
	scratchTime := time.Since(scratchStart)

	t := &Table{
		ID:     "ablation-workload",
		Title:  fmt.Sprintf("§6 workload: %d queries from VE-cache vs from scratch", n),
		Header: []string{"metric", "value"},
		Notes:  "expected: cache answers orders of magnitude faster once built; objective = C(S)+E[cost] in tuples",
	}
	t.Rows = [][]string{
		{"cache tables", itoa(int64(len(cache.Tables)))},
		{"cache tuples C(S)", itoa(int64(cache.Size()))},
		{"objective C(S)+E[cost]", f2(objective)},
		{"cache build ms", ms(buildTime)},
		{"answer from cache ms", ms(cacheTime)},
		{"answer from scratch ms", ms(scratchTime)},
		{"speedup", f2(float64(scratchTime) / float64(cacheTime))},
	}
	return t, nil
}

// AblationFDSkip measures Proposition 1: a view with a functionally
// determined non-key variable ("region", determined by wid) is optimized
// by VE with and without the FD preprocessing.
func AblationFDSkip(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// Replace warehouses with a version carrying a region attribute
	// determined by wid, and declare per-table keys.
	m := ds.RelationMap()
	oldWh := m["warehouses"]
	widAttr, _ := oldWh.Attr("wid")
	cidAttr, _ := oldWh.Attr("cid")
	regions := 4
	wh := relation.MustNew("warehouses", []relation.Attr{
		widAttr, cidAttr, {Name: "region", Domain: regions},
	})
	for i := 0; i < oldWh.Len(); i++ {
		row := oldWh.Row(i)
		wh.MustAppend([]int32{row[0], row[1], row[0] % int32(regions)}, oldWh.Measure(i))
	}
	keys := map[string][]string{
		"contracts":    {"pid", "sid"},
		"location":     {"pid", "wid"},
		"warehouses":   {"wid"},
		"ctdeals":      {"cid", "tid"},
		"transporters": {"tid"},
	}
	db, err := core.Open(core.Config{PoolFrames: cfg.frames(), Parallelism: cfg.Parallelism})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if r.Name() == "warehouses" {
			r = wh
		}
		if err := db.CreateTable(r); err != nil {
			return nil, err
		}
		st := catalog.AnalyzeRelation(r)
		st.Key = keys[r.Name()]
		if err := db.Catalog().AddTable(st); err != nil { // refresh with key info
			return nil, err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-fdskip",
		Title:  "Proposition 1 FD preprocessing: VE with region determined by wid",
		Header: []string{"optimizer", "plan cost", "opt ms", "exec ms"},
		Notes:  "expected: with +fd the non-key variable region is never a dedicated elimination step, reducing optimization work at equal plan quality",
	}
	for _, o := range []opt.Optimizer{
		opt.VE{Heuristic: opt.Degree},
		opt.VE{Heuristic: opt.Degree, UseFDs: true},
		opt.VE{Heuristic: opt.Width, Extended: true},
		opt.VE{Heuristic: opt.Width, Extended: true, UseFDs: true},
	} {
		res, err := db.Query(&core.QuerySpec{
			View: ds.Name, GroupVars: []string{"cid"}, Optimizer: o,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			o.Name(), f2(res.Plan.TotalCost), ms(res.Optimize), ms(res.Exec.Wall),
		})
	}
	return t, nil
}
