package experiments

import (
	"fmt"
	"math/rand"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// fuseDim builds the dimension side of the fused-plan workload: one row
// per sensor kind (functional on the join key), carrying a small group
// attribute, so the fused probe aggregates every match without ever
// materializing the join.
func fuseDim() *relation.Relation {
	r := relation.MustNew("kinddim", []relation.Attr{
		{Name: "kind", Domain: 16},
		{Name: "grp", Domain: 4},
	})
	rng := rand.New(rand.NewSource(479))
	for k := 0; k < 16; k++ {
		r.MustAppend([]int32{int32(k), int32(k % 4)}, 0.1+rng.Float64())
	}
	return r
}

// fuseRun executes one plan of the columnar-fuse experiment on a fresh
// pool/engine: setup configures the engine's sort/fusion knobs, build
// shapes the plan over the loaded tables. It returns the result, the
// actuals, and the pool's encoding counters (load + run). Each call
// starts cold.
func fuseRun(rels []*relation.Relation, frames int, columnar bool,
	setup func(*exec.Engine),
	build func(*plan.Builder) (*plan.Node, error)) (*relation.Relation, exec.RunStats, storage.EncodingStats, error) {
	pool := storage.NewPool(frames)
	factory := storage.MemDiskFactory()
	eng := exec.NewEngine(pool, factory, semiring.SumProduct)
	eng.Columnar = columnar
	setup(eng)

	cat := catalog.New()
	tabs := map[string]*exec.Table{}
	for _, rel := range rels {
		t, err := exec.LoadRelationColumnar(pool, factory, rel, columnar)
		if err != nil {
			return nil, exec.RunStats{}, storage.EncodingStats{}, err
		}
		defer t.Heap.Drop()
		tabs[rel.Name()] = t
		if err := cat.AddTable(catalog.AnalyzeRelation(rel)); err != nil {
			return nil, exec.RunStats{}, storage.EncodingStats{}, err
		}
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	p, err := build(b)
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	loadEs := pool.EncodingStats()
	pool.ResetStats()
	out, st, err := eng.Run(p, exec.MapResolver(tabs))
	es := pool.EncodingStats()
	es.PagesEncoded += loadEs.PagesEncoded
	es.PagesFallback += loadEs.PagesFallback
	es.SegPlain += loadEs.SegPlain
	es.SegByte += loadEs.SegByte
	es.SegRLE += loadEs.SegRLE
	es.SegDict += loadEs.SegDict
	es.BytesSaved += loadEs.BytesSaved
	return out, st, es, err
}

// fuseRunBest repeats fuseRun and keeps the fastest wall time, erroring
// if any repetition changes the result.
func fuseRunBest(rels []*relation.Relation, frames int, columnar bool, reps int,
	setup func(*exec.Engine),
	build func(*plan.Builder) (*plan.Node, error)) (*relation.Relation, exec.RunStats, storage.EncodingStats, error) {
	out, best, es, err := fuseRun(rels, frames, columnar, setup, build)
	if err != nil {
		return nil, exec.RunStats{}, storage.EncodingStats{}, err
	}
	for i := 1; i < reps; i++ {
		out2, st, _, err := fuseRun(rels, frames, columnar, setup, build)
		if err != nil {
			return nil, exec.RunStats{}, storage.EncodingStats{}, err
		}
		if !sameRows(out, out2) {
			return nil, exec.RunStats{}, storage.EncodingStats{}, fmt.Errorf("columnar-fuse: nondeterministic result across repetitions")
		}
		if st.Wall < best.Wall {
			best = st
		}
	}
	return out, best, es, nil
}

// ColumnarFuse measures the end-to-end columnar execution paths this
// layout enables against their row-major twins on warm small-domain
// workloads: a sort-heavy plan — sort-based aggregation on the clustered
// leading key, where RLE runs become pre-sorted blocks and the
// already-sorted check skips whole permutations — and a fused
// join+aggregate plan, where encoded probe batches flow through per-run
// build probes, per-code group-slot memos, and run-level measure folds
// without materializing the join. Results must be byte-identical and
// physical IO unchanged between layouts — the run errors on either
// deviation rather than reporting it as a performance number.
func ColumnarFuse(cfg Config) (*Table, error) {
	rows := 200000
	reps := 3
	if cfg.Quick {
		// Two reps keep the quick gate cheap while letting best-of-N absorb
		// one bad scheduler phase on shared machines.
		rows = 50000
		reps = 2
	}
	sensor := columnarRel(rows)
	dim := fuseDim()
	t := &Table{
		ID:     "columnar-fuse",
		Title:  "end-to-end columnar execution: columnar sort and fused join+aggregate",
		Header: []string{"plan", "layout", "exec ms", "speedup", "page reads", "page writes", "pages encoded"},
		Notes:  "expected: columnar ≥1.5× over row-major warm on both plans, byte-identical results, identical physical IO",
	}
	for _, pc := range []struct {
		name  string
		rels  []*relation.Relation
		setup func(*exec.Engine)
		build func(*plan.Builder) (*plan.Node, error)
	}{
		{
			// Sort-based aggregation on the clustered leading key: run
			// generation memmoves RLE blocks, merge is skipped (one run), and
			// the encoded streaming aggregation folds group spans.
			name: "sort GroupBy_region(sensor)",
			rels: []*relation.Relation{sensor},
			setup: func(e *exec.Engine) {
				e.SortGroupBy = true
				// One in-memory run at either scale: the comparison targets
				// run generation + the encoded streaming aggregation, not the
				// shared row-based k-way merge.
				e.SortRunTuples = 1 << 18
			},
			build: func(b *plan.Builder) (*plan.Node, error) {
				s, err := b.Scan("sensor")
				if err != nil {
					return nil, err
				}
				return b.GroupBy(s, []string{"region"})
			},
		},
		{
			// Fused join+aggregate over a functional dimension: probe pages
			// stay encoded end to end and the join output never exists.
			name: "fused GroupBy_grp(sensor⋈kinddim)",
			rels: []*relation.Relation{sensor, dim},
			setup: func(e *exec.Engine) {
				e.FuseJoinGroupBy = true
			},
			build: func(b *plan.Builder) (*plan.Node, error) {
				s, err := b.Scan("sensor")
				if err != nil {
					return nil, err
				}
				d, err := b.Scan("kinddim")
				if err != nil {
					return nil, err
				}
				return b.GroupBy(b.Join(s, d), []string{"grp"})
			},
		},
	} {
		rowRel, rowSt, rowEs, err := fuseRunBest(pc.rels, 4096, false, reps, pc.setup, pc.build)
		if err != nil {
			return nil, err
		}
		colRel, colSt, colEs, err := fuseRunBest(pc.rels, 4096, true, reps, pc.setup, pc.build)
		if err != nil {
			return nil, err
		}
		if !sameRows(rowRel, colRel) {
			return nil, fmt.Errorf("columnar-fuse: %s: columnar execution changed the result", pc.name)
		}
		if rowSt.IO.Reads != colSt.IO.Reads || rowSt.IO.Writes != colSt.IO.Writes {
			return nil, fmt.Errorf("columnar-fuse: %s: encoding changed physical IO: %dr/%dw vs %dr/%dw",
				pc.name, rowSt.IO.Reads, rowSt.IO.Writes, colSt.IO.Reads, colSt.IO.Writes)
		}
		if rowEs.PagesEncoded != 0 {
			return nil, fmt.Errorf("columnar-fuse: %s: row-major run encoded %d pages", pc.name, rowEs.PagesEncoded)
		}
		if colEs.PagesEncoded == 0 {
			return nil, fmt.Errorf("columnar-fuse: %s: columnar run encoded no pages — the workload never exercised the layout", pc.name)
		}
		t.Rows = append(t.Rows,
			[]string{pc.name, "row-major", ms(rowSt.Wall), "1.00",
				itoa(rowSt.IO.Reads), itoa(rowSt.IO.Writes), "0"},
			[]string{pc.name, "columnar", ms(colSt.Wall),
				f2(float64(rowSt.Wall) / float64(colSt.Wall)),
				itoa(colSt.IO.Reads), itoa(colSt.IO.Writes),
				itoa(colEs.PagesEncoded)})
	}
	return t, nil
}
