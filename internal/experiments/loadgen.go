package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"mpf"
	"mpf/internal/gen"
	"mpf/internal/metrics"
	"mpf/internal/server"
)

// LoadGen exercises the serving layer under concurrent mixed
// read/write load over real HTTP: hundreds of wire sessions fire
// queries against the supply-chain view while writers grow a separate
// ledger table, with admission control tight enough to force typed
// rejections. Correctness bar: every served answer is byte-identical to
// the serially precomputed answer for its query, the final ledger state
// is byte-identical to a serial replay of the same inserts on a fresh
// database, and every rejection is a typed 429/503 envelope. The table
// reports throughput, rejection mix, and client-observed p50/p99.
func LoadGen(cfg Config) (*Table, error) {
	sessions := 240
	if cfg.Quick {
		sessions = 40
	}
	writers := sessions / 3
	readers := sessions - writers
	const reqPerSession = 4

	// Serving database: supply-chain view plus an initially-empty ledger
	// for the writers. The ledger is outside every view, so reader
	// answers are independent of concurrent writes.
	db, ds, err := loadgenDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Precompute expected answers serially, before any traffic.
	specs := []*mpf.QuerySpec{
		{View: ds.Name, GroupVars: []string{"wid"}},
		{View: ds.Name, GroupVars: []string{"tid"}},
		{View: ds.Name, GroupVars: []string{"wid", "tid"}},
	}
	expected := make([]*mpf.Relation, len(specs))
	for i, q := range specs {
		res, err := db.Query(q)
		if err != nil {
			return nil, err
		}
		res.Relation.Sort()
		expected[i] = res.Relation
	}

	srv := server.New(db, server.Config{Admission: server.AdmissionConfig{
		RatePerSec: 300, Burst: 32, QueueDepth: 48, QueueWait: 100 * time.Millisecond,
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = sessions

	var (
		okReqs, retries429, retries503, wrong, untyped atomic.Int64
		lat                                            metrics.Histogram
		wg                                             sync.WaitGroup
		errOnce                                        sync.Once
		firstErr                                       error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	// call posts one request, retrying typed admission rejections with
	// backoff; anything else non-OK is a failure.
	call := func(path string, body any) []byte {
		data, _ := json.Marshal(body)
		for attempt := 0; ; attempt++ {
			start := time.Now()
			resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(data))
			if err != nil {
				fail(err)
				return nil
			}
			out, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail(err)
				return nil
			}
			switch resp.StatusCode {
			case http.StatusOK:
				lat.Observe(time.Since(start))
				okReqs.Add(1)
				return out
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				var env server.ErrorEnvelope
				if json.Unmarshal(out, &env) != nil ||
					(env.Code != server.CodeRateLimited && env.Code != server.CodeOverloaded) {
					untyped.Add(1)
					fail(fmt.Errorf("untyped rejection %d: %s", resp.StatusCode, out))
					return nil
				}
				if env.Code == server.CodeRateLimited {
					retries429.Add(1)
				} else {
					retries503.Add(1)
				}
				if attempt > 200 {
					fail(fmt.Errorf("request rejected %d times", attempt))
					return nil
				}
				time.Sleep(time.Duration(2+attempt) * time.Millisecond)
			default:
				untyped.Add(1)
				fail(fmt.Errorf("unexpected status %d: %s", resp.StatusCode, out))
				return nil
			}
		}
	}

	// Readers: each opens a wire session, runs queries, and verifies
	// byte-identical answers against the serial precompute.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var sessResp server.SessionResponse
			if out := call("/v1/sessions", server.SessionRequest{TimeoutMS: 60_000}); out == nil {
				return
			} else if err := json.Unmarshal(out, &sessResp); err != nil {
				fail(err)
				return
			}
			for i := 0; i < reqPerSession; i++ {
				qi := (r + i) % len(specs)
				out := call("/v1/query", server.QueryRequest{Session: sessResp.Session, Query: specs[qi]})
				if out == nil {
					return
				}
				var qr server.QueryResponse
				if err := json.Unmarshal(out, &qr); err != nil {
					fail(err)
					return
				}
				got := qr.Result.Relation
				got.Sort()
				if !sameRelation(got, expected[qi]) {
					wrong.Add(1)
					fail(fmt.Errorf("reader %d query %d: answer differs from serial replay", r, qi))
					return
				}
			}
		}(r)
	}

	// Writers: unique (acct, seq) rows, so the final ledger state is
	// interleaving-independent and comparable to a serial replay.
	const rowsPerWriter = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rowsPerWriter; j++ {
				out := call("/v1/insert", server.InsertRequest{
					Table:   "ledger",
					Vals:    []int32{int32(w), int32(j)},
					Measure: float64(w*rowsPerWriter + j),
				})
				if out == nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Drain: the server refuses new work typed and goes idle.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	resp, err := client.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"query":{"view":"`+ds.Name+`","group_vars":["wid"]}}`)))
	if err != nil {
		return nil, err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env server.ErrorEnvelope
	if resp.StatusCode != http.StatusServiceUnavailable ||
		json.Unmarshal(out, &env) != nil || env.Code != server.CodeDraining {
		return nil, fmt.Errorf("post-drain request not typed draining: %d %s", resp.StatusCode, out)
	}
	if n := db.Pool().Pinned(); n != 0 {
		return nil, fmt.Errorf("%d buffer-pool frames left pinned after drain", n)
	}

	// Serial replay of the writer workload on a fresh ledger.
	replay, err := emptyLedger()
	if err != nil {
		return nil, err
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < rowsPerWriter; j++ {
			replay.MustAppend([]int32{int32(w), int32(j)}, float64(w*rowsPerWriter+j))
		}
	}
	final, err := db.Relation("ledger")
	if err != nil {
		return nil, err
	}
	final = final.Clone()
	final.Sort()
	replay.Sort()
	if !sameRelation(final, replay) {
		return nil, fmt.Errorf("ledger diverged from serial replay: %d rows vs %d", final.Len(), replay.Len())
	}

	st := srv.Stats()
	lstats := lat.Stats()
	return &Table{
		ID:     "loadgen",
		Title:  fmt.Sprintf("wire serving under %d concurrent sessions (mixed read/write)", sessions),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"sessions", fmt.Sprintf("%d (%d readers, %d writers)", sessions, readers, writers)},
			{"requests ok", fmt.Sprintf("%d", okReqs.Load())},
			{"admission retries", fmt.Sprintf("%d rate-limited, %d overloaded", retries429.Load(), retries503.Load())},
			{"untyped rejections", fmt.Sprintf("%d", untyped.Load())},
			{"wrong answers", fmt.Sprintf("%d", wrong.Load())},
			{"ledger rows", fmt.Sprintf("%d (serial replay matches)", final.Len())},
			{"client latency", fmt.Sprintf("p50 %v  p99 %v  max %v", lstats.P50, lstats.P99, lstats.Max)},
			{"server admitted", fmt.Sprintf("%d (rejected %d rate / %d queue / %d drain)",
				st.Admitted, st.RejectedRate, st.RejectedQueue, st.RejectedDrain)},
		},
		Notes: "acceptance: zero wrong answers and zero untyped rejections under sustained concurrent sessions; " +
			"admission pressure surfaces only as typed 429/503; drain leaves no pinned frames",
	}, nil
}

// loadgenDB opens the serving database: the scaled supply chain plus an
// empty writable ledger table.
func loadgenDB(cfg Config) (*mpf.Database, *gen.Dataset, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), Seed: cfg.Seed + 1})
	if err != nil {
		return nil, nil, err
	}
	db, err := mpf.Open(mpf.Config{PoolFrames: cfg.frames(), Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		db.Close()
		return nil, nil, err
	}
	ledger, err := emptyLedger()
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := db.CreateTable(ledger); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, ds, nil
}

// emptyLedger builds the writers' table: unique (acct, seq) rows.
func emptyLedger() (*mpf.Relation, error) {
	return mpf.NewRelation("ledger", []mpf.Attr{
		{Name: "acct", Domain: 512},
		{Name: "seq", Domain: 512},
	})
}

// sameRelation reports byte-identical contents of two sorted relations:
// same rows in the same order with bit-equal measures.
func sameRelation(a, b *mpf.Relation) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
		if a.Measure(i) != b.Measure(i) {
			return false
		}
	}
	return true
}
