package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"mpf"
	"mpf/internal/gen"
	"mpf/internal/metrics"
	"mpf/internal/server"
)

// LoadGen exercises the serving layer under concurrent mixed
// read/write load over real HTTP: hundreds of wire sessions fire
// queries against the supply-chain view while writers grow a separate
// ledger table, with admission control tight enough to force typed
// rejections. Correctness bar: every served answer is byte-identical to
// the serially precomputed answer for its query, the final ledger state
// is byte-identical to a serial replay of the same inserts on a fresh
// database, and every rejection is a typed 429/503 envelope. The table
// reports throughput, rejection mix, and client-observed p50/p99.
func LoadGen(cfg Config) (*Table, error) {
	sessions := 240
	if cfg.Quick {
		sessions = 40
	}
	writers := sessions / 3
	readers := sessions - writers
	const reqPerSession = 4

	// Serving database: supply-chain view plus an initially-empty ledger
	// for the writers. The ledger is outside every view, so reader
	// answers are independent of concurrent writes.
	db, ds, err := loadgenDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Precompute expected answers serially, before any traffic.
	specs := []*mpf.QuerySpec{
		{View: ds.Name, GroupVars: []string{"wid"}},
		{View: ds.Name, GroupVars: []string{"tid"}},
		{View: ds.Name, GroupVars: []string{"wid", "tid"}},
	}
	expected := make([]*mpf.Relation, len(specs))
	for i, q := range specs {
		res, err := db.Query(q)
		if err != nil {
			return nil, err
		}
		res.Relation.Sort()
		expected[i] = res.Relation
	}

	srv := server.New(db, server.Config{Admission: server.AdmissionConfig{
		RatePerSec: 300, Burst: 32, QueueDepth: 48, QueueWait: 100 * time.Millisecond,
	}})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = sessions

	var (
		okReqs, retries429, retries503, wrong, untyped atomic.Int64
		lat                                            metrics.Histogram
		wg                                             sync.WaitGroup
		errOnce                                        sync.Once
		firstErr                                       error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	// call posts one request, retrying typed admission rejections with
	// backoff; anything else non-OK is a failure. The successful
	// attempt's latency lands in h, so phases keep separate histograms.
	call := func(h *metrics.Histogram, path string, body any) []byte {
		data, _ := json.Marshal(body)
		for attempt := 0; ; attempt++ {
			start := time.Now()
			resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(data))
			if err != nil {
				fail(err)
				return nil
			}
			out, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail(err)
				return nil
			}
			switch resp.StatusCode {
			case http.StatusOK:
				h.Observe(time.Since(start))
				okReqs.Add(1)
				return out
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				var env server.ErrorEnvelope
				if json.Unmarshal(out, &env) != nil ||
					(env.Code != server.CodeRateLimited && env.Code != server.CodeOverloaded) {
					untyped.Add(1)
					fail(fmt.Errorf("untyped rejection %d: %s", resp.StatusCode, out))
					return nil
				}
				if env.Code == server.CodeRateLimited {
					retries429.Add(1)
				} else {
					retries503.Add(1)
				}
				if attempt > 200 {
					fail(fmt.Errorf("request rejected %d times", attempt))
					return nil
				}
				time.Sleep(time.Duration(2+attempt) * time.Millisecond)
			default:
				untyped.Add(1)
				fail(fmt.Errorf("unexpected status %d: %s", resp.StatusCode, out))
				return nil
			}
		}
	}

	// Readers: each opens a wire session, runs queries, and verifies
	// byte-identical answers against the serial precompute.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var sessResp server.SessionResponse
			if out := call(&lat, "/v1/sessions", server.SessionRequest{TimeoutMS: 60_000}); out == nil {
				return
			} else if err := json.Unmarshal(out, &sessResp); err != nil {
				fail(err)
				return
			}
			for i := 0; i < reqPerSession; i++ {
				qi := (r + i) % len(specs)
				out := call(&lat, "/v1/query", server.QueryRequest{Session: sessResp.Session, Query: specs[qi]})
				if out == nil {
					return
				}
				var qr server.QueryResponse
				if err := json.Unmarshal(out, &qr); err != nil {
					fail(err)
					return
				}
				got := qr.Result.Relation
				got.Sort()
				if !sameRelation(got, expected[qi]) {
					wrong.Add(1)
					fail(fmt.Errorf("reader %d query %d: answer differs from serial replay", r, qi))
					return
				}
			}
		}(r)
	}

	// Writers: unique (acct, seq) rows, so the final ledger state is
	// interleaving-independent and comparable to a serial replay.
	const rowsPerWriter = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < rowsPerWriter; j++ {
				out := call(&lat, "/v1/insert", server.InsertRequest{
					Table:   "ledger",
					Vals:    []int32{int32(w), int32(j)},
					Measure: float64(w*rowsPerWriter + j),
				})
				if out == nil {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// --- Reader-overlap phase: long analytical queries over the ledger
	// view while a writer keeps ingesting. Every reader maps its answer
	// back to its pinned catalog version (Result.Snapshot) and must match
	// the serial replay at exactly that prefix — an answer mixing table
	// versions would match no prefix (torn catalog). ---
	overlapInserts, overlapReaders := 30, 8
	if cfg.Quick {
		overlapInserts, overlapReaders = 10, 4
	}
	if err := db.CreateView("book", []string{"ledger"}); err != nil {
		return nil, err
	}
	overlapRow := func(i int) ([]int32, float64) {
		// Accounts disjoint from the main-phase writers, so overlap rows
		// never collide with theirs.
		return []int32{int32(256 + i%16), int32(i)}, float64(i)*1.25 + 0.5
	}
	bookSpec := &mpf.QuerySpec{View: "book", GroupVars: []string{"acct"}}

	// Serial replay prefixes on a shadow database: the main-phase ledger
	// in (writer, seq) order — per-account row order matches the serving
	// database, and group-by sums only mix measures within an account —
	// then one expected answer per overlap commit.
	shadowLedger, err := emptyLedger()
	if err != nil {
		return nil, err
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < rowsPerWriter; j++ {
			shadowLedger.MustAppend([]int32{int32(w), int32(j)}, float64(w*rowsPerWriter+j))
		}
	}
	shadow, err := mpf.Open(mpf.Config{PoolFrames: cfg.frames(), Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize})
	if err != nil {
		return nil, err
	}
	defer shadow.Close()
	if err := shadow.CreateTable(shadowLedger); err != nil {
		return nil, err
	}
	if err := shadow.CreateView("book", []string{"ledger"}); err != nil {
		return nil, err
	}
	expectedOv := make([]*mpf.Relation, overlapInserts+1)
	for p := 0; p <= overlapInserts; p++ {
		if p > 0 {
			vals, m := overlapRow(p - 1)
			if err := shadow.Insert("ledger", vals, m); err != nil {
				return nil, err
			}
		}
		res, err := shadow.Query(bookSpec)
		if err != nil {
			return nil, err
		}
		res.Relation.Sort()
		expectedOv[p] = res.Relation
	}

	// Solo baseline for the reader-p99 comparison, then the base
	// sequence s0: the overlap writer is the only committer from here, so
	// a reader pinned after its p-th commit reports snapshot s0+p.
	var baseLat metrics.Histogram
	for i := 0; i < 12; i++ {
		if out := call(&baseLat, "/v1/query", server.QueryRequest{Query: bookSpec}); out == nil {
			return nil, firstErr
		}
	}
	probe, err := db.Query(bookSpec)
	if err != nil {
		return nil, err
	}
	s0 := probe.Snapshot

	var (
		overlapLat     metrics.Histogram
		overlapQueries atomic.Int64
		torn           atomic.Int64
		ovDone         = make(chan struct{})
		ovWG           sync.WaitGroup
	)
	for r := 0; r < overlapReaders; r++ {
		ovWG.Add(1)
		go func() {
			defer ovWG.Done()
			for {
				select {
				case <-ovDone:
					return
				default:
				}
				out := call(&overlapLat, "/v1/query", server.QueryRequest{Query: bookSpec})
				if out == nil {
					return
				}
				var qr server.QueryResponse
				if err := json.Unmarshal(out, &qr); err != nil {
					fail(err)
					return
				}
				prefix := int(qr.Result.Snapshot - s0)
				if prefix < 0 || prefix > overlapInserts {
					torn.Add(1)
					fail(fmt.Errorf("overlap reader pinned snapshot %d outside [%d,%d]: torn catalog",
						qr.Result.Snapshot, s0, s0+int64(overlapInserts)))
					return
				}
				got := qr.Result.Relation
				got.Sort()
				if !sameRelation(got, expectedOv[prefix]) {
					torn.Add(1)
					fail(fmt.Errorf("overlap answer at snapshot %d differs from serial replay at prefix %d",
						qr.Result.Snapshot, prefix))
					return
				}
				overlapQueries.Add(1)
			}
		}()
	}
	for i := 0; i < overlapInserts; i++ {
		vals, m := overlapRow(i)
		if out := call(&lat, "/v1/insert", server.InsertRequest{Table: "ledger", Vals: vals, Measure: m}); out == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(ovDone)
	ovWG.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	finalOv, err := db.Query(bookSpec)
	if err != nil {
		return nil, err
	}
	finalOv.Relation.Sort()
	if !sameRelation(finalOv.Relation, expectedOv[overlapInserts]) {
		return nil, fmt.Errorf("post-overlap answer differs from full serial replay")
	}

	// Drain: the server refuses new work typed and goes idle.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("drain: %w", err)
	}
	resp, err := client.Post(ts.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"query":{"view":"`+ds.Name+`","group_vars":["wid"]}}`)))
	if err != nil {
		return nil, err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var env server.ErrorEnvelope
	if resp.StatusCode != http.StatusServiceUnavailable ||
		json.Unmarshal(out, &env) != nil || env.Code != server.CodeDraining {
		return nil, fmt.Errorf("post-drain request not typed draining: %d %s", resp.StatusCode, out)
	}
	if n := db.Pool().Pinned(); n != 0 {
		return nil, fmt.Errorf("%d buffer-pool frames left pinned after drain", n)
	}

	// Serial replay of the full writer workload (main phase plus overlap
	// phase) on a fresh ledger.
	replay, err := emptyLedger()
	if err != nil {
		return nil, err
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < rowsPerWriter; j++ {
			replay.MustAppend([]int32{int32(w), int32(j)}, float64(w*rowsPerWriter+j))
		}
	}
	for i := 0; i < overlapInserts; i++ {
		vals, m := overlapRow(i)
		replay.MustAppend(vals, m)
	}
	final, err := db.Relation("ledger")
	if err != nil {
		return nil, err
	}
	final = final.Clone()
	final.Sort()
	replay.Sort()
	if !sameRelation(final, replay) {
		return nil, fmt.Errorf("ledger diverged from serial replay: %d rows vs %d", final.Len(), replay.Len())
	}

	st := srv.Stats()
	lstats := lat.Stats()
	baseStats := baseLat.Stats()
	ovStats := overlapLat.Stats()
	return &Table{
		ID:     "loadgen",
		Title:  fmt.Sprintf("wire serving under %d concurrent sessions (mixed read/write)", sessions),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"sessions", fmt.Sprintf("%d (%d readers, %d writers)", sessions, readers, writers)},
			{"requests ok", fmt.Sprintf("%d", okReqs.Load())},
			{"admission retries", fmt.Sprintf("%d rate-limited, %d overloaded", retries429.Load(), retries503.Load())},
			{"untyped rejections", fmt.Sprintf("%d", untyped.Load())},
			{"wrong answers", fmt.Sprintf("%d", wrong.Load())},
			{"ledger rows", fmt.Sprintf("%d (serial replay matches)", final.Len())},
			{"client latency", fmt.Sprintf("p50 %v  p99 %v  max %v", lstats.P50, lstats.P99, lstats.Max)},
			{"overlap readers", fmt.Sprintf("%d queries over %d readers during %d-commit ingest, %d torn-catalog reads",
				overlapQueries.Load(), overlapReaders, overlapInserts, torn.Load())},
			{"overlap reader p99", fmt.Sprintf("solo %v -> overlapped %v (reads do not block behind writes)",
				baseStats.P99, ovStats.P99)},
			{"server admitted", fmt.Sprintf("%d (rejected %d rate / %d queue / %d drain)",
				st.Admitted, st.RejectedRate, st.RejectedQueue, st.RejectedDrain)},
		},
		Notes: "acceptance: zero wrong answers and zero untyped rejections under sustained concurrent sessions; " +
			"admission pressure surfaces only as typed 429/503; drain leaves no pinned frames; " +
			"overlap readers pin consistent snapshots (answers match serial replay at their version, zero torn reads)",
	}, nil
}

// loadgenDB opens the serving database: the scaled supply chain plus an
// empty writable ledger table.
func loadgenDB(cfg Config) (*mpf.Database, *gen.Dataset, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), Seed: cfg.Seed + 1})
	if err != nil {
		return nil, nil, err
	}
	db, err := mpf.Open(mpf.Config{PoolFrames: cfg.frames(), Parallelism: cfg.Parallelism, BatchSize: cfg.BatchSize})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			db.Close()
			return nil, nil, err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		db.Close()
		return nil, nil, err
	}
	ledger, err := emptyLedger()
	if err != nil {
		db.Close()
		return nil, nil, err
	}
	if err := db.CreateTable(ledger); err != nil {
		db.Close()
		return nil, nil, err
	}
	return db, ds, nil
}

// emptyLedger builds the writers' table: unique (acct, seq) rows.
func emptyLedger() (*mpf.Relation, error) {
	return mpf.NewRelation("ledger", []mpf.Attr{
		{Name: "acct", Domain: 512},
		{Name: "seq", Domain: 512},
	})
}

// sameRelation reports byte-identical contents of two sorted relations:
// same rows in the same order with bit-equal measures.
func sameRelation(a, b *mpf.Relation) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				return false
			}
		}
		if a.Measure(i) != b.Measure(i) {
			return false
		}
	}
	return true
}
