// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus the ablations called out in DESIGN.md. Each
// experiment returns a rendered Table whose rows mirror what the paper
// reports; cmd/mpfbench prints them and bench_test.go exercises them as
// Go benchmarks.
//
// Absolute numbers differ from the paper (our substrate is a from-scratch
// Go engine, not PostgreSQL 8.1 on 2006 hardware); the shapes — which
// algorithm wins, by what rough factor, and where crossovers fall — are
// the reproduction target. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"mpf/internal/core"
	"mpf/internal/gen"
	"mpf/internal/opt"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/storage"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale is the supply-chain scale factor relative to Table 1
	// (location has 1e6·Scale rows); 0 defaults to 0.05, Quick uses a
	// reduced sweep regardless.
	Scale float64
	// Seed drives all data generation.
	Seed int64
	// Quick shrinks sweeps and scales for smoke tests and benchmarks.
	Quick bool
	// PoolFrames is the buffer pool size; 0 defaults to 256 frames.
	PoolFrames int
	// Parallelism is the engine's intra-query worker bound applied to
	// every experiment session; 0 or 1 is serial (today's default).
	Parallelism int
	// ResultCacheBytes overrides the result-cache byte budget used by
	// cache-aware experiments (result-cache); 0 keeps the experiment's
	// default budget. Experiments that measure raw plan IO always run with
	// the cache disabled regardless.
	ResultCacheBytes int64
	// BatchSize selects the executor batch width for experiment sessions
	// (0 = page-sized batches, 1 = tuple-at-a-time). Experiments that
	// compare the two modes (batch-exec) override it per run.
	BatchSize int
	// ReadAhead is the buffer-pool sequential-scan prefetch distance in
	// pages applied to experiment sessions (0 = off). batch-exec overrides
	// it per run.
	ReadAhead int
	// Columnar enables the per-page columnar encoding and encoded-value
	// kernels for experiment sessions. The columnar experiment compares
	// the two layouts itself regardless of this setting.
	Columnar bool
	// Fuse pipelines GroupBy-over-Join pairs through the fused
	// non-materializing operator for experiment sessions. The
	// columnar-fuse experiment compares fused paths itself regardless of
	// this setting.
	Fuse bool
	// FaultSeed, when non-zero, backs every experiment session with a
	// seeded storage.FaultDisk injecting transient read/write faults at 2%
	// per op (mpfbench -faults). Results must be byte-identical to a
	// fault-free run — the retry path absorbs every injected fault.
	FaultSeed int64
	// Planner, when non-empty, overrides the default planning strategy of
	// every experiment session (opt.ByName report name, e.g. "greedy").
	// Experiments that sweep optimizers still pass their own per query.
	Planner string
	// PlanCacheEntries sets the plan cache capacity for experiment
	// sessions; 0 keeps it disabled except in experiments (plan-cache)
	// that enable it per pass.
	PlanCacheEntries int
	// PlanBudget bounds planning wall time for experiment sessions, with
	// greedy fallback past the budget (0 = unlimited).
	PlanBudget time.Duration
}

func (c Config) scale() float64 {
	if c.Quick {
		return 0.005
	}
	if c.Scale == 0 {
		return 0.05
	}
	return c.Scale
}

func (c Config) frames() int {
	if c.PoolFrames == 0 {
		return 256
	}
	return c.PoolFrames
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes explains the expected paper shape for EXPERIMENTS.md.
	Notes string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "-- %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

// Registry maps experiment ids to runners, in report order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"table2", Table2},
		{"table3", Table3},
		{"fig10", Fig10},
		{"ablation-pushdown", AblationPushdown},
		{"ablation-physical", AblationPhysicalOps},
		{"ablation-bufferpool", AblationBufferPool},
		{"ablation-fdskip", AblationFDSkip},
		{"ablation-workload", AblationWorkload},
		{"ablation-costmodel", AblationCostModel},
		{"ablation-fusion", AblationFusion},
		{"parallel-exec", ParallelExec},
		{"result-cache", ResultCacheExp},
		{"batch-exec", BatchExec},
		{"chaos", Chaos},
		{"plan-cache", PlanCacheExp},
		{"loadgen", LoadGen},
		{"columnar", ColumnarExec},
		{"columnar-fuse", ColumnarFuse},
		{"mvcc", MVCC},
	}
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists the registered experiment ids.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// bench is one measured query execution.
type bench struct {
	Wall     time.Duration
	Optimize time.Duration
	IO       int64
	PlanCost float64
	Rows     int64
}

// session wraps a database loaded with a dataset.
type session struct {
	db *core.Database
	ds *gen.Dataset
	// faults marks a session backed by fault-injecting disks (mpfbench
	// -faults); close reports the pool's retry counters on stderr so a
	// run shows its injected faults were absorbed, without perturbing
	// the table output on stdout.
	faults bool
}

// sessionConfig translates the experiment config into an engine config:
// buffer-pool size plus the execution knobs every session shares
// (parallelism, batch width, read-ahead distance, fault injection).
func sessionConfig(cfg Config, frames int) core.Config {
	ccfg := core.Config{
		PoolFrames:       frames,
		Parallelism:      cfg.Parallelism,
		BatchSize:        cfg.BatchSize,
		ReadAhead:        cfg.ReadAhead,
		Columnar:         cfg.Columnar,
		FuseJoinGroupBy:  cfg.Fuse,
		PlanCacheEntries: cfg.PlanCacheEntries,
		PlanBudget:       cfg.PlanBudget,
	}
	if cfg.Planner != "" {
		if o, err := opt.ByName(cfg.Planner); err == nil {
			ccfg.Optimizer = o
		}
	}
	if cfg.FaultSeed != 0 {
		ccfg.DiskFactory = storage.FaultDiskFactory(storage.MemDiskFactory(), storage.FaultPlan{
			Seed:     cfg.FaultSeed,
			ReadErr:  0.02,
			WriteErr: 0.02,
		})
	}
	return ccfg
}

// openSession loads a dataset into a database opened with ccfg.
func openSession(ds *gen.Dataset, cfg Config, ccfg core.Config) (*session, error) {
	db, err := core.Open(ccfg)
	if err != nil {
		return nil, err
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			db.Close()
			return nil, err
		}
	}
	if err := db.CreateView(ds.Name, ds.ViewTables); err != nil {
		db.Close()
		return nil, err
	}
	return &session{db: db, ds: ds, faults: cfg.FaultSeed != 0}, nil
}

// openDataset loads a dataset into a fresh engine-backed database with
// the given buffer-pool size and the config's execution knobs.
func openDataset(ds *gen.Dataset, cfg Config, frames int) (*session, error) {
	return openSession(ds, cfg, sessionConfig(cfg, frames))
}

func (s *session) close() {
	if s.faults {
		st := s.db.Pool().Stats()
		fmt.Fprintf(os.Stderr, "faults: %d retries, %d transient, %d permanent, %d checksum failures\n",
			st.Retries, st.TransientFaults, st.PermanentFaults, st.ChecksumFailures)
	}
	s.db.Close()
}

// run executes one query on the engine with the given optimizer.
func (s *session) run(o opt.Optimizer, groupVars []string, where relation.Predicate) (bench, error) {
	res, err := s.db.Query(&core.QuerySpec{
		View:      s.ds.Name,
		GroupVars: groupVars,
		Where:     where,
		Optimizer: o,
	})
	if err != nil {
		return bench{}, err
	}
	return bench{
		Wall:     res.Exec.Wall,
		Optimize: res.Optimize,
		IO:       res.Exec.IO.IO(),
		PlanCost: res.Plan.TotalCost,
		Rows:     res.Exec.RowsOut,
	}, nil
}

// explain optimizes without executing.
func (s *session) explain(o opt.Optimizer, groupVars []string) (bench, *plan.Node, error) {
	p, d, err := s.db.Explain(&core.QuerySpec{
		View:      s.ds.Name,
		GroupVars: groupVars,
		Optimizer: o,
	})
	if err != nil {
		return bench{}, nil, err
	}
	return bench{Optimize: d, PlanCost: p.TotalCost}, p, nil
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }
func f2(v float64) string       { return fmt.Sprintf("%.2f", v) }
func itoa(v int64) string       { return fmt.Sprintf("%d", v) }

// rng returns a seeded generator offset by salt so sub-experiments are
// independent but reproducible.
func (c Config) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1000003 + salt))
}
