package experiments

import (
	"fmt"
	"math"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/gen"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// batchRun executes GroupBy_pid(location ⋈* demand) — scan, Grace
// partitioning, hash join, and hash group-by, all batch-eligible
// operators — on a fresh pool/engine with the given batch width and
// read-ahead distance, returning the result and actuals. Each call
// starts cold so modes compete on equal footing.
func batchRun(l, r *relation.Relation, factory storage.DiskFactory, frames, batchSize, readAhead int) (*relation.Relation, exec.RunStats, error) {
	pool := storage.NewPool(frames)
	eng := exec.NewEngine(pool, factory, semiring.SumProduct)
	eng.BatchSize = batchSize
	eng.ReadAhead = readAhead
	// Force the Grace partitioned path (inputs are far above 4096 tuples)
	// so the comparison covers partitioning IO, not just in-memory probe.
	eng.HashJoinMaxBuild = 4096

	cat := catalog.New()
	tables := make(map[string]*exec.Table, 2)
	for _, rel := range []*relation.Relation{l, r} {
		t, err := exec.LoadRelation(pool, factory, rel)
		if err != nil {
			return nil, exec.RunStats{}, err
		}
		defer t.Heap.Drop()
		tables[rel.Name()] = t
		if err := cat.AddTable(catalog.AnalyzeRelation(rel)); err != nil {
			return nil, exec.RunStats{}, err
		}
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	sl, err := b.Scan(l.Name())
	if err != nil {
		return nil, exec.RunStats{}, err
	}
	sr, err := b.Scan(r.Name())
	if err != nil {
		return nil, exec.RunStats{}, err
	}
	gb, err := b.GroupBy(b.Join(sl, sr), []string{"pid"})
	if err != nil {
		return nil, exec.RunStats{}, err
	}
	pool.ResetStats()
	return eng.Run(gb, exec.MapResolver(tables))
}

// batchRunBest repeats batchRun reps times and returns the fastest run's
// actuals (minimum wall time is the standard noise suppressor for
// CPU-bound comparisons on a shared machine). Every repetition's result
// and IO counters must agree — the modes are deterministic — so the
// returned relation and counters are representative of all reps.
func batchRunBest(l, r *relation.Relation, factory storage.DiskFactory, frames, batchSize, readAhead, reps int) (*relation.Relation, exec.RunStats, error) {
	rel, best, err := batchRun(l, r, factory, frames, batchSize, readAhead)
	if err != nil {
		return nil, exec.RunStats{}, err
	}
	for i := 1; i < reps; i++ {
		rel2, st, err := batchRun(l, r, factory, frames, batchSize, readAhead)
		if err != nil {
			return nil, exec.RunStats{}, err
		}
		if !sameRows(rel, rel2) {
			return nil, exec.RunStats{}, fmt.Errorf("batch-exec: nondeterministic result across repetitions")
		}
		if st.Wall < best.Wall {
			best = st
		}
	}
	return rel, best, nil
}

// sameRows reports whether a and b hold identical tuples in identical
// order with bitwise-equal measures — the vectorized paths must preserve
// the tuple-at-a-time emit order exactly, so anything short of byte
// identity is a bug, not float noise.
func sameRows(a, b *relation.Relation) bool {
	if a.Len() != b.Len() || a.Arity() != b.Arity() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for c := range ra {
			if ra[c] != rb[c] {
				return false
			}
		}
		if math.Float64bits(a.Measure(i)) != math.Float64bits(b.Measure(i)) {
			return false
		}
	}
	return true
}

// BatchExec measures vectorized batch execution against the
// tuple-at-a-time baseline on GroupBy(location ⋈* demand) — the same
// two equally large inputs as parallel-exec, with a marginalizing
// group-by on top so scans, Grace partitioning, join probe, and hash
// aggregation all run through the batch paths. Two regimes:
//
//   - warm (memory disk, large pool): CPU-bound, where batching pays by
//     eliminating per-tuple pin/decode/append overhead; results must be
//     byte-identical and physical reads/writes unchanged.
//   - io-bound (1ms reads, small pool): scans stall on the disk; batch
//     mode plus read-ahead overlaps the stalls. Read-ahead must not
//     change results; prefetched pages are reported separately.
//
// The run errors (rather than reporting a row) if any mode changes the
// result or, in the warm regime, the physical read/write counts —
// those are correctness bugs, not performance observations.
func BatchExec(cfg Config) (*Table, error) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: cfg.scale(), CtdealsDensity: 0.5, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	loc := ds.RelationMap()["location"]
	demand := relation.MustNew("demand", loc.Attrs())
	rng := cfg.rng(992)
	for i := 0; i < loc.Len(); i++ {
		demand.MustAppend(loc.Row(i), 0.1+rng.Float64())
	}
	t := &Table{
		ID:     "batch-exec",
		Title:  "vectorized batch execution on GroupBy(location⋈*demand)",
		Header: []string{"regime", "mode", "exec ms", "speedup", "page reads", "page writes", "prefetched"},
		Notes:  "expected: batch ≥1.5× over tuple when warm with identical results and physical IO; read-ahead cuts scan stalls on the 1ms disk without changing results",
	}

	// Warm regime: everything fits, the disk is free — the comparison is
	// pure executor overhead. Three reps per mode, best wall kept, so a
	// background-load hiccup on either side doesn't skew the ratio.
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	warmFactory := storage.MemDiskFactory()
	tupleRel, tupleSt, err := batchRunBest(loc, demand, warmFactory, 4096, 1, 0, reps)
	if err != nil {
		return nil, err
	}
	batchRel, batchSt, err := batchRunBest(loc, demand, warmFactory, 4096, 0, 0, reps)
	if err != nil {
		return nil, err
	}
	if !sameRows(tupleRel, batchRel) {
		return nil, fmt.Errorf("batch-exec: batch mode changed the result")
	}
	if tupleSt.IO.Reads != batchSt.IO.Reads || tupleSt.IO.Writes != batchSt.IO.Writes {
		return nil, fmt.Errorf("batch-exec: batch mode changed physical IO: %dr/%dw vs %dr/%dw",
			tupleSt.IO.Reads, tupleSt.IO.Writes, batchSt.IO.Reads, batchSt.IO.Writes)
	}
	t.Rows = append(t.Rows,
		[]string{"warm", "tuple", ms(tupleSt.Wall), "1.00",
			itoa(tupleSt.IO.Reads), itoa(tupleSt.IO.Writes), itoa(tupleSt.IO.Prefetches)},
		[]string{"warm", "batch", ms(batchSt.Wall),
			f2(float64(tupleSt.Wall) / float64(batchSt.Wall)),
			itoa(batchSt.IO.Reads), itoa(batchSt.IO.Writes), itoa(batchSt.IO.Prefetches)})

	// IO-bound regime: a pool much smaller than the dataset over a
	// 1ms-read disk; read-ahead overlaps sequential scan stalls with
	// computation. Quick runs shrink the pool along with the data so the
	// regime stays io-bound (a 64-frame pool would hold the whole quick
	// dataset and no page would ever miss).
	ioFrames := 64
	if cfg.Quick {
		ioFrames = 16
	}
	slowFactory := storage.LatencyMemDiskFactory(time.Millisecond, 0)
	plainRel, plainSt, err := batchRun(loc, demand, slowFactory, ioFrames, 0, 0)
	if err != nil {
		return nil, err
	}
	raRel, raSt, err := batchRun(loc, demand, slowFactory, ioFrames, 0, 8)
	if err != nil {
		return nil, err
	}
	if !sameRows(plainRel, raRel) {
		return nil, fmt.Errorf("batch-exec: read-ahead changed the result")
	}
	if !sameRows(tupleRel, plainRel) {
		return nil, fmt.Errorf("batch-exec: io-bound regime changed the result")
	}
	t.Rows = append(t.Rows,
		[]string{"io-bound (1ms reads)", "batch", ms(plainSt.Wall), "1.00",
			itoa(plainSt.IO.Reads), itoa(plainSt.IO.Writes), itoa(plainSt.IO.Prefetches)},
		[]string{"io-bound (1ms reads)", "batch+ra8", ms(raSt.Wall),
			f2(float64(plainSt.Wall) / float64(raSt.Wall)),
			itoa(raSt.IO.Reads), itoa(raSt.IO.Writes), itoa(raSt.IO.Prefetches)})
	return t, nil
}
