package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quick returns the smoke-test configuration.
func quick() Config { return Config{Quick: true, Seed: 1} }

// TestAllExperimentsRun runs every registered experiment at Quick scale
// and checks the rendered output is well formed.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(quick())
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Fatalf("table ID %q, want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(tbl.Header), row)
				}
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatal("render missing experiment id")
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id should error")
	}
	if len(IDs()) != len(Registry()) {
		t.Fatal("IDs out of sync")
	}
}

// cell parses a numeric cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

// TestTable2Shape verifies the headline Table 2 claims at the paper's own
// configuration (N=5, domain 10): VE(deg) catastrophic on the star view,
// and every extended variant matching nonlinear CS+.
func TestTable2Shape(t *testing.T) {
	tbl, err := Table2(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is nonlinear CS+; row 1 VE(deg); row 2 VE(deg)+ext.
	cspStar := cell(t, tbl, 0, 1)
	degStar := cell(t, tbl, 1, 1)
	if degStar < 20*cspStar {
		t.Fatalf("VE(deg) on star should be far worse than CS+: %v vs %v", degStar, cspStar)
	}
	for r := 2; r < len(tbl.Rows); r += 2 {
		if !strings.Contains(tbl.Rows[r][0], "+ext") {
			t.Fatalf("row %d should be an extended variant: %v", r, tbl.Rows[r][0])
		}
		for c := 1; c <= 3; c++ {
			ext := cell(t, tbl, r, c)
			csp := cell(t, tbl, 0, c)
			if ext > csp*1.05 {
				t.Fatalf("extended %s col %d cost %v exceeds CS+ %v", tbl.Rows[r][0], c, ext, csp)
			}
		}
	}
}

// TestTable3Shape verifies that extension improves the random-order mean
// on the star view.
func TestTable3Shape(t *testing.T) {
	tbl, err := Table3(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parseMean := func(s string) float64 {
		fields := strings.Fields(s) // "mean ± ci"
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad mean cell %q", s)
		}
		return v
	}
	plainStar := parseMean(tbl.Rows[0][1])
	extStar := parseMean(tbl.Rows[1][1])
	if extStar >= plainStar {
		t.Fatalf("extension should improve random-order mean on star: %v vs %v", extStar, plainStar)
	}
}

// TestFig10Shape verifies CS produces far costlier plans than nonlinear
// CS+ on the synthetic views.
func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	costs := map[string]map[string]float64{}
	for r := range tbl.Rows {
		schema, algo := tbl.Rows[r][0], tbl.Rows[r][1]
		if costs[schema] == nil {
			costs[schema] = map[string]float64{}
		}
		costs[schema][algo] = cell(t, tbl, r, 2)
	}
	for schema, m := range costs {
		if m["cs"] <= m["cs+nonlinear"] {
			t.Fatalf("%s: CS (%v) should cost more than nonlinear CS+ (%v)", schema, m["cs"], m["cs+nonlinear"])
		}
		if m["cs+linear"] < m["cs+nonlinear"] {
			t.Fatalf("%s: linear CS+ cannot beat nonlinear CS+", schema)
		}
	}
}

// TestAblationPushdownShape: each pushdown level must not increase IO.
func TestAblationPushdownShape(t *testing.T) {
	tbl, err := AblationPushdown(quick())
	if err != nil {
		t.Fatal(err)
	}
	csIO := cell(t, tbl, 0, 2)
	nonIO := cell(t, tbl, 2, 2)
	if nonIO > csIO {
		t.Fatalf("nonlinear CS+ IO %v exceeds CS IO %v", nonIO, csIO)
	}
}

// TestAblationBufferPoolShape: physical reads must not increase with pool
// size.
func TestAblationBufferPoolShape(t *testing.T) {
	tbl, err := AblationBufferPool(quick())
	if err != nil {
		t.Fatal(err)
	}
	small := cell(t, tbl, 0, 2)
	big := cell(t, tbl, len(tbl.Rows)-1, 2)
	if big > small {
		t.Fatalf("reads grew with pool size: %v (small) vs %v (big)", small, big)
	}
}

// TestBatchExecShape verifies the structure of the batch-execution
// experiment: 2 regimes × 2 modes, read-ahead pages prefetched only in
// the read-ahead row, and identical physical reads/writes across the
// warm pair. (BatchExec itself errors if any mode changes the query
// result, so result equality needs no re-check here.)
func TestBatchExecShape(t *testing.T) {
	tbl, err := BatchExec(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rows (2 regimes × 2 modes), got %d", len(tbl.Rows))
	}
	// Columns: regime, mode, exec ms, speedup, reads, writes, prefetched.
	for r := 0; r < 3; r++ {
		if p := cell(t, tbl, r, 6); p != 0 {
			t.Fatalf("row %d prefetched %v pages with read-ahead off", r, p)
		}
	}
	if p := cell(t, tbl, 3, 6); p == 0 {
		t.Fatal("read-ahead row prefetched nothing")
	}
	if cell(t, tbl, 0, 4) != cell(t, tbl, 1, 4) || cell(t, tbl, 0, 5) != cell(t, tbl, 1, 5) {
		t.Fatal("warm tuple and batch rows disagree on physical IO")
	}
}

// TestResultCacheExpShape verifies the acceptance shape of the cache
// experiment: the second cache-enabled pass hits the cache and does at
// most half the physical IO of the first, while cache-off passes never
// probe it.
func TestResultCacheExpShape(t *testing.T) {
	tbl, err := ResultCacheExp(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("want 4 rows (2 modes × 2 passes), got %d", len(tbl.Rows))
	}
	// Rows: off/1, off/2, cached/1, cached/2; IO is column 4, hits column 5.
	for r := 0; r < 2; r++ {
		if hits := cell(t, tbl, r, 5); hits != 0 {
			t.Fatalf("cache-off pass %d reported %v hits", r+1, hits)
		}
	}
	coldIO := cell(t, tbl, 2, 4)
	warmIO := cell(t, tbl, 3, 4)
	if warmIO*2 > coldIO {
		t.Fatalf("warm pass IO %v not ≤ half of cold pass IO %v", warmIO, coldIO)
	}
	if hits := cell(t, tbl, 3, 5); hits == 0 {
		t.Fatal("warm pass never hit the cache")
	}
}
