package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpf"
	"mpf/internal/metrics"
	"mpf/internal/storage"
)

// armedFaultFactory hands out fault-injecting disks with a base plan of
// transient read/write faults, and can be armed so the next disks it
// creates fail their first write permanently — targeting exactly the
// heap a copy-on-write commit builds, without touching existing storage.
type armedFaultFactory struct {
	inner storage.DiskFactory
	base  storage.FaultPlan
	seq   atomic.Int64
	armed atomic.Bool
}

func (f *armedFaultFactory) factory() storage.DiskFactory {
	return func() (storage.Disk, error) {
		d, err := f.inner()
		if err != nil {
			return nil, err
		}
		plan := f.base
		plan.Seed = f.base.Seed*1000003 + f.seq.Add(1)
		if f.armed.Load() {
			plan.FailWriteOp = 1
		}
		return storage.NewFaultDisk(d, plan), nil
	}
}

// mvccBook opens a database with the chaos experiment's schema: a
// writable ledger joined with a static per-account rates table under the
// "book" view, so reader queries do real join + group-by work.
func mvccBook(ccfg mpf.Config, accts int) (*mpf.Database, error) {
	db, err := mpf.Open(ccfg)
	if err != nil {
		return nil, err
	}
	ledger, err := mpf.NewRelation("ledger", []mpf.Attr{
		{Name: "acct", Domain: accts},
		{Name: "seq", Domain: 512},
	})
	if err != nil {
		db.Close()
		return nil, err
	}
	if err := db.CreateTable(ledger); err != nil {
		db.Close()
		return nil, err
	}
	rates, err := mpf.CompleteRelation("rates", []mpf.Attr{
		{Name: "acct", Domain: accts},
	}, func(vals []int32) float64 { return float64(vals[0]%3)/4 + 1 })
	if err != nil {
		db.Close()
		return nil, err
	}
	if err := db.CreateTable(rates); err != nil {
		db.Close()
		return nil, err
	}
	if err := db.CreateView("book", []string{"ledger", "rates"}); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// MVCC is the snapshot-isolation chaos experiment: analytical readers
// run concurrently with a sustained ingest stream on fault-injecting
// disks, and every reader maps its answer back to the exact catalog
// version it was pinned to (Result.Snapshot). Correctness bar: every
// served answer is byte-identical to a serial replay at its snapshot
// version (a mixed-version read could match no replay prefix), a
// permanent write fault armed mid-commit yields a typed ErrIO with the
// old version still served and the sequence unmoved, a canceled query
// releases its pin, and at the end every superseded version has been
// reclaimed with zero pinned frames and balanced snapshot counts.
// Run it under -race (make mvcc) to also drive the version-swap and
// reclamation paths under the race detector.
func MVCC(cfg Config) (*Table, error) {
	const accts = 8
	inserts, readers := 64, 4
	if cfg.Quick {
		inserts, readers = 16, 3
	}

	seed := cfg.Seed*1000003 + 77
	af := &armedFaultFactory{
		inner: storage.MemDiskFactory(),
		base:  storage.FaultPlan{Seed: seed, ReadErr: 0.02, WriteErr: 0.02},
	}
	db, err := mvccBook(mpf.Config{PoolFrames: cfg.frames(), IORetries: 8, DiskFactory: af.factory()}, accts)
	if err != nil {
		return nil, err
	}
	defer db.Close()

	// Shadow database for the serial replay: same engine configuration,
	// fault-free disks. Identical contents and a deterministic engine
	// make the answers byte-identical, injected (retried) faults or not.
	shadow, err := mvccBook(mpf.Config{PoolFrames: cfg.frames(), IORetries: 8}, accts)
	if err != nil {
		return nil, err
	}
	defer shadow.Close()

	row := func(i int) ([]int32, float64) {
		return []int32{int32(i % accts), int32(i)}, float64(i%7) + 0.5
	}
	q := &mpf.QuerySpec{View: "book", GroupVars: []string{"acct"}}
	sorted := func(d *mpf.Database) (*mpf.Relation, int64, error) {
		res, err := d.Query(q)
		if err != nil {
			return nil, 0, err
		}
		res.Relation.Sort()
		return res.Relation, res.Snapshot, nil
	}

	// Serial replay: expected[p] is the answer after the first p
	// committed inserts.
	expected := make([]*mpf.Relation, inserts+1)
	for p := 0; p <= inserts; p++ {
		if p > 0 {
			vals, m := row(p - 1)
			if err := shadow.Insert("ledger", vals, m); err != nil {
				return nil, err
			}
		}
		if expected[p], _, err = sorted(shadow); err != nil {
			return nil, err
		}
	}

	// A canceled query must release its snapshot pin — checked against
	// the acquired/released balance at the end.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	if _, err := db.QueryContext(cctx, q); !errors.Is(err, mpf.ErrCanceled) {
		return nil, fmt.Errorf("pre-canceled query: err = %v, want ErrCanceled", err)
	}

	// Probe the base sequence: the single sequential writer is the only
	// committer during the run, so a reader pinned after its p-th commit
	// sees snapshot s0+p and must match expected[p] exactly.
	pre, s0, err := sorted(db)
	if err != nil {
		return nil, err
	}
	if !sameRelation(pre, expected[0]) {
		return nil, fmt.Errorf("pre-run answer differs from serial replay at prefix 0")
	}

	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		holding    bool
		parked     int
		inflight   int
		active     = readers
		writerDone bool

		readerQueries atomic.Int64
		lat           metrics.Histogram
		errOnce       sync.Once
		firstErr      error
	)
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				active--
				cond.Broadcast()
				mu.Unlock()
			}()
			for {
				// Park while the writer holds the fleet armed, so the
				// permanent fault hits only the commit's heap, never a
				// reader temp table.
				mu.Lock()
				for holding && !writerDone {
					parked++
					cond.Broadcast()
					cond.Wait()
					parked--
				}
				if writerDone {
					mu.Unlock()
					return
				}
				inflight++
				mu.Unlock()
				start := time.Now()
				res, err := db.Query(q)
				mu.Lock()
				inflight--
				cond.Broadcast()
				mu.Unlock()
				if err != nil {
					fail(err)
					return
				}
				lat.Observe(time.Since(start))
				prefix := int(res.Snapshot - s0)
				if prefix < 0 || prefix > inserts {
					fail(fmt.Errorf("reader pinned snapshot %d outside [%d,%d]: torn catalog",
						res.Snapshot, s0, s0+int64(inserts)))
					return
				}
				res.Relation.Sort()
				if !sameRelation(res.Relation, expected[prefix]) {
					fail(fmt.Errorf("answer at snapshot %d differs from serial replay at prefix %d",
						res.Snapshot, prefix))
					return
				}
				readerQueries.Add(1)
			}
		}()
	}

	// Writer: sustained sequential ingest, with a permanent write fault
	// armed against the commit heap at the halfway point.
	armAt := inserts / 2
	faultTyped := false
	for i := 0; i < inserts; i++ {
		vals, m := row(i)
		if i == armAt {
			mu.Lock()
			holding = true
			for inflight > 0 || parked < active {
				cond.Wait()
			}
			mu.Unlock()
			seqBefore := db.Metrics().MVCC.Seq
			af.armed.Store(true)
			err := db.Insert("ledger", vals, m)
			af.armed.Store(false)
			if !errors.Is(err, mpf.ErrIO) {
				fail(fmt.Errorf("insert under armed write fault: err = %v, want ErrIO", err))
			} else if db.Metrics().MVCC.Seq != seqBefore {
				fail(fmt.Errorf("failed commit moved the catalog sequence"))
			} else {
				faultTyped = true
			}
			mu.Lock()
			holding = false
			cond.Broadcast()
			mu.Unlock()
		}
		if err := db.Insert("ledger", vals, m); err != nil {
			fail(err)
			break
		}
		time.Sleep(300 * time.Microsecond)
	}
	mu.Lock()
	writerDone = true
	cond.Broadcast()
	mu.Unlock()
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if !faultTyped {
		return nil, fmt.Errorf("armed mid-commit fault was not exercised")
	}

	// Quiesced: the final answer is the full replay, every superseded
	// version is reclaimed, every pin released, no frame pinned.
	final, _, err := sorted(db)
	if err != nil {
		return nil, err
	}
	if !sameRelation(final, expected[inserts]) {
		return nil, fmt.Errorf("final answer differs from full serial replay")
	}
	st := db.Metrics().MVCC
	if st.CommitFailures != 1 {
		return nil, fmt.Errorf("commit failures = %d, want 1", st.CommitFailures)
	}
	if st.VersionsLive != 1 {
		return nil, fmt.Errorf("versions live after quiescing = %d, want 1 (leak)", st.VersionsLive)
	}
	if st.SnapshotsAcquired != st.SnapshotsReleased || st.SnapshotsActive != 0 {
		return nil, fmt.Errorf("snapshot pins leaked: %d acquired, %d released, %d active",
			st.SnapshotsAcquired, st.SnapshotsReleased, st.SnapshotsActive)
	}
	if n := db.Pool().Pinned(); n != 0 {
		return nil, fmt.Errorf("%d buffer-pool frames pinned after quiescing", n)
	}
	pf := db.Pool().Stats()
	ls := lat.Stats()
	return &Table{
		ID:     "mvcc",
		Title:  fmt.Sprintf("snapshot isolation under ingest + fault injection (%d readers, %d commits)", readers, inserts),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"reader queries ok", fmt.Sprintf("%d (all byte-identical to serial replay at their snapshot)", readerQueries.Load())},
			{"commits", fmt.Sprintf("%d (+1 typed mid-commit fault, old version served)", st.Commits)},
			{"versions", fmt.Sprintf("%d live, %d reclaimed", st.VersionsLive, st.VersionsReclaimed)},
			{"snapshots", fmt.Sprintf("%d acquired = %d released", st.SnapshotsAcquired, st.SnapshotsReleased)},
			{"writer stall", fmt.Sprintf("%v (writer-on-writer only)", st.WriterStall)},
			{"injected faults", fmt.Sprintf("%d retries, %d transient, %d permanent", pf.Retries, pf.TransientFaults, pf.PermanentFaults)},
			{"reader latency", fmt.Sprintf("p50 %v  p99 %v  max %v", ls.P50, ls.P99, ls.Max)},
		},
		Notes: "acceptance: every concurrent reader answer is byte-identical to a serial replay at its pinned version; " +
			"an armed mid-commit write fault yields typed ErrIO with the prior version fully served; " +
			"superseded versions reclaim to 1 live with balanced pins and zero pinned frames",
	}, nil
}
