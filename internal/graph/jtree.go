package graph

import (
	"fmt"
	"sort"

	"mpf/internal/relation"
)

// JunctionTree is a tree over cliques of variables satisfying the running
// intersection property: for any two cliques, their intersection is
// contained in every clique on the path between them (Theorem 7).
type JunctionTree struct {
	// Cliques are the tree nodes.
	Cliques []relation.VarSet
	// Edges are index pairs into Cliques, forming a forest.
	Edges [][2]int
	// Separators[i] is the variable intersection of Edges[i]'s endpoints.
	Separators []relation.VarSet
}

// NumNodes returns the number of cliques.
func (t *JunctionTree) NumNodes() int { return len(t.Cliques) }

// AdjacencyList returns neighbor indices per clique.
func (t *JunctionTree) AdjacencyList() [][]int {
	adj := make([][]int, len(t.Cliques))
	for _, e := range t.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// BuildJunctionTree connects the cliques with a maximum-weight spanning
// forest where edge weight is the separator size. For cliques coming from
// a triangulated (chordal) graph this yields a junction tree; the running
// intersection property is verified and an error returned otherwise.
func BuildJunctionTree(cliques []relation.VarSet) (*JunctionTree, error) {
	if len(cliques) == 0 {
		return nil, fmt.Errorf("graph: no cliques")
	}
	type cand struct {
		i, j, w int
	}
	var cands []cand
	for i := 0; i < len(cliques); i++ {
		for j := i + 1; j < len(cliques); j++ {
			w := len(cliques[i].Intersect(cliques[j]))
			if w > 0 {
				cands = append(cands, cand{i, j, w})
			}
		}
	}
	// Kruskal, maximum weight first; deterministic tie-break on indices.
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].w != cands[b].w {
			return cands[a].w > cands[b].w
		}
		if cands[a].i != cands[b].i {
			return cands[a].i < cands[b].i
		}
		return cands[a].j < cands[b].j
	})
	parent := make([]int, len(cliques))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	t := &JunctionTree{Cliques: cliques}
	for _, c := range cands {
		ri, rj := find(c.i), find(c.j)
		if ri == rj {
			continue
		}
		parent[ri] = rj
		t.Edges = append(t.Edges, [2]int{c.i, c.j})
		t.Separators = append(t.Separators, cliques[c.i].Intersect(cliques[c.j]))
	}
	if err := t.CheckRunningIntersection(); err != nil {
		return nil, err
	}
	return t, nil
}

// CheckRunningIntersection verifies the junction-tree property: for every
// pair of cliques sharing variables, the shared variables appear in every
// clique on the tree path between them. Clique pairs in different forest
// components must share nothing.
func (t *JunctionTree) CheckRunningIntersection() error {
	n := len(t.Cliques)
	adj := t.AdjacencyList()
	for i := 0; i < n; i++ {
		// BFS from i, tracking paths.
		parent := make([]int, n)
		for k := range parent {
			parent[k] = -2
		}
		parent[i] = -1
		queue := []int{i}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if parent[nb] == -2 {
					parent[nb] = cur
					queue = append(queue, nb)
				}
			}
		}
		for j := i + 1; j < n; j++ {
			shared := t.Cliques[i].Intersect(t.Cliques[j])
			if len(shared) == 0 {
				continue
			}
			if parent[j] == -2 {
				return fmt.Errorf("graph: cliques %d and %d share %v but are disconnected",
					i, j, shared.Sorted())
			}
			for cur := j; cur != i; cur = parent[cur] {
				if !t.Cliques[cur].Contains(shared) {
					return fmt.Errorf("graph: running intersection violated: cliques %d,%d share %v but path clique %d = %v misses it",
						i, j, shared.Sorted(), cur, t.Cliques[cur].Sorted())
				}
			}
		}
	}
	return nil
}

// SchemaJunctionTree runs the full Junction Tree pipeline of Algorithm 5
// on a set of relation schemas: build the variable graph, triangulate it
// (with the given elimination order, or min-fill when order is nil),
// extract maximal cliques, and connect them into a junction tree. The
// returned assignment maps each input schema index to the clique index
// that contains all of its variables (Algorithm 5, step 4).
func SchemaJunctionTree(schemas []relation.VarSet, order []string) (*JunctionTree, []int, error) {
	g := VariableGraph(schemas)
	if order == nil {
		order = MinFillOrder(g)
	}
	_, elimCliques, err := Triangulate(g, order)
	if err != nil {
		return nil, nil, err
	}
	cliques := MaximalCliques(elimCliques)
	t, err := BuildJunctionTree(cliques)
	if err != nil {
		return nil, nil, err
	}
	assign := make([]int, len(schemas))
	for i, s := range schemas {
		assign[i] = -1
		for ci, c := range cliques {
			if c.Contains(s) {
				assign[i] = ci
				break
			}
		}
		if assign[i] < 0 {
			return nil, nil, fmt.Errorf("graph: schema %d (%v) not contained in any clique", i, s.Sorted())
		}
	}
	return t, assign, nil
}

// IsAcyclicSchema reports whether the schema hypergraph is α-acyclic, via
// GYO reduction: repeatedly remove variables occurring in a single schema
// and schemas contained in other schemas; the schema is acyclic iff the
// reduction empties it. For MPF views this coincides with Theorem 7's
// join-tree characterization and (for conformal hypergraphs) with
// Theorem 8's chordality characterization.
func IsAcyclicSchema(schemas []relation.VarSet) bool {
	work := make([]relation.VarSet, 0, len(schemas))
	for _, s := range schemas {
		if len(s) > 0 {
			cp := relation.NewVarSet(s.Sorted()...)
			work = append(work, cp)
		}
	}
	for {
		changed := false
		// Remove variables appearing in exactly one schema (ears).
		count := make(map[string]int)
		for _, s := range work {
			for v := range s {
				count[v]++
			}
		}
		for _, s := range work {
			for v := range s {
				if count[v] == 1 {
					delete(s, v)
					changed = true
				}
			}
		}
		// Remove empty schemas and schemas contained in another.
		var next []relation.VarSet
		for i, s := range work {
			if len(s) == 0 {
				changed = true
				continue
			}
			contained := false
			for j, u := range work {
				if i == j {
					continue
				}
				if u.Contains(s) && (len(u) > len(s) || j < i) {
					contained = true
					break
				}
			}
			if contained {
				changed = true
				continue
			}
			next = append(next, s)
		}
		work = next
		if len(work) == 0 {
			return true
		}
		if !changed {
			return false
		}
	}
}
