// Package graph provides the graph-theoretic substrate of the paper's
// workload optimizer (§6, Appendix A): variable graphs of MPF schemas,
// chordality testing (Theorem 8), triangulation (Algorithm 6), maximal
// clique extraction, junction-tree construction with the running
// intersection property (Theorem 7), and schema acyclicity via GYO
// reduction.
package graph

import (
	"fmt"
	"sort"

	"mpf/internal/relation"
)

// Undirected is a simple undirected graph over string vertices.
type Undirected struct {
	adj map[string]map[string]bool
}

// NewUndirected returns an empty graph.
func NewUndirected() *Undirected {
	return &Undirected{adj: make(map[string]map[string]bool)}
}

// AddVertex ensures v exists.
func (g *Undirected) AddVertex(v string) {
	if g.adj[v] == nil {
		g.adj[v] = make(map[string]bool)
	}
}

// AddEdge inserts the undirected edge {u,v} (self-loops are ignored).
func (g *Undirected) AddEdge(u, v string) {
	if u == v {
		return
	}
	g.AddVertex(u)
	g.AddVertex(v)
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether {u,v} is an edge.
func (g *Undirected) HasEdge(u, v string) bool { return g.adj[u][v] }

// HasVertex reports whether v exists.
func (g *Undirected) HasVertex(v string) bool {
	_, ok := g.adj[v]
	return ok
}

// Vertices returns all vertices in sorted order.
func (g *Undirected) Vertices() []string {
	vs := make([]string, 0, len(g.adj))
	for v := range g.adj {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Neighbors returns v's neighbors in sorted order.
func (g *Undirected) Neighbors(v string) []string {
	ns := make([]string, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		ns = append(ns, u)
	}
	sort.Strings(ns)
	return ns
}

// Degree returns the number of neighbors of v.
func (g *Undirected) Degree(v string) int { return len(g.adj[v]) }

// NumEdges returns the number of undirected edges.
func (g *Undirected) NumEdges() int {
	n := 0
	for _, ns := range g.adj {
		n += len(ns)
	}
	return n / 2
}

// Clone returns a deep copy.
func (g *Undirected) Clone() *Undirected {
	c := NewUndirected()
	for v, ns := range g.adj {
		c.AddVertex(v)
		for u := range ns {
			c.AddEdge(v, u)
		}
	}
	return c
}

// RemoveVertex deletes v and its incident edges.
func (g *Undirected) RemoveVertex(v string) {
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	delete(g.adj, v)
}

// VariableGraph builds the graph of Theorem 8: one vertex per variable,
// with an edge between two variables whenever they co-occur in a schema.
func VariableGraph(schemas []relation.VarSet) *Undirected {
	g := NewUndirected()
	for _, s := range schemas {
		vars := s.Sorted()
		for _, v := range vars {
			g.AddVertex(v)
		}
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				g.AddEdge(vars[i], vars[j])
			}
		}
	}
	return g
}

// TableGraph builds the graph of Theorem 7: one vertex per schema (named
// by index), with an edge when two schemas share variables.
func TableGraph(schemas []relation.VarSet) *Undirected {
	g := NewUndirected()
	for i := range schemas {
		g.AddVertex(fmt.Sprintf("%d", i))
	}
	for i := 0; i < len(schemas); i++ {
		for j := i + 1; j < len(schemas); j++ {
			if len(schemas[i].Intersect(schemas[j])) > 0 {
				g.AddEdge(fmt.Sprintf("%d", i), fmt.Sprintf("%d", j))
			}
		}
	}
	return g
}

// PerfectEliminationOrder returns a perfect elimination order via maximum
// cardinality search if the graph is chordal; ok is false otherwise.
//
// MCS numbers vertices in decreasing order picking the vertex with the
// most numbered neighbors; the reverse visit order is a PEO iff the graph
// is chordal, which is verified explicitly.
func PerfectEliminationOrder(g *Undirected) (order []string, ok bool) {
	vertices := g.Vertices()
	n := len(vertices)
	weight := make(map[string]int, n)
	numbered := make(map[string]bool, n)
	visit := make([]string, 0, n) // MCS visit order (last .. first elimination)
	for len(visit) < n {
		best := ""
		for _, v := range vertices {
			if numbered[v] {
				continue
			}
			if best == "" || weight[v] > weight[best] {
				best = v
			}
		}
		numbered[best] = true
		visit = append(visit, best)
		for _, u := range g.Neighbors(best) {
			if !numbered[u] {
				weight[u]++
			}
		}
	}
	// Elimination order is the reverse of the visit order.
	order = make([]string, n)
	for i, v := range visit {
		order[n-1-i] = v
	}
	if !isPEO(g, order) {
		return nil, false
	}
	return order, true
}

// isPEO verifies that eliminating vertices in the given order always finds
// the eliminated vertex's not-yet-eliminated neighbors forming a clique.
func isPEO(g *Undirected, order []string) bool {
	pos := make(map[string]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i, v := range order {
		var later []string
		for _, u := range g.Neighbors(v) {
			if pos[u] > i {
				later = append(later, u)
			}
		}
		for x := 0; x < len(later); x++ {
			for y := x + 1; y < len(later); y++ {
				if !g.HasEdge(later[x], later[y]) {
					return false
				}
			}
		}
	}
	return true
}

// IsChordal reports whether every cycle of length greater than three has a
// chord.
func IsChordal(g *Undirected) bool {
	_, ok := PerfectEliminationOrder(g)
	return ok
}

// Triangulate implements Algorithm 6: eliminate vertices in the given
// order, connecting the not-yet-eliminated neighbors of each eliminated
// vertex. It returns the chordal supergraph (original edges plus fill)
// and the elimination cliques (the eliminated vertex with its remaining
// neighbors, one per vertex, before maximality filtering).
//
// The order must contain every vertex exactly once.
func Triangulate(g *Undirected, order []string) (*Undirected, []relation.VarSet, error) {
	if len(order) != len(g.adj) {
		return nil, nil, fmt.Errorf("graph: order has %d vertices, graph has %d", len(order), len(g.adj))
	}
	seen := make(map[string]bool, len(order))
	for _, v := range order {
		if !g.HasVertex(v) {
			return nil, nil, fmt.Errorf("graph: order mentions unknown vertex %s", v)
		}
		if seen[v] {
			return nil, nil, fmt.Errorf("graph: order repeats vertex %s", v)
		}
		seen[v] = true
	}
	filled := g.Clone()
	work := g.Clone()
	var cliques []relation.VarSet
	for _, v := range order {
		ns := work.Neighbors(v)
		clique := relation.NewVarSet(v)
		for _, u := range ns {
			clique[u] = true
		}
		cliques = append(cliques, clique)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				work.AddEdge(ns[i], ns[j])
				filled.AddEdge(ns[i], ns[j])
			}
		}
		work.RemoveVertex(v)
	}
	return filled, cliques, nil
}

// MinFillOrder returns an elimination order that greedily minimizes the
// number of fill edges introduced at each step — the standard heuristic
// for the NP-complete minimum induced width problem (Theorem 9).
func MinFillOrder(g *Undirected) []string {
	work := g.Clone()
	var order []string
	for len(work.adj) > 0 {
		best := ""
		bestFill := -1
		for _, v := range work.Vertices() {
			ns := work.Neighbors(v)
			fill := 0
			for i := 0; i < len(ns); i++ {
				for j := i + 1; j < len(ns); j++ {
					if !work.HasEdge(ns[i], ns[j]) {
						fill++
					}
				}
			}
			if bestFill < 0 || fill < bestFill {
				best, bestFill = v, fill
			}
		}
		order = append(order, best)
		ns := work.Neighbors(best)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				work.AddEdge(ns[i], ns[j])
			}
		}
		work.RemoveVertex(best)
	}
	return order
}

// MaximalCliques filters the elimination cliques to maximal ones: a set is
// dropped when it is a subset of another.
func MaximalCliques(cliques []relation.VarSet) []relation.VarSet {
	var out []relation.VarSet
	for i, c := range cliques {
		maximal := true
		for j, d := range cliques {
			if i == j {
				continue
			}
			if d.Contains(c) && (len(d) > len(c) || j < i) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}

// InducedWidth returns the size of the largest clique minus one.
func InducedWidth(cliques []relation.VarSet) int {
	w := 0
	for _, c := range cliques {
		if len(c) > w {
			w = len(c)
		}
	}
	if w == 0 {
		return 0
	}
	return w - 1
}
