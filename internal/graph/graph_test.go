package graph

import (
	"math/rand"
	"testing"

	"mpf/internal/relation"
)

// supplyChainSchemas is the acyclic Figure 1 schema: the variable graph is
// the chain sid–pid–wid–cid–tid (Figure 13).
func supplyChainSchemas() []relation.VarSet {
	return []relation.VarSet{
		relation.NewVarSet("pid", "sid"), // contracts
		relation.NewVarSet("pid", "wid"), // location
		relation.NewVarSet("wid", "cid"), // warehouses
		relation.NewVarSet("cid", "tid"), // ctdeals
		relation.NewVarSet("tid"),        // transporters
	}
}

// cyclicSchemas adds Stdeals(sid,tid), creating the chordless 5-cycle of
// Appendix A.
func cyclicSchemas() []relation.VarSet {
	return append(supplyChainSchemas(), relation.NewVarSet("sid", "tid"))
}

func TestBasicGraphOps(t *testing.T) {
	g := NewUndirected()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "a") // self loop ignored
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge("a", "c") {
		t.Fatal("phantom edge")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if got := g.Neighbors("b"); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("Neighbors(b) = %v", got)
	}
	if g.Degree("b") != 2 {
		t.Fatal("degree")
	}
	c := g.Clone()
	c.AddEdge("a", "c")
	if g.HasEdge("a", "c") {
		t.Fatal("clone not deep")
	}
}

func TestVariableGraphChain(t *testing.T) {
	g := VariableGraph(supplyChainSchemas())
	if len(g.Vertices()) != 5 {
		t.Fatalf("vertices = %v", g.Vertices())
	}
	wantEdges := [][2]string{{"pid", "sid"}, {"pid", "wid"}, {"wid", "cid"}, {"cid", "tid"}}
	if g.NumEdges() != len(wantEdges) {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
}

func TestTableGraph(t *testing.T) {
	g := TableGraph(supplyChainSchemas())
	// Chain of tables: contracts–location–warehouses–ctdeals–transporters.
	if !g.HasEdge("0", "1") || !g.HasEdge("1", "2") || !g.HasEdge("2", "3") || !g.HasEdge("3", "4") {
		t.Fatal("table chain edges missing")
	}
	if g.HasEdge("0", "2") {
		t.Fatal("unexpected table edge")
	}
}

func TestChordality(t *testing.T) {
	// The chain is trivially chordal.
	if !IsChordal(VariableGraph(supplyChainSchemas())) {
		t.Fatal("chain should be chordal")
	}
	// The 5-cycle with Stdeals is not (Figure 13 + sid–tid edge).
	if IsChordal(VariableGraph(cyclicSchemas())) {
		t.Fatal("5-cycle should not be chordal")
	}
	// A triangle is chordal.
	tri := NewUndirected()
	tri.AddEdge("a", "b")
	tri.AddEdge("b", "c")
	tri.AddEdge("a", "c")
	if !IsChordal(tri) {
		t.Fatal("triangle should be chordal")
	}
	// 4-cycle is not.
	c4 := NewUndirected()
	c4.AddEdge("a", "b")
	c4.AddEdge("b", "c")
	c4.AddEdge("c", "d")
	c4.AddEdge("d", "a")
	if IsChordal(c4) {
		t.Fatal("4-cycle should not be chordal")
	}
}

// TestTriangulatePaperExample reproduces Figure 14: triangulating the
// cyclic supply-chain graph with vertex order tid, sid adds the dotted
// edges cid–sid and pid–cid.
func TestTriangulatePaperExample(t *testing.T) {
	g := VariableGraph(cyclicSchemas())
	order := []string{"tid", "sid", "pid", "wid", "cid"}
	filled, cliques, err := Triangulate(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if !filled.HasEdge("cid", "sid") {
		t.Fatal("fill edge cid–sid missing")
	}
	if !filled.HasEdge("pid", "cid") {
		t.Fatal("fill edge pid–cid missing")
	}
	if !IsChordal(filled) {
		t.Fatal("triangulated graph must be chordal")
	}
	max := MaximalCliques(cliques)
	// Figure 15's schema: {sid,cid,tid}, {sid,pid,cid}, {pid,wid,cid}.
	want := []relation.VarSet{
		relation.NewVarSet("sid", "cid", "tid"),
		relation.NewVarSet("sid", "pid", "cid"),
		relation.NewVarSet("pid", "wid", "cid"),
	}
	if len(max) != len(want) {
		t.Fatalf("maximal cliques = %d, want %d: %v", len(max), len(want), max)
	}
	for _, w := range want {
		found := false
		for _, m := range max {
			if m.Equal(w) {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing clique %v", w.Sorted())
		}
	}
	// The junction tree over these cliques satisfies running intersection.
	jt, err := BuildJunctionTree(max)
	if err != nil {
		t.Fatal(err)
	}
	if len(jt.Edges) != 2 {
		t.Fatalf("junction tree should have 2 edges, got %d", len(jt.Edges))
	}
}

func TestTriangulateValidation(t *testing.T) {
	g := VariableGraph(supplyChainSchemas())
	if _, _, err := Triangulate(g, []string{"pid"}); err == nil {
		t.Fatal("short order should error")
	}
	if _, _, err := Triangulate(g, []string{"pid", "pid", "wid", "cid", "tid"}); err == nil {
		t.Fatal("repeated vertex should error")
	}
	if _, _, err := Triangulate(g, []string{"pid", "sid", "wid", "cid", "zz"}); err == nil {
		t.Fatal("unknown vertex should error")
	}
}

func TestMinFillOrderProducesChordalGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := NewUndirected()
		n := 8
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			g.AddVertex(names[i])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(names[i], names[j])
				}
			}
		}
		order := MinFillOrder(g)
		filled, cliques, err := Triangulate(g, order)
		if err != nil {
			t.Fatal(err)
		}
		if !IsChordal(filled) {
			t.Fatalf("trial %d: triangulation not chordal", trial)
		}
		if InducedWidth(cliques) < 0 {
			t.Fatal("negative width")
		}
	}
}

func TestPEOOnChordalGraph(t *testing.T) {
	// A tree is chordal; its PEO must verify.
	g := NewUndirected()
	g.AddEdge("r", "a")
	g.AddEdge("r", "b")
	g.AddEdge("a", "c")
	order, ok := PerfectEliminationOrder(g)
	if !ok {
		t.Fatal("tree should be chordal")
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	if !isPEO(g, order) {
		t.Fatal("returned order is not a PEO")
	}
}

func TestMaximalCliquesDeduplication(t *testing.T) {
	cliques := []relation.VarSet{
		relation.NewVarSet("a", "b"),
		relation.NewVarSet("a", "b", "c"),
		relation.NewVarSet("b", "c"),
		relation.NewVarSet("a", "b", "c"), // duplicate
	}
	max := MaximalCliques(cliques)
	if len(max) != 1 || !max[0].Equal(relation.NewVarSet("a", "b", "c")) {
		t.Fatalf("max cliques = %v", max)
	}
}

func TestBuildJunctionTreeRejectsNonTreeDecomposable(t *testing.T) {
	// Cliques from a chordless 4-cycle pairwise intersections cannot
	// satisfy running intersection: {a,b},{b,c},{c,d},{d,a}.
	cliques := []relation.VarSet{
		relation.NewVarSet("a", "b"),
		relation.NewVarSet("b", "c"),
		relation.NewVarSet("c", "d"),
		relation.NewVarSet("d", "a"),
	}
	if _, err := BuildJunctionTree(cliques); err == nil {
		t.Fatal("4-cycle cliques should fail running intersection")
	}
	if _, err := BuildJunctionTree(nil); err == nil {
		t.Fatal("empty cliques should error")
	}
}

func TestSchemaJunctionTreePipeline(t *testing.T) {
	jt, assign, err := SchemaJunctionTree(cyclicSchemas(), []string{"tid", "sid", "pid", "wid", "cid"})
	if err != nil {
		t.Fatal(err)
	}
	if err := jt.CheckRunningIntersection(); err != nil {
		t.Fatal(err)
	}
	schemas := cyclicSchemas()
	for i, ci := range assign {
		if !jt.Cliques[ci].Contains(schemas[i]) {
			t.Fatalf("schema %d assigned to clique %d that does not contain it", i, ci)
		}
	}
	// Min-fill default order also works.
	jt2, _, err := SchemaJunctionTree(cyclicSchemas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := jt2.CheckRunningIntersection(); err != nil {
		t.Fatal(err)
	}
}

func TestIsAcyclicSchema(t *testing.T) {
	if !IsAcyclicSchema(supplyChainSchemas()) {
		t.Fatal("supply chain schema is acyclic")
	}
	if IsAcyclicSchema(cyclicSchemas()) {
		t.Fatal("schema with Stdeals is cyclic")
	}
	// Star schema: hub table containing everything makes it acyclic.
	star := []relation.VarSet{
		relation.NewVarSet("a", "b", "c"),
		relation.NewVarSet("a"),
		relation.NewVarSet("b"),
	}
	if !IsAcyclicSchema(star) {
		t.Fatal("star with containing hub is acyclic")
	}
	if !IsAcyclicSchema(nil) {
		t.Fatal("empty schema is acyclic")
	}
}

// TestAcyclicityMatchesChordality spot-checks Theorem 8 on conformal
// random schemas: build schemas as the cliques of a random graph; the
// schema is acyclic iff the graph is chordal.
func TestAcyclicityMatchesChordality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	agree := 0
	for trial := 0; trial < 50; trial++ {
		n := 6
		g := NewUndirected()
		names := []string{"a", "b", "c", "d", "e", "f"}
		for _, v := range names[:n] {
			g.AddVertex(v)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(names[i], names[j])
				}
			}
		}
		// Conformal schema: one relation per edge plus isolated vertices —
		// conformal only if the graph is triangle-free; to keep it simple,
		// use the maximal cliques of the graph as schemas instead, found by
		// brute force.
		cliques := bruteForceMaximalCliques(g, names[:n])
		got := IsAcyclicSchema(cliques)
		want := IsChordal(g)
		if got != want {
			t.Fatalf("trial %d: acyclic=%v chordal=%v for cliques %v", trial, got, want, cliques)
		}
		agree++
	}
	if agree != 50 {
		t.Fatal("not all trials ran")
	}
}

// bruteForceMaximalCliques enumerates maximal cliques of a small graph.
func bruteForceMaximalCliques(g *Undirected, names []string) []relation.VarSet {
	n := len(names)
	var all []relation.VarSet
	for mask := 1; mask < 1<<n; mask++ {
		ok := true
		for i := 0; i < n && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < n && ok; j++ {
				if mask&(1<<j) == 0 {
					continue
				}
				if !g.HasEdge(names[i], names[j]) {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		s := relation.NewVarSet()
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s[names[i]] = true
			}
		}
		all = append(all, s)
	}
	return MaximalCliques(all)
}

func TestInducedWidth(t *testing.T) {
	if InducedWidth(nil) != 0 {
		t.Fatal("empty width")
	}
	w := InducedWidth([]relation.VarSet{relation.NewVarSet("a", "b", "c"), relation.NewVarSet("a")})
	if w != 2 {
		t.Fatalf("width = %d, want 2", w)
	}
}
