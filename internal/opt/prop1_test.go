package opt

import (
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// keyedFixture builds a view where variable "region" is functionally
// determined (wid → region) and appears in no key, so Proposition 1
// removes it; "wid" is a key member and is not removable.
func keyedFixture(t *testing.T) (*catalog.Catalog, map[string]*relation.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	// warehouses(wid, region | f): one row per wid, region = wid mod 2.
	wh := relation.MustNew("warehouses",
		[]relation.Attr{{Name: "wid", Domain: 6}, {Name: "region", Domain: 2}})
	for w := 0; w < 6; w++ {
		wh.MustAppend([]int32{int32(w), int32(w % 2)}, 1+rng.Float64())
	}
	// location(pid, wid | f): complete.
	loc, _ := relation.Complete("location",
		[]relation.Attr{{Name: "pid", Domain: 4}, {Name: "wid", Domain: 6}},
		func([]int32) float64 { return rng.Float64() + 0.5 })
	cat := catalog.New()
	st := catalog.AnalyzeRelation(wh)
	st.Key = []string{"wid"}
	if err := cat.AddTable(st); err != nil {
		t.Fatal(err)
	}
	st2 := catalog.AnalyzeRelation(loc)
	st2.Key = []string{"pid", "wid"}
	if err := cat.AddTable(st2); err != nil {
		t.Fatal(err)
	}
	return cat, map[string]*relation.Relation{"warehouses": wh, "location": loc}
}

func TestProp1Removable(t *testing.T) {
	cat, _ := keyedFixture(t)
	rem, err := Prop1Removable(cat, []string{"warehouses", "location"})
	if err != nil {
		t.Fatal(err)
	}
	if !rem["region"] {
		t.Fatalf("region should be removable, got %v", rem.Sorted())
	}
	if rem["wid"] || rem["pid"] {
		t.Fatalf("key variables must not be removable: %v", rem.Sorted())
	}
	if _, err := Prop1Removable(cat, []string{"ghost"}); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestProp1BlockedWithoutDeclaredKeys(t *testing.T) {
	cat := catalog.New()
	r := relation.MustNew("t", []relation.Attr{{Name: "a", Domain: 2}, {Name: "b", Domain: 2}})
	r.MustAppend([]int32{0, 0}, 1)
	cat.AddTable(catalog.AnalyzeRelation(r)) // no Key declared
	rem, err := Prop1Removable(cat, []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rem) != 0 {
		t.Fatalf("nothing should be removable without declared keys: %v", rem.Sorted())
	}
}

// TestVEWithFDSkipCorrect verifies that skipping Proposition 1 variables
// still yields the oracle answer, and that the variable indeed gets no
// dedicated elimination (the plan drops it via safe grouping).
func TestVEWithFDSkipCorrect(t *testing.T) {
	cat, rels := keyedFixture(t)
	b := plan.NewBuilder(cat, cost.Simple{})
	q := &Query{Tables: []string{"warehouses", "location"}, GroupVars: []string{"pid"}}
	for _, o := range []Optimizer{
		VE{Heuristic: Degree, UseFDs: true},
		VE{Heuristic: Width, Extended: true, UseFDs: true},
	} {
		p, err := o.Optimize(q, b)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		got, err := plan.Eval(p, plan.MapResolver(rels), semiring.SumProduct)
		if err != nil {
			t.Fatal(err)
		}
		joint, _ := relation.ProductJoin(semiring.SumProduct, rels["warehouses"], rels["location"])
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"pid"})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("%s: FD-skip plan wrong", o.Name())
		}
	}
}

func TestVEFDNameSuffix(t *testing.T) {
	o := VE{Heuristic: Degree, Extended: true, UseFDs: true}
	if o.Name() != "ve(deg)+ext+fd" {
		t.Fatalf("Name = %q", o.Name())
	}
}

func TestCatalogRejectsBadKey(t *testing.T) {
	cat := catalog.New()
	r := relation.MustNew("t", []relation.Attr{{Name: "a", Domain: 2}})
	st := catalog.AnalyzeRelation(r)
	st.Key = []string{"nope"}
	if err := cat.AddTable(st); err == nil {
		t.Fatal("key over unknown attribute should error")
	}
}
