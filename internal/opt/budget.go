package opt

import (
	"fmt"
	"time"

	"mpf/internal/plan"
)

// Budgeted runs a primary optimizer under a wall-clock planning budget and
// falls back to a cheap planner when the budget is exhausted. This is the
// paper's Figure 10 trade-off made operational: on large views the CS+/VE+
// searches can cost more than the query they plan, so past the budget we
// take the statistics-free Greedy plan instead and start executing.
//
// The primary keeps running in its goroutine after a timeout (optimizers
// are pure CPU work with no cancellation hook) but its result is
// discarded; the goroutine exits as soon as Optimize returns. A plan
// produced under budget is identical to running the primary directly, so
// Budgeted is deterministic except exactly at the budget boundary —
// callers caching plans get whichever planner won the race first, which is
// sound because both planners produce correct plans for the same query.
type Budgeted struct {
	// Primary is the full-search optimizer given the budget.
	Primary Optimizer
	// Fallback plans when the budget expires; nil means Greedy.
	Fallback Optimizer
	// Budget bounds the primary's planning wall time; zero or negative
	// means unlimited (Budgeted degenerates to Primary).
	Budget time.Duration
}

// Name implements Optimizer. It includes the budget so that distinct
// budgets are distinct planner identities (a plan cache keyed on planner
// name must not alias them).
func (o Budgeted) Name() string {
	return fmt.Sprintf("budget(%s,%s,%s)", o.Primary.Name(), o.fallback().Name(), o.Budget)
}

// fallback returns the configured fallback, defaulting to Greedy.
func (o Budgeted) fallback() Optimizer {
	if o.Fallback != nil {
		return o.Fallback
	}
	return Greedy{}
}

// Optimize implements Optimizer.
func (o Budgeted) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	p, _, err := o.OptimizeWinner(q, b)
	return p, err
}

// OptimizeWinner is Optimize plus the report name of the planner that
// actually produced the plan ("cs+nonlinear" when the primary finished in
// budget, "greedy" after a fallback). Engine tracing and metrics record
// this so budget expirations are visible per query.
func (o Budgeted) OptimizeWinner(q *Query, b *plan.Builder) (*plan.Node, string, error) {
	if o.Budget <= 0 {
		p, err := o.Primary.Optimize(q, b)
		return p, o.Primary.Name(), err
	}
	type outcome struct {
		p   *plan.Node
		err error
	}
	ch := make(chan outcome, 1) // buffered: late primary must not leak its goroutine
	go func() {
		p, err := o.Primary.Optimize(q, b)
		ch <- outcome{p, err}
	}()
	timer := time.NewTimer(o.Budget)
	defer timer.Stop()
	select {
	case out := <-ch:
		return out.p, o.Primary.Name(), out.err
	case <-timer.C:
		fb := o.fallback()
		p, err := fb.Optimize(q, b)
		return p, fb.Name(), err
	}
}
