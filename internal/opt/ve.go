package opt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// Heuristic selects the next variable to eliminate (paper §5.5).
type Heuristic int

// Elimination-ordering heuristics.
const (
	// Degree estimates the size of the post-elimination relation (the
	// product of distinct counts of the eliminated variable's neighbors)
	// and picks the variable minimizing it.
	Degree Heuristic = iota
	// Width estimates the size of the pre-elimination relation (the join
	// of all relations containing the variable).
	Width
	// ElimCost estimates the cost of the plan that eliminates the
	// variable, using the cost model on a fixed linear join order (the
	// paper's deliberate overestimate).
	ElimCost
	// RandomOrder picks uniformly at random (paper §7.3, Table 3).
	RandomOrder
	// DegreeWidth combines Degree and Width by normalizing each estimate
	// by the maximum among candidates and multiplying.
	DegreeWidth
	// DegreeElimCost combines Degree and ElimCost the same way.
	DegreeElimCost
)

// String returns the heuristic's report name.
func (h Heuristic) String() string {
	switch h {
	case Degree:
		return "deg"
	case Width:
		return "width"
	case ElimCost:
		return "elim_cost"
	case RandomOrder:
		return "random"
	case DegreeWidth:
		return "deg&width"
	case DegreeElimCost:
		return "deg&elim_cost"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// VE is the Variable Elimination optimizer (Algorithm 2). With Extended
// set it becomes the paper's VE+ (§5.4): elimination is delayed and the
// joinplan for each variable uses the CS+ greedy-conservative local
// GroupBy decisions over a nonlinear search, extending GDLPlan(VE) toward
// GDLPlan(CS+) (Theorem 3).
type VE struct {
	Heuristic Heuristic
	Extended  bool
	// UseFDs enables the Proposition 1 preprocessing: variables outside
	// every declared base-relation key are removed from the elimination
	// candidates, since projecting them away is free (§5.4).
	UseFDs bool
	// Order, when non-empty, fixes the elimination order explicitly and
	// overrides Heuristic. Variables not in the candidate set are
	// skipped; candidates missing from Order are eliminated afterwards in
	// lexicographic order.
	Order []string
	// Rng drives RandomOrder; nil uses a fixed seed so plans are
	// reproducible.
	Rng *rand.Rand
}

// Name implements Optimizer.
func (o VE) Name() string {
	n := "ve(" + o.Heuristic.String() + ")"
	if o.Extended {
		n += "+ext"
	}
	if o.UseFDs {
		n += "+fd"
	}
	return n
}

// Optimize implements Optimizer.
func (o VE) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	leaves, err := buildLeaves(q, b)
	if err != nil {
		return nil, err
	}
	rng := o.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	queryVars := relation.NewVarSet(q.GroupVars...)

	// S: current set of relations (plans). V: variables to eliminate.
	s := append([]*plan.Node(nil), leaves...)
	v := varsOfNodes(leaves).Minus(queryVars)
	if o.UseFDs {
		// Proposition 1: variables outside every declared key introduce no
		// row multiplicity, so their removal is projection, not
		// aggregation — drop them from the elimination candidates and let
		// the safe-grouping GroupBys discard them for free.
		removable, err := Prop1Removable(b.Cat, q.Tables)
		if err != nil {
			return nil, err
		}
		v = v.Minus(removable)
	}

	fixed := append([]string(nil), o.Order...)
	for len(v) > 0 {
		var vj string
		if len(fixed) > 0 {
			vj, fixed = fixed[0], fixed[1:]
			if !v[vj] {
				continue
			}
		} else {
			vj = o.pickVariable(b, v, s, q.GroupVars, rng)
		}
		var rels, rest []*plan.Node
		for _, n := range s {
			if n.Vars()[vj] {
				rels = append(rels, n)
			} else {
				rest = append(rest, n)
			}
		}
		delete(v, vj)
		if len(rels) == 0 {
			// Variable already dropped by an earlier GroupBy (possible in
			// the extended space).
			continue
		}
		ctx := varsOfNodes(rest)
		// joinplan for rels(vj): plain VE uses pure join search; VE+ uses
		// the CS+ greedy-conservative search that may interpose GroupBy
		// nodes on join operands (delaying or anticipating eliminations,
		// §5.4). The remaining relations plus the query variables form the
		// preservation context.
		p, err := bushyJoinDP(b, rels, ctx, q.GroupVars, o.Extended)
		if err != nil {
			return nil, err
		}
		// Eliminating GroupBy: keep exactly the variables still needed —
		// those shared with the remaining relations plus query variables.
		// This both eliminates vj and drops variables local to this join
		// (the behaviour behind the paper's star-schema account of the
		// degree heuristic, §7.3). Skip it when the joinplan's top is
		// already grouped to the safe set.
		keep := safeGroupVars(p, ctx, q.GroupVars)
		if !(p.Op == plan.OpGroupBy && p.Vars().Equal(relation.NewVarSet(keep...))) {
			p, err = b.GroupBy(p, keep)
			if err != nil {
				return nil, err
			}
		}
		s = append(rest, p)
	}

	// Join whatever remains (relations over query variables only) and add
	// the root GroupBy.
	var top *plan.Node
	var err2 error
	if o.Extended {
		top, err2 = bushyJoinDP(b, s, relation.NewVarSet(), q.GroupVars, true)
	} else {
		top, err2 = bushyJoinDP(b, s, relation.NewVarSet(), q.GroupVars, false)
	}
	if err2 != nil {
		return nil, err2
	}
	return finishPlan(b, top, q)
}

// pickVariable applies the ordering heuristic to the candidate set.
func (o VE) pickVariable(b *plan.Builder, v relation.VarSet, s []*plan.Node, queryVars []string, rng *rand.Rand) string {
	cands := v.Sorted()
	if len(cands) == 1 {
		return cands[0]
	}
	if o.Heuristic == RandomOrder {
		return cands[rng.Intn(len(cands))]
	}
	deg := make([]float64, len(cands))
	wid := make([]float64, len(cands))
	ec := make([]float64, len(cands))
	for i, cand := range cands {
		deg[i], wid[i], ec[i] = scoreVariable(b, cand, s, queryVars)
	}
	var score []float64
	switch o.Heuristic {
	case Degree:
		score = deg
	case Width:
		score = wid
	case ElimCost:
		score = ec
	case DegreeWidth:
		score = combine(deg, wid)
	case DegreeElimCost:
		score = combine(deg, ec)
	default:
		score = deg
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if score[i] < score[best] {
			best = i
		}
	}
	return cands[best]
}

// combine normalizes each estimate vector by its maximum and multiplies
// them elementwise (the paper's footnote-1 combination rule).
func combine(a, b []float64) []float64 {
	maxA, maxB := 0.0, 0.0
	for i := range a {
		maxA = math.Max(maxA, a[i])
		maxB = math.Max(maxB, b[i])
	}
	if maxA == 0 {
		maxA = 1
	}
	if maxB == 0 {
		maxB = 1
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (a[i] / maxA) * (b[i] / maxB)
	}
	return out
}

// scoreVariable computes the degree, width and elimination-cost estimates
// for eliminating cand from the current relation set s.
//
// Distinct-count estimates come from the current plan nodes (so earlier
// selections and eliminations are reflected). Width is the size estimate
// of the pre-elimination relation: the domain product over all variables
// of rels(cand). Degree estimates the post-elimination relation, which
// keeps only the variables still needed afterwards — those shared with
// the relations not being joined plus the query variables; on a star view
// this is what makes degree favor the hub variable (its post-elimination
// relation holds just the query variable, §7.3) even though joining all
// its tables is expensive. Elim-cost is the modeled cost of a
// size-ordered linear join of rels(cand) followed by the eliminating
// aggregation (the paper's deliberate overestimate).
func scoreVariable(b *plan.Builder, cand string, s []*plan.Node, queryVars []string) (deg, wid, ec float64) {
	var rels, rest []*plan.Node
	for _, n := range s {
		if n.Vars()[cand] {
			rels = append(rels, n)
		} else {
			rest = append(rest, n)
		}
	}
	if len(rels) == 0 {
		return 0, 0, 0
	}
	// Distinct estimate per variable: minimum across containing nodes.
	distinct := func(v string) float64 {
		d := math.Inf(1)
		for _, n := range rels {
			if dv, ok := n.Est.Distinct[v]; ok && dv < d {
				d = dv
			}
		}
		if math.IsInf(d, 1) {
			return 1
		}
		return math.Max(d, 1)
	}
	// Iterate variables in sorted order: float multiplication is not
	// associative, so accumulating these products in map-iteration order
	// made scores (and hence elimination picks) differ between runs of the
	// same query — a planning-determinism bug.
	vars := varsOfNodes(rels).Sorted()
	wid = 1
	for _, v := range vars {
		wid *= distinct(v)
		if wid > 1e300 {
			wid = 1e300
			break
		}
	}
	// Variables that survive the elimination: needed by other relations or
	// by the query itself.
	needed := varsOfNodes(rest).Union(relation.NewVarSet(queryVars...))
	deg = 1
	for _, v := range vars {
		if v == cand || !needed[v] {
			continue
		}
		deg *= distinct(v)
		if deg > 1e300 {
			deg = 1e300
			break
		}
	}
	// Elimination-cost overestimate: linear join in increasing size order.
	ordered := append([]*plan.Node(nil), rels...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Est.Card < ordered[j].Est.Card })
	acc := ordered[0]
	base := acc.TotalCost
	for _, n := range ordered[1:] {
		base += n.TotalCost
		acc = b.Join(acc, n)
	}
	keep := relation.NewVarSet()
	for v := range acc.Vars() {
		if v != cand && needed[v] {
			keep[v] = true
		}
	}
	if g, err := b.GroupBy(acc, keep.Sorted()); err == nil {
		acc = g
	}
	// Charge only the work of this elimination, not the (sunk) cost of
	// producing the operand relations.
	ec = acc.TotalCost - base
	if ec < 0 {
		ec = 0
	}
	return deg, wid, ec
}
