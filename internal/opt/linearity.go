package opt

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/plan"
)

// LinearityTest applies the paper's plan-linearity heuristic (Eq. 1) for
// a query variable: with σ_X the variable's domain size and σ̂_X the
// cardinality of the smallest base relation containing it, a linear plan
// is admissible when σ_X² + σ̂_X·log σ̂_X ≥ σ_X·σ̂_X. When the test fails,
// nonlinear plans can reduce that relation before joining and the
// nonlinear search space should be used.
func LinearityTest(cat *catalog.Catalog, queryVar string) (admissible bool, sigma, sigmaHat float64, err error) {
	domain, minCard, ok := cat.DomainSize(queryVar)
	if !ok {
		return false, 0, 0, fmt.Errorf("opt: variable %s not found in any table", queryVar)
	}
	sigma, sigmaHat = float64(domain), float64(minCard)
	return cost.LinearPlanAdmissible(sigma, sigmaHat), sigma, sigmaHat, nil
}

// Result pairs an optimized plan with the time spent planning, the two
// axes of the paper's Figure 10 trade-off. Planner names the optimizer
// that actually produced the plan — for Budgeted this is the winner of
// the budget race, not the wrapper.
type Result struct {
	Plan     *plan.Node
	Optimize time.Duration
	Planner  string
}

// Run optimizes q with o, measuring planning time.
func Run(o Optimizer, q *Query, b *plan.Builder) (Result, error) {
	return RunContext(context.Background(), o, q, b)
}

// RunContext is Run with cancellation: ctx is observed before and after
// the optimize phase. Optimizers themselves are pure CPU work bounded by
// the plan search space, so phase-boundary checks keep the Optimizer
// interface unchanged while still letting a canceled query skip planning
// (and discard a plan that finished after the deadline).
func RunContext(ctx context.Context, o Optimizer, q *Query, b *plan.Builder) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	var (
		p      *plan.Node
		winner string
		err    error
	)
	if bo, ok := o.(Budgeted); ok {
		p, winner, err = bo.OptimizeWinner(q, b)
	} else {
		p, err = o.Optimize(q, b)
		winner = o.Name()
	}
	if err != nil {
		return Result{}, err
	}
	res := Result{Plan: p, Optimize: time.Since(start), Planner: winner}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return res, nil
}

// All returns every optimizer variant evaluated in the paper, in report
// order. rng seeds the random heuristic (nil for a fixed seed).
func All(rng *rand.Rand) []Optimizer {
	return []Optimizer{
		CS{},
		CSPlus{Linear: true},
		CSPlus{},
		VE{Heuristic: Degree},
		VE{Heuristic: Degree, Extended: true},
		VE{Heuristic: Width},
		VE{Heuristic: Width, Extended: true},
		VE{Heuristic: ElimCost},
		VE{Heuristic: ElimCost, Extended: true},
		VE{Heuristic: DegreeWidth},
		VE{Heuristic: DegreeWidth, Extended: true},
		VE{Heuristic: DegreeElimCost},
		VE{Heuristic: DegreeElimCost, Extended: true},
		VE{Heuristic: RandomOrder, Rng: rng},
		VE{Heuristic: RandomOrder, Extended: true, Rng: rng},
	}
}

// Extras returns the optimizers that are available by name but are not
// part of the paper's evaluated variant set: currently only the
// statistics-free Greedy planner.
func Extras() []Optimizer {
	return []Optimizer{Greedy{}}
}

// ByName resolves an optimizer by its report name, e.g. "cs+nonlinear",
// "ve(deg)+ext" or "greedy".
func ByName(name string) (Optimizer, error) {
	for _, o := range append(All(nil), Extras()...) {
		if o.Name() == name {
			return o, nil
		}
	}
	return nil, fmt.Errorf("opt: unknown optimizer %q", name)
}

// Names lists the report names of all optimizer variants, paper variants
// first followed by the extras.
func Names() []string {
	all := append(All(nil), Extras()...)
	names := make([]string, len(all))
	for i, o := range all {
		names[i] = o.Name()
	}
	return names
}
