package opt

import (
	"strings"
	"testing"
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// TestGreedyPlansMatchOracle checks that greedy plans compute the same
// MPF answers as brute-force evaluation on the synthetic fixtures.
func TestGreedyPlansMatchOracle(t *testing.T) {
	fixtures := map[string]*fixture{
		"chain": smallChain(t, 5),
		"star":  smallStar(t, 5),
		"multi": smallMultiStar(t, 6),
	}
	for name, f := range fixtures {
		q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
		gp, err := Greedy{}.Optimize(q, f.b)
		if err != nil {
			t.Fatalf("%s: greedy: %v", name, err)
		}
		got := evalPlan(t, f, gp)
		want := oracle(t, f, q)
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("%s: greedy answer differs from oracle:\n%s\nvs\n%s", name, got, want)
		}
	}
}

// TestGreedyStaysWithinCostFactor enforces the acceptance bound: greedy
// plan cost within 1.5x of CS+ nonlinear on every fixture.
func TestGreedyStaysWithinCostFactor(t *testing.T) {
	fixtures := map[string]*fixture{
		"chain": smallChain(t, 5),
		"star":  smallStar(t, 5),
		"multi": smallMultiStar(t, 6),
	}
	for name, f := range fixtures {
		q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
		gp, err := Greedy{}.Optimize(q, f.b)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := CSPlus{}.Optimize(q, newFixture(t, f.ds).b)
		if err != nil {
			t.Fatal(err)
		}
		if gp.TotalCost > 1.5*cp.TotalCost {
			t.Fatalf("%s: greedy cost %.1f exceeds 1.5x cs+ cost %.1f", name, gp.TotalCost, cp.TotalCost)
		}
	}
}

// TestGreedyEarlyTermination empties one base table of a chain view and
// checks that greedy still produces a valid plan whose answer is empty:
// the early-termination path (no scoring, no marginalize-early) must not
// break plan validity.
func TestGreedyEarlyTermination(t *testing.T) {
	f := smallChain(t, 4)
	// Replace one relation with an empty one of the same schema, then
	// rebuild the catalog so the exact cardinality 0 is visible.
	victim := f.ds.Relations[1]
	emptied, err := relation.New(victim.Name(), victim.Attrs())
	if err != nil {
		t.Fatal(err)
	}
	f.ds.Relations[1] = emptied
	f = newFixture(t, f.ds)

	q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
	gp, err := Greedy{}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	got := evalPlan(t, f, gp)
	if got.Len() != 0 {
		t.Fatalf("expected empty answer over empty base table, got %d rows", got.Len())
	}
}

// TestBudgetedFallsBackToGreedy forces a budget expiry with a deliberately
// slow primary and checks the fallback's plan and name are reported.
func TestBudgetedFallsBackToGreedy(t *testing.T) {
	f := smallChain(t, 5)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
	slow := slowOptimizer{delay: 200 * time.Millisecond, inner: CSPlus{}}
	bo := Budgeted{Primary: slow, Budget: time.Millisecond}
	p, winner, err := bo.OptimizeWinner(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if winner != "greedy" {
		t.Fatalf("expected greedy fallback, winner = %q", winner)
	}
	want, err := Greedy{}.Optimize(q, newFixture(t, f.ds).b)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != want.String() {
		t.Fatalf("fallback plan differs from direct greedy plan:\n%s\nvs\n%s", p, want)
	}
}

// TestBudgetedPrimaryWinsInBudget checks the primary's plan is used when it
// finishes under budget, and that zero budget disables the race entirely.
func TestBudgetedPrimaryWinsInBudget(t *testing.T) {
	f := smallChain(t, 4)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
	for _, budget := range []time.Duration{0, time.Minute} {
		bo := Budgeted{Primary: CSPlus{}, Budget: budget}
		p, winner, err := bo.OptimizeWinner(q, f.b)
		if err != nil {
			t.Fatal(err)
		}
		if winner != (CSPlus{}).Name() {
			t.Fatalf("budget %v: expected primary win, winner = %q", budget, winner)
		}
		want, err := CSPlus{}.Optimize(q, newFixture(t, f.ds).b)
		if err != nil {
			t.Fatal(err)
		}
		if p.String() != want.String() {
			t.Fatalf("budget %v: plan differs from direct primary plan", budget)
		}
	}
	if !strings.Contains((Budgeted{Primary: CSPlus{}, Budget: time.Second}).Name(), "1s") {
		t.Fatal("Budgeted.Name should embed the budget")
	}
}

// slowOptimizer delays before delegating, to force budget expiry in tests.
type slowOptimizer struct {
	delay time.Duration
	inner Optimizer
}

func (s slowOptimizer) Name() string { return "slow(" + s.inner.Name() + ")" }

func (s slowOptimizer) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	time.Sleep(s.delay)
	return s.inner.Optimize(q, b)
}
