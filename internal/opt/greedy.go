package opt

import (
	"sort"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// Greedy is a statistics-free join-ordering planner for the traffic
// regime where planning time rivals execution time: it never runs a
// dynamic program, never consults cardinality or distinct-count
// statistics, and plans in O(N²) node constructions instead of the
// Selinger O(N·2^N) of CS+ (Theorem 2).
//
// The only schema knowledge it uses is declared variable domain sizes —
// visible in every functional-relation schema the way pattern syntax
// makes selectivity visible in Datalog engines. Joins are ordered by
// ascending domain-size product of the joined variable set: each step
// joins the pending leaf that minimizes the product over the union of
// variables (connected candidates strictly before cross products), then
// immediately marginalizes away every variable not needed by the
// remaining leaves or the query (the safe GroupBy of Chaudhuri & Shim's
// condition, applied unconditionally — marginalize-early is the right
// default when domains are small, which is the MPF norm).
//
// Because the start leaf fixes the traversal direction — and on a chain
// whose query variable sits at the small-domain end, starting there drags
// the query variable through every intermediate — greedy is multi-start:
// it runs the O(N²) chain once from every leaf and keeps the run whose
// intermediates have the smallest summed domain product (again schema
// only, no cardinalities), O(N³) node constructions in total.
//
// Early termination: base-table cardinalities are exact in the catalog,
// and a selection or product join over an empty operand is empty, so once
// an empty base table enters the running join the whole intermediate —
// and hence the query answer — is provably empty and plan quality no
// longer matters. (The cost-model estimate algebra floors cardinalities
// at 1 and cannot express this, which is why emptiness is tracked from
// the exact catalog cardinalities rather than from Est.Card.) Greedy then
// stops scoring and appends the remaining leaves in presorted order.
//
// All choices break ties lexicographically by base-table name, so the
// same query always yields the same plan (a plan-cache prerequisite).
type Greedy struct{}

// Name implements Optimizer.
func (Greedy) Name() string { return "greedy" }

// Optimize implements Optimizer.
func (Greedy) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	leaves, err := buildLeaves(q, b)
	if err != nil {
		return nil, err
	}
	if len(leaves) == 1 {
		return finishPlan(b, leaves[0], q)
	}
	dom, err := domainSizes(b, q.Tables)
	if err != nil {
		return nil, err
	}
	// product is the domain-size product over a variable set, the greedy
	// score. Iteration is in sorted order so the float product is
	// bit-identical across runs, and capped against overflow.
	product := func(vs relation.VarSet) float64 {
		p := 1.0
		for _, v := range vs.Sorted() {
			d := dom[v]
			if d < 1 {
				d = 1
			}
			p *= d
			if p > 1e300 {
				return 1e300
			}
		}
		return p
	}

	// Pending leaves keep their base-table name for deterministic ties and
	// an exact-emptiness bit for early termination; buildLeaves returns one
	// leaf per q.Tables entry in order.
	type cand struct {
		node  *plan.Node
		name  string
		empty bool
	}
	pending := make([]cand, len(leaves))
	for i, l := range leaves {
		st, err := b.Cat.Table(q.Tables[i])
		if err != nil {
			return nil, err
		}
		// Pre-marginalize the leaf: variables appearing in no other leaf
		// and not in the query are safe to aggregate away before any join
		// (the chain tail's dangling variable, the Proposition 1 shape).
		// This is the single biggest win of GroupBy pushdown and needs no
		// statistics, only variable sets.
		ctx := relation.NewVarSet()
		for j, other := range leaves {
			if j != i {
				ctx = ctx.Union(other.Vars())
			}
		}
		if g := maybeGroup(b, l, ctx, q.GroupVars); g != nil {
			l = g
		}
		pending[i] = cand{node: l, name: q.Tables[i], empty: st.Card == 0}
	}
	sort.Slice(pending, func(i, j int) bool {
		pi, pj := product(pending[i].node.Vars()), product(pending[j].node.Vars())
		if pi != pj {
			return pi < pj
		}
		return pending[i].name < pending[j].name
	})

	// runFrom executes one greedy chain starting at pending[start] and
	// returns the joined root plus the run's score: the summed domain
	// product of every intermediate after its safe marginalization, a
	// schema-only proxy for total intermediate size.
	runFrom := func(start int) (*plan.Node, float64) {
		rest := make([]cand, 0, len(pending)-1)
		rest = append(rest, pending[:start]...)
		rest = append(rest, pending[start+1:]...)
		cur := pending[start].node
		empty := pending[start].empty
		total := 0.0
		for len(rest) > 0 {
			next := 0
			if !empty {
				// Two-tier pick: candidates sharing a variable with the
				// running join strictly beat disconnected ones — a
				// same-product tie between a connected join and a cross
				// product must never resolve to the cross product. Within a
				// tier the score is the domain product of the variable
				// union; equal scores keep the earlier candidate (rest
				// preserves the (product, name) presort, so that is the
				// lexicographic tie-break).
				score := func(c cand) (connected bool, prod float64) {
					return len(cur.Vars().Intersect(c.node.Vars())) > 0,
						product(cur.Vars().Union(c.node.Vars()))
				}
				bestConn, best := score(rest[0])
				for i := 1; i < len(rest); i++ {
					conn, prod := score(rest[i])
					if (conn && !bestConn) || (conn == bestConn && prod < best) {
						bestConn, best, next = conn, prod, i
					}
				}
			}
			pick := rest[next]
			rest = append(rest[:next], rest[next+1:]...)
			cur = b.Join(cur, pick.node)
			if pick.empty {
				empty = true
			}
			if !empty {
				nodes := make([]*plan.Node, len(rest))
				for i, c := range rest {
					nodes[i] = c.node
				}
				if g := maybeGroup(b, cur, varsOfNodes(nodes), q.GroupVars); g != nil {
					cur = g
				}
				total += product(cur.Vars())
				if total > 1e300 {
					total = 1e300
				}
			}
		}
		return cur, total
	}

	// Multi-start: the presort makes start order — and hence same-score
	// tie-breaking — deterministic (smallest product, then name, wins).
	best, bestScore := runFrom(0)
	for s := 1; s < len(pending); s++ {
		if root, score := runFrom(s); score < bestScore {
			best, bestScore = root, score
		}
	}
	return finishPlan(b, best, q)
}

// domainSizes collects the declared domain of every variable of the given
// tables (the max across tables, which should agree). This is the only
// "statistic" Greedy reads — it is schema, not data.
func domainSizes(b *plan.Builder, tables []string) (map[string]float64, error) {
	dom := make(map[string]float64)
	for _, t := range tables {
		st, err := b.Cat.Table(t)
		if err != nil {
			return nil, err
		}
		for _, a := range st.Attrs {
			if d := float64(a.Domain); d > dom[a.Name] {
				dom[a.Name] = d
			}
		}
	}
	return dom, nil
}
