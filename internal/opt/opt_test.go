package opt

import (
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/gen"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// fixture bundles a dataset with its catalog and builder.
type fixture struct {
	ds  *gen.Dataset
	cat *catalog.Catalog
	b   *plan.Builder
}

func newFixture(t *testing.T, ds *gen.Dataset) *fixture {
	t.Helper()
	cat, err := ds.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ds: ds, cat: cat, b: plan.NewBuilder(cat, cost.Simple{})}
}

func smallChain(t *testing.T, n int) *fixture {
	t.Helper()
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: n, Domain: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return newFixture(t, ds)
}

func smallStar(t *testing.T, n int) *fixture {
	t.Helper()
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Star, Tables: n, Domain: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	return newFixture(t, ds)
}

func smallMultiStar(t *testing.T, n int) *fixture {
	t.Helper()
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.MultiStar, Tables: n, Domain: 3, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	return newFixture(t, ds)
}

// oracle computes the query by materializing the full product join and
// aggregating once.
func oracle(t *testing.T, f *fixture, q *Query) *relation.Relation {
	t.Helper()
	rels := make([]*relation.Relation, len(f.ds.Relations))
	copy(rels, f.ds.Relations)
	if len(q.Pred) > 0 {
		for i, r := range rels {
			pred := make(relation.Predicate)
			for v, val := range q.Pred {
				if r.HasVar(v) {
					pred[v] = val
				}
			}
			if len(pred) > 0 {
				s, err := relation.Select(r, pred)
				if err != nil {
					t.Fatal(err)
				}
				rels[i] = s
			}
		}
	}
	joint, err := relation.ProductJoinAll(semiring.SumProduct, rels...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := relation.Marginalize(semiring.SumProduct, joint, q.GroupVars)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// evalPlan interprets the plan over the dataset's relations.
func evalPlan(t *testing.T, f *fixture, p *plan.Node) *relation.Relation {
	t.Helper()
	r, err := plan.Eval(p, plan.MapResolver(f.ds.RelationMap()), semiring.SumProduct)
	if err != nil {
		t.Fatalf("plan eval failed: %v\n%s", err, p)
	}
	return r
}

// TestAllOptimizersMatchOracle is the central correctness property: every
// optimizer variant must produce a plan whose result equals the
// brute-force evaluation, on every schema topology and query form.
func TestAllOptimizersMatchOracle(t *testing.T) {
	fixtures := map[string]*fixture{
		"chain":     smallChain(t, 4),
		"star":      smallStar(t, 4),
		"multistar": smallMultiStar(t, 5),
	}
	for fname, f := range fixtures {
		queries := []*Query{
			// Basic.
			{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}},
			{Tables: f.ds.ViewTables, GroupVars: []string{"x2"}},
			// Two query variables.
			{Tables: f.ds.ViewTables, GroupVars: []string{"x1", "x3"}},
			// Restricted answer set (predicate on the query variable).
			{Tables: f.ds.ViewTables, GroupVars: []string{"x2"}, Pred: relation.Predicate{"x2": 1}},
			// Constrained domain (predicate on a non-query variable).
			{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}, Pred: relation.Predicate{"x3": 0}},
		}
		for qi, q := range queries {
			want := oracle(t, f, q)
			for _, o := range All(rand.New(rand.NewSource(9))) {
				p, err := o.Optimize(q, f.b)
				if err != nil {
					t.Fatalf("%s/q%d/%s: optimize: %v", fname, qi, o.Name(), err)
				}
				if err := plan.Validate(p); err != nil {
					t.Fatalf("%s/q%d/%s: invalid plan: %v\n%s", fname, qi, o.Name(), err, p)
				}
				got := evalPlan(t, f, p)
				if !relation.Equal(got, want, 0, 1e-9) {
					t.Fatalf("%s/q%d/%s: plan result differs from oracle\nplan:\n%s",
						fname, qi, o.Name(), p)
				}
			}
		}
	}
}

func TestCSHasSingleRootGroupBy(t *testing.T) {
	f := smallChain(t, 5)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
	p, err := CS{}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.CountOps(p, plan.OpGroupBy); got != 1 {
		t.Fatalf("CS plan has %d GroupBys, want exactly 1\n%s", got, p)
	}
	if p.Op != plan.OpGroupBy {
		t.Fatal("CS plan root must be the GroupBy")
	}
	if !plan.IsLeftLinear(p) {
		t.Fatalf("CS plan must be linear\n%s", p)
	}
}

func TestCSPlusPushesGroupBys(t *testing.T) {
	// On a chain with a query on one end, CS+ should interpose GroupBys.
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: 6, Domain: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, ds)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
	pPlain, err := CS{}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	pPush, err := CSPlus{Linear: true}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CountOps(pPush, plan.OpGroupBy) < 2 {
		t.Fatalf("CS+ did not push any GroupBy:\n%s", pPush)
	}
	if pPush.TotalCost > pPlain.TotalCost {
		t.Fatalf("CS+ (%.0f) must be no worse than CS (%.0f)", pPush.TotalCost, pPlain.TotalCost)
	}
}

func TestNonlinearNoWorseThanLinear(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *fixture{smallChain, smallStar, smallMultiStar} {
		f := mk(t, 5)
		for _, v := range []string{"x1", "x3"} {
			q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{v}}
			lin, err := CSPlus{Linear: true}.Optimize(q, f.b)
			if err != nil {
				t.Fatal(err)
			}
			non, err := CSPlus{}.Optimize(q, f.b)
			if err != nil {
				t.Fatal(err)
			}
			if non.TotalCost > lin.TotalCost*(1+1e-9) {
				t.Fatalf("%s on %s: nonlinear (%.2f) worse than linear (%.2f)",
					v, f.ds.Name, non.TotalCost, lin.TotalCost)
			}
		}
	}
}

// TestVEExtensionNoWorse verifies the paper's guarantee that extended VE
// finds a plan no worse than plain VE for the same heuristic.
func TestVEExtensionNoWorse(t *testing.T) {
	for _, mk := range []func(*testing.T, int) *fixture{smallChain, smallStar, smallMultiStar} {
		f := mk(t, 5)
		q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
		for _, h := range []Heuristic{Degree, Width, ElimCost, DegreeWidth, DegreeElimCost} {
			pv, err := VE{Heuristic: h}.Optimize(q, f.b)
			if err != nil {
				t.Fatal(err)
			}
			pe, err := VE{Heuristic: h, Extended: true}.Optimize(q, f.b)
			if err != nil {
				t.Fatal(err)
			}
			if pe.TotalCost > pv.TotalCost*(1+1e-9) {
				t.Fatalf("%s on %s: extended VE (%.2f) worse than plain VE (%.2f)",
					h, f.ds.Name, pe.TotalCost, pv.TotalCost)
			}
		}
	}
}

// TestExtendedVEMatchesNonlinearCSPlusOnSyntheticViews reproduces the
// Table 2 observation: on the star, multistar and linear views, extended
// VE with any deterministic heuristic reaches the nonlinear CS+ optimum.
func TestExtendedVEMatchesNonlinearCSPlusOnSyntheticViews(t *testing.T) {
	for _, kind := range []gen.SyntheticKind{gen.Star, gen.MultiStar, gen.Linear} {
		ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: kind, Tables: 5, Domain: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		f := newFixture(t, ds)
		q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
		csp, err := CSPlus{}.Optimize(q, f.b)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []Heuristic{Degree, Width, ElimCost, DegreeWidth, DegreeElimCost} {
			pe, err := VE{Heuristic: h, Extended: true}.Optimize(q, f.b)
			if err != nil {
				t.Fatal(err)
			}
			ratio := pe.TotalCost / csp.TotalCost
			if ratio > 1.05 {
				t.Errorf("%s/%s: extended VE cost %.2f vs CS+ %.2f (ratio %.3f)",
					kind, h, pe.TotalCost, csp.TotalCost, ratio)
			}
		}
	}
}

// TestStarDegreeHeuristicPathology reproduces the Table 2 pathology:
// plain VE with the degree heuristic on a star view picks the hub first
// (joining every table with no GDL optimization) and is dramatically
// worse than the width heuristic.
func TestStarDegreeHeuristicPathology(t *testing.T) {
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Star, Tables: 5, Domain: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, ds)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
	deg, err := VE{Heuristic: Degree}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	wid, err := VE{Heuristic: Width}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if deg.TotalCost < 10*wid.TotalCost {
		t.Fatalf("expected degree (%.0f) to be far worse than width (%.0f) on star",
			deg.TotalCost, wid.TotalCost)
	}
}

func TestQueryValidation(t *testing.T) {
	f := smallChain(t, 3)
	b := f.b
	if _, err := (CS{}).Optimize(&Query{Tables: nil, GroupVars: []string{"x1"}}, b); err == nil {
		t.Fatal("empty view should error")
	}
	if _, err := (CS{}).Optimize(&Query{Tables: f.ds.ViewTables, GroupVars: []string{"zzz"}}, b); err == nil {
		t.Fatal("unknown query variable should error")
	}
	if _, err := (CS{}).Optimize(&Query{
		Tables: f.ds.ViewTables, GroupVars: []string{"x1"},
		Pred: relation.Predicate{"zzz": 0},
	}, b); err == nil {
		t.Fatal("unknown predicate variable should error")
	}
	dup := append(append([]string{}, f.ds.ViewTables...), f.ds.ViewTables[0])
	if _, err := (CS{}).Optimize(&Query{Tables: dup, GroupVars: []string{"x1"}}, b); err == nil {
		t.Fatal("duplicate table should error")
	}
}

func TestSingleTableView(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r, _ := relation.Random(rng, "solo",
		[]relation.Attr{{Name: "a", Domain: 4}, {Name: "b", Domain: 4}}, 0.9, relation.UniformMeasure(0, 1))
	cat := catalog.New()
	cat.AddTable(catalog.AnalyzeRelation(r))
	b := plan.NewBuilder(cat, cost.Simple{})
	q := &Query{Tables: []string{"solo"}, GroupVars: []string{"a"}}
	for _, o := range All(nil) {
		p, err := o.Optimize(q, b)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		got, err := plan.Eval(p, plan.MapResolver(map[string]*relation.Relation{"solo": r}), semiring.SumProduct)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, r, []string{"a"})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("%s: single-table query wrong", o.Name())
		}
	}
}

func TestLinearityTest(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ds.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	// tid: domain == smallest table cardinality (transporters is complete
	// over tid), σ = σ̂ → inequality holds → linear admissible (paper Q2).
	adm, sigma, sigmaHat, err := LinearityTest(cat, "tid")
	if err != nil {
		t.Fatal(err)
	}
	if !adm {
		t.Fatalf("tid should admit linear plans (σ=%v σ̂=%v)", sigma, sigmaHat)
	}
	// cid: small domain inside a much larger smallest table (warehouses) →
	// inequality fails → nonlinear useful (paper Q1).
	adm, sigma, sigmaHat, err = LinearityTest(cat, "cid")
	if err != nil {
		t.Fatal(err)
	}
	if adm {
		t.Fatalf("cid should fail the linearity test (σ=%v σ̂=%v)", sigma, sigmaHat)
	}
	if _, _, _, err := LinearityTest(cat, "ghost"); err == nil {
		t.Fatal("unknown variable should error")
	}
}

func TestLinearPlanAdmissibleFormula(t *testing.T) {
	// Paper's worked example: σ_cid=1000, σ̂_cid=5000 → fails;
	// σ_tid=σ̂_tid=500 → holds.
	if cost.LinearPlanAdmissible(1000, 5000) {
		t.Fatal("1000/5000 should fail Eq. 1")
	}
	if !cost.LinearPlanAdmissible(500, 500) {
		t.Fatal("500/500 should satisfy Eq. 1")
	}
}

func TestOptimizerRegistry(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("expected 16 optimizer variants (15 paper + greedy), got %d: %v", len(names), names)
	}
	for _, n := range names {
		o, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if o.Name() != n {
			t.Fatalf("ByName(%q) = %q", n, o.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown optimizer should error")
	}
}

func TestRunMeasuresOptimizationTime(t *testing.T) {
	f := smallChain(t, 5)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
	res, err := Run(CSPlus{}, q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Optimize <= 0 {
		t.Fatal("Run should return a plan and positive planning time")
	}
}

// TestRandomHeuristicReproducible: same seed, same plan.
func TestRandomHeuristicReproducible(t *testing.T) {
	f := smallChain(t, 5)
	q := &Query{Tables: f.ds.ViewTables, GroupVars: []string{"x1"}}
	p1, err := VE{Heuristic: RandomOrder, Rng: rand.New(rand.NewSource(77))}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := VE{Heuristic: RandomOrder, Rng: rand.New(rand.NewSource(77))}.Optimize(q, f.b)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalCost != p2.TotalCost {
		t.Fatal("random heuristic not reproducible with equal seeds")
	}
}

// TestSupplyChainOptimizersMatchOracle runs the paper's running example
// queries (Q1: group by wid; constrained variants) on a small supply
// chain instance against the oracle.
func TestSupplyChainOptimizersMatchOracle(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.002, CtdealsDensity: 0.8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, ds)
	queries := []*Query{
		{Tables: ds.ViewTables, GroupVars: []string{"wid"}},
		{Tables: ds.ViewTables, GroupVars: []string{"cid"}},
		{Tables: ds.ViewTables, GroupVars: []string{"cid"}, Pred: relation.Predicate{"tid": 1}},
		{Tables: ds.ViewTables, GroupVars: []string{"wid"}, Pred: relation.Predicate{"wid": 2}},
	}
	opts := []Optimizer{
		CS{}, CSPlus{Linear: true}, CSPlus{},
		VE{Heuristic: Degree}, VE{Heuristic: Degree, Extended: true},
		VE{Heuristic: Width}, VE{Heuristic: ElimCost, Extended: true},
	}
	for qi, q := range queries {
		want := oracle(t, f, q)
		for _, o := range opts {
			p, err := o.Optimize(q, f.b)
			if err != nil {
				t.Fatalf("q%d/%s: %v", qi, o.Name(), err)
			}
			got := evalPlan(t, f, p)
			if !relation.Equal(got, want, 0, 1e-6) {
				t.Fatalf("q%d/%s: result differs from oracle\n%s", qi, o.Name(), p)
			}
		}
	}
}
