package opt

import (
	"fmt"
	"math/bits"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// maxDPTables bounds the table count for the subset dynamic programs; the
// classic Selinger blow-up (Theorem 2: O(N·2^N) for CS+) makes larger
// views impractical, which is precisely the regime where VE wins.
const maxDPTables = 20

// CS is the unmodified Chaudhuri & Shim procedure applied to an MPF
// query. Because it does not recognize the distributivity of the additive
// aggregate with the product join (it assumes aggregates over a single
// column), it cannot push GroupBy nodes into the join tree: the result is
// the best linear join order with a single root GroupBy (Figure 3).
type CS struct{}

// Name implements Optimizer.
func (CS) Name() string { return "cs" }

// Optimize implements Optimizer.
func (CS) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	leaves, err := buildLeaves(q, b)
	if err != nil {
		return nil, err
	}
	top, err := linearJoinDP(b, leaves, nil, false)
	if err != nil {
		return nil, err
	}
	return finishPlan(b, top, q)
}

// CSPlus is the paper's CS+ algorithm: the Selinger-style dynamic program
// extended with the greedy-conservative GroupBy pushdown, aware that the
// aggregate distributes over the product join. Linear selects the
// left-linear search space of Algorithm 1; otherwise the nonlinear (bushy)
// extension of §5.1 is used, comparing four candidates per join (GroupBy
// on neither side, left only, right only, both).
type CSPlus struct {
	Linear bool
}

// Name implements Optimizer.
func (o CSPlus) Name() string {
	if o.Linear {
		return "cs+linear"
	}
	return "cs+nonlinear"
}

// Optimize implements Optimizer.
func (o CSPlus) Optimize(q *Query, b *plan.Builder) (*plan.Node, error) {
	leaves, err := buildLeaves(q, b)
	if err != nil {
		return nil, err
	}
	var top *plan.Node
	if o.Linear {
		top, err = linearJoinDP(b, leaves, q.GroupVars, true)
	} else {
		top, err = bushyJoinDP(b, leaves, relation.NewVarSet(), q.GroupVars, true)
	}
	if err != nil {
		return nil, err
	}
	return finishPlan(b, top, q)
}

// linearJoinDP finds the best left-linear join of the leaves. When
// pushGroupBy is set it applies the CS+ greedy-conservative rule: at each
// extension it compares joining the accumulated plan directly against
// joining it with a GroupBy on top (grouping on query variables plus
// variables shared with not-yet-joined tables), keeping the cheaper.
func linearJoinDP(b *plan.Builder, leaves []*plan.Node, queryVars []string, pushGroupBy bool) (*plan.Node, error) {
	n := len(leaves)
	if n == 0 {
		return nil, fmt.Errorf("opt: no leaves to join")
	}
	if n == 1 {
		return leaves[0], nil
	}
	if n > maxDPTables {
		return nil, fmt.Errorf("opt: %d tables exceeds DP limit %d", n, maxDPTables)
	}
	full := uint64(1)<<n - 1
	memo := make([]*plan.Node, full+1)
	for i, leaf := range leaves {
		memo[uint64(1)<<i] = leaf
	}
	// Context vars for a state S: variables of leaves outside S.
	outsideVars := func(mask uint64) relation.VarSet {
		s := relation.NewVarSet()
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				s = s.Union(leaves[i].Vars())
			}
		}
		return s
	}
	// Enumerate states by popcount so predecessors exist.
	masksByCount := make([][]uint64, n+1)
	for m := uint64(1); m <= full; m++ {
		c := bits.OnesCount64(m)
		masksByCount[c] = append(masksByCount[c], m)
	}
	for size := 2; size <= n; size++ {
		for _, m := range masksByCount[size] {
			var best *plan.Node
			for j := 0; j < n; j++ {
				bit := uint64(1) << j
				if m&bit == 0 {
					continue
				}
				prev := memo[m&^bit]
				if prev == nil {
					continue
				}
				cands := []*plan.Node{b.Join(prev, leaves[j])}
				if pushGroupBy {
					// Context: leaves not yet joined (including j) plus the
					// query variables.
					ctx := outsideVars(m &^ bit)
					if g := maybeGroup(b, prev, ctx, queryVars); g != nil {
						cands = append(cands, b.Join(g, leaves[j]))
					}
				}
				best = cheapest(best, cheapest(cands...))
			}
			memo[m] = best
		}
	}
	if memo[full] == nil {
		return nil, fmt.Errorf("opt: linear DP failed to cover all tables")
	}
	return memo[full], nil
}

// bushyJoinDP finds the best nonlinear join of the leaves with optional
// CS+ GroupBy pushdown (four candidates per split: no GroupBy, left,
// right, both). extraContext holds variables outside the leaves that must
// be preserved (used when planning a sub-join whose result joins further
// relations, as in Variable Elimination).
func bushyJoinDP(b *plan.Builder, leaves []*plan.Node, extraContext relation.VarSet, queryVars []string, pushGroupBy bool) (*plan.Node, error) {
	n := len(leaves)
	if n == 0 {
		return nil, fmt.Errorf("opt: no leaves to join")
	}
	if n == 1 {
		return leaves[0], nil
	}
	if n > maxDPTables {
		return nil, fmt.Errorf("opt: %d tables exceeds DP limit %d", n, maxDPTables)
	}
	full := uint64(1)<<n - 1
	memo := make([]*plan.Node, full+1)
	for i, leaf := range leaves {
		memo[uint64(1)<<i] = leaf
	}
	outsideVars := func(mask uint64) relation.VarSet {
		s := relation.NewVarSet()
		for k := range extraContext {
			s[k] = true
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				s = s.Union(leaves[i].Vars())
			}
		}
		return s
	}
	masksByCount := make([][]uint64, n+1)
	for m := uint64(1); m <= full; m++ {
		masksByCount[bits.OnesCount64(m)] = append(masksByCount[bits.OnesCount64(m)], m)
	}
	for size := 2; size <= n; size++ {
		for _, m := range masksByCount[size] {
			var best *plan.Node
			// Enumerate proper submasks; canonicalize by requiring sub to
			// contain the lowest set bit of m so each split is seen once.
			low := m & (-m)
			for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
				if sub&low == 0 {
					continue
				}
				other := m &^ sub
				p1, p2 := memo[sub], memo[other]
				if p1 == nil || p2 == nil {
					continue
				}
				var l2, r2 *plan.Node
				if pushGroupBy {
					l2 = maybeGroup(b, p1, outsideVars(sub), queryVars)
					r2 = maybeGroup(b, p2, outsideVars(other), queryVars)
				}
				best = cheapest(best, b.Join(p1, p2))
				if l2 != nil {
					best = cheapest(best, b.Join(l2, p2))
				}
				if r2 != nil {
					best = cheapest(best, b.Join(p1, r2))
				}
				if l2 != nil && r2 != nil {
					best = cheapest(best, b.Join(l2, r2))
				}
			}
			memo[m] = best
		}
	}
	if memo[full] == nil {
		return nil, fmt.Errorf("opt: bushy DP failed to cover all tables")
	}
	return memo[full], nil
}
