// Package opt implements the MPF query optimizers studied in the paper:
//
//   - CS: Chaudhuri & Shim's aggregate-query optimizer as it behaves on
//     MPF queries without product-join awareness — the best join order
//     with a single GroupBy at the root (paper Figure 3).
//   - CS+: the paper's extension that verifies distributivity of the
//     aggregate with the product join and applies the greedy-conservative
//     GroupBy pushdown during a Selinger-style dynamic program, in both
//     left-linear and nonlinear (bushy) variants (§5, §5.1).
//   - VE: Variable Elimination cast as relational planning (Algorithm 2),
//     with the degree, width, elimination-cost, and random ordering
//     heuristics and their combinations (§5.5).
//   - VE+: the extended-space Variable Elimination of §5.4 that delays
//     elimination and uses CS+-style cost-based local GroupBy decisions,
//     closing most of the gap to nonlinear CS+ (Theorem 3).
//
// All optimizers take a Query plus a plan.Builder (catalog + cost model)
// and return a logical plan whose estimated TotalCost is comparable
// across optimizers.
package opt

import (
	"fmt"
	"sort"
	"strings"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// Query is an MPF query: aggregate the product join of the view's tables
// onto the group variables, optionally restricted by equality predicates
// (the paper's basic, restricted-answer and constrained-domain forms).
type Query struct {
	// Tables are the base relations of the MPF view.
	Tables []string
	// GroupVars are the query variables X.
	GroupVars []string
	// Pred holds equality constraints (may mention query variables —
	// restricted answer set — or others — constrained domain).
	Pred relation.Predicate
}

// Optimizer turns a query into a plan.
type Optimizer interface {
	// Name identifies the optimizer in experiment reports.
	Name() string
	// Optimize returns an executable plan for q.
	Optimize(q *Query, b *plan.Builder) (*plan.Node, error)
}

// buildLeaves constructs one leaf plan per base table: a scan with any
// applicable equality selections pushed on top. It also validates that
// every query and predicate variable occurs somewhere in the view.
func buildLeaves(q *Query, b *plan.Builder) ([]*plan.Node, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("opt: query has no base tables")
	}
	seen := make(map[string]bool, len(q.Tables))
	leaves := make([]*plan.Node, 0, len(q.Tables))
	allVars := relation.NewVarSet()
	for _, t := range q.Tables {
		if seen[t] {
			return nil, fmt.Errorf("opt: table %s appears twice in view", t)
		}
		seen[t] = true
		scan, err := b.Scan(t)
		if err != nil {
			return nil, err
		}
		leaf := scan
		pred := make(relation.Predicate)
		for v, val := range q.Pred {
			if scan.Vars()[v] {
				pred[v] = val
			}
		}
		if len(pred) > 0 {
			leaf, err = b.Select(scan, pred)
			if err != nil {
				return nil, err
			}
		}
		allVars = allVars.Union(scan.Vars())
		leaves = append(leaves, leaf)
	}
	for _, v := range q.GroupVars {
		if !allVars[v] {
			return nil, fmt.Errorf("opt: query variable %s not in view", v)
		}
	}
	for v := range q.Pred {
		if !allVars[v] {
			return nil, fmt.Errorf("opt: predicate variable %s not in view", v)
		}
	}
	return leaves, nil
}

// safeGroupVars returns the variables of node that must be preserved when
// inserting a GroupBy above it: the query variables plus any variable
// shared with the rest of the query (context), per the correctness
// condition of Chaudhuri & Shim's transformation.
func safeGroupVars(node *plan.Node, context relation.VarSet, queryVars []string) []string {
	keep := relation.NewVarSet()
	for v := range node.Vars() {
		if context[v] {
			keep[v] = true
		}
	}
	for _, v := range queryVars {
		if node.Vars()[v] {
			keep[v] = true
		}
	}
	return keep.Sorted()
}

// maybeGroup returns a GroupBy of node onto safe variables when that
// actually drops at least one variable; otherwise nil.
func maybeGroup(b *plan.Builder, node *plan.Node, context relation.VarSet, queryVars []string) *plan.Node {
	safe := safeGroupVars(node, context, queryVars)
	if len(safe) == len(node.Vars()) {
		return nil
	}
	g, err := b.GroupBy(node, safe)
	if err != nil {
		return nil
	}
	return g
}

// finishPlan adds the root GroupBy onto the query variables. A root
// GroupBy is always required: even if the top node's variables already
// equal X, intermediate product joins may have produced duplicate
// assignments that the final aggregation must collapse — except when the
// top node is itself a GroupBy onto exactly X, which already did so.
func finishPlan(b *plan.Builder, top *plan.Node, q *Query) (*plan.Node, error) {
	want := relation.NewVarSet(q.GroupVars...)
	if top.Op == plan.OpGroupBy && want.Equal(top.Vars()) {
		return top, nil
	}
	return b.GroupBy(top, q.GroupVars)
}

// cheapest returns the lowest-TotalCost non-nil plan. Exact cost ties are
// broken by the lexicographically smallest canonical plan string, never by
// candidate generation order: the same query must always yield the same
// plan (plan-cache correctness depends on it, and repeated EXPLAINs must
// agree). Candidate order therefore cannot influence the winner.
func cheapest(cands ...*plan.Node) *plan.Node {
	var best *plan.Node
	var bestKey string // canonical key of best, computed lazily on first tie
	for _, c := range cands {
		if c == nil {
			continue
		}
		switch {
		case best == nil || c.TotalCost < best.TotalCost:
			best, bestKey = c, ""
		case c.TotalCost == best.TotalCost:
			if bestKey == "" {
				bestKey = canonKey(best)
			}
			if k := canonKey(c); k < bestKey {
				best, bestKey = c, k
			}
		}
	}
	return best
}

// canonKey renders a plan's physical structure as a canonical string used
// only for deterministic cost-tie breaking. Unlike plan.Fingerprints it
// does not canonicalize join commutativity: l ⋈* r and r ⋈* l are
// different physical plans and the tie-break must order them.
func canonKey(n *plan.Node) string {
	var b strings.Builder
	var walk func(m *plan.Node)
	walk = func(m *plan.Node) {
		if m == nil {
			return
		}
		switch m.Op {
		case plan.OpScan:
			b.WriteString("s:")
			b.WriteString(m.Table)
		case plan.OpSelect:
			keys := make([]string, 0, len(m.Pred))
			for k := range m.Pred {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("f[")
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=%d", k, m.Pred[k])
			}
			b.WriteString("](")
			walk(m.Left)
			b.WriteByte(')')
		case plan.OpJoin:
			b.WriteString("j(")
			walk(m.Left)
			b.WriteByte('|')
			walk(m.Right)
			b.WriteByte(')')
		case plan.OpGroupBy:
			b.WriteString("g[")
			b.WriteString(strings.Join(m.GroupVars, ","))
			b.WriteString("](")
			walk(m.Left)
			b.WriteByte(')')
		}
	}
	walk(n)
	return b.String()
}

// varsOfNodes unions the variable sets of the given nodes.
func varsOfNodes(nodes []*plan.Node) relation.VarSet {
	s := relation.NewVarSet()
	for _, n := range nodes {
		s = s.Union(n.Vars())
	}
	return s
}

// sortedVarList returns the union of variables of nodes as a sorted list.
func sortedVarList(nodes []*plan.Node) []string {
	return varsOfNodes(nodes).Sorted()
}
