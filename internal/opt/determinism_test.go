package opt

import (
	"testing"
)

// TestRepeatedPlanningIsDeterministic is the regression test for the
// plan-choice determinism bugfixes: the same query planned repeatedly by
// the same optimizer must always yield the same plan, byte for byte.
// Complete synthetic FRs over a uniform domain make the search spaces full
// of exact cost ties (symmetric tables), which is exactly where the old
// generation-order tie-breaks and the map-iteration-order float products
// in the VE scores could flip the winner between runs.
func TestRepeatedPlanningIsDeterministic(t *testing.T) {
	fixtures := map[string]*fixture{
		"chain": smallChain(t, 5),
		"star":  smallStar(t, 5),
		"multi": smallMultiStar(t, 6),
	}
	opts := append(All(nil), Greedy{})
	for name, f := range fixtures {
		q := &Query{Tables: f.ds.ViewTables, GroupVars: f.ds.QueryVars[:1]}
		for _, o := range opts {
			var want string
			for rep := 0; rep < 6; rep++ {
				// A fresh builder each repetition: determinism must not
				// depend on shared memoization or allocation order.
				p, err := o.Optimize(q, newFixture(t, f.ds).b)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, o.Name(), err)
				}
				got := p.String()
				if rep == 0 {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s/%s: repetition %d chose a different plan:\n--- first ---\n%s--- now ---\n%s",
						name, o.Name(), rep, want, got)
				}
			}
		}
	}
}

// TestCheapestBreaksTiesLexicographically checks the cost-tie contract
// directly: among equal-cost candidates the lexicographically smallest
// canonical plan wins, regardless of argument order.
func TestCheapestBreaksTiesLexicographically(t *testing.T) {
	f := smallChain(t, 3)
	a, err := f.b.Scan(f.ds.ViewTables[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.b.Scan(f.ds.ViewTables[1])
	if err != nil {
		t.Fatal(err)
	}
	// Complete FRs over the same domain: both join orders cost the same.
	lr := f.b.Join(a, b)
	rl := f.b.Join(b, a)
	if lr.TotalCost != rl.TotalCost {
		t.Fatalf("fixture not a tie: %v vs %v", lr.TotalCost, rl.TotalCost)
	}
	want := lr
	if canonKey(rl) < canonKey(lr) {
		want = rl
	}
	if got := cheapest(lr, rl); got != want {
		t.Fatalf("cheapest(lr, rl) = %s, want %s", canonKey(got), canonKey(want))
	}
	if got := cheapest(rl, lr); got != want {
		t.Fatalf("cheapest(rl, lr) = %s, want %s", canonKey(got), canonKey(want))
	}
	if got := cheapest(nil, rl, nil, lr); got != want {
		t.Fatalf("cheapest with nils = %s, want %s", canonKey(got), canonKey(want))
	}
}
