package opt

import (
	"mpf/internal/catalog"
	"mpf/internal/relation"
)

// Prop1Removable implements Proposition 1: a variable Y of the view can
// be removed by projection rather than aggregation — and therefore need
// not be considered for elimination — when, for every base relation of
// the view, a key FD X_i → s_i[f] is declared with Y ∉ X_i. A sufficient
// condition is that each base relation has a primary key and Y is not
// part of any of them: then no relation holds more than one row per
// assignment of its non-Y attributes, so marginalizing Y out merges
// nothing and GroupBy coincides with projection.
//
// Variables that appear in a relation with no declared key (where only
// the trivial all-attributes key is known) are never removable.
func Prop1Removable(cat *catalog.Catalog, tables []string) (relation.VarSet, error) {
	removable := relation.NewVarSet()
	blocked := relation.NewVarSet()
	for _, t := range tables {
		st, err := cat.Table(t)
		if err != nil {
			return nil, err
		}
		key := st.KeyVars()
		declared := len(st.Key) > 0
		for v := range st.Vars() {
			if key[v] || !declared {
				blocked[v] = true
				continue
			}
			removable[v] = true
		}
	}
	return removable.Minus(blocked), nil
}
