package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// randomSchema builds a connected random view: nTables relations over a
// shared variable pool, each with 1-3 variables, chained so the schema
// is connected. Domains are small enough that the brute-force joint is
// computable.
func randomSchema(rng *rand.Rand, nTables, nVars int) []*relation.Relation {
	vars := make([]relation.Attr, nVars)
	for i := range vars {
		vars[i] = relation.Attr{Name: fmt.Sprintf("v%d", i), Domain: 2 + rng.Intn(2)}
	}
	rels := make([]*relation.Relation, nTables)
	for i := range rels {
		// Ensure connectivity: table i always contains variable i%nVars,
		// and (for i>0) one variable from an earlier table.
		chosen := map[int]bool{i % nVars: true}
		if i > 0 {
			chosen[(i-1)%nVars] = true
		}
		for rng.Float64() < 0.4 && len(chosen) < 3 {
			chosen[rng.Intn(nVars)] = true
		}
		var attrs []relation.Attr
		for vi := 0; vi < nVars; vi++ {
			if chosen[vi] {
				attrs = append(attrs, vars[vi])
			}
		}
		density := 0.5 + rng.Float64()*0.5
		r, err := relation.Random(rng, fmt.Sprintf("t%d", i), attrs, density,
			relation.UniformMeasure(0.1, 3))
		if err != nil {
			panic(err)
		}
		rels[i] = r
	}
	return rels
}

// TestFuzzOptimizersAgainstOracle runs every optimizer over many random
// schemas and random query forms, comparing against brute force. This is
// the broadest correctness net in the repository.
func TestFuzzOptimizersAgainstOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		nTables := 2 + rng.Intn(4) // 2-5 tables
		nVars := 3 + rng.Intn(3)   // 3-5 variables
		rels := randomSchema(rng, nTables, nVars)
		cat := catalog.New()
		relMap := map[string]*relation.Relation{}
		var tables []string
		allVars := relation.NewVarSet()
		for _, r := range rels {
			if err := cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
				t.Fatal(err)
			}
			relMap[r.Name()] = r
			tables = append(tables, r.Name())
			allVars = allVars.Union(r.Vars())
		}
		varList := allVars.Sorted()
		// Random query: 1-2 group vars, sometimes a predicate.
		q := &Query{Tables: tables}
		q.GroupVars = []string{varList[rng.Intn(len(varList))]}
		if rng.Float64() < 0.4 && len(varList) > 1 {
			other := varList[rng.Intn(len(varList))]
			if other != q.GroupVars[0] {
				q.GroupVars = append(q.GroupVars, other)
			}
		}
		if rng.Float64() < 0.5 {
			pv := varList[rng.Intn(len(varList))]
			// Predicate value within the variable's domain.
			dom := int32(2)
			for _, r := range rels {
				if a, ok := r.Attr(pv); ok {
					dom = int32(a.Domain)
					break
				}
			}
			q.Pred = relation.Predicate{pv: rng.Int31n(dom)}
		}

		// Oracle.
		oracleRels := make([]*relation.Relation, len(rels))
		copy(oracleRels, rels)
		for i, r := range oracleRels {
			pred := relation.Predicate{}
			for v, val := range q.Pred {
				if r.HasVar(v) {
					pred[v] = val
				}
			}
			if len(pred) > 0 {
				s, err := relation.Select(r, pred)
				if err != nil {
					t.Fatal(err)
				}
				oracleRels[i] = s
			}
		}
		joint, err := relation.ProductJoinAll(semiring.SumProduct, oracleRels...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := relation.Marginalize(semiring.SumProduct, joint, q.GroupVars)
		if err != nil {
			t.Fatal(err)
		}

		b := plan.NewBuilder(cat, cost.Simple{})
		for _, o := range All(rand.New(rand.NewSource(int64(trial)))) {
			p, err := o.Optimize(q, b)
			if err != nil {
				t.Fatalf("trial %d %s: optimize: %v", trial, o.Name(), err)
			}
			if err := plan.Validate(p); err != nil {
				t.Fatalf("trial %d %s: invalid plan: %v", trial, o.Name(), err)
			}
			got, err := plan.Eval(p, plan.MapResolver(relMap), semiring.SumProduct)
			if err != nil {
				t.Fatalf("trial %d %s: eval: %v", trial, o.Name(), err)
			}
			if !relation.Equal(got, want, 0, 1e-9) {
				t.Fatalf("trial %d %s: wrong answer for group=%v pred=%v\nplan:\n%s",
					trial, o.Name(), q.GroupVars, q.Pred, p)
			}
		}
	}
}

// TestFuzzEngineMatchesInterpreter executes optimizer plans on the paged
// engine (hash and sort operator variants) and checks agreement with the
// in-memory interpreter on random schemas.
func TestFuzzEngineMatchesInterpreter(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		rels := randomSchema(rng, 2+rng.Intn(3), 4)
		cat := catalog.New()
		relMap := map[string]*relation.Relation{}
		var tables []string
		pool := storage.NewPool(16)
		factory := storage.MemDiskFactory()
		execTables := map[string]*exec.Table{}
		for _, r := range rels {
			cat.AddTable(catalog.AnalyzeRelation(r))
			relMap[r.Name()] = r
			tables = append(tables, r.Name())
			tb, err := exec.LoadRelation(pool, factory, r)
			if err != nil {
				t.Fatal(err)
			}
			execTables[r.Name()] = tb
		}
		q := &Query{Tables: tables, GroupVars: []string{rels[0].VarNames()[0]}}
		b := plan.NewBuilder(cat, cost.Simple{})
		p, err := CSPlus{}.Optimize(q, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.Eval(p, plan.MapResolver(relMap), semiring.SumProduct)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []struct{ sj, sg bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
			eng := exec.NewEngine(pool, factory, semiring.SumProduct)
			eng.SortJoin, eng.SortGroupBy = mode.sj, mode.sg
			eng.SortRunTuples = 8 // force external merges
			got, _, err := eng.Run(p, exec.MapResolver(execTables))
			if err != nil {
				t.Fatalf("trial %d mode %+v: %v", trial, mode, err)
			}
			if !relation.Equal(got, want, 0, 1e-9) {
				t.Fatalf("trial %d mode %+v: engine disagrees with interpreter", trial, mode)
			}
		}
		for _, tb := range execTables {
			tb.Heap.Drop()
		}
	}
}
