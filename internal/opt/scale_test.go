package opt

import (
	"testing"
	"time"

	"mpf/internal/cost"
	"mpf/internal/gen"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// TestTheorem2ScaleSeparation demonstrates the optimization-time
// complexity split of Theorem 2: on a 30-table chain view, Variable
// Elimination (O(M·S·2^S) with connectivity S=2) plans in well under a
// second, while the Selinger-style dynamic programs (O(N·2^N)) refuse
// beyond their table limit rather than exploring 2^30 states.
func TestTheorem2ScaleSeparation(t *testing.T) {
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: 30, Domain: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ds.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	q := &Query{Tables: ds.ViewTables, GroupVars: []string{"x1"}}

	start := time.Now()
	p, err := VE{Heuristic: Width}.Optimize(q, b)
	if err != nil {
		t.Fatalf("VE must handle 30 tables: %v", err)
	}
	elapsed := time.Since(start)
	if err := plan.Validate(p); err != nil {
		t.Fatal(err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("VE took %v on a 30-table chain; expected sub-second planning", elapsed)
	}
	if got := len(plan.Tables(p)); got != 30 {
		t.Fatalf("plan covers %d tables, want 30", got)
	}
	// Extended VE also scales (its joinplans stay small: 2 tables per
	// elimination on a chain).
	if _, err := (VE{Heuristic: Width, Extended: true}).Optimize(q, b); err != nil {
		t.Fatalf("extended VE must handle 30 tables: %v", err)
	}

	// The subset DPs refuse: 2^30 states would be explored otherwise.
	if _, err := (CSPlus{}).Optimize(q, b); err == nil {
		t.Fatal("nonlinear CS+ must refuse 30 tables (2^30 DP states)")
	}
	if _, err := (CS{}).Optimize(q, b); err == nil {
		t.Fatal("CS must refuse 30 tables")
	}
}

// TestVE20TableCorrectness cross-checks a VE plan on a 10-table chain
// against the in-memory interpreter run of the CS+ plan at the largest
// size the DP still handles, confirming the two agree where both exist.
func TestVELargeChainAgreesWithCSPlus(t *testing.T) {
	ds, err := gen.Synthetic(gen.SyntheticConfig{Kind: gen.Linear, Tables: 10, Domain: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ds.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	b := plan.NewBuilder(cat, cost.Simple{})
	q := &Query{Tables: ds.ViewTables, GroupVars: []string{"x5"}}
	pVE, err := VE{Heuristic: Width}.Optimize(q, b)
	if err != nil {
		t.Fatal(err)
	}
	pCS, err := CSPlus{}.Optimize(q, b)
	if err != nil {
		t.Fatal(err)
	}
	evalWith := func(p *plan.Node) *relation.Relation {
		r, err := plan.Eval(p, plan.MapResolver(ds.RelationMap()), semiring.SumProduct)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Tolerance absorbs float reassociation across the 12 joins.
	if !relation.Equal(evalWith(pVE), evalWith(pCS), 0, 1e-6) {
		t.Fatal("VE and CS+ disagree on the 10-table chain")
	}
}
