package opt

import (
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// permutations returns all orderings of xs (xs must be small).
func permutations(xs []string) [][]string {
	if len(xs) <= 1 {
		return [][]string{append([]string(nil), xs...)}
	}
	var out [][]string
	for i := range xs {
		rest := make([]string, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]string{xs[i]}, p...))
		}
	}
	return out
}

// TestTheorem1ExhaustiveOrders validates the Theorem 1/3 plan-space
// relationships constructively on random small views, over EVERY
// elimination order:
//
//   - every VE and VE+ plan computes the correct answer;
//   - VE+ is never worse than VE for the same order (the §5.4 guarantee);
//   - CS+ is at least as good as the typical VE+ order (the inclusion
//     GDLPlan(VE+) ⊆ GDLPlan(CS+) concerns the space CS+ *considers*;
//     its greedy-conservative per-state choice can occasionally commit
//     to a locally cheaper subplan that a specific VE+ order avoids, so
//     the comparison is asserted statistically, not per order).
func TestTheorem1ExhaustiveOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	totalOrders, cspNoWorse := 0, 0
	for trial := 0; trial < 8; trial++ {
		rels := randomSchema(rng, 3, 4)
		cat := catalog.New()
		relMap := map[string]*relation.Relation{}
		var tables []string
		allVars := relation.NewVarSet()
		for _, r := range rels {
			if err := cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
				t.Fatal(err)
			}
			relMap[r.Name()] = r
			tables = append(tables, r.Name())
			allVars = allVars.Union(r.Vars())
		}
		varList := allVars.Sorted()
		queryVar := varList[rng.Intn(len(varList))]
		q := &Query{Tables: tables, GroupVars: []string{queryVar}}
		b := plan.NewBuilder(cat, cost.Simple{})

		csp, err := CSPlus{}.Optimize(q, b)
		if err != nil {
			t.Fatal(err)
		}
		joint, err := relation.ProductJoinAll(semiring.SumProduct, rels...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := relation.Marginalize(semiring.SumProduct, joint, q.GroupVars)
		if err != nil {
			t.Fatal(err)
		}

		elim := relation.NewVarSet(varList...).Minus(relation.NewVarSet(queryVar)).Sorted()
		if len(elim) > 4 {
			elim = elim[:4] // bound 4! orders; the remainder is appended lexicographically
		}
		for _, order := range permutations(elim) {
			pVE, err := VE{Order: order}.Optimize(q, b)
			if err != nil {
				t.Fatalf("trial %d order %v: VE: %v", trial, order, err)
			}
			pVEx, err := VE{Order: order, Extended: true}.Optimize(q, b)
			if err != nil {
				t.Fatalf("trial %d order %v: VE+: %v", trial, order, err)
			}
			if pVEx.TotalCost > pVE.TotalCost*(1+1e-9) {
				t.Fatalf("trial %d order %v: VE+ (%v) worse than VE (%v)",
					trial, order, pVEx.TotalCost, pVE.TotalCost)
			}
			totalOrders++
			if csp.TotalCost <= pVEx.TotalCost*(1+1e-9) {
				cspNoWorse++
			} else if csp.TotalCost > pVEx.TotalCost*2 {
				t.Fatalf("trial %d order %v: CS+ (%v) more than 2x worse than VE+ (%v)",
					trial, order, csp.TotalCost, pVEx.TotalCost)
			}
			for name, p := range map[string]*plan.Node{"ve": pVE, "ve+": pVEx} {
				got, err := plan.Eval(p, plan.MapResolver(relMap), semiring.SumProduct)
				if err != nil {
					t.Fatal(err)
				}
				if !relation.Equal(got, want, 0, 1e-9) {
					t.Fatalf("trial %d order %v: %s plan wrong", trial, order, name)
				}
			}
		}
	}
	// The paper's empirical claim (§5.4): CS+ "rarely" misses plans VE+
	// reaches. Tiny random views exaggerate the greedy's misses compared
	// to the paper's structured views (where Table 2 shows exact matches),
	// so the bar here is a majority rather than near-unanimity; the
	// structured-view equality is asserted separately in
	// TestExtendedVEMatchesNonlinearCSPlusOnSyntheticViews.
	if frac := float64(cspNoWorse) / float64(totalOrders); frac < 0.6 {
		t.Fatalf("CS+ no worse than VE+ on only %.0f%% of %d orders; expected the majority",
			frac*100, totalOrders)
	}
}

// TestVEFixedOrderRespected: the plan eliminates exactly in the given
// order (observable through determinism: same order, same plan; distinct
// orders can differ).
func TestVEFixedOrderRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	rels := randomSchema(rng, 3, 4)
	cat := catalog.New()
	var tables []string
	allVars := relation.NewVarSet()
	for _, r := range rels {
		cat.AddTable(catalog.AnalyzeRelation(r))
		tables = append(tables, r.Name())
		allVars = allVars.Union(r.Vars())
	}
	varList := allVars.Sorted()
	q := &Query{Tables: tables, GroupVars: []string{varList[0]}}
	b := plan.NewBuilder(cat, cost.Simple{})
	order := varList[1:]
	p1, err := VE{Order: order}.Optimize(q, b)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := VE{Order: order}.Optimize(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if p1.TotalCost != p2.TotalCost {
		t.Fatal("fixed order should be deterministic")
	}
	// An order containing extraneous variables is tolerated.
	padded := append([]string{"not_a_var"}, order...)
	if _, err := (VE{Order: padded}).Optimize(q, b); err != nil {
		t.Fatalf("extraneous order entries should be skipped: %v", err)
	}
	// A short order falls back to heuristic choice for the rest.
	if len(order) > 1 {
		if _, err := (VE{Order: order[:1]}).Optimize(q, b); err != nil {
			t.Fatalf("short order should complete heuristically: %v", err)
		}
	}
}
