// Package bayes implements the Bayesian-network substrate of §4: discrete
// BNs with conditional probability tables, their representation as MPF
// views over functional relations, ancestral sampling, parameter
// estimation from data (the counting task §4 notes the MPF setting also
// supports), and exact inference oracles for testing the MPF machinery.
package bayes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mpf/internal/graph"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// Node is one random variable of a network: a categorical variable with a
// conditional probability table given its parents.
type Node struct {
	Name    string
	Domain  int
	Parents []string
	// CPT holds Pr(node = v | parents = p) in row-major order: parent
	// assignments vary first (in Parents order, last parent fastest),
	// then the node's own value fastest of all. Its length is
	// Π parentDomains × Domain and each conditional row sums to 1.
	CPT []float64
}

// Network is a discrete Bayesian network. Nodes must be added in
// topological order (parents before children), which also guarantees
// acyclicity.
type Network struct {
	nodes  []*Node
	byName map[string]*Node
}

// New returns an empty network.
func New() *Network {
	return &Network{byName: make(map[string]*Node)}
}

// AddNode appends a node whose parents must already exist. The CPT length
// must equal the product of parent domains times the node's domain, and
// every conditional distribution must sum to 1 (tolerance 1e-6).
func (n *Network) AddNode(name string, domain int, parents []string, cpt []float64) error {
	if name == "" {
		return fmt.Errorf("bayes: empty node name")
	}
	if domain < 2 {
		return fmt.Errorf("bayes: node %s needs domain >= 2, got %d", name, domain)
	}
	if _, dup := n.byName[name]; dup {
		return fmt.Errorf("bayes: duplicate node %s", name)
	}
	rows := 1
	for _, p := range parents {
		pn, ok := n.byName[p]
		if !ok {
			return fmt.Errorf("bayes: node %s has unknown parent %s (add parents first)", name, p)
		}
		rows *= pn.Domain
	}
	if len(cpt) != rows*domain {
		return fmt.Errorf("bayes: node %s CPT has %d entries, want %d", name, len(cpt), rows*domain)
	}
	for r := 0; r < rows; r++ {
		sum := 0.0
		for v := 0; v < domain; v++ {
			pv := cpt[r*domain+v]
			if pv < 0 || pv > 1+1e-9 {
				return fmt.Errorf("bayes: node %s CPT entry %d out of [0,1]: %v", name, r*domain+v, pv)
			}
			sum += pv
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("bayes: node %s CPT row %d sums to %v, want 1", name, r, sum)
		}
	}
	node := &Node{
		Name:    name,
		Domain:  domain,
		Parents: append([]string(nil), parents...),
		CPT:     append([]float64(nil), cpt...),
	}
	n.nodes = append(n.nodes, node)
	n.byName[name] = node
	return nil
}

// Nodes returns the nodes in topological (insertion) order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Node returns the named node.
func (n *Network) Node(name string) (*Node, bool) {
	nd, ok := n.byName[name]
	return nd, ok
}

// Vars returns all variable names in topological order.
func (n *Network) Vars() []string {
	out := make([]string, len(n.nodes))
	for i, nd := range n.nodes {
		out[i] = nd.Name
	}
	return out
}

// Relations converts the network into the local functional relations of
// its MPF view (§4): one complete FR per node over (parents, node) whose
// measure is the conditional probability. Their product join is the joint
// distribution.
func (n *Network) Relations() ([]*relation.Relation, error) {
	out := make([]*relation.Relation, 0, len(n.nodes))
	for _, nd := range n.nodes {
		attrs := make([]relation.Attr, 0, len(nd.Parents)+1)
		for _, p := range nd.Parents {
			attrs = append(attrs, relation.Attr{Name: p, Domain: n.byName[p].Domain})
		}
		attrs = append(attrs, relation.Attr{Name: nd.Name, Domain: nd.Domain})
		idx := 0
		r, err := relation.Complete("cpt_"+nd.Name, attrs, func([]int32) float64 {
			v := nd.CPT[idx]
			idx++
			return v
		})
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Joint materializes the full joint distribution by brute force; the
// oracle for inference tests. Exponential in the number of variables.
func (n *Network) Joint() (*relation.Relation, error) {
	rels, err := n.Relations()
	if err != nil {
		return nil, err
	}
	j, err := relation.ProductJoinAll(semiring.SumProduct, rels...)
	if err != nil {
		return nil, err
	}
	j.SetName("joint")
	return j, nil
}

// cptRow returns the base offset of the CPT row for the given parent
// values.
func (n *Network) cptRow(nd *Node, parentVals []int32) int {
	row := 0
	for i, p := range nd.Parents {
		row = row*n.byName[p].Domain + int(parentVals[i])
	}
	return row * nd.Domain
}

// Sample draws one complete assignment by ancestral sampling.
func (n *Network) Sample(rng *rand.Rand) map[string]int32 {
	out := make(map[string]int32, len(n.nodes))
	for _, nd := range n.nodes {
		pv := make([]int32, len(nd.Parents))
		for i, p := range nd.Parents {
			pv[i] = out[p]
		}
		base := n.cptRow(nd, pv)
		u := rng.Float64()
		acc := 0.0
		val := int32(nd.Domain - 1)
		for v := 0; v < nd.Domain; v++ {
			acc += nd.CPT[base+v]
			if u < acc {
				val = int32(v)
				break
			}
		}
		out[nd.Name] = val
	}
	return out
}

// SampleRelation draws count samples and returns them as a functional
// relation over all variables whose measure counts occurrences — the raw
// material for parameter estimation (§4).
func (n *Network) SampleRelation(rng *rand.Rand, count int) (*relation.Relation, error) {
	attrs := make([]relation.Attr, len(n.nodes))
	for i, nd := range n.nodes {
		attrs[i] = relation.Attr{Name: nd.Name, Domain: nd.Domain}
	}
	counts := make(map[string]int)
	rows := make(map[string][]int32)
	buf := make([]int32, len(attrs))
	for s := 0; s < count; s++ {
		sample := n.Sample(rng)
		for i, nd := range n.nodes {
			buf[i] = sample[nd.Name]
		}
		k := fmt.Sprint(buf)
		if _, ok := counts[k]; !ok {
			rows[k] = append([]int32(nil), buf...)
		}
		counts[k]++
	}
	r, err := relation.New("samples", attrs)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := r.Append(rows[k], float64(counts[k])); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// EstimateParameters re-estimates every CPT from a count relation (as
// produced by SampleRelation) over at least the network's variables,
// using add-alpha (Laplace when alpha=1) smoothing. The counting itself
// is an MPF computation: marginalize the count relation onto
// (parents, node) and onto (parents) and divide. A new network with the
// same structure is returned.
func (n *Network) EstimateParameters(data *relation.Relation, alpha float64) (*Network, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("bayes: negative smoothing %v", alpha)
	}
	out := New()
	for _, nd := range n.nodes {
		family := append(append([]string(nil), nd.Parents...), nd.Name)
		for _, v := range family {
			if !data.HasVar(v) {
				return nil, fmt.Errorf("bayes: data lacks variable %s", v)
			}
		}
		famCounts, err := relation.Marginalize(semiring.SumProduct, data, family)
		if err != nil {
			return nil, err
		}
		// Index counts by (parents, value).
		counts := make(map[string]float64, famCounts.Len())
		cols := make([]int, len(family))
		for i, v := range family {
			cols[i] = famCounts.ColIndex(v)
		}
		keyOf := func(vals []int32) string {
			b := make([]byte, 0, 4*len(cols))
			for _, c := range cols {
				x := vals[c]
				b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
			}
			return string(b)
		}
		for i := 0; i < famCounts.Len(); i++ {
			counts[keyOf(famCounts.Row(i))] = famCounts.Measure(i)
		}
		// Build the CPT with smoothing.
		rows := 1
		pd := make([]int, len(nd.Parents))
		for i, p := range nd.Parents {
			pd[i] = n.byName[p].Domain
			rows *= pd[i]
		}
		cpt := make([]float64, rows*nd.Domain)
		pv := make([]int32, len(nd.Parents))
		lookup := make([]int32, len(family))
		for row := 0; row < rows; row++ {
			rem := row
			for i := len(pd) - 1; i >= 0; i-- {
				pv[i] = int32(rem % pd[i])
				rem /= pd[i]
			}
			total := alpha * float64(nd.Domain)
			vals := make([]float64, nd.Domain)
			for v := 0; v < nd.Domain; v++ {
				copy(lookup, pv)
				lookup[len(family)-1] = int32(v)
				cnt := countFor(counts, famCounts, family, lookup)
				vals[v] = cnt + alpha
				total += cnt
			}
			if total == 0 {
				// No data and no smoothing: fall back to uniform.
				for v := 0; v < nd.Domain; v++ {
					cpt[row*nd.Domain+v] = 1 / float64(nd.Domain)
				}
				continue
			}
			for v := 0; v < nd.Domain; v++ {
				cpt[row*nd.Domain+v] = vals[v] / total
			}
		}
		if err := out.AddNode(nd.Name, nd.Domain, nd.Parents, cpt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// countFor looks up the count for a family assignment (0 when absent).
func countFor(counts map[string]float64, fam *relation.Relation, family []string, vals []int32) float64 {
	b := make([]byte, 0, 4*len(family))
	// The count map was keyed in fam's column order for the family list;
	// vals is already in family order, so re-key identically.
	reordered := make([]int32, fam.Arity())
	for i, v := range family {
		reordered[fam.ColIndex(v)] = vals[i]
	}
	for _, v := range family {
		x := reordered[fam.ColIndex(v)]
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return counts[string(b)]
}

// EstimateFromFamilyCounts re-estimates the CPTs from per-family count
// relations instead of a single joint count table: counts[v] must be a
// functional relation over (Parents(v), v) whose measure counts
// occurrences. This is the decomposed-counting path §4 describes — when
// the data lives in multiple tables under a join dependency, the family
// counts are themselves MPF queries over those tables, so estimation
// never materializes a joint table. Smoothing is add-alpha as in
// EstimateParameters.
func (n *Network) EstimateFromFamilyCounts(counts map[string]*relation.Relation, alpha float64) (*Network, error) {
	if alpha < 0 {
		return nil, fmt.Errorf("bayes: negative smoothing %v", alpha)
	}
	out := New()
	for _, nd := range n.nodes {
		fam, ok := counts[nd.Name]
		if !ok {
			return nil, fmt.Errorf("bayes: no count relation for %s", nd.Name)
		}
		family := append(append([]string(nil), nd.Parents...), nd.Name)
		for _, v := range family {
			if !fam.HasVar(v) {
				return nil, fmt.Errorf("bayes: count relation for %s lacks variable %s", nd.Name, v)
			}
		}
		// Aggregate in case the count relation carries extra variables.
		famCounts, err := relation.Marginalize(semiring.SumProduct, fam, family)
		if err != nil {
			return nil, err
		}
		cpt, err := n.cptFromCounts(nd, famCounts, family, alpha)
		if err != nil {
			return nil, err
		}
		if err := out.AddNode(nd.Name, nd.Domain, nd.Parents, cpt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// cptFromCounts turns a family count relation into a smoothed CPT.
func (n *Network) cptFromCounts(nd *Node, famCounts *relation.Relation, family []string, alpha float64) ([]float64, error) {
	lookup := make(map[string]float64, famCounts.Len())
	cols := make([]int, len(family))
	for i, v := range family {
		cols[i] = famCounts.ColIndex(v)
	}
	keyOf := func(vals []int32) string {
		b := make([]byte, 0, 4*len(cols))
		for _, c := range cols {
			x := vals[c]
			b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return string(b)
	}
	for i := 0; i < famCounts.Len(); i++ {
		lookup[keyOf(famCounts.Row(i))] = famCounts.Measure(i)
	}
	rows := 1
	pd := make([]int, len(nd.Parents))
	for i, p := range nd.Parents {
		pd[i] = n.byName[p].Domain
		rows *= pd[i]
	}
	cpt := make([]float64, rows*nd.Domain)
	assign := make([]int32, len(family))
	reordered := make([]int32, famCounts.Arity())
	for row := 0; row < rows; row++ {
		rem := row
		for i := len(pd) - 1; i >= 0; i-- {
			assign[i] = int32(rem % pd[i])
			rem /= pd[i]
		}
		total := alpha * float64(nd.Domain)
		vals := make([]float64, nd.Domain)
		for v := 0; v < nd.Domain; v++ {
			assign[len(family)-1] = int32(v)
			for i, fv := range family {
				reordered[famCounts.ColIndex(fv)] = assign[i]
			}
			b := make([]byte, 0, 4*len(cols))
			for _, c := range cols {
				x := reordered[c]
				b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
			}
			cnt := lookup[string(b)]
			vals[v] = cnt + alpha
			total += cnt
		}
		if total == 0 {
			for v := 0; v < nd.Domain; v++ {
				cpt[row*nd.Domain+v] = 1 / float64(nd.Domain)
			}
			continue
		}
		for v := 0; v < nd.Domain; v++ {
			cpt[row*nd.Domain+v] = vals[v] / total
		}
	}
	return cpt, nil
}

// ExactMarginal computes Pr(target | evidence) by variable elimination
// over the network's functional relations using a min-fill order — the
// §4 inference task "select target, SUM(p) from joint where evidence
// group by target", normalized. It is independent of the optimizer stack
// and serves as its cross-check.
func (n *Network) ExactMarginal(target string, evidence map[string]int32) (*relation.Relation, error) {
	if _, ok := n.byName[target]; !ok {
		return nil, fmt.Errorf("bayes: unknown target %s", target)
	}
	for v := range evidence {
		nd, ok := n.byName[v]
		if !ok {
			return nil, fmt.Errorf("bayes: unknown evidence variable %s", v)
		}
		if int(evidence[v]) >= nd.Domain || evidence[v] < 0 {
			return nil, fmt.Errorf("bayes: evidence %s=%d out of domain", v, evidence[v])
		}
	}
	rels, err := n.Relations()
	if err != nil {
		return nil, err
	}
	// Apply evidence.
	for i, r := range rels {
		pred := make(relation.Predicate)
		for v, val := range evidence {
			if r.HasVar(v) {
				pred[v] = val
			}
		}
		if len(pred) > 0 {
			s, err := relation.Select(r, pred)
			if err != nil {
				return nil, err
			}
			rels[i] = s
		}
	}
	// Eliminate all other variables in min-fill order.
	schemas := make([]relation.VarSet, len(rels))
	for i, r := range rels {
		schemas[i] = r.Vars()
	}
	order := graph.MinFillOrder(graph.VariableGraph(schemas))
	live := rels
	for _, vj := range order {
		if vj == target {
			continue
		}
		var with, rest []*relation.Relation
		for _, r := range live {
			if r.HasVar(vj) {
				with = append(with, r)
			} else {
				rest = append(rest, r)
			}
		}
		if len(with) == 0 {
			continue
		}
		j, err := relation.ProductJoinAll(semiring.SumProduct, with...)
		if err != nil {
			return nil, err
		}
		m, err := relation.MarginalizeOut(semiring.SumProduct, j, vj)
		if err != nil {
			return nil, err
		}
		live = append(rest, m)
	}
	j, err := relation.ProductJoinAll(semiring.SumProduct, live...)
	if err != nil {
		return nil, err
	}
	m, err := relation.Marginalize(semiring.SumProduct, j, []string{target})
	if err != nil {
		return nil, err
	}
	// Normalize to a conditional distribution.
	total := 0.0
	for i := 0; i < m.Len(); i++ {
		total += m.Measure(i)
	}
	if total <= 0 {
		return nil, fmt.Errorf("bayes: evidence has probability zero")
	}
	for i := 0; i < m.Len(); i++ {
		m.SetMeasure(i, m.Measure(i)/total)
	}
	m.SetName(fmt.Sprintf("Pr(%s|evidence)", target))
	return m, nil
}

// Random generates a random network: nodes x1..xN in topological order,
// each with up to maxParents parents drawn from its predecessors and a
// random CPT with Dirichlet-ish rows.
func Random(rng *rand.Rand, nodes, maxParents, domain int) (*Network, error) {
	if nodes < 1 || domain < 2 || maxParents < 0 {
		return nil, fmt.Errorf("bayes: invalid random network spec (%d nodes, %d parents, domain %d)",
			nodes, maxParents, domain)
	}
	n := New()
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("x%d", i+1)
		var parents []string
		if i > 0 {
			k := rng.Intn(min(maxParents, i) + 1)
			perm := rng.Perm(i)
			for _, p := range perm[:k] {
				parents = append(parents, fmt.Sprintf("x%d", p+1))
			}
			sort.Strings(parents)
		}
		rows := 1
		for _, p := range parents {
			pn, _ := n.Node(p)
			rows *= pn.Domain
		}
		cpt := make([]float64, rows*domain)
		for r := 0; r < rows; r++ {
			total := 0.0
			for v := 0; v < domain; v++ {
				cpt[r*domain+v] = rng.Float64() + 0.05
				total += cpt[r*domain+v]
			}
			for v := 0; v < domain; v++ {
				cpt[r*domain+v] /= total
			}
		}
		if err := n.AddNode(name, domain, parents, cpt); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Figure2 builds the paper's example network: binary A, B, C, D with
// Pr(A,B,C,D) = Pr(A)·Pr(B|A)·Pr(C|A)·Pr(D|B,C).
func Figure2() *Network {
	n := New()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(n.AddNode("A", 2, nil, []float64{0.6, 0.4}))
	must(n.AddNode("B", 2, []string{"A"}, []float64{0.7, 0.3, 0.2, 0.8}))
	must(n.AddNode("C", 2, []string{"A"}, []float64{0.9, 0.1, 0.4, 0.6}))
	must(n.AddNode("D", 2, []string{"B", "C"}, []float64{
		0.99, 0.01,
		0.7, 0.3,
		0.5, 0.5,
		0.05, 0.95,
	}))
	return n
}
