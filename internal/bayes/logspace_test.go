package bayes

import (
	"math"
	"math/rand"
	"testing"

	"mpf/internal/infer"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// logRelations converts a network's CPT factors to log space.
func logRelations(t *testing.T, n *Network) []*relation.Relation {
	t.Helper()
	rels, err := n.Relations()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rels {
		for i := 0; i < r.Len(); i++ {
			r.SetMeasure(i, math.Log(r.Measure(i)))
		}
	}
	return rels
}

// TestLogSpaceInferenceMatchesLinear: the same marginalization query over
// log-space factors with the log-sum-exp semiring equals the linear-space
// answer after exponentiation.
func TestLogSpaceInferenceMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		n, err := Random(rng, 6, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		linRels, _ := n.Relations()
		logRels := logRelations(t, n)

		linJoint, err := relation.ProductJoinAll(semiring.SumProduct, linRels...)
		if err != nil {
			t.Fatal(err)
		}
		logJoint, err := relation.ProductJoinAll(semiring.LogSumExp, logRels...)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range []string{"x1", "x4", "x6"} {
			lin, err := relation.Marginalize(semiring.SumProduct, linJoint, []string{target})
			if err != nil {
				t.Fatal(err)
			}
			lg, err := relation.Marginalize(semiring.LogSumExp, logJoint, []string{target})
			if err != nil {
				t.Fatal(err)
			}
			exp := lg.Clone()
			for i := 0; i < exp.Len(); i++ {
				exp.SetMeasure(i, math.Exp(exp.Measure(i)))
			}
			if !relation.Equal(exp, lin, 0, 1e-9) {
				t.Fatalf("trial %d target %s: log-space marginal differs from linear", trial, target)
			}
		}
	}
}

// TestLogSpaceAvoidsUnderflow: a long chain of tiny probabilities
// underflows to 0 in linear space but stays finite in log space.
func TestLogSpaceAvoidsUnderflow(t *testing.T) {
	const factors = 30
	const p = 1e-15
	// Chain of single-variable factors all over the same variable: the
	// product is p^30 = 1e-450, far below the float64 minimum.
	mkLin := func() []*relation.Relation {
		var out []*relation.Relation
		for i := 0; i < factors; i++ {
			r, _ := relation.FromRows("f", []relation.Attr{{Name: "x", Domain: 2}},
				[][]int32{{0}, {1}}, []float64{p, p})
			out = append(out, r)
		}
		return out
	}
	lin, err := relation.ProductJoinAll(semiring.SumProduct, mkLin()...)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Measure(0) != 0 {
		t.Fatalf("linear space should underflow to 0, got %v", lin.Measure(0))
	}
	logFactors := mkLin()
	for _, r := range logFactors {
		for i := 0; i < r.Len(); i++ {
			r.SetMeasure(i, math.Log(r.Measure(i)))
		}
	}
	lg, err := relation.ProductJoinAll(semiring.LogSumExp, logFactors...)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(factors) * math.Log(p)
	if math.Abs(lg.Measure(0)-want) > 1e-6 {
		t.Fatalf("log-space product = %v, want %v", lg.Measure(0), want)
	}
	// Normalization still works through the marginal: both x values carry
	// equal mass, so Pr(x=0) = 0.5 after log-space marginalization.
	total, err := relation.Marginalize(semiring.LogSumExp, lg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cond := math.Exp(lg.Measure(0) - total.Measure(0))
	if math.Abs(cond-0.5) > 1e-9 {
		t.Fatalf("log-space conditional = %v, want 0.5", cond)
	}
}

// TestLogSpaceBPInvariant: the full junction-tree + BP pipeline works
// over log-space factors (log-sum-exp is a Divider semiring). Note the
// Figure 2 family factors {A}, {A,B}, {A,C}, {B,C,D} are NOT an acyclic
// database schema (AB/AC/BCD form a cycle) — exactly why BNs need the
// junction-tree transform before propagation.
func TestLogSpaceBPInvariant(t *testing.T) {
	n := Figure2()
	logRels := logRelations(t, n)
	cs, err := infer.JunctionTreeSchema(semiring.LogSumExp, logRels, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bpOverLog(cs.Relations)
	if err != nil {
		t.Fatal(err)
	}
	// Exponentiated marginals equal the linear-space joint marginals.
	j, _ := n.Joint()
	for _, s := range res {
		for _, x := range s.Vars().Sorted() {
			got, err := relation.Marginalize(semiring.LogSumExp, s, []string{x})
			if err != nil {
				t.Fatal(err)
			}
			expd := got.Clone()
			for i := 0; i < expd.Len(); i++ {
				expd.SetMeasure(i, math.Exp(expd.Measure(i)))
			}
			want, _ := relation.Marginalize(semiring.SumProduct, j, []string{x})
			if !relation.Equal(expd, want, 0, 1e-9) {
				t.Fatalf("log-space BP invariant violated for %s", x)
			}
		}
	}
}

// bpOverLog runs BP with the log-sum-exp semiring.
func bpOverLog(rels []*relation.Relation) ([]*relation.Relation, error) {
	res, err := infer.BeliefPropagation(semiring.LogSumExp, rels)
	if err != nil {
		return nil, err
	}
	return res.Relations, nil
}
