package bayes

import (
	"math"
	"math/rand"
	"testing"

	"mpf/internal/relation"
)

// bruteMPE finds the most probable joint assignment by enumeration.
func bruteMPE(t *testing.T, n *Network, evidence map[string]int32) (map[string]int32, float64) {
	t.Helper()
	j, err := n.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if len(evidence) > 0 {
		pred := make(relation.Predicate, len(evidence))
		for v, val := range evidence {
			pred[v] = val
		}
		j, err = relation.Select(j, pred)
		if err != nil {
			t.Fatal(err)
		}
	}
	bestIdx, bestP := -1, -1.0
	for i := 0; i < j.Len(); i++ {
		if j.Measure(i) > bestP {
			bestP = j.Measure(i)
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		t.Fatal("no assignment satisfies evidence")
	}
	out := make(map[string]int32)
	for col, a := range j.Attrs() {
		out[a.Name] = j.Value(bestIdx, col)
	}
	return out, bestP
}

func TestMPEFigure2(t *testing.T) {
	n := Figure2()
	got, p, err := n.MPE(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, wantP := bruteMPE(t, n, nil)
	if math.Abs(p-wantP) > 1e-9 {
		t.Fatalf("MPE probability %v, want %v (assignment %v)", p, wantP, got)
	}
	// The returned assignment must actually achieve that probability.
	j, _ := n.Joint()
	pred := make(relation.Predicate, len(got))
	for v, val := range got {
		pred[v] = val
	}
	sel, _ := relation.Select(j, pred)
	if sel.Len() != 1 || math.Abs(sel.Measure(0)-p) > 1e-9 {
		t.Fatalf("assignment %v has probability %v, claimed %v", got, sel.Measure(0), p)
	}
}

func TestMPEWithEvidence(t *testing.T) {
	n := Figure2()
	evidence := map[string]int32{"D": 1}
	got, p, err := n.MPE(evidence)
	if err != nil {
		t.Fatal(err)
	}
	if got["D"] != 1 {
		t.Fatal("evidence not respected")
	}
	_, wantP := bruteMPE(t, n, evidence)
	if math.Abs(p-wantP) > 1e-9 {
		t.Fatalf("MPE probability %v, want %v", p, wantP)
	}
}

func TestMPERandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n, err := Random(rng, 5, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		evidence := map[string]int32{}
		if trial%2 == 0 {
			evidence["x2"] = int32(rng.Intn(2))
		}
		got, p, err := n.MPE(evidence)
		if err != nil {
			t.Fatal(err)
		}
		_, wantP := bruteMPE(t, n, evidence)
		if math.Abs(p-wantP) > 1e-9 {
			t.Fatalf("trial %d: MPE probability %v, want %v (assignment %v)", trial, p, wantP, got)
		}
	}
}

func TestMPEFullyObserved(t *testing.T) {
	n := Figure2()
	evidence := map[string]int32{"A": 0, "B": 0, "C": 0, "D": 0}
	got, p, err := n.MPE(evidence)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 * 0.7 * 0.9 * 0.99
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("fully observed probability %v, want %v", p, want)
	}
	for v, val := range evidence {
		if got[v] != val {
			t.Fatal("fully observed assignment changed")
		}
	}
}

func TestMPEValidation(t *testing.T) {
	n := Figure2()
	if _, _, err := n.MPE(map[string]int32{"Z": 0}); err == nil {
		t.Fatal("unknown evidence variable should error")
	}
	if _, _, err := n.MPE(map[string]int32{"A": 7}); err == nil {
		t.Fatal("out-of-domain evidence should error")
	}
}
