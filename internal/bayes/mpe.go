package bayes

import (
	"fmt"

	"mpf/internal/graph"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// maxMarginal computes the max-product "marginal" of the network onto
// target under the given evidence: for each value of target, the maximum
// joint probability achievable. It is the MaxProduct-semiring MPF query
// "select target, MAX(p) from joint where evidence group by target" —
// the Viterbi analogue of ExactMarginal.
func (n *Network) maxMarginal(target string, evidence map[string]int32) (*relation.Relation, error) {
	rels, err := n.Relations()
	if err != nil {
		return nil, err
	}
	for i, r := range rels {
		pred := make(relation.Predicate)
		for v, val := range evidence {
			if r.HasVar(v) {
				pred[v] = val
			}
		}
		if len(pred) > 0 {
			s, err := relation.Select(r, pred)
			if err != nil {
				return nil, err
			}
			rels[i] = s
		}
	}
	schemas := make([]relation.VarSet, len(rels))
	for i, r := range rels {
		schemas[i] = r.Vars()
	}
	order := graph.MinFillOrder(graph.VariableGraph(schemas))
	live := rels
	for _, vj := range order {
		if vj == target {
			continue
		}
		var with, rest []*relation.Relation
		for _, r := range live {
			if r.HasVar(vj) {
				with = append(with, r)
			} else {
				rest = append(rest, r)
			}
		}
		if len(with) == 0 {
			continue
		}
		j, err := relation.ProductJoinAll(semiring.MaxProduct, with...)
		if err != nil {
			return nil, err
		}
		m, err := relation.MarginalizeOut(semiring.MaxProduct, j, vj)
		if err != nil {
			return nil, err
		}
		live = append(rest, m)
	}
	j, err := relation.ProductJoinAll(semiring.MaxProduct, live...)
	if err != nil {
		return nil, err
	}
	return relation.Marginalize(semiring.MaxProduct, j, []string{target})
}

// MPE computes a most probable explanation: a complete assignment of all
// variables, consistent with the evidence, maximizing the joint
// probability; the probability is returned alongside. It decodes the
// assignment variable by variable: each step computes the max-product
// marginal of one undecided variable given everything fixed so far and
// commits to its argmax (ties broken toward the smallest value), which is
// the standard MPF-query formulation of Viterbi decoding over the
// MaxProduct semiring.
func (n *Network) MPE(evidence map[string]int32) (map[string]int32, float64, error) {
	for v, val := range evidence {
		nd, ok := n.byName[v]
		if !ok {
			return nil, 0, fmt.Errorf("bayes: unknown evidence variable %s", v)
		}
		if val < 0 || int(val) >= nd.Domain {
			return nil, 0, fmt.Errorf("bayes: evidence %s=%d out of domain", v, val)
		}
	}
	fixed := make(map[string]int32, len(n.nodes))
	for v, val := range evidence {
		fixed[v] = val
	}
	best := 0.0
	for _, nd := range n.nodes {
		if _, done := fixed[nd.Name]; done {
			continue
		}
		m, err := n.maxMarginal(nd.Name, fixed)
		if err != nil {
			return nil, 0, err
		}
		if m.Len() == 0 {
			return nil, 0, fmt.Errorf("bayes: evidence has probability zero")
		}
		argmax := int32(0)
		maxVal := semiring.MaxProduct.Zero()
		m.Sort()
		for i := 0; i < m.Len(); i++ {
			if m.Measure(i) > maxVal {
				maxVal = m.Measure(i)
				argmax = m.Value(i, 0)
			}
		}
		fixed[nd.Name] = argmax
		best = maxVal
	}
	if len(evidence) == len(n.nodes) {
		// Everything observed: the "explanation" is the evidence itself;
		// compute its probability directly.
		joint, err := n.Joint()
		if err != nil {
			return nil, 0, err
		}
		pred := make(relation.Predicate, len(evidence))
		for v, val := range evidence {
			pred[v] = val
		}
		sel, err := relation.Select(joint, pred)
		if err != nil {
			return nil, 0, err
		}
		if sel.Len() == 0 {
			return nil, 0, fmt.Errorf("bayes: evidence has probability zero")
		}
		best = sel.Measure(0)
	}
	if best <= 0 {
		return nil, 0, fmt.Errorf("bayes: evidence has probability zero")
	}
	return fixed, best, nil
}
