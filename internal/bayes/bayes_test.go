package bayes

import (
	"math"
	"math/rand"
	"testing"

	"mpf/internal/infer"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestAddNodeValidation(t *testing.T) {
	n := New()
	if err := n.AddNode("", 2, nil, []float64{0.5, 0.5}); err == nil {
		t.Fatal("empty name should error")
	}
	if err := n.AddNode("a", 1, nil, []float64{1}); err == nil {
		t.Fatal("domain 1 should error")
	}
	if err := n.AddNode("a", 2, []string{"ghost"}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("unknown parent should error")
	}
	if err := n.AddNode("a", 2, nil, []float64{0.5}); err == nil {
		t.Fatal("short CPT should error")
	}
	if err := n.AddNode("a", 2, nil, []float64{0.5, 0.6}); err == nil {
		t.Fatal("non-normalized row should error")
	}
	if err := n.AddNode("a", 2, nil, []float64{-0.5, 1.5}); err == nil {
		t.Fatal("negative probability should error")
	}
	if err := n.AddNode("a", 2, nil, []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("a", 2, nil, []float64{0.5, 0.5}); err == nil {
		t.Fatal("duplicate node should error")
	}
}

func TestFigure2JointSumsToOne(t *testing.T) {
	n := Figure2()
	j, err := n.Joint()
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 16 {
		t.Fatalf("joint has %d rows, want 2^4", j.Len())
	}
	total := 0.0
	for i := 0; i < j.Len(); i++ {
		total += j.Measure(i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("joint sums to %v", total)
	}
}

// TestFigure2PaperQuery reproduces the §4 example query
// "select C, SUM(p) from joint where A=0 group by C" and checks it equals
// Pr(C|A=0) after normalization, which for this CPT is exactly Pr(C|A=0)
// = (0.9, 0.1).
func TestFigure2PaperQuery(t *testing.T) {
	n := Figure2()
	j, _ := n.Joint()
	sel, _ := relation.Select(j, relation.Predicate{"A": 0})
	m, _ := relation.Marginalize(semiring.SumProduct, sel, []string{"C"})
	// Unnormalized: Pr(C, A=0) = Pr(A=0)·Pr(C|A=0).
	want := map[int32]float64{0: 0.6 * 0.9, 1: 0.6 * 0.1}
	for i := 0; i < m.Len(); i++ {
		if diff := math.Abs(m.Measure(i) - want[m.Value(i, 0)]); diff > 1e-9 {
			t.Fatalf("Pr(C=%d,A=0) = %v, want %v", m.Value(i, 0), m.Measure(i), want[m.Value(i, 0)])
		}
	}
	// Conditional via ExactMarginal.
	cond, err := n.ExactMarginal("C", map[string]int32{"A": 0})
	if err != nil {
		t.Fatal(err)
	}
	wantCond, _ := relation.FromRows("w", []relation.Attr{{Name: "C", Domain: 2}},
		[][]int32{{0}, {1}}, []float64{0.9, 0.1})
	if !relation.Equal(cond, wantCond, 0, 1e-9) {
		t.Fatalf("Pr(C|A=0) = %v", cond)
	}
}

func TestExactMarginalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n, err := Random(rng, 6, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		j, err := n.Joint()
		if err != nil {
			t.Fatal(err)
		}
		evidence := map[string]int32{"x2": int32(rng.Intn(2))}
		target := "x5"
		got, err := n.ExactMarginal(target, evidence)
		if err != nil {
			t.Fatal(err)
		}
		sel, _ := relation.Select(j, relation.Predicate{"x2": evidence["x2"]})
		m, _ := relation.Marginalize(semiring.SumProduct, sel, []string{target})
		total := 0.0
		for i := 0; i < m.Len(); i++ {
			total += m.Measure(i)
		}
		for i := 0; i < m.Len(); i++ {
			m.SetMeasure(i, m.Measure(i)/total)
		}
		if !relation.Equal(got, m, 0, 1e-9) {
			t.Fatalf("trial %d: VE marginal differs from brute force", trial)
		}
	}
}

func TestExactMarginalValidation(t *testing.T) {
	n := Figure2()
	if _, err := n.ExactMarginal("Z", nil); err == nil {
		t.Fatal("unknown target should error")
	}
	if _, err := n.ExactMarginal("C", map[string]int32{"Z": 0}); err == nil {
		t.Fatal("unknown evidence should error")
	}
	if _, err := n.ExactMarginal("C", map[string]int32{"A": 5}); err == nil {
		t.Fatal("out-of-domain evidence should error")
	}
}

func TestRelationsAreValidCPTFactors(t *testing.T) {
	n := Figure2()
	rels, err := n.Relations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 4 {
		t.Fatalf("want 4 factors, got %d", len(rels))
	}
	// Each factor is complete and each conditional row sums to 1 when
	// marginalizing out the node itself.
	for i, nd := range n.Nodes() {
		r := rels[i]
		if !r.IsComplete() {
			t.Fatalf("factor %s not complete", nd.Name)
		}
		if len(nd.Parents) == 0 {
			continue
		}
		m, _ := relation.Marginalize(semiring.SumProduct, r, nd.Parents)
		for k := 0; k < m.Len(); k++ {
			if math.Abs(m.Measure(k)-1) > 1e-9 {
				t.Fatalf("factor %s conditional row sums to %v", nd.Name, m.Measure(k))
			}
		}
	}
}

func TestSamplingApproximatesMarginals(t *testing.T) {
	n := Figure2()
	rng := rand.New(rand.NewSource(3))
	const count = 200000
	counts := map[string]int{}
	for i := 0; i < count; i++ {
		s := n.Sample(rng)
		if s["A"] == 0 {
			counts["A0"]++
		}
		if s["D"] == 1 {
			counts["D1"]++
		}
	}
	if got := float64(counts["A0"]) / count; math.Abs(got-0.6) > 0.01 {
		t.Fatalf("Pr(A=0) ≈ %v, want 0.6", got)
	}
	// True Pr(D=1) from the joint.
	j, _ := n.Joint()
	m, _ := relation.Marginalize(semiring.SumProduct, j, []string{"D"})
	var want float64
	for i := 0; i < m.Len(); i++ {
		if m.Value(i, 0) == 1 {
			want = m.Measure(i)
		}
	}
	if got := float64(counts["D1"]) / count; math.Abs(got-want) > 0.01 {
		t.Fatalf("Pr(D=1) ≈ %v, want %v", got, want)
	}
}

func TestSampleRelationCounts(t *testing.T) {
	n := Figure2()
	rng := rand.New(rand.NewSource(4))
	const count = 5000
	r, err := n.SampleRelation(rng, count)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < r.Len(); i++ {
		total += r.Measure(i)
	}
	if int(total) != count {
		t.Fatalf("counts sum to %v, want %d", total, count)
	}
	if err := r.CheckFD(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateParametersRecoversCPTs(t *testing.T) {
	n := Figure2()
	rng := rand.New(rand.NewSource(5))
	data, err := n.SampleRelation(rng, 300000)
	if err != nil {
		t.Fatal(err)
	}
	est, err := n.EstimateParameters(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range n.Nodes() {
		got, _ := est.Node(nd.Name)
		for i := range nd.CPT {
			if math.Abs(got.CPT[i]-nd.CPT[i]) > 0.02 {
				t.Fatalf("node %s CPT[%d] = %v, want ≈ %v", nd.Name, i, got.CPT[i], nd.CPT[i])
			}
		}
	}
}

func TestEstimateParametersValidation(t *testing.T) {
	n := Figure2()
	small := relation.MustNew("d", []relation.Attr{{Name: "A", Domain: 2}})
	if _, err := n.EstimateParameters(small, 1); err == nil {
		t.Fatal("data missing variables should error")
	}
	full, _ := n.SampleRelation(rand.New(rand.NewSource(6)), 100)
	if _, err := n.EstimateParameters(full, -1); err == nil {
		t.Fatal("negative smoothing should error")
	}
}

func TestRandomNetworkShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, err := Random(rng, 10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Nodes()) != 10 {
		t.Fatalf("nodes = %d", len(n.Nodes()))
	}
	for i, nd := range n.Nodes() {
		if len(nd.Parents) > 3 {
			t.Fatalf("node %d has %d parents", i, len(nd.Parents))
		}
	}
	if _, err := Random(rng, 0, 1, 2); err == nil {
		t.Fatal("zero nodes should error")
	}
}

// TestBNWithVECache ties §4 to §6: build the Figure 2 network's MPF view,
// cache it with VE-cache, and answer every single-variable marginal from
// the cache.
func TestBNWithVECache(t *testing.T) {
	n := Figure2()
	rels, err := n.Relations()
	if err != nil {
		t.Fatal(err)
	}
	cache, err := infer.BuildVECache(semiring.SumProduct, rels, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := n.Joint()
	for _, v := range n.Vars() {
		got, err := cache.Answer(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, j, []string{v})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("cached marginal of %s wrong", v)
		}
	}
}

// TestEstimateFromFamilyCounts: decomposed per-family counts — each an
// MPF marginalization of the sample table — recover the same CPTs as the
// joint-data path.
func TestEstimateFromFamilyCounts(t *testing.T) {
	n := Figure2()
	rng := rand.New(rand.NewSource(15))
	data, err := n.SampleRelation(rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]*relation.Relation{}
	for _, nd := range n.Nodes() {
		family := append(append([]string(nil), nd.Parents...), nd.Name)
		fam, err := relation.Marginalize(semiring.SumProduct, data, family)
		if err != nil {
			t.Fatal(err)
		}
		counts[nd.Name] = fam
	}
	viaFam, err := n.EstimateFromFamilyCounts(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaJoint, err := n.EstimateParameters(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, nd := range n.Nodes() {
		a, _ := viaFam.Node(nd.Name)
		b, _ := viaJoint.Node(nd.Name)
		for i := range a.CPT {
			if math.Abs(a.CPT[i]-b.CPT[i]) > 1e-12 {
				t.Fatalf("node %s CPT[%d]: family %v vs joint %v", nd.Name, i, a.CPT[i], b.CPT[i])
			}
		}
	}
}

func TestEstimateFromFamilyCountsValidation(t *testing.T) {
	n := Figure2()
	if _, err := n.EstimateFromFamilyCounts(nil, 1); err == nil {
		t.Fatal("missing count relations should error")
	}
	bad := map[string]*relation.Relation{}
	for _, nd := range n.Nodes() {
		bad[nd.Name] = relation.MustNew("x", []relation.Attr{{Name: "Q", Domain: 2}})
	}
	if _, err := n.EstimateFromFamilyCounts(bad, 1); err == nil {
		t.Fatal("count relation missing family variables should error")
	}
	good := map[string]*relation.Relation{}
	data, _ := n.SampleRelation(rand.New(rand.NewSource(16)), 100)
	for _, nd := range n.Nodes() {
		family := append(append([]string(nil), nd.Parents...), nd.Name)
		fam, _ := relation.Marginalize(semiring.SumProduct, data, family)
		good[nd.Name] = fam
	}
	if _, err := n.EstimateFromFamilyCounts(good, -1); err == nil {
		t.Fatal("negative smoothing should error")
	}
}
