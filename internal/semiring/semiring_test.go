package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// almostEqual tolerates floating-point error from reassociation.
func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// sample draws a measure valid for the given semiring. Bool semiring only
// admits {0,1}; product semirings get non-negative measures so that
// distributivity of min/max over × holds.
func sample(s Semiring, r *rand.Rand) float64 {
	switch s.Name() {
	case "bool-or-and":
		return float64(r.Intn(2))
	case "min-product", "max-product", "sum-product":
		return r.Float64() * 10
	default:
		return r.Float64()*20 - 10
	}
}

func TestSemiringLaws(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 2000; i++ {
				a, b, c := sample(s, r), sample(s, r), sample(s, r)
				if got, want := s.Add(a, b), s.Add(b, a); !almostEqual(got, want) {
					t.Fatalf("Add not commutative: Add(%v,%v)=%v, Add(%v,%v)=%v", a, b, got, b, a, want)
				}
				if got, want := s.Mul(a, b), s.Mul(b, a); !almostEqual(got, want) {
					t.Fatalf("Mul not commutative: %v vs %v", got, want)
				}
				if got, want := s.Add(s.Add(a, b), c), s.Add(a, s.Add(b, c)); !almostEqual(got, want) {
					t.Fatalf("Add not associative: %v vs %v", got, want)
				}
				if got, want := s.Mul(s.Mul(a, b), c), s.Mul(a, s.Mul(b, c)); !almostEqual(got, want) {
					t.Fatalf("Mul not associative: %v vs %v", got, want)
				}
				if got := s.Add(a, s.Zero()); !almostEqual(got, a) {
					t.Fatalf("Zero not additive identity: Add(%v, Zero)=%v", a, got)
				}
				if got := s.Mul(a, s.One()); !almostEqual(got, a) {
					t.Fatalf("One not multiplicative identity: Mul(%v, One)=%v", a, got)
				}
				lhs := s.Mul(a, s.Add(b, c))
				rhs := s.Add(s.Mul(a, b), s.Mul(a, c))
				if !almostEqual(lhs, rhs) {
					t.Fatalf("Mul does not distribute over Add: a=%v b=%v c=%v lhs=%v rhs=%v", a, b, c, lhs, rhs)
				}
			}
		})
	}
}

func TestDividerInverts(t *testing.T) {
	for _, s := range All() {
		d, ok := s.(Divider)
		if !ok {
			continue
		}
		r := rand.New(rand.NewSource(2))
		for i := 0; i < 2000; i++ {
			a, b := sample(s, r), sample(s, r)
			if s.Name() == "sum-product" || s.Name() == "max-product" {
				if b == 0 {
					continue
				}
			}
			q := d.Div(s.Mul(a, b), b)
			if !almostEqual(q, a) {
				t.Fatalf("%s: Div(Mul(%v,%v), %v) = %v, want %v", s.Name(), a, b, b, q, a)
			}
		}
	}
}

func TestDivByAbsorbingElement(t *testing.T) {
	if got := SumProduct.(Divider).Div(3, 0); got != 0 {
		t.Fatalf("sum-product Div(3,0) = %v, want 0", got)
	}
	if got := MaxProduct.(Divider).Div(3, 0); got != 0 {
		t.Fatalf("max-product Div(3,0) = %v, want 0", got)
	}
}

func TestSumAndProductFolds(t *testing.T) {
	if got := Sum(SumProduct, 1, 2, 3); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := Sum(SumProduct); got != 0 {
		t.Fatalf("empty Sum = %v, want 0", got)
	}
	if got := Product(SumProduct, 2, 3, 4); got != 24 {
		t.Fatalf("Product = %v, want 24", got)
	}
	if got := Product(MinSum, 2, 3); got != 5 {
		t.Fatalf("min-sum Product = %v, want 5", got)
	}
	if got := Sum(MinProduct, 4, 2, 9); got != 2 {
		t.Fatalf("min-product Sum = %v, want 2", got)
	}
	if got := Sum(MaxSum); !math.IsInf(got, -1) {
		t.Fatalf("empty max-sum Sum = %v, want -Inf", got)
	}
}

func TestByName(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Fatalf("ByName(%q) returned %q", s.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}

func TestBoolSemiringTruthTable(t *testing.T) {
	b := BoolOrAnd
	cases := []struct{ x, y, or, and float64 }{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := b.Add(c.x, c.y); got != c.or {
			t.Fatalf("or(%v,%v)=%v want %v", c.x, c.y, got, c.or)
		}
		if got := b.Mul(c.x, c.y); got != c.and {
			t.Fatalf("and(%v,%v)=%v want %v", c.x, c.y, got, c.and)
		}
	}
	// Nonzero inputs are treated as truthy.
	if got := b.Add(0, 7); got != 1 {
		t.Fatalf("or(0,7)=%v want 1", got)
	}
	if got := b.Mul(3, 7); got != 1 {
		t.Fatalf("and(3,7)=%v want 1", got)
	}
}

// TestQuickDistributivitySumProduct is a testing/quick property over the
// unrestricted real semiring, complementing the loop-based checks.
func TestQuickDistributivitySumProduct(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		// Bound magnitude to avoid overflow-induced false failures.
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 || math.Abs(c) > 1e6 {
			return true
		}
		s := SumProduct
		return almostEqual(s.Mul(a, s.Add(b, c)), s.Add(s.Mul(a, b), s.Mul(a, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestFoldAddMatchesIteratedAdd is the property behind run-level measure
// folding: whenever a semiring's FoldAdd reports ok, its closed form must
// be BIT-identical to the k-fold left iteration of Add — the executor
// substitutes one for the other inside byte-identity contracts, so
// "close" is not close enough. Draws mix integral measures (where the
// exact-sum shortcut engages) with arbitrary floats (where it must
// decline or still match exactly).
func TestFoldAddMatchesIteratedAdd(t *testing.T) {
	for _, s := range All() {
		rf, ok := s.(RunFolder)
		if !ok {
			continue
		}
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			folded := 0
			for i := 0; i < 5000; i++ {
				acc := sample(s, r)
				v := sample(s, r)
				if i%2 == 0 {
					// Integral values exercise the exact-sum closed form.
					acc = math.Trunc(acc * 10)
					v = math.Trunc(v * 10)
				}
				k := 1 + r.Intn(64)
				res, ok := rf.FoldAdd(acc, v, k)
				if !ok {
					continue
				}
				folded++
				want := acc
				for j := 0; j < k; j++ {
					want = s.Add(want, v)
				}
				if math.Float64bits(res) != math.Float64bits(want) {
					t.Fatalf("%s: FoldAdd(%v, %v, %d) = %v, iterated Add = %v (bits differ)",
						s.Name(), acc, v, k, res, want)
				}
			}
			if folded == 0 {
				t.Fatalf("%s: FoldAdd never engaged across 5000 draws", s.Name())
			}
		})
	}
}

// TestFoldAddDeclinesInexactSums pins the guard of the exact-sum closed
// form: magnitudes near 2^53 and fractional values where k·v reassociates
// differently from iterated addition must be declined (ok = false), never
// silently approximated.
func TestFoldAddDeclinesInexactSums(t *testing.T) {
	rf := SumProduct.(RunFolder)
	if _, ok := rf.FoldAdd(math.Ldexp(1, 53), 3, 4); ok {
		t.Fatal("sum-product folded an accumulator past the exact-integer range")
	}
	if _, ok := rf.FoldAdd(0, math.Ldexp(1, 51), 8); ok {
		t.Fatal("sum-product folded a span whose total leaves the exact-integer range")
	}
	// Fractional values may fold ONLY if multiplication reproduces the
	// iterated sum bit for bit; 0.1 famously does not.
	if res, ok := rf.FoldAdd(0, 0.1, 3); ok {
		want := 0.1 + 0.1 + 0.1
		if math.Float64bits(res) != math.Float64bits(want) {
			t.Fatalf("sum-product folded 3×0.1 inexactly: %v vs %v", res, want)
		}
	}
}
