// Package semiring defines the commutative semirings over which MPF
// (Marginalize-a-Product-Function) queries are evaluated.
//
// An MPF query combines functional relations with a multiplicative
// operation (the product join) and collapses sub-domains with an additive
// aggregate (the marginalizing GroupBy). The optimization theory of the
// paper — pushing GroupBy nodes through product joins — is sound exactly
// when the two operations form a commutative semiring: both operations are
// associative and commutative, the additive operation distributes over the
// multiplicative one, and identity elements exist for both.
//
// Measures are represented as float64 throughout. A Semiring supplies the
// two operations and their identities; semirings whose multiplicative
// structure admits division (semifields) additionally implement Divider,
// which Belief Propagation requires for its update semijoins.
package semiring

import (
	"fmt"
	"math"
)

// Semiring is a commutative semiring over float64 measures.
//
// Implementations must satisfy, for all a, b, c:
//
//	Add(a,b) == Add(b,a)                 Mul(a,b) == Mul(b,a)
//	Add(Add(a,b),c) == Add(a,Add(b,c))   Mul(Mul(a,b),c) == Mul(a,Mul(b,c))
//	Add(a, Zero()) == a                  Mul(a, One()) == a
//	Mul(a, Add(b,c)) == Add(Mul(a,b), Mul(a,c))
//
// These laws are verified by property tests in this package.
type Semiring interface {
	// Add is the additive (aggregation) operation.
	Add(a, b float64) float64
	// Mul is the multiplicative (product-join) operation.
	Mul(a, b float64) float64
	// Zero is the additive identity. It is also the value an aggregation
	// over an empty group would produce.
	Zero() float64
	// One is the multiplicative identity; non-functional relations behave
	// as functional relations whose implicit measure is One.
	One() float64
	// Name returns a short stable identifier such as "sum-product".
	Name() string
}

// Divider is implemented by semirings whose multiplicative monoid admits
// division (a semifield, minus the zero element). Belief Propagation's
// update semijoin divides previously propagated measures back out, so a
// workload cache can only be maintained over a Divider semiring.
type Divider interface {
	// Div returns the measure x such that Mul(b, x) == a, when defined.
	// Division by the multiplicative absorbing element (e.g. 0 in
	// sum-product) returns Zero-measure semantics defined per semiring.
	Div(a, b float64) float64
}

// RunFolder is implemented by semirings whose Add can fold k identical
// operands into an accumulator in O(1) with a result that is
// BIT-IDENTICAL to the iterated left fold
//
//	acc = Add(Add(...Add(acc, v)..., v), v)   (k applications)
//
// The executor's run-level measure folding relies on that exactness to
// keep columnar results byte-identical to row-at-a-time execution, so
// FoldAdd must return ok = false whenever the closed form could differ
// from the loop in even one bit (it then falls back to the loop).
// Idempotent Adds (min, max, ∨) fold unconditionally; floating-point
// sums fold only when every partial sum is provably exact.
type RunFolder interface {
	// FoldAdd returns the result of adding v into acc k times (k ≥ 1),
	// or ok = false when that cannot be computed exactly in O(1).
	FoldAdd(acc, v float64, k int) (res float64, ok bool)
}

// exactSumLimit bounds integer magnitudes whose float64 sums stay exact:
// every integer of magnitude below 2^53 is exactly representable, and the
// sum of two of them is exact whenever the result also stays below it.
const exactSumLimit = float64(1 << 53)

// foldExactSum is the shared FoldAdd for semirings whose Add is ordinary
// float64 addition. Adding ±0 any number of times equals adding it once.
// Otherwise the closed form acc + v·k is used only when acc and v are
// integers and |acc| + |v|·k < 2^53: by induction every partial sum is
// then an integer of exact magnitude, each iterated add is exact, and the
// closed form computes the same exact integer — bit-identical results.
// (NaN and ±Inf fail the integrality test and fall back to the loop.)
func foldExactSum(acc, v float64, k int) (float64, bool) {
	if v == 0 {
		return acc + v, true
	}
	if acc != math.Trunc(acc) || v != math.Trunc(v) {
		return 0, false
	}
	if math.Abs(acc)+math.Abs(v)*float64(k) >= exactSumLimit {
		return 0, false
	}
	return acc + v*float64(k), true
}

// sumProduct is the ordinary (ℝ, +, ×) semiring used for probability
// marginalization and for totals in decision-support queries.
type sumProduct struct{}

func (sumProduct) Add(a, b float64) float64 { return a + b }
func (sumProduct) Mul(a, b float64) float64 { return a * b }
func (sumProduct) Zero() float64            { return 0 }
func (sumProduct) One() float64             { return 1 }
func (sumProduct) Name() string             { return "sum-product" }

// Div implements Divider. Division by zero yields zero: in Belief
// Propagation a zero divisor can only arise from a measure that was itself
// multiplied in as zero, in which case the product is zero too and the
// correct quotient contribution is zero.
func (sumProduct) Div(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// FoldAdd implements RunFolder via the exact-integer-sum closed form.
func (sumProduct) FoldAdd(acc, v float64, k int) (float64, bool) { return foldExactSum(acc, v, k) }

// minProduct aggregates with min and combines with ×. It answers queries
// such as "minimum total investment" where the investment is a product of
// per-relation factors. Measures are assumed non-negative so that × is
// monotone and distributivity min(a·b, a·c) = a·min(b,c) holds.
type minProduct struct{}

func (minProduct) Add(a, b float64) float64 { return math.Min(a, b) }
func (minProduct) Mul(a, b float64) float64 { return a * b }
func (minProduct) Zero() float64            { return math.Inf(1) }
func (minProduct) One() float64             { return 1 }
func (minProduct) Name() string             { return "min-product" }

// FoldAdd implements RunFolder: min is idempotent, so k identical adds
// equal one (math.Min's NaN and signed-zero handling included).
func (s minProduct) FoldAdd(acc, v float64, k int) (float64, bool) { return s.Add(acc, v), true }

// maxProduct aggregates with max and combines with ×; the Viterbi semiring
// over non-negative measures (most-probable-explanation inference).
type maxProduct struct{}

func (maxProduct) Add(a, b float64) float64 { return math.Max(a, b) }
func (maxProduct) Mul(a, b float64) float64 { return a * b }
func (maxProduct) Zero() float64            { return math.Inf(-1) }
func (maxProduct) One() float64             { return 1 }
func (maxProduct) Name() string             { return "max-product" }

// FoldAdd implements RunFolder: max is idempotent.
func (s maxProduct) FoldAdd(acc, v float64, k int) (float64, bool) { return s.Add(acc, v), true }

// Div implements Divider for max-product (same caveats as sum-product).
func (maxProduct) Div(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// minSum is the tropical semiring (ℝ∪{+∞}, min, +): shortest paths,
// log-domain most-likely inference, and additive cost minimization.
type minSum struct{}

func (minSum) Add(a, b float64) float64 { return math.Min(a, b) }
func (minSum) Mul(a, b float64) float64 { return a + b }
func (minSum) Zero() float64            { return math.Inf(1) }
func (minSum) One() float64             { return 0 }
func (minSum) Name() string             { return "min-sum" }

// FoldAdd implements RunFolder: min is idempotent.
func (s minSum) FoldAdd(acc, v float64, k int) (float64, bool) { return s.Add(acc, v), true }

// Div implements Divider: the inverse of + is -.
func (minSum) Div(a, b float64) float64 { return a - b }

// maxSum is (ℝ∪{-∞}, max, +): longest paths and log-domain Viterbi.
type maxSum struct{}

func (maxSum) Add(a, b float64) float64 { return math.Max(a, b) }
func (maxSum) Mul(a, b float64) float64 { return a + b }
func (maxSum) Zero() float64            { return math.Inf(-1) }
func (maxSum) One() float64             { return 0 }
func (maxSum) Name() string             { return "max-sum" }

// FoldAdd implements RunFolder: max is idempotent.
func (s maxSum) FoldAdd(acc, v float64, k int) (float64, bool) { return s.Add(acc, v), true }

// Div implements Divider: the inverse of + is -.
func (maxSum) Div(a, b float64) float64 { return a - b }

// logSumExp is the sum-product semiring in log space: measures are
// log-probabilities, the multiplicative operation is +, and the additive
// operation is the numerically stable log-sum-exp. Marginalizing many
// small probabilities underflows in linear space; in log space the same
// MPF query stays stable (the standard trick for large Bayesian
// networks).
type logSumExp struct{}

func (logSumExp) Add(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func (logSumExp) Mul(a, b float64) float64 {
	// -Inf (log 0) absorbs, even against +Inf.
	if math.IsInf(a, -1) || math.IsInf(b, -1) {
		return math.Inf(-1)
	}
	return a + b
}

func (logSumExp) Zero() float64 { return math.Inf(-1) }
func (logSumExp) One() float64  { return 0 }
func (logSumExp) Name() string  { return "log-sum-exp" }

// Div implements Divider: division of probabilities is subtraction of
// logs; dividing by log 0 returns Zero (same convention as sum-product).
func (logSumExp) Div(a, b float64) float64 {
	if math.IsInf(b, -1) {
		return math.Inf(-1)
	}
	return a - b
}

// boolOrAnd is the ({0,1}, ∨, ∧) semiring mentioned in the paper: the
// product join becomes conjunction and marginalization becomes existential
// quantification (constraint satisfiability). Measures are 0 or 1.
type boolOrAnd struct{}

func (boolOrAnd) Add(a, b float64) float64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

func (boolOrAnd) Mul(a, b float64) float64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

func (boolOrAnd) Zero() float64 { return 0 }

// FoldAdd implements RunFolder: ∨ is idempotent.
func (s boolOrAnd) FoldAdd(acc, v float64, k int) (float64, bool) { return s.Add(acc, v), true }
func (boolOrAnd) One() float64                                    { return 1 }
func (boolOrAnd) Name() string                                    { return "bool-or-and" }

// Predefined semirings. They are stateless; the package-level variables may
// be shared freely across goroutines.
var (
	SumProduct Semiring = sumProduct{}
	MinProduct Semiring = minProduct{}
	MaxProduct Semiring = maxProduct{}
	MinSum     Semiring = minSum{}
	MaxSum     Semiring = maxSum{}
	LogSumExp  Semiring = logSumExp{}
	BoolOrAnd  Semiring = boolOrAnd{}
)

// All returns every predefined semiring, in a stable order. Intended for
// exhaustive property tests.
func All() []Semiring {
	return []Semiring{SumProduct, MinProduct, MaxProduct, MinSum, MaxSum, LogSumExp, BoolOrAnd}
}

// ByName returns the predefined semiring with the given Name.
func ByName(name string) (Semiring, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("semiring: unknown semiring %q", name)
}

// Sum folds Add over the measures, starting from Zero.
func Sum(s Semiring, measures ...float64) float64 {
	acc := s.Zero()
	for _, m := range measures {
		acc = s.Add(acc, m)
	}
	return acc
}

// Product folds Mul over the measures, starting from One.
func Product(s Semiring, measures ...float64) float64 {
	acc := s.One()
	for _, m := range measures {
		acc = s.Mul(acc, m)
	}
	return acc
}
