package core

import (
	"container/list"
	"sync"

	"mpf/internal/metrics"
	"mpf/internal/plan"
)

// planCache is the engine-level plan cache: an LRU from canonical query
// fingerprints (plan.QueryFingerprint prefixed with the optimizer's report
// name) to finished plans. Plans are immutable after optimization, so a
// cached *plan.Node is shared as-is between queries without copying.
//
// Invalidation is belt and braces. Lazily, keys embed base-table versions
// from the database's monotone version sequence, so a write makes every
// stale key unreachable — a reprobe after the write computes a new key and
// misses. Eagerly, invalidateTable removes entries depending on a written
// table so they stop occupying LRU capacity (versions never repeat, so an
// invalidated entry could never be hit again anyway).
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *planEntry
	entries map[string]*list.Element

	hits, misses, inserts, evictions, invalidations int64
}

// planEntry is one cached plan with the metadata needed for eager
// invalidation and for reporting without re-planning.
type planEntry struct {
	key     string
	p       *plan.Node
	planner string // report name of the planner that produced p
	tables  []string
}

// newPlanCache returns a plan cache bounded to n entries (n ≥ 1).
func newPlanCache(n int) *planCache {
	return &planCache{cap: n, lru: list.New(), entries: make(map[string]*list.Element)}
}

// lookup probes the cache, promoting a hit to most-recently-used.
func (c *planCache) lookup(key string) (*plan.Node, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, "", false
	}
	c.hits++
	c.lru.MoveToFront(el)
	e := el.Value.(*planEntry)
	return e.p, e.planner, true
}

// insert adopts a freshly optimized plan, evicting the least recently
// used entry beyond capacity. Re-inserting an existing key refreshes it.
func (c *planCache) insert(key string, p *plan.Node, planner string, tables []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value = &planEntry{key: key, p: p, planner: planner, tables: tables}
		return
	}
	c.entries[key] = c.lru.PushFront(&planEntry{key: key, p: p, planner: planner, tables: tables})
	c.inserts++
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).key)
		c.evictions++
	}
}

// invalidateTable removes every entry whose plan reads the table.
func (c *planCache) invalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*planEntry)
		for _, t := range e.tables {
			if t == table {
				c.lru.Remove(el)
				delete(c.entries, e.key)
				c.invalidations++
				break
			}
		}
		el = next
	}
}

// snapshot reports the cache state and counters for Database.Metrics.
func (c *planCache) snapshot() metrics.PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return metrics.PlanCacheStats{
		Enabled:       true,
		Entries:       int64(c.lru.Len()),
		Capacity:      int64(c.cap),
		Hits:          c.hits,
		Misses:        c.misses,
		Inserts:       c.inserts,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
