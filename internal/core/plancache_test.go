package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"mpf/internal/opt"
	"mpf/internal/plan"
	"mpf/internal/relation"
)

func TestPlanCacheHitMissAndInvalidation(t *testing.T) {
	db, ds := openSupplyChain(t, Config{PlanCacheEntries: 8})
	_ = ds

	spec := &QuerySpec{View: "invest", GroupVars: []string{"wid"}}
	r1, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Exec.PlanCacheHit {
		t.Fatal("first query should miss the plan cache")
	}
	if r1.Exec.Planner != (opt.CSPlus{}).Name() {
		t.Fatalf("planner = %q, want default %q", r1.Exec.Planner, (opt.CSPlus{}).Name())
	}
	r2, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Exec.PlanCacheHit {
		t.Fatal("repeated query should hit the plan cache")
	}
	if r2.Exec.Planner != r1.Exec.Planner {
		t.Fatalf("cached plan should report original planner, got %q", r2.Exec.Planner)
	}
	if r2.Plan.String() != r1.Plan.String() {
		t.Fatal("cached plan differs from original plan")
	}
	if !relation.Equal(r2.Relation, r1.Relation, 0, 1e-9) {
		t.Fatal("cached-plan answer differs")
	}

	// A different strategy gets its own entry, never the cached CS+ plan.
	veSpec := &QuerySpec{View: "invest", GroupVars: []string{"wid"}, Optimizer: opt.VE{Heuristic: opt.Degree}}
	rv, err := db.Query(veSpec)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Exec.PlanCacheHit {
		t.Fatal("different optimizer must not alias the cached entry")
	}

	// A write to a base table retires the plan; the next query re-plans.
	victim := ds.Relations[0]
	if removed, err := db.Delete(victim.Name(), victim.Row(0)); err != nil || !removed {
		t.Fatalf("delete from %s: removed=%v err=%v", victim.Name(), removed, err)
	}
	r3, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Exec.PlanCacheHit {
		t.Fatal("query after base-table write must re-plan")
	}

	m := db.Metrics()
	if !m.PlanCache.Enabled {
		t.Fatal("plan cache should report enabled")
	}
	if m.PlanCache.Hits != 1 || m.PlanCache.Misses < 3 {
		t.Fatalf("plan cache counters: hits=%d misses=%d", m.PlanCache.Hits, m.PlanCache.Misses)
	}
	if m.PlanCache.Invalidations == 0 {
		t.Fatal("write should eagerly invalidate the cached plan")
	}
	if m.Planning["plan-cache"].Count != 1 {
		t.Fatalf("planning metrics should count the cache hit, got %+v", m.Planning)
	}
	if m.Planning[(opt.CSPlus{}).Name()].Count == 0 {
		t.Fatal("planning metrics should count optimizer runs per kind")
	}
}

func TestPlanCacheSkipsHypotheticalQueries(t *testing.T) {
	db, ds := openSupplyChain(t, Config{PlanCacheEntries: 8})
	hyp := ds.Relations[0].Clone()
	hyp.SetMeasure(0, hyp.Measure(0)+1)
	spec := &QuerySpec{
		View:         "invest",
		GroupVars:    []string{"wid"},
		Hypothetical: map[string]*relation.Relation{ds.Relations[0].Name(): hyp},
	}
	for i := 0; i < 2; i++ {
		res, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Exec.PlanCacheHit {
			t.Fatal("hypothetical queries must never hit the plan cache")
		}
	}
	if m := db.Metrics(); m.PlanCache.Hits != 0 || m.PlanCache.Inserts != 0 {
		t.Fatalf("hypothetical queries must not touch the cache: %+v", m.PlanCache)
	}
}

func TestPlanBudgetFallsBackToGreedy(t *testing.T) {
	db, _ := openSupplyChain(t, Config{
		Optimizer:  sleepyOptimizer{delay: 250 * time.Millisecond, inner: opt.CSPlus{}},
		PlanBudget: time.Millisecond,
	})
	res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Planner != "greedy" {
		t.Fatalf("budget-expired query should report greedy, got %q", res.Exec.Planner)
	}
	if m := db.Metrics(); m.Planning["greedy"].Count == 0 {
		t.Fatal("greedy planning time should be accounted per kind")
	}
}

// TestPlanCacheConcurrentWithWrites drives concurrent planning against
// the plan cache while a writer bumps table versions — the contract the
// Database doc commits to (planning-only work is safe during writes).
// Run with -race to check the synchronization, not just the results.
func TestPlanCacheConcurrentWithWrites(t *testing.T) {
	db, ds := openSupplyChain(t, Config{PlanCacheEntries: 4})
	vars := []string{"wid", "cid", "tid", "pid", "sid"}

	const workers = 6
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds+rounds)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				spec := &QuerySpec{View: "invest", GroupVars: []string{vars[(w+i)%len(vars)]}}
				if _, _, err := db.ExplainContext(context.Background(), spec); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// The writer deletes and re-inserts rows of one base table, bumping
	// its version every time and invalidating cached plans mid-probe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		table := ds.Relations[0].Name()
		for i := 0; i < rounds; i++ {
			row := append([]int32(nil), ds.Relations[0].Row(i%ds.Relations[0].Len())...)
			m := ds.Relations[0].Measure(i % ds.Relations[0].Len())
			if _, err := db.Delete(table, row); err != nil {
				errs <- err
				return
			}
			if err := db.Insert(table, row, m); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if m := db.Metrics(); m.PlanCache.Misses == 0 {
		t.Fatal("expected plan-cache traffic")
	}
}

// sleepyOptimizer delays before planning, to force budget expiry.
type sleepyOptimizer struct {
	delay time.Duration
	inner opt.Optimizer
}

func (s sleepyOptimizer) Name() string { return "sleepy(" + s.inner.Name() + ")" }

func (s sleepyOptimizer) Optimize(q *opt.Query, b *plan.Builder) (*plan.Node, error) {
	time.Sleep(s.delay)
	return s.inner.Optimize(q, b)
}
