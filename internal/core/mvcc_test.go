package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

// mvccTestDB builds a small two-table database with a view, the minimal
// schema the multi-version tests write against.
func mvccTestDB(t *testing.T, cfg Config) *Database {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	r, err := relation.Complete("r", []relation.Attr{
		{Name: "a", Domain: 6}, {Name: "b", Domain: 4},
	}, func(vals []int32) float64 { return float64(vals[0]%3) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	// s leaves c = 4 unpopulated so the write tests have fresh
	// assignments to insert.
	s, err := relation.New("s", []relation.Attr{
		{Name: "b", Domain: 4}, {Name: "c", Domain: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := int32(0); b < 4; b++ {
		for c := int32(0); c < 4; c++ {
			s.MustAppend([]int32{b, c}, float64(c%2)+1)
		}
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("rs", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSnapshotIsolationReadersKeepTheirVersion pins a snapshot, commits
// a write, and requires a query through the old snapshot to answer as of
// acquisition while a fresh query sees the write; releasing the snapshot
// reclaims the superseded version with zero pinned frames.
func TestSnapshotIsolationReadersKeepTheirVersion(t *testing.T) {
	db := mvccTestDB(t, Config{})
	q := &QuerySpec{View: "rs", GroupVars: []string{"b"}}
	before, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	snap := db.AcquireSnapshot()
	defer snap.Release()
	// A new s row changes every group's sum.
	if err := db.Insert("s", []int32{0, 4}, 100); err != nil {
		t.Fatal(err)
	}

	old, err := db.QueryContext(WithSnapshot(context.Background(), snap), q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(old.Relation, before.Relation, 0, 0) {
		t.Fatal("snapshot read does not match the pre-write answer")
	}
	if old.Snapshot != snap.Seq() {
		t.Fatalf("Result.Snapshot = %d, want %d", old.Snapshot, snap.Seq())
	}
	fresh, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if relation.Equal(fresh.Relation, before.Relation, 0, 0) {
		t.Fatal("fresh query did not observe the committed write")
	}
	if fresh.Snapshot != snap.Seq()+1 {
		t.Fatalf("fresh Result.Snapshot = %d, want %d", fresh.Snapshot, snap.Seq()+1)
	}

	st := db.Metrics().MVCC
	if st.VersionsLive != 2 {
		t.Fatalf("versions live with a pinned old snapshot = %d, want 2", st.VersionsLive)
	}
	snap.Release()
	snap.Release() // idempotent
	st = db.Metrics().MVCC
	if st.VersionsLive != 1 {
		t.Fatalf("versions live after release = %d, want 1 (old version leaked)", st.VersionsLive)
	}
	if st.VersionsReclaimed == 0 {
		t.Fatal("no version reclaimed after releasing the last pin")
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d buffer-pool frames pinned after reclamation, want 0", n)
	}

	// The released snapshot is rejected, not silently retargeted.
	if _, err := db.QueryContext(WithSnapshot(context.Background(), snap), q); err == nil {
		t.Fatal("query through a released snapshot should error")
	}
}

// TestCanceledQueryReleasesSnapshotPin cancels a long engine query
// mid-run and requires its implicit snapshot pin to be released: the
// next commit reclaims the superseded version instead of leaking it.
func TestCanceledQueryReleasesSnapshotPin(t *testing.T) {
	db := openCancelDB(t, 0)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := db.QueryContext(ctx, &QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	st := db.Metrics().MVCC
	if st.SnapshotsAcquired != st.SnapshotsReleased {
		t.Fatalf("snapshot pins leaked by canceled query: %d acquired, %d released",
			st.SnapshotsAcquired, st.SnapshotsReleased)
	}
	if st.SnapshotsActive != 0 {
		t.Fatalf("%d snapshots still active after cancellation", st.SnapshotsActive)
	}

	// With no pin outstanding, a commit supersedes and reclaims the old
	// version immediately — the version count stays at 1.
	if existed, err := db.Delete("r", []int32{0, 0}); err != nil {
		t.Fatal(err)
	} else if !existed {
		t.Fatal("delete of a present row reported absent")
	}
	if existed, err := db.Delete("r", []int32{0, 0}); err != nil {
		t.Fatal(err)
	} else if existed {
		t.Fatal("second delete of the same row should be a no-op")
	}
	if live := db.Metrics().MVCC.VersionsLive; live != 1 {
		t.Fatalf("versions live after commit = %d, want 1 (canceled query leaked its pin)", live)
	}
}

// armableFactory wraps a disk factory so a test can arm a permanent
// write fault for the next disks it hands out — targeting exactly the
// heap a commit builds, without touching existing storage.
type armableFactory struct {
	inner storage.DiskFactory
	armed atomic.Bool
}

func (f *armableFactory) factory() storage.DiskFactory {
	return func() (storage.Disk, error) {
		d, err := f.inner()
		if err != nil {
			return nil, err
		}
		var plan storage.FaultPlan
		if f.armed.Load() {
			plan = storage.FaultPlan{FailWriteOp: 1}
		}
		return storage.NewFaultDisk(d, plan), nil
	}
}

// TestCommitFaultLeavesOldVersionServed injects a permanent write fault
// into the disk a commit builds its new generation on. The writer gets
// a typed ErrIO, nothing becomes visible (no partial state, sequence
// and version count unchanged), readers keep getting the old answer,
// and after healing the same write succeeds.
func TestCommitFaultLeavesOldVersionServed(t *testing.T) {
	af := &armableFactory{inner: storage.MemDiskFactory()}
	db := mvccTestDB(t, Config{DiskFactory: af.factory()})
	q := &QuerySpec{View: "rs", GroupVars: []string{"b"}}
	before, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	seqBefore := db.Metrics().MVCC.Seq

	af.armed.Store(true)
	err = db.Insert("s", []int32{0, 4}, 100)
	af.armed.Store(false)
	if !errors.Is(err, ErrIO) {
		t.Fatalf("insert under permanent write fault: err = %v, want ErrIO", err)
	}

	st := db.Metrics().MVCC
	if st.Seq != seqBefore {
		t.Fatalf("catalog sequence moved from %d to %d on a failed commit", seqBefore, st.Seq)
	}
	if st.CommitFailures != 1 {
		t.Fatalf("commit failures = %d, want 1", st.CommitFailures)
	}
	if st.VersionsLive != 1 {
		t.Fatalf("versions live after failed commit = %d, want 1", st.VersionsLive)
	}
	after, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(after.Relation, before.Relation, 0, 0) {
		t.Fatal("failed commit leaked partial state into query answers")
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d frames pinned after aborted commit, want 0", n)
	}

	// Healed, the identical write goes through and becomes visible.
	if err := db.Insert("s", []int32{0, 4}, 100); err != nil {
		t.Fatal(err)
	}
	healed, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if relation.Equal(healed.Relation, before.Relation, 0, 0) {
		t.Fatal("post-heal insert is not visible")
	}
}

// TestConcurrentSnapshotsVsCommits races snapshot acquire/query/release
// against a sustained ingest stream — the -race coverage for the
// version-swap and reclamation paths. Afterwards every superseded
// version must be reclaimed, every pin released, and no frame pinned.
func TestConcurrentSnapshotsVsCommits(t *testing.T) {
	db := mvccTestDB(t, Config{})
	q := &QuerySpec{View: "rs", GroupVars: []string{"b"}}

	const readers = 4
	const writes = 30
	baseCommits := db.Metrics().MVCC.Commits
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.AcquireSnapshot()
				ctx := WithSnapshot(context.Background(), snap)
				res, err := db.QueryContext(ctx, q)
				if err == nil && res.Snapshot != snap.Seq() {
					t.Errorf("Result.Snapshot = %d, want pinned %d", res.Snapshot, snap.Seq())
				}
				snap.Release()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		if err := db.Insert("s", []int32{int32(i % 4), 4}, float64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Delete("s", []int32{int32(i % 4), 4}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := db.Metrics().MVCC
	if st.SnapshotsAcquired != st.SnapshotsReleased || st.SnapshotsActive != 0 {
		t.Fatalf("pins leaked: %d acquired, %d released, %d active",
			st.SnapshotsAcquired, st.SnapshotsReleased, st.SnapshotsActive)
	}
	if st.VersionsLive != 1 {
		t.Fatalf("versions live after quiescing = %d, want 1", st.VersionsLive)
	}
	if int(st.Commits-baseCommits) != 2*writes {
		t.Fatalf("commits = %d, want %d", st.Commits-baseCommits, 2*writes)
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d frames pinned after quiescing, want 0", n)
	}
}

// TestSnapshotSaveLoadUnderTransientFaults is the satellite fix for the
// snapshot IO path: Save/Load pools must honor Config.IORetries and the
// Config.SnapshotDisk wrapper, so a snapshot round-trips through disks
// injecting transient read and write faults.
func TestSnapshotSaveLoadUnderTransientFaults(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		IORetries: 8,
		SnapshotDisk: func(d storage.Disk) storage.Disk {
			return storage.NewFaultDisk(d, storage.FaultPlan{
				Seed: 7, ReadErr: 0.05, WriteErr: 0.05,
			})
		},
	}
	db := mvccTestDB(t, cfg)
	want, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatalf("save under transient faults: %v", err)
	}

	db2, err := Load(dir, cfg)
	if err != nil {
		t.Fatalf("load under transient faults: %v", err)
	}
	defer db2.Close()
	got, err := db2.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Relation, want.Relation, 0, 1e-9) {
		t.Fatal("answer differs after faulty snapshot round trip")
	}
	for _, name := range []string{"r", "s"} {
		a, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := db2.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(a, b, 0, 0) {
			t.Fatalf("table %s differs after round trip", name)
		}
	}
}
