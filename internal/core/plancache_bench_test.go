package core

import (
	"testing"

	"mpf/internal/gen"
	"mpf/internal/opt"
)

// benchDB opens a supply-chain database for the planning benchmarks
// (openSupplyChain needs *testing.T for Cleanup).
func benchDB(b *testing.B, cfg Config) *Database {
	b.Helper()
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.8, Seed: 21})
	if err != nil {
		b.Fatal(err)
	}
	db, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkPlanning measures planning latency alone (Explain: optimize,
// never execute) for the cost-based CS+ search, the statistics-free
// greedy planner, and a warmed plan-cache probe — the three points the
// plan-cache experiment compares (see BENCH_PR6.json).
func BenchmarkPlanning(b *testing.B) {
	spec := func(o opt.Optimizer) *QuerySpec {
		return &QuerySpec{View: "invest", GroupVars: []string{"wid"}, Optimizer: o}
	}
	b.Run("cs+nonlinear", func(b *testing.B) {
		db := benchDB(b, Config{})
		q := spec(opt.CSPlus{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		db := benchDB(b, Config{})
		q := spec(opt.Greedy{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		db := benchDB(b, Config{PlanCacheEntries: 8})
		q := spec(opt.CSPlus{})
		if _, _, err := db.Explain(q); err != nil {
			b.Fatal(err) // warm the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := db.Explain(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if hits := db.Metrics().PlanCache.Hits; hits < int64(b.N) {
			b.Fatalf("only %d plan-cache hits over %d iterations", hits, b.N)
		}
	})
}
