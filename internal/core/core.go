// Package core integrates the MPF engine: a Database holds functional
// relations (disk-resident behind a buffer pool), view definitions, and
// statistics, optimizes MPF queries with a selectable algorithm (CS, CS+,
// VE, VE+ — internal/opt), executes plans either on the paged engine
// (internal/exec) or in memory, and maintains VE-cache materializations
// for query workloads (internal/infer).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/exec"
	"mpf/internal/infer"
	"mpf/internal/metrics"
	"mpf/internal/opt"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// Config parameterizes a Database.
type Config struct {
	// Semiring for measures; nil defaults to sum-product.
	Semiring semiring.Semiring
	// PoolFrames is the buffer pool size in pages; 0 defaults to 256
	// (2 MiB), deliberately small so the disk-resident regime of the
	// paper is observable.
	PoolFrames int
	// Dir, when non-empty, stores heap files as temp files under this
	// directory; empty keeps pages in memory (identical IO accounting).
	Dir string
	// DiskFactory, when non-nil, overrides Dir and supplies the disks
	// backing heap files directly — e.g. storage.LatencyMemDiskFactory to
	// simulate slow media in cancellation experiments.
	DiskFactory storage.DiskFactory
	// CostModel for the optimizers; nil defaults to cost.Simple.
	CostModel cost.Model
	// Optimizer is the default planning algorithm; nil defaults to
	// nonlinear CS+.
	Optimizer opt.Optimizer
	// Parallelism is the engine's intra-query worker bound; 0 or 1 keeps
	// execution strictly serial (see exec.Engine.Parallelism).
	Parallelism int
	// ResultCacheBytes, when positive, enables the engine-level shared
	// subplan result cache with this byte budget: aggregated join outputs
	// (the paper's VE intermediates) are materialized once and reused by
	// later queries whose plans contain an identical subtree over the same
	// base-table versions. Zero (the default) disables the cache, keeping
	// every query's physical IO exactly reproducible.
	ResultCacheBytes int64
	// BatchSize selects the executor's batch width: 0 (the default) runs
	// the vectorized operator paths with whole heap pages as batches, 1
	// restores tuple-at-a-time execution, larger values cap batch width
	// (see exec.Engine.BatchSize).
	BatchSize int
	// ReadAhead, when positive, makes sequential scans ask the buffer
	// pool to prefetch this many pages ahead. Off by default so physical
	// IO counts reproduce the paper's cost model exactly (see
	// exec.Engine.ReadAhead).
	ReadAhead int
	// Columnar, when true, re-encodes every heap page that fills — base
	// tables and intermediates alike — with the per-page columnar layout
	// (dictionary/run-length column segments where they pay for
	// themselves) and routes batch execution through the encoded-value
	// kernels. Results are byte-identical to row-major execution; page
	// counts, and therefore the paper's IO cost model, are unchanged (the
	// encoding compresses within pages, never across them). No effect
	// when BatchSize is 1.
	Columnar bool
	// FuseJoinGroupBy, when true, pipelines GroupBy-over-Join plan pairs
	// through a single fused operator that aggregates probe matches as
	// they are produced, never materializing the join output (see
	// exec.Engine.FuseJoinGroupBy). With Columnar also set, the fused
	// operator consumes encoded probe batches directly. Results are
	// byte-identical to the materializing pipeline.
	FuseJoinGroupBy bool
	// IORetries bounds how many times the buffer pool re-attempts an IO
	// operation that failed with a transient fault (storage.IsTransient),
	// with capped exponential backoff between attempts. 0 (the default)
	// selects 3 retries; negative disables retry. Permanent faults and
	// checksum failures are never retried.
	IORetries int
	// SnapshotDisk, when non-nil, wraps every file disk opened by the
	// snapshot Save/Load paths — fault injection for tests
	// (storage.NewFaultDisk), checksum tampering, or instrumentation.
	// Nil uses the file disk directly. Snapshot IO always runs under the
	// same IORetries retry/backoff policy as regular query IO.
	SnapshotDisk func(storage.Disk) storage.Disk
	// PlanCacheEntries, when positive, enables the engine-level plan cache
	// with this many LRU slots: finished plans are cached under a canonical
	// query fingerprint embedding the semiring, optimizer, and base-table
	// versions, so a repeated query skips the optimizer entirely and any
	// base-table write retires the stale plans. Zero (the default) disables
	// the cache, re-planning every query. Hypothetical queries are never
	// cached.
	PlanCacheEntries int
	// PlanBudget, when positive, bounds planning wall time: the selected
	// optimizer (the database default or a per-query override) runs under
	// this budget, and when it exceeds it the statistics-free greedy
	// planner's plan is used instead (opt.Budgeted). RunStats.Planner
	// reports which planner actually produced each query's plan. Zero (the
	// default) leaves planning unbounded.
	PlanBudget time.Duration
}

// Database is the engine facade. It is safe for fully concurrent use:
// every query runs against an immutable catalog version pinned at
// admission (a Snapshot, acquired per query or threaded explicitly via
// WithSnapshot), and every write — CreateTable, CreateIndex,
// CreateView, Insert, Delete, DropTable, DropView, Materialize — is a
// serialized copy-on-write commit that publishes a new catalog version
// without touching the one readers hold (see mvcc.go). Reads never
// block behind writes and writes never block behind reads; superseded
// versions are reclaimed when their last in-flight query finishes.
type Database struct {
	cfg     Config
	pool    *storage.Pool
	factory storage.DiskFactory
	engine  *exec.Engine
	metrics *metrics.Registry
	rcache  *exec.ResultCache
	pcache  *planCache

	// commitMu serializes writers: one commit clones, builds, and
	// publishes at a time. Readers never take it; the reader-visible
	// effect of a commit is a single pointer swap under mv.mu.
	commitMu sync.Mutex

	// mv is the multi-version catalog state: the visible version
	// pointer, snapshot pins, and reclamation counters (mvcc.go).
	mv mvccState

	// cachesMu guards the workload-cache registry (BuildCache,
	// QueryCached); the caches themselves are immutable once built.
	cachesMu sync.Mutex
	caches   map[string]*infer.Cache
}

// Open creates a database with the given configuration.
func Open(cfg Config) (*Database, error) {
	if cfg.Semiring == nil {
		cfg.Semiring = semiring.SumProduct
	}
	if cfg.PoolFrames == 0 {
		cfg.PoolFrames = 256
	}
	if cfg.CostModel == nil {
		cfg.CostModel = cost.Simple{}
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = opt.CSPlus{}
	}
	if cfg.IORetries == 0 {
		cfg.IORetries = 3
	}
	pool := storage.NewPool(cfg.PoolFrames)
	pool.SetRetry(cfg.IORetries, 0, 0)
	var factory storage.DiskFactory
	switch {
	case cfg.DiskFactory != nil:
		factory = cfg.DiskFactory
	case cfg.Dir != "":
		factory = storage.TempFileDiskFactory(cfg.Dir)
	default:
		factory = storage.MemDiskFactory()
	}
	engine := exec.NewEngine(pool, factory, cfg.Semiring)
	engine.Parallelism = cfg.Parallelism
	engine.BatchSize = cfg.BatchSize
	engine.ReadAhead = cfg.ReadAhead
	engine.Columnar = cfg.Columnar
	engine.FuseJoinGroupBy = cfg.FuseJoinGroupBy
	db := &Database{
		cfg:     cfg,
		pool:    pool,
		factory: factory,
		engine:  engine,
		caches:  make(map[string]*infer.Cache),
		metrics: metrics.NewRegistry(),
	}
	db.initMVCC()
	if cfg.ResultCacheBytes > 0 {
		db.rcache = exec.NewResultCache(cfg.ResultCacheBytes)
	}
	if cfg.PlanCacheEntries > 0 {
		db.pcache = newPlanCache(cfg.PlanCacheEntries)
	}
	return db, nil
}

// Close releases all storage, result-cache materializations included.
// Close requires quiescence: in-flight queries must have finished and
// their snapshots been released (a version still pinned at Close leaks
// until process exit). It reports the first heap-drop failure seen
// during reclamation, including any page left pinned at drop time.
func (db *Database) Close() error {
	if db.rcache != nil {
		db.rcache.Close()
	}
	db.mv.mu.Lock()
	cur := db.mv.cur
	var drop []*tableVersion
	if cur.current {
		cur.current = false
		if cur.pins == 0 {
			drop = cur.releaseTablesLocked()
			db.mv.live--
			db.mv.reclaimed++
		}
	}
	db.mv.mu.Unlock()
	db.dropGenerations(drop)
	db.mv.mu.Lock()
	err := db.mv.dropErr
	db.mv.mu.Unlock()
	return err
}

// Semiring returns the database's measure semiring.
func (db *Database) Semiring() semiring.Semiring { return db.cfg.Semiring }

// Catalog exposes the statistics catalog of the current version.
// Reading it is always safe. Mutating it directly (AddTable to refresh
// or override statistics) edits the current version in place and is a
// setup-time affordance only: concurrent snapshot holders of the same
// version observe the change, so do it before serving traffic.
func (db *Database) Catalog() *catalog.Catalog { return db.currentVersion().cat }

// Pool exposes the buffer pool (for IO statistics).
func (db *Database) Pool() *storage.Pool { return db.pool }

// Engine exposes the physical engine (for operator knobs).
func (db *Database) Engine() *exec.Engine { return db.engine }

// Metrics returns a snapshot of the engine-wide metrics: query lifecycle
// counts, cumulative buffer-pool IO, result-cache counters, and
// per-operator-kind totals. Safe to call concurrently with running
// queries.
func (db *Database) Metrics() metrics.Snapshot {
	s := db.metrics.Snapshot(db.pool.Stats())
	s.Encoding = db.pool.EncodingStats()
	if db.rcache != nil {
		cs := db.rcache.Snapshot()
		s.ResultCache = metrics.ResultCacheStats{
			Enabled:       true,
			Entries:       cs.Entries,
			Bytes:         cs.Bytes,
			BudgetBytes:   cs.BudgetBytes,
			Hits:          cs.Hits,
			Misses:        cs.Misses,
			Inserts:       cs.Inserts,
			Evictions:     cs.Evictions,
			Invalidations: cs.Invalidations,
			IOSavedPages:  cs.IOSavedPages,
		}
	}
	if db.pcache != nil {
		s.PlanCache = db.pcache.snapshot()
	}
	s.MVCC = db.mvccStats()
	return s
}

// ResultCache exposes the shared subplan result cache, or nil when the
// database was opened without a cache budget (Config.ResultCacheBytes).
func (db *Database) ResultCache() *exec.ResultCache { return db.rcache }

// CreateTable validates the relation as an FR, loads it into paged
// storage, and publishes a new catalog version containing it.
func (db *Database) CreateTable(r *relation.Relation) error {
	if r.Name() == "" {
		return fmt.Errorf("core: relation needs a name")
	}
	if err := r.CheckFD(); err != nil {
		return fmt.Errorf("core: %w: %w", ErrNotFunctional, err)
	}
	c := db.beginCommit()
	if _, dup := c.next.rels[r.Name()]; dup {
		return c.abort(fmt.Errorf("core: %w: %q", ErrDuplicateTable, r.Name()))
	}
	t, err := c.loadTable(r, nil)
	if err != nil {
		return c.abort(err)
	}
	if err := c.put(r.Clone(), t); err != nil {
		return c.abort(err)
	}
	return c.publish()
}

// CreateIndex builds a hash index on a base table's attribute; equality
// selections on that attribute then fetch only matching pages instead of
// scanning (§5.4's alternative access methods). Under MVCC the table's
// storage generation is rebuilt copy-on-write with the index attached;
// contents and per-table version are unchanged, so cached plans and
// results stay valid and in-flight readers keep their generation.
func (db *Database) CreateIndex(table, attr string) error {
	c := db.beginCommit()
	rel, ok := c.next.rels[table]
	if !ok {
		return c.abort(fmt.Errorf("core: %w %q", ErrUnknownTable, table))
	}
	attrs := indexAttrs(c.next.tables[table].tab)
	have := false
	for _, a := range attrs {
		if a == attr {
			have = true
			break
		}
	}
	if !have {
		attrs = append(attrs, attr)
	}
	t, err := c.loadTable(rel, attrs)
	if err != nil {
		return c.abort(err)
	}
	c.replaceStorage(table, t)
	return c.publish()
}

// indexAttrs lists the attributes a table generation has hash indexes
// on, so a copy-on-write rebuild can reconstruct them.
func indexAttrs(t *exec.Table) []string {
	attrs := make([]string, 0, len(t.Indexes))
	for attr := range t.Indexes {
		attrs = append(attrs, attr)
	}
	return attrs
}

// CreateView registers an MPF view over existing tables (the SQL
// extension "create mpfview ... measure = (* ...)").
func (db *Database) CreateView(name string, tables []string) error {
	c := db.beginCommit()
	if err := c.next.cat.AddView(&catalog.ViewDef{
		Name:     name,
		Tables:   tables,
		Semiring: db.cfg.Semiring.Name(),
	}); err != nil {
		return c.abort(err)
	}
	return c.publish()
}

// Relation returns the in-memory master copy of a base table as of the
// current catalog version. The returned relation is immutable (writes
// publish fresh copies), so it stays consistent however long the
// caller holds it.
func (db *Database) Relation(name string) (*relation.Relation, error) {
	r, ok := db.currentVersion().rels[name]
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownTable, name)
	}
	return r, nil
}

// ExecMode selects how plans are executed.
type ExecMode int

// Execution modes.
const (
	// EngineExec runs plans on the paged engine with IO accounting.
	EngineExec ExecMode = iota
	// MemoryExec interprets plans over in-memory relations.
	MemoryExec
)

// HavingOp is a comparison operator for constrained-range queries.
type HavingOp int

// Comparison operators for Having clauses.
const (
	HavingLT HavingOp = iota
	HavingLE
	HavingGT
	HavingGE
	HavingEQ
)

// String returns the SQL spelling.
func (o HavingOp) String() string {
	switch o {
	case HavingLT:
		return "<"
	case HavingLE:
		return "<="
	case HavingGT:
		return ">"
	case HavingGE:
		return ">="
	case HavingEQ:
		return "="
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Having is the constrained-range form of §3.1: a post-aggregation
// filter on the result measure ("having f < c").
type Having struct {
	Op    HavingOp
	Value float64
}

// match reports whether measure m satisfies the clause.
func (h *Having) match(m float64) bool {
	switch h.Op {
	case HavingLT:
		return m < h.Value
	case HavingLE:
		return m <= h.Value
	case HavingGT:
		return m > h.Value
	case HavingGE:
		return m >= h.Value
	case HavingEQ:
		return m == h.Value
	default:
		return false
	}
}

// QuerySpec is an MPF query against a view.
type QuerySpec struct {
	// View names a registered MPF view.
	View string
	// GroupVars are the query variables X.
	GroupVars []string
	// Where holds equality predicates (restricted answer / constrained
	// domain forms).
	Where relation.Predicate
	// Having, when non-nil, filters the aggregated result measure (the
	// constrained-range form of §3.1).
	Having *Having
	// Hypothetical substitutes base relations for this query only,
	// implementing the hypothetical alternate-measure / alternate-domain
	// forms of §3.1 ("if part p1 was a different price", "if the deal
	// moved from t1 to t2"). Keys are base-table names of the view; each
	// replacement must have the same variable attributes as the original.
	Hypothetical map[string]*relation.Relation
	// Optimizer overrides the database default when non-nil.
	Optimizer opt.Optimizer
	// Exec selects the execution mode.
	Exec ExecMode
}

// Result is a query's answer with its plan and measurements.
type Result struct {
	// Relation is the answer as a set of (assignment, measure) rows. Row
	// order is unspecified: a result-cache splice replays a cached
	// materialization whose producing subtree may have been shaped
	// differently (commutative join children are canonically reordered by
	// fingerprinting), so cached and uncached runs of the same query agree
	// only up to set equality (relation.Equal). Callers needing a
	// deterministic order must call Relation.Sort.
	Relation *relation.Relation
	Plan     *plan.Node
	Optimize time.Duration
	Exec     exec.RunStats
	// Trace lists per-operator spans in completion order (EXPLAIN
	// ANALYZE's data source); same slice as Exec.Trace, surfaced here for
	// discoverability. Empty for MemoryExec.
	Trace []exec.Span
	// Snapshot is the catalog version sequence number the query ran
	// against (Snapshot.Seq). Two results with equal Snapshot values saw
	// exactly the same table contents; a reader can replay the answer
	// serially at that version and expect byte-identical output.
	Snapshot int64
}

// optQuery converts a spec to the optimizer-facing form, resolving the
// view against the query's snapshot.
func (db *Database) optQuery(q *QuerySpec, snap *Snapshot) (*opt.Query, error) {
	v, err := snap.v.cat.View(q.View)
	if err != nil {
		return nil, err
	}
	return &opt.Query{Tables: v.Tables, GroupVars: q.GroupVars, Pred: q.Where}, nil
}

// validateHypothetical checks the replacement tables of a hypothetical
// query: each must name a view base table and preserve its variable
// schema (alternate measures and alternate domain values are fine; the
// variables themselves must match so the view's join structure is
// unchanged). Originals resolve against the query's snapshot.
func (db *Database) validateHypothetical(q *QuerySpec, viewTables []string, snap *Snapshot) error {
	inView := make(map[string]bool, len(viewTables))
	for _, t := range viewTables {
		inView[t] = true
	}
	for name, h := range q.Hypothetical {
		if !inView[name] {
			return fmt.Errorf("core: hypothetical table %q not in view %q", name, q.View)
		}
		orig, ok := snap.v.rels[name]
		if !ok {
			return fmt.Errorf("core: %w %q", ErrUnknownTable, name)
		}
		if err := h.CheckFD(); err != nil {
			return fmt.Errorf("core: hypothetical %s: %w: %w", name, ErrNotFunctional, err)
		}
		if !h.Vars().Equal(orig.Vars()) {
			return fmt.Errorf("core: hypothetical %s has variables %v, want %v",
				name, h.Vars().Sorted(), orig.Vars().Sorted())
		}
		for _, a := range orig.Attrs() {
			ha, _ := h.Attr(a.Name)
			if ha.Domain != a.Domain {
				return fmt.Errorf("core: hypothetical %s: variable %s domain %d, want %d",
					name, a.Name, ha.Domain, a.Domain)
			}
		}
	}
	return nil
}

// planCatalog returns the catalog to plan against: the snapshot's
// catalog, or a per-query overlay with hypothetical tables re-analyzed.
func (db *Database) planCatalog(q *QuerySpec, viewTables []string, snap *Snapshot) (*catalog.Catalog, error) {
	if len(q.Hypothetical) == 0 {
		return snap.v.cat, nil
	}
	overlay := catalog.New()
	for _, t := range viewTables {
		if h, ok := q.Hypothetical[t]; ok {
			if err := overlay.AddTable(catalog.AnalyzeRelation(h)); err != nil {
				return nil, err
			}
			continue
		}
		st, err := snap.v.cat.Table(t)
		if err != nil {
			return nil, err
		}
		if err := overlay.AddTable(st); err != nil {
			return nil, err
		}
	}
	if err := overlay.AddView(&catalog.ViewDef{
		Name: q.View, Tables: viewTables, Semiring: db.cfg.Semiring.Name(),
	}); err != nil {
		return nil, err
	}
	return overlay, nil
}

// validateExec checks the spec's execution mode up-front, before any
// planning work, so a typo'd mode fails fast with a typed error.
func validateExec(q *QuerySpec) error {
	switch q.Exec {
	case EngineExec, MemoryExec:
		return nil
	default:
		return fmt.Errorf("core: %w %d", ErrUnknownExecMode, q.Exec)
	}
}

// Explain optimizes the query and returns the plan without executing it.
//
// Deprecated: Explain is a thin wrapper for ExplainContext with
// context.Background(), kept for callers that predate the context-first
// API. New code should call ExplainContext (or go through a Session,
// which applies per-client deadlines and budgets).
func (db *Database) Explain(q *QuerySpec) (*plan.Node, time.Duration, error) {
	return db.ExplainContext(context.Background(), q)
}

// ExplainContext is Explain with cancellation: ctx is observed at the
// planning phase boundaries. A canceled explain returns an error
// matching both ErrCanceled and ctx's error. With a plan cache enabled,
// an explain probes (and on miss populates) the cache exactly like a
// query, and the returned duration is the probe time on a hit.
func (db *Database) ExplainContext(ctx context.Context, q *QuerySpec) (*plan.Node, time.Duration, error) {
	snap, owned, err := db.snapshotFor(ctx)
	if err != nil {
		return nil, 0, err
	}
	if owned {
		defer snap.Release()
	}
	info, err := db.plan(ctx, q, snap)
	if err != nil {
		return nil, 0, err
	}
	return info.p, info.optimize, nil
}

// planInfo is the outcome of the planning phase: the plan, the report
// name of the planner that produced it, the planning (or cache-probe)
// wall time, and whether the plan came from the plan cache.
type planInfo struct {
	p        *plan.Node
	planner  string
	optimize time.Duration
	cacheHit bool
}

// plan turns a spec into an executable plan: validate, probe the plan
// cache (pure queries only — hypothetical replacements are query-private
// and never cached), and on a miss run the configured optimizer under the
// planning budget and adopt the winner. Planning time is recorded in the
// engine metrics per planner kind, with cache-probe time on hits under
// the synthetic "plan-cache" kind. All catalog state — view
// definitions, statistics, and the table versions embedded in cache
// fingerprints — comes from the query's snapshot, so cache keys are
// correct per snapshot: an old-snapshot reader can neither hit nor
// poison entries keyed to newer contents.
func (db *Database) plan(ctx context.Context, q *QuerySpec, snap *Snapshot) (planInfo, error) {
	if err := validateExec(q); err != nil {
		return planInfo{}, err
	}
	oq, err := db.optQuery(q, snap)
	if err != nil {
		return planInfo{}, err
	}
	if err := db.validateHypothetical(q, oq.Tables, snap); err != nil {
		return planInfo{}, err
	}
	o := q.Optimizer
	if o == nil {
		o = db.cfg.Optimizer
	}
	if db.cfg.PlanBudget > 0 {
		if _, budgeted := o.(opt.Budgeted); !budgeted {
			o = opt.Budgeted{Primary: o, Budget: db.cfg.PlanBudget}
		}
	}

	// The cache key extends the query fingerprint with the optimizer's
	// report name: a per-query `using <strategy>` override must not be
	// answered with another strategy's plan (plan quality is part of what
	// the caller selected, even though any cached plan would be correct).
	start := time.Now()
	var key string
	if db.pcache != nil && len(q.Hypothetical) == 0 {
		fp, ok := plan.QueryFingerprint(plan.FingerprintEnv{
			Semiring:     db.cfg.Semiring.Name(),
			TableVersion: snap.v.tableVersionOf,
		}, oq.Tables, oq.GroupVars, oq.Pred)
		if ok {
			key = o.Name() + "|" + fp
			if p, planner, hit := db.pcache.lookup(key); hit {
				probe := time.Since(start)
				db.metrics.PlanSample("plan-cache", probe)
				return planInfo{p: p, planner: planner, optimize: probe, cacheHit: true}, nil
			}
		}
	}

	cat, err := db.planCatalog(q, oq.Tables, snap)
	if err != nil {
		return planInfo{}, err
	}
	b := plan.NewBuilder(cat, db.cfg.CostModel)
	res, err := opt.RunContext(ctx, o, oq, b)
	if err != nil {
		return planInfo{}, wrapCancel(err)
	}
	db.metrics.PlanSample(res.Planner, res.Optimize)
	if key != "" {
		db.pcache.insert(key, res.Plan, res.Planner, oq.Tables)
	}
	return planInfo{p: res.Plan, planner: res.Planner, optimize: res.Optimize}, nil
}

// Query optimizes and executes an MPF query.
//
// Deprecated: Query is a thin wrapper for QueryContext with
// context.Background(), kept for callers that predate the context-first
// API. New code should call QueryContext (or go through a Session,
// which applies per-client deadlines and budgets).
func (db *Database) Query(q *QuerySpec) (*Result, error) {
	return db.QueryContext(context.Background(), q)
}

// QueryContext is Query with cancellation: ctx is plumbed from planning
// through every physical operator down to buffer-pool page misses. A
// canceled query returns an error matching both ErrCanceled and ctx's
// error (context.Canceled or context.DeadlineExceeded), with all
// temporary tables dropped, no buffer-pool frames left pinned, and its
// snapshot pin released (so cancellation never leaks a catalog
// version). Every query — finished, failed, or canceled — is recorded
// in the engine metrics (Metrics).
//
// The query runs against the snapshot carried by ctx (WithSnapshot)
// when present, else against a snapshot of the current catalog version
// acquired at admission and released when the query returns; its
// sequence number is reported in Result.Snapshot. Concurrent commits
// never affect a running query.
func (db *Database) QueryContext(ctx context.Context, q *QuerySpec) (*Result, error) {
	snap, owned, err := db.snapshotFor(ctx)
	if err != nil {
		return nil, err
	}
	if owned {
		defer snap.Release()
	}
	info, err := db.plan(ctx, q, snap)
	if err != nil {
		return nil, err
	}
	db.metrics.QueryStarted()
	out, err := db.execute(ctx, q, info, snap)
	if out != nil {
		out.Snapshot = snap.Seq()
	}
	db.metrics.QueryFinished(querySample(out, err))
	return out, err
}

// querySample converts one query outcome into its metrics sample.
func querySample(out *Result, err error) metrics.QuerySample {
	s := metrics.QuerySample{
		Canceled: errorsIsCanceled(err),
		Failed:   err != nil && !errorsIsCanceled(err),
	}
	if out != nil {
		s.RowsOut = out.Exec.RowsOut
		s.TempTuples = out.Exec.TempTuples
		s.Operators = int64(out.Exec.Operators)
		s.HotKeyFallbacks = out.Exec.HotKeyFallbacks
		s.Batches = out.Exec.Batches
		s.Wall = out.Exec.Wall
		s.Ops = make([]metrics.OpSample, len(out.Exec.Trace))
		for i, sp := range out.Exec.Trace {
			s.Ops[i] = metrics.OpSample{Kind: sp.Kind, Wall: sp.Wall, IO: sp.IO}
		}
		s.Morsels = make([]metrics.MorselSample, len(out.Exec.Morsels))
		for i, m := range out.Exec.Morsels {
			s.Morsels[i] = metrics.MorselSample{Kind: m.Kind, Count: m.Count, Busy: m.Busy}
		}
	}
	return s
}

// errorsIsCanceled reports whether err is a query cancellation.
func errorsIsCanceled(err error) bool {
	return err != nil && errors.Is(err, ErrCanceled)
}

// execute runs an optimized plan in the spec's execution mode against
// the query's snapshot. It always returns a non-nil Result carrying
// whatever stats were gathered, even on error, so callers (and the
// metrics registry) see partial work.
func (db *Database) execute(ctx context.Context, q *QuerySpec, info planInfo, snap *Snapshot) (*Result, error) {
	p := info.p
	out := &Result{Plan: p, Optimize: info.optimize}
	out.Exec.Planner = info.planner
	out.Exec.PlanCacheHit = info.cacheHit
	switch q.Exec {
	case EngineExec:
		// Hypothetical replacements are loaded into temporary storage for
		// the duration of the query.
		hypTables := make(map[string]*exec.Table, len(q.Hypothetical))
		defer func() {
			for _, t := range hypTables {
				t.Heap.Drop()
			}
		}()
		for name, h := range q.Hypothetical {
			ht, err := exec.LoadRelationColumnar(db.pool, db.factory, h, db.cfg.Columnar)
			if err != nil {
				return out, err
			}
			hypTables[name] = ht
		}
		// The result cache only sees pure queries over base tables:
		// hypothetical replacements are query-private, so their subtrees
		// must neither hit nor populate shared entries. Fingerprints embed
		// current base-table versions, keying every cached subplan to the
		// exact contents it was computed from.
		var rc *exec.ResultCache
		var fps map[*plan.Node]string
		if db.rcache != nil && len(q.Hypothetical) == 0 {
			rc = db.rcache
			fps = plan.Fingerprints(p, plan.FingerprintEnv{
				Semiring:     db.cfg.Semiring.Name(),
				TableVersion: snap.v.tableVersionOf,
			})
		}
		rel, st, err := db.engine.RunCachedContext(ctx, p, func(name string) (*exec.Table, error) {
			if t, ok := hypTables[name]; ok {
				return t, nil
			}
			t, ok := snap.v.table(name)
			if !ok {
				return nil, fmt.Errorf("core: %w %q", ErrUnknownTable, name)
			}
			return t, nil
		}, rc, fps)
		out.Exec = st
		out.Exec.Planner = info.planner
		out.Exec.PlanCacheHit = info.cacheHit
		out.Trace = st.Trace
		if err != nil {
			db.invalidateCorrupt(err, snap)
			return out, wrapCancel(err)
		}
		out.Relation = rel
	case MemoryExec:
		start := time.Now()
		rel, err := plan.Eval(p, func(name string) (*relation.Relation, error) {
			if h, ok := q.Hypothetical[name]; ok {
				return h, nil
			}
			r, ok := snap.v.rels[name]
			if !ok {
				return nil, fmt.Errorf("core: %w %q", ErrUnknownTable, name)
			}
			return r, nil
		}, db.cfg.Semiring)
		if err != nil {
			return out, err
		}
		out.Relation = rel
		out.Exec.Wall = time.Since(start)
		out.Exec.RowsOut = int64(rel.Len())
		// The in-memory interpreter has no operator-level accounting, so
		// only the result-cardinality bound of a context budget applies.
		if b, ok := exec.BudgetFromContext(ctx); ok && b.MaxRows > 0 && out.Exec.RowsOut > b.MaxRows {
			out.Relation = nil
			return out, &exec.BudgetError{Resource: "rows", Limit: b.MaxRows, Used: out.Exec.RowsOut}
		}
	}
	if q.Having != nil {
		out.Relation = filterHaving(out.Relation, q.Having)
		out.Exec.RowsOut = int64(out.Relation.Len())
	}
	return out, nil
}

// invalidateCorrupt drops result-cache entries built over a table whose
// heap just read corrupt: a cached subplan computed before the damage
// may hold the only healthy copy of the data, but serving it would hide
// the corruption from readers who then trust the base table. The handle
// carried by the *storage.CorruptPageError is mapped back to the base
// table whose heap it identifies, within the failed query's snapshot;
// corruption in a temp heap (no matching table) invalidates nothing.
func (db *Database) invalidateCorrupt(err error, snap *Snapshot) {
	if db.rcache == nil {
		return
	}
	var cpe *storage.CorruptPageError
	if !errors.As(err, &cpe) {
		return
	}
	for name, tv := range snap.v.tables {
		if tv.tab.Heap.Handle() == cpe.Handle {
			db.rcache.InvalidateTable(name)
			return
		}
	}
}

// filterHaving applies the constrained-range clause to a query result.
func filterHaving(r *relation.Relation, h *Having) *relation.Relation {
	out, err := relation.New(r.Name(), r.Attrs())
	if err != nil {
		return r
	}
	for i := 0; i < r.Len(); i++ {
		if h.match(r.Measure(i)) {
			out.MustAppend(append([]int32(nil), r.Row(i)...), r.Measure(i))
		}
	}
	return out
}

// Materialize runs the query and registers its result — itself a
// functional relation — as a new base table, enabling MPF queries over
// MPF results ("the result of an MPF query is an FR; thus MPF queries may
// be used as subqueries", §2).
//
// Deprecated: Materialize is a thin wrapper for MaterializeContext with
// context.Background(), kept for callers that predate the context-first
// API. New code should call MaterializeContext (or go through a
// Session, which applies per-client deadlines and budgets).
func (db *Database) Materialize(name string, q *QuerySpec) (*relation.Relation, error) {
	return db.MaterializeContext(context.Background(), name, q)
}

// MaterializeContext is Materialize with cancellation: the underlying
// query observes ctx; a canceled materialization registers nothing.
func (db *Database) MaterializeContext(ctx context.Context, name string, q *QuerySpec) (*relation.Relation, error) {
	res, err := db.QueryContext(ctx, q)
	if err != nil {
		return nil, err
	}
	rel := res.Relation.Clone()
	rel.SetName(name)
	if err := db.CreateTable(rel); err != nil {
		return nil, err
	}
	return rel, nil
}

// BuildCache runs the VE-cache workload optimization (Algorithm 3) for a
// view, materializing tables that satisfy the Definition 5 invariant.
// order is the elimination order (nil for min-fill). The cache is built
// from one snapshot, so a commit racing the build cannot mix table
// versions into it; a later write to any base table invalidates it.
func (db *Database) BuildCache(view string, order []string) (*infer.Cache, error) {
	snap := db.AcquireSnapshot()
	defer snap.Release()
	v, err := snap.v.cat.View(view)
	if err != nil {
		return nil, err
	}
	rels := make([]*relation.Relation, len(v.Tables))
	for i, t := range v.Tables {
		r, ok := snap.v.rels[t]
		if !ok {
			return nil, fmt.Errorf("core: %w %q", ErrUnknownTable, t)
		}
		rels[i] = r
	}
	cache, err := infer.BuildVECache(db.cfg.Semiring, rels, order)
	if err != nil {
		return nil, err
	}
	db.cachesMu.Lock()
	db.caches[view] = cache
	db.cachesMu.Unlock()
	return cache, nil
}

// Cache returns the workload cache previously built for a view.
func (db *Database) Cache(view string) (*infer.Cache, error) {
	db.cachesMu.Lock()
	c, ok := db.caches[view]
	db.cachesMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no cache built for view %q", view)
	}
	return c, nil
}

// QueryCached answers a single-variable query from a view's cache when
// one exists, falling back to full evaluation otherwise.
func (db *Database) QueryCached(view, variable string) (*relation.Relation, error) {
	db.cachesMu.Lock()
	c, ok := db.caches[view]
	db.cachesMu.Unlock()
	if ok {
		return c.Answer(variable)
	}
	res, err := db.Query(&QuerySpec{View: view, GroupVars: []string{variable}})
	if err != nil {
		return nil, err
	}
	return res.Relation, nil
}
