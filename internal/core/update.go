package core

import (
	"fmt"

	"mpf/internal/relation"
)

// Insert appends one tuple to a base table: the functional dependency is
// enforced (no second measure for an existing variable assignment) and a
// fresh copy-on-write generation of the table — relation, heap, and hash
// indexes — is published as a new catalog version. Readers pinned to the
// old version keep their generation; workload caches over views
// containing the table are invalidated (they no longer satisfy the
// Definition 5 invariant and must be rebuilt with BuildCache).
func (db *Database) Insert(table string, vals []int32, measure float64) error {
	c := db.beginCommit()
	rel, ok := c.next.rels[table]
	if !ok {
		c.cancel()
		return fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	arity := rel.Arity()
	if len(vals) != arity {
		c.cancel()
		return fmt.Errorf("core: insert of %d values into arity-%d table %s", len(vals), arity, table)
	}
	// FD check: the assignment must be new.
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		same := true
		for j := 0; j < arity; j++ {
			if row[j] != vals[j] {
				same = false
				break
			}
		}
		if same {
			c.cancel()
			return fmt.Errorf("core: insert into %s violates the FD: assignment %v already present", table, vals)
		}
	}
	fresh := rel.Clone()
	if err := fresh.Append(vals, measure); err != nil {
		c.cancel()
		return err
	}
	t, err := c.loadTable(fresh, indexAttrs(c.next.tables[table].tab))
	if err != nil {
		return c.abort(err)
	}
	if err := c.put(fresh, t); err != nil {
		return c.abort(err)
	}
	return c.publish(table)
}

// Delete removes the tuple with the given variable assignment, returning
// whether it existed. A fresh generation without the row is built and
// published copy-on-write; indexes are reconstructed, statistics
// refreshed, and dependent caches invalidated.
func (db *Database) Delete(table string, vals []int32) (bool, error) {
	c := db.beginCommit()
	rel, ok := c.next.rels[table]
	if !ok {
		c.cancel()
		return false, fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	arity := rel.Arity()
	if len(vals) != arity {
		c.cancel()
		return false, fmt.Errorf("core: delete of %d values from arity-%d table %s", len(vals), arity, table)
	}
	// Rebuild without the matching row.
	fresh, err := relation.New(rel.Name(), rel.Attrs())
	if err != nil {
		c.cancel()
		return false, err
	}
	removed := false
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		same := true
		for j := 0; j < arity; j++ {
			if row[j] != vals[j] {
				same = false
				break
			}
		}
		if same && !removed {
			removed = true
			continue
		}
		fresh.MustAppend(append([]int32(nil), row...), rel.Measure(i))
	}
	if !removed {
		c.cancel()
		return false, nil
	}
	t, err := c.loadTable(fresh, indexAttrs(c.next.tables[table].tab))
	if err != nil {
		return false, c.abort(err)
	}
	if err := c.put(fresh, t); err != nil {
		return false, c.abort(err)
	}
	return true, c.publish(table)
}

// DropTable removes a base table from the catalog. Tables referenced by
// a view cannot be dropped; drop the view first. The dropped
// generation's storage is reclaimed when the last snapshot pinning a
// version that contains it is released.
func (db *Database) DropTable(table string) error {
	c := db.beginCommit()
	if _, ok := c.next.tables[table]; !ok {
		c.cancel()
		return fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	for _, v := range c.next.cat.Views() {
		def, err := c.next.cat.View(v)
		if err != nil {
			continue
		}
		for _, vt := range def.Tables {
			if vt == table {
				c.cancel()
				return fmt.Errorf("core: table %q is referenced by view %q", table, v)
			}
		}
	}
	delete(c.next.rels, table)
	delete(c.next.tables, table)
	delete(c.next.versions, table)
	c.next.cat.DropTable(table)
	return c.publish(table)
}

// DropView removes a view definition and any workload cache built for it.
func (db *Database) DropView(view string) error {
	c := db.beginCommit()
	if _, err := c.next.cat.View(view); err != nil {
		c.cancel()
		return err
	}
	c.next.cat.DropView(view)
	if err := c.publish(); err != nil {
		return err
	}
	db.cachesMu.Lock()
	delete(db.caches, view)
	db.cachesMu.Unlock()
	return nil
}
