package core

import (
	"fmt"

	"mpf/internal/catalog"
	"mpf/internal/exec"
	"mpf/internal/relation"
)

// Insert appends one tuple to a base table: the functional dependency is
// enforced (no second measure for an existing variable assignment), the
// stored heap and any hash indexes are updated incrementally, statistics
// are refreshed, and workload caches over views containing the table are
// invalidated (they no longer satisfy the Definition 5 invariant and must
// be rebuilt with BuildCache).
func (db *Database) Insert(table string, vals []int32, measure float64) error {
	rel, ok := db.rels[table]
	if !ok {
		return fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	// FD check: the assignment must be new.
	arity := rel.Arity()
	if len(vals) != arity {
		return fmt.Errorf("core: insert of %d values into arity-%d table %s", len(vals), arity, table)
	}
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		same := true
		for j := 0; j < arity; j++ {
			if row[j] != vals[j] {
				same = false
				break
			}
		}
		if same {
			return fmt.Errorf("core: insert into %s violates the FD: assignment %v already present", table, vals)
		}
	}
	if err := rel.Append(vals, measure); err != nil {
		return err
	}
	t := db.tables[table]
	page, slot, err := t.Heap.AppendLocated(rel.Row(rel.Len()-1), measure)
	if err != nil {
		return err
	}
	for _, idx := range t.Indexes {
		idx.Add(rel.Row(rel.Len()-1), page, slot)
	}
	return db.afterWrite(table)
}

// Delete removes the tuple with the given variable assignment, returning
// whether it existed. The stored heap is rebuilt (heaps are append-only),
// indexes are reconstructed, statistics refreshed, and dependent caches
// invalidated.
func (db *Database) Delete(table string, vals []int32) (bool, error) {
	rel, ok := db.rels[table]
	if !ok {
		return false, fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	arity := rel.Arity()
	if len(vals) != arity {
		return false, fmt.Errorf("core: delete of %d values from arity-%d table %s", len(vals), arity, table)
	}
	// Rebuild without the matching row.
	fresh, err := relation.New(rel.Name(), rel.Attrs())
	if err != nil {
		return false, err
	}
	removed := false
	for i := 0; i < rel.Len(); i++ {
		row := rel.Row(i)
		same := true
		for j := 0; j < arity; j++ {
			if row[j] != vals[j] {
				same = false
				break
			}
		}
		if same && !removed {
			removed = true
			continue
		}
		fresh.MustAppend(append([]int32(nil), row...), rel.Measure(i))
	}
	if !removed {
		return false, nil
	}
	// Swap in the rebuilt relation and storage.
	newTable, err := exec.LoadRelation(db.pool, db.factory, fresh)
	if err != nil {
		return false, err
	}
	old := db.tables[table]
	indexAttrs := make([]string, 0, len(old.Indexes))
	for attr := range old.Indexes {
		indexAttrs = append(indexAttrs, attr)
	}
	old.Heap.Drop()
	db.rels[table] = fresh
	db.tables[table] = newTable
	for _, attr := range indexAttrs {
		if err := db.CreateIndex(table, attr); err != nil {
			return true, err
		}
	}
	return true, db.afterWrite(table)
}

// DropTable removes a base table and its storage. Tables referenced by a
// view cannot be dropped; drop the view first.
func (db *Database) DropTable(table string) error {
	t, ok := db.tables[table]
	if !ok {
		return fmt.Errorf("core: %w %q", ErrUnknownTable, table)
	}
	for _, v := range db.cat.Views() {
		def, err := db.cat.View(v)
		if err != nil {
			continue
		}
		for _, vt := range def.Tables {
			if vt == table {
				return fmt.Errorf("core: table %q is referenced by view %q", table, v)
			}
		}
	}
	if err := t.Heap.Drop(); err != nil {
		return err
	}
	delete(db.tables, table)
	delete(db.rels, table)
	db.verMu.Lock()
	delete(db.versions, table)
	db.verMu.Unlock()
	if db.rcache != nil {
		db.rcache.InvalidateTable(table)
	}
	if db.pcache != nil {
		db.pcache.invalidateTable(table)
	}
	db.cat.DropTable(table)
	return nil
}

// DropView removes a view definition and any workload cache built for it.
func (db *Database) DropView(view string) error {
	if _, err := db.cat.View(view); err != nil {
		return err
	}
	db.cat.DropView(view)
	delete(db.caches, view)
	return nil
}

// afterWrite refreshes statistics, bumps the table's version (lazily
// invalidating result-cache and plan-cache entries through their
// fingerprints, and eagerly through the InvalidateTable hooks), and
// invalidates workload caches of views that reference the table.
func (db *Database) afterWrite(table string) error {
	db.bumpVersion(table)
	if db.rcache != nil {
		db.rcache.InvalidateTable(table)
	}
	if db.pcache != nil {
		db.pcache.invalidateTable(table)
	}
	if err := db.cat.AddTable(catalog.AnalyzeRelation(db.rels[table])); err != nil {
		return err
	}
	for view := range db.caches {
		def, err := db.cat.View(view)
		if err != nil {
			continue
		}
		for _, t := range def.Tables {
			if t == table {
				delete(db.caches, view)
				break
			}
		}
	}
	return nil
}
