package core

import (
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// twoTableDB loads a small two-table view for the extended-form tests.
func twoTableDB(t *testing.T) (*Database, *relation.Relation, *relation.Relation) {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	price, _ := relation.FromRows("price",
		[]relation.Attr{{Name: "part", Domain: 3}, {Name: "supplier", Domain: 2}},
		[][]int32{{0, 0}, {1, 0}, {2, 1}}, []float64{10, 7, 30})
	qty, _ := relation.FromRows("qty",
		[]relation.Attr{{Name: "part", Domain: 3}, {Name: "warehouse", Domain: 2}},
		[][]int32{{0, 0}, {1, 0}, {1, 1}, {2, 1}}, []float64{100, 50, 25, 10})
	if err := db.CreateTable(price); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(qty); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("spend", []string{"price", "qty"}); err != nil {
		t.Fatal(err)
	}
	return db, price, qty
}

func TestHavingConstrainedRange(t *testing.T) {
	db, _, _ := twoTableDB(t)
	// Spend per part: part0 = 1000, part1 = 525, part2 = 300.
	full, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Relation.Len() != 3 {
		t.Fatalf("want 3 parts, got %d", full.Relation.Len())
	}
	cases := []struct {
		h    Having
		want int
	}{
		{Having{HavingLT, 600}, 2},
		{Having{HavingLE, 525}, 2},
		{Having{HavingGT, 525}, 1},
		{Having{HavingGE, 525}, 2},
		{Having{HavingEQ, 300}, 1},
	}
	for _, c := range cases {
		res, err := db.Query(&QuerySpec{
			View: "spend", GroupVars: []string{"part"}, Having: &c.h,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Relation.Len() != c.want {
			t.Fatalf("having f %s %v: %d rows, want %d",
				c.h.Op, c.h.Value, res.Relation.Len(), c.want)
		}
		if res.Exec.RowsOut != int64(c.want) {
			t.Fatal("RowsOut not updated by having")
		}
	}
	// Memory execution honors having too.
	res, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Having: &Having{HavingLT, 600}, Exec: MemoryExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 2 {
		t.Fatal("memory exec having wrong")
	}
}

// TestHypotheticalAlternateMeasure reproduces §3.1's alternate-measure
// form: "what if part 1 was a different price?"
func TestHypotheticalAlternateMeasure(t *testing.T) {
	db, price, _ := twoTableDB(t)
	hyp := price.Clone()
	// part 1 now costs 70 instead of 7.
	for i := 0; i < hyp.Len(); i++ {
		if hyp.Value(i, 0) == 1 {
			hyp.SetMeasure(i, 70)
		}
	}
	res, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": hyp},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.Sort()
	// part1 spend becomes 70·(50+25) = 5250.
	if res.Relation.Measure(1) != 5250 {
		t.Fatalf("hypothetical part-1 spend = %v, want 5250", res.Relation.Measure(1))
	}
	// Base tables unchanged: a normal query still sees the old price.
	base, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	base.Relation.Sort()
	if base.Relation.Measure(1) != 525 {
		t.Fatalf("base table mutated by hypothetical query: %v", base.Relation.Measure(1))
	}
	// Memory exec agrees.
	mem, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": hyp},
		Exec:         MemoryExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(mem.Relation, res.Relation, 0, 1e-9) {
		t.Fatal("hypothetical memory exec disagrees with engine")
	}
}

// TestHypotheticalAlternateDomain reproduces §3.1's alternate-domain
// form: move part 2's stock from warehouse 1 to warehouse 0.
func TestHypotheticalAlternateDomain(t *testing.T) {
	db, _, qty := twoTableDB(t)
	hyp := relation.MustNew("qty", qty.Attrs())
	for i := 0; i < qty.Len(); i++ {
		row := append([]int32(nil), qty.Row(i)...)
		if row[0] == 2 {
			row[1] = 0
		}
		hyp.MustAppend(row, qty.Measure(i))
	}
	res, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"warehouse"},
		Hypothetical: map[string]*relation.Relation{"qty": hyp},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.Sort()
	// warehouse0: 10·100 + 7·50 + 30·10 = 1650; warehouse1: 7·25 = 175.
	if res.Relation.Measure(0) != 1650 || res.Relation.Measure(1) != 175 {
		t.Fatalf("alternate-domain result wrong: %v", res.Relation)
	}
}

func TestHypotheticalValidation(t *testing.T) {
	db, price, _ := twoTableDB(t)
	// Unknown table.
	if _, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"ghost": price},
	}); err == nil {
		t.Fatal("hypothetical for non-view table should error")
	}
	// Wrong schema.
	bad := relation.MustNew("price", []relation.Attr{{Name: "part", Domain: 3}})
	if _, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": bad},
	}); err == nil {
		t.Fatal("hypothetical with missing variable should error")
	}
	// Wrong domain.
	bad2 := relation.MustNew("price",
		[]relation.Attr{{Name: "part", Domain: 9}, {Name: "supplier", Domain: 2}})
	if _, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": bad2},
	}); err == nil {
		t.Fatal("hypothetical with wrong domain should error")
	}
	// FD violation.
	bad3 := price.Clone()
	bad3.MustAppend([]int32{0, 0}, 99)
	if _, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": bad3},
	}); err == nil {
		t.Fatal("hypothetical violating the FD should error")
	}
}

// TestMaterializeSubquery: an MPF result is an FR and can seed further
// MPF views (§2's closure property).
func TestMaterializeSubquery(t *testing.T) {
	db, _, _ := twoTableDB(t)
	rel, err := db.Materialize("part_spend", &QuerySpec{
		View: "spend", GroupVars: []string{"part", "warehouse"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Fatal("materialized relation empty")
	}
	// Query the materialized result through a new view.
	if err := db.CreateView("spend2", []string{"part_spend"}); err != nil {
		t.Fatal(err)
	}
	got, err := db.Query(&QuerySpec{View: "spend2", GroupVars: []string{"warehouse"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"warehouse"}})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Relation, want.Relation, 0, 1e-9) {
		t.Fatal("subquery over materialized result differs from direct query")
	}
	// Name collisions are rejected.
	if _, err := db.Materialize("part_spend", &QuerySpec{
		View: "spend", GroupVars: []string{"part"},
	}); err == nil {
		t.Fatal("duplicate materialization name should error")
	}
}

// TestHypotheticalWithMinProduct combines the forms: minimum investment
// under a hypothetical price change.
func TestHypotheticalWithMinProduct(t *testing.T) {
	db, err := Open(Config{Semiring: semiring.MinProduct})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	price, _ := relation.FromRows("price",
		[]relation.Attr{{Name: "part", Domain: 2}, {Name: "supplier", Domain: 2}},
		[][]int32{{0, 0}, {0, 1}, {1, 0}}, []float64{10, 12, 7})
	if err := db.CreateTable(price); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("v", []string{"price"}); err != nil {
		t.Fatal(err)
	}
	hyp := price.Clone()
	hyp.SetMeasure(0, 20) // supplier 0's part-0 price doubles
	res, err := db.Query(&QuerySpec{
		View: "v", GroupVars: []string{"part"},
		Hypothetical: map[string]*relation.Relation{"price": hyp},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.Sort()
	if res.Relation.Measure(0) != 12 {
		t.Fatalf("min under hypothetical = %v, want 12", res.Relation.Measure(0))
	}
}
