package core

import (
	"sync"
	"testing"

	"mpf/internal/gen"
	"mpf/internal/opt"
	"mpf/internal/relation"
)

// TestConcurrentQueries runs read-only queries from many goroutines
// against one database: the buffer pool and catalog are mutex-guarded,
// plan building is pure, and every result must match the single-threaded
// answer. (Writes — CreateTable/Insert/Delete/BuildCache — are not
// concurrent-safe and are documented as such.)
func TestConcurrentQueries(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.7, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{PoolFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}

	vars := []string{"wid", "cid", "tid", "pid", "sid"}
	want := make(map[string]*relation.Relation, len(vars))
	for _, v := range vars {
		res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{v}})
		if err != nil {
			t.Fatal(err)
		}
		want[v] = res.Relation
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := vars[(w+i)%len(vars)]
				o := opt.All(nil)[(w+i)%3] // vary among cs / cs+linear / cs+nonlinear
				res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{v}, Optimizer: o})
				if err != nil {
					errs <- err
					return
				}
				if !relation.Equal(res.Relation, want[v], 0, 1e-6) {
					errs <- errMismatch(v)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent query mismatch on " + string(e) }
