package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

// faultFleet records every FaultDisk its factory produces so a test can
// rewrite the whole fleet's schedule mid-run — inject silent corruption
// after loading, or heal every disk and verify the engine recovers.
type faultFleet struct {
	mu    sync.Mutex
	disks []*storage.FaultDisk
}

func (f *faultFleet) factory(inner storage.DiskFactory, plan storage.FaultPlan) storage.DiskFactory {
	wrapped := storage.FaultDiskFactory(inner, plan)
	return func() (storage.Disk, error) {
		d, err := wrapped()
		if err != nil {
			return nil, err
		}
		fd := d.(*storage.FaultDisk)
		f.mu.Lock()
		f.disks = append(f.disks, fd)
		f.mu.Unlock()
		return fd, nil
	}
}

func (f *faultFleet) setAll(plan storage.FaultPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, d := range f.disks {
		d.SetPlan(plan)
	}
}

// chaosConfig is the full modern execution path under test: parallel
// workers, vectorized batches by default, read-ahead prefetching, a
// result cache, and a pool small enough that queries do real IO.
func chaosConfig() Config {
	return Config{
		PoolFrames:       8,
		Parallelism:      4,
		ReadAhead:        4,
		ResultCacheBytes: 1 << 20,
		IORetries:        8,
	}
}

// loadChaosTables creates the two dense relations of openCancelDB's
// schema (joined on b) plus the rs view.
func loadChaosTables(t *testing.T, db *Database) {
	t.Helper()
	r, err := relation.Complete("r", []relation.Attr{
		{Name: "a", Domain: 120}, {Name: "b", Domain: 40},
	}, func(vals []int32) float64 { return float64(vals[0]%7) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.Complete("s", []relation.Attr{
		{Name: "b", Domain: 40}, {Name: "c", Domain: 120},
	}, func(vals []int32) float64 { return float64(vals[1]%5) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("rs", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}
}

// chaosReference computes fault-free answers for every query in the
// matrix under the same engine configuration.
func chaosReference(t *testing.T, groupVars []string) map[string]*relation.Relation {
	t.Helper()
	db, err := Open(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadChaosTables(t, db)
	ref := make(map[string]*relation.Relation)
	for _, gv := range groupVars {
		res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
		if err != nil {
			t.Fatal(err)
		}
		ref[gv] = res.Relation
	}
	return ref
}

// matchesReference compares within float-associativity tolerance:
// parallel partition pairs emit join output in completion order, so
// injected retry latency can reorder downstream summation.
func matchesReference(got, want *relation.Relation) bool {
	return got != nil && want != nil && got.Len() == want.Len() &&
		relation.Equal(got, want, math.Inf(1), 1e-6)
}

// TestChaosTransientFaultsAbsorbed replays the query matrix on the full
// modern path (parallel + batch + read-ahead + result cache) over disks
// injecting transient read/write/alloc faults on 5% of operations. The
// retry machinery must absorb every fault: all queries succeed, every
// answer matches the fault-free reference, and no frame stays pinned.
// Run under -race this also drives concurrent retry/backoff paths.
func TestChaosTransientFaultsAbsorbed(t *testing.T) {
	groupVars := []string{"a", "b", "c"}
	ref := chaosReference(t, groupVars)

	fleet := &faultFleet{}
	cfg := chaosConfig()
	cfg.DiskFactory = fleet.factory(storage.MemDiskFactory(),
		storage.FaultPlan{Seed: 3, ReadErr: 0.05, WriteErr: 0.05, AllocErr: 0.05})
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadChaosTables(t, db)

	// Two passes: the second also exercises result-cache hits and
	// verifies cached answers survived the faulty first pass intact.
	// Cached entries legitimately keep their temp heap's disk registered,
	// so the leak check is stability across the cache-hit pass, not a
	// fixed count.
	registered := -1
	for pass := 0; pass < 2; pass++ {
		for _, gv := range groupVars {
			res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, gv, err)
			}
			if !matchesReference(res.Relation, ref[gv]) {
				t.Fatalf("pass %d %s: answer differs from fault-free reference", pass, gv)
			}
			if n := db.Pool().Pinned(); n != 0 {
				t.Fatalf("pass %d %s: %d frames left pinned", pass, gv, n)
			}
			if pass > 0 {
				if n := db.Pool().Registered(); n != registered {
					t.Fatalf("pass %d %s: %d disks registered, want %d (temp leaked)", pass, gv, n, registered)
				}
			}
		}
		if pass == 0 {
			registered = db.Pool().Registered()
		}
	}
	st := db.Pool().Stats()
	if st.Retries == 0 || st.TransientFaults == 0 {
		t.Fatalf("fault schedule never exercised the retry path: %+v", st)
	}
	if st.PermanentFaults != 0 || st.ChecksumFailures != 0 {
		t.Fatalf("transient-only schedule escaped retry: %+v", st)
	}
}

// TestChaosPermanentFaultsTypedAndRecoverable injects permanent read
// errors and silent corruption. Queries may fail, but only with errors
// matching ErrIO or ErrCorrupt — never a wrong answer — and every
// failure must leave zero pinned frames and no leaked temp disks. After
// healing the fleet, the engine answers correctly again.
func TestChaosPermanentFaultsTypedAndRecoverable(t *testing.T) {
	groupVars := []string{"a", "b", "c"}
	ref := chaosReference(t, groupVars)

	fleet := &faultFleet{}
	cfg := chaosConfig()
	cfg.ResultCacheBytes = 0 // cache hits would mask the fault paths
	cfg.DiskFactory = fleet.factory(storage.MemDiskFactory(), storage.FaultPlan{})
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadChaosTables(t, db)
	registered := db.Pool().Registered()

	// Load completed clean; now break the fleet.
	fleet.setAll(storage.FaultPlan{Seed: 5, PermReadErr: 0.05, Corrupt: 0.05, Torn: 0.02})
	var failures, ioErrs, corruptErrs int
	for pass := 0; pass < 4; pass++ {
		for _, gv := range groupVars {
			res, qerr := db.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
			if n := db.Pool().Pinned(); n != 0 {
				t.Fatalf("%s: %d frames left pinned", gv, n)
			}
			if n := db.Pool().Registered(); n != registered {
				t.Fatalf("%s: %d disks registered, want %d (temp leaked)", gv, n, registered)
			}
			switch {
			case qerr == nil:
				if !matchesReference(res.Relation, ref[gv]) {
					t.Fatalf("%s: corrupt disk produced a wrong answer instead of an error", gv)
				}
			case errors.Is(qerr, ErrCorrupt):
				failures++
				corruptErrs++
			case errors.Is(qerr, ErrIO):
				failures++
				ioErrs++
			default:
				t.Fatalf("%s: untyped failure under fault injection: %v", gv, qerr)
			}
		}
	}
	if failures == 0 {
		t.Fatal("fault schedule never fired; test exercised nothing")
	}
	st := db.Pool().Stats()
	if corruptErrs > 0 && st.ChecksumFailures == 0 {
		t.Fatalf("corrupt errors surfaced but no checksum failures counted: %+v", st)
	}

	// Heal the fleet: the engine must answer every query correctly.
	fleet.setAll(storage.FaultPlan{})
	for _, gv := range groupVars {
		res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
		if err != nil {
			t.Fatalf("post-heal %s: %v", gv, err)
		}
		if !matchesReference(res.Relation, ref[gv]) {
			t.Fatalf("post-heal %s: answer differs from reference", gv)
		}
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d frames pinned after recovery", n)
	}
}

// TestChaosCancelDuringFaultyQuery cancels a parallel batched query
// mid-flight while its latency disks are also injecting transient
// faults (read-ahead enabled, so prefetch-path faults fire too). The
// full cancellation contract must hold: typed error, prompt return,
// zero pinned frames, no leaked temps — and the same query succeeds
// afterwards.
func TestChaosCancelDuringFaultyQuery(t *testing.T) {
	fleet := &faultFleet{}
	db, err := Open(Config{
		PoolFrames:  16,
		Parallelism: 4,
		ReadAhead:   4,
		IORetries:   4,
		DiskFactory: fleet.factory(
			storage.LatencyMemDiskFactory(time.Millisecond, time.Millisecond),
			storage.FaultPlan{Seed: 11, ReadErr: 0.1, WriteErr: 0.1, SlowProb: 0.05, SlowDelay: 2 * time.Millisecond}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	r, err := relation.Complete("r", []relation.Attr{
		{Name: "a", Domain: 400}, {Name: "b", Domain: 40},
	}, func(vals []int32) float64 { return float64(vals[0]%7) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.Complete("s", []relation.Attr{
		{Name: "b", Domain: 40}, {Name: "c", Domain: 400},
	}, func(vals []int32) float64 { return float64(vals[1]%5) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("rs", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}
	registered := db.Pool().Registered()

	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(25 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	_, qerr := db.QueryContext(ctx, &QuerySpec{View: "rs", GroupVars: []string{"b"}})
	since := time.Since(canceledAt)
	assertCanceledCleanly(t, db, qerr, context.Canceled, since, registered)

	// Heal and rerun: cancellation under injection left no residue.
	fleet.setAll(storage.FaultPlan{})
	res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 40 {
		t.Fatalf("post-cancel query returned %d rows, want 40", res.Relation.Len())
	}
}

// TestCorruptReadInvalidatesResultCache checks the degradation contract
// around the result cache: a corrupt read fails the query with
// ErrCorrupt and evicts cached entries over the damaged table, so a
// later hit cannot serve an answer whose table is known-bad; after
// healing, the query recomputes and caches cleanly.
func TestCorruptReadInvalidatesResultCache(t *testing.T) {
	fleet := &faultFleet{}
	cfg := Config{PoolFrames: 4, ResultCacheBytes: 1 << 20, IORetries: 2,
		DiskFactory: fleet.factory(storage.MemDiskFactory(), storage.FaultPlan{})}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	loadChaosTables(t, db)

	// Prime the cache with a clean answer.
	res1, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Every read now returns a flipped bit: the next uncached query must
	// fail with ErrCorrupt, not a wrong answer. (The pool is 4 frames, so
	// the scan must fill from disk.)
	fleet.setAll(storage.FaultPlan{Seed: 9, Corrupt: 1})
	_, qerr := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"a", "c"}})
	if !errors.Is(qerr, ErrCorrupt) {
		t.Fatalf("flipped-bit read surfaced %v, want ErrCorrupt", qerr)
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d frames pinned after corrupt failure", n)
	}

	// Heal; the engine keeps serving, and the primed query still answers
	// (recomputed or cached — either way it must match).
	fleet.setAll(storage.FaultPlan{})
	res2, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatalf("post-heal query: %v", err)
	}
	if !matchesReference(res2.Relation, res1.Relation) {
		t.Fatal("post-heal answer differs from pre-corruption answer")
	}
	st := db.Pool().Stats()
	if st.ChecksumFailures == 0 {
		t.Fatalf("corruption never detected by checksums: %+v", st)
	}
}

// TestChaosColumnarUnderFaults replays the chaos matrix with columnar
// page encoding on, across the three encoded execution paths — hash
// aggregation, the fused join+aggregate, and sort-based aggregation —
// first fault-free, where every answer must be bit-identical to the same
// path's row-major configuration (the encodings change CPU work, never
// results), then over disks injecting transient faults on 5% of
// operations, where the retry machinery must absorb every fault —
// encoded pages round-trip through the checksum/retry paths like any
// other page. Run under -race this drives concurrent encoded scans.
func TestChaosColumnarUnderFaults(t *testing.T) {
	groupVars := []string{"a", "b", "c"}

	for _, mode := range []struct {
		name string
		// tune applies the mode's execution knobs to an opened database.
		tune func(db *Database)
	}{
		{"hash", func(db *Database) {}},
		{"fused", func(db *Database) { db.Engine().FuseJoinGroupBy = true }},
		{"sort", func(db *Database) {
			db.Engine().SortGroupBy = true
			// Small runs so the sorts spill and merge under faults.
			db.Engine().SortRunTuples = 512
		}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			// Row-major reference for THIS path: bit-identity is a
			// per-path contract (paths may emit groups in different
			// orders, but layout never changes a path's answer).
			rowDB, err := Open(chaosConfig())
			if err != nil {
				t.Fatal(err)
			}
			loadChaosTables(t, rowDB)
			mode.tune(rowDB)
			ref := make(map[string]*relation.Relation)
			for _, gv := range groupVars {
				res, err := rowDB.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
				if err != nil {
					t.Fatalf("row-major %s: %v", gv, err)
				}
				ref[gv] = res.Relation
			}
			rowDB.Close()

			// Fault-free columnar pass: bit-identical to row-major answers.
			colCfg := chaosConfig()
			colCfg.Columnar = true
			cleanDB, err := Open(colCfg)
			if err != nil {
				t.Fatal(err)
			}
			loadChaosTables(t, cleanDB)
			mode.tune(cleanDB)
			refCol := make(map[string]*relation.Relation)
			for _, gv := range groupVars {
				res, err := cleanDB.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
				if err != nil {
					t.Fatalf("clean columnar %s: %v", gv, err)
				}
				if !relation.Equal(res.Relation, ref[gv], 0, 0) {
					t.Fatalf("%s: columnar answer differs bit-wise from row-major", gv)
				}
				refCol[gv] = res.Relation
			}
			if es := cleanDB.Pool().EncodingStats(); es.PagesEncoded == 0 {
				t.Fatal("columnar chaos config never encoded a page")
			}
			cleanDB.Close()

			// Transient-fault pass: every query succeeds and matches within
			// the harness's float-reorder tolerance; no frame stays pinned.
			fleet := &faultFleet{}
			cfg := colCfg
			cfg.DiskFactory = fleet.factory(storage.MemDiskFactory(),
				storage.FaultPlan{Seed: 17, ReadErr: 0.05, WriteErr: 0.05, AllocErr: 0.05})
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			loadChaosTables(t, db)
			mode.tune(db)
			for pass := 0; pass < 2; pass++ {
				for _, gv := range groupVars {
					res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{gv}})
					if err != nil {
						t.Fatalf("pass %d %s: %v", pass, gv, err)
					}
					if !matchesReference(res.Relation, refCol[gv]) {
						t.Fatalf("pass %d %s: faulty columnar answer differs from fault-free", pass, gv)
					}
					if n := db.Pool().Pinned(); n != 0 {
						t.Fatalf("pass %d %s: %d frames left pinned", pass, gv, n)
					}
				}
			}
			st := db.Pool().Stats()
			if st.Retries == 0 || st.TransientFaults == 0 {
				t.Fatalf("fault schedule never exercised the retry path: %+v", st)
			}
			if es := db.Pool().EncodingStats(); es.PagesEncoded == 0 {
				t.Fatal("faulty columnar run never encoded a page")
			}
		})
	}
}
