package core

import (
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestInsertUpdatesQueryResults(t *testing.T) {
	db, _, _ := twoTableDB(t)
	before, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	// New supplier price for part 0.
	if err := db.Insert("price", []int32{0, 1}, 4); err != nil {
		t.Fatal(err)
	}
	after, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	before.Relation.Sort()
	after.Relation.Sort()
	// part0 gains 4·100 = 400 over the old total.
	if after.Relation.Measure(0) != before.Relation.Measure(0)+400 {
		t.Fatalf("insert not reflected: %v -> %v", before.Relation.Measure(0), after.Relation.Measure(0))
	}
	// Both execution modes agree post-insert.
	mem, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}, Exec: MemoryExec})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(mem.Relation, after.Relation, 0, 1e-9) {
		t.Fatal("engine and memory disagree after insert")
	}
	// Stats refreshed.
	st, _ := db.Catalog().Table("price")
	if st.Card != 4 {
		t.Fatalf("catalog card = %d, want 4", st.Card)
	}
}

func TestInsertEnforcesFD(t *testing.T) {
	db, _, _ := twoTableDB(t)
	if err := db.Insert("price", []int32{0, 0}, 99); err == nil {
		t.Fatal("duplicate assignment must be rejected")
	}
	if err := db.Insert("ghost", []int32{0}, 1); err == nil {
		t.Fatal("unknown table must error")
	}
	if err := db.Insert("price", []int32{0}, 1); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestInsertMaintainsIndex(t *testing.T) {
	db, _, _ := twoTableDB(t)
	if err := db.CreateIndex("price", "part"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("price", []int32{0, 1}, 4); err != nil {
		t.Fatal(err)
	}
	// A selective query that will use the index must see the new tuple.
	res, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"supplier"}, Where: relation.Predicate{"part": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Relation.Sort()
	// part0: supplier0 pays 10·100=1000, supplier1 pays 4·100=400.
	if res.Relation.Len() != 2 || res.Relation.Measure(1) != 400 {
		t.Fatalf("index missed the inserted tuple: %v", res.Relation)
	}
}

func TestDeleteRemovesTuple(t *testing.T) {
	db, _, _ := twoTableDB(t)
	if err := db.CreateIndex("price", "part"); err != nil {
		t.Fatal(err)
	}
	removed, err := db.Delete("price", []int32{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !removed {
		t.Fatal("existing tuple should be removed")
	}
	removed, err = db.Delete("price", []int32{1, 0})
	if err != nil || removed {
		t.Fatal("second delete should be a no-op")
	}
	res, err := db.Query(&QuerySpec{View: "spend", GroupVars: []string{"part"}})
	if err != nil {
		t.Fatal(err)
	}
	// part1 now has no price: only parts 0 and 2 remain.
	if res.Relation.Len() != 2 {
		t.Fatalf("want 2 parts after delete, got %d", res.Relation.Len())
	}
	// Index rebuilt: a predicate query still works through it.
	sel, err := db.Query(&QuerySpec{
		View: "spend", GroupVars: []string{"part"}, Where: relation.Predicate{"part": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Relation.Len() != 1 {
		t.Fatalf("indexed query after delete wrong: %v", sel.Relation)
	}
	if _, err := db.Delete("ghost", []int32{0}); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := db.Delete("price", []int32{0}); err == nil {
		t.Fatal("wrong arity must error")
	}
}

func TestWritesInvalidateCaches(t *testing.T) {
	db, _, _ := twoTableDB(t)
	if _, err := db.BuildCache("spend", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cache("spend"); err != nil {
		t.Fatal("cache should exist")
	}
	if err := db.Insert("price", []int32{0, 1}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cache("spend"); err == nil {
		t.Fatal("insert must invalidate the cache")
	}
	// QueryCached falls back to full evaluation and reflects the insert.
	ans, err := db.QueryCached("spend", "part")
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := relation.ProductJoin(semiring.SumProduct, mustRel(t, db, "price"), mustRel(t, db, "qty"))
	want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"part"})
	if !relation.Equal(ans, want, 0, 1e-9) {
		t.Fatal("fallback answer stale after insert")
	}
	// Rebuilding restores cached answering.
	if _, err := db.BuildCache("spend", nil); err != nil {
		t.Fatal(err)
	}
	ans2, err := db.QueryCached("spend", "part")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(ans2, want, 0, 1e-9) {
		t.Fatal("rebuilt cache wrong")
	}
}

func mustRel(t *testing.T, db *Database, name string) *relation.Relation {
	t.Helper()
	r, err := db.Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
