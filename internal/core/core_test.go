package core

import (
	"testing"

	"mpf/internal/gen"
	"mpf/internal/opt"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func openSupplyChain(t *testing.T, cfg Config) (*Database, *gen.Dataset) {
	t.Helper()
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}
	return db, ds
}

func TestCreateTableValidation(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	anon := relation.MustNew("", []relation.Attr{{Name: "a", Domain: 2}})
	if err := db.CreateTable(anon); err == nil {
		t.Fatal("unnamed relation should error")
	}
	bad := relation.MustNew("bad", []relation.Attr{{Name: "a", Domain: 2}})
	bad.MustAppend([]int32{0}, 1)
	bad.MustAppend([]int32{0}, 2)
	if err := db.CreateTable(bad); err == nil {
		t.Fatal("FD violation should error")
	}
	ok := relation.MustNew("ok", []relation.Attr{{Name: "a", Domain: 2}})
	ok.MustAppend([]int32{0}, 1)
	if err := db.CreateTable(ok); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(ok); err == nil {
		t.Fatal("duplicate table should error")
	}
	if _, err := db.Relation("ghost"); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func TestQueryEngineVsMemoryAgree(t *testing.T) {
	db, ds := openSupplyChain(t, Config{PoolFrames: 32})
	for _, v := range []string{"wid", "cid", "tid"} {
		spec := &QuerySpec{View: "invest", GroupVars: []string{v}}
		eng, err := db.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		spec2 := &QuerySpec{View: "invest", GroupVars: []string{v}, Exec: MemoryExec}
		mem, err := db.Query(spec2)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(eng.Relation, mem.Relation, 0, 1e-6) {
			t.Fatalf("engine and memory execution disagree on %s", v)
		}
		if eng.Plan == nil || eng.Optimize <= 0 {
			t.Fatal("missing plan or optimize time")
		}
		if eng.Exec.Operators == 0 {
			t.Fatal("missing exec stats")
		}
	}
	_ = ds
}

func TestQueryMatchesOracle(t *testing.T) {
	db, ds := openSupplyChain(t, Config{})
	joint, err := relation.ProductJoinAll(semiring.SumProduct, ds.Relations...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(&QuerySpec{
		View: "invest", GroupVars: []string{"cid"},
		Where: relation.Predicate{"tid": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel, _ := relation.Select(joint, relation.Predicate{"tid": 1})
	want, _ := relation.Marginalize(semiring.SumProduct, sel, []string{"cid"})
	if !relation.Equal(res.Relation, want, 0, 1e-6) {
		t.Fatal("query result differs from oracle")
	}
}

func TestQueryWithExplicitOptimizers(t *testing.T) {
	db, _ := openSupplyChain(t, Config{})
	var base *relation.Relation
	for _, o := range []opt.Optimizer{opt.CS{}, opt.CSPlus{Linear: true}, opt.VE{Heuristic: opt.Width, Extended: true}} {
		res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}, Optimizer: o})
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if base == nil {
			base = res.Relation
			continue
		}
		if !relation.Equal(base, res.Relation, 0, 1e-6) {
			t.Fatalf("optimizer %s changed the answer", o.Name())
		}
	}
}

func TestExplain(t *testing.T) {
	db, _ := openSupplyChain(t, Config{})
	p, d, err := db.Explain(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || d <= 0 {
		t.Fatal("explain must return a plan and time")
	}
	if _, _, err := db.Explain(&QuerySpec{View: "ghost", GroupVars: []string{"wid"}}); err == nil {
		t.Fatal("unknown view should error")
	}
}

func TestViewValidation(t *testing.T) {
	db, _ := openSupplyChain(t, Config{})
	if err := db.CreateView("v2", []string{"ghost"}); err == nil {
		t.Fatal("view over unknown table should error")
	}
}

func TestBuildAndQueryCache(t *testing.T) {
	db, ds := openSupplyChain(t, Config{})
	cache, err := db.BuildCache("invest", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cache.Size() == 0 {
		t.Fatal("cache empty")
	}
	got, err := db.Cache("invest")
	if err != nil || got != cache {
		t.Fatal("Cache lookup failed")
	}
	joint, _ := relation.ProductJoinAll(semiring.SumProduct, ds.Relations...)
	for _, v := range ds.QueryVars {
		ans, err := db.QueryCached("invest", v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{v})
		if !relation.Equal(ans, want, 0, 1e-6) {
			t.Fatalf("cached answer for %s wrong", v)
		}
	}
	if _, err := db.Cache("ghost"); err == nil {
		t.Fatal("unknown cache should error")
	}
}

func TestQueryCachedFallsBack(t *testing.T) {
	db, _ := openSupplyChain(t, Config{})
	// No cache built yet: falls back to full evaluation.
	ans, err := db.QueryCached("invest", "tid")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() == 0 {
		t.Fatal("fallback answer empty")
	}
}

func TestMinProductDatabase(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Semiring: semiring.MinProduct})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"pid"}})
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := relation.ProductJoinAll(semiring.MinProduct, ds.Relations...)
	want, _ := relation.Marginalize(semiring.MinProduct, joint, []string{"pid"})
	if !relation.Equal(res.Relation, want, semiring.MinProduct.Zero(), 1e-6) {
		t.Fatal("min-product query wrong")
	}
}

func TestFileBackedDatabase(t *testing.T) {
	dir := t.TempDir()
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{Dir: dir, PoolFrames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.IO.Reads == 0 {
		t.Fatal("file-backed run with a 16-frame pool should do physical IO")
	}
}
