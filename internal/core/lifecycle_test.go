package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mpf/internal/gen"
	"mpf/internal/relation"
	"mpf/internal/storage"
)

// openCancelDB builds a database on simulated 1ms-latency disks with a
// small pool and two dense tables sharing variable b, sized so that an
// engine query runs for hundreds of milliseconds — long enough to cancel
// mid-flight deterministically.
func openCancelDB(t *testing.T, parallelism int) *Database {
	t.Helper()
	db, err := Open(Config{
		PoolFrames:  16,
		DiskFactory: storage.LatencyMemDiskFactory(time.Millisecond, time.Millisecond),
		Parallelism: parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	r, err := relation.Complete("r", []relation.Attr{
		{Name: "a", Domain: 400}, {Name: "b", Domain: 40},
	}, func(vals []int32) float64 { return float64(vals[0]%7) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.Complete("s", []relation.Attr{
		{Name: "b", Domain: 40}, {Name: "c", Domain: 400},
	}, func(vals []int32) float64 { return float64(vals[1]%5) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("rs", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertCanceledCleanly checks the full cancellation contract: the error
// matches both the public sentinel and the context error, the query
// returned promptly after the cancel, no buffer-pool frame stayed
// pinned, and every temp-table disk was unregistered.
func assertCanceledCleanly(t *testing.T, db *Database, err error, cause error, sinceCancel time.Duration, wantRegistered int) {
	t.Helper()
	if err == nil {
		t.Fatal("canceled query returned no error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not match %v", err, cause)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CancelError", err)
	}
	if sinceCancel > 100*time.Millisecond {
		t.Fatalf("query took %v after cancellation, want <= 100ms", sinceCancel)
	}
	if n := db.Pool().Pinned(); n != 0 {
		t.Fatalf("%d buffer-pool frames still pinned after canceled query", n)
	}
	if n := db.Pool().Registered(); n != wantRegistered {
		t.Fatalf("%d disks registered after canceled query, want %d (temp tables leaked)", n, wantRegistered)
	}
}

// TestQueryCancelGraceJoin cancels a query mid Grace hash join on
// 1ms-latency disks and requires it to return within 100ms with zero
// pinned frames and no leaked temp tables.
func TestQueryCancelGraceJoin(t *testing.T) {
	db := openCancelDB(t, 0)
	db.Engine().HashJoinMaxBuild = 64 // force the Grace partitioned path
	registered := db.Pool().Registered()

	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(25 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	_, err := db.QueryContext(ctx, &QuerySpec{View: "rs", GroupVars: []string{"b"}})
	since := time.Since(canceledAt)
	assertCanceledCleanly(t, db, err, context.Canceled, since, registered)

	m := db.Metrics()
	if m.QueriesStarted != 1 || m.QueriesFinished != 1 || m.QueriesCanceled != 1 {
		t.Fatalf("metrics after cancel: started=%d finished=%d canceled=%d, want 1/1/1",
			m.QueriesStarted, m.QueriesFinished, m.QueriesCanceled)
	}

	// The same query succeeds afterwards: cancellation left no residue.
	res, err := db.Query(&QuerySpec{View: "rs", GroupVars: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 40 {
		t.Fatalf("post-cancel query returned %d rows, want 40", res.Relation.Len())
	}
}

// TestQueryCancelParallelSort cancels a sort-based parallel query during
// run generation (the PR 1 worker pools) under the same contract.
func TestQueryCancelParallelSort(t *testing.T) {
	db := openCancelDB(t, 4)
	db.Engine().SortJoin = true
	db.Engine().SortGroupBy = true
	db.Engine().SortRunTuples = 512 // many runs -> parallel generation
	registered := db.Pool().Registered()

	ctx, cancel := context.WithCancel(context.Background())
	var canceledAt time.Time
	go func() {
		time.Sleep(25 * time.Millisecond)
		canceledAt = time.Now()
		cancel()
	}()
	_, err := db.QueryContext(ctx, &QuerySpec{View: "rs", GroupVars: []string{"b"}})
	since := time.Since(canceledAt)
	assertCanceledCleanly(t, db, err, context.Canceled, since, registered)
}

// TestQueryDeadline runs the Grace query under a context deadline; the
// error must match ErrCanceled and context.DeadlineExceeded.
func TestQueryDeadline(t *testing.T) {
	db := openCancelDB(t, 0)
	db.Engine().HashJoinMaxBuild = 64
	registered := db.Pool().Registered()

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	deadline, _ := ctx.Deadline()
	_, err := db.QueryContext(ctx, &QuerySpec{View: "rs", GroupVars: []string{"b"}})
	since := time.Since(deadline)
	assertCanceledCleanly(t, db, err, context.DeadlineExceeded, since, registered)
}

// TestExplainContextCanceled verifies planning observes a pre-canceled
// context.
func TestExplainContextCanceled(t *testing.T) {
	db, _ := openSupplyChain(t, Config{PoolFrames: 32})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := db.ExplainContext(ctx, &QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("explain with canceled ctx returned %v", err)
	}
}

// TestTypedErrors exercises every sentinel at the public API boundary.
func TestTypedErrors(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Relation("ghost"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("Relation(ghost) = %v, want ErrUnknownTable", err)
	}
	if err := db.CreateIndex("ghost", "a"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("CreateIndex(ghost) = %v, want ErrUnknownTable", err)
	}
	if err := db.DropTable("ghost"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("DropTable(ghost) = %v, want ErrUnknownTable", err)
	}
	if _, err := db.Query(&QuerySpec{View: "ghost", GroupVars: []string{"a"}}); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("Query(unknown view) = %v, want ErrUnknownView", err)
	}
	if err := db.DropView("ghost"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("DropView(ghost) = %v, want ErrUnknownView", err)
	}

	bad := relation.MustNew("bad", []relation.Attr{{Name: "a", Domain: 2}})
	bad.MustAppend([]int32{0}, 1)
	bad.MustAppend([]int32{0}, 2)
	if err := db.CreateTable(bad); !errors.Is(err, ErrNotFunctional) {
		t.Fatalf("CreateTable(FD violation) = %v, want ErrNotFunctional", err)
	}

	ok := relation.MustNew("ok", []relation.Attr{{Name: "a", Domain: 2}})
	ok.MustAppend([]int32{0}, 1)
	if err := db.CreateTable(ok); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(ok); !errors.Is(err, ErrDuplicateTable) {
		t.Fatalf("CreateTable(dup) = %v, want ErrDuplicateTable", err)
	}

	if err := db.CreateView("v", []string{"ok"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(&QuerySpec{View: "v", GroupVars: []string{"a"}, Exec: ExecMode(99)}); !errors.Is(err, ErrUnknownExecMode) {
		t.Fatalf("Query(bad exec mode) = %v, want ErrUnknownExecMode", err)
	}
}

// TestMetricsMatchRunStats runs concurrent queries (run under -race in
// make check) and requires the registry totals to equal the sums of the
// per-query RunStats, and the snapshot's pool counters to equal the
// pool's own.
func TestMetricsMatchRunStats(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.7, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{PoolFrames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}

	before := db.Metrics()
	vars := []string{"wid", "cid", "tid", "pid", "sid"}
	const workers = 8
	const rounds = 4
	var (
		mu            sync.Mutex
		rows, temps   int64
		ops           int64
		firstQueryErr error
		wg            sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := db.QueryContext(context.Background(),
					&QuerySpec{View: "invest", GroupVars: []string{vars[(w+i)%len(vars)]}})
				mu.Lock()
				if err != nil {
					if firstQueryErr == nil {
						firstQueryErr = err
					}
				} else {
					rows += res.Exec.RowsOut
					temps += res.Exec.TempTuples
					ops += int64(res.Exec.Operators)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstQueryErr != nil {
		t.Fatal(firstQueryErr)
	}

	after := db.Metrics()
	total := workers * rounds
	if got := after.QueriesStarted - before.QueriesStarted; got != int64(total) {
		t.Fatalf("QueriesStarted delta = %d, want %d", got, total)
	}
	if got := after.QueriesFinished - before.QueriesFinished; got != int64(total) {
		t.Fatalf("QueriesFinished delta = %d, want %d", got, total)
	}
	if after.QueriesCanceled != before.QueriesCanceled || after.QueriesFailed != before.QueriesFailed {
		t.Fatalf("unexpected canceled/failed counts: %+v", after)
	}
	if got := after.RowsOut - before.RowsOut; got != rows {
		t.Fatalf("RowsOut delta = %d, want %d", got, rows)
	}
	if got := after.TempTuples - before.TempTuples; got != temps {
		t.Fatalf("TempTuples delta = %d, want %d", got, temps)
	}
	if got := after.Operators - before.Operators; got != ops {
		t.Fatalf("Operators delta = %d, want %d", got, ops)
	}
	if after.Pool != db.Pool().Stats() {
		t.Fatalf("snapshot pool stats %+v != pool stats %+v", after.Pool, db.Pool().Stats())
	}
	var kindOps int64
	for _, k := range after.OpKinds {
		kindOps += k.Count
	}
	if kindOps < after.Operators-before.Operators {
		t.Fatalf("per-kind op count %d < operators %d", kindOps, after.Operators-before.Operators)
	}
}

// TestResultTrace checks that an engine query carries a well-formed span
// trace: same length as Ops, a single depth-0 root completing last, and
// monotone span windows.
func TestResultTrace(t *testing.T) {
	db, _ := openSupplyChain(t, Config{PoolFrames: 32})
	res, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 || len(res.Trace) != len(res.Exec.Ops) {
		t.Fatalf("trace has %d spans, ops %d", len(res.Trace), len(res.Exec.Ops))
	}
	root := res.Trace[len(res.Trace)-1]
	if root.Depth != 0 {
		t.Fatalf("last span depth = %d, want 0 (root completes last)", root.Depth)
	}
	for i, sp := range res.Trace {
		if sp.Stop < sp.Start {
			t.Fatalf("span %d stops before it starts: %+v", i, sp)
		}
		if sp.Desc != res.Exec.Ops[i].Desc || sp.Rows != res.Exec.Ops[i].Rows {
			t.Fatalf("span %d disagrees with op stat: %+v vs %+v", i, sp, res.Exec.Ops[i])
		}
		if sp.Kind == "" {
			t.Fatalf("span %d has empty kind", i)
		}
	}
}
