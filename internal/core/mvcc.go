package core

// Multi-version catalog: snapshot-isolation reads concurrent with
// writers.
//
// Every query runs against an immutable catalog version pinned at
// admission (a Snapshot). Writers never mutate the version readers
// hold: a commit clones the current version's maps, builds fresh heap
// storage for the written table off to the side (copy-on-write), and
// publishes the new version by swapping one pointer under a short
// critical section. Commits are serialized by Database.commitMu;
// readers never take it, so a long analytical query cannot stall
// ingest and sustained ingest cannot stall readers.
//
// Reclamation is epoch-based: each catalog version counts the
// snapshots pinning it, and each table generation (tableVersion)
// counts the catalog versions referencing it. When the last snapshot
// of a superseded version is released, the version's table references
// are dropped; any generation that reaches zero references has its
// heap dropped — with zero pinned buffer-pool frames, enforced by the
// pool (Discard fails on pinned pages) and by the mvcc experiment.
//
// Crash consistency: a commit flushes the new generation's dirty pages
// (Pool.FlushDisk) before publishing, so a write-path fault surfaces
// to the committing writer as a typed ErrIO and the commit aborts with
// the old version still fully served — readers never observe partial
// state, because nothing becomes visible before the atomic pointer
// swap.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpf/internal/catalog"
	"mpf/internal/exec"
	"mpf/internal/metrics"
	"mpf/internal/relation"
)

// tableVersion is one immutable loaded generation of a base table: the
// heap-backed exec.Table plus a reference count of catalog versions
// that include it. Guarded by Database.mv.mu; at zero references the
// heap is dropped.
type tableVersion struct {
	tab  *exec.Table
	refs int
}

// catVersion is one immutable catalog version. All maps are private to
// the version: a commit clones them, so published versions are never
// mutated. versions/verSeq carry the monotone per-table version
// sequence that plan and result-cache fingerprints embed, making cache
// keys correct per snapshot.
type catVersion struct {
	// seq is the catalog version sequence number, bumped once per
	// published commit. Result.Snapshot reports it.
	seq      int64
	rels     map[string]*relation.Relation
	tables   map[string]*tableVersion
	cat      *catalog.Catalog
	versions map[string]int64
	verSeq   int64
	// pins counts snapshots holding this version; current marks the
	// visible version. Both guarded by Database.mv.mu. A version is
	// reclaimed when it is not current and pins reaches zero.
	pins    int
	current bool
}

// tableVersionOf reports the version's monotone sequence value for a
// base table; ok=false for unknown names, which plan.Fingerprints
// treats as uncacheable.
func (v *catVersion) tableVersionOf(name string) (int64, bool) {
	n, ok := v.versions[name]
	return n, ok
}

// table returns the version's generation of a base table.
func (v *catVersion) table(name string) (*exec.Table, bool) {
	tv, ok := v.tables[name]
	if !ok {
		return nil, false
	}
	return tv.tab, true
}

// releaseTablesLocked decrements the reference count of every table
// generation in the version, returning the generations that reached
// zero (their heaps must be dropped by the caller, outside mv.mu).
// Caller holds Database.mv.mu.
func (v *catVersion) releaseTablesLocked() []*tableVersion {
	var drop []*tableVersion
	for _, tv := range v.tables {
		tv.refs--
		if tv.refs == 0 {
			drop = append(drop, tv)
		}
	}
	return drop
}

// mvccState is the multi-version bookkeeping of a Database: the
// visible catalog-version pointer, live snapshots, and the counters
// reported in metrics.MVCCStats.
type mvccState struct {
	mu    sync.Mutex
	cur   *catVersion
	snaps map[*Snapshot]time.Time

	live          int64
	reclaimed     int64
	commits       int64
	commitFails   int64
	snapsAcquired int64
	snapsReleased int64
	writerStall   time.Duration
	// dropErr records the first heap-drop failure during reclamation
	// (e.g. a page still pinned, which would be a leak); Close reports
	// it.
	dropErr error
}

// initMVCC installs the empty initial catalog version.
func (db *Database) initMVCC() {
	db.mv.cur = &catVersion{
		rels:     make(map[string]*relation.Relation),
		tables:   make(map[string]*tableVersion),
		cat:      catalog.New(),
		versions: make(map[string]int64),
		current:  true,
	}
	db.mv.snaps = make(map[*Snapshot]time.Time)
	db.mv.live = 1
}

// currentVersion returns the visible catalog version without pinning
// it. Safe for point reads (the version's maps are immutable), but a
// caller that must keep the version alive across IO needs a Snapshot.
func (db *Database) currentVersion() *catVersion {
	db.mv.mu.Lock()
	v := db.mv.cur
	db.mv.mu.Unlock()
	return v
}

// Snapshot pins one immutable catalog version: every query run through
// it sees exactly the tables, contents, and statistics that were
// current when it was acquired, regardless of concurrent commits. A
// snapshot must be released exactly once (Release is idempotent);
// holding one prevents reclamation of its version's storage.
type Snapshot struct {
	db       *Database
	v        *catVersion
	acquired time.Time
	once     sync.Once
	released atomic.Bool
}

// AcquireSnapshot pins the current catalog version and returns the
// handle. Queries acquire one implicitly per call; acquire explicitly
// (and thread it through WithSnapshot) to run several queries against
// one consistent version.
func (db *Database) AcquireSnapshot() *Snapshot {
	db.mv.mu.Lock()
	v := db.mv.cur
	v.pins++
	s := &Snapshot{db: db, v: v, acquired: time.Now()}
	db.mv.snaps[s] = s.acquired
	db.mv.snapsAcquired++
	db.mv.mu.Unlock()
	return s
}

// Seq reports the snapshot's catalog version sequence number, the
// value carried by Result.Snapshot.
func (s *Snapshot) Seq() int64 { return s.v.seq }

// Release unpins the snapshot. When it was the last pin of a
// superseded version, the version is reclaimed: table generations it
// referenced exclusively have their heaps dropped (with zero pinned
// frames — a pinned page fails the drop and is reported by Close).
// Release is idempotent; using the snapshot after Release errors.
func (s *Snapshot) Release() {
	s.once.Do(func() {
		db := s.db
		db.mv.mu.Lock()
		s.v.pins--
		delete(db.mv.snaps, s)
		db.mv.snapsReleased++
		var drop []*tableVersion
		if s.v.pins == 0 && !s.v.current {
			drop = s.v.releaseTablesLocked()
			db.mv.live--
			db.mv.reclaimed++
		}
		db.mv.mu.Unlock()
		s.released.Store(true)
		db.dropGenerations(drop)
	})
}

// snapshotCtxKey carries a *Snapshot in a context.
type snapshotCtxKey struct{}

// WithSnapshot returns a context that pins every query run through it
// to the snapshot's catalog version, the snapshot-isolation analogue
// of WithBudget. The caller keeps ownership: queries using the context
// do not release the snapshot.
func WithSnapshot(ctx context.Context, s *Snapshot) context.Context {
	return context.WithValue(ctx, snapshotCtxKey{}, s)
}

// SnapshotFromContext returns the snapshot carried by ctx, if any.
func SnapshotFromContext(ctx context.Context) (*Snapshot, bool) {
	s, ok := ctx.Value(snapshotCtxKey{}).(*Snapshot)
	return s, ok
}

// snapshotFor resolves the snapshot a query should run against: the
// one carried by ctx (validated, not owned), or a freshly acquired pin
// on the current version (owned=true; the caller must release it).
func (db *Database) snapshotFor(ctx context.Context) (snap *Snapshot, owned bool, err error) {
	if s, ok := SnapshotFromContext(ctx); ok {
		if s.db != db {
			return nil, false, fmt.Errorf("core: context snapshot belongs to a different database")
		}
		if s.released.Load() {
			return nil, false, fmt.Errorf("core: use of released snapshot (version %d)", s.v.seq)
		}
		return s, false, nil
	}
	return db.AcquireSnapshot(), true, nil
}

// dropGenerations drops the heaps of fully dereferenced table
// generations, recording the first failure for Close to report.
func (db *Database) dropGenerations(tvs []*tableVersion) {
	for _, tv := range tvs {
		if err := tv.tab.Heap.Drop(); err != nil {
			db.mv.mu.Lock()
			if db.mv.dropErr == nil {
				db.mv.dropErr = err
			}
			db.mv.mu.Unlock()
		}
	}
}

// commit is an in-progress catalog commit: a private next version
// (cloned maps, cloned catalog) the writer edits freely, plus the
// table generations it created (dropped on abort). The write lock
// (Database.commitMu) is held from beginCommit until publish, abort,
// or cancel.
type commit struct {
	db   *Database
	next *catVersion
	// newTables lists generations loaded by this commit, so abort can
	// drop exactly the storage the failed commit created.
	newTables []*tableVersion
	// stall is how long beginCommit waited for commitMu (writer
	// serialization), accumulated into MVCCStats.WriterStall.
	stall time.Duration
}

// beginCommit takes the writer lock and clones the current version
// into a private next version. The clone copies the maps and the
// catalog, not the relations or heaps: unwritten tables share their
// generation with the base version (reference counted).
func (db *Database) beginCommit() *commit {
	start := time.Now()
	db.commitMu.Lock()
	stall := time.Since(start)
	base := db.currentVersion()
	next := &catVersion{
		seq:      base.seq + 1,
		rels:     make(map[string]*relation.Relation, len(base.rels)+1),
		tables:   make(map[string]*tableVersion, len(base.tables)+1),
		cat:      base.cat.Clone(),
		versions: make(map[string]int64, len(base.versions)+1),
		verSeq:   base.verSeq,
	}
	for k, v := range base.rels {
		next.rels[k] = v
	}
	for k, v := range base.tables {
		next.tables[k] = v
	}
	for k, v := range base.versions {
		next.versions[k] = v
	}
	return &commit{db: db, next: next, stall: stall}
}

// loadTable materializes a relation into a fresh heap for this commit:
// load (columnar-encoded when configured), rebuild the requested hash
// indexes, then flush the generation's dirty pages so the commit is
// durable before it becomes visible. Any failure drops the partial
// heap and returns the typed storage error.
func (c *commit) loadTable(r *relation.Relation, indexAttrs []string) (*exec.Table, error) {
	db := c.db
	t, err := exec.LoadRelationColumnar(db.pool, db.factory, r, db.cfg.Columnar)
	if err != nil {
		return nil, err
	}
	for _, attr := range indexAttrs {
		idx, err := exec.BuildIndex(t, attr)
		if err != nil {
			t.Heap.Drop()
			return nil, err
		}
		t.AddIndex(idx)
	}
	if err := db.pool.FlushDisk(t.Heap.Handle()); err != nil {
		t.Heap.Drop()
		return nil, err
	}
	return t, nil
}

// put installs a new generation of a table into the next version:
// relation, storage, a bumped per-table version (invalidating plan and
// result-cache fingerprints), and refreshed statistics.
func (c *commit) put(r *relation.Relation, t *exec.Table) error {
	name := r.Name()
	tv := &tableVersion{tab: t}
	c.newTables = append(c.newTables, tv)
	c.next.rels[name] = r
	c.next.tables[name] = tv
	c.next.verSeq++
	c.next.versions[name] = c.next.verSeq
	return c.next.cat.AddTable(catalog.AnalyzeRelation(r))
}

// replaceStorage installs a new generation of a table without bumping
// its version: same relation contents, different physical storage
// (CreateIndex). Cached plans and results stay valid.
func (c *commit) replaceStorage(name string, t *exec.Table) {
	tv := &tableVersion{tab: t}
	c.newTables = append(c.newTables, tv)
	c.next.tables[name] = tv
}

// abort abandons the commit: storage created by it is dropped, nothing
// was published, and the old version keeps serving. Returns err for
// call-site chaining.
func (c *commit) abort(err error) error {
	c.db.dropGenerations(c.newTables)
	c.db.mv.mu.Lock()
	c.db.mv.commitFails++
	c.db.mv.mu.Unlock()
	c.db.commitMu.Unlock()
	return err
}

// cancel abandons a commit that turned out to be a no-op (e.g. Delete
// of an absent row) without counting a failure. Only valid before any
// loadTable call.
func (c *commit) cancel() {
	c.db.commitMu.Unlock()
}

// publish atomically swaps the visible catalog-version pointer to the
// commit's next version — the entire reader-visible effect of the
// commit is this one pointer store under a short critical section.
// The superseded version is reclaimed immediately when no snapshot
// pins it. invalidate lists written tables whose result-cache, plan-
// cache, and workload-cache entries should be eagerly removed (the
// version-bearing fingerprints already make them unreachable).
func (c *commit) publish(invalidate ...string) error {
	db := c.db
	db.mv.mu.Lock()
	old := db.mv.cur
	for _, tv := range c.next.tables {
		tv.refs++
	}
	c.next.current = true
	old.current = false
	db.mv.cur = c.next
	db.mv.live++
	db.mv.commits++
	db.mv.writerStall += c.stall
	var drop []*tableVersion
	if old.pins == 0 {
		drop = old.releaseTablesLocked()
		db.mv.live--
		db.mv.reclaimed++
	}
	db.mv.mu.Unlock()
	db.dropGenerations(drop)
	db.commitMu.Unlock()
	for _, table := range invalidate {
		db.invalidateWritten(table)
	}
	return nil
}

// invalidateWritten eagerly removes cache state that depended on a
// written table: result-cache materializations, cached plans, and
// workload caches (BuildCache) over views referencing it.
func (db *Database) invalidateWritten(table string) {
	if db.rcache != nil {
		db.rcache.InvalidateTable(table)
	}
	if db.pcache != nil {
		db.pcache.invalidateTable(table)
	}
	cat := db.currentVersion().cat
	db.cachesMu.Lock()
	for view := range db.caches {
		def, err := cat.View(view)
		if err != nil {
			continue
		}
		for _, t := range def.Tables {
			if t == table {
				delete(db.caches, view)
				break
			}
		}
	}
	db.cachesMu.Unlock()
}

// mvccStats snapshots the multi-version counters for Metrics.
func (db *Database) mvccStats() metrics.MVCCStats {
	db.mv.mu.Lock()
	defer db.mv.mu.Unlock()
	st := metrics.MVCCStats{
		Enabled:           true,
		Seq:               db.mv.cur.seq,
		VersionsLive:      db.mv.live,
		VersionsReclaimed: db.mv.reclaimed,
		Commits:           db.mv.commits,
		CommitFailures:    db.mv.commitFails,
		SnapshotsAcquired: db.mv.snapsAcquired,
		SnapshotsReleased: db.mv.snapsReleased,
		SnapshotsActive:   int64(len(db.mv.snaps)),
		WriterStall:       db.mv.writerStall,
	}
	now := time.Now()
	for _, at := range db.mv.snaps {
		if age := now.Sub(at); age > st.OldestSnapshotAge {
			st.OldestSnapshotAge = age
		}
	}
	return st
}
