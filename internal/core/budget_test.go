package core

import (
	"context"
	"errors"
	"testing"

	"mpf/internal/exec"
)

// TestBudgetTempTuples asserts that a query whose intermediates exceed
// the temp-tuple bound fails with ErrBudget, cleanly (no pinned frames),
// and that the same query under a generous budget succeeds.
func TestBudgetTempTuples(t *testing.T) {
	for _, batch := range []int{0, 1} {
		db, _ := openSupplyChain(t, Config{PoolFrames: 64, BatchSize: batch})
		spec := &QuerySpec{View: "invest", GroupVars: []string{"wid"}}

		ctx := exec.WithBudget(context.Background(), exec.Budget{MaxTempTuples: 8})
		res, err := db.QueryContext(ctx, spec)
		if err == nil {
			t.Fatalf("batch=%d: tiny temp-tuple budget should fail", batch)
		}
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("batch=%d: error %v does not match ErrBudget", batch, err)
		}
		var be *exec.BudgetError
		if !errors.As(err, &be) || be.Resource != "temp-tuples" {
			t.Fatalf("batch=%d: want *BudgetError over temp-tuples, got %v", batch, err)
		}
		if res == nil {
			t.Fatalf("batch=%d: failed query should still return partial stats", batch)
		}
		if n := db.Pool().Pinned(); n != 0 {
			t.Fatalf("batch=%d: %d frames left pinned after budget failure", batch, n)
		}

		ctx = exec.WithBudget(context.Background(), exec.Budget{MaxTempTuples: 1 << 30})
		if _, err := db.QueryContext(ctx, spec); err != nil {
			t.Fatalf("batch=%d: generous budget should pass: %v", batch, err)
		}
	}
}

// TestBudgetMaxRows asserts the result-cardinality bound on both
// execution modes.
func TestBudgetMaxRows(t *testing.T) {
	db, _ := openSupplyChain(t, Config{PoolFrames: 64})
	for _, mode := range []ExecMode{EngineExec, MemoryExec} {
		spec := &QuerySpec{View: "invest", GroupVars: []string{"wid", "tid"}, Exec: mode}
		res, err := db.QueryContext(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		rows := res.Exec.RowsOut
		if rows < 2 {
			t.Fatalf("mode %v: want a multi-row result to bound, got %d", mode, rows)
		}
		ctx := exec.WithBudget(context.Background(), exec.Budget{MaxRows: rows - 1})
		_, err = db.QueryContext(ctx, spec)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("mode %v: want ErrBudget for MaxRows %d < %d rows, got %v", mode, rows-1, rows, err)
		}
		ctx = exec.WithBudget(context.Background(), exec.Budget{MaxRows: rows})
		if _, err := db.QueryContext(ctx, spec); err != nil {
			t.Fatalf("mode %v: exact MaxRows should pass: %v", mode, err)
		}
		if n := db.Pool().Pinned(); n != 0 {
			t.Fatalf("mode %v: %d frames left pinned", mode, n)
		}
	}
}
