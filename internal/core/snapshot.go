package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mpf/internal/catalog"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// snapshotManifest is the on-disk catalog of a database snapshot.
type snapshotManifest struct {
	Version  int             `json:"version"`
	Semiring string          `json:"semiring"`
	Tables   []manifestTable `json:"tables"`
	Views    []manifestView  `json:"views"`
}

type manifestTable struct {
	Name  string         `json:"name"`
	Attrs []manifestAttr `json:"attrs"`
	Key   []string       `json:"key,omitempty"`
	Card  int64          `json:"card"`
	File  string         `json:"file"`
}

type manifestAttr struct {
	Name   string `json:"name"`
	Domain int    `json:"domain"`
}

type manifestView struct {
	Name   string   `json:"name"`
	Tables []string `json:"tables"`
}

const manifestName = "catalog.json"

// snapshotPool builds the buffer pool used for snapshot IO, carrying the
// database's configured transient-fault retry policy (Config.IORetries)
// instead of the pool defaults, so snapshot reads and writes survive the
// same transient faults regular query IO survives.
func snapshotPool(cfg Config) *storage.Pool {
	p := storage.NewPool(64)
	retries := cfg.IORetries
	if retries == 0 {
		retries = 3
	}
	p.SetRetry(retries, 0, 0)
	return p
}

// openSnapshotDisk opens one snapshot heap file, applying the configured
// wrapper (Config.SnapshotDisk) when present — the hook fault-injection
// tests use to exercise the retry path.
func openSnapshotDisk(cfg Config, path string) (storage.Disk, error) {
	d, err := storage.OpenFileDisk(path)
	if err != nil {
		return nil, err
	}
	if cfg.SnapshotDisk != nil {
		return cfg.SnapshotDisk(d), nil
	}
	return d, nil
}

// Save writes a snapshot of the database — every base table in the heap
// page format plus a JSON manifest of schemas, keys, and views — into
// dir (created if necessary). The snapshot is taken against one pinned
// catalog version: a commit racing Save cannot mix table versions into
// the saved image. Workload caches are not persisted; rebuild them after
// Load.
func (db *Database) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	snap := db.AcquireSnapshot()
	defer snap.Release()
	man := snapshotManifest{Version: 1, Semiring: db.cfg.Semiring.Name()}
	pool := snapshotPool(db.cfg)
	for _, name := range snap.v.cat.Tables() {
		rel, ok := snap.v.rels[name]
		if !ok {
			return fmt.Errorf("core: save: %w %q", ErrUnknownTable, name)
		}
		st, err := snap.v.cat.Table(name)
		if err != nil {
			return err
		}
		file := name + ".heap"
		path := filepath.Join(dir, file)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: save: %w", err)
		}
		disk, err := openSnapshotDisk(db.cfg, path)
		if err != nil {
			return err
		}
		heap, err := storage.NewHeap(pool, disk, rel.Arity())
		if err != nil {
			disk.Close()
			return err
		}
		for i := 0; i < rel.Len(); i++ {
			if err := heap.Append(rel.Row(i), rel.Measure(i)); err != nil {
				disk.Close()
				return err
			}
		}
		if err := pool.FlushAll(); err != nil {
			disk.Close()
			return err
		}
		if err := heap.Drop(); err != nil {
			disk.Close()
			return err
		}
		if err := disk.Close(); err != nil {
			return err
		}
		mt := manifestTable{Name: name, Card: st.Card, Key: st.Key, File: file}
		for _, a := range st.Attrs {
			mt.Attrs = append(mt.Attrs, manifestAttr{a.Name, a.Domain})
		}
		man.Tables = append(man.Tables, mt)
	}
	for _, v := range snap.v.cat.Views() {
		def, err := snap.v.cat.View(v)
		if err != nil {
			return err
		}
		man.Views = append(man.Views, manifestView{Name: def.Name, Tables: def.Tables})
	}
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
}

// Load opens a snapshot previously written by Save, returning a fresh
// database with every table and view restored. The snapshot's semiring
// overrides cfg.Semiring. Snapshot reads run under cfg.IORetries and any
// cfg.SnapshotDisk wrapper, like Save.
func Load(dir string, cfg Config) (*Database, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	var man snapshotManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("core: load: bad manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("core: load: unsupported snapshot version %d", man.Version)
	}
	sr, err := semiring.ByName(man.Semiring)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	cfg.Semiring = sr
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	pool := snapshotPool(cfg)
	for _, mt := range man.Tables {
		attrs := make([]relation.Attr, len(mt.Attrs))
		for i, a := range mt.Attrs {
			attrs[i] = relation.Attr{Name: a.Name, Domain: a.Domain}
		}
		rel, err := readHeapFile(cfg, pool, filepath.Join(dir, mt.File), mt.Name, attrs)
		if err != nil {
			db.Close()
			return nil, err
		}
		if int64(rel.Len()) != mt.Card {
			db.Close()
			return nil, fmt.Errorf("core: load: table %s has %d tuples, manifest says %d",
				mt.Name, rel.Len(), mt.Card)
		}
		if err := db.CreateTable(rel); err != nil {
			db.Close()
			return nil, err
		}
		if len(mt.Key) > 0 {
			st := catalog.AnalyzeRelation(rel)
			st.Key = mt.Key
			if err := db.Catalog().AddTable(st); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	for _, v := range man.Views {
		if err := db.CreateView(v.Name, v.Tables); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// readHeapFile loads a snapshot heap file into an in-memory relation.
func readHeapFile(cfg Config, pool *storage.Pool, path, name string, attrs []relation.Attr) (*relation.Relation, error) {
	disk, err := openSnapshotDisk(cfg, path)
	if err != nil {
		return nil, err
	}
	defer disk.Close()
	heap, err := storage.OpenHeap(pool, disk, len(attrs))
	if err != nil {
		return nil, err
	}
	defer heap.Drop()
	rel, err := relation.New(name, attrs)
	if err != nil {
		return nil, err
	}
	it := heap.Scan()
	defer it.Close()
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		if err := rel.Append(vals, m); err != nil {
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}
