package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/gen"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.005, CtdealsDensity: 0.7, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Relations {
		if err := db.CreateTable(r); err != nil {
			t.Fatal(err)
		}
	}
	// Declare a key on one table so Key persistence is exercised.
	st := catalog.AnalyzeRelation(ds.RelationMap()["warehouses"])
	st.Key = []string{"wid"}
	if err := db.Catalog().AddTable(st); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("invest", ds.ViewTables); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Load(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Tables, data and views all restored.
	got, err := db2.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Relation, want.Relation, 0, 1e-9) {
		t.Fatal("query answer differs after snapshot round trip")
	}
	// Key restored.
	st2, err := db2.Catalog().Table("warehouses")
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Key) != 1 || st2.Key[0] != "wid" {
		t.Fatalf("key not restored: %v", st2.Key)
	}
	// Exact relation equality for every table.
	for _, r := range ds.Relations {
		got, err := db2.Relation(r.Name())
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(got, r, 0, 0) {
			t.Fatalf("table %s differs after round trip", r.Name())
		}
	}
}

func TestSnapshotPreservesSemiring(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Config{Semiring: semiring.MinProduct})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := relation.FromRows("t", []relation.Attr{{Name: "a", Domain: 2}},
		[][]int32{{0}, {1}}, []float64{3, 5})
	db.CreateTable(r)
	db.CreateView("v", []string{"t"})
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Load with a conflicting config: the snapshot's semiring wins.
	db2, err := Load(dir, Config{Semiring: semiring.SumProduct})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Semiring().Name() != "min-product" {
		t.Fatalf("semiring = %s, want min-product", db2.Semiring().Name())
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir(), Config{}); err == nil {
		t.Fatal("missing manifest should error")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644)
	if _, err := Load(dir, Config{}); err == nil {
		t.Fatal("corrupt manifest should error")
	}
	// Unsupported version.
	man, _ := json.Marshal(map[string]any{"version": 9, "semiring": "sum-product"})
	os.WriteFile(filepath.Join(dir, manifestName), man, 0o644)
	if _, err := Load(dir, Config{}); err == nil {
		t.Fatal("unsupported version should error")
	}
	// Manifest referencing a missing heap file.
	man2 := snapshotManifest{Version: 1, Semiring: "sum-product", Tables: []manifestTable{{
		Name: "t", Attrs: []manifestAttr{{"a", 2}}, Card: 1, File: "missing.heap",
	}}}
	data, _ := json.Marshal(&man2)
	os.WriteFile(filepath.Join(dir, manifestName), data, 0o644)
	if _, err := Load(dir, Config{}); err == nil {
		t.Fatal("missing heap file should error")
	}
}

func TestSaveOverwritesPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, _ := Open(Config{})
	defer db.Close()
	r, _ := relation.FromRows("t", []relation.Attr{{Name: "a", Domain: 2}},
		[][]int32{{0}}, []float64{1})
	db.CreateTable(r)
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatalf("second save should overwrite cleanly: %v", err)
	}
	db2, err := Load(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got, err := db2.Relation("t")
	if err != nil || got.Len() != 1 {
		t.Fatalf("reload after overwrite failed: %v", err)
	}
}
