package core

import (
	"encoding/json"
	"fmt"
	"time"

	"mpf/internal/exec"
	"mpf/internal/opt"
	"mpf/internal/relation"
)

// This file defines the canonical JSON wire encoding of the query API:
// QuerySpec, Having, and Result. The HTTP server (internal/server), its
// clients, and the loadgen experiment all speak exactly this encoding,
// so it must stay stable and round-trip: Marshal(Unmarshal(x)) is a
// fixpoint (asserted by TestQuerySpecJSONRoundTrip and the JSON fuzz
// targets at the package root).

// havingJSON is the wire form of a Having clause; the operator uses its
// SQL spelling ("<", "<=", ">", ">=", "=").
type havingJSON struct {
	Op    string  `json:"op"`
	Value float64 `json:"value"`
}

// parseHavingOp inverts HavingOp.String.
func parseHavingOp(s string) (HavingOp, error) {
	switch s {
	case "<":
		return HavingLT, nil
	case "<=":
		return HavingLE, nil
	case ">":
		return HavingGT, nil
	case ">=":
		return HavingGE, nil
	case "=":
		return HavingEQ, nil
	default:
		return 0, fmt.Errorf("core: unknown having operator %q", s)
	}
}

// MarshalJSON encodes the clause with its SQL operator spelling.
func (h *Having) MarshalJSON() ([]byte, error) {
	return json.Marshal(havingJSON{Op: h.Op.String(), Value: h.Value})
}

// UnmarshalJSON decodes the clause, rejecting unknown operators.
func (h *Having) UnmarshalJSON(data []byte) error {
	var w havingJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	op, err := parseHavingOp(w.Op)
	if err != nil {
		return err
	}
	h.Op, h.Value = op, w.Value
	return nil
}

// querySpecJSON is the wire form of a QuerySpec. The optimizer travels
// by report name (opt.ByName), the execution mode as "engine"/"memory"
// with engine omitted as the default, and hypothetical replacements as
// full relation payloads.
type querySpecJSON struct {
	View         string                        `json:"view"`
	GroupVars    []string                      `json:"group_vars,omitempty"`
	Where        relation.Predicate            `json:"where,omitempty"`
	Having       *Having                       `json:"having,omitempty"`
	Hypothetical map[string]*relation.Relation `json:"hypothetical,omitempty"`
	Optimizer    string                        `json:"optimizer,omitempty"`
	Exec         string                        `json:"exec,omitempty"`
}

// execModeName renders an ExecMode for the wire ("" for the engine
// default, so the common case stays off the wire).
func execModeName(m ExecMode) (string, error) {
	switch m {
	case EngineExec:
		return "", nil
	case MemoryExec:
		return "memory", nil
	default:
		return "", fmt.Errorf("core: %w %d", ErrUnknownExecMode, m)
	}
}

// parseExecMode inverts execModeName; "engine" is accepted explicitly.
func parseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "engine":
		return EngineExec, nil
	case "memory":
		return MemoryExec, nil
	default:
		return 0, fmt.Errorf("core: %w %q", ErrUnknownExecMode, s)
	}
}

// MarshalJSON encodes the spec in the canonical wire form. Specs whose
// Exec mode or optimizer cannot travel (an invalid mode, an optimizer
// value whose Name is not resolvable by OptimizerByName) fail rather
// than encode something the other side cannot reconstruct.
func (q *QuerySpec) MarshalJSON() ([]byte, error) {
	mode, err := execModeName(q.Exec)
	if err != nil {
		return nil, err
	}
	w := querySpecJSON{
		View:         q.View,
		GroupVars:    q.GroupVars,
		Where:        q.Where,
		Having:       q.Having,
		Hypothetical: q.Hypothetical,
		Exec:         mode,
	}
	if q.Optimizer != nil {
		name := q.Optimizer.Name()
		if _, err := opt.ByName(name); err != nil {
			return nil, fmt.Errorf("core: optimizer %q does not round-trip: %w", name, err)
		}
		w.Optimizer = name
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, resolving the optimizer by
// report name and validating the execution mode.
func (q *QuerySpec) UnmarshalJSON(data []byte) error {
	var w querySpecJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	mode, err := parseExecMode(w.Exec)
	if err != nil {
		return err
	}
	var o opt.Optimizer
	if w.Optimizer != "" {
		if o, err = opt.ByName(w.Optimizer); err != nil {
			return err
		}
	}
	*q = QuerySpec{
		View:         w.View,
		GroupVars:    w.GroupVars,
		Where:        w.Where,
		Having:       w.Having,
		Hypothetical: w.Hypothetical,
		Optimizer:    o,
		Exec:         mode,
	}
	return nil
}

// resultJSON is the wire form of a Result. The plan travels as its
// rendered text — plans are diagnostic output on the wire, not an
// executable structure — so unmarshaling a Result leaves Plan nil and
// keeps only the rendering. RunStats carries its own snake_case json
// tags (see internal/exec), so it encodes with the default machinery.
type resultJSON struct {
	Relation   *relation.Relation `json:"relation,omitempty"`
	Plan       string             `json:"plan,omitempty"`
	OptimizeNS int64              `json:"optimize_ns"`
	Snapshot   int64              `json:"snapshot,omitempty"`
	Exec       exec.RunStats      `json:"exec"`
}

// MarshalJSON encodes the result with its relation, rendered plan, and
// execution stats.
func (r *Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{
		Relation:   r.Relation,
		OptimizeNS: r.Optimize.Nanoseconds(),
		Snapshot:   r.Snapshot,
		Exec:       r.Exec,
	}
	if r.Plan != nil {
		w.Plan = r.Plan.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form. Plan stays nil (the wire carries
// only its rendering); Trace is restored as an alias of Exec.Trace,
// matching how core fills it.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result{
		Relation: w.Relation,
		Optimize: time.Duration(w.OptimizeNS),
		Snapshot: w.Snapshot,
		Exec:     w.Exec,
	}
	r.Trace = r.Exec.Trace
	return nil
}
