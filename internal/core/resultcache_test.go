package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

func TestResultCacheRepeatQueryHits(t *testing.T) {
	db, _ := openSupplyChain(t, Config{ResultCacheBytes: 8 << 20})
	spec := &QuerySpec{View: "invest", GroupVars: []string{"cid"}}

	io0 := db.Pool().Stats()
	first, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	io1 := db.Pool().Stats()
	if first.Exec.CacheHits != 0 {
		t.Fatalf("cold run reported %d cache hits", first.Exec.CacheHits)
	}
	if first.Exec.CacheMisses == 0 {
		t.Fatal("cold run probed no cacheable node")
	}

	second, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	io2 := db.Pool().Stats()
	if second.Exec.CacheHits == 0 {
		t.Fatal("identical repeat query did not hit the result cache")
	}
	if !relation.Equal(first.Relation, second.Relation, 0, 1e-9) {
		t.Fatal("cached answer differs from the computed answer")
	}
	cold, warm := io1.Sub(io0).IO(), io2.Sub(io1).IO()
	if warm*2 > cold {
		t.Fatalf("warm run IO %d not ≤ half of cold run IO %d", warm, cold)
	}

	m := db.Metrics()
	rc := m.ResultCache
	if !rc.Enabled || rc.Hits == 0 || rc.Inserts == 0 || rc.Entries == 0 {
		t.Fatalf("metrics do not surface the cache: %+v", rc)
	}
	if cs := db.ResultCache().Snapshot(); cs.Pins != 0 {
		t.Fatalf("pins outstanding after queries: %+v", cs)
	}
}

// TestResultCacheRowOrderContract pins the documented splice order
// contract (Result.Relation, exec.ResultCache): a warm run answered
// through cached materializations must be set-equal to the cold answer,
// and after Relation.Sort the two must match row for row — order inside
// a run is otherwise unspecified.
func TestResultCacheRowOrderContract(t *testing.T) {
	db, _ := openSupplyChain(t, Config{ResultCacheBytes: 8 << 20})
	spec := &QuerySpec{View: "invest", GroupVars: []string{"wid", "cid"}}

	cold, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Exec.CacheHits == 0 {
		t.Fatal("warm run did not splice from the result cache")
	}
	if !relation.Equal(cold.Relation, warm.Relation, 0, 1e-9) {
		t.Fatal("cached answer is not set-equal to the cold answer")
	}

	// The committed order contract: sorting yields identical row sequences.
	cold.Relation.Sort()
	warm.Relation.Sort()
	if cold.Relation.Len() != warm.Relation.Len() {
		t.Fatalf("row counts diverge: %d vs %d", cold.Relation.Len(), warm.Relation.Len())
	}
	for i := 0; i < cold.Relation.Len(); i++ {
		cr, wr := cold.Relation.Row(i), warm.Relation.Row(i)
		for c := range cr {
			if cr[c] != wr[c] {
				t.Fatalf("row %d diverges after Sort: %v vs %v", i, cr, wr)
			}
		}
		if cm, wm := cold.Relation.Measure(i), warm.Relation.Measure(i); cm != wm {
			t.Fatalf("row %d measure diverges after Sort: %v vs %v", i, cm, wm)
		}
	}
}

func TestResultCacheDisabledByDefault(t *testing.T) {
	db, _ := openSupplyChain(t, Config{})
	spec := &QuerySpec{View: "invest", GroupVars: []string{"cid"}}
	res, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.CacheHits != 0 || res.Exec.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded probes: %+v", res.Exec)
	}
	if db.ResultCache() != nil {
		t.Fatal("ResultCache() must be nil when disabled")
	}
	if db.Metrics().ResultCache.Enabled {
		t.Fatal("metrics report an enabled cache on a cache-less database")
	}
}

func TestResultCacheNoStaleReadAfterInsert(t *testing.T) {
	db, _ := openSupplyChain(t, Config{ResultCacheBytes: 8 << 20})
	spec := &QuerySpec{View: "invest", GroupVars: []string{"wid"}}
	if _, err := db.Query(spec); err != nil {
		t.Fatal(err) // warm the cache
	}
	warm := db.ResultCache().Snapshot()
	if warm.Inserts == 0 {
		t.Fatalf("warm-up registered nothing: %+v", warm)
	}

	// Mutate a base table of the view. The versioned fingerprints plus
	// eager invalidation must keep the next query off the now-stale
	// entries; entries whose subtrees never read warehouses stay valid.
	w, err := db.Relation("warehouses")
	if err != nil {
		t.Fatal(err)
	}
	free := freeAssignment(w)
	if err := db.Insert("warehouses", free, 2.5); err != nil {
		t.Fatal(err)
	}
	after := db.ResultCache().Snapshot()
	if after.Invalidations == 0 || after.Entries >= warm.Entries {
		t.Fatalf("write did not invalidate warehouse-dependent entries: %+v -> %+v", warm, after)
	}

	got, err := db.Query(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: the memory executor never touches the result cache.
	want, err := db.Query(&QuerySpec{View: "invest", GroupVars: []string{"wid"}, Exec: MemoryExec})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Relation, want.Relation, 0, 1e-9) {
		t.Fatal("post-write engine answer diverges from the memory oracle")
	}
}

// freeAssignment enumerates the domain grid and returns the first
// variable assignment not present in r. The generated relations are
// sparse at test scale, so one always exists.
func freeAssignment(r *relation.Relation) []int32 {
	attrs := r.Attrs()
	present := make(map[string]bool, r.Len())
	for i := 0; i < r.Len(); i++ {
		present[fmt.Sprint(r.Row(i))] = true
	}
	vals := make([]int32, len(attrs))
	for {
		if !present[fmt.Sprint(vals)] {
			return vals
		}
		for i := len(vals) - 1; i >= 0; i-- {
			vals[i]++
			if vals[i] < int32(attrs[i].Domain) {
				break
			}
			if i == 0 {
				return nil // complete relation: no free assignment
			}
			vals[i] = 0
		}
	}
}

func TestResultCacheHypotheticalBypassesCache(t *testing.T) {
	db, ds := openSupplyChain(t, Config{ResultCacheBytes: 8 << 20})
	spec := &QuerySpec{View: "invest", GroupVars: []string{"cid"}}
	if _, err := db.Query(spec); err != nil {
		t.Fatal(err) // populate
	}
	before := db.ResultCache().Snapshot()

	hyp := ds.RelationMap()["warehouses"].Clone()
	hyp.SetName("warehouses")
	res, err := db.Query(&QuerySpec{
		View: "invest", GroupVars: []string{"cid"},
		Hypothetical: map[string]*relation.Relation{"warehouses": hyp},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.CacheHits != 0 || res.Exec.CacheMisses != 0 {
		t.Fatalf("hypothetical query touched the shared cache: %+v", res.Exec)
	}
	after := db.ResultCache().Snapshot()
	if after.Hits != before.Hits || after.Inserts != before.Inserts {
		t.Fatalf("hypothetical query moved cache counters: %+v -> %+v", before, after)
	}
}

// TestResultCacheCancellation cancels engine queries on slow disks with
// the cache enabled: no buffer-pool frame and no cache pin may survive a
// cancellation, and the database must keep answering afterwards.
func TestResultCacheCancellation(t *testing.T) {
	db, err := Open(Config{
		PoolFrames:       16,
		DiskFactory:      storage.LatencyMemDiskFactory(time.Millisecond, time.Millisecond),
		ResultCacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	r, err := relation.Complete("r", []relation.Attr{
		{Name: "a", Domain: 400}, {Name: "b", Domain: 40},
	}, func(vals []int32) float64 { return float64(vals[0]%7) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := relation.Complete("s", []relation.Attr{
		{Name: "b", Domain: 40}, {Name: "c", Domain: 400},
	}, func(vals []int32) float64 { return float64(vals[1]%5) + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(r); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(s); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateView("rs", []string{"r", "s"}); err != nil {
		t.Fatal(err)
	}

	spec := &QuerySpec{View: "rs", GroupVars: []string{"a"}}
	for _, timeout := range []time.Duration{5 * time.Millisecond, 30 * time.Millisecond, 120 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		_, qErr := db.QueryContext(ctx, spec)
		cancel()
		if qErr != nil && !errors.Is(qErr, ErrCanceled) {
			t.Fatalf("timeout %v: unexpected error %v", timeout, qErr)
		}
		if n := db.Pool().Pinned(); n != 0 {
			t.Fatalf("timeout %v left %d frames pinned", timeout, n)
		}
		if cs := db.ResultCache().Snapshot(); cs.Pins != 0 {
			t.Fatalf("timeout %v leaked cache pins: %+v", timeout, cs)
		}
	}
	// A clean run afterwards must succeed and may reuse whatever partial
	// materializations survived the cancellations.
	res, qErr := db.Query(spec)
	if qErr != nil {
		t.Fatal(qErr)
	}
	if res.Relation.Len() == 0 {
		t.Fatal("post-cancellation query returned nothing")
	}
	if cs := db.ResultCache().Snapshot(); cs.Pins != 0 {
		t.Fatalf("pins outstanding after clean run: %+v", cs)
	}
}
