package core

import (
	"context"
	"errors"

	"mpf/internal/catalog"
	"mpf/internal/exec"
	"mpf/internal/storage"
)

// Sentinel errors returned from the Database API. All are matched with
// errors.Is: the returned errors wrap a sentinel plus the specific name
// or cause, so call sites can branch on the category without parsing
// messages.
var (
	// ErrUnknownTable reports a reference to a table the database does not
	// have. It is the catalog sentinel, so errors from catalog lookups and
	// from the database's own table map match identically.
	ErrUnknownTable = catalog.ErrUnknownTable
	// ErrUnknownView reports a reference to an unregistered MPF view.
	ErrUnknownView = catalog.ErrUnknownView
	// ErrDuplicateTable reports CreateTable of an existing name.
	ErrDuplicateTable = errors.New("table already exists")
	// ErrNotFunctional reports a relation whose variable attributes do not
	// functionally determine the measure (CheckFD failed), so it cannot be
	// a base table or hypothetical replacement.
	ErrNotFunctional = errors.New("not a functional relation")
	// ErrUnknownExecMode reports a QuerySpec.Exec value that names no
	// execution mode; Query validates it before planning.
	ErrUnknownExecMode = errors.New("unknown exec mode")
	// ErrCanceled reports a query ended by its context. The returned error
	// also matches the underlying context.Canceled or
	// context.DeadlineExceeded via errors.Is.
	ErrCanceled = errors.New("query canceled")
	// ErrIO reports a query ended by a storage fault that escaped retry
	// (Config.IORetries). It is the storage sentinel, so the error carries
	// a *storage.IOError or *storage.WritebackError with the failing
	// operation, disk handle, and page. The query fails cleanly — temps
	// dropped, no frames pinned — and the database keeps serving.
	ErrIO = storage.ErrIO
	// ErrCorrupt reports a query that read a page whose checksum did not
	// match its contents. The corrupt bytes never reach query answers; the
	// error carries a *storage.CorruptPageError with the disk handle and
	// page, and any result-cache entries over the damaged table are
	// invalidated.
	ErrCorrupt = storage.ErrCorruptPage
	// ErrBudget reports a query stopped by its per-query resource budget
	// (exec.WithBudget / Session budgets): it materialized more
	// intermediate tuples or produced more result rows than the budget
	// allows. It is the exec sentinel, so the error carries a
	// *exec.BudgetError naming the exceeded bound. The query fails
	// cleanly — temps dropped, no frames pinned — and the database keeps
	// serving.
	ErrBudget = exec.ErrBudget
)

// CancelError wraps the context error that ended a query. errors.Is
// matches it against both ErrCanceled (the engine's category sentinel)
// and the wrapped cause (context.Canceled or context.DeadlineExceeded).
type CancelError struct {
	// Cause is the context error that ended the query.
	Cause error
}

// Error describes the cancellation with its cause.
func (e *CancelError) Error() string { return "core: query canceled: " + e.Cause.Error() }

// Unwrap exposes the context error for errors.Is/As.
func (e *CancelError) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }

// wrapCancel converts a context error into a *CancelError; other errors
// pass through unchanged.
func wrapCancel(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &CancelError{Cause: err}
	}
	return err
}
