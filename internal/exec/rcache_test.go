package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// loadTemp materializes r as a temporary table, the shape Register
// expects (the executor only registers temp outputs).
func loadTemp(t *testing.T, pool *storage.Pool, factory storage.DiskFactory, r *relation.Relation) *Table {
	t.Helper()
	tb, err := LoadRelation(pool, factory, r)
	if err != nil {
		t.Fatal(err)
	}
	tb.temp = true
	return tb
}

func TestResultCacheRegisterLookupRelease(t *testing.T) {
	a, _, _ := randomRelations(11)
	pool := storage.NewPool(16)
	factory := storage.MemDiskFactory()
	c := NewResultCache(1 << 20)

	tb := loadTemp(t, pool, factory, a)
	if !c.Register("k1", tb, []string{"a"}, 7) {
		t.Fatal("Register rejected a fitting entry")
	}
	if tb.temp {
		t.Fatal("Register must clear temp so consumers cannot free the shared heap")
	}
	// The producing query still holds a pin; dropping its table releases it.
	if s := c.Snapshot(); s.Pins != 1 || s.Entries != 1 || s.Inserts != 1 {
		t.Fatalf("after register: %+v", s)
	}
	if err := tb.Drop(); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.Pins != 0 {
		t.Fatalf("producer drop must release its pin: %+v", s)
	}

	hit, ok := c.Lookup("k1")
	if !ok {
		t.Fatal("Lookup missed a registered key")
	}
	got, err := ReadRelation(hit)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, a, 0, 1e-12) {
		t.Fatal("cached contents differ from the registered relation")
	}
	if err := hit.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := hit.Drop(); err != nil {
		t.Fatal(err) // second drop is a no-op, must not double-release
	}
	s := c.Snapshot()
	if s.Pins != 0 || s.Hits != 1 || s.IOSavedPages != 7 {
		t.Fatalf("after hit+release: %+v", s)
	}
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup invented an entry")
	}
	c.Miss()
	if s := c.Snapshot(); s.Misses != 1 {
		t.Fatalf("miss not counted: %+v", s)
	}
	c.Close()
	if pool.Pinned() != 0 {
		t.Fatalf("%d frames left pinned", pool.Pinned())
	}
}

func TestResultCacheBudgetAndEviction(t *testing.T) {
	a, b, _ := randomRelations(12)
	pool := storage.NewPool(32)
	factory := storage.MemDiskFactory()

	ta := loadTemp(t, pool, factory, a)
	// Budget below a single entry: nothing admits, table stays temp.
	tiny := NewResultCache(ta.Heap.Bytes() - 1)
	if tiny.Register("ka", ta, []string{"a"}, 1) {
		t.Fatal("Register admitted an entry above the whole budget")
	}
	if !ta.temp {
		t.Fatal("rejected table must remain an ordinary temp")
	}
	if err := ta.Drop(); err != nil {
		t.Fatal(err)
	}

	// Budget for one entry: registering a second evicts the first once the
	// first is unpinned.
	ta = loadTemp(t, pool, factory, a)
	one := NewResultCache(ta.Heap.Bytes())
	if !one.Register("ka", ta, []string{"a"}, 1) {
		t.Fatal("Register rejected a fitting entry")
	}
	tb := loadTemp(t, pool, factory, b)
	if one.Register("kb", tb, []string{"b"}, 1) {
		t.Fatal("eviction must not touch the pinned first entry")
	}
	ta.Drop() // release producer pin; "ka" now evictable
	if !one.Register("kb", tb, []string{"b"}, 1) {
		t.Fatal("Register could not evict an unpinned entry")
	}
	tb.Drop()
	s := one.Snapshot()
	if s.Entries != 1 || s.Evictions != 1 || s.Pins != 0 {
		t.Fatalf("after eviction: %+v", s)
	}
	if _, ok := one.Lookup("ka"); ok {
		t.Fatal("evicted key still resolves")
	}
	one.Close()
	if pool.Pinned() != 0 {
		t.Fatalf("%d frames left pinned", pool.Pinned())
	}
}

func TestResultCacheInvalidatePinnedEntry(t *testing.T) {
	a, _, _ := randomRelations(13)
	pool := storage.NewPool(16)
	factory := storage.MemDiskFactory()
	c := NewResultCache(1 << 20)

	ta := loadTemp(t, pool, factory, a)
	if !c.Register("ka", ta, []string{"a"}, 1) {
		t.Fatal("Register rejected a fitting entry")
	}
	ta.Drop()

	hit, ok := c.Lookup("ka")
	if !ok {
		t.Fatal("Lookup missed")
	}
	c.InvalidateTable("a") // entry pinned by hit: marked dead, not freed
	s := c.Snapshot()
	if s.Entries != 0 || s.Invalidations != 1 || s.Pins != 1 {
		t.Fatalf("after invalidate of pinned entry: %+v", s)
	}
	// The pinned reader can still finish its scan on the dead entry.
	got, err := ReadRelation(hit)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, a, 0, 1e-12) {
		t.Fatal("dead-but-pinned entry must stay readable until released")
	}
	hit.Drop() // last release frees the heap
	if s := c.Snapshot(); s.Pins != 0 {
		t.Fatalf("pin leaked: %+v", s)
	}
	c.InvalidateTable("other") // no deps on it: nothing happens
	if s := c.Snapshot(); s.Invalidations != 1 {
		t.Fatalf("unrelated invalidation counted: %+v", s)
	}
	c.Close()
	if pool.Pinned() != 0 {
		t.Fatalf("%d frames left pinned", pool.Pinned())
	}
}

// cachePlan builds GroupBy(x,z | a ⋈* b) — a cacheable cut (aggregated
// join output) over the harness tables.
func cachePlan(t *testing.T, h *harness) *plan.Node {
	t.Helper()
	b := h.builder()
	sa, err := b.Scan("a")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Scan("b")
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.GroupBy(b.Join(sa, sb), []string{"X", "Z"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fixedVersions fingerprints a plan with every table at version 1.
func fixedVersions(p *plan.Node) map[*plan.Node]string {
	return plan.Fingerprints(p, plan.FingerprintEnv{
		Semiring:     semiring.SumProduct.Name(),
		TableVersion: func(string) (int64, bool) { return 1, true },
	})
}

func TestEngineCacheHitSkipsSubtree(t *testing.T) {
	a, b, _ := randomRelations(14)
	h := newHarness(t, 64, a, b)
	cache := NewResultCache(1 << 20)

	p := cachePlan(t, h)
	fps := fixedVersions(p)
	ctx := context.Background()

	want, st1, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, fps)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHits != 0 || st1.CacheMisses == 0 {
		t.Fatalf("first run: hits=%d misses=%d", st1.CacheHits, st1.CacheMisses)
	}
	if s := cache.Snapshot(); s.Inserts == 0 || s.Pins != 0 {
		t.Fatalf("first run did not populate the cache cleanly: %+v", s)
	}

	got, st2, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, fps)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHits == 0 {
		t.Fatal("second identical run did not hit the cache")
	}
	if !relation.Equal(got, want, 0, 1e-12) {
		t.Fatal("cached answer differs from computed answer")
	}
	if st2.Operators >= st1.Operators {
		t.Fatalf("hit must splice out the subtree: %d ops vs %d", st2.Operators, st1.Operators)
	}
	// The spliced run reads only the cached pages, never the base tables.
	if io1, io2 := st1.IO.IO(), st2.IO.IO(); io2*2 > io1 {
		t.Fatalf("cached run IO %d not ≤ half of cold run IO %d", io2, io1)
	}
	if s := cache.Snapshot(); s.Pins != 0 {
		t.Fatalf("pins leaked after runs: %+v", s)
	}
	cache.Close()
	if h.pool.Pinned() != 0 {
		t.Fatalf("%d frames left pinned", h.pool.Pinned())
	}
}

func TestEngineCacheVersionChangeMisses(t *testing.T) {
	a, b, _ := randomRelations(15)
	h := newHarness(t, 64, a, b)
	cache := NewResultCache(1 << 20)
	p := cachePlan(t, h)
	ctx := context.Background()

	if _, _, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, fixedVersions(p)); err != nil {
		t.Fatal(err)
	}
	// Same plan, bumped version of "a": old entries must not match.
	bumped := plan.Fingerprints(p, plan.FingerprintEnv{
		Semiring: semiring.SumProduct.Name(),
		TableVersion: func(name string) (int64, bool) {
			if name == "a" {
				return 2, true
			}
			return 1, true
		},
	})
	_, st, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, bumped)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 {
		t.Fatal("stale-version fingerprint produced a cache hit")
	}
	cache.Close()
}

// TestEngineCacheConcurrentReadersWriter races queries against version
// bumps: readers run a cached plan over an atomically published
// {version, tables} snapshot while a writer repeatedly publishes new
// table contents and eagerly invalidates. Each reader must see exactly
// the answer for the version it captured (no stale reads across
// versions), and when everything drains no cache pin or buffer-pool
// frame may remain. Run under -race.
func TestEngineCacheConcurrentReadersWriter(t *testing.T) {
	const versions = 4
	const readers = 4
	const readsPerReader = 8

	pool := storage.NewPool(256)
	factory := storage.LatencyMemDiskFactory(50*time.Microsecond, 50*time.Microsecond)
	engine := NewEngine(pool, factory, semiring.SumProduct)
	cache := NewResultCache(1 << 22)

	// One immutable table generation per version, plus its expected answer.
	_, b0, _ := randomRelations(16)
	type gen struct {
		version int64
		tables  map[string]*Table
	}
	gens := make([]*gen, versions)
	expected := make([]*relation.Relation, versions)
	var drops []*Table
	for v := 0; v < versions; v++ {
		av, _, _ := randomRelations(int64(20 + v)) // contents differ per version
		ta, err := LoadRelation(pool, factory, av)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := LoadRelation(pool, factory, b0)
		if err != nil {
			t.Fatal(err)
		}
		gens[v] = &gen{version: int64(v + 1), tables: map[string]*Table{"a": ta, "b": tb}}
		drops = append(drops, ta, tb)
		want, err := relation.ProductJoin(semiring.SumProduct, av, b0)
		if err != nil {
			t.Fatal(err)
		}
		expected[v], err = relation.Marginalize(semiring.SumProduct, want, []string{"X", "Z"})
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, d := range drops {
			d.Heap.Drop()
		}
	}()

	a16, b16, _ := randomRelations(16)
	h := newHarness(t, 16, a16, b16) // catalog only (a,b schemas)
	p := cachePlan(t, h)             // plans are immutable: shared by all readers
	var current atomic.Pointer[gen]
	current.Store(gens[0])

	var wg sync.WaitGroup
	errs := make(chan error, readers*readsPerReader)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				g := current.Load()
				fps := plan.Fingerprints(p, plan.FingerprintEnv{
					Semiring: semiring.SumProduct.Name(),
					TableVersion: func(name string) (int64, bool) {
						if name == "a" {
							return g.version, true
						}
						return 1, true
					},
				})
				got, _, err := engine.RunCachedContext(context.Background(), p, MapResolver(g.tables), cache, fps)
				if err != nil {
					errs <- err
					return
				}
				if !relation.Equal(got, expected[g.version-1], 0, 1e-9) {
					errs <- fmt.Errorf("stale read: version %d returned the wrong relation", g.version)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // writer: publish each generation, invalidate eagerly
		defer wg.Done()
		for v := 1; v < versions; v++ {
			time.Sleep(2 * time.Millisecond)
			current.Store(gens[v])
			cache.InvalidateTable("a")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := cache.Snapshot(); s.Pins != 0 {
		t.Fatalf("cache pins leaked: %+v", s)
	}
	cache.Close()
	if pool.Pinned() != 0 {
		t.Fatalf("%d buffer-pool frames left pinned", pool.Pinned())
	}
}

// TestEngineCacheCancellationReleasesPins cancels queries racing a
// populated cache and checks that no cache pin or pool frame survives,
// and that the cache still answers afterwards.
func TestEngineCacheCancellationReleasesPins(t *testing.T) {
	a, b, _ := randomRelations(17)
	pool := storage.NewPool(64)
	factory := storage.LatencyMemDiskFactory(200*time.Microsecond, 200*time.Microsecond)
	engine := NewEngine(pool, factory, semiring.SumProduct)
	cache := NewResultCache(1 << 20)

	h := newHarness(t, 1, a, b) // catalog source
	ta, err := LoadRelation(pool, factory, a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := LoadRelation(pool, factory, b)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Heap.Drop()
	defer tb.Heap.Drop()
	tables := map[string]*Table{"a": ta, "b": tb}

	p := cachePlan(t, h)
	fps := fixedVersions(p)
	// Warm the cache so cancelled runs race pinned hits, not just misses.
	if _, _, err := engine.RunCachedContext(context.Background(), p, MapResolver(tables), cache, fps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*150*time.Microsecond)
		_, _, err := engine.RunCachedContext(ctx, p, MapResolver(tables), cache, fps)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: %v", i, err)
		}
		if s := cache.Snapshot(); s.Pins != 0 {
			t.Fatalf("run %d leaked cache pins: %+v", i, s)
		}
		if n := pool.Pinned(); n != 0 {
			t.Fatalf("run %d leaked %d pinned frames", i, n)
		}
	}
	// The cache must still serve after all that cancellation churn.
	got, st, err := engine.RunCachedContext(context.Background(), p, MapResolver(tables), cache, fps)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits == 0 {
		t.Fatal("cache no longer hits after cancellation churn")
	}
	want, errJ := relation.ProductJoin(semiring.SumProduct, a, b)
	if errJ != nil {
		t.Fatal(errJ)
	}
	want, errJ = relation.Marginalize(semiring.SumProduct, want, []string{"X", "Z"})
	if errJ != nil {
		t.Fatal(errJ)
	}
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("post-cancellation answer is wrong")
	}
	cache.Close()
	if pool.Pinned() != 0 {
		t.Fatalf("%d frames left pinned", pool.Pinned())
	}
}
