package exec

import (
	"math/rand"
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestIndexLookupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rel, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "a", Domain: 20}, {Name: "b", Domain: 20}}, 0.8,
		relation.UniformMeasure(0, 1))
	h := newHarness(t, 32, rel)
	tb := h.tables["r"]
	idx, err := BuildIndex(tb, "a")
	if err != nil {
		t.Fatal(err)
	}
	tb.AddIndex(idx)
	for val := int32(0); val < 20; val++ {
		locs := idx.Lookup(val)
		want, _ := relation.Select(rel, relation.Predicate{"a": val})
		if len(locs) != want.Len() {
			t.Fatalf("index lookup a=%d returned %d locations, want %d", val, len(locs), want.Len())
		}
		for _, loc := range locs {
			vals, _, err := tb.Heap.ReadTuple(loc.page, int(loc.slot))
			if err != nil {
				t.Fatal(err)
			}
			if vals[0] != val {
				t.Fatalf("index pointed at tuple with a=%d, want %d", vals[0], val)
			}
		}
	}
	if got := idx.Selectivity(0, tb.Heap.NumTuples()); got <= 0 || got > 1 {
		t.Fatalf("selectivity = %v", got)
	}
}

func TestBuildIndexUnknownAttr(t *testing.T) {
	rel := relation.MustNew("r", []relation.Attr{{Name: "a", Domain: 2}})
	h := newHarness(t, 8, rel)
	if _, err := BuildIndex(h.tables["r"], "z"); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

// TestIndexedSelectMatchesScanSelect runs the same plan with and without
// an index; results must agree and the indexed run must read fewer pages
// for selective predicates.
func TestIndexedSelectMatchesScanSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rel, _ := relation.Random(rng, "big",
		[]relation.Attr{{Name: "a", Domain: 500}, {Name: "b", Domain: 10}}, 0.9,
		relation.UniformMeasure(0, 1))
	h := newHarness(t, 512, rel)
	pb := h.builder()
	scan, _ := pb.Scan("big")
	sel, err := pb.Select(scan, relation.Predicate{"a": 7})
	if err != nil {
		t.Fatal(err)
	}

	before := h.pool.Stats()
	noIdx, _ := h.run(t, sel)
	scanIO := h.pool.Stats().Sub(before)

	idx, err := BuildIndex(h.tables["big"], "a")
	if err != nil {
		t.Fatal(err)
	}
	h.tables["big"].AddIndex(idx)
	before = h.pool.Stats()
	withIdx, _ := h.run(t, sel)
	idxIO := h.pool.Stats().Sub(before)

	if !relation.Equal(noIdx, withIdx, 0, 1e-12) {
		t.Fatal("indexed selection returned different rows")
	}
	// With a warm pool both may be hit-only; compare hits+reads (pages
	// touched) instead of physical reads.
	scanTouched := scanIO.Hits + scanIO.Reads
	idxTouched := idxIO.Hits + idxIO.Reads
	if idxTouched >= scanTouched {
		t.Fatalf("index touched %d pages, scan touched %d — expected fewer", idxTouched, scanTouched)
	}
}

// TestIndexedSelectResidualPredicate checks multi-variable predicates:
// the index covers one variable, the rest are applied as residuals.
func TestIndexedSelectResidualPredicate(t *testing.T) {
	rel, _ := relation.Complete("r",
		[]relation.Attr{{Name: "a", Domain: 6}, {Name: "b", Domain: 6}},
		func(v []int32) float64 { return float64(v[0]*10 + v[1]) })
	h := newHarness(t, 32, rel)
	idx, err := BuildIndex(h.tables["r"], "a")
	if err != nil {
		t.Fatal(err)
	}
	h.tables["r"].AddIndex(idx)
	pb := h.builder()
	scan, _ := pb.Scan("r")
	sel, err := pb.Select(scan, relation.Predicate{"a": 3, "b": 4})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.run(t, sel)
	if got.Len() != 1 || got.Measure(0) != 34 {
		t.Fatalf("residual predicate result wrong: %v", got)
	}
}

// TestIndexedSelectInQueryPipeline runs a full grouped query whose leaf
// selection goes through the index.
func TestIndexedSelectInQueryPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "x", Domain: 30}, {Name: "y", Domain: 5}}, 0.9,
		relation.UniformMeasure(0.1, 2))
	b2, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "y", Domain: 5}, {Name: "z", Domain: 4}}, 0.9,
		relation.UniformMeasure(0.1, 2))
	h := newHarness(t, 64, a, b2)
	idx, err := BuildIndex(h.tables["a"], "x")
	if err != nil {
		t.Fatal(err)
	}
	h.tables["a"].AddIndex(idx)

	pb := h.builder()
	sa, _ := pb.Scan("a")
	sel, _ := pb.Select(sa, relation.Predicate{"x": 5})
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sel, sb), []string{"z"})
	got, _ := h.run(t, g)

	selA, _ := relation.Select(a, relation.Predicate{"x": 5})
	joint, _ := relation.ProductJoin(semiring.SumProduct, selA, b2)
	want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"z"})
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("indexed pipeline result wrong")
	}
}

func TestReadTupleBounds(t *testing.T) {
	rel := relation.MustNew("r", []relation.Attr{{Name: "a", Domain: 2}})
	rel.MustAppend([]int32{1}, 2.5)
	h := newHarness(t, 8, rel)
	heap := h.tables["r"].Heap
	vals, m, err := heap.ReadTuple(0, 0)
	if err != nil || vals[0] != 1 || m != 2.5 {
		t.Fatalf("ReadTuple = %v %v %v", vals, m, err)
	}
	if _, _, err := heap.ReadTuple(0, 5); err == nil {
		t.Fatal("out-of-range slot should error")
	}
	if _, _, err := heap.ReadTuple(9, 0); err == nil {
		t.Fatal("out-of-range page should error")
	}
}
