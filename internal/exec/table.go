// Package exec is the physical execution engine for MPF plans.
//
// The engine evaluates logical plans from internal/plan over disk-resident
// operands: base tables live in heap files behind a shared buffer pool and
// every operator materializes its output to a temporary heap, mirroring
// the IO-dominated regime the paper targets (disk-resident functional
// relations inside PostgreSQL). Operator implementations include hash and
// sort-based product joins and marginalizing group-bys, plus an external
// sort; the engine records wall time, physical page IO, and intermediate
// tuple volume for every run so experiments can compare plans on the same
// metrics the paper reports.
package exec

import (
	"context"
	"fmt"
	"sync"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

// Table pairs a heap file with its attribute schema. The measure column
// is implicit (every heap tuple carries one).
type Table struct {
	Name  string
	Attrs []relation.Attr
	Heap  *storage.Heap
	// Indexes holds hash indexes by attribute name; selections use them
	// automatically when one covers a predicate variable.
	Indexes map[string]*Index
	temp    bool
	mu      sync.Mutex // serializes LockedAppend for parallel producers
	// onDrop, when set, runs exactly once on the first Drop, before any
	// heap release. The result cache uses it to unpin a shared cache entry
	// when the consuming operator is done with it: cached tables are
	// handed to operators with temp=false (so Drop never frees the shared
	// heap) and onDrop wired to the entry's release.
	onDrop func()
}

// LockedAppend appends one tuple under the table's mutex, allowing many
// goroutines (e.g. Grace-join partition workers) to produce into one
// output table. The heap performs exactly the same page operations as the
// equivalent serial Appends, only in a different interleaving.
func (t *Table) LockedAppend(vals []int32, measure float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Heap.Append(vals, measure)
}

// LockedAppendBatch appends a whole batch under the table's mutex — the
// bulk counterpart of LockedAppend, costing one lock acquisition and one
// heap pin per page of output instead of one of each per row.
func (t *Table) LockedAppendBatch(b *storage.Batch) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Heap.AppendBatch(b)
}

// LockedAppendRows appends row-major arrays under the table's mutex; see
// LockedAppendBatch.
func (t *Table) LockedAppendRows(vals []int32, measures []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Heap.AppendRows(vals, measures)
}

// Vars returns the table's variable set.
func (t *Table) Vars() relation.VarSet {
	s := make(relation.VarSet, len(t.Attrs))
	for _, a := range t.Attrs {
		s[a.Name] = true
	}
	return s
}

// ColIndex returns the schema position of the named attribute, or -1.
func (t *Table) ColIndex(name string) int {
	for i, a := range t.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Drop releases the table's storage if it is a temporary table; base
// tables and cache-owned tables are left untouched (the latter release
// their cache pin via the onDrop hook instead).
func (t *Table) Drop() error {
	if f := t.onDrop; f != nil {
		t.onDrop = nil
		f()
	}
	if !t.temp {
		return nil
	}
	t.temp = false
	return t.Heap.Drop()
}

// LoadRelation materializes an in-memory relation into a fresh heap file
// from the factory, registered with the pool. It is how base tables enter
// the engine.
func LoadRelation(pool *storage.Pool, factory storage.DiskFactory, r *relation.Relation) (*Table, error) {
	return LoadRelationColumnar(pool, factory, r, false)
}

// LoadRelationColumnar is LoadRelation with a columnar switch: when on,
// every heap page that fills during the load is re-encoded in place with
// the per-page columnar layout (dictionary/run-length where they pay for
// themselves), so scans of the base table serve encoded batches.
func LoadRelationColumnar(pool *storage.Pool, factory storage.DiskFactory, r *relation.Relation, columnar bool) (*Table, error) {
	h, err := storage.NewTempHeap(pool, factory, r.Arity())
	if err != nil {
		return nil, err
	}
	h.SetColumnar(columnar)
	for i := 0; i < r.Len(); i++ {
		if err := h.Append(r.Row(i), r.Measure(i)); err != nil {
			h.Drop()
			return nil, err
		}
	}
	return &Table{Name: r.Name(), Attrs: append([]relation.Attr(nil), r.Attrs()...), Heap: h}, nil
}

// ReadRelation scans the table back into an in-memory relation.
func ReadRelation(t *Table) (*relation.Relation, error) {
	return readRelationContext(context.Background(), t)
}

// readRelationContext scans the table back into an in-memory relation,
// observing ctx on page misses.
func readRelationContext(ctx context.Context, t *Table) (*relation.Relation, error) {
	r, err := relation.New(t.Name, t.Attrs)
	if err != nil {
		return nil, err
	}
	it := t.Heap.ScanBatchesContext(ctx)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < b.Len(); i++ {
			if err := r.Append(b.Row(i), b.Measures[i]); err != nil {
				return nil, err
			}
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// Resolver maps a base-table name to its stored table.
type Resolver func(name string) (*Table, error)

// MapResolver adapts a map of tables into a Resolver.
func MapResolver(tables map[string]*Table) Resolver {
	return func(name string) (*Table, error) {
		t, ok := tables[name]
		if !ok {
			return nil, fmt.Errorf("exec: unknown base table %q", name)
		}
		return t, nil
	}
}
