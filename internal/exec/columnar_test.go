package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"context"

	"mpf/internal/catalog"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// smallDomainRels builds relations whose attributes have tiny domains —
// the workload the columnar encodings exist for: every full page should
// dictionary- or run-length-encode.
func smallDomainRels(seed int64) (*relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "X", Domain: 14}, {Name: "Y", Domain: 8}, {Name: "Z", Domain: 10}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "W", Domain: 9}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	return a, b
}

// columnarHarness is newHarness with the base tables loaded through the
// columnar page encoder and the engine's columnar kernels switched on.
func columnarHarness(t testing.TB, frames int, rels ...*relation.Relation) *harness {
	t.Helper()
	h := newHarness(t, frames)
	for _, r := range rels {
		tb, err := LoadRelationColumnar(h.pool, h.engine.Factory, r, true)
		if err != nil {
			t.Fatal(err)
		}
		h.tables[r.Name()] = tb
		if err := h.cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
			t.Fatal(err)
		}
	}
	h.engine.Columnar = true
	return h
}

// pipelinePlan builds σ(Z=2) over a, joined with b, grouped on X — every
// operator the encoded kernels cover in one plan.
func pipelinePlan(t testing.TB, pb *plan.Builder) *plan.Node {
	t.Helper()
	sa, err := pb.Scan("a")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := pb.Select(sa, relation.Predicate{"Z": 2})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := pb.Scan("b")
	if err != nil {
		t.Fatal(err)
	}
	j := pb.Join(sel, sb)
	g, err := pb.GroupBy(j, []string{"X", "W"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestColumnarPipelineMatchesRowMajor is the tentpole invariant at the
// exec layer: the encoded kernels produce results bit-identical (tol 0)
// to row-major execution across batch widths and worker counts, and the
// columnar run actually encodes pages (the fast paths are exercised, not
// silently skipped).
func TestColumnarPipelineMatchesRowMajor(t *testing.T) {
	for _, mode := range []struct {
		name        string
		batchSize   int
		parallelism int
	}{
		{"batch-serial", 0, 0},
		{"batch-parallel", 0, 4},
		{"narrow-batch", 7, 0},
		{"narrow-parallel", 3, 4},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(41); seed <= 43; seed++ {
				a, b := smallDomainRels(seed)

				rm := newHarness(t, 4096, a, b)
				rm.engine.BatchSize = mode.batchSize
				rm.engine.Parallelism = mode.parallelism
				rm.engine.ParallelGroupByMinTuples = 1
				wantRel, _ := rm.run(t, pipelinePlan(t, rm.builder()))

				ch := columnarHarness(t, 4096, a, b)
				ch.engine.BatchSize = mode.batchSize
				ch.engine.Parallelism = mode.parallelism
				ch.engine.ParallelGroupByMinTuples = 1
				gotRel, _ := ch.run(t, pipelinePlan(t, ch.builder()))

				if !relation.Equal(wantRel, gotRel, 0, 0) {
					t.Fatalf("seed %d: columnar pipeline differs from row-major", seed)
				}
				if es := ch.pool.EncodingStats(); es.PagesEncoded == 0 {
					t.Fatalf("seed %d: no pages encoded — columnar path not exercised", seed)
				}
			}
		})
	}
}

// TestColumnarGraceJoinMatchesRowMajor forces the Grace strategy (tiny
// build cap) so the encoded partition kernel and the partition-pair
// joins run, and checks bit-identity plus temp-tuple parity with the
// row-major run.
func TestColumnarGraceJoinMatchesRowMajor(t *testing.T) {
	for _, parallelism := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", parallelism), func(t *testing.T) {
			for seed := int64(51); seed <= 53; seed++ {
				a, b := smallDomainRels(seed)
				join := func(h *harness) (*relation.Relation, RunStats) {
					h.engine.HashJoinMaxBuild = 16
					h.engine.Parallelism = parallelism
					pb := h.builder()
					sa, err := pb.Scan("a")
					if err != nil {
						t.Fatal(err)
					}
					sb, err := pb.Scan("b")
					if err != nil {
						t.Fatal(err)
					}
					return h.run(t, pb.Join(sa, sb))
				}
				wantRel, wantSt := join(newHarness(t, 4096, a, b))
				gotRel, gotSt := join(columnarHarness(t, 4096, a, b))
				if !relation.Equal(wantRel, gotRel, 0, 0) {
					t.Fatalf("seed %d: columnar grace join differs from row-major", seed)
				}
				if wantSt.TempTuples != gotSt.TempTuples {
					t.Fatalf("seed %d: TempTuples diverged: row-major %d columnar %d",
						seed, wantSt.TempTuples, gotSt.TempTuples)
				}
			}
		})
	}
}

// TestColumnarMinProduct runs the pipeline under the min-product
// semiring: the RLE run-aggregation fast path must fold measures with
// Sr.Add row by row, which min exposes immediately if violated (min has
// no additive shortcuts and a different zero).
func TestColumnarMinProduct(t *testing.T) {
	a, b := smallDomainRels(61)
	run := func(columnar bool) *relation.Relation {
		var h *harness
		if columnar {
			h = columnarHarness(t, 4096, a, b)
		} else {
			h = newHarness(t, 4096, a, b)
		}
		h.engine.Sr = semiring.MinProduct
		rel, _ := h.run(t, pipelinePlan(t, h.builder()))
		return rel
	}
	want, got := run(false), run(true)
	if !relation.Equal(want, got, semiring.MinProduct.Zero(), 0) {
		t.Fatal("columnar min-product pipeline differs from row-major")
	}
}

// TestMorselStatsAttribution checks the exclusive-time contract of the
// unified scheduler: a parallel run reports per-kind morsel counts whose
// busy time was measured inside the task, attributed to the submitting
// operator kind.
func TestMorselStatsAttribution(t *testing.T) {
	a, b := smallDomainRels(71)
	h := newHarness(t, 4096, a, b)
	h.engine.Parallelism = 4
	h.engine.ParallelGroupByMinTuples = 1
	h.engine.HashJoinMaxBuild = 16 // force Grace so ProductJoin morsels exist
	_, st := h.run(t, pipelinePlan(t, h.builder()))
	kinds := make(map[string]MorselStat, len(st.Morsels))
	for _, m := range st.Morsels {
		kinds[m.Kind] = m
	}
	for _, kind := range []string{"ProductJoin", "GroupBy"} {
		m, ok := kinds[kind]
		if !ok {
			t.Fatalf("no morsel stats for kind %s (got %v)", kind, st.Morsels)
		}
		if m.Count <= 0 {
			t.Fatalf("kind %s: non-positive morsel count %d", kind, m.Count)
		}
		if m.Busy < 0 {
			t.Fatalf("kind %s: negative busy time %v", kind, m.Busy)
		}
	}
	// Serial runs must not attach a scheduler or report morsels.
	h2 := newHarness(t, 4096, a, b)
	_, st2 := h2.run(t, pipelinePlan(t, h2.builder()))
	if len(st2.Morsels) != 0 {
		t.Fatalf("serial run reported morsels: %v", st2.Morsels)
	}
}

// TestMorselSchedParallelFor exercises the scheduler directly: caller
// participation (no deadlock at any worker count), full coverage, and
// first-error propagation with pending-task draining.
func TestMorselSchedParallelFor(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		m := newMorselSched(workers)
		var hits [100]atomic.Int32
		err := m.parallelFor("test", len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
		boom := errors.New("boom")
		if err := m.parallelFor("test", 50, func(i int) error {
			if i == 7 {
				return boom
			}
			return nil
		}); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: want boom, got %v", workers, err)
		}
		// The scheduler stays usable after an error.
		if err := m.parallelFor("again", 10, func(int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: post-error set failed: %v", workers, err)
		}
		m.close()
	}
}

// TestMorselSchedGroup exercises the open-stream shape: submissions with
// backpressure, wait draining everything, and error short-circuiting.
func TestMorselSchedGroup(t *testing.T) {
	m := newMorselSched(3)
	defer m.close()
	g := m.newGroup("stream")
	var n atomic.Int32
	for i := 0; i < 200; i++ {
		if err := g.submit(func() error {
			n.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.wait(); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 200 {
		t.Fatalf("ran %d of 200 submitted tasks", got)
	}
	boom := errors.New("boom")
	g2 := m.newGroup("stream")
	_ = g2.submit(func() error { return boom })
	for i := 0; i < 50; i++ {
		if err := g2.submit(func() error { return nil }); err != nil {
			break // error surfaced at submit: acceptable, as long as wait agrees
		}
	}
	if err := g2.wait(); !errors.Is(err, boom) {
		t.Fatalf("want boom from wait, got %v", err)
	}
	snap := m.snapshot()
	if len(snap) == 0 || snap[0].Kind != "stream" || snap[0].Count == 0 {
		t.Fatalf("bad snapshot %v", snap)
	}
}

// TestColumnarResultCacheStable checks the encoded paths through the
// result cache: a warm re-run served from cache equals the cold columnar
// run bit for bit.
func TestColumnarResultCacheStable(t *testing.T) {
	a, b := smallDomainRels(81)
	h := columnarHarness(t, 4096, a, b)
	cache := NewResultCache(1 << 20)
	ctx := context.Background()
	p := pipelinePlan(t, h.builder())
	fps := fixedVersions(p)
	cold, coldSt, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, fps)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmSt, err := h.engine.RunCachedContext(ctx, p, MapResolver(h.tables), cache, fps)
	if err != nil {
		t.Fatal(err)
	}
	if coldSt.CacheHits != 0 {
		t.Fatalf("cold run hit the cache: %+v", coldSt)
	}
	if warmSt.CacheHits == 0 {
		t.Fatalf("warm run missed the cache: %+v", warmSt)
	}
	if !relation.Equal(cold, warm, 0, 0) {
		t.Fatal("cached columnar result differs from cold run")
	}
}
