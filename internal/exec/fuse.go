package exec

import (
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// fusedJoinGroupBy evaluates GroupBy(Join(l, r)) without materializing
// the join: probe-side matches feed the aggregation hash table directly.
// This is the classic pipelined join+aggregate fusion; it is gated behind
// Engine.FuseJoinGroupBy because the default materializing operators are
// what the paper's IO-based cost model describes.
func (e *Engine) fusedJoinGroupBy(l, r *Table, groupVars []string, st *RunStats) (*Table, error) {
	lCols, rCols, rExtra, outAttrs, err := joinSchema(l, r)
	if err != nil {
		return nil, err
	}
	// Column positions of the group variables in the (virtual) join
	// output: left columns first, then r's extra columns.
	joinCol := func(v string) int {
		if c := l.ColIndex(v); c >= 0 {
			return c
		}
		for i, rc := range rExtra {
			if r.Attrs[rc].Name == v {
				return len(l.Attrs) + i
			}
		}
		return -1
	}
	groupCols := make([]int, len(groupVars))
	aggAttrs := make([]relation.Attr, len(groupVars))
	for i, v := range groupVars {
		c := joinCol(v)
		if c < 0 {
			return nil, errGroupVar(v, l.Name+"⋈*"+r.Name)
		}
		groupCols[i] = c
		aggAttrs[i] = outAttrs[c]
	}

	build, probe := l, r
	buildCols, probeCols := lCols, rCols
	buildIsLeft := true
	if r.Heap.NumTuples() < l.Heap.NumTuples() {
		build, probe = r, l
		buildCols, probeCols = rCols, lCols
		buildIsLeft = false
	}
	ht := make(map[string][]buildRow, build.Heap.NumTuples())
	bit := build.Heap.Scan()
	keyBuf := make([]byte, 4*max(len(buildCols), len(groupCols)))
	for {
		vals, m, ok := bit.Next()
		if !ok {
			break
		}
		k := hashKey(vals, buildCols, keyBuf)
		ht[k] = append(ht[k], buildRow{vals: append([]int32(nil), vals...), measure: m})
	}
	if err := bit.Close(); err != nil {
		return nil, err
	}

	groups := make(map[string]*aggEntry)
	order := make([]string, 0, 1024)
	rowBuf := make([]int32, len(outAttrs))
	absorb := func(lv []int32, lm float64, rv []int32, rm float64) {
		copy(rowBuf, lv)
		for i, c := range rExtra {
			rowBuf[len(l.Attrs)+i] = rv[c]
		}
		m := e.Sr.Mul(lm, rm)
		k := hashKey(rowBuf, groupCols, keyBuf)
		if g, seen := groups[k]; seen {
			g.measure = e.Sr.Add(g.measure, m)
			return
		}
		gv := make([]int32, len(groupCols))
		for i, c := range groupCols {
			gv[i] = rowBuf[c]
		}
		groups[k] = &aggEntry{vals: gv, measure: m}
		order = append(order, k)
	}

	pit := probe.Heap.Scan()
	defer pit.Close()
	for {
		vals, m, ok := pit.Next()
		if !ok {
			break
		}
		k := hashKey(vals, probeCols, keyBuf)
		for _, b := range ht[k] {
			if buildIsLeft {
				absorb(b.vals, b.measure, vals, m)
			} else {
				absorb(vals, m, b.vals, b.measure)
			}
		}
	}
	if err := pit.Err(); err != nil {
		return nil, err
	}

	out, err := e.newTemp("γ⋈("+l.Name+","+r.Name+")", aggAttrs)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		if err := out.Heap.Append(g.vals, g.measure); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	return out, nil
}

// errGroupVar builds the standard missing-group-variable error.
func errGroupVar(v, in string) error {
	return &groupVarError{v: v, in: in}
}

type groupVarError struct{ v, in string }

func (e *groupVarError) Error() string {
	return "exec: group variable " + e.v + " not in " + e.in
}

// tryFuse recognizes GroupBy(Join(..)) and runs the fused operator,
// returning (nil, 0, nil) when the pattern does not apply. The returned
// duration sums the inclusive wall time of the child subtrees it
// executed, for exclusive-time accounting in exec.
func (e *Engine) tryFuse(p *plan.Node, resolve Resolver, st *RunStats) (*Table, time.Duration, error) {
	if !e.FuseJoinGroupBy || p.Op != plan.OpGroupBy || p.Left == nil || p.Left.Op != plan.OpJoin {
		return nil, 0, nil
	}
	if e.SortJoin || e.SortGroupBy {
		return nil, 0, nil // fusion is a hash-pipeline optimization
	}
	join := p.Left
	l, lWall, err := e.exec(join.Left, resolve, st)
	if err != nil {
		return nil, lWall, err
	}
	r, rWall, err := e.exec(join.Right, resolve, st)
	childWall := lWall + rWall
	if err != nil {
		l.Drop()
		return nil, childWall, err
	}
	// Very large builds go through the materializing Grace path instead.
	smaller := l.Heap.NumTuples()
	if r.Heap.NumTuples() < smaller {
		smaller = r.Heap.NumTuples()
	}
	if smaller > e.maxBuild() {
		jt, err := e.hashJoin(l, r, st)
		dropInput(l, err == nil)
		dropInput(r, err == nil)
		if err != nil {
			return nil, childWall, err
		}
		out, err := e.hashGroupBy(jt, p.GroupVars, st)
		dropInput(jt, err == nil)
		return out, childWall, err
	}
	st.Operators++ // the caller counted the GroupBy; count the fused join
	out, err := e.fusedJoinGroupBy(l, r, p.GroupVars, st)
	dropInput(l, err == nil)
	dropInput(r, err == nil)
	return out, childWall, err
}
