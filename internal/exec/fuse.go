package exec

import (
	"context"
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/storage"
)

// fusedJoinGroupBy evaluates GroupBy(Join(l, r)) without materializing
// the join: probe-side matches feed the aggregation hash table directly.
// This is the classic pipelined join+aggregate fusion; it is gated behind
// Engine.FuseJoinGroupBy because the default materializing operators are
// what the paper's IO-based cost model describes.
func (e *Engine) fusedJoinGroupBy(ctx context.Context, l, r *Table, groupVars []string, st *RunStats) (*Table, error) {
	lCols, rCols, rExtra, outAttrs, err := joinSchema(l, r)
	if err != nil {
		return nil, err
	}
	// Column positions of the group variables in the (virtual) join
	// output: left columns first, then r's extra columns.
	joinCol := func(v string) int {
		if c := l.ColIndex(v); c >= 0 {
			return c
		}
		for i, rc := range rExtra {
			if r.Attrs[rc].Name == v {
				return len(l.Attrs) + i
			}
		}
		return -1
	}
	groupCols := make([]int, len(groupVars))
	aggAttrs := make([]relation.Attr, len(groupVars))
	for i, v := range groupVars {
		c := joinCol(v)
		if c < 0 {
			return nil, errGroupVar(v, l.Name+"⋈*"+r.Name)
		}
		groupCols[i] = c
		aggAttrs[i] = outAttrs[c]
	}

	build, probe := l, r
	buildCols, probeCols := lCols, rCols
	buildIsLeft := true
	if r.Heap.NumTuples() < l.Heap.NumTuples() {
		build, probe = r, l
		buildCols, probeCols = rCols, lCols
		buildIsLeft = false
	}
	if e.colOn() {
		return e.fusedColBatch(ctx, l, r, build, probe, buildCols, probeCols, rExtra, groupCols, aggAttrs, buildIsLeft, len(outAttrs), st)
	}
	if e.batchOn() {
		return e.fusedBatch(ctx, l, r, build, probe, buildCols, probeCols, rExtra, groupCols, aggAttrs, buildIsLeft, len(outAttrs), st)
	}
	poll := poller{ctx: ctx, st: st}
	ht := make(map[string][]buildRow, build.Heap.NumTuples())
	bit := build.Heap.ScanContext(ctx)
	keyBuf := make([]byte, 4*max(len(buildCols), len(groupCols)))
	for {
		vals, m, ok := bit.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			bit.Close()
			return nil, err
		}
		k := hashKey(vals, buildCols, keyBuf)
		ht[k] = append(ht[k], buildRow{vals: append([]int32(nil), vals...), measure: m})
	}
	if err := bit.Close(); err != nil {
		return nil, err
	}

	groups := make(map[string]*aggEntry)
	order := make([]string, 0, 1024)
	rowBuf := make([]int32, len(outAttrs))
	absorb := func(lv []int32, lm float64, rv []int32, rm float64) {
		copy(rowBuf, lv)
		for i, c := range rExtra {
			rowBuf[len(l.Attrs)+i] = rv[c]
		}
		m := e.Sr.Mul(lm, rm)
		k := hashKey(rowBuf, groupCols, keyBuf)
		if g, seen := groups[k]; seen {
			g.measure = e.Sr.Add(g.measure, m)
			return
		}
		gv := make([]int32, len(groupCols))
		for i, c := range groupCols {
			gv[i] = rowBuf[c]
		}
		groups[k] = &aggEntry{vals: gv, measure: m}
		order = append(order, k)
	}

	pit := probe.Heap.ScanContext(ctx)
	defer pit.Close()
	for {
		vals, m, ok := pit.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			return nil, err
		}
		k := hashKey(vals, probeCols, keyBuf)
		for _, b := range ht[k] {
			if buildIsLeft {
				absorb(b.vals, b.measure, vals, m)
			} else {
				absorb(vals, m, b.vals, b.measure)
			}
		}
	}
	if err := pit.Err(); err != nil {
		return nil, err
	}

	out, err := e.newOutTemp(ctx, "γ⋈("+l.Name+","+r.Name+")", aggAttrs)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		if err := out.Heap.Append(g.vals, g.measure); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	return out, nil
}

// fusedBatch is the vectorized fused join+aggregate: build via
// buildBatch, probe page batches, and fold each virtual join row's
// measure straight into the aggregation state — the join output is
// never materialized, exactly like the tuple path, but both scans decode
// whole pages and the group table is probed without allocating.
func (e *Engine) fusedBatch(ctx context.Context, l, r, build, probe *Table, buildCols, probeCols, rExtra, groupCols []int, aggAttrs []relation.Attr, buildIsLeft bool, outArity int, st *RunStats) (*Table, error) {
	hb, err := e.buildBatch(ctx, build, buildCols, st)
	if err != nil {
		return nil, err
	}
	agg := newBatchAgg(len(groupCols))
	rowBuf := make([]int32, outArity)
	// Probe and group keys get separate buffers: keyIndex reads require
	// the bytes past each encoded key to stay zero, which a shared buffer
	// holding two key shapes would violate.
	probeBuf := keyBufFor(probeCols)
	groupBuf := keyBufFor(groupCols)
	nl := len(l.Attrs)
	it := e.scanB(ctx, probe.Heap)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.addBatches(1)
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			n := encodeKey(row, probeCols, probeBuf)
			for _, br := range hb.lookup(probeBuf, n) {
				var lv, rv []int32
				var lm, rm float64
				if buildIsLeft {
					lv, lm, rv, rm = br.vals, br.measure, row, b.Measures[i]
				} else {
					lv, lm, rv, rm = row, b.Measures[i], br.vals, br.measure
				}
				copy(rowBuf, lv)
				for j, c := range rExtra {
					rowBuf[nl+j] = rv[c]
				}
				gn := encodeKey(rowBuf, groupCols, groupBuf)
				agg.absorb(e, groupBuf, gn, rowBuf, groupCols, e.Sr.Mul(lm, rm))
			}
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	out, err := e.newOutTemp(ctx, "γ⋈("+l.Name+","+r.Name+")", aggAttrs)
	if err != nil {
		return nil, err
	}
	if err := agg.emit(ctx, out, false, st); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// errGroupVar builds the standard missing-group-variable error.
func errGroupVar(v, in string) error {
	return &groupVarError{v: v, in: in}
}

type groupVarError struct{ v, in string }

func (e *groupVarError) Error() string {
	return "exec: group variable " + e.v + " not in " + e.in
}

// tryFuse recognizes GroupBy(Join(..)) and runs the fused operator,
// returning a nil table when the pattern does not apply. The returned
// duration and stats sum the inclusive wall time and IO of the child
// subtrees it executed, for exclusive accounting in exec. Fused
// grandchildren record their spans at depth+1: the elided Join node gets
// no span of its own, so the trace tree stays contiguous. bctx is the
// operator-body context from execOp (root-output marked at depth 0) and
// is used only for the calls that produce this node's output; child
// subtrees and the intermediate Grace join run under the plain ctx.
func (e *Engine) tryFuse(ctx, bctx context.Context, p *plan.Node, env *runEnv, depth int) (*Table, time.Duration, storage.Stats, error) {
	if !e.FuseJoinGroupBy || p.Op != plan.OpGroupBy || p.Left == nil || p.Left.Op != plan.OpJoin {
		return nil, 0, storage.Stats{}, nil
	}
	if e.SortJoin || e.SortGroupBy {
		return nil, 0, storage.Stats{}, nil // fusion is a hash-pipeline optimization
	}
	st := env.st
	join := p.Left
	l, lWall, lIO, err := e.exec(ctx, join.Left, env, depth+1)
	if err != nil {
		return nil, lWall, lIO, err
	}
	r, rWall, rIO, err := e.exec(ctx, join.Right, env, depth+1)
	childWall := lWall + rWall
	childIO := lIO.Add(rIO)
	if err != nil {
		l.Drop()
		return nil, childWall, childIO, err
	}
	// Very large builds go through the materializing Grace path instead.
	smaller := l.Heap.NumTuples()
	if r.Heap.NumTuples() < smaller {
		smaller = r.Heap.NumTuples()
	}
	if smaller > e.maxBuild() {
		jt, err := e.hashJoin(ctx, l, r, st)
		dropInput(l, err == nil)
		dropInput(r, err == nil)
		if err != nil {
			return nil, childWall, childIO, err
		}
		out, err := e.hashGroupBy(bctx, jt, p.GroupVars, st)
		dropInput(jt, err == nil)
		return out, childWall, childIO, err
	}
	st.Operators++ // the caller counted the GroupBy; count the fused join
	out, err := e.fusedJoinGroupBy(bctx, l, r, p.GroupVars, st)
	dropInput(l, err == nil)
	dropInput(r, err == nil)
	return out, childWall, childIO, err
}
