package exec

import (
	"math/rand"
	"testing"

	"mpf/internal/relation"
)

// TestFusedJoinGroupByMatchesUnfused compares the fused pipeline against
// the materializing operators on random inputs and group-variable
// choices.
func TestFusedJoinGroupByMatchesUnfused(t *testing.T) {
	for seed := int64(71); seed < 76; seed++ {
		a, b, _ := randomRelations(seed)
		h := newHarness(t, 32, a, b)
		pb := h.builder()
		sa, _ := pb.Scan("a")
		sb, _ := pb.Scan("b")
		for _, groupVars := range [][]string{{"X"}, {"Z"}, {"X", "Z"}, {"Y"}, nil} {
			g, err := pb.GroupBy(pb.Join(sa, sb), groupVars)
			if err != nil {
				t.Fatal(err)
			}
			h.engine.FuseJoinGroupBy = false
			plain, plainStats := h.run(t, g)
			h.engine.FuseJoinGroupBy = true
			fused, fusedStats := h.run(t, g)
			if !relation.Equal(plain, fused, 0, 1e-9) {
				t.Fatalf("seed %d group %v: fused result differs", seed, groupVars)
			}
			if fusedStats.TempTuples >= plainStats.TempTuples && plain.Len() > 0 && groupVars != nil {
				t.Fatalf("seed %d group %v: fusion did not reduce materialized tuples (%d vs %d)",
					seed, groupVars, fusedStats.TempTuples, plainStats.TempTuples)
			}
		}
	}
}

// TestFusedNestedPlanMatches runs a deeper plan where only the top
// GroupBy/Join pair fuses.
func TestFusedNestedPlanMatches(t *testing.T) {
	a, b, c := randomRelations(81)
	h := newHarness(t, 32, a, b, c)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	sc, _ := pb.Scan("c")
	inner, _ := pb.GroupBy(pb.Join(sa, sb), []string{"Z", "X"})
	g, _ := pb.GroupBy(pb.Join(inner, sc), []string{"W"})
	h.engine.FuseJoinGroupBy = false
	plain, _ := h.run(t, g)
	h.engine.FuseJoinGroupBy = true
	fused, _ := h.run(t, g)
	if !relation.Equal(plain, fused, 0, 1e-9) {
		t.Fatal("fused nested plan differs")
	}
}

// TestFusionSkipsSortModes: fusion only applies to the hash pipeline.
func TestFusionSkipsSortModes(t *testing.T) {
	a, b, _ := randomRelations(82)
	h := newHarness(t, 32, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sa, sb), []string{"X"})
	h.engine.FuseJoinGroupBy = true
	h.engine.SortJoin = true
	sorted, _ := h.run(t, g)
	h.engine.SortJoin = false
	h.engine.FuseJoinGroupBy = false
	plain, _ := h.run(t, g)
	if !relation.Equal(sorted, plain, 0, 1e-9) {
		t.Fatal("sort-mode run under fusion flag differs")
	}
}

// TestFusionWithGraceFallback: oversized builds take the materializing
// Grace path even under the fusion flag.
func TestFusionWithGraceFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "x", Domain: 30}, {Name: "y", Domain: 10}}, 0.9,
		relation.UniformMeasure(0.1, 2))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "y", Domain: 10}, {Name: "z", Domain: 30}}, 0.9,
		relation.UniformMeasure(0.1, 2))
	h := newHarness(t, 64, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sa, sb), []string{"x"})
	h.engine.FuseJoinGroupBy = false
	plain, _ := h.run(t, g)
	h.engine.FuseJoinGroupBy = true
	h.engine.HashJoinMaxBuild = 8
	fused, _ := h.run(t, g)
	if !relation.Equal(plain, fused, 0, 1e-9) {
		t.Fatal("grace fallback under fusion differs")
	}
}
