package exec

import (
	"context"
	"sync/atomic"

	"mpf/internal/relation"
)

// defaultParallelGroupByMinTuples is the input size below which parallel
// group-by is not worth the extra partition pass.
const defaultParallelGroupByMinTuples = 1 << 13

// workers returns the bounded worker count for parallel operators; 1
// means serial execution.
func (e *Engine) workers() int {
	if e.Parallelism <= 1 {
		return 1
	}
	return e.Parallelism
}

// parallelGroupByMin returns the tuple threshold for parallel group-by.
func (e *Engine) parallelGroupByMin() int64 {
	if e.ParallelGroupByMinTuples > 0 {
		return int64(e.ParallelGroupByMinTuples)
	}
	return defaultParallelGroupByMinTuples
}

// addTempTuples merges a worker-local intermediate-tuple count into the
// run's shared counter.
func (st *RunStats) addTempTuples(n int64) {
	if n != 0 {
		atomic.AddInt64(&st.TempTuples, n)
	}
}

// addBatches counts consumed tuple batches; atomic because parallel
// operators scan from several goroutines into one RunStats.
func (st *RunStats) addBatches(n int64) {
	if n != 0 {
		atomic.AddInt64(&st.Batches, n)
	}
}

// parallelHashGroupBy partitions the input on the group-key hash, runs the
// in-memory aggregation on each partition as concurrent morsels on the
// run's scheduler, and concatenates the partition results. Rows of one
// group always land in one partition, and partitioning preserves scan
// order within a partition, so every group's measures are accumulated in
// exactly the serial order — results are bit-identical to serial hash
// aggregation (only output row order differs, which is immaterial for a
// functional relation).
func (e *Engine) parallelHashGroupBy(ctx context.Context, in *Table, cols []int, outAttrs []relation.Attr, st *RunStats) (*Table, error) {
	parts, err := e.partition(ctx, in, cols, 0, st)
	if err != nil {
		return nil, err
	}
	defer dropAll(parts)
	out, err := e.newOutTemp(ctx, "γ("+in.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	err = st.parallelFor("GroupBy", len(parts), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := parts[i]
		if p.Heap.NumTuples() == 0 {
			return nil
		}
		if e.colOn() {
			agg, err := e.aggregateColBatch(ctx, p, cols, st)
			if err != nil {
				return err
			}
			return agg.emit(ctx, out, true, st)
		}
		if e.batchOn() {
			agg, err := e.aggregateBatch(ctx, p, cols, st)
			if err != nil {
				return err
			}
			return agg.emit(ctx, out, true, st)
		}
		order, groups, err := e.aggregate(ctx, p, cols)
		if err != nil {
			return err
		}
		var tmp int64
		defer func() { st.addTempTuples(tmp) }()
		for _, k := range order {
			g := groups[k]
			if err := out.LockedAppend(g.vals, g.measure); err != nil {
				return err
			}
			tmp++
		}
		return nil
	})
	if err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}
