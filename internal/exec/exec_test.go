package exec

import (
	"context"
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// harness bundles a pool, engine, catalog and loaded base tables.
type harness struct {
	pool   *storage.Pool
	engine *Engine
	cat    *catalog.Catalog
	tables map[string]*Table
}

func newHarness(t testing.TB, frames int, rels ...*relation.Relation) *harness {
	t.Helper()
	pool := storage.NewPool(frames)
	factory := storage.MemDiskFactory()
	h := &harness{
		pool:   pool,
		engine: NewEngine(pool, factory, semiring.SumProduct),
		cat:    catalog.New(),
		tables: make(map[string]*Table),
	}
	for _, r := range rels {
		tb, err := LoadRelation(pool, factory, r)
		if err != nil {
			t.Fatal(err)
		}
		h.tables[r.Name()] = tb
		if err := h.cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func (h *harness) builder() *plan.Builder {
	return plan.NewBuilder(h.cat, cost.Simple{})
}

func (h *harness) run(t *testing.T, p *plan.Node) (*relation.Relation, RunStats) {
	t.Helper()
	rel, st, err := h.engine.Run(p, MapResolver(h.tables))
	if err != nil {
		t.Fatal(err)
	}
	return rel, st
}

func randomRelations(seed int64) (*relation.Relation, *relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	a, _ := relation.Random(rng, "a", []relation.Attr{{Name: "X", Domain: 4}, {Name: "Y", Domain: 3}}, 0.8, relation.UniformMeasure(0.1, 5))
	b, _ := relation.Random(rng, "b", []relation.Attr{{Name: "Y", Domain: 3}, {Name: "Z", Domain: 4}}, 0.8, relation.UniformMeasure(0.1, 5))
	c, _ := relation.Random(rng, "c", []relation.Attr{{Name: "Z", Domain: 4}, {Name: "W", Domain: 3}}, 0.8, relation.UniformMeasure(0.1, 5))
	return a, b, c
}

func TestScanRoundTrip(t *testing.T) {
	a, _, _ := randomRelations(1)
	h := newHarness(t, 16, a)
	b := h.builder()
	p, err := b.Scan("a")
	if err != nil {
		t.Fatal(err)
	}
	got, st := h.run(t, p)
	if !relation.Equal(got, a, 0, 1e-12) {
		t.Fatal("scan did not round-trip the relation")
	}
	if st.RowsOut != int64(a.Len()) {
		t.Fatalf("RowsOut = %d, want %d", st.RowsOut, a.Len())
	}
}

func TestSelectMatchesOracle(t *testing.T) {
	a, _, _ := randomRelations(2)
	h := newHarness(t, 16, a)
	b := h.builder()
	scan, _ := b.Scan("a")
	sel, err := b.Select(scan, relation.Predicate{"X": 2})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.run(t, sel)
	want, _ := relation.Select(a, relation.Predicate{"X": 2})
	if !relation.Equal(got, want, 0, 1e-12) {
		t.Fatal("selection mismatch with oracle")
	}
}

func TestHashJoinMatchesOracle(t *testing.T) {
	a, b, _ := randomRelations(3)
	h := newHarness(t, 16, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	j := pb.Join(sa, sb)
	got, _ := h.run(t, j)
	want, err := relation.ProductJoin(semiring.SumProduct, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("hash join mismatch with oracle")
	}
}

func TestSortMergeJoinMatchesHashJoin(t *testing.T) {
	a, b, _ := randomRelations(4)
	h := newHarness(t, 16, a, b)
	h.engine.SortRunTuples = 4 // force multi-run merges
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	j := pb.Join(sa, sb)
	hash, _ := h.run(t, j)
	h.engine.SortJoin = true
	smj, _ := h.run(t, j)
	if !relation.Equal(hash, smj, 0, 1e-9) {
		t.Fatal("sort-merge join disagrees with hash join")
	}
}

func TestCrossProductJoin(t *testing.T) {
	x, _ := relation.FromRows("x", []relation.Attr{{Name: "A", Domain: 2}},
		[][]int32{{0}, {1}}, []float64{2, 3})
	y, _ := relation.FromRows("y", []relation.Attr{{Name: "B", Domain: 2}},
		[][]int32{{0}, {1}}, []float64{5, 7})
	h := newHarness(t, 16, x, y)
	pb := h.builder()
	sx, _ := pb.Scan("x")
	sy, _ := pb.Scan("y")
	for _, sortJoin := range []bool{false, true} {
		h.engine.SortJoin = sortJoin
		got, _ := h.run(t, pb.Join(sx, sy))
		want, _ := relation.ProductJoin(semiring.SumProduct, x, y)
		if !relation.Equal(got, want, 0, 1e-12) {
			t.Fatalf("cross product mismatch (sortJoin=%v)", sortJoin)
		}
	}
}

func TestGroupByMatchesOracle(t *testing.T) {
	a, _, _ := randomRelations(5)
	h := newHarness(t, 16, a)
	pb := h.builder()
	scan, _ := pb.Scan("a")
	g, err := pb.GroupBy(scan, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.run(t, g)
	want, _ := relation.Marginalize(semiring.SumProduct, a, []string{"X"})
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("hash group-by mismatch with oracle")
	}
	h.engine.SortGroupBy = true
	h.engine.SortRunTuples = 3
	got2, _ := h.run(t, g)
	if !relation.Equal(got2, want, 0, 1e-9) {
		t.Fatal("sort group-by mismatch with oracle")
	}
}

func TestGroupByAllAndNothing(t *testing.T) {
	a, _, _ := randomRelations(6)
	h := newHarness(t, 16, a)
	pb := h.builder()
	scan, _ := pb.Scan("a")
	// Group by no variables: single total.
	g0, err := pb.GroupBy(scan, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.run(t, g0)
	if got.Len() != 1 {
		t.Fatalf("grand total should have 1 row, got %d", got.Len())
	}
	var sum float64
	for i := 0; i < a.Len(); i++ {
		sum += a.Measure(i)
	}
	if d := got.Measure(0) - sum; d > 1e-9 || d < -1e-9 {
		t.Fatalf("grand total %v, want %v", got.Measure(0), sum)
	}
	// Group by all variables: identity for an FR.
	gAll, err := pb.GroupBy(scan, a.VarNames())
	if err != nil {
		t.Fatal(err)
	}
	gotAll, _ := h.run(t, gAll)
	if !relation.Equal(gotAll, a, 0, 1e-9) {
		t.Fatal("group-by all variables should be identity on an FR")
	}
}

// TestFullPlanEquivalence runs a 3-way join with pushed-down GroupBys and
// compares against the brute-force oracle (join all, aggregate once).
func TestFullPlanEquivalence(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		a, b, c := randomRelations(seed)
		h := newHarness(t, 16, a, b, c)
		pb := h.builder()
		sa, _ := pb.Scan("a")
		sb, _ := pb.Scan("b")
		sc, _ := pb.Scan("c")
		// Pushed-down plan: γ_W(γ_Z(γ_Y(a⋈*b ← γ) ⋈* c)).
		ab := pb.Join(sa, sb)
		gab, err := pb.GroupBy(ab, []string{"Z", "X"})
		if err != nil {
			t.Fatal(err)
		}
		abc := pb.Join(gab, sc)
		final, err := pb.GroupBy(abc, []string{"W"})
		if err != nil {
			t.Fatal(err)
		}
		// Wait: grouping out X early is only legal if X is not needed; X is
		// not a query variable and appears only in a, so dropping it when
		// aggregating a⋈*b is exactly the GDL transformation under test.
		got, _ := h.run(t, final)

		joint, err := relation.ProductJoinAll(semiring.SumProduct, a, b, c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := relation.Marginalize(semiring.SumProduct, joint, []string{"W"})
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("seed %d: pushed-down plan disagrees with oracle", seed)
		}
	}
}

func TestRunStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	big, _ := relation.Random(rng, "big",
		[]relation.Attr{{Name: "X", Domain: 50}, {Name: "Y", Domain: 50}}, 1, relation.UniformMeasure(0, 1))
	h := newHarness(t, 4, big) // tiny pool: physical IO guaranteed
	pb := h.builder()
	scan, _ := pb.Scan("big")
	g, _ := pb.GroupBy(scan, []string{"X"})
	_, st := h.run(t, g)
	if st.IO.Reads == 0 {
		t.Fatalf("expected physical reads with a 4-frame pool, got %+v", st.IO)
	}
	if st.Operators != 2 {
		t.Fatalf("Operators = %d, want 2", st.Operators)
	}
	if st.RowsOut != 50 {
		t.Fatalf("RowsOut = %d, want 50", st.RowsOut)
	}
	if st.TempTuples < 50 {
		t.Fatalf("TempTuples = %d, want >= 50", st.TempTuples)
	}
	if st.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestMinProductEngine(t *testing.T) {
	a, b, _ := randomRelations(7)
	pool := storage.NewPool(16)
	factory := storage.MemDiskFactory()
	eng := NewEngine(pool, factory, semiring.MinProduct)
	cat := catalog.New()
	tables := map[string]*Table{}
	for _, r := range []*relation.Relation{a, b} {
		tb, err := LoadRelation(pool, factory, r)
		if err != nil {
			t.Fatal(err)
		}
		tables[r.Name()] = tb
		cat.AddTable(catalog.AnalyzeRelation(r))
	}
	pb := plan.NewBuilder(cat, cost.Simple{})
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sa, sb), []string{"X"})
	got, _, err := eng.Run(g, MapResolver(tables))
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := relation.ProductJoin(semiring.MinProduct, a, b)
	want, _ := relation.Marginalize(semiring.MinProduct, joint, []string{"X"})
	if !relation.Equal(got, want, semiring.MinProduct.Zero(), 1e-9) {
		t.Fatal("min-product plan mismatch with oracle")
	}
}

func TestResolverUnknownTable(t *testing.T) {
	h := newHarness(t, 8)
	r := MapResolver(h.tables)
	if _, err := r("ghost"); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestExternalSortManyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "A", Domain: 64}, {Name: "B", Domain: 64}}, 0.9, relation.UniformMeasure(0, 1))
	h := newHarness(t, 16, rel)
	h.engine.SortRunTuples = 16
	tb := h.tables["r"]
	st := &RunStats{}
	sorted, err := h.engine.externalSort(context.Background(), tb, []int{0, 1}, st)
	if err != nil {
		t.Fatal(err)
	}
	defer sorted.Drop()
	if sorted.Heap.NumTuples() != tb.Heap.NumTuples() {
		t.Fatalf("sort changed tuple count: %d != %d", sorted.Heap.NumTuples(), tb.Heap.NumTuples())
	}
	it := newRowIter(context.Background(), sorted)
	defer it.Close()
	var prev []int32
	for {
		vals, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil && compareCols(prev, []int{0, 1}, vals, []int{0, 1}) > 0 {
			t.Fatalf("output not sorted: %v after %v", vals, prev)
		}
		prev = vals
	}
}

func TestExternalSortEmptyInput(t *testing.T) {
	empty := relation.MustNew("e", []relation.Attr{{Name: "A", Domain: 2}})
	h := newHarness(t, 8, empty)
	st := &RunStats{}
	sorted, err := h.engine.externalSort(context.Background(), h.tables["e"], []int{0}, st)
	if err != nil {
		t.Fatal(err)
	}
	defer sorted.Drop()
	if sorted.Heap.NumTuples() != 0 {
		t.Fatal("sorted empty input should be empty")
	}
}

func TestTempTablesReclaimed(t *testing.T) {
	a, b, _ := randomRelations(11)
	h := newHarness(t, 16, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sa, sb), []string{"X"})
	for i := 0; i < 5; i++ {
		h.run(t, g)
	}
	// After runs, only base-table pages should remain registered; verify by
	// pinning base pages still works and pool has no leaked pins (FlushAll
	// succeeds only if nothing is pinned dirty).
	if err := h.pool.FlushAll(); err != nil {
		t.Fatalf("leaked pins detected: %v", err)
	}
}

// TestPerOperatorStats checks the EXPLAIN-ANALYZE-style per-operator
// actuals: one entry per executed operator, bottom-up, with plausible
// row counts.
func TestPerOperatorStats(t *testing.T) {
	a, b, _ := randomRelations(91)
	h := newHarness(t, 16, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, _ := pb.GroupBy(pb.Join(sa, sb), []string{"X"})
	_, st := h.run(t, g)
	if len(st.Ops) != 4 { // 2 scans + join + group-by
		t.Fatalf("Ops has %d entries, want 4: %+v", len(st.Ops), st.Ops)
	}
	// Bottom-up: last entry is the root GroupBy.
	last := st.Ops[len(st.Ops)-1]
	if last.Desc != "GroupBy" {
		t.Fatalf("last op = %s, want GroupBy", last.Desc)
	}
	if last.Rows != st.RowsOut {
		t.Fatalf("root op rows %d != RowsOut %d", last.Rows, st.RowsOut)
	}
	for _, op := range st.Ops {
		if op.Rows < 0 || op.Desc == "" {
			t.Fatalf("malformed op stat %+v", op)
		}
	}
}
