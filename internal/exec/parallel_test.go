package exec

import (
	"context"
	"math/rand"
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// bigJoinInputs makes a pair of relations large enough to push the hash
// join (with a lowered build cap) through the Grace partitioned path.
func bigJoinInputs(seed int64) (*relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "X", Domain: 30}, {Name: "Y", Domain: 30}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "Y", Domain: 30}, {Name: "Z", Domain: 30}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	return a, b
}

// graceRun executes a ⋈* b through the Grace path with the given
// parallelism and batch width on a fresh pool large enough to avoid
// eviction, so the IO counters depend only on the operator's page
// accesses.
func graceRun(t *testing.T, seed int64, parallelism, batchSize int) (*relation.Relation, RunStats) {
	t.Helper()
	a, b := bigJoinInputs(seed)
	h := newHarness(t, 4096, a, b)
	h.engine.HashJoinMaxBuild = 32
	h.engine.Parallelism = parallelism
	h.engine.BatchSize = batchSize
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	rel, st := h.run(t, pb.Join(sa, sb))
	return rel, st
}

// TestParallelGraceJoinMatchesSerial checks the tentpole invariant: a
// parallel Grace join returns the same relation bit-for-bit and performs
// exactly the same physical IO as its serial execution. In tuple mode
// every Stats counter must match, hits included (each row pins the
// output page once, in any order). In batch mode reads and writes must
// still match, but hit counts may differ slightly: partition pairs flush
// page-sized output batches, so how their partial last batches align
// against page boundaries — and hence the pin count — depends on pair
// completion order.
func TestParallelGraceJoinMatchesSerial(t *testing.T) {
	for _, mode := range []struct {
		name      string
		batchSize int
	}{{"tuple", 1}, {"batch", 0}} {
		t.Run(mode.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				serialRel, serialSt := graceRun(t, seed, 0, mode.batchSize)
				parRel, parSt := graceRun(t, seed, 4, mode.batchSize)
				if !relation.Equal(serialRel, parRel, 0, 0) {
					t.Fatalf("seed %d: parallel grace join relation differs from serial", seed)
				}
				if mode.batchSize == 1 && parSt.IO != serialSt.IO {
					t.Fatalf("seed %d: IO diverged: serial %+v parallel %+v", seed, serialSt.IO, parSt.IO)
				}
				if parSt.IO.Reads != serialSt.IO.Reads || parSt.IO.Writes != serialSt.IO.Writes {
					t.Fatalf("seed %d: physical IO diverged: serial %+v parallel %+v", seed, serialSt.IO, parSt.IO)
				}
				if parSt.TempTuples != serialSt.TempTuples {
					t.Fatalf("seed %d: TempTuples diverged: serial %d parallel %d",
						seed, serialSt.TempTuples, parSt.TempTuples)
				}
				if serialSt.HotKeyFallbacks != 0 || parSt.HotKeyFallbacks != 0 {
					t.Fatalf("seed %d: unexpected hot-key fallbacks (serial %d, parallel %d)",
						seed, serialSt.HotKeyFallbacks, parSt.HotKeyFallbacks)
				}
			}
		})
	}
}

// groupByRun aggregates a wide random relation with the given
// parallelism on a fresh no-eviction pool.
func groupByRun(t *testing.T, seed int64, parallelism int) (*relation.Relation, RunStats) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "X", Domain: 40}, {Name: "Y", Domain: 40}, {Name: "Z", Domain: 3}}, 0.7,
		relation.UniformMeasure(0.1, 5))
	h := newHarness(t, 4096, r)
	h.engine.Parallelism = parallelism
	h.engine.ParallelGroupByMinTuples = 1 // always take the parallel path
	pb := h.builder()
	scan, _ := pb.Scan("r")
	g, err := pb.GroupBy(scan, []string{"X"})
	if err != nil {
		t.Fatal(err)
	}
	rel, st := h.run(t, g)
	return rel, st
}

// TestParallelGroupByMatchesSerial checks that partitioned parallel
// aggregation is bit-identical to serial hash aggregation (partitioning
// by group key preserves each group's accumulation order), and that its
// physical reads/writes match serial exactly. Hits legitimately differ:
// the partition pass routes every input tuple through a temp heap.
func TestParallelGroupByMatchesSerial(t *testing.T) {
	for seed := int64(21); seed <= 23; seed++ {
		serialRel, serialSt := groupByRun(t, seed, 0)
		parRel, parSt := groupByRun(t, seed, 4)
		if !relation.Equal(serialRel, parRel, 0, 0) {
			t.Fatalf("seed %d: parallel group-by relation differs from serial", seed)
		}
		if parSt.IO.Reads != serialSt.IO.Reads || parSt.IO.Writes != serialSt.IO.Writes {
			t.Fatalf("seed %d: physical IO diverged: serial %+v parallel %+v",
				seed, serialSt.IO, parSt.IO)
		}
	}
}

// TestParallelSortRunsMatchSerial checks that concurrent run generation
// yields the exact serial output sequence: runs are indexed by chunk
// order, so the k-way merge breaks ties identically.
func TestParallelSortRunsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	r, _ := relation.Random(rng, "r",
		[]relation.Attr{{Name: "A", Domain: 50}, {Name: "B", Domain: 50}}, 0.8,
		relation.UniformMeasure(0, 1))
	read := func(parallelism int) *relation.Relation {
		h := newHarness(t, 4096, r)
		h.engine.SortRunTuples = 64 // many runs
		h.engine.Parallelism = parallelism
		st := &RunStats{}
		sorted, err := h.engine.externalSort(context.Background(), h.tables["r"], []int{0, 1}, st)
		if err != nil {
			t.Fatal(err)
		}
		defer sorted.Drop()
		rel, err := ReadRelation(sorted)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	serial, parallel := read(0), read(4)
	if serial.Len() != parallel.Len() {
		t.Fatalf("length mismatch: %d vs %d", serial.Len(), parallel.Len())
	}
	for i := 0; i < serial.Len(); i++ {
		if !equalRows(serial.Row(i), parallel.Row(i)) || serial.Measure(i) != parallel.Measure(i) {
			t.Fatalf("row %d differs: %v/%v vs %v/%v",
				i, serial.Row(i), serial.Measure(i), parallel.Row(i), parallel.Measure(i))
		}
	}
}

// TestParallelPlanMatchesSerial runs a full pushed-down plan (joins with
// group-bys) serially and with Parallelism=4 and compares the answers
// against each other and the in-memory oracle.
func TestParallelPlanMatchesSerial(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		a, b, c := randomRelations(seed)
		var rels [2]*relation.Relation
		for i, par := range []int{0, 4} {
			h := newHarness(t, 1024, a, b, c)
			h.engine.Parallelism = par
			h.engine.HashJoinMaxBuild = 8 // force Grace even on small inputs
			h.engine.ParallelGroupByMinTuples = 1
			pb := h.builder()
			sa, _ := pb.Scan("a")
			sb, _ := pb.Scan("b")
			sc, _ := pb.Scan("c")
			gab, err := pb.GroupBy(pb.Join(sa, sb), []string{"Z", "X"})
			if err != nil {
				t.Fatal(err)
			}
			final, err := pb.GroupBy(pb.Join(gab, sc), []string{"W"})
			if err != nil {
				t.Fatal(err)
			}
			rels[i], _ = h.run(t, final)
		}
		// Chained operators compare within FP tolerance, not bit-for-bit:
		// the parallel join's output order is nondeterministic, so the
		// group-by above it accumulates each group's floats in a different
		// order than serial (per-operator bit-identity is covered by the
		// dedicated tests).
		if !relation.Equal(rels[0], rels[1], 0, 1e-9) {
			t.Fatalf("seed %d: parallel plan answer differs from serial", seed)
		}
		joint, _ := relation.ProductJoinAll(semiring.SumProduct, a, b, c)
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"W"})
		if !relation.Equal(rels[1], want, 0, 1e-9) {
			t.Fatalf("seed %d: parallel plan disagrees with oracle", seed)
		}
	}
}

// TestGraceHotKeySkewObservable builds inputs whose join key is a single
// hot value, so every repartition pass leaves one oversized partition:
// the join must still answer correctly (serially and in parallel) and
// RunStats must surface the depth-limit fallback.
func TestGraceHotKeySkewObservable(t *testing.T) {
	n := 200
	aAttrs := []relation.Attr{{Name: "X", Domain: n}, {Name: "Y", Domain: 2}}
	bAttrs := []relation.Attr{{Name: "Y", Domain: 2}, {Name: "Z", Domain: n}}
	a := relation.MustNew("a", aAttrs)
	b := relation.MustNew("b", bAttrs)
	for i := 0; i < n; i++ {
		a.MustAppend([]int32{int32(i), 1}, 2) // every tuple shares Y=1
		b.MustAppend([]int32{1, int32(i)}, 3)
	}
	for _, par := range []int{0, 4} {
		h := newHarness(t, 2048, a, b)
		h.engine.HashJoinMaxBuild = 16
		h.engine.Parallelism = par
		pb := h.builder()
		sa, _ := pb.Scan("a")
		sb, _ := pb.Scan("b")
		rel, st := h.run(t, pb.Join(sa, sb))
		if st.HotKeyFallbacks == 0 {
			t.Fatalf("parallelism %d: hot-key fallback not surfaced in RunStats", par)
		}
		if rel.Len() != n*n {
			t.Fatalf("parallelism %d: hot-key join produced %d rows, want %d", par, rel.Len(), n*n)
		}
		for i := 0; i < rel.Len(); i++ {
			if m := rel.Measure(i); m != 6 {
				t.Fatalf("parallelism %d: row %d measure %v, want 6", par, i, m)
			}
		}
	}
}
