package exec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/relation"
)

// dumpTable scans a table's heap in storage order, so two sorts compare
// including row ORDER — relation.Equal would hide a permutation.
func dumpTable(t *testing.T, tb *Table) ([]int32, []float64) {
	t.Helper()
	it := tb.Heap.Scan()
	defer it.Close()
	var vals []int32
	var meas []float64
	for {
		v, m, ok := it.Next()
		if !ok {
			break
		}
		vals = append(vals, v...)
		meas = append(meas, m)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return vals, meas
}

// sortBothPaths externally sorts tb by cols with the columnar kernels on
// and off and returns both storage-order dumps. The table stays loaded
// through the columnar encoder in both runs; only the sort path changes.
func sortBothPaths(t *testing.T, h *harness, tb *Table, cols []int, runTuples int) (rv, cv []int32, rm, cm []float64) {
	t.Helper()
	ctx := context.Background()
	h.engine.SortRunTuples = runTuples
	h.engine.Columnar = false
	rowOut, err := h.engine.externalSort(ctx, tb, cols, &RunStats{})
	if err != nil {
		t.Fatal(err)
	}
	defer rowOut.Drop()
	h.engine.Columnar = true
	colOut, err := h.engine.externalSort(ctx, tb, cols, &RunStats{})
	if err != nil {
		t.Fatal(err)
	}
	defer colOut.Drop()
	rv, rm = dumpTable(t, rowOut)
	cv, cm = dumpTable(t, colOut)
	return rv, cv, rm, cm
}

// fuzzSortRelation builds a deterministic relation from the fuzz inputs:
// arity columns whose value patterns cycle through run-heavy (RLE),
// dense-small (byte), sparse-small-distinct (dict — NOT order-preserving:
// first-occurrence dictionaries), and wide (plain) shapes.
func fuzzSortRelation(seed int64, rows, arity int) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]relation.Attr, arity)
	for i := range attrs {
		attrs[i] = relation.Attr{Name: fmt.Sprintf("C%d", i), Domain: 4000}
	}
	r := relation.MustNew("f", attrs)
	vals := make([]int32, arity)
	cur := make([]int32, arity)
	for i := 0; i < rows; i++ {
		for c := 0; c < arity; c++ {
			switch c % 4 {
			case 0: // run-heavy: value changes rarely
				if i == 0 || rng.Intn(20) == 0 {
					cur[c] = rng.Int31n(7)
				}
				vals[c] = cur[c]
			case 1: // dense small values: byte-encodable
				vals[c] = rng.Int31n(50)
			case 2: // sparse small-distinct: dictionary-encodable
				vals[c] = rng.Int31n(9) * 397
			default: // wide: plain
				vals[c] = rng.Int31n(4000)
			}
		}
		if err := r.Append(vals, 0.1+rng.Float64()*5); err != nil {
			panic(err)
		}
	}
	return r
}

// loadFuzzTable loads r through the columnar encoder into a fresh
// harness.
func loadFuzzTable(t *testing.T, r *relation.Relation) (*harness, *Table) {
	t.Helper()
	h := newHarness(t, 4096)
	tb, err := LoadRelationColumnar(h.pool, h.engine.Factory, r, true)
	if err != nil {
		t.Fatal(err)
	}
	h.tables[r.Name()] = tb
	if err := h.cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
		t.Fatal(err)
	}
	return h, tb
}

func checkSortEquivalence(t *testing.T, seed int64, rows, arity, runTuples int, cols []int) {
	t.Helper()
	r := fuzzSortRelation(seed, rows, arity)
	h, tb := loadFuzzTable(t, r)
	rv, cv, rm, cm := sortBothPaths(t, h, tb, cols, runTuples)
	if len(rv) != len(cv) || len(rm) != len(cm) {
		t.Fatalf("seed %d cols %v: size mismatch: row %d/%d columnar %d/%d",
			seed, cols, len(rv), len(rm), len(cv), len(cm))
	}
	for i := range rv {
		if rv[i] != cv[i] {
			t.Fatalf("seed %d cols %v: value %d differs: row %d columnar %d",
				seed, cols, i, rv[i], cv[i])
		}
	}
	for i := range rm {
		if rm[i] != cm[i] {
			t.Fatalf("seed %d cols %v: measure %d differs: row %g columnar %g",
				seed, cols, i, rm[i], cm[i])
		}
	}
}

// TestColumnarSortMatchesRowPath pins the tentpole sort invariant on
// fixed shapes: single-column sorts over every encoding (including the
// RLE block fast path and the dictionary order-mapping), multi-column
// sorts, and run sizes that force multi-run merges.
func TestColumnarSortMatchesRowPath(t *testing.T) {
	for _, tc := range []struct {
		rows, arity, runTuples int
		cols                   []int
	}{
		{1500, 4, 1 << 17, []int{0}},       // RLE leading: block path, single run
		{1500, 4, 256, []int{0}},           // RLE leading: block path, many runs + merge
		{1500, 4, 256, []int{1}},           // byte-encoded sort column
		{1500, 4, 256, []int{2}},           // dict-encoded: NOT order-preserving, mapped
		{1500, 4, 256, []int{3}},           // plain
		{1500, 4, 256, []int{2, 0, 1}},     // multi-column, dict leading
		{1500, 4, 199, []int{0, 3}},        // multi-column, RLE leading (no block path)
		{40, 2, 256, []int{1, 0}},          // partial page only: row-major views
		{1500, 4, 1500, []int{1, 2, 3, 0}}, // all columns, exactly one run
	} {
		checkSortEquivalence(t, 1234, tc.rows, tc.arity, tc.runTuples, tc.cols)
	}
}

// FuzzColumnarSortEquivalence drives random schemas, encodings, sort
// columns, and run sizes through both sort paths and requires the
// spilled-and-merged outputs to match byte for byte, measures included.
func FuzzColumnarSortEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(600), uint8(1), uint8(0), uint16(128))
	f.Add(int64(2), uint16(1300), uint8(3), uint8(2), uint16(97))
	f.Add(int64(3), uint16(2100), uint8(4), uint8(15), uint16(512))
	f.Add(int64(4), uint16(33), uint8(2), uint8(3), uint16(16))
	f.Fuzz(func(t *testing.T, seed int64, rows uint16, arity, colMask uint8, runTuples uint16) {
		nr := int(rows)%3000 + 1
		na := int(arity)%4 + 1
		rt := int(runTuples)%2048 + 16
		var cols []int
		for c := 0; c < na; c++ {
			if colMask&(1<<c) != 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []int{int(colMask) % na}
		}
		checkSortEquivalence(t, seed, nr, na, rt, cols)
	})
}

// TestColumnarSortInPlans runs whole sort-mode plans (sort-based
// aggregation and sort-merge join) columnar against row-major, checking
// the final relations bit for bit.
func TestColumnarSortInPlans(t *testing.T) {
	a, b := smallDomainRels(91)
	for _, mode := range []string{"sortgroupby", "sortjoin"} {
		t.Run(mode, func(t *testing.T) {
			run := func(columnar bool) *relation.Relation {
				var h *harness
				if columnar {
					h = columnarHarness(t, 4096, a, b)
				} else {
					h = newHarness(t, 4096, a, b)
				}
				h.engine.SortRunTuples = 128
				h.engine.SortGroupBy = mode == "sortgroupby"
				h.engine.SortJoin = mode == "sortjoin"
				rel, _ := h.run(t, pipelinePlan(t, h.builder()))
				return rel
			}
			want, got := run(false), run(true)
			if !relation.Equal(want, got, 0, 0) {
				t.Fatalf("%s: columnar sort plan differs from row-major", mode)
			}
		})
	}
}

// TestColumnarSortMorselAttribution asserts the new "Sort" morsel kind
// reports truthful counts under parallel run generation: one morsel per
// spilled run, busy time measured inside the task, and the row path's
// "SortRun" kind absent from a columnar run.
func TestColumnarSortMorselAttribution(t *testing.T) {
	a, b := smallDomainRels(93)
	h := columnarHarness(t, 4096, a, b)
	h.engine.Parallelism = 4
	h.engine.SortRunTuples = 128
	h.engine.SortGroupBy = true
	_, st := h.run(t, pipelinePlan(t, h.builder()))
	kinds := make(map[string]MorselStat, len(st.Morsels))
	for _, m := range st.Morsels {
		kinds[m.Kind] = m
	}
	if _, ok := kinds["SortRun"]; ok {
		t.Fatalf("columnar sort attributed row-path SortRun morsels: %v", st.Morsels)
	}
	m, ok := kinds["Sort"]
	if !ok {
		t.Fatalf("no Sort morsel stats (got %v)", st.Morsels)
	}
	// The pipeline sorts the join output, whose cardinality depends on
	// the seed; at minimum the sorts spill more than one run each — the
	// point is Count tracks spills, not workers or batches.
	if m.Count < 2 {
		t.Fatalf("Sort morsel count %d, want >= 2 (multiple runs)", m.Count)
	}
	if m.Busy <= 0 {
		t.Fatalf("Sort morsels report no busy time: %+v", m)
	}

	// Exact-count check under work stealing: a direct columnar external
	// sort over a table of known cardinality must submit EXACTLY one
	// "Sort" morsel per spilled run — ceil(n/runSize) — no matter which
	// worker (or the submitting goroutine itself) steals each task.
	r := fuzzSortRelation(97, 1500, 3)
	dh, tb := loadFuzzTable(t, r)
	dh.engine.Columnar = true
	dh.engine.SortRunTuples = 128
	dst := &RunStats{sched: newMorselSched(4)}
	defer dst.sched.close()
	out, err := dh.engine.externalSort(context.Background(), tb, []int{0}, dst)
	if err != nil {
		t.Fatal(err)
	}
	out.Drop()
	wantRuns := (1500 + 127) / 128
	var direct *MorselStat
	for _, ms := range dst.sched.snapshot() {
		if ms.Kind == "Sort" {
			msCopy := ms
			direct = &msCopy
		}
	}
	if direct == nil {
		t.Fatal("direct columnar sort reported no Sort morsels")
	}
	if direct.Count != int64(wantRuns) {
		t.Fatalf("Sort morsel count %d, want exactly %d (one per spilled run)", direct.Count, wantRuns)
	}
	if direct.Busy <= 0 {
		t.Fatalf("direct Sort morsels report no busy time: %+v", direct)
	}
}
