package exec

// Encoded-batch operator paths. These mirror the vectorized kernels of
// batch.go but consume storage.ColBatch views, operating on the page
// encodings directly: an equality predicate is checked once per RLE run
// instead of once per row, and dictionary/byte codes feed per-batch
// memo tables so a group-by or join probe does one keyIndex lookup per
// distinct code per batch instead of one per row. The canonical hash key
// is always the 4-bytes-per-column encodeKey through the existing
// keyIndex — per-page dictionary codes only short-circuit lookups, never
// key tables — so mixed columnar/row-major/fallback pages aggregate and
// join consistently. Every kernel emits rows in exactly the scan order
// of the row-major paths, and RLE aggregation folds measures in row
// order within a run — collapsing a measure span in O(1) only when the
// semiring proves the collapsed result bit-identical to the iterated
// fold (fold.go) — so results stay byte-identical to row-major
// execution, float accumulation order included.

import (
	"context"
	"encoding/binary"

	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// colOn reports whether the encoded-batch paths are selected: columnar
// mode on top of the vectorized paths.
func (e *Engine) colOn() bool { return e.Columnar && e.batchOn() }

// scanCB returns an encoded-batch iterator over h configured with the
// engine's batch width and read-ahead distance.
func (e *Engine) scanCB(ctx context.Context, h *storage.Heap) *storage.ColBatchIterator {
	it := h.ScanColBatchesContext(ctx)
	if e.BatchSize > 1 {
		it.SetBatchSize(e.BatchSize)
	}
	if e.ReadAhead > 0 {
		it.SetReadAhead(e.ReadAhead)
	}
	return it
}

// flatCols materializes every column of cb as a plain value slice
// (cached inside each view; a passthrough for plain columns), so gather
// loops index slices directly instead of switching on the encoding per
// value. Costs one decode pass per column — what the row-major batch
// decoder pays unconditionally.
func flatCols(cb *storage.ColBatch, buf [][]int32) [][]int32 {
	buf = buf[:0]
	for c := range cb.Cols {
		buf = append(buf, cb.Cols[c].Flat())
	}
	return buf
}

// gatherRow copies row i of the flattened columns into dst.
func gatherRow(fs [][]int32, i int, dst []int32) {
	for c, f := range fs {
		dst[c] = f[i]
	}
}

// markMismatches clears mask entries whose value in v differs from want,
// using the encoding: whole RLE runs are accepted or rejected at once,
// and byte/dict views compare codes without decoding.
func markMismatches(v *storage.ColView, want int32, mask []bool) {
	switch v.Enc {
	case storage.EncRLE:
		i := 0
		for _, r := range v.Runs {
			if r.Val != want {
				for j := 0; j < r.Len; j++ {
					mask[i+j] = false
				}
			}
			i += r.Len
		}
	case storage.EncByte:
		if want < 0 || want > 255 {
			for i := range mask {
				mask[i] = false
			}
			return
		}
		wb := uint8(want)
		for i, c := range v.Codes {
			if c != wb {
				mask[i] = false
			}
		}
	case storage.EncDict:
		code := -1
		for d, dv := range v.Dict {
			if dv == want {
				code = d
				break
			}
		}
		if code < 0 {
			for i := range mask {
				mask[i] = false
			}
			return
		}
		wc := uint8(code)
		for i, c := range v.Codes {
			if c != wc {
				mask[i] = false
			}
		}
	default:
		for i, x := range v.Plain {
			if x != want {
				mask[i] = false
			}
		}
	}
}

// selectColBatch is the encoded equality-selection scan: build a match
// mask per batch from the column encodings, then gather and emit the
// surviving rows in scan order.
func (e *Engine) selectColBatch(ctx context.Context, in *Table, cols []int, want []int32, out *Table, st *RunStats) error {
	it := e.scanCB(ctx, in.Heap)
	defer it.Close()
	w := newBatchWriter(out, false, st)
	rowBuf := make([]int32, len(in.Attrs))
	fbuf := make([][]int32, 0, len(in.Attrs))
	var mask []bool
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		n := cb.Len()
		if cap(mask) < n {
			mask = make([]bool, n)
		}
		mask = mask[:n]
		for i := range mask {
			mask[i] = true
		}
		for j, c := range cols {
			markMismatches(&cb.Cols[c], want[j], mask)
		}
		var fs [][]int32 // flattened lazily: an all-miss batch never decodes
		for i := 0; i < n; i++ {
			if !mask[i] {
				continue
			}
			if fs == nil {
				fs = flatCols(cb, fbuf)
				fbuf = fs
			}
			gatherRow(fs, i, rowBuf)
			if err := w.append(rowBuf, cb.Measures[i]); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return w.flush()
}

// absorbAt is batchAgg.absorb returning the group position, for memo
// fast paths that cache positions per dictionary code.
func (a *batchAgg) absorbAt(e *Engine, buf []byte, n int, row []int32, cols []int, m float64) int {
	gi, seen := a.idx.get(buf, n)
	if seen {
		a.meas[gi] = e.Sr.Add(a.meas[gi], m)
		return gi
	}
	gi = len(a.meas)
	for _, c := range cols {
		a.vals = append(a.vals, row[c])
	}
	a.meas = append(a.meas, m)
	a.idx.put(buf, n, gi)
	return gi
}

// absorbRun folds one RLE run's measures into the group keyed by
// buf[:n], in row order — one key lookup for the run, with spans of
// repeated measures collapsed in O(1) when the semiring's RunFolder
// proves the collapse bit-identical to the row path's iterated fold.
func (a *batchAgg) absorbRun(e *Engine, rf semiring.RunFolder, buf []byte, n int, row []int32, cols []int, meas []float64) {
	gi, seen := a.idx.get(buf, n)
	i := 0
	if !seen {
		gi = len(a.meas)
		for _, c := range cols {
			a.vals = append(a.vals, row[c])
		}
		a.meas = append(a.meas, meas[0])
		a.idx.put(buf, n, gi)
		i = 1
	}
	a.meas[gi] = foldMeasures(e.Sr, rf, a.meas[gi], meas[i:])
}

// aggregateColBatch runs one encoded hash-aggregation pass over in. A
// single-column group key hits the encoding fast paths (one lookup per
// RLE run, one lookup per distinct byte/dict code per batch); wider keys
// gather rows and use the canonical path.
func (e *Engine) aggregateColBatch(ctx context.Context, in *Table, cols []int, st *RunStats) (*batchAgg, error) {
	agg := newBatchAgg(len(cols))
	rf := e.runFolder()
	keyBuf := keyBufFor(cols)
	rowBuf := make([]int32, len(in.Attrs))
	fbuf := make([][]int32, 0, len(in.Attrs))
	single := len(cols) == 1
	var memo [256]int32 // group position + 1 per code, per batch
	it := e.scanCB(ctx, in.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.addBatches(1)
		if single {
			c := cols[0]
			v := &cb.Cols[c]
			switch v.Enc {
			case storage.EncRLE:
				i := 0
				for _, r := range v.Runs {
					binary.LittleEndian.PutUint32(keyBuf, uint32(r.Val))
					rowBuf[c] = r.Val
					agg.absorbRun(e, rf, keyBuf, 4, rowBuf, cols, cb.Measures[i:i+r.Len])
					i += r.Len
				}
				continue
			case storage.EncByte, storage.EncDict:
				ncodes := len(v.Dict)
				if v.Enc == storage.EncByte {
					ncodes = 256
				}
				for i := 0; i < ncodes; i++ {
					memo[i] = 0
				}
				for i, code := range v.Codes {
					if gi := memo[code]; gi != 0 {
						agg.meas[gi-1] = e.Sr.Add(agg.meas[gi-1], cb.Measures[i])
						continue
					}
					val := int32(code)
					if v.Enc == storage.EncDict {
						val = v.Dict[code]
					}
					binary.LittleEndian.PutUint32(keyBuf, uint32(val))
					rowBuf[c] = val
					memo[code] = int32(agg.absorbAt(e, keyBuf, 4, rowBuf, cols, cb.Measures[i])) + 1
				}
				continue
			}
		}
		fs := flatCols(cb, fbuf)
		fbuf = fs
		for i := 0; i < cb.Len(); i++ {
			gatherRow(fs, i, rowBuf)
			n := encodeKey(rowBuf, cols, keyBuf)
			agg.absorb(e, keyBuf, n, rowBuf, cols, cb.Measures[i])
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return agg, nil
}

// hashJoinIntoColBatch is the encoded in-memory-build hash join: build
// with the vectorized buildBatch (decoding works on any page format),
// then probe encoded batches, memoizing the group lookup per dictionary
// code (or per RLE run) on single-column join keys. Multi-column keys
// encode straight from the flattened KEY columns — no full-row gather —
// and probe the build table once per composed span when every key
// column run-length encodes. Output rows assemble in place: only the
// probe columns the output actually carries (the left columns when the
// probe is the left input, r's extra columns otherwise) are ever read,
// so wide probe rows with few surviving columns cost what they keep.
// Rows are emitted in exactly the row path's order.
func (e *Engine) hashJoinIntoColBatch(ctx context.Context, l, build, probe *Table, buildCols, probeCols, rExtra []int, buildIsLeft bool, out *Table, st *RunStats) error {
	hb, err := e.buildBatch(ctx, build, buildCols, st)
	if err != nil {
		return err
	}
	w := newBatchWriter(out, true, st)
	rowBuf := make([]int32, len(out.Attrs))
	fbuf := make([][]int32, 0, len(probe.Attrs))
	keyBuf := keyBufFor(probeCols)
	nl := len(l.Attrs)
	single := len(probeCols) == 1
	var memo [256][]buildRow // matches per code, per batch
	var memoSet [256]bool
	var kf [][]int32  // flattened key columns (multi-column path)
	var spanIdx []int // per-key-column run cursor (all-RLE path)
	var spanRem []int // rows left in each cursor's current run
	it := e.scanCB(ctx, probe.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		var fs [][]int32 // flattened on first match: all-miss batches skip decode
		emitAt := func(rows []buildRow, i int, pm float64) error {
			if fs == nil {
				fs = flatCols(cb, fbuf)
				fbuf = fs
			}
			if buildIsLeft {
				for j, c := range rExtra {
					rowBuf[nl+j] = fs[c][i]
				}
				for _, br := range rows {
					copy(rowBuf[:nl], br.vals)
					if err := w.append(rowBuf, e.Sr.Mul(br.measure, pm)); err != nil {
						return err
					}
				}
				return nil
			}
			for c := 0; c < nl; c++ {
				rowBuf[c] = fs[c][i]
			}
			for _, br := range rows {
				for j, c := range rExtra {
					rowBuf[nl+j] = br.vals[c]
				}
				if err := w.append(rowBuf, e.Sr.Mul(pm, br.measure)); err != nil {
					return err
				}
			}
			return nil
		}
		lookup1 := func(val int32) []buildRow {
			binary.LittleEndian.PutUint32(keyBuf, uint32(val))
			return hb.lookup(keyBuf, 4)
		}
		if single {
			v := &cb.Cols[probeCols[0]]
			switch v.Enc {
			case storage.EncRLE:
				i := 0
				for _, r := range v.Runs {
					rows := lookup1(r.Val)
					if len(rows) == 0 {
						i += r.Len
						continue
					}
					for j := i; j < i+r.Len; j++ {
						if err := emitAt(rows, j, cb.Measures[j]); err != nil {
							return err
						}
					}
					i += r.Len
				}
				continue
			case storage.EncByte, storage.EncDict:
				ncodes := len(v.Dict)
				if v.Enc == storage.EncByte {
					ncodes = 256
				}
				for i := 0; i < ncodes; i++ {
					memoSet[i] = false
				}
				for i, code := range v.Codes {
					if !memoSet[code] {
						val := int32(code)
						if v.Enc == storage.EncDict {
							val = v.Dict[code]
						}
						memo[code] = lookup1(val)
						memoSet[code] = true
					}
					rows := memo[code]
					if len(rows) == 0 {
						continue
					}
					if err := emitAt(rows, i, cb.Measures[i]); err != nil {
						return err
					}
				}
				continue
			}
		}
		n := cb.Len()
		allRLE := !single
		for _, c := range probeCols {
			if cb.Cols[c].Enc != storage.EncRLE {
				allRLE = false
				break
			}
		}
		if allRLE {
			// Every key column is RLE: walk the runs in lockstep and
			// compose one key per maximal span over which all columns
			// are constant — one encode + one probe per span instead of
			// per row.
			spanIdx = append(spanIdx[:0], make([]int, len(probeCols))...)
			spanRem = spanRem[:0]
			for _, c := range probeCols {
				spanRem = append(spanRem, cb.Cols[c].Runs[0].Len)
			}
			for i := 0; i < n; {
				span := n - i
				for k, c := range probeCols {
					binary.LittleEndian.PutUint32(keyBuf[4*k:], uint32(cb.Cols[c].Runs[spanIdx[k]].Val))
					if spanRem[k] < span {
						span = spanRem[k]
					}
				}
				if rows := hb.lookup(keyBuf, 4*len(probeCols)); len(rows) != 0 {
					for j := i; j < i+span; j++ {
						if err := emitAt(rows, j, cb.Measures[j]); err != nil {
							return err
						}
					}
				}
				i += span
				for k := range spanRem {
					if spanRem[k] -= span; spanRem[k] == 0 {
						if spanIdx[k]++; spanIdx[k] < len(cb.Cols[probeCols[k]].Runs) {
							spanRem[k] = cb.Cols[probeCols[k]].Runs[spanIdx[k]].Len
						}
					}
				}
			}
			continue
		}
		kf = kf[:0]
		for _, c := range probeCols {
			kf = append(kf, cb.Cols[c].Flat())
		}
		for i := 0; i < n; i++ {
			for k := range kf {
				binary.LittleEndian.PutUint32(keyBuf[4*k:], uint32(kf[k][i]))
			}
			rows := hb.lookup(keyBuf, 4*len(probeCols))
			if len(rows) == 0 {
				continue
			}
			if err := emitAt(rows, i, cb.Measures[i]); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return w.flush()
}

// partitionColBatch is the encoded Grace partition pass: bucket numbers
// come from the encodings (one hash per RLE run, one per distinct
// byte/dict code per batch on single-column keys) while rows are
// gathered and routed in scan order, so every partition holds exactly
// the rows, in exactly the order, the row paths produce.
func (e *Engine) partitionColBatch(ctx context.Context, t *Table, cols []int, depth int, parts []*Table, st *RunStats) error {
	writers := make([]*batchWriter, len(parts))
	for i, p := range parts {
		writers[i] = newBatchWriter(p, false, st)
	}
	rowBuf := make([]int32, len(t.Attrs))
	fbuf := make([][]int32, 0, len(t.Attrs))
	single := len(cols) == 1
	var memo [256]int16 // bucket + 1 per code, per batch
	it := e.scanCB(ctx, t.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		fs := flatCols(cb, fbuf) // every row is routed, so decode up front
		fbuf = fs
		if single {
			c := cols[0]
			v := &cb.Cols[c]
			switch v.Enc {
			case storage.EncRLE:
				i := 0
				for _, r := range v.Runs {
					rowBuf[c] = r.Val
					w := writers[partitionHash(rowBuf, cols, depth)]
					for j := i; j < i+r.Len; j++ {
						gatherRow(fs, j, rowBuf)
						if err := w.append(rowBuf, cb.Measures[j]); err != nil {
							return err
						}
					}
					i += r.Len
				}
				continue
			case storage.EncByte, storage.EncDict:
				ncodes := len(v.Dict)
				if v.Enc == storage.EncByte {
					ncodes = 256
				}
				for i := 0; i < ncodes; i++ {
					memo[i] = 0
				}
				for i, code := range v.Codes {
					b := memo[code]
					if b == 0 {
						val := int32(code)
						if v.Enc == storage.EncDict {
							val = v.Dict[code]
						}
						rowBuf[c] = val
						b = int16(partitionHash(rowBuf, cols, depth)) + 1
						memo[code] = b
					}
					gatherRow(fs, i, rowBuf)
					if err := writers[b-1].append(rowBuf, cb.Measures[i]); err != nil {
						return err
					}
				}
				continue
			}
		}
		for i := 0; i < cb.Len(); i++ {
			gatherRow(fs, i, rowBuf)
			w := writers[partitionHash(rowBuf, cols, depth)]
			if err := w.append(rowBuf, cb.Measures[i]); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	for _, w := range writers {
		if err := w.flush(); err != nil {
			return err
		}
	}
	return nil
}
