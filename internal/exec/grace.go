package exec

import (
	"encoding/binary"
	"hash/fnv"
)

// graceFanOut is the number of partitions per Grace hash-join pass.
const graceFanOut = 16

// MaxBuildTuples caps the in-memory hash-join build side; larger builds
// switch to the Grace strategy: both inputs are hash-partitioned on the
// join key into temp heaps, and partition pairs are joined independently
// (recursively re-partitioning with a different hash seed if a partition
// is still too large). Zero means 1<<20 tuples (~16 MiB of build rows).
const defaultMaxBuildTuples = 1 << 20

// graceDepthLimit stops pathological recursion when all join-key values
// collide (e.g. a single hot key); such partitions fall back to the
// in-memory join regardless of size.
const graceDepthLimit = 3

// partitionHash buckets a join key for pass depth.
func partitionHash(vals []int32, cols []int, depth int) int {
	h := fnv.New32a()
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(depth)*2654435761)
	h.Write(b[:])
	for _, c := range cols {
		binary.LittleEndian.PutUint32(b[:], uint32(vals[c]))
		h.Write(b[:])
	}
	return int(h.Sum32() % graceFanOut)
}

// maxBuild returns the engine's build-side cap.
func (e *Engine) maxBuild() int64 {
	if e.HashJoinMaxBuild > 0 {
		return e.HashJoinMaxBuild
	}
	return defaultMaxBuildTuples
}

// graceJoin hash-partitions both inputs on the shared variables and joins
// partition pairs, appending results to out.
func (e *Engine) graceJoin(l, r *Table, lCols, rCols, rExtra []int, out *Table, depth int, st *RunStats) error {
	lParts, err := e.partition(l, lCols, depth, st)
	if err != nil {
		return err
	}
	defer dropAll(lParts)
	rParts, err := e.partition(r, rCols, depth, st)
	if err != nil {
		return err
	}
	defer dropAll(rParts)
	for i := 0; i < graceFanOut; i++ {
		lp, rp := lParts[i], rParts[i]
		if lp.Heap.NumTuples() == 0 || rp.Heap.NumTuples() == 0 {
			continue
		}
		small := lp.Heap.NumTuples()
		if rp.Heap.NumTuples() < small {
			small = rp.Heap.NumTuples()
		}
		if small > e.maxBuild() && depth < graceDepthLimit {
			if err := e.graceJoin(lp, rp, lCols, rCols, rExtra, out, depth+1, st); err != nil {
				return err
			}
			continue
		}
		if err := e.hashJoinInto(lp, rp, lCols, rCols, rExtra, out, st); err != nil {
			return err
		}
	}
	return nil
}

// partition splits t into graceFanOut temp heaps by join-key hash.
func (e *Engine) partition(t *Table, cols []int, depth int, st *RunStats) ([]*Table, error) {
	parts := make([]*Table, graceFanOut)
	for i := range parts {
		p, err := e.newTemp("part", t.Attrs)
		if err != nil {
			dropAll(parts[:i])
			return nil, err
		}
		parts[i] = p
	}
	it := t.Heap.Scan()
	defer it.Close()
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		p := parts[partitionHash(vals, cols, depth)]
		if err := p.Heap.Append(vals, m); err != nil {
			dropAll(parts)
			return nil, err
		}
		st.TempTuples++
	}
	if err := it.Err(); err != nil {
		dropAll(parts)
		return nil, err
	}
	return parts, nil
}

func dropAll(ts []*Table) {
	for _, t := range ts {
		if t != nil {
			t.Drop()
		}
	}
}
