package exec

import (
	"context"
	"sync/atomic"
)

// graceFanOut is the number of partitions per Grace hash-join pass.
const graceFanOut = 16

// MaxBuildTuples caps the in-memory hash-join build side; larger builds
// switch to the Grace strategy: both inputs are hash-partitioned on the
// join key into temp heaps, and partition pairs are joined independently
// (recursively re-partitioning with a different hash seed if a partition
// is still too large). Zero means 1<<20 tuples (~16 MiB of build rows).
const defaultMaxBuildTuples = 1 << 20

// graceDepthLimit stops pathological recursion when all join-key values
// collide (e.g. a single hot key); such partitions fall back to the
// in-memory join regardless of size.
const graceDepthLimit = 3

// partitionHash buckets a join key for pass depth. The seed is
// (depth+1)·2654435761 so that depth 0 already mixes a non-zero seed into
// the FNV state — depth·K would be a zero-byte no-op on the first pass.
// The final avalanche (murmur3 fmix32) is load-bearing: raw FNV mod a
// power-of-two fan-out keys the bucket off the hash's low bits, which for
// short keys depend only on the key's low bits regardless of the seed —
// the same keys would then collide at EVERY depth and recursive
// repartitioning could never split a colliding pair, driving every such
// partition to the depth-limit fallback.
// The FNV-1a state is threaded through fnvMix4 manually rather than a
// hash/fnv object: this runs once per tuple on the Grace partition pass
// and the hash.Hash32 interface's Write cost is measurable there. The
// byte order matches the little-endian encoding the fnv object consumed,
// so bucket assignments are identical.
func partitionHash(vals []int32, cols []int, depth int) int {
	const fnvOffset32 = 2166136261
	h := fnvMix4(fnvOffset32, (uint32(depth)+1)*2654435761)
	for _, c := range cols {
		h = fnvMix4(h, uint32(vals[c]))
	}
	s := h
	s ^= s >> 16
	s *= 0x85ebca6b
	s ^= s >> 13
	s *= 0xc2b2ae35
	s ^= s >> 16
	return int(s % graceFanOut)
}

// fnvMix4 folds v's four bytes, least significant first, into an FNV-1a
// state — exactly what writing v's little-endian encoding to an fnv
// hasher does.
func fnvMix4(h, v uint32) uint32 {
	const prime32 = 16777619
	h = (h ^ (v & 0xff)) * prime32
	h = (h ^ ((v >> 8) & 0xff)) * prime32
	h = (h ^ ((v >> 16) & 0xff)) * prime32
	h = (h ^ (v >> 24)) * prime32
	return h
}

// maxBuild returns the engine's build-side cap.
func (e *Engine) maxBuild() int64 {
	if e.HashJoinMaxBuild > 0 {
		return e.HashJoinMaxBuild
	}
	return defaultMaxBuildTuples
}

// graceJoin hash-partitions both inputs on the shared variables and joins
// partition pairs, appending results to out. With a morsel scheduler
// attached to the run (Engine.Parallelism > 1) the two partition passes
// run as concurrent morsels and the partition pairs are morsels spread
// over the run's shared worker pool, each pair appending into out under
// its lock; recursive repartitioning stays serial inside its morsel.
// Partition pairs touch disjoint pages and every result row performs the
// same appends as in serial order, so (absent pool eviction) the IO
// counters match serial execution exactly.
func (e *Engine) graceJoin(ctx context.Context, l, r *Table, lCols, rCols, rExtra []int, out *Table, depth int, st *RunStats) error {
	parallel := depth == 0 && st != nil && st.sched != nil
	var lParts, rParts []*Table
	var lErr, rErr error
	if parallel {
		// Both partition passes as one morsel set: whichever the caller
		// does not run itself lands on a pool worker.
		st.sched.parallelFor("ProductJoin", 2, func(i int) error {
			if i == 0 {
				lParts, lErr = e.partition(ctx, l, lCols, depth, st)
			} else {
				rParts, rErr = e.partition(ctx, r, rCols, depth, st)
			}
			return nil
		})
	} else {
		lParts, lErr = e.partition(ctx, l, lCols, depth, st)
		if lErr == nil {
			rParts, rErr = e.partition(ctx, r, rCols, depth, st)
		}
	}
	defer dropAll(lParts)
	defer dropAll(rParts)
	if lErr != nil {
		return lErr
	}
	if rErr != nil {
		return rErr
	}
	pair := func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		lp, rp := lParts[i], rParts[i]
		if lp.Heap.NumTuples() == 0 || rp.Heap.NumTuples() == 0 {
			return nil
		}
		small := lp.Heap.NumTuples()
		if rp.Heap.NumTuples() < small {
			small = rp.Heap.NumTuples()
		}
		if small > e.maxBuild() {
			if depth < graceDepthLimit {
				return e.graceJoin(ctx, lp, rp, lCols, rCols, rExtra, out, depth+1, st)
			}
			// Hot key: every repartition left this pair oversized, so join
			// it in memory anyway and surface the event.
			atomic.AddInt64(&st.HotKeyFallbacks, 1)
		}
		return e.hashJoinInto(ctx, lp, rp, lCols, rCols, rExtra, out, st)
	}
	if parallel {
		return st.sched.parallelFor("ProductJoin", graceFanOut, pair)
	}
	for i := 0; i < graceFanOut; i++ {
		if err := pair(i); err != nil {
			return err
		}
	}
	return nil
}

// partition splits t into graceFanOut temp heaps by join-key hash.
func (e *Engine) partition(ctx context.Context, t *Table, cols []int, depth int, st *RunStats) ([]*Table, error) {
	parts := make([]*Table, graceFanOut)
	for i := range parts {
		p, err := e.newTemp(ctx, "part", t.Attrs)
		if err != nil {
			dropAll(parts[:i])
			return nil, err
		}
		parts[i] = p
	}
	if e.colOn() {
		if err := e.partitionColBatch(ctx, t, cols, depth, parts, st); err != nil {
			dropAll(parts)
			return nil, err
		}
		return parts, nil
	}
	if e.batchOn() {
		if err := e.partitionBatch(ctx, t, cols, depth, parts, st); err != nil {
			dropAll(parts)
			return nil, err
		}
		return parts, nil
	}
	var tmp int64
	defer func() { st.addTempTuples(tmp) }()
	it := t.Heap.ScanContext(ctx)
	defer it.Close()
	poll := poller{ctx: ctx, st: st}
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			dropAll(parts)
			return nil, err
		}
		p := parts[partitionHash(vals, cols, depth)]
		if err := p.Heap.Append(vals, m); err != nil {
			dropAll(parts)
			return nil, err
		}
		tmp++
	}
	if err := it.Err(); err != nil {
		dropAll(parts)
		return nil, err
	}
	return parts, nil
}

func dropAll(ts []*Table) {
	for _, t := range ts {
		if t != nil {
			t.Drop()
		}
	}
}
