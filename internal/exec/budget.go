package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Budget bounds the resources a single query may consume. The zero value
// means unbounded. Budgets ride on the query context (WithBudget), so the
// Run* signatures are unchanged and callers that never set one pay
// nothing new.
type Budget struct {
	// MaxTempTuples caps the tuples materialized into intermediate
	// tables (RunStats.TempTuples) — the engine's proxy for a query's
	// memory and scratch-disk footprint, since every operator output is
	// a paged materialization. The executor checks the cap inside
	// operator loops (the same cadence as cancellation polling, plus
	// every page-sized batch flush), so a join whose output explodes is
	// stopped within one poll interval of crossing the line, not after
	// it finishes. Zero means unbounded.
	MaxTempTuples int64
	// MaxRows caps the result cardinality (RunStats.RowsOut), checked
	// when the root operator's output is read back. Zero means
	// unbounded.
	MaxRows int64
}

// active reports whether any bound is set.
func (b Budget) active() bool { return b.MaxTempTuples > 0 || b.MaxRows > 0 }

// budgetKey is the context key for WithBudget.
type budgetKey struct{}

// WithBudget attaches a per-query resource budget to ctx. The engine
// reads it at the start of RunContext/RunCachedContext; a query that
// exceeds a bound fails with an error matching ErrBudget, temps dropped
// and no frames pinned, exactly like a cancellation.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFromContext returns the budget attached by WithBudget, if any.
func BudgetFromContext(ctx context.Context) (Budget, bool) {
	b, ok := ctx.Value(budgetKey{}).(Budget)
	return b, ok
}

// ErrBudget is the category sentinel for queries stopped by their
// resource budget; match with errors.Is. The concrete error is a
// *BudgetError naming the exceeded bound.
var ErrBudget = errors.New("query budget exceeded")

// BudgetError reports which budget bound a query exceeded. It matches
// ErrBudget via errors.Is.
type BudgetError struct {
	// Resource names the exhausted bound: "temp-tuples" or "rows".
	Resource string
	// Limit is the configured bound; Used the observed consumption when
	// the check fired.
	Limit, Used int64
}

// Error describes the exceeded bound.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("exec: query budget exceeded: %s %d over limit %d", e.Resource, e.Used, e.Limit)
}

// Is matches the ErrBudget sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// overTemp checks the temp-tuple bound against the run's shared counter.
// The atomic load pairs with addTempTuples from parallel workers; serial
// increments are same-goroutine and need no ordering.
func (st *RunStats) overTemp() error {
	if st.budget.MaxTempTuples <= 0 {
		return nil
	}
	if used := atomic.LoadInt64(&st.TempTuples); used > st.budget.MaxTempTuples {
		return &BudgetError{Resource: "temp-tuples", Limit: st.budget.MaxTempTuples, Used: used}
	}
	return nil
}

// overRows checks the result-cardinality bound.
func (st *RunStats) overRows(rows int64) error {
	if st.budget.MaxRows > 0 && rows > st.budget.MaxRows {
		return &BudgetError{Resource: "rows", Limit: st.budget.MaxRows, Used: rows}
	}
	return nil
}
