package exec

// Run-level measure folding. The columnar kernels see measures as plain
// float64 vectors whose values often repeat (uniform weights, boolean
// evidence, counts), and RLE key runs hand whole measure spans to one
// group at a time. When the semiring implements semiring.RunFolder, a
// span of bit-identical measures folds into the accumulator in O(1)
// instead of O(span) — but ONLY when the folder proves the closed form
// bit-identical to the iterated left fold (idempotent Adds always;
// float sums only over provably exact integer partials). Everything
// else falls back to the per-row loop, preserving the byte-identical
// contract of colbatch.go.

import (
	"math"

	"mpf/internal/semiring"
)

// runFolder returns the engine semiring's O(1) fold capability, or nil
// when the semiring does not implement semiring.RunFolder. Operators
// resolve it once per invocation, not per row.
func (e *Engine) runFolder() semiring.RunFolder {
	rf, _ := e.Sr.(semiring.RunFolder)
	return rf
}

// foldMeasures folds meas into acc with sr.Add in index order. With a
// RunFolder it detects spans of bit-identical measures (bit comparison,
// so ±0 and NaN payloads never alias) and collapses each span through
// FoldAdd when that is exact, falling back to the per-row loop when not.
// The result is bit-identical to the plain left fold in every case.
func foldMeasures(sr semiring.Semiring, rf semiring.RunFolder, acc float64, meas []float64) float64 {
	if rf == nil {
		for _, m := range meas {
			acc = sr.Add(acc, m)
		}
		return acc
	}
	for i := 0; i < len(meas); {
		m := meas[i]
		j := i + 1
		mb := math.Float64bits(m)
		for j < len(meas) && math.Float64bits(meas[j]) == mb {
			j++
		}
		if k := j - i; k > 1 {
			if res, ok := rf.FoldAdd(acc, m, k); ok {
				acc, i = res, j
				continue
			}
		}
		for ; i < j; i++ {
			acc = sr.Add(acc, m)
		}
	}
	return acc
}
