package exec

// Fused columnar join+aggregate. fusedBatch (fuse.go) already skips the
// join's materialization but still gathers every probe row; this kernel
// consumes ENCODED probe batches and never materializes probe rows at
// all — the only probe columns ever decoded are the ones feeding the
// join key or the group key. Per batch it probes the build table once
// per RLE key run (or once per distinct byte/dict code, memoized), and
// folds aggregates run-at-a-time: within a key run, a maximal sub-span
// over which every probe-side group column is constant contributes to
// each matching build row's group with ONE key encode + ONE slot lookup,
// and its measure vector folds through absorbMulSpan (collapsing
// repeated measures in O(1) when the semiring's RunFolder proves it
// exact — fold.go).
//
// Byte-identity with the row paths: spans fold each build row's
// contributions in probe-row order, and span folding is used only when
// every matching build row lands in a DISTINCT aggregation group (or
// there is just one match) — otherwise two build rows would interleave
// into one accumulator in the row path and per-row absorption is used
// instead. Group creation therefore happens in exactly the row path's
// first-touch order and every accumulator sees exactly the row path's
// Add sequence, so results are byte-identical, float order included.

import (
	"context"
	"encoding/binary"
	"math"

	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// absorbMulSpan folds a probe measure span into the group keyed by
// buf[:n]: each row contributes Mul(build measure, row measure) (in the
// join's left/right argument order) and spans of bit-identical measures
// collapse through the RunFolder when exact. The Add sequence equals the
// row path's per-row absorbs for this (group, span) pair exactly.
func (a *batchAgg) absorbMulSpan(e *Engine, rf semiring.RunFolder, buf []byte, n int, row []int32, cols []int, bm float64, buildIsLeft bool, meas []float64) {
	mul := func(m float64) float64 {
		if buildIsLeft {
			return e.Sr.Mul(bm, m)
		}
		return e.Sr.Mul(m, bm)
	}
	gi, seen := a.idx.get(buf, n)
	i := 0
	if !seen {
		gi = len(a.meas)
		for _, c := range cols {
			a.vals = append(a.vals, row[c])
		}
		a.meas = append(a.meas, mul(meas[0]))
		a.idx.put(buf, n, gi)
		i = 1
	}
	acc := a.meas[gi]
	for i < len(meas) {
		m := meas[i]
		j := i + 1
		mb := math.Float64bits(m)
		for j < len(meas) && math.Float64bits(meas[j]) == mb {
			j++
		}
		mm := mul(m)
		if k := j - i; k > 1 && rf != nil {
			if res, ok := rf.FoldAdd(acc, mm, k); ok {
				acc, i = res, j
				continue
			}
		}
		for ; i < j; i++ {
			acc = e.Sr.Add(acc, mm)
		}
	}
	a.meas[gi] = acc
}

// fusedColBatch is the encoded-batch fused join+aggregate (see the file
// comment). Parameters mirror fusedBatch's.
func (e *Engine) fusedColBatch(ctx context.Context, l, r, build, probe *Table, buildCols, probeCols, rExtra, groupCols []int, aggAttrs []relation.Attr, buildIsLeft bool, outArity int, st *RunStats) (*Table, error) {
	hb, err := e.buildBatch(ctx, build, buildCols, st)
	if err != nil {
		return nil, err
	}
	agg := newBatchAgg(len(groupCols))
	rf := e.runFolder()
	nl := len(l.Attrs)

	// Split the group columns by source side. A join-output position
	// g < nl reads the left relation's column g; g >= nl reads r's
	// column rExtra[g-nl]. pg* index the probe side, bg* the build side;
	// rowBuf only ever has its groupCols positions written and read.
	var pgJoin, pgCols, bgJoin, bgCols []int
	for _, g := range groupCols {
		src := g
		if g >= nl {
			src = rExtra[g-nl]
		}
		if (buildIsLeft && g >= nl) || (!buildIsLeft && g < nl) {
			pgJoin = append(pgJoin, g)
			pgCols = append(pgCols, src)
		} else {
			bgJoin = append(bgJoin, g)
			bgCols = append(bgCols, src)
		}
	}
	probeBuf := keyBufFor(probeCols)
	groupBuf := keyBufFor(groupCols)
	rowBuf := make([]int32, outArity)
	single := len(probeCols) == 1
	// pgOnlyKey: the group key is a function of the join-key value and
	// the build row alone, so byte/dict batches can memoize the group
	// slot per code for single-match keys.
	pgOnlyKey := single
	for _, c := range pgCols {
		if c != probeCols[0] {
			pgOnlyKey = false
		}
	}

	// safe caches, per build key group, whether span folding preserves
	// the row path's accumulation order: it does when every matching
	// build row lands in a distinct aggregation group (always true for
	// single-row matches). 0 = unknown, 1 = span-safe, 2 = per-row.
	safe := make([]int8, len(hb.groups))
	spanSafe := func(rows []buildRow, gi int) bool {
		if len(rows) == 1 {
			return true
		}
		if s := safe[gi]; s != 0 {
			return s == 1
		}
		for i := 1; i < len(rows); i++ {
			for j := 0; j < i; j++ {
				same := true
				for _, c := range bgCols {
					if rows[i].vals[c] != rows[j].vals[c] {
						same = false
						break
					}
				}
				if same {
					safe[gi] = 2
					return false
				}
			}
		}
		safe[gi] = 1
		return true
	}
	mul := func(bm, pm float64) float64 {
		if buildIsLeft {
			return e.Sr.Mul(bm, pm)
		}
		return e.Sr.Mul(pm, bm)
	}
	lookup1 := func(val int32) ([]buildRow, int) {
		binary.LittleEndian.PutUint32(probeBuf, uint32(val))
		return hb.lookupIdx(probeBuf, 4)
	}

	var pgfBuf, kfBuf [][]int32
	var memoRows [256][]buildRow
	var memoSet [256]bool
	var slotMemo [256]int32 // group slot + 1 per code, per batch
	it := e.scanCB(ctx, probe.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.addBatches(1)
		n := cb.Len()
		pgfDone := false
		groupFlats := func() [][]int32 { // probe-side group columns, flattened on first match
			if !pgfDone {
				pgfBuf = pgfBuf[:0]
				for _, c := range pgCols {
					pgfBuf = append(pgfBuf, cb.Cols[c].Flat())
				}
				pgfDone = true
			}
			return pgfBuf
		}
		absorbOne := func(rows []buildRow, i int, pf [][]int32, pm float64) {
			for k := range pf {
				rowBuf[pgJoin[k]] = pf[k][i]
			}
			for _, br := range rows {
				for k, c := range bgCols {
					rowBuf[bgJoin[k]] = br.vals[c]
				}
				gn := encodeKey(rowBuf, groupCols, groupBuf)
				agg.absorb(e, groupBuf, gn, rowBuf, groupCols, mul(br.measure, pm))
			}
		}
		if single {
			v := &cb.Cols[probeCols[0]]
			switch v.Enc {
			case storage.EncRLE:
				i := 0
				for _, run := range v.Runs {
					rows, gi := lookup1(run.Val)
					if len(rows) == 0 {
						i += run.Len
						continue
					}
					end := i + run.Len
					pf := groupFlats()
					if spanSafe(rows, gi) {
						for s := i; s < end; {
							t := s + 1
						extend:
							for t < end {
								for k := range pf {
									if pf[k][t] != pf[k][s] {
										break extend
									}
								}
								t++
							}
							for k := range pf {
								rowBuf[pgJoin[k]] = pf[k][s]
							}
							for _, br := range rows {
								for k, c := range bgCols {
									rowBuf[bgJoin[k]] = br.vals[c]
								}
								gn := encodeKey(rowBuf, groupCols, groupBuf)
								agg.absorbMulSpan(e, rf, groupBuf, gn, rowBuf, groupCols, br.measure, buildIsLeft, cb.Measures[s:t])
							}
							s = t
						}
					} else {
						for j := i; j < end; j++ {
							absorbOne(rows, j, pf, cb.Measures[j])
						}
					}
					i = end
				}
				continue
			case storage.EncByte, storage.EncDict:
				ncodes := len(v.Dict)
				if v.Enc == storage.EncByte {
					ncodes = 256
				}
				for c := 0; c < ncodes; c++ {
					memoSet[c] = false
					slotMemo[c] = 0
				}
				for i := 0; i < n; i++ {
					code := v.Codes[i]
					if !memoSet[code] {
						val := int32(code)
						if v.Enc == storage.EncDict {
							val = v.Dict[code]
						}
						memoRows[code], _ = lookup1(val)
						memoSet[code] = true
					}
					rows := memoRows[code]
					if len(rows) == 0 {
						continue
					}
					if pgOnlyKey && len(rows) == 1 {
						if sm := slotMemo[code]; sm != 0 {
							agg.meas[sm-1] = e.Sr.Add(agg.meas[sm-1], mul(rows[0].measure, cb.Measures[i]))
							continue
						}
						pf := groupFlats()
						for k := range pf {
							rowBuf[pgJoin[k]] = pf[k][i]
						}
						br := rows[0]
						for k, c := range bgCols {
							rowBuf[bgJoin[k]] = br.vals[c]
						}
						gn := encodeKey(rowBuf, groupCols, groupBuf)
						slotMemo[code] = int32(agg.absorbAt(e, groupBuf, gn, rowBuf, groupCols, mul(br.measure, cb.Measures[i]))) + 1
						continue
					}
					absorbOne(rows, i, groupFlats(), cb.Measures[i])
				}
				continue
			}
		}
		// Multi-column or plain-encoded keys: encode the probe key from
		// the flattened key columns; probe rows are never fully gathered.
		kfBuf = kfBuf[:0]
		for _, c := range probeCols {
			kfBuf = append(kfBuf, cb.Cols[c].Flat())
		}
		for i := 0; i < n; i++ {
			for k := range kfBuf {
				binary.LittleEndian.PutUint32(probeBuf[4*k:], uint32(kfBuf[k][i]))
			}
			rows, _ := hb.lookupIdx(probeBuf, 4*len(probeCols))
			if len(rows) == 0 {
				continue
			}
			absorbOne(rows, i, groupFlats(), cb.Measures[i])
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	out, err := e.newOutTemp(ctx, "γ⋈("+l.Name+","+r.Name+")", aggAttrs)
	if err != nil {
		return nil, err
	}
	if err := agg.emit(ctx, out, false, st); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}
