package exec

// Morsel-driven parallelism. One scheduler per query run owns a fixed
// worker pool (Engine.Parallelism goroutines, counting the caller);
// operators hand it morsels — page-to-partition-sized closures — instead
// of spawning their own pools. The Grace join's partition passes and
// pair joins, the partitioned hash group-by, and external-sort run
// generation all feed the same queue, so `Parallelism × BatchSize ×
// ReadAhead` compose as one pipeline: a worker finishing a join morsel
// can immediately pick up a sort-run morsel of the same query.
//
// Two submission shapes cover every operator:
//
//   - parallelFor: a fixed index range (partition pairs, group-by
//     partitions), submitted at once and waited on.
//   - group: an open stream (sort runs discovered while scanning), with
//     submit backpressure bounding queued-but-unstarted morsels so a
//     producer cannot buffer its whole input in memory.
//
// The caller participates: while waiting it runs its own set's pending
// morsels, which makes the scheduler deadlock-free at any worker count
// (and with zero background workers degrades to serial execution).
//
// The scheduler also fixes trace attribution: each morsel's runtime is
// accumulated against the operator kind that submitted it (not the
// operator whose stack happens to block in wait), and the per-kind
// totals surface as RunStats.Morsels / EXPLAIN ANALYZE's morsel lines.

import (
	"sort"
	"sync"
	"time"
)

// MorselStat aggregates one operator kind's morsel-scheduler activity
// over a query run: how many morsels ran under that kind and their total
// busy time summed across workers (wall time × effective parallelism).
type MorselStat struct {
	// Kind is the submitting operator kind, e.g. "ProductJoin".
	Kind string `json:"kind"`
	// Count is the number of morsels executed.
	Count int64 `json:"count"`
	// Busy is total worker-occupied time across all morsels of the kind;
	// it exceeds the operator's wall time when morsels ran concurrently.
	Busy time.Duration `json:"busy_ns"`
}

// morselTask is one unit of scheduled work.
type morselTask func() error

// morselSet is one operator's submission: a queue of tasks drained by
// the workers plus the caller. After the first error the pending tasks
// are dropped (in-flight ones finish) and the error is reported by wait.
type morselSet struct {
	kind     string
	tasks    []morselTask
	inflight int
	open     bool // group still submitting; wait requires open == false
	limit    int  // group backpressure: max queued+inflight (0 = none)
	err      error
}

// finished reports whether the set has no more work and no task running.
// Errors clear the pending queue, so a failed set also finishes.
func (s *morselSet) finished() bool {
	return !s.open && len(s.tasks) == 0 && s.inflight == 0
}

// morselSched is a query run's shared work queue and worker pool.
type morselSched struct {
	mu      sync.Mutex
	cond    sync.Cond
	sets    []*morselSet
	workers int // total workers including the participating caller
	started bool
	closed  bool
	busy    map[string]*MorselStat
}

// newMorselSched returns a scheduler for the given total worker count
// (the caller included); background goroutines start lazily on first
// submission and exit on close.
func newMorselSched(workers int) *morselSched {
	m := &morselSched{workers: workers, busy: make(map[string]*MorselStat)}
	m.cond.L = &m.mu
	return m
}

// ensureWorkersLocked lazily starts the workers-1 background goroutines.
func (m *morselSched) ensureWorkersLocked() {
	if m.started {
		return
	}
	m.started = true
	for i := 0; i < m.workers-1; i++ {
		go m.workerLoop()
	}
}

func (m *morselSched) workerLoop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return
		}
		s := m.pickLocked()
		if s == nil {
			m.cond.Wait()
			continue
		}
		m.runOneLocked(s)
	}
}

// pickLocked returns the first set with runnable work, FIFO across sets
// so earlier operators drain first.
func (m *morselSched) pickLocked() *morselSet {
	for _, s := range m.sets {
		if len(s.tasks) > 0 && s.err == nil {
			return s
		}
	}
	return nil
}

// runOneLocked pops and executes one task of s, dropping the pool lock
// for the duration of the task, and accumulates its runtime against the
// set's kind. Called with m.mu held; returns with m.mu held.
func (m *morselSched) runOneLocked(s *morselSet) {
	t := s.tasks[0]
	s.tasks = s.tasks[1:]
	s.inflight++
	m.mu.Unlock()
	t0 := time.Now()
	err := t()
	d := time.Since(t0)
	m.mu.Lock()
	ms := m.busy[s.kind]
	if ms == nil {
		ms = &MorselStat{Kind: s.kind}
		m.busy[s.kind] = ms
	}
	ms.Count++
	ms.Busy += d
	s.inflight--
	if err != nil && s.err == nil {
		s.err = err
		s.tasks = nil // drop pending work; in-flight tasks finish
	}
	m.cond.Broadcast()
}

// waitLocked blocks until s finishes, running s's own pending tasks on
// the calling goroutine while it waits (caller participation). Called
// with m.mu held; returns with m.mu held.
func (m *morselSched) waitLocked(s *morselSet) error {
	for {
		if len(s.tasks) > 0 && s.err == nil {
			m.runOneLocked(s)
			continue
		}
		if s.finished() {
			m.removeLocked(s)
			return s.err
		}
		m.cond.Wait()
	}
}

func (m *morselSched) removeLocked(s *morselSet) {
	for i, x := range m.sets {
		if x == s {
			m.sets = append(m.sets[:i], m.sets[i+1:]...)
			return
		}
	}
}

// parallelFor runs task(0..n-1) as one morsel set under kind and waits
// for completion, the caller working alongside the pool. The first task
// error cancels the remaining queue and is returned after in-flight
// tasks finish.
func (m *morselSched) parallelFor(kind string, n int, task func(i int) error) error {
	if n == 0 {
		return nil
	}
	s := &morselSet{kind: kind, tasks: make([]morselTask, n)}
	for i := 0; i < n; i++ {
		i := i
		s.tasks[i] = func() error { return task(i) }
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sets = append(m.sets, s)
	m.ensureWorkersLocked()
	m.cond.Broadcast()
	return m.waitLocked(s)
}

// morselGroup is an open morsel stream: a producer submits tasks as it
// discovers them and waits once done submitting.
type morselGroup struct {
	m *morselSched
	s *morselSet
}

// newGroup opens a morsel group under kind. The group bounds its queue
// to the worker count plus one: submit blocks (running queued tasks
// itself) past that, so a fast producer cannot buffer unbounded work.
func (m *morselSched) newGroup(kind string) *morselGroup {
	s := &morselSet{kind: kind, open: true, limit: m.workers + 1}
	m.mu.Lock()
	m.sets = append(m.sets, s)
	m.ensureWorkersLocked()
	m.mu.Unlock()
	return &morselGroup{m: m, s: s}
}

// submit queues one task, applying backpressure: when the group is at
// its limit the producer runs pending tasks itself or waits for a slot.
// After a task error submit drops new work and returns the error, so
// producers can stop early.
func (g *morselGroup) submit(t morselTask) error {
	m, s := g.m, g.s
	m.mu.Lock()
	defer m.mu.Unlock()
	for s.err == nil && len(s.tasks)+s.inflight >= s.limit {
		if len(s.tasks) > 0 {
			m.runOneLocked(s)
			continue
		}
		m.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	s.tasks = append(s.tasks, t)
	m.cond.Broadcast()
	return nil
}

// wait closes the group to new submissions and blocks until every
// submitted task finished, returning the first task error.
func (g *morselGroup) wait() error {
	g.m.mu.Lock()
	defer g.m.mu.Unlock()
	g.s.open = false
	g.m.cond.Broadcast()
	return g.m.waitLocked(g.s)
}

// close shuts the scheduler down; background workers exit once idle.
// Outstanding sets must have been waited on first.
func (m *morselSched) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// snapshot returns the per-kind morsel totals sorted by kind.
func (m *morselSched) snapshot() []MorselStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.busy) == 0 {
		return nil
	}
	out := make([]MorselStat, 0, len(m.busy))
	for _, ms := range m.busy {
		out = append(out, *ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// parallelFor schedules task(0..n-1) on the run's morsel scheduler under
// the given operator kind, or runs them serially in order when the run
// has no scheduler (Parallelism <= 1, or an engine entry point that
// bypasses RunContext).
func (st *RunStats) parallelFor(kind string, n int, task func(i int) error) error {
	if st == nil || st.sched == nil {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	return st.sched.parallelFor(kind, n, task)
}
