package exec

import (
	"sync"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

// ResultCache is the engine's shared, invalidation-aware subplan result
// cache (the paper's §6 reuse insight pushed down to the storage layer):
// keys are canonical plan-subtree fingerprints (plan.Fingerprints) and
// values are materialized temp heaps tracked by the buffer pool. Queries
// probe it top-down during execution, so a hit at a high node reuses the
// largest cached subtree; on a miss along a cacheable cut (GroupBy
// outputs of product joins — VE intermediates), the executor registers
// the materialization it was producing anyway.
//
// Correctness relies on fingerprints embedding base-table versions: a
// write bumps the versions (see core), so stale entries simply stop
// matching and are reclaimed by eviction — plus InvalidateTable frees
// them eagerly. Entries are pinned while a query scans them; eviction
// and invalidation never free a pinned heap (a dying pinned entry is
// freed by its last release). The cache is safe for concurrent use.
//
// Row-order contract: a spliced hit replays the cached materialization
// in its stored order, which can differ from the order a fresh execution
// would produce — plan.Fingerprints canonicalizes commutative join
// children, so the entry may have been produced by a differently-shaped
// (equivalent) subtree. MPF relations are semantically sets of
// (assignment, measure) pairs, and the engine guarantees only set
// equality between cached and uncached answers; callers needing a
// deterministic order must sort (relation.Relation.Sort gives the
// canonical row order). This is the documented half of sort-or-document:
// sorting every splice would cost O(n log n) per hit to defend an
// ordering no MPF consumer relies on.
type ResultCache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64 // bytes of live (reachable) entries
	tick    int64 // logical clock for recency scoring
	pins    int64 // outstanding pins, dead entries included (leak detector)
	entries map[string]*rcEntry

	hits          int64
	misses        int64
	inserts       int64
	evictions     int64
	invalidations int64
	ioSaved       int64 // pages of rebuild IO avoided by hits
}

// rcEntry is one cached materialization. The heap is owned by the cache
// from Register until free; pins count queries currently scanning it.
type rcEntry struct {
	key       string
	name      string
	attrs     []relation.Attr
	heap      *storage.Heap
	bytes     int64
	rebuildIO int64 // page IOs the producing subtree cost; eviction and savings both use it
	deps      []string
	lastUse   int64
	pins      int
	dead      bool // evicted/invalidated while pinned; freed on last release
}

// NewResultCache returns a cache bounded by budgetBytes of materialized
// heap pages. A non-positive budget yields a cache that admits nothing
// (probes still work and count misses).
func NewResultCache(budgetBytes int64) *ResultCache {
	return &ResultCache{budget: budgetBytes, entries: make(map[string]*rcEntry)}
}

// Lookup probes the cache and, on a hit, returns a read-only Table view
// of the cached materialization with the entry pinned. The caller must
// Drop the returned table when done scanning (operators do this for
// every input), which releases the pin. A miss returns ok=false without
// counting anything — the executor counts misses only at registrable
// nodes, via Miss.
func (c *ResultCache) Lookup(key string) (*Table, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.tick++
	e.lastUse = c.tick
	e.pins++
	c.pins++
	c.hits++
	c.ioSaved += e.rebuildIO
	return &Table{
		Name:   e.name,
		Attrs:  e.attrs,
		Heap:   e.heap,
		onDrop: func() { c.release(e) },
	}, true
}

// Miss records a probe failure at a cacheable node.
func (c *ResultCache) Miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// release drops one pin; the last release of a dead entry frees its heap.
func (c *ResultCache) release(e *rcEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.pins--
	c.pins--
	if e.pins == 0 && e.dead {
		e.dead = false
		e.heap.Drop()
	}
}

// Register adopts a just-materialized temporary table as a cache entry
// under key, taking ownership of its heap. On success the table is
// converted in place to a cache-owned view — temp is cleared so the
// consuming operator's Drop releases a pin instead of freeing the heap,
// and the heap's context is detached from the producing query so later
// queries can scan it. deps lists the base tables the subtree read
// (InvalidateTable frees entries by dep); rebuildIO is the page IO the
// subtree cost, feeding both the eviction score and the IO-saved
// counter. Returns false — leaving the table an ordinary query-private
// temp — when the key is already present, the entry exceeds the budget,
// or eviction cannot free enough unpinned bytes.
func (c *ResultCache) Register(key string, t *Table, deps []string, rebuildIO int64) bool {
	sz := t.Heap.Bytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return false
	}
	if sz > c.budget || !c.evictFor(sz) {
		return false
	}
	c.tick++
	e := &rcEntry{
		key:       key,
		name:      t.Name,
		attrs:     t.Attrs,
		heap:      t.Heap,
		bytes:     sz,
		rebuildIO: rebuildIO,
		deps:      deps,
		lastUse:   c.tick,
		pins:      1, // the producing query still scans it
	}
	c.pins++
	c.entries[key] = e
	c.bytes += sz
	c.inserts++
	t.temp = false
	t.onDrop = func() { c.release(e) }
	t.Heap.SetContext(nil)
	return true
}

// evictFor frees unpinned entries until sz more bytes fit in the budget,
// choosing victims by highest bytes × recency-age ÷ rebuild-IO — large,
// cold, cheap-to-rebuild entries go first. Caller holds c.mu. Reports
// whether enough space was freed.
func (c *ResultCache) evictFor(sz int64) bool {
	for c.bytes+sz > c.budget {
		var victim *rcEntry
		var worst float64
		for _, e := range c.entries {
			if e.pins > 0 {
				continue
			}
			age := float64(c.tick-e.lastUse) + 1
			io := float64(e.rebuildIO)
			if io < 1 {
				io = 1
			}
			score := float64(e.bytes) * age / io
			if victim == nil || score > worst {
				victim, worst = e, score
			}
		}
		if victim == nil {
			return false
		}
		c.removeLocked(victim)
		c.evictions++
	}
	return true
}

// removeLocked unlinks an entry and frees its heap unless pinned (a
// pinned entry is marked dead and freed by its last release). Caller
// holds c.mu.
func (c *ResultCache) removeLocked(e *rcEntry) {
	delete(c.entries, e.key)
	c.bytes -= e.bytes
	if e.pins > 0 {
		e.dead = true
		return
	}
	e.heap.Drop()
}

// InvalidateTable eagerly frees every entry whose subtree read the named
// base table. Version-bearing fingerprints already guarantee stale
// entries can never be looked up again; invalidation reclaims their
// bytes immediately instead of waiting for eviction.
func (c *ResultCache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		for _, d := range e.deps {
			if d == table {
				c.removeLocked(e)
				c.invalidations++
				break
			}
		}
	}
}

// Close frees every entry. Pinned entries (queries still in flight) are
// marked dead and freed by their last release.
func (c *ResultCache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		c.removeLocked(e)
	}
}

// CacheSnapshot is a point-in-time copy of a ResultCache's state and
// counters, for metrics reporting and tests.
type CacheSnapshot struct {
	// Entries is the number of live cached materializations.
	Entries int64
	// Pins is the total number of outstanding pins (dead entries
	// included); a quiescent cache must report zero.
	Pins int64
	// Bytes is the resident size of live entries; BudgetBytes the bound.
	Bytes, BudgetBytes int64
	// Hits and Misses count probes at cacheable nodes.
	Hits, Misses int64
	// Inserts counts adopted materializations; Evictions cost-aware
	// removals; Invalidations removals by base-table write.
	Inserts, Evictions, Invalidations int64
	// IOSavedPages sums the rebuild page IO avoided by hits.
	IOSavedPages int64
}

// Snapshot returns the cache's current state and cumulative counters.
func (c *ResultCache) Snapshot() CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheSnapshot{
		Entries:       int64(len(c.entries)),
		Pins:          c.pins,
		Bytes:         c.bytes,
		BudgetBytes:   c.budget,
		Hits:          c.hits,
		Misses:        c.misses,
		Inserts:       c.inserts,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		IOSavedPages:  c.ioSaved,
	}
}
