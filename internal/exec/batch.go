package exec

// Vectorized operator paths. Every hot loop in this file consumes heap
// pages through storage.BatchIterator — one pin and one decode loop per
// page — and produces output through page-sized bulk appends, so the
// per-tuple costs of the legacy paths (an interface call, a buffer-pool
// round-trip, and a map-key allocation per tuple) are amortized across a
// page of tuples. Batch boundaries are also the cancellation check
// points, replacing the legacy paths' 512-tuple pollers: a batch never
// exceeds one page, so a canceled query still stops within a page's
// worth of work. The batch paths emit rows in exactly the order the
// tuple paths do, so results are byte-identical either way.

import (
	"context"
	"encoding/binary"

	"mpf/internal/storage"
)

// batchOn reports whether the vectorized paths are selected; only
// BatchSize == 1 (the explicit tuple-at-a-time baseline) disables them.
func (e *Engine) batchOn() bool { return e.BatchSize != 1 }

// scanB returns a batch iterator over h configured with the engine's
// batch width and read-ahead distance.
func (e *Engine) scanB(ctx context.Context, h *storage.Heap) *storage.BatchIterator {
	it := h.ScanBatchesContext(ctx)
	if e.BatchSize > 1 {
		it.SetBatchSize(e.BatchSize)
	}
	if e.ReadAhead > 0 {
		it.SetReadAhead(e.ReadAhead)
	}
	return it
}

// encodeKey writes the projection of vals onto cols into buf and returns
// the encoded length. Callers index maps with string(buf[:n]) inline —
// the compiler recognizes that form and performs the lookup without
// allocating the string, which is what keeps batch probe and aggregate
// loops allocation-free per tuple.
func encodeKey(vals []int32, cols []int, buf []byte) int {
	for i, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[c]))
	}
	return 4 * len(cols)
}

// keyBufFor returns a zeroed key buffer for a cols-wide key, at least 8
// bytes so narrow keyIndexes can read a full uint64 from it. Buffers
// must not be shared between differently-shaped keys: a keyIndex relies
// on the bytes past the encoded key staying zero.
func keyBufFor(cols []int) []byte {
	n := 4 * len(cols)
	if n < 8 {
		n = 8
	}
	return make([]byte, n)
}

// keyIndex maps encoded keys to dense positions. Keys of at most 8
// bytes — one- and two-column join and group keys, the overwhelmingly
// common case — use an integer-keyed map, which hashes without touching
// memory beyond the key and never allocates on insert; wider keys fall
// back to a string-keyed map that allocates once per distinct key.
type keyIndex struct {
	i64 map[uint64]int // nil when keys are wide
	str map[string]int
}

// newKeyIndex returns an index for keys of width keyBytes.
func newKeyIndex(keyBytes, sizeHint int) *keyIndex {
	if keyBytes <= 8 {
		return &keyIndex{i64: make(map[uint64]int, sizeHint)}
	}
	return &keyIndex{str: make(map[string]int, sizeHint)}
}

// get looks up the key encoded in buf[:n]. Narrow reads decode a full
// uint64 from buf, which is why key buffers are ≥8 bytes and zero past n.
func (k *keyIndex) get(buf []byte, n int) (int, bool) {
	if k.i64 != nil {
		v, ok := k.i64[binary.LittleEndian.Uint64(buf)]
		return v, ok
	}
	v, ok := k.str[string(buf[:n])] // no-alloc map read
	return v, ok
}

// put records the key encoded in buf[:n] at position pos.
func (k *keyIndex) put(buf []byte, n, pos int) {
	if k.i64 != nil {
		k.i64[binary.LittleEndian.Uint64(buf)] = pos
		return
	}
	k.str[string(buf[:n])] = pos // allocates the key string once
}

// batchWriter accumulates output rows and flushes them to a table one
// page-sized batch at a time, replacing per-row Append (a pool pin, a
// header rewrite, and for shared outputs a mutex acquisition per row)
// with one AppendRows per page of output. Each flush charges the run's
// TempTuples counter immediately, which is also where the per-query
// temp-tuple budget is enforced for the vectorized paths: an exploding
// join output is stopped within one page of output of crossing its
// bound.
type batchWriter struct {
	t      *Table
	locked bool // flush under t's mutex (shared outputs of parallel producers)
	st     *RunStats
	b      storage.Batch
	limit  int
	rows   int64 // total rows written by this writer
}

// newBatchWriter returns a writer into t charging st; locked selects
// LockedAppend semantics for outputs shared between goroutines.
func newBatchWriter(t *Table, locked bool, st *RunStats) *batchWriter {
	w := &batchWriter{t: t, locked: locked, st: st, limit: storage.TuplesPerPage(len(t.Attrs))}
	w.b.Reset(len(t.Attrs))
	return w
}

// append buffers one row, flushing when a page's worth is buffered.
func (w *batchWriter) append(vals []int32, m float64) error {
	w.b.Append(vals, m)
	if w.b.Len() >= w.limit {
		return w.flush()
	}
	return nil
}

// flush writes the buffered rows out, resets the buffer, charges the
// run's temp-tuple accounting, and enforces the temp-tuple budget.
func (w *batchWriter) flush() error {
	if w.b.Len() == 0 {
		return nil
	}
	var err error
	if w.locked {
		err = w.t.LockedAppendBatch(&w.b)
	} else {
		err = w.t.Heap.AppendBatch(&w.b)
	}
	n := int64(w.b.Len())
	w.rows += n
	w.b.Reset(w.b.Arity)
	w.st.addTempTuples(n)
	if err != nil {
		return err
	}
	return w.st.overTemp()
}

// selectBatch is the vectorized equality-selection scan: filter each
// decoded page in a tight loop, buffering matches for bulk append.
func (e *Engine) selectBatch(ctx context.Context, in *Table, cols []int, want []int32, out *Table, st *RunStats) error {
	it := e.scanB(ctx, in.Heap)
	defer it.Close()
	w := newBatchWriter(out, false, st)
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			match := true
			for j, c := range cols {
				if row[c] != want[j] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			if err := w.append(row, b.Measures[i]); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return w.flush()
}

// hashBuild is the build side of a vectorized hash join. Row values live
// in per-batch arena chunks and the key index maps encoded join keys to
// group positions, so the build pass allocates O(pages + distinct keys)
// instead of O(rows), and probe lookups allocate nothing at all.
type hashBuild struct {
	idx    *keyIndex
	groups [][]buildRow
}

// lookup returns the build rows matching the key encoded in buf[:n].
func (h *hashBuild) lookup(buf []byte, n int) []buildRow {
	gi, ok := h.idx.get(buf, n)
	if !ok {
		return nil
	}
	return h.groups[gi]
}

// lookupIdx is lookup returning the dense key-group index as well, for
// callers that cache per-group facts (the fused columnar kernel's
// span-safety memo). gi is -1 on a miss.
func (h *hashBuild) lookupIdx(buf []byte, n int) ([]buildRow, int) {
	gi, ok := h.idx.get(buf, n)
	if !ok {
		return nil, -1
	}
	return h.groups[gi], gi
}

// buildBatch scans build's heap into a hashBuild keyed on buildCols.
func (e *Engine) buildBatch(ctx context.Context, build *Table, buildCols []int, st *RunStats) (*hashBuild, error) {
	hb := &hashBuild{idx: newKeyIndex(4*len(buildCols), int(build.Heap.NumTuples()))}
	arity := len(build.Attrs)
	keyBuf := keyBufFor(buildCols)
	it := e.scanB(ctx, build.Heap)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.addBatches(1)
		// One arena chunk per batch: rows are sliced out of a single copy
		// of the batch's value array, which stays live as long as any of
		// its rows is referenced from a group.
		chunk := append([]int32(nil), b.Vals...)
		for i := 0; i < b.Len(); i++ {
			row := chunk[i*arity : (i+1)*arity : (i+1)*arity]
			n := encodeKey(row, buildCols, keyBuf)
			gi, seen := hb.idx.get(keyBuf, n)
			if !seen {
				gi = len(hb.groups)
				hb.groups = append(hb.groups, nil)
				hb.idx.put(keyBuf, n, gi)
			}
			hb.groups[gi] = append(hb.groups[gi], buildRow{vals: row, measure: b.Measures[i]})
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return hb, nil
}

// hashJoinIntoBatch is the vectorized in-memory-build hash join: build
// via buildBatch, then probe page batches against it, assembling output
// rows into a page-sized writer. l is the join's left input (the output
// schema's prefix); build/probe are l and r in build order.
func (e *Engine) hashJoinIntoBatch(ctx context.Context, l, build, probe *Table, buildCols, probeCols, rExtra []int, buildIsLeft bool, out *Table, st *RunStats) error {
	hb, err := e.buildBatch(ctx, build, buildCols, st)
	if err != nil {
		return err
	}
	w := newBatchWriter(out, true, st)
	rowBuf := make([]int32, len(out.Attrs))
	keyBuf := keyBufFor(probeCols)
	nl := len(l.Attrs)
	it := e.scanB(ctx, probe.Heap)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			n := encodeKey(row, probeCols, keyBuf)
			for _, br := range hb.lookup(keyBuf, n) {
				var lv, rv []int32
				var lm, rm float64
				if buildIsLeft {
					lv, lm, rv, rm = br.vals, br.measure, row, b.Measures[i]
				} else {
					lv, lm, rv, rm = row, b.Measures[i], br.vals, br.measure
				}
				copy(rowBuf, lv)
				for j, c := range rExtra {
					rowBuf[nl+j] = rv[c]
				}
				if err := w.append(rowBuf, e.Sr.Mul(lm, rm)); err != nil {
					return err
				}
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return w.flush()
}

// batchAgg is a vectorized aggregation state: group keys live row-major
// in one arena (insertion order — the scan order of first appearance,
// matching the tuple path's output order) and the key index maps encoded
// keys to positions, so absorbing a tuple into an existing group
// allocates nothing.
type batchAgg struct {
	idx   *keyIndex
	vals  []int32 // row-major group keys, arity = len(cols)
	meas  []float64
	arity int
}

// newBatchAgg returns an empty aggregation over keys of the given arity.
func newBatchAgg(arity int) *batchAgg {
	return &batchAgg{idx: newKeyIndex(4*arity, 0), arity: arity}
}

// absorb folds one row's measure into its group, creating the group on
// first sight. buf[:n] holds the row's encoded group key; the group's
// values are projected from row only when the group is new, so the
// common absorb-into-existing-group case copies nothing.
func (a *batchAgg) absorb(e *Engine, buf []byte, n int, row []int32, cols []int, m float64) {
	gi, seen := a.idx.get(buf, n)
	if seen {
		a.meas[gi] = e.Sr.Add(a.meas[gi], m)
		return
	}
	gi = len(a.meas)
	for _, c := range cols {
		a.vals = append(a.vals, row[c])
	}
	a.meas = append(a.meas, m)
	a.idx.put(buf, n, gi)
}

// emit appends the groups to out in first-seen order with one bulk
// append; locked selects the shared-output path for parallel callers.
func (a *batchAgg) emit(ctx context.Context, out *Table, locked bool, st *RunStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var err error
	if locked {
		err = out.LockedAppendRows(a.vals, a.meas)
	} else {
		err = out.Heap.AppendRows(a.vals, a.meas)
	}
	if err != nil {
		return err
	}
	st.addTempTuples(int64(len(a.meas)))
	return st.overTemp()
}

// aggregateBatch runs one vectorized hash-aggregation pass over in.
func (e *Engine) aggregateBatch(ctx context.Context, in *Table, cols []int, st *RunStats) (*batchAgg, error) {
	agg := newBatchAgg(len(cols))
	keyBuf := keyBufFor(cols)
	it := e.scanB(ctx, in.Heap)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.addBatches(1)
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			n := encodeKey(row, cols, keyBuf)
			agg.absorb(e, keyBuf, n, row, cols, b.Measures[i])
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return agg, nil
}

// partitionBatch is the vectorized Grace partition pass: route each
// decoded page's rows to per-partition page-sized writers, flushing all
// partitions at the end. Routing order equals scan order, so every
// partition holds exactly the rows, in exactly the order, the tuple
// path produces.
func (e *Engine) partitionBatch(ctx context.Context, t *Table, cols []int, depth int, parts []*Table, st *RunStats) error {
	writers := make([]*batchWriter, len(parts))
	for i, p := range parts {
		writers[i] = newBatchWriter(p, false, st)
	}
	it := e.scanB(ctx, t.Heap)
	defer it.Close()
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		for i := 0; i < b.Len(); i++ {
			row := b.Row(i)
			w := writers[partitionHash(row, cols, depth)]
			if err := w.append(row, b.Measures[i]); err != nil {
				return err
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	for _, w := range writers {
		if err := w.flush(); err != nil {
			return err
		}
	}
	return nil
}
