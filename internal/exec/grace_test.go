package exec

import (
	"math/rand"
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// TestGraceJoinMatchesInMemoryJoin forces the Grace path with a tiny
// build cap and compares against the in-memory join.
func TestGraceJoinMatchesInMemoryJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "x", Domain: 40}, {Name: "y", Domain: 20}}, 0.8,
		relation.UniformMeasure(0.1, 2))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "y", Domain: 20}, {Name: "z", Domain: 40}}, 0.8,
		relation.UniformMeasure(0.1, 2))
	h := newHarness(t, 64, a, b)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	j := pb.Join(sa, sb)

	inMem, _ := h.run(t, j)
	h.engine.HashJoinMaxBuild = 32 // both sides far exceed this
	grace, _ := h.run(t, j)
	if !relation.Equal(inMem, grace, 0, 1e-9) {
		t.Fatal("grace join disagrees with in-memory join")
	}
	// Also against the algebra oracle.
	want, _ := relation.ProductJoin(semiring.SumProduct, a, b)
	if !relation.Equal(grace, want, 0, 1e-9) {
		t.Fatal("grace join disagrees with oracle")
	}
}

// TestGraceJoinHotKeyFallsBack: a single join-key value defeats
// partitioning; the depth limit must fall back to in-memory rather than
// recurse forever.
func TestGraceJoinHotKeyFallsBack(t *testing.T) {
	a := relation.MustNew("a", []relation.Attr{{Name: "x", Domain: 300}, {Name: "y", Domain: 2}})
	b := relation.MustNew("b", []relation.Attr{{Name: "y", Domain: 2}, {Name: "z", Domain: 300}})
	for i := 0; i < 300; i++ {
		a.MustAppend([]int32{int32(i), 0}, 1) // every tuple has y=0
		b.MustAppend([]int32{0, int32(i)}, 1)
	}
	h := newHarness(t, 64, a, b)
	h.engine.HashJoinMaxBuild = 16
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	g, err := pb.GroupBy(pb.Join(sa, sb), []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := h.run(t, g)
	// 300×300 pairs all with y=0, each product 1.
	if got.Len() != 1 || got.Measure(0) != 90000 {
		t.Fatalf("hot-key grace join wrong: %v", got)
	}
}

// TestGraceJoinInFullQuery pushes a whole multi-join query through the
// partitioned path.
func TestGraceJoinInFullQuery(t *testing.T) {
	a, b, c := randomRelations(62)
	h := newHarness(t, 64, a, b, c)
	pb := h.builder()
	sa, _ := pb.Scan("a")
	sb, _ := pb.Scan("b")
	sc, _ := pb.Scan("c")
	g, _ := pb.GroupBy(pb.Join(pb.Join(sa, sb), sc), []string{"W"})
	want, _ := h.run(t, g)
	h.engine.HashJoinMaxBuild = 4
	got, _ := h.run(t, g)
	if !relation.Equal(want, got, 0, 1e-9) {
		t.Fatal("grace path changed a multi-join query result")
	}
}

// TestGraceCrossProductSkipsPartitioning: cross products (no shared
// variables) cannot partition on a key and must stay in-memory.
func TestGraceCrossProductSkipsPartitioning(t *testing.T) {
	x, _ := relation.Complete("x", []relation.Attr{{Name: "a", Domain: 12}},
		func([]int32) float64 { return 2 })
	y, _ := relation.Complete("y", []relation.Attr{{Name: "b", Domain: 12}},
		func([]int32) float64 { return 3 })
	h := newHarness(t, 32, x, y)
	h.engine.HashJoinMaxBuild = 2
	pb := h.builder()
	sx, _ := pb.Scan("x")
	sy, _ := pb.Scan("y")
	got, _ := h.run(t, pb.Join(sx, sy))
	if got.Len() != 144 {
		t.Fatalf("cross product has %d rows, want 144", got.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Measure(i) != 6 {
			t.Fatal("cross product measures wrong")
		}
	}
}
