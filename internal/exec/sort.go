package exec

import (
	"container/heap"
	"context"
	"sort"
	"sync"

	"mpf/internal/relation"
)

const defaultSortRunTuples = 1 << 17

// compareCols lexicographically compares the projections of two rows onto
// cols (cols may index the rows differently via aCols/bCols).
func compareCols(a []int32, aCols []int, b []int32, bCols []int) int {
	for i := range aCols {
		av, bv := a[aCols[i]], b[bCols[i]]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// memRun is an in-memory sorted run.
type memRun struct {
	arity    int
	vals     []int32
	measures []float64
}

func (r *memRun) len() int          { return len(r.measures) }
func (r *memRun) row(i int) []int32 { return r.vals[i*r.arity : (i+1)*r.arity] }
func (r *memRun) sortBy(cols []int) {
	idx := make([]int, r.len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return compareCols(r.row(idx[x]), cols, r.row(idx[y]), cols) < 0
	})
	nv := make([]int32, len(r.vals))
	nm := make([]float64, len(r.measures))
	for to, from := range idx {
		copy(nv[to*r.arity:(to+1)*r.arity], r.row(from))
		nm[to] = r.measures[from]
	}
	r.vals, r.measures = nv, nm
}

// spillRun sorts one in-memory run on cols and writes it to a fresh temp
// heap. Safe to call from several goroutines at once (distinct runs).
func (e *Engine) spillRun(ctx context.Context, run *memRun, cols []int, attrs []relation.Attr, st *RunStats) (*Table, error) {
	run.sortBy(cols)
	rt, err := e.newTemp(ctx, "sortrun", attrs)
	if err != nil {
		return nil, err
	}
	if e.batchOn() {
		// The sorted run is already row-major value and measure arrays —
		// exactly AppendRows' input — so the whole spill is one bulk append.
		if err := ctx.Err(); err != nil {
			rt.Drop()
			return nil, err
		}
		if err := rt.Heap.AppendRows(run.vals, run.measures); err != nil {
			rt.Drop()
			return nil, err
		}
		st.addTempTuples(int64(run.len()))
		return rt, nil
	}
	var tmp int64
	defer func() { st.addTempTuples(tmp) }()
	poll := poller{ctx: ctx, st: st}
	for i := 0; i < run.len(); i++ {
		if err := poll.check(); err != nil {
			rt.Drop()
			return nil, err
		}
		if err := rt.Heap.Append(run.row(i), run.measures[i]); err != nil {
			rt.Drop()
			return nil, err
		}
		tmp++
	}
	return rt, nil
}

// scanRuns streams in's tuples into memRuns of exactly runSize tuples
// (the last run may be short), invoking spill at each boundary. The
// batch path copies whole decoded pages into the run arrays, splitting
// batches at run boundaries so run contents — and therefore the sorted
// output — are identical to the tuple path's.
func (e *Engine) scanRuns(ctx context.Context, in *Table, runSize int, st *RunStats, spill func(*memRun) error) error {
	arity := len(in.Attrs)
	cur := &memRun{arity: arity}
	if e.batchOn() {
		it := e.scanB(ctx, in.Heap)
		defer it.Close()
		for {
			b, ok := it.Next()
			if !ok {
				break
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			st.addBatches(1)
			for off, n := 0, b.Len(); off < n; {
				take := runSize - cur.len()
				if take > n-off {
					take = n - off
				}
				cur.vals = append(cur.vals, b.Vals[off*arity:(off+take)*arity]...)
				cur.measures = append(cur.measures, b.Measures[off:off+take]...)
				off += take
				if cur.len() >= runSize {
					if err := spill(cur); err != nil {
						return err
					}
					cur = &memRun{arity: arity}
				}
			}
		}
		if err := it.Err(); err != nil {
			return err
		}
	} else {
		it := in.Heap.ScanContext(ctx)
		poll := poller{ctx: ctx, st: st}
		for {
			vals, m, ok := it.Next()
			if !ok {
				break
			}
			if err := poll.check(); err != nil {
				it.Close()
				return err
			}
			cur.vals = append(cur.vals, vals...)
			cur.measures = append(cur.measures, m)
			if cur.len() >= runSize {
				if err := spill(cur); err != nil {
					it.Close()
					return err
				}
				cur = &memRun{arity: arity}
			}
		}
		if err := it.Close(); err != nil {
			return err
		}
	}
	if cur.len() > 0 {
		return spill(cur)
	}
	return nil
}

// serialRuns generates sorted runs of at most runSize tuples, one at a
// time on the calling goroutine.
func (e *Engine) serialRuns(ctx context.Context, in *Table, cols []int, runSize int, st *RunStats) ([]*Table, error) {
	var runs []*Table
	err := e.scanRuns(ctx, in, runSize, st, func(run *memRun) error {
		rt, err := e.spillRun(ctx, run, cols, in.Attrs, st)
		if err != nil {
			return err
		}
		runs = append(runs, rt)
		return nil
	})
	if err != nil {
		for _, r := range runs {
			r.Drop()
		}
		return nil, err
	}
	return runs, nil
}

// parallelRuns generates sorted runs with the scan on the calling
// goroutine and sort+spill work submitted as morsels to the run's
// scheduler as chunks are discovered; the group's submission backpressure
// bounds how many unspilled in-memory runs can exist at once. The runs
// slice is indexed by chunk order, so the downstream k-way merge breaks
// ties between runs exactly as it would for serial generation and the
// sorted output is identical.
func (e *Engine) parallelRuns(ctx context.Context, in *Table, cols []int, runSize int, st *RunStats) ([]*Table, error) {
	var (
		mu   sync.Mutex
		runs []*Table
	)
	g := st.sched.newGroup("SortRun")
	scanErr := e.scanRuns(ctx, in, runSize, st, func(run *memRun) error {
		mu.Lock()
		idx := len(runs)
		runs = append(runs, nil)
		mu.Unlock()
		return g.submit(func() error {
			rt, err := e.spillRun(ctx, run, cols, in.Attrs, st)
			if err != nil {
				return err
			}
			mu.Lock()
			runs[idx] = rt
			mu.Unlock()
			return nil
		})
	})
	err := g.wait()
	if err == nil {
		err = scanErr
	}
	if err != nil {
		for _, r := range runs {
			if r != nil {
				r.Drop()
			}
		}
		return nil, err
	}
	return runs, nil
}

// externalSort sorts the input table by cols, producing a temporary table.
// Runs of at most SortRunTuples tuples are sorted in memory and spilled to
// temp heaps (concurrently when Engine.Parallelism > 1), then merged with
// a k-way merge.
func (e *Engine) externalSort(ctx context.Context, in *Table, cols []int, st *RunStats) (*Table, error) {
	runSize := e.SortRunTuples
	if runSize <= 0 {
		runSize = defaultSortRunTuples
	}

	var runs []*Table
	var err error
	parallel := st != nil && st.sched != nil && in.Heap.NumTuples() > int64(runSize)
	colDone := false
	if e.colOn() {
		// Encoded run generation (colsort.go); ok = false reports a
		// non-order-preserving, non-mappable encoding and falls through
		// to the row path below.
		runs, colDone, err = e.colRuns(ctx, in, cols, runSize, parallel, st)
		if err != nil {
			return nil, err
		}
	}
	if !colDone {
		if parallel {
			runs, err = e.parallelRuns(ctx, in, cols, runSize, st)
		} else {
			runs, err = e.serialRuns(ctx, in, cols, runSize, st)
		}
	}
	if err != nil {
		return nil, err
	}

	if len(runs) == 0 {
		// Empty input: empty output table.
		return e.newTemp(ctx, "sorted("+in.Name+")", in.Attrs)
	}

	// Multi-pass merge with fan-in bounded by the buffer pool: each open
	// cursor pins one page, so the pass width must leave frames for the
	// output and for slack.
	fanIn := e.Pool.Size() - 4
	if fanIn < 2 {
		fanIn = 2
	}
	for len(runs) > 1 {
		var next []*Table
		var mergeErr error
		for i := 0; i < len(runs) && mergeErr == nil; i += fanIn {
			j := i + fanIn
			if j > len(runs) {
				j = len(runs)
			}
			if j-i == 1 {
				next = append(next, runs[i])
				runs[i] = nil
				continue
			}
			var merged *Table
			merged, mergeErr = e.mergeRuns(ctx, runs[i:j], cols, in.Attrs, st)
			if mergeErr != nil {
				break
			}
			for k := i; k < j; k++ {
				runs[k].Drop()
				runs[k] = nil
			}
			next = append(next, merged)
		}
		if mergeErr != nil {
			for _, r := range runs {
				if r != nil {
					r.Drop()
				}
			}
			for _, r := range next {
				r.Drop()
			}
			return nil, mergeErr
		}
		runs = next
	}
	runs[0].Name = "sorted(" + in.Name + ")"
	return runs[0], nil
}

// mergeCursor is one run's head during a k-way merge.
type mergeCursor struct {
	it      *rowIter
	vals    []int32
	measure float64
}

// mergeHeap orders cursors by their head row on cols.
type mergeHeap struct {
	cursors []*mergeCursor
	cols    []int
}

func (h *mergeHeap) Len() int { return len(h.cursors) }
func (h *mergeHeap) Less(i, j int) bool {
	return compareCols(h.cursors[i].vals, h.cols, h.cursors[j].vals, h.cols) < 0
}
func (h *mergeHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }
func (h *mergeHeap) Push(x any)    { h.cursors = append(h.cursors, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := h.cursors
	n := len(old)
	c := old[n-1]
	h.cursors = old[:n-1]
	return c
}

func (e *Engine) mergeRuns(ctx context.Context, runs []*Table, cols []int, attrs []relation.Attr, st *RunStats) (*Table, error) {
	out, err := e.newTemp(ctx, "merge", attrs)
	if err != nil {
		return nil, err
	}
	mh := &mergeHeap{cols: cols}
	var iters []*rowIter
	defer func() {
		for _, it := range iters {
			it.Close()
		}
	}()
	for _, r := range runs {
		it := newRowIter(ctx, r)
		iters = append(iters, it)
		vals, m, ok, err := it.Next()
		if err != nil {
			out.Drop()
			return nil, err
		}
		if ok {
			mh.cursors = append(mh.cursors, &mergeCursor{it: it, vals: vals, measure: m})
		}
	}
	heap.Init(mh)
	poll := poller{ctx: ctx, st: st}
	for mh.Len() > 0 {
		c := mh.cursors[0]
		if err := poll.check(); err != nil {
			out.Drop()
			return nil, err
		}
		if err := out.Heap.Append(c.vals, c.measure); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
		vals, m, ok, err := c.it.Next()
		if err != nil {
			out.Drop()
			return nil, err
		}
		if ok {
			c.vals, c.measure = vals, m
			heap.Fix(mh, 0)
		} else {
			heap.Pop(mh)
		}
	}
	return out, nil
}

// rowIter wraps a heap iterator, copying rows so callers may retain them.
type rowIter struct {
	it interface {
		Next() ([]int32, float64, bool)
		Err() error
		Close() error
	}
}

func newRowIter(ctx context.Context, t *Table) *rowIter {
	return &rowIter{it: t.Heap.ScanContext(ctx)}
}

func (r *rowIter) Next() ([]int32, float64, bool, error) {
	vals, m, ok := r.it.Next()
	if !ok {
		return nil, 0, false, r.it.Err()
	}
	return append([]int32(nil), vals...), m, true, nil
}

func (r *rowIter) Close() error { return r.it.Close() }

// sortGroupBy implements marginalization by external sort on the group
// columns followed by a streaming aggregation pass.
func (e *Engine) sortGroupBy(ctx context.Context, in *Table, groupVars []string, st *RunStats) (*Table, error) {
	cols, outAttrs, err := groupSchema(in, groupVars)
	if err != nil {
		return nil, err
	}
	sorted, err := e.externalSort(ctx, in, cols, st)
	if err != nil {
		return nil, err
	}
	defer sorted.Drop()

	out, err := e.newOutTemp(ctx, "γ("+in.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	if e.colOn() {
		if err := e.colSortedAgg(ctx, sorted, cols, out, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	it := newRowIter(ctx, sorted)
	defer it.Close()

	var curKey []int32
	var acc float64
	have := false
	emit := func() error {
		if !have {
			return nil
		}
		st.TempTuples++
		return out.Heap.Append(curKey, acc)
	}
	for {
		vals, m, ok, err := it.Next()
		if err != nil {
			out.Drop()
			return nil, err
		}
		if !ok {
			break
		}
		keyVals := make([]int32, len(cols))
		for i, c := range cols {
			keyVals[i] = vals[c]
		}
		if have && equalRows(curKey, keyVals) {
			acc = e.Sr.Add(acc, m)
			continue
		}
		if err := emit(); err != nil {
			out.Drop()
			return nil, err
		}
		curKey, acc, have = keyVals, m, true
	}
	if err := emit(); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

func equalRows(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortMergeJoin implements the product join by sorting both inputs on the
// shared variables and merging, emitting the cross product of each pair of
// matching key groups. Inputs without shared variables fall back to the
// hash join (which degenerates to a nested cross product).
func (e *Engine) sortMergeJoin(ctx context.Context, l, r *Table, st *RunStats) (*Table, error) {
	lCols, rCols, rExtra, outAttrs, err := joinSchema(l, r)
	if err != nil {
		return nil, err
	}
	if len(lCols) == 0 {
		return e.hashJoin(ctx, l, r, st)
	}
	ls, err := e.externalSort(ctx, l, lCols, st)
	if err != nil {
		return nil, err
	}
	defer ls.Drop()
	rs, err := e.externalSort(ctx, r, rCols, st)
	if err != nil {
		return nil, err
	}
	defer rs.Drop()

	out, err := e.newOutTemp(ctx, "("+l.Name+"⋈*"+r.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	lit, rit := newRowIter(ctx, ls), newRowIter(ctx, rs)
	defer lit.Close()
	defer rit.Close()

	type row struct {
		vals []int32
		m    float64
	}
	lv, lm, lok, err := lit.Next()
	if err != nil {
		out.Drop()
		return nil, err
	}
	rv, rm, rok, err := rit.Next()
	if err != nil {
		out.Drop()
		return nil, err
	}
	rowBuf := make([]int32, len(outAttrs))
	poll := poller{ctx: ctx, st: st}
	for lok && rok {
		if err := poll.check(); err != nil {
			out.Drop()
			return nil, err
		}
		c := compareCols(lv, lCols, rv, rCols)
		if c < 0 {
			lv, lm, lok, err = lit.Next()
		} else if c > 0 {
			rv, rm, rok, err = rit.Next()
		} else {
			// Gather the full groups with this key from both sides.
			var lg, rg []row
			keyRow := lv
			for lok && compareCols(lv, lCols, keyRow, lCols) == 0 {
				lg = append(lg, row{lv, lm})
				lv, lm, lok, err = lit.Next()
				if err != nil {
					out.Drop()
					return nil, err
				}
			}
			for rok && compareCols(rv, rCols, keyRow, lCols) == 0 {
				rg = append(rg, row{rv, rm})
				rv, rm, rok, err = rit.Next()
				if err != nil {
					out.Drop()
					return nil, err
				}
			}
			for _, a := range lg {
				for _, b := range rg {
					copy(rowBuf, a.vals)
					for i, cc := range rExtra {
						rowBuf[len(l.Attrs)+i] = b.vals[cc]
					}
					if err := out.Heap.Append(rowBuf, e.Sr.Mul(a.m, b.m)); err != nil {
						out.Drop()
						return nil, err
					}
					st.TempTuples++
				}
			}
			continue
		}
		if err != nil {
			out.Drop()
			return nil, err
		}
	}
	return out, nil
}
