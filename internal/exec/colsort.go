package exec

// Columnar sort-run generation. The row path (sort.go) gathers every
// tuple into a row-major run and compares rows through a stride-indexed
// closure; this path builds the same row-major run arrays for spilling
// but extracts one CONTIGUOUS key array per sort column straight from
// the page encodings — byte codes widen directly (the code IS the
// value), dictionary codes map through the per-page dictionary (the
// order mapping, built once per page because EncDict is not
// order-preserving; see storage.OrderPreserving), and RLE runs expand
// run-wise. RLE runs of the leading sort column are additionally kept as
// pre-sorted block descriptors: when a single-column sort's run is fully
// covered by them, sorting degenerates to a stable sort of the O(runs)
// blocks plus contiguous memmoves instead of an O(n log n) row
// comparison sort. Stable sorts are uniquely determined by keys and
// input order, so every path — block sort, key-array sort, row sort —
// yields the identical permutation, and the spilled runs (and therefore
// the merged output) stay byte-identical to the row path's.
//
// Unknown (non-order-preserving, non-mappable) encodings abort run
// generation with errColSortFallback and the caller reruns the row
// path; with format v1 every encoding is sortable, so the fallback
// guards future encodings.

import (
	"context"
	"errors"
	"sort"
	"sync"

	"mpf/internal/relation"
	"mpf/internal/storage"
)

// errColSortFallback reports a sort-column segment whose encoding cannot
// be compared in encoded form; externalSort falls back to row-path run
// generation.
var errColSortFallback = errors.New("exec: segment encoding is not sortable")

// colBlock is one pre-sorted block of a columnar sort run: rows
// [start, start+n) all carry leading-sort-key value val.
type colBlock struct {
	start, n int
	val      int32
}

// colMemRun is an in-memory sort run built from encoded batches: the row
// path's row-major vals/measures (for spilling) plus one contiguous key
// array per sort column and, when every contributing page encoded the
// leading sort column as RLE, block descriptors covering the whole run.
type colMemRun struct {
	memRun
	keys     [][]int32  // decoded sort keys, one contiguous slice per sort column
	blocks   []colBlock // leading-column RLE blocks, adjacent equal values merged
	blocksOK bool       // blocks cover every row (leading column RLE in all batches)
}

// sorted reports whether the run's keys are already in non-decreasing
// lexicographic order. A stable sort of sorted input is the identity
// permutation, so a sorted run skips sorting AND permuting — the common
// case when the leading sort key is the table's clustering key.
func (r *colMemRun) sorted() bool {
	n := r.len()
	keys := r.keys
	for i := 1; i < n; i++ {
		for _, k := range keys {
			if a, b := k[i-1], k[i]; a != b {
				if a > b {
					return false
				}
				break
			}
		}
	}
	return true
}

// sortBy sorts the run on its extracted keys. Already-sorted runs are
// returned untouched (identity permutation). A single-column run fully
// covered by RLE blocks stable-sorts the block descriptors and moves
// whole blocks; otherwise a stable index sort compares the contiguous
// key arrays. All orders equal the row path's stable row sort exactly.
func (r *colMemRun) sortBy() {
	if r.sorted() {
		return
	}
	n := r.len()
	nv := make([]int32, len(r.vals))
	nm := make([]float64, n)
	if len(r.keys) == 1 && r.blocksOK {
		sort.SliceStable(r.blocks, func(i, j int) bool { return r.blocks[i].val < r.blocks[j].val })
		to := 0
		for _, b := range r.blocks {
			copy(nv[to*r.arity:], r.vals[b.start*r.arity:(b.start+b.n)*r.arity])
			copy(nm[to:], r.measures[b.start:b.start+b.n])
			to += b.n
		}
		r.vals, r.measures = nv, nm
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	keys := r.keys
	sort.SliceStable(idx, func(x, y int) bool {
		ix, iy := idx[x], idx[y]
		for _, k := range keys {
			if a, b := k[ix], k[iy]; a != b {
				return a < b
			}
		}
		return false
	})
	for to, from := range idx {
		copy(nv[to*r.arity:(to+1)*r.arity], r.row(from))
		nm[to] = r.measures[from]
	}
	r.vals, r.measures = nv, nm
}

// spillColRun sorts one columnar run and bulk-spills it to a fresh temp
// heap. Safe to call concurrently for distinct runs.
func (e *Engine) spillColRun(ctx context.Context, run *colMemRun, attrs []relation.Attr, st *RunStats) (*Table, error) {
	run.sortBy()
	rt, err := e.newTemp(ctx, "sortrun", attrs)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		rt.Drop()
		return nil, err
	}
	if err := rt.Heap.AppendRows(run.vals, run.measures); err != nil {
		rt.Drop()
		return nil, err
	}
	st.addTempTuples(int64(run.len()))
	return rt, nil
}

// appendColKeys extracts one batch's decoded sort keys for column view v
// into dst, encoding-aware: plain copies, byte widens codes (code ==
// value), dict maps codes through the per-page dictionary, RLE expands
// runs. Unknown encodings return errColSortFallback.
func appendColKeys(dst []int32, v *storage.ColView) ([]int32, error) {
	switch v.Enc {
	case storage.EncPlain:
		return append(dst, v.Plain...), nil
	case storage.EncByte:
		for _, c := range v.Codes {
			dst = append(dst, int32(c))
		}
		return dst, nil
	case storage.EncDict:
		for _, c := range v.Codes {
			dst = append(dst, v.Dict[c])
		}
		return dst, nil
	case storage.EncRLE:
		for _, r := range v.Runs {
			for j := 0; j < r.Len; j++ {
				dst = append(dst, r.Val)
			}
		}
		return dst, nil
	default:
		return dst, errColSortFallback
	}
}

// scanColRuns streams in's tuples from encoded batches into colMemRuns of
// exactly runSize tuples (the last may be short), invoking spill at each
// boundary. Batches split at run boundaries exactly like the row path's
// scanRuns, so run contents — and the sorted output — are identical.
func (e *Engine) scanColRuns(ctx context.Context, in *Table, cols []int, runSize int, st *RunStats, spill func(*colMemRun) error) error {
	arity := len(in.Attrs)
	newRun := func() *colMemRun {
		r := &colMemRun{memRun: memRun{arity: arity, vals: make([]int32, 0, runSize*arity),
			measures: make([]float64, 0, runSize)}, keys: make([][]int32, len(cols)), blocksOK: true}
		for ki := range r.keys {
			r.keys[ki] = make([]int32, 0, runSize)
		}
		return r
	}
	cur := newRun()
	var fbuf [][]int32
	skeys := make([][]int32, len(cols)) // per-batch scratch key arrays
	var sblocks []colBlock              // per-batch leading-column RLE blocks
	it := e.scanCB(ctx, in.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		for ki, c := range cols {
			var err error
			skeys[ki], err = appendColKeys(skeys[ki][:0], &cb.Cols[c])
			if err != nil {
				return err
			}
		}
		lead := &cb.Cols[cols[0]]
		leadRLE := lead.Enc == storage.EncRLE
		if leadRLE {
			sblocks = sblocks[:0]
			i := 0
			for _, r := range lead.Runs {
				sblocks = append(sblocks, colBlock{start: i, n: r.Len, val: r.Val})
				i += r.Len
			}
		}
		fs := flatCols(cb, fbuf)
		fbuf = fs
		for off, n := 0, cb.Len(); off < n; {
			take := runSize - cur.len()
			if take > n-off {
				take = n - off
			}
			base := cur.len()
			// Transpose column flats into the run's row-major spill image
			// with one indexed pass per column: contiguous reads, strided
			// writes, no per-value append bookkeeping.
			cur.vals = cur.vals[:(base+take)*arity]
			dst := cur.vals[base*arity:]
			for ci, f := range fs {
				j := ci
				for r := off; r < off+take; r++ {
					dst[j] = f[r]
					j += arity
				}
			}
			cur.measures = append(cur.measures, cb.Measures[off:off+take]...)
			for ki := range cols {
				cur.keys[ki] = append(cur.keys[ki], skeys[ki][off:off+take]...)
			}
			if leadRLE {
				for _, b := range sblocks {
					lo, hi := b.start, b.start+b.n
					if lo < off {
						lo = off
					}
					if hi > off+take {
						hi = off + take
					}
					if hi <= lo {
						continue
					}
					start := base + lo - off
					if nb := len(cur.blocks); nb > 0 && cur.blocks[nb-1].val == b.val &&
						cur.blocks[nb-1].start+cur.blocks[nb-1].n == start {
						cur.blocks[nb-1].n += hi - lo
					} else {
						cur.blocks = append(cur.blocks, colBlock{start: start, n: hi - lo, val: b.val})
					}
				}
			} else {
				cur.blocksOK = false
			}
			off += take
			if cur.len() >= runSize {
				if err := spill(cur); err != nil {
					return err
				}
				cur = newRun()
			}
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if cur.len() > 0 {
		return spill(cur)
	}
	return nil
}

// colSortedAgg is the encoded streaming-aggregation pass over an
// already-sorted table: groups are contiguous, so boundaries come from
// comparing the flattened key columns (no per-row gather or allocation)
// and each group's measures fold span-wise through the semiring's
// RunFolder — collapsing a span in O(1) only when the collapse is
// provably bit-identical to the row path's per-row left fold. Emission
// order and every accumulator's Add sequence equal the row loop's, so
// the output is byte-identical.
func (e *Engine) colSortedAgg(ctx context.Context, sorted *Table, cols []int, out *Table, st *RunStats) error {
	rf := e.runFolder()
	kf := make([][]int32, len(cols))
	curKey := make([]int32, len(cols))
	var acc float64
	have := false
	emit := func() error {
		if !have {
			return nil
		}
		st.TempTuples++
		return out.Heap.Append(curKey, acc)
	}
	it := e.scanCB(ctx, sorted.Heap)
	defer it.Close()
	for {
		cb, ok := it.Next()
		if !ok {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		st.addBatches(1)
		n := cb.Len()
		for k, c := range cols {
			kf[k] = cb.Cols[c].Flat()
		}
		for i := 0; i < n; {
			j := i + 1
		grow:
			for j < n {
				for k := range kf {
					if kf[k][j] != kf[k][i] {
						break grow
					}
				}
				j++
			}
			cont := have
			if cont {
				for k := range kf {
					if kf[k][i] != curKey[k] {
						cont = false
						break
					}
				}
			}
			if cont {
				acc = foldMeasures(e.Sr, rf, acc, cb.Measures[i:j])
			} else {
				if err := emit(); err != nil {
					return err
				}
				for k := range kf {
					curKey[k] = kf[k][i]
				}
				acc, have = cb.Measures[i], true
				acc = foldMeasures(e.Sr, rf, acc, cb.Measures[i+1:j])
			}
			i = j
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	return emit()
}

// colRuns generates sorted runs over encoded batches, serially or — when
// the run has a morsel scheduler and the input spans several runs — with
// sort+spill morsels submitted under the "Sort" kind (the row path keeps
// its "SortRun" kind, so EXPLAIN ANALYZE attributes the columnar sort
// separately). ok = false reports a non-sortable encoding: any partial
// runs are dropped and the caller reruns the row path.
func (e *Engine) colRuns(ctx context.Context, in *Table, cols []int, runSize int, parallel bool, st *RunStats) (runs []*Table, ok bool, err error) {
	var mu sync.Mutex
	var g *morselGroup
	if parallel {
		g = st.sched.newGroup("Sort")
	}
	scanErr := e.scanColRuns(ctx, in, cols, runSize, st, func(run *colMemRun) error {
		if g == nil {
			rt, err := e.spillColRun(ctx, run, in.Attrs, st)
			if err != nil {
				return err
			}
			runs = append(runs, rt)
			return nil
		}
		mu.Lock()
		idx := len(runs)
		runs = append(runs, nil)
		mu.Unlock()
		return g.submit(func() error {
			rt, err := e.spillColRun(ctx, run, in.Attrs, st)
			if err != nil {
				return err
			}
			mu.Lock()
			runs[idx] = rt
			mu.Unlock()
			return nil
		})
	})
	if g != nil {
		if werr := g.wait(); scanErr == nil {
			scanErr = werr
		}
	}
	if scanErr != nil {
		for _, r := range runs {
			if r != nil {
				r.Drop()
			}
		}
		if errors.Is(scanErr, errColSortFallback) {
			return nil, false, nil
		}
		return nil, false, scanErr
	}
	return runs, true, nil
}
