package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// fuseRels builds the join inputs for the fused-columnar tests: a wide
// small-domain fact a(Y,X,Z) whose LEADING attribute is the join key —
// so probe pages run-length encode it and the kernel's per-run span path
// runs — and a build side b(Y,W,V) that carries SEVERAL rows per join
// key Y, some sharing the same W projection — so grouping on W drives
// the kernel through its span-unsafe per-row path while grouping on V
// stays span-safe.
func fuseRels(seed int64) (*relation.Relation, *relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "X", Domain: 14}, {Name: "Z", Domain: 10}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "W", Domain: 3}, {Name: "V", Domain: 5}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	return a, b
}

// fusedGroupPlan joins a and b (in the given scan order, which picks the
// build side and therefore buildIsLeft) and groups on groupVars.
func fusedGroupPlan(t *testing.T, h *harness, first, second string, groupVars []string) *relation.Relation {
	t.Helper()
	pb := h.builder()
	s1, err := pb.Scan(first)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pb.Scan(second)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pb.GroupBy(pb.Join(s1, s2), groupVars)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := h.run(t, g)
	return rel
}

// TestFusedColumnarMatchesRowFused is the fused-columnar contract: over
// encoded pages the fused join+aggregate must be BIT-identical (tol 0)
// to the row-batch fused path, for every split of the group variables
// across the probe and build sides, in both join orders, with and
// without span-safe folding.
func TestFusedColumnarMatchesRowFused(t *testing.T) {
	groupSets := [][]string{{"X"}, {"W"}, {"V"}, {"W", "V"}, {"X", "W", "V"}, {"X", "W"}, {"Y"}, {"X", "Y", "V"}, nil}
	for seed := int64(41); seed <= 44; seed++ {
		a, b := fuseRels(seed)
		for _, order := range [][2]string{{"a", "b"}, {"b", "a"}} {
			for _, groupVars := range groupSets {
				rh := newHarness(t, 4096, a, b)
				rh.engine.FuseJoinGroupBy = true
				want := fusedGroupPlan(t, rh, order[0], order[1], groupVars)

				ch := columnarHarness(t, 4096, a, b)
				ch.engine.FuseJoinGroupBy = true
				got := fusedGroupPlan(t, ch, order[0], order[1], groupVars)

				if !relation.Equal(want, got, 0, 0) {
					t.Fatalf("seed %d join %v group %v: fused columnar differs from row fused",
						seed, order, groupVars)
				}
				if es := ch.pool.EncodingStats(); es.PagesEncoded == 0 {
					t.Fatalf("seed %d: no pages encoded — fused columnar path not exercised", seed)
				}
			}
		}
	}
}

// TestFusedColumnarMatchesUnfused cross-checks against the fully
// materializing pipeline (join temp + hash aggregate), which computes
// the same folds in the same tuple order.
func TestFusedColumnarMatchesUnfused(t *testing.T) {
	a, b := fuseRels(51)
	for _, groupVars := range [][]string{{"X"}, {"W"}, {"X", "V"}, nil} {
		ph := newHarness(t, 4096, a, b)
		ph.engine.FuseJoinGroupBy = false
		plain := fusedGroupPlan(t, ph, "a", "b", groupVars)

		ch := columnarHarness(t, 4096, a, b)
		ch.engine.FuseJoinGroupBy = true
		fused := fusedGroupPlan(t, ch, "a", "b", groupVars)

		if !relation.Equal(plain, fused, 0, 0) {
			t.Fatalf("group %v: fused columnar differs from unfused pipeline", groupVars)
		}
	}
}

// TestFusedColumnarSemirings runs the fused columnar kernel under every
// semiring, including ones with no RunFolder (logSumExp) and ones whose
// folds collapse idempotently (min/max): all must stay bit-identical to
// the row fused path.
func TestFusedColumnarSemirings(t *testing.T) {
	a, b := fuseRels(61)
	for _, sr := range semiring.All() {
		t.Run(sr.Name(), func(t *testing.T) {
			run := func(columnar bool) *relation.Relation {
				var h *harness
				if columnar {
					h = columnarHarness(t, 4096, a, b)
				} else {
					h = newHarness(t, 4096, a, b)
				}
				h.engine.Sr = sr
				h.engine.FuseJoinGroupBy = true
				return fusedGroupPlan(t, h, "a", "b", []string{"X", "V"})
			}
			want, got := run(false), run(true)
			if !relation.Equal(want, got, sr.Zero(), 0) {
				t.Fatalf("%s: fused columnar differs from row fused", sr.Name())
			}
		})
	}
}

// TestFusedColumnarFunctionalBuild drives the per-code group-slot memo:
// the build side is functional on the join key (exactly one row per Y),
// the probe join column byte/dict-encodes, and the group key depends only
// on the join key and the build row.
func TestFusedColumnarFunctionalBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// aByte's join column is NOT leading, so probe pages byte-encode it
	// (dense codes); aRLE's is leading, so probe pages run-length encode
	// it; aDict's join values are sparse multiples of 250, so probe pages
	// dictionary-encode them (first-occurrence order — NOT value order).
	// Between them they drive the per-code slot memo (byte and dict,
	// including the dict→value mapping) and the per-run span path, all
	// with single-row matches. Pages only encode when exactly full, so
	// the facts carry several hundred rows.
	aByte, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "X", Domain: 100}, {Name: "Y", Domain: 8}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	aRLE, _ := relation.Random(rng, "arle",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "X", Domain: 100}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	// relation.Random enumerates dense values, so the sparse dict fact is
	// built by hand.
	aDict := relation.MustNew("adict", []relation.Attr{{Name: "Y", Domain: 2000}, {Name: "X", Domain: 100}})
	for i := int32(0); i < 1200; i++ {
		y := ((i*7 + 3) % 8) * 250
		if err := aDict.Append([]int32{y, i % 100}, 0.1+float64(i%13)*0.3); err != nil {
			t.Fatal(err)
		}
	}
	newDim := func(name string, domain int, stride int32) *relation.Relation {
		d := relation.MustNew(name, []relation.Attr{{Name: "Y", Domain: domain}, {Name: "U", Domain: 600}})
		for y := int32(0); y < 8; y++ {
			if err := d.Append([]int32{y * stride, 500 - 60*y}, 0.25+float64(y)); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	dimDense := newDim("dim", 8, 1)
	dimSparse := newDim("dimsparse", 2000, 250)
	for _, pair := range []struct {
		fact, dim *relation.Relation
	}{{aByte, dimDense}, {aRLE, dimDense}, {aDict, dimSparse}} {
		for _, groupVars := range [][]string{{"Y"}, {"U"}, {"Y", "U"}, {"X", "U"}} {
			rh := newHarness(t, 4096, pair.fact, pair.dim)
			rh.engine.FuseJoinGroupBy = true
			want := fusedGroupPlan(t, rh, pair.fact.Name(), pair.dim.Name(), groupVars)

			ch := columnarHarness(t, 4096, pair.fact, pair.dim)
			ch.engine.FuseJoinGroupBy = true
			got := fusedGroupPlan(t, ch, pair.fact.Name(), pair.dim.Name(), groupVars)

			if !relation.Equal(want, got, 0, 0) {
				t.Fatalf("fact %s group %v: fused columnar over functional build differs",
					pair.fact.Name(), groupVars)
			}
		}
	}
}

// TestFusedColumnarRunFolding drives the O(1) measure-span folds: the
// probe fact carries a CONSTANT integral measure, so every RLE key run
// is one bit-identical measure span and the sum-product RunFolder's
// exactness proof holds (integral terms well under 2^53). MaxProduct
// folds the same spans idempotently. Both must stay bit-identical to
// the row fused path, which folds row by row.
func TestFusedColumnarRunFolding(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "X", Domain: 100}}, 0.9,
		relation.UniformMeasure(3, 3))
	dim := relation.MustNew("dim", []relation.Attr{{Name: "Y", Domain: 8}, {Name: "U", Domain: 600}})
	for y := int32(0); y < 8; y++ {
		if err := dim.Append([]int32{y, 500 - 60*y}, float64(1+y)); err != nil {
			t.Fatal(err)
		}
	}
	for _, sr := range []semiring.Semiring{semiring.SumProduct, semiring.MaxProduct} {
		for _, groupVars := range [][]string{{"Y"}, {"U"}, {"Y", "U"}} {
			rh := newHarness(t, 4096, a, dim)
			rh.engine.Sr = sr
			rh.engine.FuseJoinGroupBy = true
			want := fusedGroupPlan(t, rh, "a", "dim", groupVars)

			ch := columnarHarness(t, 4096, a, dim)
			ch.engine.Sr = sr
			ch.engine.FuseJoinGroupBy = true
			got := fusedGroupPlan(t, ch, "a", "dim", groupVars)

			if !relation.Equal(want, got, sr.Zero(), 0) {
				t.Fatalf("%s group %v: run-folded fused columnar differs", sr.Name(), groupVars)
			}
		}
	}
}

// TestFusedColumnarMultiColKey joins on TWO shared variables, driving
// the kernel's generic path: the probe key is encoded from the flattened
// key columns without gathering rows.
func TestFusedColumnarMultiColKey(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	a, _ := relation.Random(rng, "a",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "X", Domain: 14}, {Name: "Z", Domain: 10}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	b, _ := relation.Random(rng, "b",
		[]relation.Attr{{Name: "Y", Domain: 8}, {Name: "Z", Domain: 10}, {Name: "V", Domain: 3}}, 0.9,
		relation.UniformMeasure(0.1, 5))
	for _, groupVars := range [][]string{{"X"}, {"V"}, {"X", "V"}, {"Y", "Z"}, nil} {
		rh := newHarness(t, 4096, a, b)
		rh.engine.FuseJoinGroupBy = true
		want := fusedGroupPlan(t, rh, "a", "b", groupVars)

		ch := columnarHarness(t, 4096, a, b)
		ch.engine.FuseJoinGroupBy = true
		got := fusedGroupPlan(t, ch, "a", "b", groupVars)

		if !relation.Equal(want, got, 0, 0) {
			t.Fatalf("group %v: fused columnar multi-column join differs", groupVars)
		}
	}
}

// TestFusedColumnarNarrowBatches re-runs the equivalence with batch
// windows far narrower than a page, so RLE runs are clipped at batch
// boundaries and the per-batch memo tables reset mid-run.
func TestFusedColumnarNarrowBatches(t *testing.T) {
	a, b := fuseRels(81)
	for _, bs := range []int{3, 7, 64} {
		t.Run(fmt.Sprintf("batch=%d", bs), func(t *testing.T) {
			rh := newHarness(t, 4096, a, b)
			rh.engine.FuseJoinGroupBy = true
			rh.engine.BatchSize = bs
			want := fusedGroupPlan(t, rh, "a", "b", []string{"X", "V"})

			ch := columnarHarness(t, 4096, a, b)
			ch.engine.FuseJoinGroupBy = true
			ch.engine.BatchSize = bs
			got := fusedGroupPlan(t, ch, "a", "b", []string{"X", "V"})

			if !relation.Equal(want, got, 0, 0) {
				t.Fatalf("batch=%d: fused columnar differs from row fused", bs)
			}
		})
	}
}
