package exec

import (
	"context"
	"fmt"
	"sort"

	"mpf/internal/relation"
)

// tupleLoc addresses one tuple inside a heap.
type tupleLoc struct {
	page int64
	slot int32
}

// Index is a hash index on one variable attribute of a stored table: it
// maps each attribute value to the locations of the matching tuples, so
// equality selections can fetch only the pages that contain matches (the
// "indices and alternative access methods" of §5.4).
type Index struct {
	// Attr is the indexed attribute name.
	Attr    string
	col     int
	entries map[int32][]tupleLoc
}

// BuildIndex scans the table once and builds a hash index on attr.
func BuildIndex(t *Table, attr string) (*Index, error) {
	col := t.ColIndex(attr)
	if col < 0 {
		return nil, fmt.Errorf("exec: table %s has no attribute %s", t.Name, attr)
	}
	idx := &Index{Attr: attr, col: col, entries: make(map[int32][]tupleLoc)}
	it := t.Heap.Scan()
	defer it.Close()
	for {
		vals, _, ok := it.Next()
		if !ok {
			break
		}
		page, slot := it.Location()
		idx.entries[vals[col]] = append(idx.entries[vals[col]], tupleLoc{page, int32(slot)})
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return idx, nil
}

// Add records a newly appended tuple's location, keeping the index
// consistent under inserts.
func (idx *Index) Add(vals []int32, page int64, slot int) {
	v := vals[idx.col]
	idx.entries[v] = append(idx.entries[v], tupleLoc{page, int32(slot)})
}

// Lookup returns the locations of tuples whose indexed attribute equals
// val, ordered by page so fetches are sequential within the heap.
func (idx *Index) Lookup(val int32) []tupleLoc {
	locs := idx.entries[val]
	out := append([]tupleLoc(nil), locs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].page != out[j].page {
			return out[i].page < out[j].page
		}
		return out[i].slot < out[j].slot
	})
	return out
}

// Selectivity returns the fraction of tuples matching val.
func (idx *Index) Selectivity(val int32, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(len(idx.entries[val])) / float64(total)
}

// AddIndex attaches an index to the table, replacing any previous index
// on the same attribute.
func (t *Table) AddIndex(idx *Index) {
	if t.Indexes == nil {
		t.Indexes = make(map[string]*Index)
	}
	t.Indexes[idx.Attr] = idx
}

// indexedSelect evaluates an equality selection through an index: only
// the pages containing matches are read. Residual predicate columns (for
// multi-variable predicates) are checked per fetched tuple. Returns nil
// when no suitable index exists, signalling the caller to fall back to a
// scan.
func (e *Engine) indexedSelect(ctx context.Context, in *Table, pred relation.Predicate, st *RunStats) (*Table, error) {
	// Pick the indexed predicate variable with the fewest matches.
	var best *Index
	var bestVal int32
	for v, val := range pred {
		idx, ok := in.Indexes[v]
		if !ok {
			continue
		}
		if best == nil || len(idx.entries[val]) < len(best.entries[bestVal]) {
			best, bestVal = idx, val
		}
	}
	if best == nil {
		return nil, nil
	}
	residCols := make([]int, 0, len(pred))
	residWant := make([]int32, 0, len(pred))
	for v, val := range pred {
		if v == best.Attr {
			continue
		}
		c := in.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("exec: selection variable %s not in %s", v, in.Name)
		}
		residCols = append(residCols, c)
		residWant = append(residWant, val)
	}
	out, err := e.newOutTemp(ctx, "σix("+in.Name+")", in.Attrs)
	if err != nil {
		return nil, err
	}
	// Matches are buffered and appended a page at a time when the batch
	// paths are on, so the output side costs one pool round-trip per page
	// of matches instead of one per match.
	var w *batchWriter
	if e.batchOn() {
		w = newBatchWriter(out, false, st)
	}
	emit := func(vals []int32, m float64) error {
		for i, c := range residCols {
			if vals[c] != residWant[i] {
				return nil
			}
		}
		if w != nil {
			return w.append(vals, m)
		}
		st.TempTuples++
		return out.Heap.Append(vals, m)
	}
	// Locations are page-ordered; fetch each page once and read all of
	// its matching slots under a single pin.
	locs := best.Lookup(bestVal)
	for i := 0; i < len(locs); {
		j := i
		var slots []int32
		for ; j < len(locs) && locs[j].page == locs[i].page; j++ {
			slots = append(slots, locs[j].slot)
		}
		if err := in.Heap.ReadTupleBatchContext(ctx, locs[i].page, slots, emit); err != nil {
			out.Drop()
			return nil, err
		}
		i = j
	}
	if w != nil {
		if err := w.flush(); err != nil {
			out.Drop()
			return nil, err
		}
	}
	return out, nil
}
