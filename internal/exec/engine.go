package exec

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// Engine evaluates logical plans with materializing physical operators.
type Engine struct {
	Pool    *storage.Pool
	Factory storage.DiskFactory
	Sr      semiring.Semiring

	// SortJoin selects sort-merge product joins instead of hash joins.
	SortJoin bool
	// SortGroupBy selects sort-based aggregation instead of hash
	// aggregation.
	SortGroupBy bool
	// SortRunTuples bounds in-memory run size for the external sort;
	// defaults to 1<<17 tuples when zero.
	SortRunTuples int
	// HashJoinMaxBuild caps the in-memory hash-join build side in tuples;
	// larger builds use the Grace (partitioned) strategy. Zero selects a
	// default of 1<<20.
	HashJoinMaxBuild int64
	// FuseJoinGroupBy pipelines GroupBy-over-Join pairs through a single
	// fused operator, skipping the join's materialization. Off by default
	// so operator IO matches the paper's materializing cost model.
	FuseJoinGroupBy bool
	// Parallelism bounds the worker goroutines used inside a single query:
	// Grace-join partition pairs, partitioned hash group-by, and external
	// sort run generation all fan out across this many workers. 0 or 1
	// preserves today's strictly serial execution. Parallel execution of a
	// plan produces the same result relation, and (absent buffer-pool
	// eviction) the same physical IO counts, as serial execution.
	Parallelism int
	// ParallelGroupByMinTuples is the minimum input size (in tuples) for
	// the partitioned parallel group-by; smaller inputs aggregate serially
	// because the extra partition pass would dominate. Zero selects a
	// default of 1<<13.
	ParallelGroupByMinTuples int
	// BatchSize selects the executor's batch width in tuples. 0 (the
	// default) runs the vectorized paths with whole heap pages as batches
	// — the natural unit of one pin and one decode loop. 1 restores the
	// legacy tuple-at-a-time paths (the baseline the batch-exec
	// experiment compares against). Values > 1 cap batches at that many
	// tuples without ever spanning pages. Batch boundaries are the
	// executor's cancellation check points.
	BatchSize int
	// ReadAhead makes sequential scans declare themselves to the buffer
	// pool, which prefetches up to this many pages ahead of the scan
	// position. 0 (the default) disables read-ahead so physical IO counts
	// reproduce the paper's cost model exactly; see Pool.Prefetch for the
	// accounting when enabled.
	ReadAhead int
	// Columnar writes intermediate heaps in the columnar page format
	// (storage.SetColumnar) and routes scan/select/Grace-join/group-by
	// through the encoded-batch kernels, which operate on dictionary codes
	// and RLE runs directly. Results are byte-identical to row-major
	// execution; page counts (and so IO) are unchanged. Requires the
	// vectorized paths (no effect when BatchSize == 1).
	Columnar bool
}

// NewEngine returns an engine with hash-based operators.
func NewEngine(pool *storage.Pool, factory storage.DiskFactory, sr semiring.Semiring) *Engine {
	return &Engine{Pool: pool, Factory: factory, Sr: sr}
}

// OpStat records one executed operator's actuals (EXPLAIN ANALYZE
// style): what ran, how many rows it produced, and how long it took.
// Wall is exclusive (self) time — the operator's own work with its
// children's time subtracted — matching PostgreSQL's per-node "actual
// time" semantics.
type OpStat struct {
	Desc string        `json:"desc"`
	Rows int64         `json:"rows"`
	Wall time.Duration `json:"wall_ns"`
}

// Span is one operator's execution window within a query trace. Spans
// mirror RunStats.Ops (same completion order — post-order over the plan
// tree) but add the operator kind, tree depth, start/stop timestamps
// relative to the run's start, and the buffer-pool stats delta observed
// over the operator's own window (children subtracted, like Wall).
// Under concurrent queries on one Database the pool is shared, so IO
// attribution is approximate: pages another query moved during this
// operator's window land in its delta.
type Span struct {
	// Desc is the operator description, e.g. "Scan(contracts)".
	Desc string `json:"desc"`
	// Kind is the operator kind, e.g. "Scan", "ProductJoin", "GroupBy".
	Kind string `json:"kind"`
	// Depth is the operator's distance from the plan root (root = 0).
	Depth int `json:"depth"`
	// Rows is the operator's output cardinality.
	Rows int64 `json:"rows"`
	// Start and Stop are offsets from the run's start time.
	Start time.Duration `json:"start_ns"`
	Stop  time.Duration `json:"stop_ns"`
	// Wall is exclusive (self) time, children subtracted.
	Wall time.Duration `json:"wall_ns"`
	// IO is the pool-stats delta attributed to this operator alone.
	IO storage.Stats `json:"io"`
}

// RunStats describes one plan execution. On error the counters hold the
// partial work done up to the failure (Wall and IO included), so EXPLAIN
// ANALYZE of a failed query still reports what was spent.
type RunStats struct {
	Wall       time.Duration `json:"wall_ns"`
	IO         storage.Stats `json:"io"`
	RowsOut    int64         `json:"rows_out"`
	Operators  int           `json:"operators"`
	TempTuples int64         `json:"temp_tuples"` // tuples written to intermediate tables
	// HotKeyFallbacks counts Grace-join partitions that hit the recursion
	// depth limit still oversized (a hot join key) and fell back to an
	// in-memory join above the build cap. Non-zero means pathological
	// skew worth knowing about.
	HotKeyFallbacks int64 `json:"hot_key_fallbacks,omitempty"`
	// CacheHits counts result-cache hits spliced into this run: subtrees
	// whose execution was replaced by a scan of a cached materialization.
	CacheHits int64 `json:"cache_hits,omitempty"`
	// CacheMisses counts cacheable nodes of this run that probed the
	// result cache and found nothing.
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// Batches counts the tuple batches the vectorized operator paths
	// consumed; zero when the run used the legacy tuple-at-a-time paths
	// (Engine.BatchSize = 1).
	Batches int64 `json:"batches,omitempty"`
	// Planner is the report name of the planner that produced this run's
	// plan (the budget-race winner for budgeted planning). Filled by core,
	// not the engine; empty when the caller did not plan through core.
	Planner string `json:"planner,omitempty"`
	// PlanCacheHit marks a run whose plan came from the plan cache rather
	// than a fresh optimization. Filled by core.
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
	// Ops lists per-operator actuals in completion (bottom-up) order.
	Ops []OpStat `json:"ops,omitempty"`
	// Trace lists per-operator spans in the same order as Ops, with
	// timestamps and IO deltas (EXPLAIN ANALYZE's data source).
	Trace []Span `json:"trace,omitempty"`
	// Morsels lists per-operator-kind morsel-scheduler totals (tasks run
	// and worker busy time) for runs with Parallelism > 1. Busy time is
	// attributed to the kind that submitted each morsel, not the operator
	// whose goroutine blocked waiting — the truthful decomposition of
	// where parallel workers spent their time.
	Morsels []MorselStat `json:"morsels,omitempty"`

	// budget holds the per-query resource bounds read from the context
	// at run start (WithBudget); unexported so it never appears in the
	// wire encoding of RunStats.
	budget Budget
	// sched is the run's morsel scheduler (nil when serial); unexported
	// for the same wire-encoding reason.
	sched *morselSched
}

// Run executes the plan and returns the result as an in-memory relation
// together with execution statistics. Intermediate tables are dropped
// before returning.
func (e *Engine) Run(p *plan.Node, resolve Resolver) (*relation.Relation, RunStats, error) {
	return e.RunContext(context.Background(), p, resolve)
}

// RunContext is Run with cancellation: ctx is observed at every operator
// boundary, inside operator inner loops (join build/probe, aggregation,
// Grace partitioning, sort-run generation and merging — including the
// parallel worker pools), and by the buffer pool on page misses. A
// canceled run returns ctx's error with all temporary tables dropped and
// every buffer-pool pin released; RunStats still reports the partial
// work done up to the cancellation.
func (e *Engine) RunContext(ctx context.Context, p *plan.Node, resolve Resolver) (*relation.Relation, RunStats, error) {
	return e.RunCachedContext(ctx, p, resolve, nil, nil)
}

// RunCachedContext is RunContext with a shared result cache spliced in:
// before executing a cacheable node (a GroupBy over at least one product
// join — a VE intermediate) whose fingerprint appears in fps, the engine
// probes cache and, on a hit, scans the cached materialization instead
// of executing the subtree; on a miss it executes normally and registers
// the materialized output as a side effect. A nil cache (or nil fps)
// degrades to plain RunContext. Hits appear in the trace as CacheHit
// operators.
func (e *Engine) RunCachedContext(ctx context.Context, p *plan.Node, resolve Resolver, cache *ResultCache, fps map[*plan.Node]string) (*relation.Relation, RunStats, error) {
	if err := plan.Validate(p); err != nil {
		return nil, RunStats{}, err
	}
	start := time.Now()
	before := e.Pool.Stats()
	st := &RunStats{}
	if b, ok := BudgetFromContext(ctx); ok {
		st.budget = b
	}
	if w := e.workers(); w > 1 {
		st.sched = newMorselSched(w)
		defer st.sched.close()
	}
	if fps == nil {
		cache = nil
	}
	env := &runEnv{resolve: resolve, st: st, start: start, cache: cache, fps: fps}
	// finish stamps Wall and IO on every exit, error paths included, so
	// callers always see the true partial work.
	finish := func() {
		st.Wall = time.Since(start)
		st.IO = e.Pool.Stats().Sub(before)
		if st.sched != nil {
			st.Morsels = st.sched.snapshot()
		}
	}
	out, _, _, err := e.exec(ctx, p, env, 0)
	if err != nil {
		finish()
		return nil, *st, err
	}
	rel, err := readRelationContext(ctx, out)
	if err != nil {
		err = errors.Join(err, out.Drop())
		finish()
		return nil, *st, err
	}
	if err := out.Drop(); err != nil {
		finish()
		return nil, *st, err
	}
	finish()
	st.RowsOut = int64(rel.Len())
	if err := st.overRows(st.RowsOut); err != nil {
		return nil, *st, err
	}
	return rel, *st, nil
}

// runEnv carries per-run state through the operator tree: the base-table
// resolver, the stats sink, the run's start time (the zero point for
// trace-span timestamps), and the optional result cache with the plan's
// precomputed node fingerprints.
type runEnv struct {
	resolve Resolver
	st      *RunStats
	start   time.Time
	cache   *ResultCache
	fps     map[*plan.Node]string
}

// cacheKey returns the result-cache key for a node, and whether the node
// is on the cacheable cut: a GroupBy whose subtree contains at least one
// product join (the paper's VE intermediates — aggregated join outputs
// small enough to be worth keeping, unlike raw join results), with a
// fingerprint (its whole subtree versionable).
func (env *runEnv) cacheKey(p *plan.Node) (string, bool) {
	if env.cache == nil || p.Op != plan.OpGroupBy || plan.CountOps(p, plan.OpJoin) == 0 {
		return "", false
	}
	fp, ok := env.fps[p]
	return fp, ok
}

// exec evaluates one node, recording its OpStat and trace Span. The
// returned duration and stats delta are the node's inclusive wall time
// and IO (children included); parents subtract them so that recorded
// exclusive figures are self-only. The returned table is temporary
// unless it is a base table.
func (e *Engine) exec(ctx context.Context, p *plan.Node, env *runEnv, depth int) (*Table, time.Duration, storage.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, storage.Stats{}, err
	}
	start := time.Now()
	ioBefore := e.Pool.Stats()
	key, cacheable := env.cacheKey(p)
	if cacheable {
		if t, ok := env.cache.Lookup(key); ok {
			// Splice: the cached materialization stands in for the whole
			// subtree. The hit is recorded as its own operator so EXPLAIN
			// ANALYZE and per-kind metrics show reuse explicitly.
			env.st.Operators++
			env.st.CacheHits++
			rows := t.Heap.NumTuples()
			incl := time.Since(start)
			desc := "CacheHit(" + opDesc(p) + ")"
			env.st.Ops = append(env.st.Ops, OpStat{Desc: desc, Rows: rows, Wall: incl})
			env.st.Trace = append(env.st.Trace, Span{
				Desc:  desc,
				Kind:  "CacheHit",
				Depth: depth,
				Rows:  rows,
				Start: start.Sub(env.start),
				Stop:  start.Sub(env.start) + incl,
				Wall:  incl,
			})
			return t, incl, storage.Stats{}, nil
		}
		env.cache.Miss()
		env.st.CacheMisses++
	}
	out, childWall, childIO, err := e.execOp(ctx, p, env, depth)
	if err == nil && out != nil {
		// Operator-boundary budget backstop: loops enforce the temp-tuple
		// bound at poll/flush cadence; this catches paths that only tally
		// on completion.
		if berr := env.st.overTemp(); berr != nil {
			dropInput(out, false)
			out, err = nil, berr
		}
	}
	incl := time.Since(start)
	inclIO := e.Pool.Stats().Sub(ioBefore)
	if err == nil && out != nil {
		self := incl - childWall
		if self < 0 {
			self = 0
		}
		rows := out.Heap.NumTuples()
		env.st.Ops = append(env.st.Ops, OpStat{Desc: opDesc(p), Rows: rows, Wall: self})
		env.st.Trace = append(env.st.Trace, Span{
			Desc:  opDesc(p),
			Kind:  opKind(p),
			Depth: depth,
			Rows:  rows,
			Start: start.Sub(env.start),
			Stop:  start.Sub(env.start) + incl,
			Wall:  self,
			IO:    clampStats(inclIO.Sub(childIO)),
		})
		if cacheable && out.temp {
			// Materialize-and-register: the output was produced anyway;
			// adopting it into the cache costs no extra IO. The subtree's
			// inclusive IO is its rebuild cost.
			env.cache.Register(key, out, sortedTables(p), inclIO.IO())
		}
	}
	return out, incl, inclIO, err
}

// sortedTables lists the base tables under a plan node in sorted order,
// the dependency set recorded with a cache entry for invalidation.
func sortedTables(p *plan.Node) []string {
	m := plan.Tables(p)
	out := make([]string, 0, len(m))
	for t := range m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// clampStats floors each counter at zero. Exclusive per-operator deltas
// are computed by subtraction and can dip below zero when a concurrent
// query's IO lands in a child's window but not the parent's.
func clampStats(s storage.Stats) storage.Stats {
	if s.Reads < 0 {
		s.Reads = 0
	}
	if s.Writes < 0 {
		s.Writes = 0
	}
	if s.Hits < 0 {
		s.Hits = 0
	}
	if s.Prefetches < 0 {
		s.Prefetches = 0
	}
	if s.Retries < 0 {
		s.Retries = 0
	}
	if s.TransientFaults < 0 {
		s.TransientFaults = 0
	}
	if s.PermanentFaults < 0 {
		s.PermanentFaults = 0
	}
	if s.ChecksumFailures < 0 {
		s.ChecksumFailures = 0
	}
	return s
}

// opDesc renders a short operator description for OpStat.
func opDesc(p *plan.Node) string {
	if p.Op == plan.OpScan {
		return "Scan(" + p.Table + ")"
	}
	return opKind(p)
}

// opKind names the operator kind, the key for per-kind engine metrics.
func opKind(p *plan.Node) string {
	switch p.Op {
	case plan.OpScan:
		return "Scan"
	case plan.OpSelect:
		return "Select"
	case plan.OpJoin:
		return "ProductJoin"
	case plan.OpGroupBy:
		return "GroupBy"
	default:
		return p.Op.String()
	}
}

// execOp dispatches one operator. The returned duration and stats sum
// the inclusive wall time and IO of the operator's direct children,
// letting exec compute exclusive self figures. At the plan root, the
// operator body runs under a root-output marker (see newOutTemp):
// children still execute unmarked, so only the final output heap skips
// columnar re-encoding.
func (e *Engine) execOp(ctx context.Context, p *plan.Node, env *runEnv, depth int) (*Table, time.Duration, storage.Stats, error) {
	st := env.st
	st.Operators++
	bctx := ctx
	if depth == 0 {
		// Cache-registered outputs are re-read by later queries — possibly
		// through the encoded kernels — so they keep encoding.
		if _, cacheable := env.cacheKey(p); !cacheable {
			bctx = context.WithValue(ctx, rootOutCtxKey{}, true)
		}
	}
	switch p.Op {
	case plan.OpScan:
		out, err := env.resolve(p.Table)
		return out, 0, storage.Stats{}, err
	case plan.OpSelect:
		in, childWall, childIO, err := e.exec(ctx, p.Left, env, depth+1)
		if err != nil {
			return nil, childWall, childIO, err
		}
		out, err := e.selectOp(bctx, in, p.Pred, st)
		dropInput(in, err == nil)
		return out, childWall, childIO, err
	case plan.OpJoin:
		l, lWall, lIO, err := e.exec(ctx, p.Left, env, depth+1)
		if err != nil {
			return nil, lWall, lIO, err
		}
		r, rWall, rIO, err := e.exec(ctx, p.Right, env, depth+1)
		childIO := lIO.Add(rIO)
		if err != nil {
			l.Drop()
			return nil, lWall + rWall, childIO, err
		}
		var out *Table
		if e.SortJoin {
			out, err = e.sortMergeJoin(bctx, l, r, st)
		} else {
			out, err = e.hashJoin(bctx, l, r, st)
		}
		dropInput(l, err == nil)
		dropInput(r, err == nil)
		return out, lWall + rWall, childIO, err
	case plan.OpGroupBy:
		if fused, childWall, childIO, err := e.tryFuse(ctx, bctx, p, env, depth); err != nil || fused != nil {
			return fused, childWall, childIO, err
		}
		in, childWall, childIO, err := e.exec(ctx, p.Left, env, depth+1)
		if err != nil {
			return nil, childWall, childIO, err
		}
		var out *Table
		if e.SortGroupBy {
			out, err = e.sortGroupBy(bctx, in, p.GroupVars, st)
		} else {
			out, err = e.hashGroupBy(bctx, in, p.GroupVars, st)
		}
		dropInput(in, err == nil)
		return out, childWall, childIO, err
	default:
		return nil, 0, storage.Stats{}, fmt.Errorf("exec: unknown op %v", p.Op)
	}
}

// dropInput releases an operator input if it was temporary. When the
// operator already failed, the drop error is ignored in favor of the
// original failure.
func dropInput(t *Table, report bool) {
	if t == nil {
		return
	}
	if err := t.Drop(); err != nil && report {
		// Temp-table cleanup failures are not fatal to the query result;
		// the heap is memory- or temp-file-backed and will be reclaimed.
		_ = err
	}
}

// newTemp creates a temporary output table with the given schema. The
// heap is bound to ctx: appends that miss in the pool observe it.
func (e *Engine) newTemp(ctx context.Context, name string, attrs []relation.Attr) (*Table, error) {
	h, err := storage.NewTempHeap(e.Pool, e.Factory, len(attrs))
	if err != nil {
		return nil, err
	}
	h.SetContext(ctx)
	h.SetColumnar(e.Columnar)
	return &Table{Name: name, Attrs: attrs, Heap: h, temp: true}, nil
}

// rootOutCtxKey marks an operator-body context whose output temp is the
// plan root's result: it is read back exactly once (row-at-a-time) and
// dropped, so columnar re-encoding it is pure overhead. execOp sets the
// marker only around the depth-0 operator body of non-cacheable plans —
// cache-registered outputs are re-scanned by later queries and keep
// encoding, as do intra-operator scratch temps (Grace partitions, sort
// runs), which are created through newTemp and never see the marker.
type rootOutCtxKey struct{}

// newOutTemp creates an operator's output temp, leaving the heap
// row-major when ctx carries the root-output marker.
func (e *Engine) newOutTemp(ctx context.Context, name string, attrs []relation.Attr) (*Table, error) {
	t, err := e.newTemp(ctx, name, attrs)
	if err == nil && ctx.Value(rootOutCtxKey{}) != nil {
		t.Heap.SetColumnar(false)
	}
	return t, nil
}

// ctxPollInterval bounds how many inner-loop iterations run between
// context checks; small enough that a canceled CPU-bound loop stops
// within microseconds, large enough that the check cost (a mutex in
// context.cancelCtx.Err) is amortized away.
const ctxPollInterval = 512

// poller amortizes context checks over tuple-loop iterations. The zero
// count means the first check happens after ctxPollInterval tuples —
// callers already check ctx at operator entry. When st is set, each
// check also enforces the run's temp-tuple budget, so budget
// enforcement shares the cancellation cadence.
type poller struct {
	ctx context.Context
	st  *RunStats
	n   uint32
}

// check polls ctx.Err (and the temp-tuple budget, when a RunStats is
// attached) about every ctxPollInterval calls.
func (p *poller) check() error {
	p.n++
	if p.n%ctxPollInterval == 0 {
		if err := p.ctx.Err(); err != nil {
			return err
		}
		if p.st != nil {
			return p.st.overTemp()
		}
	}
	return nil
}

// hashKey encodes the values of cols into a map key.
func hashKey(vals []int32, cols []int, buf []byte) string {
	for i, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[c]))
	}
	return string(buf[:4*len(cols)])
}

// selectOp filters the input by the equality predicate, using a hash
// index when one covers a predicate variable and falling back to a scan.
func (e *Engine) selectOp(ctx context.Context, in *Table, pred relation.Predicate, st *RunStats) (*Table, error) {
	if len(in.Indexes) > 0 {
		out, err := e.indexedSelect(ctx, in, pred, st)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
	cols := make([]int, 0, len(pred))
	want := make([]int32, 0, len(pred))
	for v, val := range pred {
		c := in.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("exec: selection variable %s not in %s", v, in.Name)
		}
		cols = append(cols, c)
		want = append(want, val)
	}
	out, err := e.newOutTemp(ctx, "σ("+in.Name+")", in.Attrs)
	if err != nil {
		return nil, err
	}
	if e.colOn() {
		if err := e.selectColBatch(ctx, in, cols, want, out, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	if e.batchOn() {
		if err := e.selectBatch(ctx, in, cols, want, out, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	it := in.Heap.ScanContext(ctx)
	defer it.Close()
	poll := poller{ctx: ctx, st: st}
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			out.Drop()
			return nil, err
		}
		match := true
		for i, c := range cols {
			if vals[c] != want[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if err := out.Heap.Append(vals, m); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	if err := it.Err(); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// joinSchema computes shared columns and the output schema of l ⋈* r.
func joinSchema(l, r *Table) (lCols, rCols, rExtra []int, outAttrs []relation.Attr, err error) {
	shared := l.Vars().Intersect(r.Vars()).Sorted()
	lCols = make([]int, len(shared))
	rCols = make([]int, len(shared))
	for i, v := range shared {
		lc, rc := l.ColIndex(v), r.ColIndex(v)
		if l.Attrs[lc].Domain != r.Attrs[rc].Domain {
			return nil, nil, nil, nil, fmt.Errorf("exec: join %s/%s: domain mismatch on %s", l.Name, r.Name, v)
		}
		lCols[i], rCols[i] = lc, rc
	}
	outAttrs = append([]relation.Attr(nil), l.Attrs...)
	for i, a := range r.Attrs {
		if l.ColIndex(a.Name) < 0 {
			outAttrs = append(outAttrs, a)
			rExtra = append(rExtra, i)
		}
	}
	return lCols, rCols, rExtra, outAttrs, nil
}

// buildRow is one hash-table entry of a hash join's build side.
type buildRow struct {
	vals    []int32
	measure float64
}

// hashJoin implements the product join by building an in-memory hash
// table on the smaller input and probing with the larger; when even the
// smaller input exceeds the build cap, the Grace partitioned strategy is
// used instead (classic hybrid behaviour for disk-resident operands).
func (e *Engine) hashJoin(ctx context.Context, l, r *Table, st *RunStats) (*Table, error) {
	lCols, rCols, rExtra, outAttrs, err := joinSchema(l, r)
	if err != nil {
		return nil, err
	}
	out, err := e.newOutTemp(ctx, "("+l.Name+"⋈*"+r.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	smaller := l.Heap.NumTuples()
	if r.Heap.NumTuples() < smaller {
		smaller = r.Heap.NumTuples()
	}
	if smaller > e.maxBuild() && len(lCols) > 0 {
		if err := e.graceJoin(ctx, l, r, lCols, rCols, rExtra, out, 0, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	if err := e.hashJoinInto(ctx, l, r, lCols, rCols, rExtra, out, st); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// hashJoinInto performs an in-memory-build hash join of l and r,
// appending result tuples to out. It is safe to run concurrently with
// other appenders to the same out (Grace partition pairs do): appends go
// through out.LockedAppend and shared counters are merged atomically.
func (e *Engine) hashJoinInto(ctx context.Context, l, r *Table, lCols, rCols, rExtra []int, out *Table, st *RunStats) error {
	build, probe := l, r
	buildCols, probeCols := lCols, rCols
	buildIsLeft := true
	if r.Heap.NumTuples() < l.Heap.NumTuples() {
		build, probe = r, l
		buildCols, probeCols = rCols, lCols
		buildIsLeft = false
	}
	if e.colOn() {
		return e.hashJoinIntoColBatch(ctx, l, build, probe, buildCols, probeCols, rExtra, buildIsLeft, out, st)
	}
	if e.batchOn() {
		return e.hashJoinIntoBatch(ctx, l, build, probe, buildCols, probeCols, rExtra, buildIsLeft, out, st)
	}

	poll := poller{ctx: ctx, st: st}
	ht := make(map[string][]buildRow, build.Heap.NumTuples())
	bit := build.Heap.ScanContext(ctx)
	keyBuf := make([]byte, 4*len(buildCols))
	for {
		vals, m, ok := bit.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			bit.Close()
			return err
		}
		k := hashKey(vals, buildCols, keyBuf)
		ht[k] = append(ht[k], buildRow{vals: append([]int32(nil), vals...), measure: m})
	}
	if err := bit.Close(); err != nil {
		return err
	}

	var tmp int64
	defer func() { st.addTempTuples(tmp) }()
	rowBuf := make([]int32, len(out.Attrs))
	emit := func(lv []int32, lm float64, rv []int32, rm float64) error {
		copy(rowBuf, lv)
		for i, c := range rExtra {
			rowBuf[len(l.Attrs)+i] = rv[c]
		}
		tmp++
		return out.LockedAppend(rowBuf, e.Sr.Mul(lm, rm))
	}

	pit := probe.Heap.ScanContext(ctx)
	defer pit.Close()
	for {
		vals, m, ok := pit.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			return err
		}
		k := hashKey(vals, probeCols, keyBuf)
		for _, b := range ht[k] {
			var err error
			if buildIsLeft {
				err = emit(b.vals, b.measure, vals, m)
			} else {
				err = emit(vals, m, b.vals, b.measure)
			}
			if err != nil {
				return err
			}
		}
	}
	return pit.Err()
}

// hashGroupBy implements marginalization with in-memory hash aggregation.
type aggEntry struct {
	vals    []int32
	measure float64
}

// groupSchema resolves the group variables to column indexes and the
// aggregate output schema.
func groupSchema(in *Table, groupVars []string) (cols []int, outAttrs []relation.Attr, err error) {
	cols = make([]int, len(groupVars))
	outAttrs = make([]relation.Attr, len(groupVars))
	for i, v := range groupVars {
		c := in.ColIndex(v)
		if c < 0 {
			return nil, nil, fmt.Errorf("exec: group variable %s not in %s", v, in.Name)
		}
		cols[i] = c
		outAttrs[i] = in.Attrs[c]
	}
	return cols, outAttrs, nil
}

// aggregate runs one in-memory hash-aggregation pass over in, returning
// the groups keyed by encoded group values together with their first-seen
// order (scan order, for determinism).
func (e *Engine) aggregate(ctx context.Context, in *Table, cols []int) (order []string, groups map[string]*aggEntry, err error) {
	groups = make(map[string]*aggEntry)
	order = make([]string, 0, 1024)
	it := in.Heap.ScanContext(ctx)
	keyBuf := make([]byte, 4*len(cols))
	poll := poller{ctx: ctx}
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		if err := poll.check(); err != nil {
			it.Close()
			return nil, nil, err
		}
		k := hashKey(vals, cols, keyBuf)
		g, seen := groups[k]
		if !seen {
			gv := make([]int32, len(cols))
			for i, c := range cols {
				gv[i] = vals[c]
			}
			groups[k] = &aggEntry{vals: gv, measure: m}
			order = append(order, k)
			continue
		}
		g.measure = e.Sr.Add(g.measure, m)
	}
	if err := it.Close(); err != nil {
		return nil, nil, err
	}
	return order, groups, nil
}

func (e *Engine) hashGroupBy(ctx context.Context, in *Table, groupVars []string, st *RunStats) (*Table, error) {
	cols, outAttrs, err := groupSchema(in, groupVars)
	if err != nil {
		return nil, err
	}
	if e.workers() > 1 && len(cols) > 0 && in.Heap.NumTuples() >= e.parallelGroupByMin() {
		return e.parallelHashGroupBy(ctx, in, cols, outAttrs, st)
	}
	if e.batchOn() {
		var agg *batchAgg
		if e.colOn() {
			agg, err = e.aggregateColBatch(ctx, in, cols, st)
		} else {
			agg, err = e.aggregateBatch(ctx, in, cols, st)
		}
		if err != nil {
			return nil, err
		}
		out, err := e.newOutTemp(ctx, "γ("+in.Name+")", outAttrs)
		if err != nil {
			return nil, err
		}
		if err := agg.emit(ctx, out, false, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	order, groups, err := e.aggregate(ctx, in, cols)
	if err != nil {
		return nil, err
	}
	out, err := e.newOutTemp(ctx, "γ("+in.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		if err := out.Heap.Append(g.vals, g.measure); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	return out, nil
}
