package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"mpf/internal/plan"
	"mpf/internal/relation"
	"mpf/internal/semiring"
	"mpf/internal/storage"
)

// Engine evaluates logical plans with materializing physical operators.
type Engine struct {
	Pool    *storage.Pool
	Factory storage.DiskFactory
	Sr      semiring.Semiring

	// SortJoin selects sort-merge product joins instead of hash joins.
	SortJoin bool
	// SortGroupBy selects sort-based aggregation instead of hash
	// aggregation.
	SortGroupBy bool
	// SortRunTuples bounds in-memory run size for the external sort;
	// defaults to 1<<17 tuples when zero.
	SortRunTuples int
	// HashJoinMaxBuild caps the in-memory hash-join build side in tuples;
	// larger builds use the Grace (partitioned) strategy. Zero selects a
	// default of 1<<20.
	HashJoinMaxBuild int64
	// FuseJoinGroupBy pipelines GroupBy-over-Join pairs through a single
	// fused operator, skipping the join's materialization. Off by default
	// so operator IO matches the paper's materializing cost model.
	FuseJoinGroupBy bool
	// Parallelism bounds the worker goroutines used inside a single query:
	// Grace-join partition pairs, partitioned hash group-by, and external
	// sort run generation all fan out across this many workers. 0 or 1
	// preserves today's strictly serial execution. Parallel execution of a
	// plan produces the same result relation, and (absent buffer-pool
	// eviction) the same physical IO counts, as serial execution.
	Parallelism int
	// ParallelGroupByMinTuples is the minimum input size (in tuples) for
	// the partitioned parallel group-by; smaller inputs aggregate serially
	// because the extra partition pass would dominate. Zero selects a
	// default of 1<<13.
	ParallelGroupByMinTuples int
}

// NewEngine returns an engine with hash-based operators.
func NewEngine(pool *storage.Pool, factory storage.DiskFactory, sr semiring.Semiring) *Engine {
	return &Engine{Pool: pool, Factory: factory, Sr: sr}
}

// OpStat records one executed operator's actuals (EXPLAIN ANALYZE
// style): what ran, how many rows it produced, and how long it took.
// Wall is exclusive (self) time — the operator's own work with its
// children's time subtracted — matching PostgreSQL's per-node "actual
// time" semantics.
type OpStat struct {
	Desc string
	Rows int64
	Wall time.Duration
}

// RunStats describes one plan execution. On error the counters hold the
// partial work done up to the failure (Wall and IO included), so EXPLAIN
// ANALYZE of a failed query still reports what was spent.
type RunStats struct {
	Wall       time.Duration
	IO         storage.Stats
	RowsOut    int64
	Operators  int
	TempTuples int64 // tuples written to intermediate tables
	// HotKeyFallbacks counts Grace-join partitions that hit the recursion
	// depth limit still oversized (a hot join key) and fell back to an
	// in-memory join above the build cap. Non-zero means pathological
	// skew worth knowing about.
	HotKeyFallbacks int64
	// Ops lists per-operator actuals in completion (bottom-up) order.
	Ops []OpStat
}

// Run executes the plan and returns the result as an in-memory relation
// together with execution statistics. Intermediate tables are dropped
// before returning.
func (e *Engine) Run(p *plan.Node, resolve Resolver) (*relation.Relation, RunStats, error) {
	if err := plan.Validate(p); err != nil {
		return nil, RunStats{}, err
	}
	start := time.Now()
	before := e.Pool.Stats()
	st := &RunStats{}
	// finish stamps Wall and IO on every exit, error paths included, so
	// callers always see the true partial work.
	finish := func() {
		st.Wall = time.Since(start)
		st.IO = e.Pool.Stats().Sub(before)
	}
	out, _, err := e.exec(p, resolve, st)
	if err != nil {
		finish()
		return nil, *st, err
	}
	rel, err := ReadRelation(out)
	if err != nil {
		err = errors.Join(err, out.Drop())
		finish()
		return nil, *st, err
	}
	if err := out.Drop(); err != nil {
		finish()
		return nil, *st, err
	}
	finish()
	st.RowsOut = int64(rel.Len())
	return rel, *st, nil
}

// exec evaluates one node, recording its OpStat. The returned duration is
// the node's inclusive wall time (children included); parents subtract it
// so that recorded OpStat.Wall is exclusive self time. The returned table
// is temporary unless it is a base table.
func (e *Engine) exec(p *plan.Node, resolve Resolver, st *RunStats) (*Table, time.Duration, error) {
	start := time.Now()
	out, childWall, err := e.execOp(p, resolve, st)
	incl := time.Since(start)
	if err == nil && out != nil {
		self := incl - childWall
		if self < 0 {
			self = 0
		}
		st.Ops = append(st.Ops, OpStat{
			Desc: opDesc(p),
			Rows: out.Heap.NumTuples(),
			Wall: self,
		})
	}
	return out, incl, err
}

// opDesc renders a short operator description for OpStat.
func opDesc(p *plan.Node) string {
	switch p.Op {
	case plan.OpScan:
		return "Scan(" + p.Table + ")"
	case plan.OpSelect:
		return "Select"
	case plan.OpJoin:
		return "ProductJoin"
	case plan.OpGroupBy:
		return "GroupBy"
	default:
		return p.Op.String()
	}
}

// execOp dispatches one operator. The returned duration sums the
// inclusive wall time of the operator's direct children, letting exec
// compute exclusive self time.
func (e *Engine) execOp(p *plan.Node, resolve Resolver, st *RunStats) (*Table, time.Duration, error) {
	st.Operators++
	switch p.Op {
	case plan.OpScan:
		out, err := resolve(p.Table)
		return out, 0, err
	case plan.OpSelect:
		in, childWall, err := e.exec(p.Left, resolve, st)
		if err != nil {
			return nil, childWall, err
		}
		out, err := e.selectOp(in, p.Pred, st)
		dropInput(in, err == nil)
		return out, childWall, err
	case plan.OpJoin:
		l, lWall, err := e.exec(p.Left, resolve, st)
		if err != nil {
			return nil, lWall, err
		}
		r, rWall, err := e.exec(p.Right, resolve, st)
		if err != nil {
			l.Drop()
			return nil, lWall + rWall, err
		}
		var out *Table
		if e.SortJoin {
			out, err = e.sortMergeJoin(l, r, st)
		} else {
			out, err = e.hashJoin(l, r, st)
		}
		dropInput(l, err == nil)
		dropInput(r, err == nil)
		return out, lWall + rWall, err
	case plan.OpGroupBy:
		if fused, childWall, err := e.tryFuse(p, resolve, st); err != nil || fused != nil {
			return fused, childWall, err
		}
		in, childWall, err := e.exec(p.Left, resolve, st)
		if err != nil {
			return nil, childWall, err
		}
		var out *Table
		if e.SortGroupBy {
			out, err = e.sortGroupBy(in, p.GroupVars, st)
		} else {
			out, err = e.hashGroupBy(in, p.GroupVars, st)
		}
		dropInput(in, err == nil)
		return out, childWall, err
	default:
		return nil, 0, fmt.Errorf("exec: unknown op %v", p.Op)
	}
}

// dropInput releases an operator input if it was temporary. When the
// operator already failed, the drop error is ignored in favor of the
// original failure.
func dropInput(t *Table, report bool) {
	if t == nil {
		return
	}
	if err := t.Drop(); err != nil && report {
		// Temp-table cleanup failures are not fatal to the query result;
		// the heap is memory- or temp-file-backed and will be reclaimed.
		_ = err
	}
}

// newTemp creates a temporary output table with the given schema.
func (e *Engine) newTemp(name string, attrs []relation.Attr) (*Table, error) {
	h, err := storage.NewTempHeap(e.Pool, e.Factory, len(attrs))
	if err != nil {
		return nil, err
	}
	return &Table{Name: name, Attrs: attrs, Heap: h, temp: true}, nil
}

// hashKey encodes the values of cols into a map key.
func hashKey(vals []int32, cols []int, buf []byte) string {
	for i, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[c]))
	}
	return string(buf[:4*len(cols)])
}

// selectOp filters the input by the equality predicate, using a hash
// index when one covers a predicate variable and falling back to a scan.
func (e *Engine) selectOp(in *Table, pred relation.Predicate, st *RunStats) (*Table, error) {
	if len(in.Indexes) > 0 {
		out, err := e.indexedSelect(in, pred, st)
		if err != nil {
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
	cols := make([]int, 0, len(pred))
	want := make([]int32, 0, len(pred))
	for v, val := range pred {
		c := in.ColIndex(v)
		if c < 0 {
			return nil, fmt.Errorf("exec: selection variable %s not in %s", v, in.Name)
		}
		cols = append(cols, c)
		want = append(want, val)
	}
	out, err := e.newTemp("σ("+in.Name+")", in.Attrs)
	if err != nil {
		return nil, err
	}
	it := in.Heap.Scan()
	defer it.Close()
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		match := true
		for i, c := range cols {
			if vals[c] != want[i] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		if err := out.Heap.Append(vals, m); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	if err := it.Err(); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// joinSchema computes shared columns and the output schema of l ⋈* r.
func joinSchema(l, r *Table) (lCols, rCols, rExtra []int, outAttrs []relation.Attr, err error) {
	shared := l.Vars().Intersect(r.Vars()).Sorted()
	lCols = make([]int, len(shared))
	rCols = make([]int, len(shared))
	for i, v := range shared {
		lc, rc := l.ColIndex(v), r.ColIndex(v)
		if l.Attrs[lc].Domain != r.Attrs[rc].Domain {
			return nil, nil, nil, nil, fmt.Errorf("exec: join %s/%s: domain mismatch on %s", l.Name, r.Name, v)
		}
		lCols[i], rCols[i] = lc, rc
	}
	outAttrs = append([]relation.Attr(nil), l.Attrs...)
	for i, a := range r.Attrs {
		if l.ColIndex(a.Name) < 0 {
			outAttrs = append(outAttrs, a)
			rExtra = append(rExtra, i)
		}
	}
	return lCols, rCols, rExtra, outAttrs, nil
}

// buildRow is one hash-table entry of a hash join's build side.
type buildRow struct {
	vals    []int32
	measure float64
}

// hashJoin implements the product join by building an in-memory hash
// table on the smaller input and probing with the larger; when even the
// smaller input exceeds the build cap, the Grace partitioned strategy is
// used instead (classic hybrid behaviour for disk-resident operands).
func (e *Engine) hashJoin(l, r *Table, st *RunStats) (*Table, error) {
	lCols, rCols, rExtra, outAttrs, err := joinSchema(l, r)
	if err != nil {
		return nil, err
	}
	out, err := e.newTemp("("+l.Name+"⋈*"+r.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	smaller := l.Heap.NumTuples()
	if r.Heap.NumTuples() < smaller {
		smaller = r.Heap.NumTuples()
	}
	if smaller > e.maxBuild() && len(lCols) > 0 {
		if err := e.graceJoin(l, r, lCols, rCols, rExtra, out, 0, st); err != nil {
			out.Drop()
			return nil, err
		}
		return out, nil
	}
	if err := e.hashJoinInto(l, r, lCols, rCols, rExtra, out, st); err != nil {
		out.Drop()
		return nil, err
	}
	return out, nil
}

// hashJoinInto performs an in-memory-build hash join of l and r,
// appending result tuples to out. It is safe to run concurrently with
// other appenders to the same out (Grace partition pairs do): appends go
// through out.LockedAppend and shared counters are merged atomically.
func (e *Engine) hashJoinInto(l, r *Table, lCols, rCols, rExtra []int, out *Table, st *RunStats) error {
	build, probe := l, r
	buildCols, probeCols := lCols, rCols
	buildIsLeft := true
	if r.Heap.NumTuples() < l.Heap.NumTuples() {
		build, probe = r, l
		buildCols, probeCols = rCols, lCols
		buildIsLeft = false
	}

	ht := make(map[string][]buildRow, build.Heap.NumTuples())
	bit := build.Heap.Scan()
	keyBuf := make([]byte, 4*len(buildCols))
	for {
		vals, m, ok := bit.Next()
		if !ok {
			break
		}
		k := hashKey(vals, buildCols, keyBuf)
		ht[k] = append(ht[k], buildRow{vals: append([]int32(nil), vals...), measure: m})
	}
	if err := bit.Close(); err != nil {
		return err
	}

	var tmp int64
	defer func() { st.addTempTuples(tmp) }()
	rowBuf := make([]int32, len(out.Attrs))
	emit := func(lv []int32, lm float64, rv []int32, rm float64) error {
		copy(rowBuf, lv)
		for i, c := range rExtra {
			rowBuf[len(l.Attrs)+i] = rv[c]
		}
		tmp++
		return out.LockedAppend(rowBuf, e.Sr.Mul(lm, rm))
	}

	pit := probe.Heap.Scan()
	defer pit.Close()
	for {
		vals, m, ok := pit.Next()
		if !ok {
			break
		}
		k := hashKey(vals, probeCols, keyBuf)
		for _, b := range ht[k] {
			var err error
			if buildIsLeft {
				err = emit(b.vals, b.measure, vals, m)
			} else {
				err = emit(vals, m, b.vals, b.measure)
			}
			if err != nil {
				return err
			}
		}
	}
	return pit.Err()
}

// hashGroupBy implements marginalization with in-memory hash aggregation.
type aggEntry struct {
	vals    []int32
	measure float64
}

// groupSchema resolves the group variables to column indexes and the
// aggregate output schema.
func groupSchema(in *Table, groupVars []string) (cols []int, outAttrs []relation.Attr, err error) {
	cols = make([]int, len(groupVars))
	outAttrs = make([]relation.Attr, len(groupVars))
	for i, v := range groupVars {
		c := in.ColIndex(v)
		if c < 0 {
			return nil, nil, fmt.Errorf("exec: group variable %s not in %s", v, in.Name)
		}
		cols[i] = c
		outAttrs[i] = in.Attrs[c]
	}
	return cols, outAttrs, nil
}

// aggregate runs one in-memory hash-aggregation pass over in, returning
// the groups keyed by encoded group values together with their first-seen
// order (scan order, for determinism).
func (e *Engine) aggregate(in *Table, cols []int) (order []string, groups map[string]*aggEntry, err error) {
	groups = make(map[string]*aggEntry)
	order = make([]string, 0, 1024)
	it := in.Heap.Scan()
	keyBuf := make([]byte, 4*len(cols))
	for {
		vals, m, ok := it.Next()
		if !ok {
			break
		}
		k := hashKey(vals, cols, keyBuf)
		g, seen := groups[k]
		if !seen {
			gv := make([]int32, len(cols))
			for i, c := range cols {
				gv[i] = vals[c]
			}
			groups[k] = &aggEntry{vals: gv, measure: m}
			order = append(order, k)
			continue
		}
		g.measure = e.Sr.Add(g.measure, m)
	}
	if err := it.Close(); err != nil {
		return nil, nil, err
	}
	return order, groups, nil
}

func (e *Engine) hashGroupBy(in *Table, groupVars []string, st *RunStats) (*Table, error) {
	cols, outAttrs, err := groupSchema(in, groupVars)
	if err != nil {
		return nil, err
	}
	if e.workers() > 1 && len(cols) > 0 && in.Heap.NumTuples() >= e.parallelGroupByMin() {
		return e.parallelHashGroupBy(in, cols, outAttrs, st)
	}
	order, groups, err := e.aggregate(in, cols)
	if err != nil {
		return nil, err
	}
	out, err := e.newTemp("γ("+in.Name+")", outAttrs)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		g := groups[k]
		if err := out.Heap.Append(g.vals, g.measure); err != nil {
			out.Drop()
			return nil, err
		}
		st.TempTuples++
	}
	return out, nil
}
