package exec

import (
	"math/rand"
	"testing"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// benchRel builds a rows-tuple functional relation over (X, Y) with Y
// ranging over 64 values, so a GroupBy on X marginalizes 64-wide groups.
func benchRel(name string, rows int) *relation.Relation {
	attrs := []relation.Attr{
		{Name: "X", Domain: rows/64 + 1},
		{Name: "Y", Domain: 64},
	}
	r := relation.MustNew(name, attrs)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < rows; i++ {
		r.MustAppend([]int32{int32(i / 64), int32(i % 64)}, 0.1+rng.Float64())
	}
	return r
}

// benchJoinRels builds two equally sized relations sharing (X, Y), so
// their product join matches row for row — the Grace join's worst case
// for per-tuple overhead (every probe hits).
func benchJoinRels(rows int) (*relation.Relation, *relation.Relation) {
	l := benchRel("l", rows)
	r := relation.MustNew("r", l.Attrs())
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < l.Len(); i++ {
		r.MustAppend(l.Row(i), 0.1+rng.Float64())
	}
	return l, r
}

// runPlanBench measures one plan execution per iteration on a warm pool,
// reporting physical pages read per op alongside the standard metrics.
func runPlanBench(b *testing.B, h *harness, p planNodeFunc) {
	b.Helper()
	b.ReportAllocs()
	var reads, writes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := h.pool.Stats()
		rel, _, err := h.engine.Run(p(), MapResolver(h.tables))
		if err != nil {
			b.Fatal(err)
		}
		_ = rel
		d := h.pool.Stats().Sub(before)
		reads += d.Reads
		writes += d.Writes
	}
	b.StopTimer()
	b.ReportMetric(float64(reads)/float64(b.N), "pages-read/op")
	b.ReportMetric(float64(writes)/float64(b.N), "pages-written/op")
}

// planNodeFunc builds a fresh plan node per iteration (plans are cheap;
// rebuilding avoids any cross-iteration plan-node state).
type planNodeFunc = func() *plan.Node

// batchModes is the tuple-vs-batch sweep every batch benchmark runs.
var batchModes = []struct {
	name string
	size int
}{
	{"tuple", 1},
	{"batch", 0},
}

// BenchmarkBatchScan compares tuple-at-a-time and batch execution of a
// bare table scan — the floor of the batching win: per-page pin/decode
// against per-tuple.
func BenchmarkBatchScan(b *testing.B) {
	rel := benchRel("t", 20000)
	for _, mode := range batchModes {
		b.Run(mode.name, func(b *testing.B) {
			h := newHarness(b, 4096, rel)
			h.engine.BatchSize = mode.size
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				p, err := pb.Scan("t")
				if err != nil {
					b.Fatal(err)
				}
				return p
			})
		})
	}
}

// BenchmarkBatchGraceJoin compares the modes on a forced Grace join
// (partition both sides, join partition pairs) where every probe
// matches.
func BenchmarkBatchGraceJoin(b *testing.B) {
	l, r := benchJoinRels(20000)
	for _, mode := range batchModes {
		b.Run(mode.name, func(b *testing.B) {
			h := newHarness(b, 4096, l, r)
			h.engine.BatchSize = mode.size
			h.engine.HashJoinMaxBuild = 2048
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				sl, err := pb.Scan("l")
				if err != nil {
					b.Fatal(err)
				}
				sr, err := pb.Scan("r")
				if err != nil {
					b.Fatal(err)
				}
				return pb.Join(sl, sr)
			})
		})
	}
}

// BenchmarkBatchGroupBy compares the modes on a marginalizing hash
// group-by collapsing 64-wide groups.
func BenchmarkBatchGroupBy(b *testing.B) {
	rel := benchRel("t", 20000)
	for _, mode := range batchModes {
		b.Run(mode.name, func(b *testing.B) {
			h := newHarness(b, 4096, rel)
			h.engine.BatchSize = mode.size
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				s, err := pb.Scan("t")
				if err != nil {
					b.Fatal(err)
				}
				g, err := pb.GroupBy(s, []string{"X"})
				if err != nil {
					b.Fatal(err)
				}
				return g
			})
		})
	}
}
