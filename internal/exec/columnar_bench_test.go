package exec

import (
	"math/rand"
	"testing"

	"mpf/internal/plan"
	"mpf/internal/relation"
)

// benchColRel builds a small-domain relation sized to span many full
// (hence encodable) pages: every attribute dictionary- or run-length
// encodes, the workload the columnar layout targets.
func benchColRel(name string, rows int) *relation.Relation {
	attrs := []relation.Attr{
		{Name: "X", Domain: rows/128 + 1},
		{Name: "Y", Domain: 16},
		{Name: "Z", Domain: 8},
	}
	r := relation.MustNew(name, attrs)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < rows; i++ {
		// Unique keys decomposing i: X advances every 128 rows (long RLE
		// runs), Y cycles in runs of 8 (short RLE runs), Z cycles per row
		// (byte segment).
		r.MustAppend([]int32{int32(i / 128), int32(i / 8 % 16), int32(i % 8)}, 0.1+rng.Float64())
	}
	return r
}

// columnarModes is the row-major-vs-columnar sweep every columnar
// benchmark runs; both sides use batch execution so the delta isolates
// the encoding, not vectorization.
var columnarModes = []struct {
	name     string
	columnar bool
}{
	{"rowmajor", false},
	{"columnar", true},
}

// colHarness loads rels with the requested page layout and switches the
// engine's encoded kernels to match.
func colHarness(b *testing.B, frames int, columnar bool, rels ...*relation.Relation) *harness {
	b.Helper()
	if !columnar {
		return newHarness(b, frames, rels...)
	}
	return columnarHarness(b, frames, rels...)
}

// BenchmarkColumnarScan measures a selective scan (σ then full read):
// the predicate is checked per RLE run / per dictionary code instead of
// per row.
func BenchmarkColumnarScan(b *testing.B) {
	rel := benchColRel("t", 40000)
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, rel)
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				s, err := pb.Scan("t")
				if err != nil {
					b.Fatal(err)
				}
				sel, err := pb.Select(s, relation.Predicate{"Z": 3})
				if err != nil {
					b.Fatal(err)
				}
				return sel
			})
		})
	}
}

// BenchmarkColumnarJoin measures a hash join probing on a single
// byte-coded key: the probe side resolves each distinct code once per
// batch through the memo instead of one keyIndex lookup per row. The
// build side covers a quarter of the key domain, so most probes miss —
// the case where lookup cost (not output writing) dominates.
func BenchmarkColumnarJoin(b *testing.B) {
	l := benchColRel("l", 40000)
	r := relation.MustNew("r", []relation.Attr{{Name: "Y", Domain: 16}, {Name: "W", Domain: 4}})
	rng := rand.New(rand.NewSource(19))
	for y := 0; y < 4; y++ {
		for w := 0; w < 4; w++ {
			r.MustAppend([]int32{int32(y), int32(w)}, 0.1+rng.Float64())
		}
	}
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, l, r)
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				sl, err := pb.Scan("l")
				if err != nil {
					b.Fatal(err)
				}
				sr, err := pb.Scan("r")
				if err != nil {
					b.Fatal(err)
				}
				return pb.Join(sl, sr)
			})
		})
	}
}

// BenchmarkColumnarJoinMultiCol measures the documented worst case of
// the encoded probe: a TWO-column join key where every probe row matches,
// so per-row key assembly and output writing dominate and the encoding
// buys no selectivity. The kernel composes spans from aligned RLE runs
// (one probe per span) and assembles output rows without gathering the
// full probe row.
func BenchmarkColumnarJoinMultiCol(b *testing.B) {
	l := benchColRel("l", 40000)
	// r covers the full (X mod 64, Y) key space, so every probe matches.
	r := relation.MustNew("r", []relation.Attr{{Name: "X", Domain: 40000/128 + 1}, {Name: "Y", Domain: 16}, {Name: "W", Domain: 4}})
	rng := rand.New(rand.NewSource(23))
	for x := 0; x < 40000/128+1; x++ {
		for y := 0; y < 16; y++ {
			r.MustAppend([]int32{int32(x), int32(y), int32((x + y) % 4)}, 0.1+rng.Float64())
		}
	}
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, l, r)
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				sl, err := pb.Scan("l")
				if err != nil {
					b.Fatal(err)
				}
				sr, err := pb.Scan("r")
				if err != nil {
					b.Fatal(err)
				}
				return pb.Join(sl, sr)
			})
		})
	}
}

// BenchmarkColumnarSort measures sort-based aggregation on the clustered
// leading key: its RLE runs become pre-sorted blocks, so columnar run
// generation stable-sorts O(blocks) descriptors and memmoves whole
// blocks instead of comparing rows O(n log n) times.
func BenchmarkColumnarSort(b *testing.B) {
	rel := benchColRel("t", 40000)
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, rel)
			h.engine.SortGroupBy = true
			h.engine.SortRunTuples = 65536
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				s, err := pb.Scan("t")
				if err != nil {
					b.Fatal(err)
				}
				g, err := pb.GroupBy(s, []string{"X"})
				if err != nil {
					b.Fatal(err)
				}
				return g
			})
		})
	}
}

// BenchmarkColumnarFusedJoinGroupBy measures the fused columnar
// join+aggregate: probe pages stay encoded end to end — per-run build
// probes, per-code group-slot memos, and run-level measure folds — and
// the join output is never materialized.
func BenchmarkColumnarFusedJoinGroupBy(b *testing.B) {
	l := benchColRel("l", 40000)
	r := relation.MustNew("r", []relation.Attr{{Name: "Y", Domain: 16}, {Name: "W", Domain: 4}})
	rng := rand.New(rand.NewSource(29))
	for y := 0; y < 16; y++ {
		r.MustAppend([]int32{int32(y), int32(y % 4)}, 0.1+rng.Float64())
	}
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, l, r)
			h.engine.FuseJoinGroupBy = true
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				sl, err := pb.Scan("l")
				if err != nil {
					b.Fatal(err)
				}
				sr, err := pb.Scan("r")
				if err != nil {
					b.Fatal(err)
				}
				g, err := pb.GroupBy(pb.Join(sl, sr), []string{"W"})
				if err != nil {
					b.Fatal(err)
				}
				return g
			})
		})
	}
}

// BenchmarkColumnarGroupBy measures hash aggregation on a byte-coded
// group key: one keyIndex lookup per distinct code per batch instead of
// one per row.
func BenchmarkColumnarGroupBy(b *testing.B) {
	rel := benchColRel("t", 40000)
	for _, mode := range columnarModes {
		b.Run(mode.name, func(b *testing.B) {
			h := colHarness(b, 8192, mode.columnar, rel)
			pb := h.builder()
			runPlanBench(b, h, func() *plan.Node {
				s, err := pb.Scan("t")
				if err != nil {
					b.Fatal(err)
				}
				g, err := pb.GroupBy(s, []string{"Z"})
				if err != nil {
					b.Fatal(err)
				}
				return g
			})
		})
	}
}
