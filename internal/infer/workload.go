package infer

import (
	"fmt"
	"math/rand"

	"mpf/internal/graph"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// BuildBestVECache searches for a VE-cache that minimizes the §6 workload
// objective C(S) + E[cost(Q(q,S))]: it builds candidate caches from
// several elimination orders — min-fill, min-degree, and `extraRandom`
// random permutations — evaluates each against the workload, and returns
// the cheapest. Every candidate satisfies the Definition 5 invariant, so
// the choice only affects cost, never correctness.
func BuildBestVECache(sr semiring.Semiring, rels []*relation.Relation, workload []WorkloadQuery, extraRandom int, rng *rand.Rand) (*Cache, float64, error) {
	if len(workload) == 0 {
		return nil, 0, fmt.Errorf("infer: empty workload")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	schemas := make([]relation.VarSet, len(rels))
	for i, r := range rels {
		schemas[i] = r.Vars()
	}
	g := graph.VariableGraph(schemas)

	var orders [][]string
	orders = append(orders, graph.MinFillOrder(g))
	orders = append(orders, minDegreeOrder(g))
	base := g.Vertices()
	for i := 0; i < extraRandom; i++ {
		perm := append([]string(nil), base...)
		rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		orders = append(orders, perm)
	}

	var best *Cache
	bestCost := 0.0
	for _, order := range orders {
		cache, err := BuildVECache(sr, rels, order)
		if err != nil {
			return nil, 0, err
		}
		c, err := cache.WorkloadCost(workload)
		if err != nil {
			// A cache that cannot answer part of the workload (variable
			// eliminated into no surviving table) is not a candidate.
			continue
		}
		if best == nil || c < bestCost {
			best, bestCost = cache, c
		}
	}
	if best == nil {
		return nil, 0, fmt.Errorf("infer: no candidate cache can answer the workload")
	}
	return best, bestCost, nil
}

// minDegreeOrder eliminates the vertex with the fewest remaining
// neighbors first — the classic min-degree triangulation heuristic.
func minDegreeOrder(g *graph.Undirected) []string {
	work := g.Clone()
	var order []string
	for {
		vs := work.Vertices()
		if len(vs) == 0 {
			return order
		}
		best := vs[0]
		for _, v := range vs[1:] {
			if work.Degree(v) < work.Degree(best) {
				best = v
			}
		}
		order = append(order, best)
		ns := work.Neighbors(best)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				work.AddEdge(ns[i], ns[j])
			}
		}
		work.RemoveVertex(best)
	}
}
