// Package infer implements the paper's workload optimization machinery
// (§6, Appendix A): Belief Propagation as a semijoin program over an
// acyclic schema (Algorithm 4), the Junction Tree transformation that
// makes cyclic schemas acyclic (Algorithm 5), and the VE-cache algorithm
// (Algorithm 3) that materializes a set of views satisfying the workload
// correctness invariant (Definition 5), enabling single-variable MPF
// queries to be answered from small cached tables.
package infer

import (
	"fmt"
	"math"

	"mpf/internal/graph"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// Step records one semijoin operation of a BP program, for display in the
// style of Figures 11 and 12.
type Step struct {
	// Target and Source are indices into the relation list.
	Target, Source int
	// Update distinguishes the backward pass (⋉, update semijoin) from
	// the forward pass (⋉*, product semijoin).
	Update bool
}

// String renders the step like the paper's figures.
func (s Step) String() string {
	if s.Update {
		return fmt.Sprintf("t%d ⋉ t%d", s.Target+1, s.Source+1)
	}
	return fmt.Sprintf("t%d ⋉* t%d", s.Target+1, s.Source+1)
}

// BPResult holds the updated relations of a Belief Propagation run and
// the semijoin program that produced them.
type BPResult struct {
	Relations []*relation.Relation
	Program   []Step
	Tree      *graph.JunctionTree
}

// BeliefPropagation runs the two-pass message-passing semijoin program of
// Algorithm 4 over an acyclic schema. The input relations are not
// modified; updated copies are returned.
//
// Correctness requires that absorption follow a join tree of the schema:
// a table ordering alone (as in the paper's chain example, Figure 11) is
// only safe when every table shares variables with at most one later
// table. BeliefPropagation therefore builds a join tree (maximum-weight
// spanning forest on shared-variable counts, Theorem 7), processes
// children before parents in the forward pass, and reverses the flow in
// the backward pass. After the run every relation satisfies the workload
// correctness invariant of Definition 5 (Theorem 6).
//
// The schema must be acyclic (IsAcyclicSchema); cyclic schemas would
// double-count measures (Appendix A's Stdeals example) and are rejected —
// apply JunctionTreeSchema first.
func BeliefPropagation(sr semiring.Semiring, rels []*relation.Relation) (*BPResult, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("infer: no relations")
	}
	if _, ok := sr.(semiring.Divider); !ok {
		return nil, fmt.Errorf("infer: semiring %s does not support division; belief propagation needs update semijoins", sr.Name())
	}
	schemas := make([]relation.VarSet, len(rels))
	for i, r := range rels {
		schemas[i] = r.Vars()
	}
	if !graph.IsAcyclicSchema(schemas) {
		return nil, fmt.Errorf("infer: schema is cyclic; run the junction tree algorithm first")
	}
	jt, err := graph.BuildJunctionTree(schemas)
	if err != nil {
		return nil, fmt.Errorf("infer: schema has no join tree: %w", err)
	}

	out := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		out[i] = r.Clone()
	}
	order, parent := rootedPostOrder(jt)
	res := &BPResult{Relations: out, Tree: jt}

	// Forward (collect) pass: each node absorbs from its children, which
	// precede it in post-order.
	for _, j := range order {
		for _, c := range childrenOf(parent, j) {
			if len(out[j].Vars().Intersect(out[c].Vars())) == 0 {
				continue
			}
			upd, err := relation.ProductSemijoin(sr, out[j], out[c])
			if err != nil {
				return nil, err
			}
			upd.SetName(out[j].Name())
			out[j] = upd
			res.Program = append(res.Program, Step{Target: j, Source: c})
		}
	}
	// Backward (distribute) pass: children absorb from their parent via
	// update semijoins, parents first.
	for k := len(order) - 1; k >= 0; k-- {
		j := order[k]
		for _, c := range childrenOf(parent, j) {
			if len(out[j].Vars().Intersect(out[c].Vars())) == 0 {
				continue
			}
			upd, err := relation.UpdateSemijoin(sr, out[c], out[j])
			if err != nil {
				return nil, err
			}
			upd.SetName(out[c].Name())
			out[c] = upd
			res.Program = append(res.Program, Step{Target: c, Source: j, Update: true})
		}
	}
	return res, nil
}

// rootedPostOrder roots every component of the forest at its
// highest-index node and returns a post-order (children before parents)
// along with the parent array (-1 for roots).
func rootedPostOrder(jt *graph.JunctionTree) (order []int, parent []int) {
	n := jt.NumNodes()
	adj := jt.AdjacencyList()
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	for root := n - 1; root >= 0; root-- {
		if parent[root] != -2 {
			continue
		}
		parent[root] = -1
		// Iterative DFS post-order.
		type frame struct {
			node, next int
		}
		stack := []frame{{root, 0}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			kids := adj[f.node]
			advanced := false
			for f.next < len(kids) {
				c := kids[f.next]
				f.next++
				if parent[c] == -2 {
					parent[c] = f.node
					stack = append(stack, frame{c, 0})
					advanced = true
					break
				}
			}
			if !advanced {
				order = append(order, f.node)
				stack = stack[:len(stack)-1]
			}
		}
	}
	return order, parent
}

// childrenOf lists the nodes whose parent is j, in increasing order.
func childrenOf(parent []int, j int) []int {
	var out []int
	for c, p := range parent {
		if p == j {
			out = append(out, c)
		}
	}
	return out
}

// CheckInvariant verifies Definition 5 against the ground truth: for
// every relation s in updated and every variable X of s, marginalizing s
// onto X must equal marginalizing the full joint (product join of the
// original base relations) onto X. Intended for tests and assertions on
// small instances.
func CheckInvariant(sr semiring.Semiring, base, updated []*relation.Relation, tol float64) error {
	joint, err := relation.ProductJoinAll(sr, base...)
	if err != nil {
		return err
	}
	for _, s := range updated {
		for _, x := range s.Vars().Sorted() {
			got, err := relation.Marginalize(sr, s, []string{x})
			if err != nil {
				return err
			}
			want, err := relation.Marginalize(sr, joint, []string{x})
			if err != nil {
				return err
			}
			if !relation.Equal(got, want, sr.Zero(), tol) {
				return fmt.Errorf("infer: invariant violated for %s on variable %s", s.Name(), x)
			}
		}
	}
	return nil
}

// maxCliqueRelationRows guards Junction Tree clique materialization.
const maxCliqueRelationRows = 50_000_000

// CliqueSchema is the output of the Junction Tree algorithm: an acyclic
// schema of clique relations equivalent to the original (cyclic) view.
type CliqueSchema struct {
	// Tree is the junction tree over the cliques.
	Tree *graph.JunctionTree
	// Relations holds one functional relation per clique, the product
	// join of the base relations assigned to it (Algorithm 5, step 5).
	Relations []*relation.Relation
	// Assignment maps base-relation index to clique index.
	Assignment []int
}

// JunctionTreeSchema implements Algorithm 5: build the variable graph,
// triangulate it with the given elimination order (nil selects min-fill),
// turn the maximal cliques into a new acyclic schema, assign each base
// relation to a clique containing its variables, and materialize each
// clique relation as the product join of its assigned relations, extended
// by unit measures over any clique variables its assigned relations do
// not cover.
func JunctionTreeSchema(sr semiring.Semiring, rels []*relation.Relation, order []string) (*CliqueSchema, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("infer: no relations")
	}
	schemas := make([]relation.VarSet, len(rels))
	domains := make(map[string]int)
	for i, r := range rels {
		schemas[i] = r.Vars()
		for _, a := range r.Attrs() {
			if d, ok := domains[a.Name]; ok && d != a.Domain {
				return nil, fmt.Errorf("infer: variable %s has conflicting domains %d and %d", a.Name, d, a.Domain)
			}
			domains[a.Name] = a.Domain
		}
	}
	jt, assign, err := graph.SchemaJunctionTree(schemas, order)
	if err != nil {
		return nil, err
	}
	out := &CliqueSchema{Tree: jt, Assignment: assign}
	for ci, clique := range jt.Cliques {
		var parts []*relation.Relation
		for ri, a := range assign {
			if a == ci {
				parts = append(parts, rels[ri])
			}
		}
		cr, err := materializeClique(sr, clique, parts, domains, ci)
		if err != nil {
			return nil, err
		}
		out.Relations = append(out.Relations, cr)
	}
	return out, nil
}

// materializeClique product-joins the assigned relations and extends the
// result with unit measures over missing clique variables.
func materializeClique(sr semiring.Semiring, clique relation.VarSet, parts []*relation.Relation, domains map[string]int, ci int) (*relation.Relation, error) {
	name := fmt.Sprintf("c%d", ci+1)
	var acc *relation.Relation
	var err error
	if len(parts) > 0 {
		acc, err = relation.ProductJoinAll(sr, parts...)
		if err != nil {
			return nil, err
		}
	}
	// Clique variables not covered by assigned relations get a complete
	// unit-measure relation (the multiplicative identity extension noted
	// in Definition 1's discussion).
	var missing []relation.Attr
	rows := 1.0
	for _, v := range clique.Sorted() {
		if acc != nil && acc.HasVar(v) {
			continue
		}
		d, ok := domains[v]
		if !ok {
			return nil, fmt.Errorf("infer: no domain known for clique variable %s", v)
		}
		missing = append(missing, relation.Attr{Name: v, Domain: d})
		rows *= float64(d)
	}
	if acc != nil {
		rows *= float64(acc.Len())
	}
	if rows > maxCliqueRelationRows || math.IsInf(rows, 1) {
		return nil, fmt.Errorf("infer: clique %s would materialize ~%.0f rows (limit %d)", name, rows, maxCliqueRelationRows)
	}
	if len(missing) > 0 {
		ones, err := relation.Complete(name+"_ones", missing, func([]int32) float64 { return sr.One() })
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = ones
		} else {
			acc, err = relation.ProductJoin(sr, acc, ones)
			if err != nil {
				return nil, err
			}
		}
	}
	acc.SetName(name)
	return acc, nil
}
