package infer

import (
	"fmt"
	"sort"

	"mpf/internal/graph"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// Cache is the output of the VE-cache optimization scheme (Algorithm 3):
// a set of materialized functional relations satisfying the workload
// correctness invariant of Definition 5, so any single-variable basic or
// restricted-answer MPF query over the original view can be answered from
// one (small) cached table.
type Cache struct {
	Sr semiring.Semiring
	// Tables are the cached relations t1..tk (Theorem 10: they form an
	// acyclic schema — the result of triangulating with the VE order).
	Tables []*relation.Relation
	// Order is the variable elimination order used.
	Order []string
	// reductions records, per cached table index j, the earlier cached
	// tables i whose reduced form fed the join that created t_j (the
	// GroupBy(t_i)-was-used-to-create-t_j relation of Algorithm 3).
	reductions map[int][]int
}

// Size returns the total number of cached tuples, the C(S) component of
// the workload objective.
func (c *Cache) Size() int {
	n := 0
	for _, t := range c.Tables {
		n += t.Len()
	}
	return n
}

// BuildVECache runs Algorithm 3 over the base relations:
//
//  1. create a no-query-variable VE plan and execute it, caching every
//     relation that precedes a GroupBy node (the elimination join
//     results), and
//  2. run the backward update-semijoin pass t_i ⋉ t_j for j = k..1 over
//     the "GroupBy(t_i) was used to create t_j" edges.
//
// order gives the elimination order; nil picks min-fill on the variable
// graph. The returned cache satisfies Definition 5 (Theorem 4).
func BuildVECache(sr semiring.Semiring, rels []*relation.Relation, order []string) (*Cache, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("infer: no relations")
	}
	if _, ok := sr.(semiring.Divider); !ok {
		return nil, fmt.Errorf("infer: semiring %s does not support division; VE-cache needs update semijoins", sr.Name())
	}
	if order == nil {
		schemas := make([]relation.VarSet, len(rels))
		for i, r := range rels {
			schemas[i] = r.Vars()
		}
		order = graph.MinFillOrder(graph.VariableGraph(schemas))
	}
	allVars := relation.NewVarSet()
	for _, r := range rels {
		allVars = allVars.Union(r.Vars())
	}
	if len(order) != len(allVars) {
		return nil, fmt.Errorf("infer: order has %d variables, view has %d", len(order), len(allVars))
	}
	for _, v := range order {
		if !allVars[v] {
			return nil, fmt.Errorf("infer: order variable %s not in view", v)
		}
	}

	c := &Cache{Sr: sr, Order: order, reductions: make(map[int][]int)}

	// Working set: each entry is a live relation plus the cache index it
	// was reduced from (-1 for base relations).
	type entry struct {
		rel  *relation.Relation
		from int
	}
	live := make([]entry, len(rels))
	for i, r := range rels {
		live[i] = entry{rel: r, from: -1}
	}

	for _, vj := range order {
		var rels2 []entry
		var rest []entry
		for _, e := range live {
			if e.rel.HasVar(vj) {
				rels2 = append(rels2, e)
			} else {
				rest = append(rest, e)
			}
		}
		if len(rels2) == 0 {
			continue
		}
		// Join all relations containing vj: this table precedes the
		// GroupBy node in the VE plan, so it is cached.
		parts := make([]*relation.Relation, len(rels2))
		for i, e := range rels2 {
			parts[i] = e.rel
		}
		var joined *relation.Relation
		if len(parts) == 1 {
			// Clone so renaming the cached table never mutates an input.
			joined = parts[0].Clone()
		} else {
			var err error
			joined, err = relation.ProductJoinAll(sr, parts...)
			if err != nil {
				return nil, err
			}
		}
		idx := len(c.Tables)
		joined.SetName(fmt.Sprintf("t%d", idx+1))
		c.Tables = append(c.Tables, joined)
		for _, e := range rels2 {
			if e.from >= 0 {
				c.reductions[idx] = append(c.reductions[idx], e.from)
			}
		}
		// Eliminate vj (and any variable appearing nowhere else), keeping
		// variables still needed by the rest of the view.
		needed := relation.NewVarSet()
		for _, e := range rest {
			needed = needed.Union(e.rel.Vars())
		}
		keep := joined.Vars().Intersect(needed).Minus(relation.NewVarSet(vj))
		reduced, err := relation.Marginalize(sr, joined, keep.Sorted())
		if err != nil {
			return nil, err
		}
		reduced.SetName(fmt.Sprintf("γ(t%d)", idx+1))
		if len(keep) > 0 {
			live = append(rest, entry{rel: reduced, from: idx})
		} else {
			live = rest
		}
	}

	// Backward pass (Algorithm 3, lines 3-7): for j = k..1, for each i<j
	// whose GroupBy fed t_j, update t_i with t_j's information.
	for j := len(c.Tables) - 1; j >= 0; j-- {
		for _, i := range c.reductions[j] {
			upd, err := relation.UpdateSemijoin(sr, c.Tables[i], c.Tables[j])
			if err != nil {
				return nil, err
			}
			upd.SetName(c.Tables[i].Name())
			c.Tables[i] = upd
		}
	}
	return c, nil
}

// Find returns the smallest cached table containing variable x.
func (c *Cache) Find(x string) (*relation.Relation, error) {
	var best *relation.Relation
	for _, t := range c.Tables {
		if !t.HasVar(x) {
			continue
		}
		if best == nil || t.Len() < best.Len() {
			best = t
		}
	}
	if best == nil {
		return nil, fmt.Errorf("infer: no cached table contains %s", x)
	}
	return best, nil
}

// Answer evaluates the single-variable basic MPF query "select x, AGG(f)
// group by x" against the cache: by the correctness invariant the
// marginal of any cached table containing x equals the view marginal.
func (c *Cache) Answer(x string) (*relation.Relation, error) {
	t, err := c.Find(x)
	if err != nil {
		return nil, err
	}
	return relation.Marginalize(c.Sr, t, []string{x})
}

// AnswerRestricted evaluates the restricted-answer form "select x, AGG(f)
// where x = val group by x" from the cache.
func (c *Cache) AnswerRestricted(x string, val int32) (*relation.Relation, error) {
	m, err := c.Answer(x)
	if err != nil {
		return nil, err
	}
	return relation.Select(m, relation.Predicate{x: val})
}

// ConstrainDomain implements the §6 protocol for adding constrained-
// domain queries to a cached workload: apply the selection predicate to
// every cache table containing the constrained variable, then perform
// reductions along the cache schema's join tree from the selected tables
// to every other table. It returns a NEW cache reflecting the constraint;
// the receiver is unchanged.
func (c *Cache) ConstrainDomain(pred relation.Predicate) (*Cache, error) {
	if len(pred) == 0 {
		return nil, fmt.Errorf("infer: empty predicate")
	}
	out := &Cache{Sr: c.Sr, Order: c.Order, reductions: c.reductions}
	out.Tables = make([]*relation.Relation, len(c.Tables))
	var sources []int
	for i, t := range c.Tables {
		p := make(relation.Predicate)
		for v, val := range pred {
			if t.HasVar(v) {
				p[v] = val
			}
		}
		if len(p) == 0 {
			out.Tables[i] = t.Clone()
			continue
		}
		s, err := relation.Select(t, p)
		if err != nil {
			return nil, err
		}
		s.SetName(t.Name())
		out.Tables[i] = s
		sources = append(sources, i)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("infer: predicate variables %v not in any cached table", predVars(pred))
	}
	// Propagate the constraint along the cache schema's join tree
	// (acyclic by Theorem 10): from each selected table, update semijoins
	// flow outward, carrying the reduced separator marginals to every
	// other cached table (Theorem 5). Note the cached tables are joint
	// marginals, not a factorization, so the reductions must be directed
	// update semijoins rather than a fresh BP run.
	schemas := make([]relation.VarSet, len(out.Tables))
	for i, t := range out.Tables {
		schemas[i] = t.Vars()
	}
	jt, err := graph.BuildJunctionTree(schemas)
	if err != nil {
		return nil, fmt.Errorf("infer: cache schema has no join tree: %w", err)
	}
	adj := jt.AdjacencyList()
	for _, src := range sources {
		if err := distributeFrom(c.Sr, out.Tables, adj, src); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// distributeFrom propagates table src's information outward along the
// join tree: each table absorbs its predecessor with an update semijoin,
// in BFS order away from src.
func distributeFrom(sr semiring.Semiring, tables []*relation.Relation, adj [][]int, src int) error {
	visited := make([]bool, len(tables))
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			if len(tables[nb].Vars().Intersect(tables[cur].Vars())) > 0 {
				upd, err := relation.UpdateSemijoin(sr, tables[nb], tables[cur])
				if err != nil {
					return err
				}
				upd.SetName(tables[nb].Name())
				tables[nb] = upd
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

func predVars(p relation.Predicate) []string {
	vs := make([]string, 0, len(p))
	for v := range p {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// WorkloadQuery is one query of an MPF workload: a single-variable basic
// or restricted-answer query with an occurrence probability.
type WorkloadQuery struct {
	Var  string
	Prob float64
	// Restricted, when non-nil, turns the query into the restricted-
	// answer form Var = *Restricted.
	Restricted *int32
}

// WorkloadCost evaluates the §6 objective C(S) + E[cost(Q(q,S))] for the
// cache: materialization cost is the total cached tuple count and each
// query's evaluation cost is the size of the cached table it reads.
func (c *Cache) WorkloadCost(queries []WorkloadQuery) (float64, error) {
	total := float64(c.Size())
	for _, q := range queries {
		t, err := c.Find(q.Var)
		if err != nil {
			return 0, err
		}
		total += q.Prob * float64(t.Len())
	}
	return total, nil
}

// CheckCacheInvariant verifies Definition 5 for the cache against the
// base relations; intended for tests on small instances.
func (c *Cache) CheckCacheInvariant(base []*relation.Relation, tol float64) error {
	return CheckInvariant(c.Sr, base, c.Tables, tol)
}
