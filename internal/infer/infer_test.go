package infer

import (
	"math/rand"
	"testing"

	"mpf/internal/gen"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// chainRelations builds the acyclic supply-chain-shaped base relations at
// toy size so the brute-force joint is computable.
func chainRelations(t *testing.T, seed int64) []*relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	meas := relation.UniformMeasure(0.5, 2)
	mk := func(name string, attrs []relation.Attr, density float64) *relation.Relation {
		r, err := relation.Random(rng, name, attrs, density, meas)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	pid := relation.Attr{Name: "pid", Domain: 4}
	sid := relation.Attr{Name: "sid", Domain: 3}
	wid := relation.Attr{Name: "wid", Domain: 3}
	cid := relation.Attr{Name: "cid", Domain: 3}
	tid := relation.Attr{Name: "tid", Domain: 2}
	return []*relation.Relation{
		mk("contracts", []relation.Attr{pid, sid}, 1),
		mk("location", []relation.Attr{pid, wid}, 1),
		mk("warehouses", []relation.Attr{wid, cid}, 1),
		mk("ctdeals", []relation.Attr{cid, tid}, 1),
		mk("transporters", []relation.Attr{tid}, 1),
	}
}

// cyclicRelations adds Stdeals(sid,tid), the Appendix A cyclic extension.
func cyclicRelations(t *testing.T, seed int64) []*relation.Relation {
	t.Helper()
	rels := chainRelations(t, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	st, err := relation.Random(rng, "stdeals",
		[]relation.Attr{{Name: "sid", Domain: 3}, {Name: "tid", Domain: 2}}, 1,
		relation.UniformMeasure(0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	return append(rels, st)
}

func TestBeliefPropagationInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := chainRelations(t, seed)
		res, err := BeliefPropagation(semiring.SumProduct, base)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckInvariant(semiring.SumProduct, base, res.Relations, 1e-9); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Program) == 0 {
			t.Fatal("no semijoin steps recorded")
		}
		// Inputs untouched.
		base2 := chainRelations(t, seed)
		for i := range base {
			if !relation.Equal(base[i], base2[i], 0, 0) {
				t.Fatalf("seed %d: BP mutated input relation %d", seed, i)
			}
		}
	}
}

func TestBeliefPropagationProgramShape(t *testing.T) {
	base := chainRelations(t, 3)
	res, err := BeliefPropagation(semiring.SumProduct, base)
	if err != nil {
		t.Fatal(err)
	}
	// A 5-node chain join tree has 4 edges → 8 semijoin steps (Figure 11).
	if len(res.Program) != 8 {
		t.Fatalf("program has %d steps, want 8:\n%v", len(res.Program), res.Program)
	}
	forward := 0
	for _, s := range res.Program {
		if !s.Update {
			forward++
		}
		if s.String() == "" {
			t.Fatal("empty step rendering")
		}
	}
	if forward != 4 {
		t.Fatalf("forward steps = %d, want 4", forward)
	}
}

func TestBeliefPropagationRejectsCyclicSchema(t *testing.T) {
	base := cyclicRelations(t, 4)
	if _, err := BeliefPropagation(semiring.SumProduct, base); err == nil {
		t.Fatal("cyclic schema must be rejected (Appendix A double-count example)")
	}
}

func TestBeliefPropagationRejectsNonDivisionSemiring(t *testing.T) {
	base := chainRelations(t, 5)
	if _, err := BeliefPropagation(semiring.BoolOrAnd, base); err == nil {
		t.Fatal("bool semiring has no division")
	}
}

func TestBeliefPropagationMinSum(t *testing.T) {
	base := chainRelations(t, 6)
	res, err := BeliefPropagation(semiring.MinSum, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariant(semiring.MinSum, base, res.Relations, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestJunctionTreeSchemaMakesCyclicAcyclic(t *testing.T) {
	base := cyclicRelations(t, 7)
	cs, err := JunctionTreeSchema(semiring.SumProduct, base, []string{"tid", "sid", "pid", "wid", "cid"})
	if err != nil {
		t.Fatal(err)
	}
	// The new schema is acyclic, so BP now succeeds and its updated
	// relations satisfy the invariant against the ORIGINAL base tables
	// (the clique relations represent the same joint function).
	res, err := BeliefPropagation(semiring.SumProduct, cs.Relations)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariant(semiring.SumProduct, base, res.Relations, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Every base relation was assigned to a containing clique.
	for i, a := range cs.Assignment {
		if !cs.Tree.Cliques[a].Contains(base[i].Vars()) {
			t.Fatalf("relation %d assigned to non-containing clique", i)
		}
	}
}

func TestJunctionTreeSchemaJointPreserved(t *testing.T) {
	base := cyclicRelations(t, 8)
	cs, err := JunctionTreeSchema(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJoint, err := relation.ProductJoinAll(semiring.SumProduct, base...)
	if err != nil {
		t.Fatal(err)
	}
	gotJoint, err := relation.ProductJoinAll(semiring.SumProduct, cs.Relations...)
	if err != nil {
		t.Fatal(err)
	}
	// Same function over the same variables (clique relations may be
	// incomplete only where base combinations are missing).
	if !relation.Equal(gotJoint, wantJoint, 0, 1e-9) {
		t.Fatal("clique schema changed the joint function")
	}
}

func TestJunctionTreeSchemaDomainConflict(t *testing.T) {
	a := relation.MustNew("a", []relation.Attr{{Name: "x", Domain: 2}})
	b := relation.MustNew("b", []relation.Attr{{Name: "x", Domain: 3}})
	if _, err := JunctionTreeSchema(semiring.SumProduct, []*relation.Relation{a, b}, nil); err == nil {
		t.Fatal("conflicting domains must be rejected")
	}
}

func TestVECacheInvariant(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := chainRelations(t, seed)
		cache, err := BuildVECache(semiring.SumProduct, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.CheckCacheInvariant(base, 1e-9); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cache.Size() == 0 {
			t.Fatal("cache is empty")
		}
	}
}

func TestVECachePaperOrder(t *testing.T) {
	base := chainRelations(t, 9)
	// The paper's Figure 5 elimination order (plus the remaining vars).
	cache, err := BuildVECache(semiring.SumProduct, base,
		[]string{"tid", "pid", "cid", "sid", "wid"})
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.CheckCacheInvariant(base, 1e-9); err != nil {
		t.Fatal(err)
	}
	// All five view variables are answerable.
	joint, _ := relation.ProductJoinAll(semiring.SumProduct, base...)
	for _, v := range []string{"pid", "sid", "wid", "cid", "tid"} {
		got, err := cache.Answer(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{v})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("cache answer for %s differs from view marginal", v)
		}
	}
}

func TestVECacheRestrictedAnswer(t *testing.T) {
	base := chainRelations(t, 10)
	cache, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	joint, _ := relation.ProductJoinAll(semiring.SumProduct, base...)
	got, err := cache.AnswerRestricted("wid", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"wid"})
	want, _ := relation.Select(m, relation.Predicate{"wid": 1})
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("restricted answer differs")
	}
}

// TestVECacheConstrainedDomain reproduces the §6 running example: after
// constraining tid=1, querying wid from the reduced cache must equal the
// view computed under the selection.
func TestVECacheConstrainedDomain(t *testing.T) {
	base := chainRelations(t, 11)
	cache, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := cache.ConstrainDomain(relation.Predicate{"tid": 1})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: select tid=1 on the base tables, then marginalize.
	sel := make([]*relation.Relation, len(base))
	for i, r := range base {
		sel[i] = r
		if r.HasVar("tid") {
			s, _ := relation.Select(r, relation.Predicate{"tid": 1})
			sel[i] = s
		}
	}
	joint, _ := relation.ProductJoinAll(semiring.SumProduct, sel...)
	for _, v := range []string{"wid", "cid", "pid", "sid"} {
		got, err := constrained.Answer(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{v})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("constrained answer for %s differs", v)
		}
	}
	// Original cache untouched.
	if err := cache.CheckCacheInvariant(base, 1e-9); err != nil {
		t.Fatal("ConstrainDomain mutated the original cache")
	}
}

func TestVECacheValidation(t *testing.T) {
	base := chainRelations(t, 12)
	if _, err := BuildVECache(semiring.SumProduct, nil, nil); err == nil {
		t.Fatal("empty relations should error")
	}
	if _, err := BuildVECache(semiring.BoolOrAnd, base, nil); err == nil {
		t.Fatal("non-divider semiring should error")
	}
	if _, err := BuildVECache(semiring.SumProduct, base, []string{"pid"}); err == nil {
		t.Fatal("short order should error")
	}
	if _, err := BuildVECache(semiring.SumProduct, base,
		[]string{"pid", "sid", "wid", "cid", "zzz"}); err == nil {
		t.Fatal("unknown order variable should error")
	}
	cache, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Answer("zzz"); err == nil {
		t.Fatal("unknown query variable should error")
	}
	if _, err := cache.ConstrainDomain(nil); err == nil {
		t.Fatal("empty predicate should error")
	}
	if _, err := cache.ConstrainDomain(relation.Predicate{"zzz": 0}); err == nil {
		t.Fatal("predicate on unknown variable should error")
	}
}

func TestVECacheOnCyclicViaJunctionTree(t *testing.T) {
	base := cyclicRelations(t, 13)
	cs, err := JunctionTreeSchema(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := BuildVECache(semiring.SumProduct, cs.Relations, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant against the ORIGINAL cyclic base relations.
	if err := cache.CheckCacheInvariant(base, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadCost(t *testing.T) {
	base := chainRelations(t, 14)
	cache, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	v := int32(1)
	cost, err := cache.WorkloadCost([]WorkloadQuery{
		{Var: "wid", Prob: 0.5},
		{Var: "tid", Prob: 0.3},
		{Var: "pid", Prob: 0.2, Restricted: &v},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= float64(cache.Size()) {
		t.Fatal("workload cost must exceed materialization cost alone")
	}
	if _, err := cache.WorkloadCost([]WorkloadQuery{{Var: "zz", Prob: 1}}); err == nil {
		t.Fatal("unknown workload variable should error")
	}
}

// TestVECacheSupplyChainGenerated exercises the cache on the gen package's
// supply chain (small scale) end to end.
func TestVECacheSupplyChainGenerated(t *testing.T) {
	ds, err := gen.SupplyChain(gen.SupplyChainConfig{Scale: 0.002, CtdealsDensity: 1, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := BuildVECache(semiring.SumProduct, ds.Relations, nil)
	if err != nil {
		t.Fatal(err)
	}
	joint, err := relation.ProductJoinAll(semiring.SumProduct, ds.Relations...)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.QueryVars {
		got, err := cache.Answer(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{v})
		if !relation.Equal(got, want, 0, 1e-6) {
			t.Fatalf("cache answer for %s wrong", v)
		}
	}
}
