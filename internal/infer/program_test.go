package infer

import (
	"strings"
	"testing"

	"mpf/internal/semiring"
)

// TestFigure11Program checks the BP semijoin program on the paper's
// acyclic supply-chain schema against the Figure 11 structure: with the
// chain t—ct—w—l—c, the forward pass performs one product semijoin per
// join-tree edge pulling information toward the root, and the backward
// pass mirrors each edge with an update semijoin in reverse order.
func TestFigure11Program(t *testing.T) {
	base := chainRelations(t, 101)
	// Index meanings: 0 contracts(c), 1 location(l), 2 warehouses(w),
	// 3 ctdeals(ct), 4 transporters(t). The variable chain is
	// sid–pid–wid–cid–tid, so the join tree is the path 0–1–2–3–4.
	res, err := BeliefPropagation(semiring.SumProduct, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program) != 8 {
		t.Fatalf("program has %d steps, want 8", len(res.Program))
	}
	forward := res.Program[:4]
	backward := res.Program[4:]
	// Forward steps are product semijoins, backward are update semijoins.
	for i, s := range forward {
		if s.Update {
			t.Fatalf("forward step %d is an update semijoin", i)
		}
	}
	for i, s := range backward {
		if !s.Update {
			t.Fatalf("backward step %d is not an update semijoin", i)
		}
	}
	// The edges of the two passes coincide (each edge propagates once in
	// each direction), and every path edge appears exactly once.
	edge := func(s Step) [2]int {
		a, b := s.Target, s.Source
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	fwd := map[[2]int]bool{}
	for _, s := range forward {
		fwd[edge(s)] = true
	}
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	for _, e := range wantEdges {
		if !fwd[e] {
			t.Fatalf("forward pass missing chain edge %v; program: %v", e, res.Program)
		}
	}
	for _, s := range backward {
		if !fwd[edge(s)] {
			t.Fatalf("backward step %v uses an edge the forward pass did not", s)
		}
	}
	// Backward directions oppose forward directions on every edge.
	dir := map[[2]int]int{}
	for _, s := range forward {
		dir[edge(s)] = s.Target
	}
	for _, s := range backward {
		if dir[edge(s)] == s.Target {
			t.Fatalf("backward step %v flows the same direction as forward", s)
		}
	}
	// The rendering matches the paper's ⋉*/⋉ notation.
	var names []string
	for _, s := range res.Program {
		names = append(names, s.String())
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "⋉*") || !strings.Contains(joined, "⋉ ") && !strings.HasSuffix(joined, "⋉ t") {
		if !strings.Contains(joined, "⋉") {
			t.Fatalf("program rendering missing semijoin symbols: %s", joined)
		}
	}
}
