package infer

import (
	"math/rand"
	"testing"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestBuildBestVECacheMinimizesObjective(t *testing.T) {
	base := chainRelations(t, 21)
	workload := []WorkloadQuery{
		{Var: "wid", Prob: 0.6},
		{Var: "tid", Prob: 0.4},
	}
	best, bestCost, err := BuildBestVECache(semiring.SumProduct, base, workload, 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || bestCost <= 0 {
		t.Fatal("no cache selected")
	}
	// The selected cache still satisfies the invariant ...
	if err := best.CheckCacheInvariant(base, 1e-9); err != nil {
		t.Fatal(err)
	}
	// ... and is no worse than the plain min-fill cache.
	plain, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	plainCost, err := plain.WorkloadCost(workload)
	if err != nil {
		t.Fatal(err)
	}
	if bestCost > plainCost {
		t.Fatalf("best cache (%v) worse than min-fill cache (%v)", bestCost, plainCost)
	}
	// Answers match the oracle.
	joint, _ := relation.ProductJoinAll(semiring.SumProduct, base...)
	for _, q := range workload {
		got, err := best.Answer(q.Var)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{q.Var})
		if !relation.Equal(got, want, 0, 1e-9) {
			t.Fatalf("best cache answer for %s wrong", q.Var)
		}
	}
}

func TestBuildBestVECacheValidation(t *testing.T) {
	base := chainRelations(t, 22)
	if _, _, err := BuildBestVECache(semiring.SumProduct, base, nil, 2, nil); err == nil {
		t.Fatal("empty workload should error")
	}
	if _, _, err := BuildBestVECache(semiring.SumProduct, base,
		[]WorkloadQuery{{Var: "zzz", Prob: 1}}, 2, nil); err == nil {
		t.Fatal("workload over unknown variable should error")
	}
}

func TestMinDegreeOrderCoversAllVariables(t *testing.T) {
	base := chainRelations(t, 23)
	schemas := make([]relation.VarSet, len(base))
	for i, r := range base {
		schemas[i] = r.Vars()
	}
	cache, err := BuildVECache(semiring.SumProduct, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = cache
	// minDegreeOrder is internal; exercise it through BuildBestVECache
	// with zero random orders (min-fill + min-degree only).
	_, _, err = BuildBestVECache(semiring.SumProduct, base,
		[]WorkloadQuery{{Var: "pid", Prob: 1}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
}
