package plan

import (
	"math/rand"
	"strings"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func testCatalog(t *testing.T) (*catalog.Catalog, map[string]*relation.Relation) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a, _ := relation.Random(rng, "a", []relation.Attr{{Name: "X", Domain: 4}, {Name: "Y", Domain: 3}}, 0.9, relation.UniformMeasure(0, 2))
	b, _ := relation.Random(rng, "b", []relation.Attr{{Name: "Y", Domain: 3}, {Name: "Z", Domain: 5}}, 0.9, relation.UniformMeasure(0, 2))
	cat := catalog.New()
	for _, r := range []*relation.Relation{a, b} {
		if err := cat.AddTable(catalog.AnalyzeRelation(r)); err != nil {
			t.Fatal(err)
		}
	}
	return cat, map[string]*relation.Relation{"a": a, "b": b}
}

func TestBuilderScan(t *testing.T) {
	cat, rels := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	n, err := b.Scan("a")
	if err != nil {
		t.Fatal(err)
	}
	if n.Op != OpScan || n.Table != "a" {
		t.Fatal("scan node malformed")
	}
	if n.Est.Card != float64(rels["a"].Len()) {
		t.Fatalf("card estimate %v, want %d", n.Est.Card, rels["a"].Len())
	}
	if !n.Vars().Equal(relation.NewVarSet("X", "Y")) {
		t.Fatalf("vars = %v", n.Vars().Sorted())
	}
	if _, err := b.Scan("nope"); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestBuilderSelectAndGroupByValidation(t *testing.T) {
	cat, _ := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	a, _ := b.Scan("a")
	if _, err := b.Select(a, relation.Predicate{"Q": 1}); err == nil {
		t.Fatal("selection on missing variable should error")
	}
	if _, err := b.GroupBy(a, []string{"Z"}); err == nil {
		t.Fatal("grouping on missing variable should error")
	}
	sel, err := b.Select(a, relation.Predicate{"X": 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Est.Card >= a.Est.Card {
		t.Fatal("selection should reduce estimated cardinality")
	}
	g, err := b.GroupBy(a, []string{"X", "X", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.GroupVars) != 2 {
		t.Fatalf("duplicate group vars not deduplicated: %v", g.GroupVars)
	}
}

func TestJoinEstimateAndCost(t *testing.T) {
	cat, _ := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	a, _ := b.Scan("a")
	bb, _ := b.Scan("b")
	j := b.Join(a, bb)
	if !j.Vars().Equal(relation.NewVarSet("X", "Y", "Z")) {
		t.Fatalf("join vars = %v", j.Vars().Sorted())
	}
	wantCost := a.Est.Card * bb.Est.Card
	if j.OpCost != wantCost {
		t.Fatalf("join cost %v, want %v", j.OpCost, wantCost)
	}
	if j.TotalCost != a.TotalCost+bb.TotalCost+j.OpCost {
		t.Fatal("total cost not cumulative")
	}
}

func TestPlanShapeHelpers(t *testing.T) {
	cat, _ := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	a, _ := b.Scan("a")
	bb, _ := b.Scan("b")
	j := b.Join(a, bb)
	g, _ := b.GroupBy(j, []string{"X"})
	if got := Tables(g); !got["a"] || !got["b"] || len(got) != 2 {
		t.Fatalf("Tables = %v", got)
	}
	if CountOps(g, OpJoin) != 1 || CountOps(g, OpGroupBy) != 1 || CountOps(g, OpScan) != 2 {
		t.Fatal("CountOps wrong")
	}
	if Depth(g) != 3 {
		t.Fatalf("Depth = %d", Depth(g))
	}
	if !IsLeftLinear(g) {
		t.Fatal("this plan is left-linear")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if !strings.Contains(s, "ProductJoin") || !strings.Contains(s, "GroupBy(X)") {
		t.Fatalf("String output missing operators:\n%s", s)
	}
}

func TestIsLeftLinearBushy(t *testing.T) {
	cat, _ := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	a1, _ := b.Scan("a")
	b1, _ := b.Scan("b")
	a2, _ := b.Scan("a")
	b2, _ := b.Scan("b")
	bushy := b.Join(b.Join(a1, b1), b.Join(a2, b2))
	if IsLeftLinear(bushy) {
		t.Fatal("bushy plan misclassified as linear")
	}
}

func TestValidateCatchesCorruptPlans(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Fatal("nil plan should fail validation")
	}
	bad := &Node{Op: OpJoin}
	if err := Validate(bad); err == nil {
		t.Fatal("join without children should fail validation")
	}
	bad2 := &Node{Op: OpScan, Table: "t", Left: &Node{Op: OpScan, Table: "u"}}
	if err := Validate(bad2); err == nil {
		t.Fatal("scan with children should fail validation")
	}
}

func TestEvalMatchesAlgebra(t *testing.T) {
	cat, rels := testCatalog(t)
	b := NewBuilder(cat, cost.Simple{})
	sa, _ := b.Scan("a")
	sb, _ := b.Scan("b")
	sel, _ := b.Select(sb, relation.Predicate{"Z": 2})
	j := b.Join(sa, sel)
	g, _ := b.GroupBy(j, []string{"X"})
	got, err := Eval(g, MapResolver(rels), semiring.SumProduct)
	if err != nil {
		t.Fatal(err)
	}
	selB, _ := relation.Select(rels["b"], relation.Predicate{"Z": 2})
	joint, _ := relation.ProductJoin(semiring.SumProduct, rels["a"], selB)
	want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"X"})
	if !relation.Equal(got, want, 0, 1e-9) {
		t.Fatal("Eval disagrees with direct algebra")
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(nil, MapResolver(nil), semiring.SumProduct); err == nil {
		t.Fatal("nil plan should error")
	}
	n := &Node{Op: OpScan, Table: "ghost"}
	if _, err := Eval(n, MapResolver(map[string]*relation.Relation{}), semiring.SumProduct); err == nil {
		t.Fatal("unknown table should error")
	}
}

func TestPageIOCostModel(t *testing.T) {
	cat, _ := testCatalog(t)
	b := NewBuilder(cat, cost.DefaultPageIO())
	a, _ := b.Scan("a")
	if a.TotalCost <= 0 {
		t.Fatal("PageIO scan should cost at least one page")
	}
	bb, _ := b.Scan("b")
	j := b.Join(a, bb)
	if j.OpCost <= 0 {
		t.Fatal("PageIO join should have positive cost")
	}
}
