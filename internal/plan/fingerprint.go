package plan

import (
	"sort"
	"strconv"
	"strings"
)

// FingerprintEnv supplies the context a fingerprint must capture beyond
// the plan's own structure: which semiring interprets the measures and
// which version of each base table the plan would read. Two plan
// subtrees may share a cached materialization only if they agree on all
// of it — the same operator shapes over the same table versions under
// the same measure algebra produce the same functional relation.
type FingerprintEnv struct {
	// Semiring is the measure semiring's report name (e.g. "sum-product").
	// It is baked into every fingerprint because both the product join's
	// multiplication and the GroupBy's aggregation depend on it.
	Semiring string
	// TableVersion maps a base-table name to its current version counter.
	// Returning ok=false marks the table unversionable (e.g. a
	// hypothetical per-query replacement); any subtree scanning it gets no
	// fingerprint and is never cached.
	TableVersion func(name string) (version int64, ok bool)
}

// Fingerprints computes a canonical fingerprint for every node of the
// plan rooted at root. The returned map holds an entry for each node
// whose entire subtree is versionable; nodes over unversionable tables
// are absent. Fingerprints are cache keys: equal fingerprints guarantee
// equal result relations (as sets of tuples — row order may differ when
// join operands are canonically reordered).
//
// Canonicalization rules (enforced here and nowhere else — this is the
// single point deciding which subplans may share a materialization):
//
//   - A scan is its table name plus the table's version, so any base
//     table update retires every fingerprint that read the old contents.
//   - Selection predicates are rendered in sorted variable order; two
//     predicates with the same bindings fingerprint identically however
//     they were written.
//   - GroupBy variables are rendered in sorted order (the Builder already
//     sorts them, making the output schema deterministic).
//   - Product-join children are ordered lexicographically by their own
//     fingerprints: ⋈* is commutative over a commutative semiring, and
//     IEEE multiplication of the two measures is exactly commutative, so
//     l ⋈* r and r ⋈* l contain identical tuples. Associativity is NOT
//     canonicalized — (a ⋈* b) ⋈* c and a ⋈* (b ⋈* c) fingerprint
//     differently — because the cache stores materialized intermediates
//     and different shapes materialize different intermediates.
//   - The semiring name prefixes every fingerprint.
func Fingerprints(root *Node, env FingerprintEnv) map[*Node]string {
	out := make(map[*Node]string)
	var walk func(n *Node) (string, bool)
	walk = func(n *Node) (string, bool) {
		if n == nil {
			return "", false
		}
		var fp string
		switch n.Op {
		case OpScan:
			v, ok := env.TableVersion(n.Table)
			if !ok {
				return "", false
			}
			fp = "s:" + n.Table + "@" + strconv.FormatInt(v, 10)
		case OpSelect:
			child, ok := walk(n.Left)
			if !ok {
				return "", false
			}
			fp = "f[" + predFingerprint(n.Pred) + "](" + child + ")"
		case OpJoin:
			l, lok := walk(n.Left)
			r, rok := walk(n.Right)
			if !lok || !rok {
				return "", false
			}
			if r < l {
				l, r = r, l
			}
			fp = "j(" + l + "|" + r + ")"
		case OpGroupBy:
			child, ok := walk(n.Left)
			if !ok {
				return "", false
			}
			vars := append([]string(nil), n.GroupVars...)
			sort.Strings(vars)
			fp = "g[" + strings.Join(vars, ",") + "](" + child + ")"
		default:
			return "", false
		}
		out[n] = env.Semiring + "|" + fp
		return fp, true
	}
	walk(root)
	return out
}

// predFingerprint renders an equality predicate with variables in sorted
// order, the canonical form used inside fingerprints.
func predFingerprint(p map[string]int32) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.FormatInt(int64(p[k]), 10)
	}
	return strings.Join(parts, ",")
}
