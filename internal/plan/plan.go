// Package plan defines the logical query plans produced by the MPF
// optimizers and consumed by the executor.
//
// A plan is a tree of operators over functional relations: base-table
// scans, equality selections, product joins, and marginalizing GroupBy
// nodes. Every node carries a cardinality estimate and a cumulative cost
// under the cost model supplied to the Builder, so optimizers compare
// plans by TotalCost and experiments can report estimated cost alongside
// observed time (paper §7).
package plan

import (
	"fmt"
	"sort"
	"strings"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/relation"
)

// Op identifies a plan operator.
type Op int

// Plan operators.
const (
	OpScan Op = iota
	OpSelect
	OpJoin
	OpGroupBy
)

// String returns the operator's display name.
func (o Op) String() string {
	switch o {
	case OpScan:
		return "Scan"
	case OpSelect:
		return "Select"
	case OpJoin:
		return "ProductJoin"
	case OpGroupBy:
		return "GroupBy"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Node is one operator of a logical plan. Nodes are immutable once built.
type Node struct {
	Op        Op
	Table     string             // OpScan: base table name
	Pred      relation.Predicate // OpSelect: equality constraints
	GroupVars []string           // OpGroupBy: variables kept (sorted)
	Left      *Node              // unary input, or left join input
	Right     *Node              // right join input (OpJoin only)

	Est       cost.Estimate // output estimate
	OpCost    float64       // this operator's own cost
	TotalCost float64       // cumulative plan cost

	vars relation.VarSet
}

// Vars returns the output variable set. Callers must not modify it.
func (n *Node) Vars() relation.VarSet { return n.vars }

// Builder constructs plan nodes, attaching estimates and costs from its
// catalog and cost model.
type Builder struct {
	Cat   *catalog.Catalog
	Model cost.Model
}

// NewBuilder returns a Builder over the catalog using the model.
func NewBuilder(cat *catalog.Catalog, model cost.Model) *Builder {
	return &Builder{Cat: cat, Model: model}
}

// Scan builds a base-table scan node.
func (b *Builder) Scan(table string) (*Node, error) {
	st, err := b.Cat.Table(table)
	if err != nil {
		return nil, err
	}
	est := cost.Estimate{
		Card:     float64(st.Card),
		Arity:    len(st.Attrs),
		Distinct: make(map[string]float64, len(st.Attrs)),
	}
	for _, a := range st.Attrs {
		d := st.Distinct[a.Name]
		if d <= 0 {
			d = int64(a.Domain)
		}
		est.Distinct[a.Name] = float64(d)
	}
	n := &Node{
		Op:    OpScan,
		Table: table,
		Est:   est,
		vars:  st.Vars(),
	}
	n.OpCost = b.Model.ScanCost(est)
	n.TotalCost = n.OpCost
	return n, nil
}

// Select builds an equality-selection node over in. Constrained variables
// must belong to the input.
func (b *Builder) Select(in *Node, pred relation.Predicate) (*Node, error) {
	vars := make([]string, 0, len(pred))
	for v := range pred {
		if !in.vars[v] {
			return nil, fmt.Errorf("plan: selection variable %s not in input", v)
		}
		vars = append(vars, v)
	}
	sort.Strings(vars)
	est := cost.SelectEstimate(in.Est, vars)
	cp := make(relation.Predicate, len(pred))
	for k, v := range pred {
		cp[k] = v
	}
	n := &Node{
		Op:   OpSelect,
		Pred: cp,
		Left: in,
		Est:  est,
		vars: in.vars,
	}
	n.OpCost = b.Model.SelectCost(in.Est, est)
	n.TotalCost = in.TotalCost + n.OpCost
	return n, nil
}

// Join builds a product-join node.
func (b *Builder) Join(l, r *Node) *Node {
	est := cost.JoinEstimate(l.Est, r.Est)
	n := &Node{
		Op:    OpJoin,
		Left:  l,
		Right: r,
		Est:   est,
		vars:  l.vars.Union(r.vars),
	}
	n.OpCost = b.Model.JoinCost(l.Est, r.Est, est)
	n.TotalCost = l.TotalCost + r.TotalCost + n.OpCost
	return n
}

// GroupBy builds a marginalizing GroupBy keeping the given variables,
// which must belong to the input. Keep variables are deduplicated and
// sorted.
func (b *Builder) GroupBy(in *Node, keep []string) (*Node, error) {
	set := relation.NewVarSet(keep...)
	for v := range set {
		if !in.vars[v] {
			return nil, fmt.Errorf("plan: group variable %s not in input", v)
		}
	}
	vars := set.Sorted()
	est := cost.GroupByEstimate(in.Est, vars)
	n := &Node{
		Op:        OpGroupBy,
		GroupVars: vars,
		Left:      in,
		Est:       est,
		vars:      set,
	}
	n.OpCost = b.Model.GroupByCost(in.Est, est)
	n.TotalCost = in.TotalCost + n.OpCost
	return n, nil
}

// Tables returns the set of base tables scanned by the plan.
func Tables(n *Node) map[string]bool {
	out := make(map[string]bool)
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		if m.Op == OpScan {
			out[m.Table] = true
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	return out
}

// CountOps returns the number of nodes with the given operator.
func CountOps(n *Node, op Op) int {
	if n == nil {
		return 0
	}
	c := CountOps(n.Left, op) + CountOps(n.Right, op)
	if n.Op == op {
		c++
	}
	return c
}

// Depth returns the height of the plan tree.
func Depth(n *Node) int {
	if n == nil {
		return 0
	}
	l, r := Depth(n.Left), Depth(n.Right)
	if r > l {
		l = r
	}
	return l + 1
}

// IsLeftLinear reports whether every join's right input is a leaf-ish
// subplan containing exactly one base table (the paper's linear plans:
// new relations are always joined to the accumulated left side).
func IsLeftLinear(n *Node) bool {
	if n == nil {
		return true
	}
	if n.Op == OpJoin {
		if len(Tables(n.Right)) != 1 {
			return false
		}
		return IsLeftLinear(n.Left) && IsLeftLinear(n.Right)
	}
	return IsLeftLinear(n.Left) && IsLeftLinear(n.Right)
}

// String renders the plan as an indented tree with estimates.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		if m == nil {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		switch m.Op {
		case OpScan:
			fmt.Fprintf(&b, "Scan(%s)", m.Table)
		case OpSelect:
			fmt.Fprintf(&b, "Select(%s)", predString(m.Pred))
		case OpJoin:
			b.WriteString("ProductJoin")
		case OpGroupBy:
			fmt.Fprintf(&b, "GroupBy(%s)", strings.Join(m.GroupVars, ","))
		}
		fmt.Fprintf(&b, "  [card≈%.0f cost≈%.2f total≈%.2f]\n", m.Est.Card, m.OpCost, m.TotalCost)
		walk(m.Left, depth+1)
		walk(m.Right, depth+1)
	}
	walk(n, 0)
	return b.String()
}

func predString(p relation.Predicate) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, p[k])
	}
	return strings.Join(parts, " and ")
}

// Validate checks structural invariants: correct child counts per
// operator, group/selection variables available in inputs, and that every
// GroupBy retains the variables needed above it. It returns the first
// violation found.
func Validate(n *Node) error {
	if n == nil {
		return fmt.Errorf("plan: nil node")
	}
	switch n.Op {
	case OpScan:
		if n.Left != nil || n.Right != nil {
			return fmt.Errorf("plan: scan with children")
		}
		if n.Table == "" {
			return fmt.Errorf("plan: scan without table")
		}
	case OpSelect:
		if n.Left == nil || n.Right != nil {
			return fmt.Errorf("plan: select must have exactly one input")
		}
		for v := range n.Pred {
			if !n.Left.vars[v] {
				return fmt.Errorf("plan: select on %s missing from input", v)
			}
		}
		if err := Validate(n.Left); err != nil {
			return err
		}
	case OpJoin:
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("plan: join must have two inputs")
		}
		if err := Validate(n.Left); err != nil {
			return err
		}
		if err := Validate(n.Right); err != nil {
			return err
		}
	case OpGroupBy:
		if n.Left == nil || n.Right != nil {
			return fmt.Errorf("plan: group-by must have exactly one input")
		}
		for _, v := range n.GroupVars {
			if !n.Left.vars[v] {
				return fmt.Errorf("plan: group variable %s missing from input", v)
			}
		}
		if err := Validate(n.Left); err != nil {
			return err
		}
	default:
		return fmt.Errorf("plan: unknown op %v", n.Op)
	}
	return nil
}
