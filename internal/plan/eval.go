package plan

import (
	"fmt"

	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// Resolver maps base-table names to in-memory relations for Eval.
type Resolver func(table string) (*relation.Relation, error)

// MapResolver adapts a map of relations into a Resolver.
func MapResolver(rels map[string]*relation.Relation) Resolver {
	return func(name string) (*relation.Relation, error) {
		r, ok := rels[name]
		if !ok {
			return nil, fmt.Errorf("plan: unknown base table %q", name)
		}
		return r, nil
	}
}

// Eval interprets the plan directly over in-memory relations using the
// extended algebra. It is the engine-free execution mode: exact same
// semantics as internal/exec but without paging, useful for small inputs,
// tests, and as the oracle for the physical engine.
func Eval(n *Node, resolve Resolver, sr semiring.Semiring) (*relation.Relation, error) {
	if n == nil {
		return nil, fmt.Errorf("plan: eval of nil node")
	}
	switch n.Op {
	case OpScan:
		return resolve(n.Table)
	case OpSelect:
		in, err := Eval(n.Left, resolve, sr)
		if err != nil {
			return nil, err
		}
		return relation.Select(in, n.Pred)
	case OpJoin:
		l, err := Eval(n.Left, resolve, sr)
		if err != nil {
			return nil, err
		}
		r, err := Eval(n.Right, resolve, sr)
		if err != nil {
			return nil, err
		}
		return relation.ProductJoin(sr, l, r)
	case OpGroupBy:
		in, err := Eval(n.Left, resolve, sr)
		if err != nil {
			return nil, err
		}
		return relation.Marginalize(sr, in, n.GroupVars)
	default:
		return nil, fmt.Errorf("plan: eval of unknown op %v", n.Op)
	}
}
