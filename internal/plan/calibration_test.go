package plan

import (
	"math/rand"
	"testing"

	"mpf/internal/catalog"
	"mpf/internal/cost"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

// TestCardinalityEstimateCalibration executes random plans and compares
// the optimizer's cardinality estimates against actual row counts. The
// containment/uniformity assumptions make estimates approximate, but on
// uniform random data they must stay within an order of magnitude — the
// regime in which cost-based choices remain meaningful.
func TestCardinalityEstimateCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	var worst float64 = 1
	for trial := 0; trial < 25; trial++ {
		a, _ := relation.Random(rng, "a",
			[]relation.Attr{{Name: "x", Domain: 8}, {Name: "y", Domain: 6}},
			0.4+rng.Float64()*0.6, relation.UniformMeasure(0.1, 2))
		b, _ := relation.Random(rng, "b",
			[]relation.Attr{{Name: "y", Domain: 6}, {Name: "z", Domain: 8}},
			0.4+rng.Float64()*0.6, relation.UniformMeasure(0.1, 2))
		cat := catalog.New()
		cat.AddTable(catalog.AnalyzeRelation(a))
		cat.AddTable(catalog.AnalyzeRelation(b))
		bld := NewBuilder(cat, cost.Simple{})
		sa, _ := bld.Scan("a")
		sb, _ := bld.Scan("b")
		rels := map[string]*relation.Relation{"a": a, "b": b}

		check := func(n *Node) {
			t.Helper()
			got, err := Eval(n, MapResolver(rels), semiring.SumProduct)
			if err != nil {
				t.Fatal(err)
			}
			actual := float64(got.Len())
			est := n.Est.Card
			if actual == 0 {
				return // zero-row outcomes are legitimately unpredictable
			}
			ratio := est / actual
			if ratio < 1 {
				ratio = 1 / ratio
			}
			if ratio > worst {
				worst = ratio
			}
			if ratio > 10 {
				t.Fatalf("trial %d: estimate %.1f vs actual %.0f (ratio %.1f) for\n%s",
					trial, est, actual, ratio, n)
			}
		}

		j := bld.Join(sa, sb)
		check(j)
		g, _ := bld.GroupBy(j, []string{"x"})
		check(g)
		sel, _ := bld.Select(sa, relation.Predicate{"x": int32(rng.Intn(8))})
		check(sel)
		g2, _ := bld.GroupBy(sa, []string{"y"})
		check(g2)
	}
	t.Logf("worst estimate/actual ratio over all trials: %.2f", worst)
}
