package plan

import (
	"strings"
	"testing"

	"mpf/internal/relation"
)

// fpEnv returns a FingerprintEnv with fixed versions for the named
// tables; any other table is unversionable.
func fpEnv(semiring string, versions map[string]int64) FingerprintEnv {
	return FingerprintEnv{
		Semiring: semiring,
		TableVersion: func(name string) (int64, bool) {
			v, ok := versions[name]
			return v, ok
		},
	}
}

func scan(table string) *Node { return &Node{Op: OpScan, Table: table} }

func join(l, r *Node) *Node { return &Node{Op: OpJoin, Left: l, Right: r} }

func groupBy(in *Node, vars ...string) *Node {
	return &Node{Op: OpGroupBy, GroupVars: vars, Left: in}
}

func sel(in *Node, pred relation.Predicate) *Node {
	return &Node{Op: OpSelect, Pred: pred, Left: in}
}

func TestFingerprintJoinCommutative(t *testing.T) {
	env := fpEnv("sum-product", map[string]int64{"r": 1, "s": 2})
	lr := join(scan("r"), scan("s"))
	rl := join(scan("s"), scan("r"))
	a := Fingerprints(lr, env)[lr]
	b := Fingerprints(rl, env)[rl]
	if a == "" || a != b {
		t.Fatalf("r⋈s and s⋈r must fingerprint identically: %q vs %q", a, b)
	}
}

func TestFingerprintAssociativityNotCanonicalized(t *testing.T) {
	env := fpEnv("sum-product", map[string]int64{"a": 1, "b": 2, "c": 3})
	left := join(join(scan("a"), scan("b")), scan("c"))
	right := join(scan("a"), join(scan("b"), scan("c")))
	a := Fingerprints(left, env)[left]
	b := Fingerprints(right, env)[right]
	if a == b {
		t.Fatalf("(a⋈b)⋈c and a⋈(b⋈c) materialize different intermediates; fingerprints must differ, both %q", a)
	}
}

func TestFingerprintVersionSensitivity(t *testing.T) {
	p := groupBy(join(scan("r"), scan("s")), "x")
	v1 := Fingerprints(p, fpEnv("sum-product", map[string]int64{"r": 1, "s": 1}))[p]
	v2 := Fingerprints(p, fpEnv("sum-product", map[string]int64{"r": 2, "s": 1}))[p]
	if v1 == v2 {
		t.Fatalf("bumping r's version must change the fingerprint, both %q", v1)
	}
}

func TestFingerprintSemiringPrefix(t *testing.T) {
	p := scan("r")
	env := map[string]int64{"r": 1}
	sp := Fingerprints(p, fpEnv("sum-product", env))[p]
	mp := Fingerprints(p, fpEnv("min-product", env))[p]
	if sp == mp {
		t.Fatalf("different semirings must yield different fingerprints, both %q", sp)
	}
	if !strings.HasPrefix(sp, "sum-product|") {
		t.Fatalf("fingerprint %q does not carry its semiring prefix", sp)
	}
}

func TestFingerprintPredicateCanonicalOrder(t *testing.T) {
	env := fpEnv("sum-product", map[string]int64{"r": 1})
	p := sel(scan("r"), relation.Predicate{"b": 2, "a": 1})
	fp := Fingerprints(p, env)[p]
	if !strings.Contains(fp, "f[a=1,b=2]") {
		t.Fatalf("predicate must render in sorted variable order, got %q", fp)
	}
}

func TestFingerprintGroupVarsCanonicalOrder(t *testing.T) {
	env := fpEnv("sum-product", map[string]int64{"r": 1})
	a := groupBy(scan("r"), "y", "x")
	b := groupBy(scan("r"), "x", "y")
	if fa, fb := Fingerprints(a, env)[a], Fingerprints(b, env)[b]; fa != fb {
		t.Fatalf("group vars must be order-insensitive: %q vs %q", fa, fb)
	}
}

func TestFingerprintUnversionableSubtreeAbsent(t *testing.T) {
	env := fpEnv("sum-product", map[string]int64{"r": 1}) // "h" unversionable
	r, h := scan("r"), scan("h")
	p := groupBy(join(r, h), "x")
	fps := Fingerprints(p, env)
	if _, ok := fps[p]; ok {
		t.Fatal("subtree over an unversionable table must have no fingerprint")
	}
	if _, ok := fps[h]; ok {
		t.Fatal("unversionable scan must have no fingerprint")
	}
	if _, ok := fps[r]; !ok {
		t.Fatal("versionable sibling scan must still be fingerprinted")
	}
}
