package plan

import (
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
)

func verEnv(sem string, vers map[string]int64) FingerprintEnv {
	return FingerprintEnv{
		Semiring: sem,
		TableVersion: func(name string) (int64, bool) {
			v, ok := vers[name]
			return v, ok
		},
	}
}

func TestQueryFingerprintCanonicalization(t *testing.T) {
	vers := map[string]int64{"a": 1, "b": 2, "c": 3}
	env := verEnv("sum-product", vers)
	fp1, ok := QueryFingerprint(env, []string{"a", "b", "c"}, []string{"x", "y"}, map[string]int32{"z": 4})
	if !ok {
		t.Fatal("expected cacheable")
	}
	// Table and group-var order (and group-var duplicates) are canonicalized.
	fp2, ok := QueryFingerprint(env, []string{"c", "a", "b"}, []string{"y", "x", "y"}, map[string]int32{"z": 4})
	if !ok || fp1 != fp2 {
		t.Fatalf("reordered spec should fingerprint identically:\n%s\n%s", fp1, fp2)
	}
	// Any table version bump changes the fingerprint.
	fp3, ok := QueryFingerprint(verEnv("sum-product", map[string]int64{"a": 1, "b": 2, "c": 4}),
		[]string{"a", "b", "c"}, []string{"x", "y"}, map[string]int32{"z": 4})
	if !ok || fp3 == fp1 {
		t.Fatal("version bump should change the fingerprint")
	}
	// The semiring is part of the key.
	fp4, ok := QueryFingerprint(verEnv("max-product", vers),
		[]string{"a", "b", "c"}, []string{"x", "y"}, map[string]int32{"z": 4})
	if !ok || fp4 == fp1 {
		t.Fatal("semiring should change the fingerprint")
	}
	// A table without a version makes the query uncacheable.
	if _, ok := QueryFingerprint(env, []string{"a", "nope"}, nil, nil); ok {
		t.Fatal("unversionable table should be uncacheable")
	}
}

// queryCanon is the reference canonical form a fingerprint must encode
// injectively: if two canons differ the fingerprints must differ, and if
// they are equal the fingerprints must be equal.
type queryCanon struct {
	Sem    string
	Tables []string // sorted "name@version" multiset
	Group  []string // sorted, deduplicated
	Pred   map[string]int32
}

func canonOf(sem string, vers map[string]int64, tables, group []string, pred map[string]int32) (queryCanon, bool) {
	c := queryCanon{Sem: sem, Pred: pred}
	for _, t := range tables {
		v, ok := vers[t]
		if !ok {
			return queryCanon{}, false
		}
		c.Tables = append(c.Tables, t+"@"+strconv.FormatInt(v, 10))
	}
	sort.Strings(c.Tables)
	seen := map[string]bool{}
	for _, g := range group {
		if !seen[g] {
			seen[g] = true
			c.Group = append(c.Group, g)
		}
	}
	sort.Strings(c.Group)
	if len(c.Pred) == 0 {
		c.Pred = nil
	}
	return c, true
}

// FuzzQueryFingerprint cross-checks the injectivity contract: two query
// specs get the same fingerprint exactly when their canonical forms agree
// (same semiring, same table-version multiset, same group-var set, same
// predicate). Field values deliberately include the separator characters
// used by the encoding ("|", "@", ";", "=", quotes) — strconv.Quote must
// keep them from forging a collision.
func FuzzQueryFingerprint(f *testing.F) {
	f.Add("sum-product", "max-product", "a,b", "b,a", int64(1), int64(1), "x", "x,x", "z=1", "z=1")
	f.Add("s", "s", "t", "t", int64(0), int64(1), "", "", "", "")
	f.Add("s", "s", `t@1`, `t`, int64(1), int64(1), "g", "g", "", "")
	f.Add("a|b", `a"|b`, "t;u", "t,u", int64(2), int64(2), "x;y", "x,y", "k=1,k2=2", "k=1")
	f.Fuzz(func(t *testing.T, semA, semB, tblA, tblB string, verA, verB int64, gvA, gvB, prA, prB string) {
		parse := func(tbl, gv, pr string, ver int64) (tables, group []string, pred map[string]int32, vers map[string]int64) {
			if tbl != "" {
				tables = strings.Split(tbl, ",")
			}
			if gv != "" {
				group = strings.Split(gv, ",")
			}
			pred = map[string]int32{}
			for _, kv := range strings.Split(pr, ",") {
				if k, v, ok := strings.Cut(kv, "="); ok {
					if n, err := strconv.Atoi(v); err == nil {
						pred[k] = int32(n)
					}
				}
			}
			// Per-table versions derived deterministically from the seed
			// so different seeds give different version assignments.
			vers = map[string]int64{}
			for i, tb := range tables {
				vers[tb] = ver + int64(i%2)
			}
			return
		}
		tsA, gA, pA, vA := parse(tblA, gvA, prA, verA)
		tsB, gB, pB, vB := parse(tblB, gvB, prB, verB)
		fpA, okA := QueryFingerprint(verEnv(semA, vA), tsA, gA, pA)
		fpB, okB := QueryFingerprint(verEnv(semB, vB), tsB, gB, pB)
		cA, cokA := canonOf(semA, vA, tsA, gA, pA)
		cB, cokB := canonOf(semB, vB, tsB, gB, pB)
		if okA != cokA || okB != cokB {
			t.Fatalf("cacheable disagreement: fp ok=%v/%v canon ok=%v/%v", okA, okB, cokA, cokB)
		}
		if !okA || !okB {
			return
		}
		same := reflect.DeepEqual(cA, cB)
		if same != (fpA == fpB) {
			t.Fatalf("canon equal=%v but fingerprint equal=%v:\nA: %#v\n   %s\nB: %#v\n   %s",
				same, fpA == fpB, cA, fpA, cB, fpB)
		}
	})
}
