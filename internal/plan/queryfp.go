package plan

import (
	"sort"
	"strconv"
	"strings"
)

// QueryFingerprint computes a canonical fingerprint for a whole MPF query
// specification — the plan-cache key. Unlike the per-node Fingerprints
// (which key materialized intermediate results), a query fingerprint is
// computed before any plan exists: it captures everything that determines
// which plan is correct and current for the query, namely
//
//   - the semiring (plans embed no semiring, but plan choice and result
//     both depend on it, and the cache must not hand a sum-product plan's
//     stats-driven shape to a max-product query),
//   - the set of base tables with their current versions, so any write to
//     a base table retires every cached plan reading it (statistics and
//     hence the optimal plan may have changed),
//   - the group variables, and
//   - the equality predicate.
//
// Canonicalization: tables, group variables and predicate entries are
// rendered in sorted order (deduplicated for group variables), because the
// product join is commutative, GroupBy output depends only on the variable
// set, and predicates are conjunctive equality bindings — queries equal up
// to those reorderings may soundly share a plan. Every string field is
// rendered with strconv.Quote, which makes the encoding self-delimiting
// and therefore injective: no two distinct canonical specs collide.
//
// ok=false means the query is uncacheable: some table has no version
// (env.TableVersion returned false — e.g. a hypothetical per-query
// replacement table).
func QueryFingerprint(env FingerprintEnv, tables, groupVars []string, pred map[string]int32) (fp string, ok bool) {
	var b strings.Builder
	b.WriteString("q|")
	b.WriteString(strconv.Quote(env.Semiring))
	b.WriteString("|t:")
	ts := append([]string(nil), tables...)
	sort.Strings(ts)
	for _, t := range ts {
		v, vok := env.TableVersion(t)
		if !vok {
			return "", false
		}
		b.WriteString(strconv.Quote(t))
		b.WriteByte('@')
		b.WriteString(strconv.FormatInt(v, 10))
		b.WriteByte(';')
	}
	b.WriteString("|g:")
	gs := append([]string(nil), groupVars...)
	sort.Strings(gs)
	prev := ""
	for i, g := range gs {
		if i > 0 && g == prev {
			continue
		}
		prev = g
		b.WriteString(strconv.Quote(g))
		b.WriteByte(';')
	}
	b.WriteString("|p:")
	ps := make([]string, 0, len(pred))
	for k := range pred {
		ps = append(ps, k)
	}
	sort.Strings(ps)
	for _, k := range ps {
		b.WriteString(strconv.Quote(k))
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(int64(pred[k]), 10))
		b.WriteByte(';')
	}
	return b.String(), true
}
