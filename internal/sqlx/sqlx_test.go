package sqlx

import (
	"strings"
	"testing"

	"mpf/internal/core"
	"mpf/internal/relation"
	"mpf/internal/semiring"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("select wid, SUM(inv) from invest where tid=1 -- comment\ngroup by wid;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	if strings.Contains(joined, "comment") {
		t.Fatal("comment not skipped")
	}
	if _, err := lex("select 'unterminated"); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := lex("select #"); err == nil {
		t.Fatal("bad character should error")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("1 2.5 -3 1e5 1.5e-3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "2.5", "-3", "1e5", "1.5e-3"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("token %d = %v, want %q", i, toks[i], w)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("create table contracts (pid domain 100, sid domain 10)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "contracts" || len(ct.Attrs) != 2 || ct.Attrs[1].Domain != 10 {
		t.Fatalf("parsed %+v", ct)
	}
	if _, err := Parse("create table t"); err == nil {
		t.Fatal("missing attr list should error")
	}
	if _, err := Parse("create table t (a domain x)"); err == nil {
		t.Fatal("non-numeric domain should error")
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("insert into t values (1, 2, 3.5)")
	if err != nil {
		t.Fatal(err)
	}
	in := st.(*Insert)
	if in.Table != "t" || len(in.Values) != 2 || in.Measure != 3.5 {
		t.Fatalf("parsed %+v", in)
	}
	if _, err := Parse("insert into t values (1.5, 2)"); err == nil {
		t.Fatal("non-integer variable value should error")
	}
	if _, err := Parse("insert into t values ()"); err == nil {
		t.Fatal("empty values should error")
	}
}

func TestParseCreateViewPaperSyntax(t *testing.T) {
	// The paper's §2 syntax, with measure clause and join quals.
	st, err := Parse(`create mpfview invest as (
		select pid, sid, wid, measure = (* c.f, l.f)
		from contracts c, location l
		where c.pid = l.pid)`)
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "invest" || len(cv.Tables) != 2 {
		t.Fatalf("parsed %+v", cv)
	}
	if len(cv.Vars) != 3 {
		t.Fatalf("vars = %v", cv.Vars)
	}
	// Measure table must be in FROM.
	if _, err := Parse(`create mpfview v as (select *, measure = (* ghost.f) from t1)`); err == nil {
		t.Fatal("measure table not in FROM should error")
	}
	// Star select list and no measure clause.
	st2, err := Parse("create mpfview v as select * from a, b")
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.(*CreateView).Tables) != 2 {
		t.Fatal("tables wrong")
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse("select wid, sum(inv) from invest where tid=1 and cid = 2 group by wid using ve(deg)+ext")
	if err != nil {
		t.Fatal(err)
	}
	q := st.(*Select)
	if q.View != "invest" || q.Agg != "sum" || len(q.GroupVars) != 1 || q.GroupVars[0] != "wid" {
		t.Fatalf("parsed %+v", q)
	}
	if q.Where["tid"] != 1 || q.Where["cid"] != 2 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Using != "ve(deg)+ext" {
		t.Fatalf("using = %q", q.Using)
	}
	// Multi-variable group by.
	st2, err := Parse("select a, b, min(f) from v group by b, a")
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.(*Select).GroupVars) != 2 {
		t.Fatal("group vars wrong")
	}
	if st2.(*Select).Agg != "min" {
		t.Fatal("agg wrong")
	}
}

func TestParseSelectErrors(t *testing.T) {
	bad := []string{
		"select from v group by a",
		"select a sum(f) from v group by a",
		"select a, sum(f) from v group by b",
		"select a, sum(f) from v where a group by a",
		"select a, sum(f) from v where a=1 and a=2 group by a",
		"select a, sum(f) from v group by a using",
		"select a, count(f) from v group by a",
		"explain delete",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("expected parse error for %q", q)
		}
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse("explain select a, sum(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*Select).Explain {
		t.Fatal("explain flag not set")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		create table t (a domain 2);
		insert into t values (0, 1.5);
		insert into t values (1, 2.5);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	if _, err := ParseScript("create table t (a domain 2); garbage"); err == nil {
		t.Fatal("bad script should error")
	}
}

// TestSessionEndToEnd drives a full DDL + DML + query flow through the
// session against a real database and checks the answer.
func TestSessionEndToEnd(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	script := []string{
		"create table r (a domain 2, b domain 2)",
		"insert into r values (0, 0, 2)",
		"insert into r values (0, 1, 3)",
		"insert into r values (1, 0, 5)",
		"create table q (b domain 2, c domain 2)",
		"insert into q values (0, 0, 7)",
		"insert into q values (1, 1, 11)",
		"create mpfview v as select * from r, q",
	}
	for _, line := range script {
		if _, err := s.Exec(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	out, err := s.Exec("select a, sum(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: r ⋈* q on b, sum over groups of a.
	r, _ := db.Relation("r")
	q, _ := db.Relation("q")
	joint, _ := relation.ProductJoin(semiring.SumProduct, r, q)
	want, _ := relation.Marginalize(semiring.SumProduct, joint, []string{"a"})
	if !relation.Equal(out.Relation, want, 0, 1e-9) {
		t.Fatalf("SQL answer wrong:\n%v\nwant\n%v", out.Relation, want)
	}
	// Explain produces a plan.
	ex, err := s.Exec("explain select a, sum(f) from v group by a using cs+nonlinear")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Plan == nil || ex.Relation != nil {
		t.Fatal("explain should return a plan only")
	}
	// Strategy selection.
	out2, err := s.Exec("select a, sum(f) from v group by a using ve(width)+ext")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(out2.Relation, want, 0, 1e-9) {
		t.Fatal("strategy-selected answer wrong")
	}
}

func TestSessionErrors(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	if _, err := s.Exec("insert into ghost values (1, 1)"); err == nil {
		t.Fatal("insert into unknown table should error")
	}
	s.Exec("create table t (a domain 2)")
	if _, err := s.Exec("create table t (a domain 2)"); err == nil {
		t.Fatal("duplicate staged table should error")
	}
	if _, err := s.Exec("insert into t values (5, 1)"); err == nil {
		t.Fatal("out-of-domain insert should error")
	}
	if _, err := s.Exec("create mpfview v as select * from t, ghost"); err == nil {
		t.Fatal("view over unknown table should error")
	}
	s.Exec("insert into t values (0, 1)")
	if _, err := s.Exec("create mpfview v as select * from t"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("select a, min(f) from v group by a"); err == nil {
		t.Fatal("min aggregate on sum-product database should error")
	}
	if _, err := s.Exec("select a, sum(f) from v group by a using bogus"); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if _, err := s.Exec("totally not sql"); err == nil {
		t.Fatal("garbage should error")
	}
}

// TestSessionMinProduct checks aggregate/semiring compatibility the other
// way around.
func TestSessionMinProduct(t *testing.T) {
	db, err := core.Open(core.Config{Semiring: semiring.MinProduct})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	for _, line := range []string{
		"create table t (a domain 2)",
		"insert into t values (0, 3)",
		"insert into t values (1, 5)",
		"create mpfview v as select * from t",
	} {
		if _, err := s.Exec(line); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Exec("select a, min(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation.Len() != 2 {
		t.Fatal("wrong row count")
	}
	if _, err := s.Exec("select a, sum(f) from v group by a"); err == nil {
		t.Fatal("sum on min-product database should error")
	}
}
