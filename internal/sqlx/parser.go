package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"mpf/internal/relation"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable declares a functional relation's variable attributes (the
// measure column f is implicit).
type CreateTable struct {
	Name  string
	Attrs []relation.Attr
}

func (*CreateTable) stmt() {}

// Insert adds one tuple (variable values then measure) to a table.
type Insert struct {
	Table   string
	Values  []int32
	Measure float64
}

func (*Insert) stmt() {}

// CreateIndex builds a hash index on a table attribute:
// CREATE INDEX ON t (a).
type CreateIndex struct {
	Table string
	Attr  string
}

func (*CreateIndex) stmt() {}

// Drop removes a table or a view: DROP TABLE t / DROP MPFVIEW v.
type Drop struct {
	// View selects view semantics; otherwise a table is dropped.
	View bool
	Name string
}

func (*Drop) stmt() {}

// CreateView is the paper's `create mpfview` statement.
type CreateView struct {
	Name string
	// Vars is the select list (informational; the view spans the union
	// of base-table variables).
	Vars []string
	// MeasureTables lists the tables whose measures the `measure = (* …)`
	// clause multiplies; empty when the clause is omitted.
	MeasureTables []string
	// Tables is the from list.
	Tables []string
}

func (*CreateView) stmt() {}

// Select is an MPF query, optionally explained instead of executed.
type Select struct {
	Explain bool
	// Analyze (EXPLAIN ANALYZE) executes the query and reports the
	// per-operator actuals instead of the result rows.
	Analyze   bool
	GroupVars []string
	// Agg is the aggregate name: sum, min or max.
	Agg string
	// MeasureArg is the aggregated column name (informational).
	MeasureArg string
	View       string
	Where      relation.Predicate
	// HavingOp and HavingValue hold the constrained-range clause
	// ("having f < c"); HavingOp is empty when absent.
	HavingOp    string
	HavingValue float64
	// Using names the evaluation strategy (optimizer), empty for the
	// database default.
	Using string
}

func (*Select) stmt() {}

// Parse parses one statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sqlx: trailing input at %v", p.peek())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	var out []Statement
	for _, piece := range splitStatements(input) {
		if strings.TrimSpace(piece) == "" {
			continue
		}
		st, err := Parse(piece)
		if err != nil {
			return nil, fmt.Errorf("%w (in statement %q)", err, strings.TrimSpace(piece))
		}
		out = append(out, st)
	}
	return out, nil
}

// splitStatements splits on semicolons outside quotes.
func splitStatements(input string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(input); i++ {
		switch input[i] {
		case '\'':
			depth = !depth
		case ';':
			if !depth {
				parts = append(parts, input[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, input[start:])
	return parts
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text for
// punctuation/keywords; text match is case-insensitive).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokNumber: "number"}[kind]
		}
		return token{}, fmt.Errorf("sqlx: expected %s, found %v", want, p.peek())
	}
	return p.next(), nil
}

func (p *parser) keyword(word string) error {
	_, err := p.expect(tokIdent, word)
	return err
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return strings.ToLower(t.text), nil
}

func (p *parser) intLit() (int64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlx: %q is not an integer", t.text)
	}
	return v, nil
}

func (p *parser) numberLit() (float64, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlx: %q is not a number", t.text)
	}
	return v, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokIdent, "create"):
		p.next()
		switch {
		case p.at(tokIdent, "table"):
			p.next()
			return p.createTable()
		case p.at(tokIdent, "mpfview"):
			p.next()
			return p.createView()
		case p.at(tokIdent, "index"):
			p.next()
			return p.createIndex()
		default:
			return nil, fmt.Errorf("sqlx: expected TABLE, MPFVIEW or INDEX after CREATE, found %v", p.peek())
		}
	case p.at(tokIdent, "drop"):
		p.next()
		isView := false
		switch {
		case p.accept(tokIdent, "table"):
		case p.accept(tokIdent, "mpfview"):
			isView = true
		default:
			return nil, fmt.Errorf("sqlx: expected TABLE or MPFVIEW after DROP, found %v", p.peek())
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Drop{View: isView, Name: name}, nil
	case p.at(tokIdent, "insert"):
		p.next()
		return p.insert()
	case p.at(tokIdent, "select"):
		p.next()
		return p.selectStmt(false)
	case p.at(tokIdent, "explain"):
		p.next()
		analyze := p.accept(tokIdent, "analyze")
		if err := p.keyword("select"); err != nil {
			return nil, err
		}
		st, err := p.selectStmt(true)
		if err != nil {
			return nil, err
		}
		st.(*Select).Analyze = analyze
		return st, nil
	default:
		return nil, fmt.Errorf("sqlx: expected a statement, found %v", p.peek())
	}
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	st := &CreateTable{Name: name}
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.keyword("domain"); err != nil {
			return nil, err
		}
		d, err := p.intLit()
		if err != nil {
			return nil, err
		}
		st.Attrs = append(st.Attrs, relation.Attr{Name: attr, Domain: int(d)})
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) createIndex() (Statement, error) {
	if err := p.keyword("on"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Table: table, Attr: attr}, nil
}

func (p *parser) insert() (Statement, error) {
	if err := p.keyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("values"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var nums []float64
	for {
		v, err := p.numberLit()
		if err != nil {
			return nil, err
		}
		nums = append(nums, v)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if len(nums) < 1 {
		return nil, fmt.Errorf("sqlx: insert needs at least a measure value")
	}
	st := &Insert{Table: name, Measure: nums[len(nums)-1]}
	for _, v := range nums[:len(nums)-1] {
		iv := int32(v)
		if float64(iv) != v {
			return nil, fmt.Errorf("sqlx: variable value %v is not an integer", v)
		}
		st.Values = append(st.Values, iv)
	}
	return st, nil
}

func (p *parser) createView() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.keyword("as"); err != nil {
		return nil, err
	}
	paren := p.accept(tokPunct, "(")
	if err := p.keyword("select"); err != nil {
		return nil, err
	}
	st := &CreateView{Name: name}
	// Select list: identifiers or * until MEASURE or FROM.
	for {
		if p.at(tokIdent, "measure") || p.at(tokIdent, "from") {
			break
		}
		if p.accept(tokPunct, "*") {
			if !p.accept(tokPunct, ",") {
				break
			}
			continue
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Vars = append(st.Vars, v)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	// Optional measure clause: measure = (* t1.f, t2.f, ...).
	if p.accept(tokIdent, "measure") {
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "*"); err != nil {
			return nil, err
		}
		for {
			tbl, err := p.ident()
			if err != nil {
				return nil, err
			}
			if p.accept(tokPunct, ".") {
				if _, err := p.ident(); err != nil {
					return nil, err
				}
			}
			st.MeasureTables = append(st.MeasureTables, tbl)
			if p.accept(tokPunct, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	aliases := make(map[string]string)
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Tables = append(st.Tables, tbl)
		// Optional table alias (the paper writes `from contracts c`).
		if p.at(tokIdent, "") && !p.at(tokIdent, "where") {
			alias, _ := p.ident()
			if other, dup := aliases[alias]; dup && other != tbl {
				return nil, fmt.Errorf("sqlx: alias %s bound to both %s and %s", alias, other, tbl)
			}
			aliases[alias] = tbl
		}
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	// Optional where joinquals: parsed and discarded — product joins are
	// natural joins on shared variable names, so explicit equality quals
	// on same-named columns are redundant; they are validated for shape.
	if p.accept(tokIdent, "where") {
		for {
			if err := p.qualifiedEquality(); err != nil {
				return nil, err
			}
			if p.accept(tokIdent, "and") {
				continue
			}
			break
		}
	}
	if paren {
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	}
	if len(st.MeasureTables) > 0 {
		have := make(map[string]bool, len(st.Tables))
		for _, t := range st.Tables {
			have[t] = true
		}
		for i, t := range st.MeasureTables {
			if have[t] {
				continue
			}
			if full, ok := aliases[t]; ok {
				st.MeasureTables[i] = full
				continue
			}
			return nil, fmt.Errorf("sqlx: measure clause references %s which is not in FROM", t)
		}
	}
	return st, nil
}

// qualifiedEquality parses t1.a = t2.b (or a = b) and discards it.
func (p *parser) qualifiedEquality() error {
	if _, err := p.ident(); err != nil {
		return err
	}
	if p.accept(tokPunct, ".") {
		if _, err := p.ident(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return err
	}
	if _, err := p.ident(); err != nil {
		return err
	}
	if p.accept(tokPunct, ".") {
		if _, err := p.ident(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) selectStmt(explain bool) (Statement, error) {
	st := &Select{Explain: explain, Where: relation.Predicate{}}
	// Select list: group variables then one aggregate call.
	for {
		if p.at(tokIdent, "sum") || p.at(tokIdent, "min") || p.at(tokIdent, "max") {
			agg, _ := p.ident()
			st.Agg = agg
			if _, err := p.expect(tokPunct, "("); err != nil {
				return nil, err
			}
			arg, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.MeasureArg = arg
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.GroupVars = append(st.GroupVars, v)
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, fmt.Errorf("sqlx: select list must end with an aggregate: %w", err)
		}
	}
	if st.Agg == "" {
		return nil, fmt.Errorf("sqlx: select list needs an aggregate (sum/min/max)")
	}
	if err := p.keyword("from"); err != nil {
		return nil, err
	}
	view, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.View = view
	if p.accept(tokIdent, "where") {
		for {
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "="); err != nil {
				return nil, err
			}
			val, err := p.intLit()
			if err != nil {
				return nil, err
			}
			if _, dup := st.Where[v]; dup {
				return nil, fmt.Errorf("sqlx: duplicate predicate on %s", v)
			}
			st.Where[v] = int32(val)
			if p.accept(tokIdent, "and") {
				continue
			}
			break
		}
	}
	if err := p.keyword("group"); err != nil {
		return nil, err
	}
	if err := p.keyword("by"); err != nil {
		return nil, err
	}
	var groupBy []string
	for {
		v, err := p.ident()
		if err != nil {
			return nil, err
		}
		groupBy = append(groupBy, v)
		if p.accept(tokPunct, ",") {
			continue
		}
		break
	}
	if !sameStrings(st.GroupVars, groupBy) {
		return nil, fmt.Errorf("sqlx: select list variables %v must match group by %v", st.GroupVars, groupBy)
	}
	if p.accept(tokIdent, "having") {
		if _, err := p.ident(); err != nil { // the measure column name
			return nil, err
		}
		op := ""
		switch {
		case p.accept(tokPunct, "<"):
			op = "<"
		case p.accept(tokPunct, ">"):
			op = ">"
		case p.accept(tokPunct, "="):
			op = "="
		default:
			return nil, fmt.Errorf("sqlx: expected comparison in HAVING, found %v", p.peek())
		}
		if op != "=" && p.accept(tokPunct, "=") {
			op += "="
		}
		v, err := p.numberLit()
		if err != nil {
			return nil, err
		}
		st.HavingOp, st.HavingValue = op, v
	}
	if p.accept(tokIdent, "using") {
		var b strings.Builder
		for !p.at(tokEOF, "") && !p.at(tokPunct, ";") {
			b.WriteString(p.next().text)
		}
		st.Using = strings.ToLower(b.String())
		if st.Using == "" {
			return nil, fmt.Errorf("sqlx: USING clause needs a strategy name")
		}
	}
	return st, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, y := range b {
		if !seen[y] {
			return false
		}
	}
	return true
}
