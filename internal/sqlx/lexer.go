// Package sqlx is a small SQL front end for the MPF engine. It supports
// the paper's language extensions (§2): functional-relation DDL, the
// `create mpfview ... measure = (* s1.f, ..., sn.f)` view definition, MPF
// select/where/group-by queries, and a `using <algorithm>` clause that
// selects the evaluation strategy (the paper's PostgreSQL extension that
// specifies the evaluation strategy).
//
// Grammar (case-insensitive keywords; identifiers are [a-z_][a-z0-9_]*):
//
//	stmt        := create_table | create_index | insert | create_view
//	             | drop | select | explain
//	create_table:= CREATE TABLE name '(' attr (',' attr)* ')'
//	create_index:= CREATE INDEX ON name '(' name ')'
//	drop        := DROP (TABLE | MPFVIEW) name
//	attr        := name DOMAIN int
//	insert      := INSERT INTO name VALUES '(' int (',' int)* ',' number ')'
//	create_view := CREATE MPFVIEW name AS '(' SELECT sel_list
//	               [',' MEASURE '=' '(' '*' name'.'f (',' name'.'f)* ')']
//	               FROM name (',' name)* [WHERE joinquals] ')'
//	select      := SELECT var (',' var)* ',' agg '(' name ')'
//	               FROM name [WHERE eq (AND eq)*] GROUP BY var (',' var)*
//	               [HAVING name cmp number] [USING strategy]
//	explain     := EXPLAIN [ANALYZE] select
//	agg         := SUM | MIN | MAX
//	eq          := name '=' int
//	cmp         := '<' | '<=' | '>' | '>=' | '='
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single characters: ( ) , = * . ;
	tokString
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits input into tokens. Keywords are returned as identifiers and
// matched case-insensitively by the parser.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (isIdentRune(rune(input[i]))) {
				i++
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			i++
			seenDot := false
			for i < n {
				r := rune(input[i])
				if unicode.IsDigit(r) {
					i++
					continue
				}
				if r == '.' && !seenDot && i+1 < n && unicode.IsDigit(rune(input[i+1])) {
					seenDot = true
					i++
					continue
				}
				if r == 'e' || r == 'E' {
					j := i + 1
					if j < n && (input[j] == '+' || input[j] == '-') {
						j++
					}
					if j < n && unicode.IsDigit(rune(input[j])) {
						i = j + 1
						continue
					}
				}
				break
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlx: unterminated string at offset %d", start)
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		case strings.ContainsRune("(),=*.;+&<>", c):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlx: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
