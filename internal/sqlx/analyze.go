package sqlx

import (
	"fmt"
	"strings"

	"mpf/internal/exec"
)

// spanNode is one reconstructed node of the EXPLAIN ANALYZE tree.
type spanNode struct {
	span     exec.Span
	children []*spanNode
}

// buildSpanTree reconstructs the operator tree from a trace. Spans are
// recorded in completion (post-order) order with their depth, so a node's
// children are exactly the stacked spans one level deeper that completed
// before it: pop them, attach in recorded order, push the node. Multiple
// roots cannot occur for a valid plan but are tolerated (all returned).
func buildSpanTree(trace []exec.Span) []*spanNode {
	var stack []*spanNode
	for _, sp := range trace {
		n := &spanNode{span: sp}
		for len(stack) > 0 && stack[len(stack)-1].span.Depth > sp.Depth {
			child := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n.children = append([]*spanNode{child}, n.children...)
		}
		stack = append(stack, n)
	}
	return stack
}

// renderAnalyze formats a query's actuals in EXPLAIN ANALYZE style: the
// operator tree with per-node exclusive wall time, output rows, and
// physical IO, followed by run totals.
func renderAnalyze(st exec.RunStats) string {
	var b strings.Builder
	if st.Planner != "" {
		fmt.Fprintf(&b, "Planner: %s", st.Planner)
		if st.PlanCacheHit {
			b.WriteString(" (plan cache hit)")
		}
		b.WriteString("\n")
	}
	for _, root := range buildSpanTree(st.Trace) {
		renderSpanNode(&b, root, 0)
	}
	// Morsel busy time is measured inside each task and attributed to the
	// operator kind that submitted it, so these lines decompose where the
	// workers actually spent their time — span wall times above remain the
	// submitting operator's own wall clock.
	for _, m := range st.Morsels {
		fmt.Fprintf(&b, "Morsels: %s count=%d busy=%v\n", m.Kind, m.Count, m.Busy)
	}
	fmt.Fprintf(&b, "Total: wall=%v io=%dr/%dw/%dh rows=%d temp_tuples=%d operators=%d batches=%d",
		st.Wall, st.IO.Reads, st.IO.Writes, st.IO.Hits,
		st.RowsOut, st.TempTuples, st.Operators, st.Batches)
	if st.IO.Prefetches > 0 {
		fmt.Fprintf(&b, " prefetched=%d", st.IO.Prefetches)
	}
	if st.HotKeyFallbacks > 0 {
		fmt.Fprintf(&b, " hot_key_fallbacks=%d", st.HotKeyFallbacks)
	}
	if st.IO.Retries > 0 {
		fmt.Fprintf(&b, " io_retries=%d", st.IO.Retries)
	}
	if st.IO.TransientFaults > 0 {
		fmt.Fprintf(&b, " transient_faults=%d", st.IO.TransientFaults)
	}
	if st.IO.PermanentFaults > 0 {
		fmt.Fprintf(&b, " permanent_faults=%d", st.IO.PermanentFaults)
	}
	if st.IO.ChecksumFailures > 0 {
		fmt.Fprintf(&b, " checksum_failures=%d", st.IO.ChecksumFailures)
	}
	b.WriteString("\n")
	return b.String()
}

// renderSpanNode prints one node and its subtree at the given indent.
func renderSpanNode(b *strings.Builder, n *spanNode, indent int) {
	sp := n.span
	prefix := strings.Repeat("  ", indent)
	if indent > 0 {
		prefix += "-> "
	}
	fmt.Fprintf(b, "%s%s (actual time=%v rows=%d io=%dr/%dw/%dh span=[%v..%v])\n",
		prefix, sp.Desc, sp.Wall, sp.Rows,
		sp.IO.Reads, sp.IO.Writes, sp.IO.Hits,
		sp.Start.Round(0), sp.Stop.Round(0))
	for _, c := range n.children {
		renderSpanNode(b, c, indent+1)
	}
}
