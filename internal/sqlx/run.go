package sqlx

import (
	"fmt"
	"strings"

	"mpf/internal/core"
	"mpf/internal/exec"
	"mpf/internal/opt"
	"mpf/internal/plan"
	"mpf/internal/relation"
	"time"
)

// Output is the result of executing one statement.
type Output struct {
	// Message summarizes DDL/DML effects.
	Message string
	// Relation is a query result (nil for non-queries and EXPLAIN).
	Relation *relation.Relation
	// Plan is set for EXPLAIN and for executed queries.
	Plan *plan.Node
	// Optimize and Exec carry query measurements.
	Optimize time.Duration
	Exec     exec.RunStats
}

// Session executes parsed statements against a database. Tables under
// construction (CREATE TABLE + INSERTs) are staged in memory and loaded
// into the engine when first referenced by a view or query.
type Session struct {
	DB     *core.Database
	staged map[string]*relation.Relation
}

// NewSession returns a session over the database.
func NewSession(db *core.Database) *Session {
	return &Session{DB: db, staged: make(map[string]*relation.Relation)}
}

// Exec parses and executes one statement.
func (s *Session) Exec(input string) (*Output, error) {
	st, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return s.Run(st)
}

// Run executes a parsed statement.
func (s *Session) Run(st Statement) (*Output, error) {
	switch st := st.(type) {
	case *CreateTable:
		if _, dup := s.staged[st.Name]; dup {
			return nil, fmt.Errorf("sqlx: table %s already staged", st.Name)
		}
		r, err := relation.New(st.Name, st.Attrs)
		if err != nil {
			return nil, err
		}
		s.staged[st.Name] = r
		return &Output{Message: fmt.Sprintf("created table %s (%d attributes)", st.Name, len(st.Attrs))}, nil

	case *Insert:
		r, ok := s.staged[st.Table]
		if !ok {
			return nil, fmt.Errorf("sqlx: table %s is not staged for inserts (create it first)", st.Table)
		}
		if err := r.Append(st.Values, st.Measure); err != nil {
			return nil, err
		}
		return &Output{Message: fmt.Sprintf("inserted 1 tuple into %s", st.Table)}, nil

	case *CreateIndex:
		// The table must be loaded into the engine before indexing.
		if err := s.flush([]string{st.Table}); err != nil {
			return nil, err
		}
		if err := s.DB.CreateIndex(st.Table, st.Attr); err != nil {
			return nil, err
		}
		return &Output{Message: fmt.Sprintf("created index on %s(%s)", st.Table, st.Attr)}, nil

	case *Drop:
		if st.View {
			if err := s.DB.DropView(st.Name); err != nil {
				return nil, err
			}
			return &Output{Message: "dropped mpfview " + st.Name}, nil
		}
		if _, staged := s.staged[st.Name]; staged {
			delete(s.staged, st.Name)
			return &Output{Message: "dropped staged table " + st.Name}, nil
		}
		if err := s.DB.DropTable(st.Name); err != nil {
			return nil, err
		}
		return &Output{Message: "dropped table " + st.Name}, nil

	case *CreateView:
		if err := s.flush(st.Tables); err != nil {
			return nil, err
		}
		if err := s.DB.CreateView(st.Name, st.Tables); err != nil {
			return nil, err
		}
		return &Output{Message: fmt.Sprintf("created mpfview %s over %s",
			st.Name, strings.Join(st.Tables, ", "))}, nil

	case *Select:
		if err := s.checkAgg(st.Agg); err != nil {
			return nil, err
		}
		spec := &core.QuerySpec{
			View:      st.View,
			GroupVars: st.GroupVars,
			Where:     st.Where,
		}
		if st.HavingOp != "" {
			op, ok := map[string]core.HavingOp{
				"<": core.HavingLT, "<=": core.HavingLE,
				">": core.HavingGT, ">=": core.HavingGE,
				"=": core.HavingEQ,
			}[st.HavingOp]
			if !ok {
				return nil, fmt.Errorf("sqlx: unsupported having operator %q", st.HavingOp)
			}
			spec.Having = &core.Having{Op: op, Value: st.HavingValue}
		}
		if st.Using != "" {
			o, err := opt.ByName(st.Using)
			if err != nil {
				return nil, fmt.Errorf("sqlx: %w (known strategies: %s)", err, strings.Join(opt.Names(), ", "))
			}
			spec.Optimizer = o
		}
		if st.Explain && st.Analyze {
			// EXPLAIN ANALYZE executes the query and reports per-operator
			// actuals from the trace instead of the result rows.
			res, err := s.DB.Query(spec)
			if err != nil {
				return nil, err
			}
			return &Output{
				Plan:     res.Plan,
				Optimize: res.Optimize,
				Exec:     res.Exec,
				Message:  renderAnalyze(res.Exec),
			}, nil
		}
		if st.Explain {
			p, d, err := s.DB.Explain(spec)
			if err != nil {
				return nil, err
			}
			return &Output{Plan: p, Optimize: d, Message: p.String()}, nil
		}
		res, err := s.DB.Query(spec)
		if err != nil {
			return nil, err
		}
		return &Output{
			Relation: res.Relation,
			Plan:     res.Plan,
			Optimize: res.Optimize,
			Exec:     res.Exec,
			Message:  fmt.Sprintf("%d rows", res.Relation.Len()),
		}, nil

	default:
		return nil, fmt.Errorf("sqlx: unsupported statement %T", st)
	}
}

// flush loads staged tables referenced by names into the engine.
func (s *Session) flush(names []string) error {
	for _, n := range names {
		r, ok := s.staged[n]
		if !ok {
			continue // already loaded, or unknown (CreateView will complain)
		}
		if err := s.DB.CreateTable(r); err != nil {
			return err
		}
		delete(s.staged, n)
	}
	return nil
}

// checkAgg validates the aggregate against the database semiring: the
// additive operation of the semiring must match the requested aggregate.
func (s *Session) checkAgg(agg string) error {
	name := s.DB.Semiring().Name()
	add := strings.SplitN(name, "-", 2)[0]
	if add != agg {
		return fmt.Errorf("sqlx: aggregate %s incompatible with database semiring %s (additive op is %s)",
			agg, name, add)
	}
	return nil
}
