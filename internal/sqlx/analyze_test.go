package sqlx

import (
	"strings"
	"testing"
	"time"

	"mpf/internal/core"
	"mpf/internal/exec"
)

// analyzeSession builds a session over a tiny two-table view.
func analyzeSession(t *testing.T) *Session {
	t.Helper()
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	s := NewSession(db)
	script := []string{
		"create table r (a domain 2, b domain 3)",
		"insert into r values (0, 0, 2)",
		"insert into r values (0, 1, 3)",
		"insert into r values (1, 2, 5)",
		"create table q (b domain 3, c domain 2)",
		"insert into q values (0, 0, 7)",
		"insert into q values (1, 1, 11)",
		"insert into q values (2, 0, 13)",
		"create mpfview v as select * from r, q",
	}
	for _, line := range script {
		if _, err := s.Exec(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	return s
}

// TestParseExplainAnalyze checks the grammar: ANALYZE is accepted only
// after EXPLAIN and sets the statement flag.
func TestParseExplainAnalyze(t *testing.T) {
	st, err := Parse("explain analyze select a, sum(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if !sel.Explain || !sel.Analyze {
		t.Fatalf("parsed %+v, want Explain and Analyze set", sel)
	}
	st, err = Parse("explain select a, sum(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	if sel := st.(*Select); !sel.Explain || sel.Analyze {
		t.Fatalf("plain explain parsed %+v", sel)
	}
	if _, err := Parse("analyze select a, sum(f) from v group by a"); err == nil {
		t.Fatal("ANALYZE without EXPLAIN should not parse")
	}
}

// TestExplainAnalyzeExecutes runs EXPLAIN ANALYZE end to end: the query
// executes (stats are populated) but no rows are returned; the rendered
// report contains the operator tree with actuals and the totals line.
func TestExplainAnalyzeExecutes(t *testing.T) {
	s := analyzeSession(t)
	out, err := s.Exec("explain analyze select a, sum(f) from v group by a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation != nil {
		t.Fatal("explain analyze should not return rows")
	}
	if out.Plan == nil {
		t.Fatal("explain analyze should carry the plan")
	}
	if out.Exec.Operators == 0 || out.Exec.RowsOut == 0 {
		t.Fatalf("query did not execute: %+v", out.Exec)
	}
	for _, want := range []string{"Planner: ", "GroupBy", "Scan", "actual time=", "rows=", "Total: wall="} {
		if !strings.Contains(out.Message, want) {
			t.Fatalf("report missing %q:\n%s", want, out.Message)
		}
	}
	// The planner header, one line per operator, and the totals line.
	lines := strings.Count(strings.TrimRight(out.Message, "\n"), "\n") + 1
	if lines != out.Exec.Operators+2 {
		t.Fatalf("report has %d lines for %d operators:\n%s", lines, out.Exec.Operators, out.Message)
	}
}

// TestBuildSpanTree checks tree reconstruction from a post-order span
// list: children attach to the first shallower span that follows them.
func TestBuildSpanTree(t *testing.T) {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	trace := []exec.Span{
		{Desc: "Scan(r)", Depth: 2, Start: ms(0), Stop: ms(1)},
		{Desc: "Scan(q)", Depth: 2, Start: ms(1), Stop: ms(2)},
		{Desc: "Join", Depth: 1, Start: ms(0), Stop: ms(3)},
		{Desc: "GroupBy", Depth: 0, Start: ms(0), Stop: ms(4)},
	}
	roots := buildSpanTree(trace)
	if len(roots) != 1 {
		t.Fatalf("%d roots, want 1", len(roots))
	}
	root := roots[0]
	if root.span.Desc != "GroupBy" || len(root.children) != 1 {
		t.Fatalf("bad root: %+v", root)
	}
	join := root.children[0]
	if join.span.Desc != "Join" || len(join.children) != 2 {
		t.Fatalf("bad join node: %+v", join)
	}
	if join.children[0].span.Desc != "Scan(r)" || join.children[1].span.Desc != "Scan(q)" {
		t.Fatalf("children out of order: %v, %v", join.children[0].span, join.children[1].span)
	}
}
