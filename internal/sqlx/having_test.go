package sqlx

import (
	"testing"

	"mpf/internal/core"
)

func TestParseHaving(t *testing.T) {
	cases := []struct {
		sql string
		op  string
		val float64
	}{
		{"select a, sum(f) from v group by a having f < 3.5", "<", 3.5},
		{"select a, sum(f) from v group by a having f <= 3", "<=", 3},
		{"select a, sum(f) from v group by a having f > 100", ">", 100},
		{"select a, sum(f) from v group by a having f >= 0.5", ">=", 0.5},
		{"select a, sum(f) from v group by a having f = 7", "=", 7},
		{"select a, sum(f) from v group by a having f < 3 using cs", "<", 3},
	}
	for _, c := range cases {
		st, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		q := st.(*Select)
		if q.HavingOp != c.op || q.HavingValue != c.val {
			t.Fatalf("%q: parsed having %q %v", c.sql, q.HavingOp, q.HavingValue)
		}
	}
	bad := []string{
		"select a, sum(f) from v group by a having f ! 3",
		"select a, sum(f) from v group by a having f <",
		"select a, sum(f) from v group by a having < 3",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("expected error for %q", q)
		}
	}
}

// TestHavingEndToEnd drives the constrained-range form through SQL.
func TestHavingEndToEnd(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	for _, line := range []string{
		"create table t (a domain 3)",
		"insert into t values (0, 10)",
		"insert into t values (1, 20)",
		"insert into t values (2, 30)",
		"create mpfview v as select * from t",
	} {
		if _, err := s.Exec(line); err != nil {
			t.Fatal(err)
		}
	}
	out, err := s.Exec("select a, sum(f) from v group by a having f > 15")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation.Len() != 2 {
		t.Fatalf("having filtered to %d rows, want 2", out.Relation.Len())
	}
	out, err = s.Exec("select a, sum(f) from v group by a having f <= 10")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation.Len() != 1 {
		t.Fatalf("having <= filtered to %d rows, want 1", out.Relation.Len())
	}
}

func TestCreateIndexStatement(t *testing.T) {
	st, err := Parse("create index on t (a)")
	if err != nil {
		t.Fatal(err)
	}
	ci := st.(*CreateIndex)
	if ci.Table != "t" || ci.Attr != "a" {
		t.Fatalf("parsed %+v", ci)
	}
	if _, err := Parse("create index on t"); err == nil {
		t.Fatal("missing attr should error")
	}

	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	for _, line := range []string{
		"create table t (a domain 4)",
		"insert into t values (0, 1)",
		"insert into t values (1, 2)",
		"create index on t (a)",
		"create mpfview v as select * from t",
	} {
		if _, err := s.Exec(line); err != nil {
			t.Fatalf("%s: %v", line, err)
		}
	}
	out, err := s.Exec("select a, sum(f) from v where a = 1 group by a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation.Len() != 1 || out.Relation.Measure(0) != 2 {
		t.Fatalf("indexed SQL query wrong: %v", out.Relation)
	}
	if _, err := s.Exec("create index on ghost (a)"); err == nil {
		t.Fatal("index on unknown table should error")
	}
}

func TestDropStatements(t *testing.T) {
	db, err := core.Open(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := NewSession(db)
	for _, line := range []string{
		"create table t (a domain 2)",
		"insert into t values (0, 1)",
		"create mpfview v as select * from t",
	} {
		if _, err := s.Exec(line); err != nil {
			t.Fatal(err)
		}
	}
	// Table is referenced by the view: drop must fail.
	if _, err := s.Exec("drop table t"); err == nil {
		t.Fatal("dropping a referenced table should error")
	}
	if _, err := s.Exec("drop mpfview v"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("drop mpfview v"); err == nil {
		t.Fatal("double view drop should error")
	}
	if _, err := s.Exec("drop table t"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("drop table t"); err == nil {
		t.Fatal("double table drop should error")
	}
	// Staged tables can be dropped before they are loaded.
	s.Exec("create table staged (a domain 2)")
	if _, err := s.Exec("drop table staged"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("drop banana x"); err == nil {
		t.Fatal("bad drop target should error")
	}
}
