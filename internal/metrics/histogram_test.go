package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantiles asserts the log-bucket estimator brackets true
// quantiles within one bucket (a factor of two) on a known population.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Stats(); got != (LatencyStats{}) {
		t.Fatalf("empty histogram must report zeros, got %+v", got)
	}
	// 1000 samples: 1ms, 2ms, ..., 1000ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 1000 || st.Max != time.Second {
		t.Fatalf("count/max wrong: %+v", st)
	}
	check := func(name string, got time.Duration, trueQ time.Duration) {
		if got < trueQ || got > 2*trueQ {
			t.Errorf("%s = %v, want within [%v, %v]", name, got, trueQ, 2*trueQ)
		}
	}
	check("p50", st.P50, 500*time.Millisecond)
	check("p90", st.P90, 900*time.Millisecond)
	check("p99", st.P99, 990*time.Millisecond)
	if st.Mean != 500500*time.Microsecond {
		t.Errorf("mean = %v, want 500.5ms", st.Mean)
	}

	// Sub-microsecond and negative observations land in the first bucket
	// rather than panicking.
	var tiny Histogram
	tiny.Observe(0)
	tiny.Observe(-time.Second)
	tiny.Observe(100 * time.Nanosecond)
	if st := tiny.Stats(); st.Count != 3 || st.P99 > 2*time.Microsecond {
		t.Fatalf("tiny samples misbucketed: %+v", st)
	}
}

// TestHistogramConcurrent exercises Observe/Stats under the race
// detector.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
				if i%100 == 0 {
					h.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if st := h.Stats(); st.Count != 8000 {
		t.Fatalf("lost observations: %+v", st)
	}
}

// TestSnapshotServerRendering asserts the server section of the text
// report: "disabled" by default, full counters when a server fills it.
func TestSnapshotServerRendering(t *testing.T) {
	var s Snapshot
	if !strings.Contains(s.String(), "server: disabled") {
		t.Fatalf("unserved snapshot must render server as disabled:\n%s", s)
	}
	s.Server = ServerStats{
		Enabled:        true,
		SessionsOpened: 5, SessionsClosed: 2, SessionsActive: 3,
		Admitted: 100, InFlight: 1, Queued: 2,
		RejectedRate: 7, RejectedQueue: 1, RejectedDrain: 4,
		Draining: true,
		Latency:  LatencyStats{Count: 100, P50: time.Millisecond, P99: 4 * time.Millisecond, Max: 5 * time.Millisecond},
	}
	out := s.String()
	for _, want := range []string{"server: draining", "3 sessions active", "100 admitted", "7 rate / 1 queue / 4 drain", "p50 1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("server rendering missing %q:\n%s", want, out)
		}
	}
}
