// Package metrics is the engine-wide metrics registry: a Database owns
// one Registry, every query lifecycle event (started, finished, canceled)
// and every finished query's RunStats-derived counters accumulate into
// it, and Snapshot returns a consistent point-in-time copy for reporting
// (mpfcli -metrics, monitoring loops). The registry is additive-only and
// safe for concurrent use.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mpf/internal/storage"
)

// OpSample is one executed operator's contribution to the registry: its
// kind (Scan, Select, ProductJoin, GroupBy) plus exclusive wall time and
// IO delta, as recorded in a query's trace.
type OpSample struct {
	// Kind is the operator kind.
	Kind string
	// Wall is the operator's exclusive (self) wall time.
	Wall time.Duration
	// IO is the pool-stats delta attributed to the operator.
	IO storage.Stats
}

// QuerySample summarizes one finished query for the registry.
type QuerySample struct {
	// Canceled marks a query that ended with a context error.
	Canceled bool
	// Failed marks a query that ended with any other error.
	Failed bool
	// RowsOut is the result cardinality.
	RowsOut int64
	// TempTuples counts tuples written to intermediate tables.
	TempTuples int64
	// Operators counts executed physical operators.
	Operators int64
	// HotKeyFallbacks counts Grace-join hot-key fallbacks.
	HotKeyFallbacks int64
	// Batches counts tuple batches consumed by the vectorized operator
	// paths (zero for tuple-at-a-time runs).
	Batches int64
	// Wall is the query's execution wall time.
	Wall time.Duration
	// Ops lists the per-operator samples from the query trace.
	Ops []OpSample
	// Morsels lists the per-kind morsel-scheduler samples of a parallel
	// run (empty for serial queries).
	Morsels []MorselSample
}

// MorselSample is one operator kind's share of a query's morsel-driven
// parallel work: how many morsels the kind submitted and the busy time
// measured inside those morsels (exclusive task time on whichever worker
// ran them — attributed to the submitting kind, not the worker).
type MorselSample struct {
	// Kind is the submitting operator kind (ProductJoin, GroupBy, Sort).
	Kind string
	// Count is the number of morsels executed.
	Count int64
	// Busy is the summed task execution time.
	Busy time.Duration
}

// MorselKindStats aggregates all morsels submitted by one operator kind.
type MorselKindStats struct {
	// Count is the number of morsels executed.
	Count int64 `json:"count"`
	// Busy sums their execution time.
	Busy time.Duration `json:"busy_ns"`
}

// OpKindStats aggregates all executed operators of one kind.
type OpKindStats struct {
	// Count is the number of operators of this kind executed.
	Count int64 `json:"count"`
	// Wall sums their exclusive wall time.
	Wall time.Duration `json:"wall_ns"`
	// IO sums their attributed pool-stats deltas.
	IO storage.Stats `json:"io"`
}

// PlanKindStats aggregates planning work by planner kind, the planning
// counterpart of OpKindStats: execution accounted wall time per operator
// kind while planning time vanished from the registry entirely (the
// Result.Optimize accounting bug). One kind per planner report name, plus
// the synthetic "plan-cache" kind covering cache-probe time on hits.
type PlanKindStats struct {
	// Count is the number of queries planned by this kind.
	Count int64 `json:"count"`
	// Wall sums the planning wall time attributed to this kind.
	Wall time.Duration `json:"wall_ns"`
}

// Registry accumulates engine-wide metrics. The zero value is NOT ready;
// use NewRegistry.
type Registry struct {
	mu              sync.Mutex
	started         int64
	finished        int64
	canceled        int64
	failed          int64
	rowsOut         int64
	tempTuples      int64
	operators       int64
	hotKeyFallbacks int64
	batches         int64
	execWall        time.Duration
	opKinds         map[string]OpKindStats
	planKinds       map[string]PlanKindStats
	morselKinds     map[string]MorselKindStats
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		opKinds:     make(map[string]OpKindStats),
		planKinds:   make(map[string]PlanKindStats),
		morselKinds: make(map[string]MorselKindStats),
	}
}

// PlanSample records one planning phase: the report name of the planner
// that produced the plan (for cache hits, the synthetic "plan-cache" kind)
// and its planning wall time. Called once per planned query, whether or
// not the plan then executes.
func (r *Registry) PlanSample(planner string, wall time.Duration) {
	r.mu.Lock()
	k := r.planKinds[planner]
	k.Count++
	k.Wall += wall
	r.planKinds[planner] = k
	r.mu.Unlock()
}

// QueryStarted records the start of a query.
func (r *Registry) QueryStarted() {
	r.mu.Lock()
	r.started++
	r.mu.Unlock()
}

// QueryFinished records a query's end. Every QueryStarted must be paired
// with exactly one QueryFinished, whatever the outcome; the sample's
// Canceled/Failed flags classify it.
func (r *Registry) QueryFinished(q QuerySample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished++
	if q.Canceled {
		r.canceled++
	} else if q.Failed {
		r.failed++
	}
	r.rowsOut += q.RowsOut
	r.tempTuples += q.TempTuples
	r.operators += q.Operators
	r.hotKeyFallbacks += q.HotKeyFallbacks
	r.batches += q.Batches
	r.execWall += q.Wall
	for _, op := range q.Ops {
		k := r.opKinds[op.Kind]
		k.Count++
		k.Wall += op.Wall
		k.IO = k.IO.Add(op.IO)
		r.opKinds[op.Kind] = k
	}
	for _, m := range q.Morsels {
		k := r.morselKinds[m.Kind]
		k.Count += m.Count
		k.Busy += m.Busy
		r.morselKinds[m.Kind] = k
	}
}

// Snapshot is a point-in-time copy of the registry, extended with the
// buffer pool's cumulative IO counters (read directly from the pool at
// snapshot time, so they cover everything the pool did — including
// operator overlap that per-query deltas cannot attribute exactly).
type Snapshot struct {
	// QueriesStarted counts queries that entered execution.
	QueriesStarted int64 `json:"queries_started"`
	// QueriesFinished counts queries that returned (any outcome).
	QueriesFinished int64 `json:"queries_finished"`
	// QueriesCanceled counts queries that ended with a context error.
	QueriesCanceled int64 `json:"queries_canceled"`
	// QueriesFailed counts queries that ended with a non-context error.
	QueriesFailed int64 `json:"queries_failed"`
	// RowsOut sums result cardinalities over finished queries.
	RowsOut int64 `json:"rows_out"`
	// TempTuples sums intermediate tuples written.
	TempTuples int64 `json:"temp_tuples"`
	// Operators counts executed physical operators.
	Operators int64 `json:"operators"`
	// HotKeyFallbacks counts Grace-join hot-key fallbacks.
	HotKeyFallbacks int64 `json:"hot_key_fallbacks"`
	// Batches counts tuple batches consumed by vectorized operators.
	Batches int64 `json:"batches"`
	// ExecWall sums query execution wall time.
	ExecWall time.Duration `json:"exec_wall_ns"`
	// Pool is the buffer pool's cumulative IO (reads, writes, hits).
	Pool storage.Stats `json:"pool"`
	// ResultCache is the shared subplan result cache's state and counters.
	// Core fills it after taking the registry snapshot; when the cache is
	// disabled every field is zero and Enabled is false.
	ResultCache ResultCacheStats `json:"result_cache"`
	// PlanCache is the plan cache's state and counters, filled by core the
	// same way as ResultCache.
	PlanCache PlanCacheStats `json:"plan_cache"`
	// Server is the network serving layer's state and counters, filled by
	// internal/server on databases it serves; Enabled is false otherwise.
	Server ServerStats `json:"server"`
	// MVCC is the multi-version catalog's state and counters, filled by
	// core at snapshot time.
	MVCC MVCCStats `json:"mvcc"`
	// OpKinds aggregates operators by kind.
	OpKinds map[string]OpKindStats `json:"op_kinds"`
	// Planning aggregates planning time by planner kind.
	Planning map[string]PlanKindStats `json:"planning"`
	// Morsels aggregates morsel-scheduler work by submitting operator
	// kind over all parallel queries.
	Morsels map[string]MorselKindStats `json:"morsels"`
	// Encoding is the buffer pool's cumulative columnar page-encoding
	// counters, filled by core from the pool at snapshot time; all zero
	// when columnar storage was never enabled.
	Encoding storage.EncodingStats `json:"encoding"`
}

// ResultCacheStats reports the engine's shared subplan result cache in a
// metrics snapshot. All counters are cumulative; Entries/Bytes are
// point-in-time. The report always renders every field — a zero counter
// prints as 0, so "no hits yet" and "cache disabled" are distinguishable
// (the latter via Enabled).
type ResultCacheStats struct {
	// Enabled reports whether the database was opened with a cache budget.
	Enabled bool `json:"enabled"`
	// Entries is the number of live cached materializations; Bytes their
	// resident size against BudgetBytes.
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
	// Hits and Misses count probes at cacheable plan nodes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Inserts counts adopted materializations, Evictions cost-aware
	// removals, Invalidations removals caused by base-table writes.
	Inserts       int64 `json:"inserts"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// IOSavedPages sums the rebuild page IO avoided by hits.
	IOSavedPages int64 `json:"io_saved_pages"`
}

// PlanCacheStats reports the engine's plan cache in a metrics snapshot.
// Counters are cumulative; Entries is point-in-time against Capacity.
type PlanCacheStats struct {
	// Enabled reports whether the database was opened with a plan cache.
	Enabled bool `json:"enabled"`
	// Entries is the number of live cached plans; Capacity the LRU bound.
	Entries  int64 `json:"entries"`
	Capacity int64 `json:"capacity"`
	// Hits and Misses count cache probes by cacheable queries.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Inserts counts adopted plans, Evictions LRU removals, Invalidations
	// removals caused by base-table writes.
	Inserts       int64 `json:"inserts"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

// MVCCStats reports the multi-version catalog in a metrics snapshot:
// how many catalog versions are live or already reclaimed, commit
// outcomes, snapshot pin traffic, how long writers waited on each other
// (readers never contribute — they don't take the writer lock), and the
// age of the oldest snapshot still pinning an old version (the epoch
// horizon that bounds reclamation).
type MVCCStats struct {
	// Enabled reports whether the database runs the multi-version
	// catalog (always true for databases opened by core.Open).
	Enabled bool `json:"enabled"`
	// Seq is the current catalog version sequence number, bumped once
	// per published commit.
	Seq int64 `json:"seq"`
	// VersionsLive counts catalog versions not yet reclaimed (the
	// current version plus superseded versions still pinned by
	// snapshots); VersionsReclaimed counts superseded versions whose
	// storage references were dropped.
	VersionsLive      int64 `json:"versions_live"`
	VersionsReclaimed int64 `json:"versions_reclaimed"`
	// Commits counts published commits; CommitFailures counts commits
	// aborted by an error (e.g. a write-path IO fault) with the old
	// version left fully served.
	Commits        int64 `json:"commits"`
	CommitFailures int64 `json:"commit_failures"`
	// SnapshotsAcquired/SnapshotsReleased count snapshot pins over the
	// database's lifetime; SnapshotsActive is the point-in-time pin
	// count.
	SnapshotsAcquired int64 `json:"snapshots_acquired"`
	SnapshotsReleased int64 `json:"snapshots_released"`
	SnapshotsActive   int64 `json:"snapshots_active"`
	// WriterStall sums the time commits spent waiting for the writer
	// lock (writer-on-writer serialization; readers never hold it).
	WriterStall time.Duration `json:"writer_stall_ns"`
	// OldestSnapshotAge is the age of the oldest live snapshot at
	// snapshot time — the bound on how far reclamation lags.
	OldestSnapshotAge time.Duration `json:"oldest_snapshot_age_ns"`
}

// Snapshot returns a consistent copy of the counters; pool is the buffer
// pool's own cumulative stats to embed.
func (r *Registry) Snapshot(pool storage.Stats) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	kinds := make(map[string]OpKindStats, len(r.opKinds))
	for k, v := range r.opKinds {
		kinds[k] = v
	}
	planning := make(map[string]PlanKindStats, len(r.planKinds))
	for k, v := range r.planKinds {
		planning[k] = v
	}
	morsels := make(map[string]MorselKindStats, len(r.morselKinds))
	for k, v := range r.morselKinds {
		morsels[k] = v
	}
	return Snapshot{
		QueriesStarted:  r.started,
		QueriesFinished: r.finished,
		QueriesCanceled: r.canceled,
		QueriesFailed:   r.failed,
		RowsOut:         r.rowsOut,
		TempTuples:      r.tempTuples,
		Operators:       r.operators,
		HotKeyFallbacks: r.hotKeyFallbacks,
		Batches:         r.batches,
		ExecWall:        r.execWall,
		Pool:            pool,
		OpKinds:         kinds,
		Planning:        planning,
		Morsels:         morsels,
	}
}

// String renders the snapshot as an aligned text report. Every section
// always prints with explicit zeros — a counter that reads 0 is 0, never
// silently absent — so scripted consumers of `mpfcli -metrics` can
// distinguish "nothing happened" from "not reported".
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries: %d started, %d finished (%d canceled, %d failed)\n",
		s.QueriesStarted, s.QueriesFinished, s.QueriesCanceled, s.QueriesFailed)
	fmt.Fprintf(&b, "rows out: %d   temp tuples: %d   operators: %d   hot-key fallbacks: %d\n",
		s.RowsOut, s.TempTuples, s.Operators, s.HotKeyFallbacks)
	fmt.Fprintf(&b, "batches: %d\n", s.Batches)
	fmt.Fprintf(&b, "exec wall: %v\n", s.ExecWall)
	fmt.Fprintf(&b, "pool IO: %d reads, %d writes, %d hits, %d prefetched\n",
		s.Pool.Reads, s.Pool.Writes, s.Pool.Hits, s.Pool.Prefetches)
	fmt.Fprintf(&b, "pool faults: %d retries, %d transient, %d permanent, %d checksum failures\n",
		s.Pool.Retries, s.Pool.TransientFaults, s.Pool.PermanentFaults, s.Pool.ChecksumFailures)
	enc := s.Encoding
	fmt.Fprintf(&b, "page encoding: %d encoded, %d fallback, %d bytes saved; segments %d plain / %d byte / %d rle / %d dict\n",
		enc.PagesEncoded, enc.PagesFallback, enc.BytesSaved, enc.SegPlain, enc.SegByte, enc.SegRLE, enc.SegDict)
	rc := s.ResultCache
	if !rc.Enabled {
		b.WriteString("result cache: disabled\n")
	} else {
		fmt.Fprintf(&b, "result cache: %d/%d bytes in %d entries\n", rc.Bytes, rc.BudgetBytes, rc.Entries)
		fmt.Fprintf(&b, "  %d hits, %d misses, %d inserts, %d evictions, %d invalidations, %d page IOs saved\n",
			rc.Hits, rc.Misses, rc.Inserts, rc.Evictions, rc.Invalidations, rc.IOSavedPages)
	}
	pc := s.PlanCache
	if !pc.Enabled {
		b.WriteString("plan cache: disabled\n")
	} else {
		fmt.Fprintf(&b, "plan cache: %d/%d entries\n", pc.Entries, pc.Capacity)
		fmt.Fprintf(&b, "  %d hits, %d misses, %d inserts, %d evictions, %d invalidations\n",
			pc.Hits, pc.Misses, pc.Inserts, pc.Evictions, pc.Invalidations)
	}
	mv := s.MVCC
	if !mv.Enabled {
		b.WriteString("mvcc: disabled\n")
	} else {
		fmt.Fprintf(&b, "mvcc: version %d, %d live / %d reclaimed; %d commits (%d failed)\n",
			mv.Seq, mv.VersionsLive, mv.VersionsReclaimed, mv.Commits, mv.CommitFailures)
		fmt.Fprintf(&b, "  snapshots: %d active (%d acquired, %d released), oldest %v; writer stall %v\n",
			mv.SnapshotsActive, mv.SnapshotsAcquired, mv.SnapshotsReleased, mv.OldestSnapshotAge, mv.WriterStall)
	}
	sv := s.Server
	if !sv.Enabled {
		b.WriteString("server: disabled\n")
	} else {
		state := "serving"
		if sv.Draining {
			state = "draining"
		}
		fmt.Fprintf(&b, "server: %s, %d sessions active (%d opened, %d closed)\n",
			state, sv.SessionsActive, sv.SessionsOpened, sv.SessionsClosed)
		fmt.Fprintf(&b, "  admission: %d admitted, %d in flight, %d queued; rejected %d rate / %d queue / %d drain\n",
			sv.Admitted, sv.InFlight, sv.Queued, sv.RejectedRate, sv.RejectedQueue, sv.RejectedDrain)
		lat := sv.Latency
		fmt.Fprintf(&b, "  latency: %d requests, p50 %v, p90 %v, p99 %v, max %v\n",
			lat.Count, lat.P50, lat.P90, lat.P99, lat.Max)
	}
	if len(s.Planning) == 0 {
		b.WriteString("planning: none\n")
	} else {
		planners := make([]string, 0, len(s.Planning))
		for k := range s.Planning {
			planners = append(planners, k)
		}
		sort.Strings(planners)
		b.WriteString("planning:\n")
		for _, k := range planners {
			st := s.Planning[k]
			fmt.Fprintf(&b, "  %-24s %6d plans  wall %v\n", k, st.Count, st.Wall)
		}
	}
	if len(s.Morsels) == 0 {
		b.WriteString("morsels: none\n")
	} else {
		mk := make([]string, 0, len(s.Morsels))
		for k := range s.Morsels {
			mk = append(mk, k)
		}
		sort.Strings(mk)
		b.WriteString("morsels:\n")
		for _, k := range mk {
			st := s.Morsels[k]
			fmt.Fprintf(&b, "  %-12s %6d morsels  busy %v\n", k, st.Count, st.Busy)
		}
	}
	if len(s.OpKinds) == 0 {
		b.WriteString("per-operator kind: none\n")
		return b.String()
	}
	kinds := make([]string, 0, len(s.OpKinds))
	for k := range s.OpKinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	b.WriteString("per-operator kind:\n")
	for _, k := range kinds {
		st := s.OpKinds[k]
		fmt.Fprintf(&b, "  %-12s %6d ops  wall %-12v io %d reads / %d writes / %d hits\n",
			k, st.Count, st.Wall, st.IO.Reads, st.IO.Writes, st.IO.Hits)
	}
	return b.String()
}
