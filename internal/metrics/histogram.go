package metrics

import (
	"math/bits"
	"sync"
	"time"
)

// latencyBuckets is the number of log₂ histogram buckets: bucket i
// covers [2^i, 2^(i+1)) microseconds, so the range spans 1µs to ~2.3h —
// far beyond any sane query latency — with a fixed, tiny footprint.
const latencyBuckets = 43

// Histogram is a fixed-size log₂-bucketed latency histogram. It trades
// exactness for O(1) memory and lock-hold time: quantiles are read from
// bucket upper bounds (at most 2× overestimate within a bucket), which
// is the right fidelity for p50/p99 serving reports. Safe for
// concurrent use; the zero value is ready.
type Histogram struct {
	mu     sync.Mutex
	counts [latencyBuckets]int64
	count  int64
	sum    time.Duration
	max    time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	i := bits.Len64(uint64(us)) - 1
	if i >= latencyBuckets {
		i = latencyBuckets - 1
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.counts[bucketOf(d)]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// LatencyStats is a point-in-time quantile summary of a Histogram, in
// the wire encoding used by the serving layer's metrics endpoint.
// Quantiles are bucket upper bounds clamped to the observed maximum.
type LatencyStats struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Stats summarizes the histogram. All zeros when nothing was observed.
func (h *Histogram) Stats() LatencyStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return LatencyStats{}
	}
	return LatencyStats{
		Count: h.count,
		Mean:  h.sum / time.Duration(h.count),
		P50:   h.quantileLocked(0.50),
		P90:   h.quantileLocked(0.90),
		P99:   h.quantileLocked(0.99),
		Max:   h.max,
	}
}

// quantileLocked returns the q-quantile as the upper bound of the
// bucket holding the q·count-th sample, clamped to the observed max.
// Caller holds mu; count > 0.
func (h *Histogram) quantileLocked(q float64) time.Duration {
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			upper := time.Duration(1<<uint(i+1)) * time.Microsecond
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}
