package metrics

// ServerStats reports the network serving layer in a metrics snapshot.
// The server (internal/server) fills it after taking the registry
// snapshot, the same way core fills ResultCache and PlanCache; on a
// database not being served, Enabled is false and the report renders
// "server: disabled". Counters are cumulative over the server's
// lifetime; SessionsActive, InFlight, Queued, and Draining are
// point-in-time.
type ServerStats struct {
	// Enabled reports whether a server is attached to the database.
	Enabled bool `json:"enabled"`
	// SessionsOpened and SessionsClosed count wire sessions over the
	// server's lifetime; SessionsActive is the current population.
	SessionsOpened int64 `json:"sessions_opened"`
	SessionsClosed int64 `json:"sessions_closed"`
	SessionsActive int64 `json:"sessions_active"`
	// Admitted counts requests that passed admission control and ran.
	Admitted int64 `json:"admitted"`
	// InFlight is the number of requests currently executing; Queued the
	// number waiting for an admission token.
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	// RejectedRate counts requests refused with 429 (token-bucket rate
	// exceeded beyond the queueable wait), RejectedQueue requests refused
	// with 503 (admission queue full), RejectedDrain requests refused
	// with 503 during graceful shutdown.
	RejectedRate  int64 `json:"rejected_rate"`
	RejectedQueue int64 `json:"rejected_queue"`
	RejectedDrain int64 `json:"rejected_drain"`
	// Draining marks a server past Shutdown: finishing in-flight work and
	// refusing new requests.
	Draining bool `json:"draining"`
	// Latency summarizes served request latencies (admission wait
	// included — it is time the client experienced).
	Latency LatencyStats `json:"latency"`
}
