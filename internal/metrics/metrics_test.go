package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mpf/internal/storage"
)

// TestRegistryAccumulates checks that finished-query samples add into the
// registry counters and per-kind aggregates.
func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	r.QueryStarted()
	r.QueryFinished(QuerySample{
		RowsOut: 10, TempTuples: 100, Operators: 3, Wall: 2 * time.Millisecond,
		Ops: []OpSample{
			{Kind: "Scan", Wall: time.Millisecond, IO: storage.Stats{Reads: 4}},
			{Kind: "Scan", Wall: time.Millisecond, IO: storage.Stats{Reads: 2, Hits: 1}},
			{Kind: "GroupBy", Wall: time.Millisecond, IO: storage.Stats{Writes: 5}},
		},
	})
	r.QueryStarted()
	r.QueryFinished(QuerySample{Canceled: true, Operators: 1,
		Ops: []OpSample{{Kind: "Scan"}}})
	r.QueryStarted()
	r.QueryFinished(QuerySample{Failed: true})

	s := r.Snapshot(storage.Stats{Reads: 6, Writes: 5, Hits: 1})
	if s.QueriesStarted != 3 || s.QueriesFinished != 3 || s.QueriesCanceled != 1 || s.QueriesFailed != 1 {
		t.Fatalf("query counts wrong: %+v", s)
	}
	if s.RowsOut != 10 || s.TempTuples != 100 || s.Operators != 4 {
		t.Fatalf("totals wrong: %+v", s)
	}
	scan := s.OpKinds["Scan"]
	if scan.Count != 3 || scan.Wall != 2*time.Millisecond || scan.IO.Reads != 6 || scan.IO.Hits != 1 {
		t.Fatalf("Scan kind stats wrong: %+v", scan)
	}
	if gb := s.OpKinds["GroupBy"]; gb.Count != 1 || gb.IO.Writes != 5 {
		t.Fatalf("GroupBy kind stats wrong: %+v", gb)
	}

	// The snapshot is a copy: mutating the registry afterwards must not
	// change it.
	r.QueryFinished(QuerySample{RowsOut: 99, Ops: []OpSample{{Kind: "Scan"}}})
	if s.RowsOut != 10 || s.OpKinds["Scan"].Count != 3 {
		t.Fatal("snapshot aliases registry state")
	}

	out := s.String()
	for _, want := range []string{
		"3 started", "3 finished", "1 canceled", "1 failed",
		"rows out: 10", "operators: 4", "6 reads", "Scan", "GroupBy",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent hammers the registry from many goroutines (the
// race detector covers the locking) and checks the final totals.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.QueryStarted()
				r.QueryFinished(QuerySample{RowsOut: 1, Operators: 2,
					Ops: []OpSample{{Kind: "Scan"}, {Kind: "GroupBy"}}})
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot(storage.Stats{})
	total := int64(workers * per)
	if s.QueriesStarted != total || s.QueriesFinished != total || s.RowsOut != total {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.OpKinds["Scan"].Count != total || s.OpKinds["GroupBy"].Count != total {
		t.Fatalf("per-kind counts wrong: %+v", s.OpKinds)
	}
}
