package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mpf"
	"mpf/internal/metrics"
)

// Config parameterizes a Server.
type Config struct {
	// Admission bounds the request intake; the zero value admits
	// everything immediately.
	Admission AdmissionConfig
	// DefaultTimeout and DefaultBudget apply to requests outside any
	// explicit session (and are the fallback SessionRequest defaults).
	DefaultTimeout time.Duration
	DefaultBudget  mpf.Budget
}

// Server serves one Database over the HTTP/JSON wire protocol. It is an
// http.Handler; the caller owns the listener (net/http Server,
// httptest, ...). Queries and writes run fully concurrently: the
// engine's multi-version catalog pins every query to an immutable
// snapshot at admission, and writes are copy-on-write commits the
// engine serializes internally, so the server needs no read-write lock
// of its own — a long analytical query never stalls ingest and a slow
// insert never stalls readers.
type Server struct {
	db    *mpf.Database
	cfg   Config
	admit *admitter
	mux   *http.ServeMux

	// mu guards the session registry, the in-flight request registry,
	// and the drain flag; drained broadcasts in-flight reaching zero.
	mu       sync.Mutex
	drained  *sync.Cond
	sessions map[string]*mpf.Session
	nextSess int64
	nextReq  int64
	cancels  map[int64]context.CancelFunc
	inflight int64
	draining bool

	// Cumulative counters for ServerStats.
	sessOpened atomic.Int64
	sessClosed atomic.Int64
	admitted   atomic.Int64
	rejRate    atomic.Int64
	rejQueue   atomic.Int64
	rejDrain   atomic.Int64
	latency    metrics.Histogram
}

// New builds a Server over db.
func New(db *mpf.Database, cfg Config) *Server {
	s := &Server{
		db:       db,
		cfg:      cfg,
		admit:    newAdmitter(cfg.Admission),
		sessions: make(map[string]*mpf.Session),
		cancels:  make(map[int64]context.CancelFunc),
	}
	s.drained = sync.NewCond(&s.mu)
	m := http.NewServeMux()
	m.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	m.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	m.HandleFunc("POST /v1/query", s.handleQuery)
	m.HandleFunc("POST /v1/explain", s.handleExplain)
	m.HandleFunc("POST /v1/materialize", s.handleMaterialize)
	m.HandleFunc("POST /v1/insert", s.handleInsert)
	m.HandleFunc("POST /v1/delete", s.handleDelete)
	m.HandleFunc("GET /v1/catalog", s.handleCatalog)
	m.HandleFunc("GET /v1/metrics", s.handleMetrics)
	m.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux = m
	return s
}

// ServeHTTP dispatches to the wire endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats returns the serving layer's metrics, in the shape embedded into
// the engine snapshot by /v1/metrics.
func (s *Server) Stats() metrics.ServerStats {
	s.mu.Lock()
	active := int64(len(s.sessions))
	inflight := s.inflight
	draining := s.draining
	s.mu.Unlock()
	return metrics.ServerStats{
		Enabled:        true,
		SessionsOpened: s.sessOpened.Load(),
		SessionsClosed: s.sessClosed.Load(),
		SessionsActive: active,
		Admitted:       s.admitted.Load(),
		InFlight:       inflight,
		Queued:         s.admit.queuedNow(),
		RejectedRate:   s.rejRate.Load(),
		RejectedQueue:  s.rejQueue.Load(),
		RejectedDrain:  s.rejDrain.Load(),
		Draining:       draining,
		Latency:        s.latency.Stats(),
	}
}

// Shutdown drains the server: new requests are rejected with
// CodeDraining immediately, in-flight requests (queued ones included)
// run to completion, and requests still running at ctx's deadline are
// canceled and then waited for. Shutdown returns nil once the server is
// idle; the ctx error is reported only if even cancellation could not
// drain it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.drained.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Deadline passed: cancel everything still running and wait again —
	// canceled queries unwind promptly (context polling in the engine).
	s.mu.Lock()
	for _, cancel := range s.cancels {
		cancel()
	}
	s.mu.Unlock()
	select {
	case <-done:
		return nil
	case <-time.After(5 * time.Second):
		return fmt.Errorf("server: drain did not complete: %w", ctx.Err())
	}
}

// track admits one request into the in-flight registry, atomically with
// the drain check. The returned done must be called exactly once.
func (s *Server) track(parent context.Context) (context.Context, func(), error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, errDraining
	}
	s.nextReq++
	id := s.nextReq
	ctx, cancel := context.WithCancel(parent)
	s.cancels[id] = cancel
	s.inflight++
	s.mu.Unlock()
	done := func() {
		cancel()
		s.mu.Lock()
		delete(s.cancels, id)
		s.inflight--
		if s.inflight == 0 {
			s.drained.Broadcast()
		}
		s.mu.Unlock()
	}
	return ctx, done, nil
}

var errDraining = fmt.Errorf("server: draining")

// begin runs the request intake: drain check, in-flight registration,
// admission control, latency clock. On success the caller runs with the
// returned context and must call done; on failure the typed envelope
// has been written.
func (s *Server) begin(w http.ResponseWriter, r *http.Request) (context.Context, func(), bool) {
	start := time.Now()
	ctx, untrack, err := s.track(r.Context())
	if err != nil {
		s.rejDrain.Add(1)
		writeCode(w, CodeDraining, "server is draining")
		return nil, nil, false
	}
	if _, err := s.admit.admit(ctx); err != nil {
		untrack()
		switch err {
		case errRateLimited:
			s.rejRate.Add(1)
			writeCode(w, CodeRateLimited, "admission rate exceeded; retry later")
		case errOverloaded:
			s.rejQueue.Add(1)
			writeCode(w, CodeOverloaded, "admission queue full; retry later")
		default:
			writeError(w, fmt.Errorf("core: %w: %v", mpf.ErrCanceled, err))
		}
		return nil, nil, false
	}
	s.admitted.Add(1)
	done := func() {
		untrack()
		s.latency.Observe(time.Since(start))
	}
	return ctx, done, true
}

// decode reads the JSON request body into v, writing the bad_request
// envelope on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeCode(w, CodeBadRequest, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

// session resolves a request's session id ("" = the anonymous session
// with the server-wide defaults).
func (s *Server) session(id string) (*mpf.Session, error) {
	if id == "" {
		return mpf.NewSession(s.db, mpf.SessionOptions{
			Timeout: s.cfg.DefaultTimeout,
			Budget:  s.cfg.DefaultBudget,
		}), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

// override stamps per-request timeout/budget onto ctx; explicit context
// values beat session defaults inside mpf.Session.
func override(ctx context.Context, timeoutMS, maxTemp, maxRows int64) (context.Context, context.CancelFunc) {
	cancel := context.CancelFunc(func() {})
	if timeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(timeoutMS)*time.Millisecond)
	}
	if maxTemp > 0 || maxRows > 0 {
		ctx = mpf.WithBudget(ctx, mpf.Budget{MaxTempTuples: maxTemp, MaxRows: maxRows})
	}
	return ctx, cancel
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if !decode(w, r, &req) {
		return
	}
	opts := mpf.SessionOptions{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Budget:  mpf.Budget{MaxTempTuples: req.MaxTempTuples, MaxRows: req.MaxRows},
	}
	if opts.Timeout == 0 {
		opts.Timeout = s.cfg.DefaultTimeout
	}
	if (opts.Budget == mpf.Budget{}) {
		opts.Budget = s.cfg.DefaultBudget
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejDrain.Add(1)
		writeCode(w, CodeDraining, "server is draining")
		return
	}
	s.nextSess++
	id := fmt.Sprintf("s%d", s.nextSess)
	s.sessions[id] = mpf.NewSession(s.db, opts)
	s.mu.Unlock()
	s.sessOpened.Add(1)
	writeJSON(w, http.StatusOK, SessionResponse{Session: id})
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeCode(w, CodeUnknownSession, fmt.Sprintf("unknown session %q", id))
		return
	}
	s.sessClosed.Add(1)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Query == nil {
		writeCode(w, CodeBadRequest, "missing query")
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeCode(w, CodeUnknownSession, err.Error())
		return
	}
	ctx, done, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer done()
	ctx, cancel := override(ctx, req.TimeoutMS, req.MaxTempTuples, req.MaxRows)
	defer cancel()
	res, err := sess.Query(ctx, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{Result: res})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Query == nil {
		writeCode(w, CodeBadRequest, "missing query")
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeCode(w, CodeUnknownSession, err.Error())
		return
	}
	ctx, done, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer done()
	ctx, cancel := override(ctx, req.TimeoutMS, req.MaxTempTuples, req.MaxRows)
	defer cancel()
	res, err := sess.Explain(ctx, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{
		Plan:       res.Plan.String(),
		OptimizeNS: res.Optimize.Nanoseconds(),
	})
}

func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	var req MaterializeRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Query == nil || req.Name == "" {
		writeCode(w, CodeBadRequest, "missing name or query")
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeCode(w, CodeUnknownSession, err.Error())
		return
	}
	ctx, done, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer done()
	ctx, cancel := override(ctx, req.TimeoutMS, req.MaxTempTuples, req.MaxRows)
	defer cancel()
	rel, err := sess.Materialize(ctx, req.Name, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MaterializeResponse{Relation: rel})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decode(w, r, &req) {
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeCode(w, CodeUnknownSession, err.Error())
		return
	}
	_, done, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer done()
	err = sess.Insert(req.Table, req.Vals, req.Measure)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decode(w, r, &req) {
		return
	}
	sess, err := s.session(req.Session)
	if err != nil {
		writeCode(w, CodeUnknownSession, err.Error())
		return
	}
	_, done, ok := s.begin(w, r)
	if !ok {
		return
	}
	defer done()
	existed, err := sess.Delete(req.Table, req.Vals)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Existed: existed})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := s.db.Catalog()
	resp := CatalogResponse{Tables: []CatalogTable{}, Views: []CatalogView{}}
	for _, name := range cat.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			continue // dropped between listing and lookup
		}
		resp.Tables = append(resp.Tables, CatalogTable{
			Name: t.Name, Attrs: t.Attrs, Card: t.Card, Key: t.Key,
		})
	}
	for _, name := range cat.Views() {
		v, err := cat.View(name)
		if err != nil {
			continue
		}
		resp.Views = append(resp.Views, CatalogView{
			Name: v.Name, Tables: v.Tables, Semiring: v.Semiring,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.db.Metrics()
	snap.Server = s.Stats()
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	resp := HealthResponse{
		Status:         status,
		SessionsActive: int64(len(s.sessions)),
		InFlight:       s.inflight,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
